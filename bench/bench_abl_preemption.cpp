// Ablation — robustness to worker preemption.
//
// The paper's opportunistic cluster preempts up to ~1% of workers per run;
// this sweep pushes the preemption rate far beyond that to observe
// TaskVine's recovery cost (task retries + lineage re-execution).
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: worker preemption rate");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 800;
    workload.input_bytes = 64 * util::kGB;
  }
  RunConfig base;
  base.workers = scaled(50, 16);

  std::printf("  %-14s %12s %12s %12s %10s\n", "preempt/hour", "makespan",
              "preemptions", "task fails", "attempts");
  for (double rate : std::vector<double>{0.0, 0.01, 1.0, 6.0, 30.0, 120.0}) {
    RunConfig config = base;
    config.preemption_rate_per_hour = rate;
    exec::RunOptions options;
    options.seed = 45;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.max_task_retries = 40;
    apply_txn_capture(options);
    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, workload, config, options);
    std::printf("  %-14.2f %11.1fs %12u %12zu %10zu %s\n", rate,
                report.makespan_seconds(), report.worker_preemptions,
                report.task_failures, report.task_attempts,
                report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: graceful degradation — makespan grows with "
              "preemption rate; at extreme rates (mean worker lifetime well "
              "under a minute) the retry budget eventually trips, the limit "
              "of retry-based recovery without replication "
              "(see bench_abl_replication)\n");
  return 0;
}
