// Ablation — manager dispatch cost sensitivity.
//
// The Stack-3 starvation of Fig 13 is driven by per-task manager overhead.
// This sweep scales the standard-task dispatch/result costs to show where
// the dispatch ceiling starts to cap a 200-worker cluster.
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: manager per-task dispatch cost (standard tasks)");

  apps::WorkloadSpec workload = apps::dv3_large();
  workload.events_per_chunk = 50;
  if (fast_mode()) {
    workload.process_tasks = 2'000;
    workload.input_bytes = 160 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(200, 40);

  std::printf("  %-16s %12s %18s\n", "dispatch+result", "makespan",
              "mean occupancy");
  for (double scale : std::vector<double>{0.05, 0.2, 0.5, 1.0, 2.0}) {
    vine::VineTunables tunables;
    tunables.dispatch_cost_standard = static_cast<util::Tick>(
        static_cast<double>(tunables.dispatch_cost_standard) * scale);
    tunables.result_cost_standard = static_cast<util::Tick>(
        static_cast<double>(tunables.result_cost_standard) * scale);
    vine::VineScheduler scheduler(vine::taskvine_policy(), tunables);

    exec::RunOptions options;
    options.seed = 43;
    options.mode = exec::ExecMode::kStandardTasks;
    const auto report = run_workload(scheduler, workload, config, options);

    const auto occupancy = report.trace.worker_occupancy(
        static_cast<std::int32_t>(config.workers), 0, report.makespan);
    double mean = 0;
    for (double o : occupancy) mean += o;
    mean /= static_cast<double>(occupancy.size());

    char label[32];
    std::snprintf(label, sizeof(label), "%.1f+%.1f ms",
                  util::to_seconds(tunables.dispatch_cost_standard) * 1e3,
                  util::to_seconds(tunables.result_cost_standard) * 1e3);
    std::printf("  %-16s %11.1fs %17.0f%% %s\n", label,
                report.makespan_seconds(), mean * 100,
                report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: makespan tracks per-task manager cost once "
              "the dispatch rate falls below cluster drain rate\n");
  return 0;
}
