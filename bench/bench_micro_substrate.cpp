// Microbenchmarks of the simulation substrate itself (google-benchmark):
// event-engine throughput, flow-network rate recomputation, histogram
// filling, and synthetic event generation. These bound how large a
// simulated campaign the harness can replay per wall-clock second.
#include <benchmark/benchmark.h>

#include "hep/events.h"
#include "hep/processors.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace {

using namespace hepvine;

void BM_EngineScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    std::size_t fired = 0;
    for (std::size_t i = 0; i < n; ++i) {
      engine.schedule_at(static_cast<util::Tick>(i), [&fired] { ++fired; });
    }
    engine.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EngineScheduleRun)->Arg(1'000)->Arg(100'000);

void BM_EngineCancelChurn(benchmark::State& state) {
  // The flow network's dominant pattern: schedule, cancel, reschedule.
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    for (std::size_t i = 0; i < n; ++i) {
      auto handle = engine.schedule_at(1'000'000, [] {});
      handle.cancel();
      engine.schedule_at(static_cast<util::Tick>(i), [] {});
    }
    engine.run();
    benchmark::DoNotOptimize(engine.executed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_EngineCancelChurn)->Arg(100'000);

void BM_NetworkSharedLink(benchmark::State& state) {
  const auto flows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine engine;
    net::Network network(engine);
    const net::LinkId hub = network.add_link("hub", 1e10);
    for (int i = 0; i < flows; ++i) {
      network.start_flow({hub}, 1'000'000, 0, [](net::FlowId) {});
    }
    engine.run();
    benchmark::DoNotOptimize(network.flows_completed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(flows) *
                          state.iterations());
}
BENCHMARK(BM_NetworkSharedLink)->Arg(16)->Arg(256)->Arg(2048);

void BM_GenerateChunk(benchmark::State& state) {
  const auto events = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const hep::EventChunk chunk = hep::generate_chunk(seed++, events);
    benchmark::DoNotOptimize(chunk.jets.pt.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events) *
                          state.iterations());
}
BENCHMARK(BM_GenerateChunk)->Arg(1'000)->Arg(10'000);

void BM_Dv3Process(benchmark::State& state) {
  const hep::EventChunk chunk =
      hep::generate_chunk(7, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const hep::HistogramSet out = hep::dv3_process(chunk);
    benchmark::DoNotOptimize(out.count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(chunk.events) *
                          state.iterations());
}
BENCHMARK(BM_Dv3Process)->Arg(1'000)->Arg(10'000);

void BM_HistogramMerge(benchmark::State& state) {
  hep::Histogram1D a(1'000, 0, 100);
  hep::Histogram1D b(1'000, 0, 100);
  sim::Rng rng(3);
  for (int i = 0; i < 10'000; ++i) {
    a.fill(rng.uniform(0, 100));
    b.fill(rng.uniform(0, 100));
  }
  for (auto _ : state) {
    hep::Histogram1D merged = a;
    merged.merge(b);
    benchmark::DoNotOptimize(merged.integral());
  }
}
BENCHMARK(BM_HistogramMerge);

}  // namespace

BENCHMARK_MAIN();
