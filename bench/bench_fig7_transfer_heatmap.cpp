// Fig 7 — Data-transfer heatmaps: Work Queue vs TaskVine peer transfers.
//
// Paper: with Work Queue, all transfer is manager<->worker, upwards of
// 40 GB to each worker; with TaskVine + peer transfers the largest pair
// tops out around 4 GB and the manager is relieved.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 7: Transfer heatmap, Work Queue vs TaskVine (DV3)");

  apps::WorkloadSpec workload = apps::dv3_large();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 1'500;
    workload.input_bytes = 120 * util::kGB;
  }

  RunConfig config;
  config.workers = scaled(200, 40);
  exec::RunOptions options;
  options.seed = 21;

  // --- Work Queue ---------------------------------------------------------
  wq::WorkQueueScheduler wq_sched;
  const auto wq_report = run_workload(wq_sched, workload, config, options);
  const std::size_t workers = config.workers;
  std::printf("\nWork Queue (%s):\n", wq_report.success ? "ok" : "FAILED");
  std::printf("%s", wq_report.transfers.render_heatmap(36).c_str());
  double max_to_worker = 0;
  for (std::size_t w = 1; w <= workers; ++w) {
    max_to_worker = std::max(
        max_to_worker, static_cast<double>(wq_report.transfers.at(0, w)));
  }
  std::printf("  largest manager->worker volume: %s (paper: ~40 GB)\n",
              util::format_bytes(static_cast<std::uint64_t>(max_to_worker))
                  .c_str());

  // --- TaskVine with peer transfers ---------------------------------------
  vine::VineScheduler vine_sched;
  exec::RunOptions fc = options;
  fc.mode = exec::ExecMode::kFunctionCalls;
  const auto tv_report = run_workload(vine_sched, workload, config, fc);
  std::printf("\nTaskVine + peer transfers (%s):\n",
              tv_report.success ? "ok" : "FAILED");
  std::printf("%s", tv_report.transfers.render_heatmap(36).c_str());
  std::printf("  largest worker-pair volume: %s (paper: ~4 GB)\n",
              util::format_bytes(tv_report.transfers.max_pair()).c_str());

  std::printf("\nShape check: WQ manager bytes %s vs TaskVine manager bytes "
              "%s (TaskVine should be far smaller)\n",
              util::format_bytes(wq_report.transfers.manager_bytes()).c_str(),
              util::format_bytes(tv_report.transfers.manager_bytes()).c_str());
  return 0;
}
