// Ablation — data source: local data store vs wide-area XRootD federation.
//
// Paper Section IV-A: "it was impractical to rely on the wide area XRootD
// federation to deliver data to each run. Instead, specialized data
// subsets are maintained at the facility on bulk storage." This bench
// quantifies that decision by running the same workload from each source.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: local data store vs wide-area XRootD federation");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 500;
    workload.input_bytes = 40 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(50, 16);

  for (auto [label, wan] : {std::pair{"local VAST data store", false},
                            std::pair{"wide-area XRootD federation", true}}) {
    exec::RunOptions options;
    options.seed = 46;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.inputs_from_wan = wan;
    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, workload, config, options);
    std::printf("  %-30s makespan %9.1fs %s\n", label,
                report.makespan_seconds(), report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: repeated near-interactive runs are only "
              "possible against facility-local storage (Section IV-A)\n");
  return 0;
}
