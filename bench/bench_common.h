// Shared harness for the paper-reproduction benches: builds workloads and
// clusters, runs schedulers, and prints paper-vs-measured tables.
//
// All benches run standalone with no arguments. Set HEPVINE_FAST=1 to run
// reduced-scale versions (same shapes, smaller workloads) for quick smoke
// runs; default is full paper scale.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "apps/workloads.h"
#include "cluster/calibration.h"
#include "dd/dask_distributed.h"
#include "exec/scheduler.h"
#include "obs/attribution.h"
#include "storage/shared_fs.h"
#include "util/env.h"
#include "vine/vine_scheduler.h"
#include "wq/work_queue.h"

namespace hepvine::bench {

[[nodiscard]] inline bool fast_mode() { return util::env_flag("HEPVINE_FAST"); }

/// Scale a task/worker count down in fast mode.
[[nodiscard]] inline std::uint32_t scaled(std::uint32_t full,
                                          std::uint32_t fast) {
  return fast_mode() ? fast : full;
}

/// CI determinism hook: when HEPVINE_TXN_LOG is set, stream each run's
/// transaction log to "<prefix>.<n>.txn" (n increments per run, in launch
/// order). Invoking the same bench twice with the same seeds and diffing
/// the files proves the whole run — faults, recovery, scheduling — replays
/// bit-identically.
inline void apply_txn_capture(exec::RunOptions& options) {
  const char* prefix = util::env_cstr("HEPVINE_TXN_LOG");
  if (prefix == nullptr || *prefix == '\0') return;
  static int run_index = 0;
  options.observability.enabled = true;
  options.observability.txn_log = true;
  options.observability.perf_log = false;
  options.observability.chrome_trace = false;
  options.observability.txn_path =
      std::string(prefix) + "." + std::to_string(run_index++) + ".txn";
}

/// Profiler capture hook: when HEPVINE_SPANS is set, write each run's span
/// log to "<prefix>.<n>.spans" (n increments per run, in launch order).
/// vine_profile consumes the files; CI replays a bench twice and diffs
/// them (plus the vine_profile text/json output) to prove the profiler is
/// deterministic, and gates on the core-second accounting identity.
inline void maybe_write_spans(const exec::RunReport& report) {
  const char* prefix = util::env_cstr("HEPVINE_SPANS");
  if (prefix == nullptr || *prefix == '\0') return;
  static int run_index = 0;
  const std::string path =
      std::string(prefix) + "." + std::to_string(run_index++) + ".spans";
  if (!report.profile.write_file(path)) {
    std::fprintf(stderr, "warning: could not write span log %s\n",
                 path.c_str());
  }
}

/// One-line core-second blame breakdown for a run, from the attribution
/// ledger (obs::attribute over RunReport::profile).
inline void print_blame_line(const char* label,
                             const exec::RunReport& report) {
  const obs::AttributionLedger ledger = obs::attribute(report.profile);
  if (ledger.capacity <= 0) return;
  std::printf("  %-28s compute %5.1f%%  transfer %5.1f%%  dispatch %5.1f%%  "
              "import %5.1f%%  recovery %5.1f%%  idle %5.1f%%%s\n",
              label, ledger.fraction(obs::Blame::kCompute) * 100,
              ledger.fraction(obs::Blame::kTransferWait) * 100,
              ledger.fraction(obs::Blame::kDispatchWait) * 100,
              ledger.fraction(obs::Blame::kImport) * 100,
              ledger.fraction(obs::Blame::kRecovery) * 100,
              ledger.fraction(obs::Blame::kIdle) * 100,
              ledger.identity_ok() ? "" : "  [IDENTITY VIOLATION]");
}

struct RunConfig {
  std::uint32_t workers = 200;
  cluster::NodeSpec node = cluster::paper_worker_node();
  storage::SharedFsSpec fs = storage::vast_spec();
  double preemption_rate_per_hour = 0.01;
  std::uint64_t seed = 1;
};

inline exec::RunReport run_workload(exec::SchedulerBackend& scheduler,
                                    const apps::WorkloadSpec& workload,
                                    const RunConfig& config,
                                    const exec::RunOptions& options) {
  const dag::TaskGraph graph = apps::build_workload(workload, options.seed);
  cluster::ClusterSpec cspec = cluster::paper_cluster(
      config.workers, config.node, config.fs, config.seed);
  cspec.batch.preemption_rate_per_hour = config.preemption_rate_per_hour;
  cluster::Cluster cluster(cspec);
  return scheduler.run(graph, cluster, options);
}

inline void print_header(const char* title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title);
  std::printf("============================================================\n");
}

/// One paper-vs-measured row.
inline void print_row(const char* label, double paper_value,
                      double measured_value, const char* unit) {
  std::printf("  %-28s paper %8.1f %-4s   measured %8.1f %-4s\n", label,
              paper_value, unit, measured_value, unit);
}

inline void print_report_line(const char* label,
                              const exec::RunReport& report) {
  std::printf("  %-28s %8.1f s  %s  (attempts %zu, failures %zu, "
              "preempt %u, crashes %u)%s%s\n",
              label, report.makespan_seconds(),
              report.success ? "ok    " : "FAILED", report.task_attempts,
              report.task_failures, report.worker_preemptions,
              report.worker_crashes,
              report.success ? "" : " reason: ",
              report.success ? "" : report.failure_reason.c_str());
}

}  // namespace hepvine::bench
