// Fig 10 — Import hoisting sweep.
//
// Paper setup: 15,000 independent serverless function calls importing
// numpy, executed on 16 32-core workers, with the per-call compute scaled
// across a "complexity" range of 0.125..64 (roughly 0.1 s .. 35 s). Axes:
// hoisted vs unhoisted imports x TaskVine local storage vs VAST shared
// filesystem. Expected shape: hoisting gives a large speedup for
// fine-grained (short) tasks and fades for long tasks; local storage
// slightly outperforms the shared filesystem because import metadata
// lookups stay on the node.
#include <vector>

#include "bench_common.h"
#include "hep/histogram.h"

using namespace hepvine;
using namespace hepvine::bench;

namespace {

/// Build the paper's synthetic workflow: `n` independent function calls of
/// fixed compute, no reduction.
dag::TaskGraph flat_workflow(std::size_t n, double cpu_seconds) {
  dag::TaskGraph graph;
  for (std::size_t i = 0; i < n; ++i) {
    dag::TaskSpec spec;
    spec.category = "call";
    spec.function = "scaled_fn";
    spec.cpu_seconds = cpu_seconds;
    spec.output_bytes = 256 * util::kKiB;
    spec.memory_bytes = 512 * util::kMiB;
    spec.fn = [i](const std::vector<dag::ValuePtr>&) {
      return std::make_shared<dag::ScalarValue>(static_cast<double>(i));
    };
    graph.add_task(std::move(spec));
  }
  return graph;
}

}  // namespace

int main() {
  print_header("Fig 10: Import hoisting x storage sweep (15k function calls)");

  const std::size_t calls = fast_mode() ? 2'000 : 15'000;
  const std::uint32_t workers = 16;

  // Paper: complexity 0.125..64 maps ~linearly onto 0.1s..35s.
  const std::vector<double> complexities = {0.125, 0.5, 2.0, 8.0, 32.0, 64.0};

  std::printf("  %zu calls on %u 32-core workers; import: numpy\n\n", calls,
              workers);
  std::printf("  %-10s %14s %14s %14s %14s\n", "complexity", "local+hoist",
              "local", "sharedfs+hoist", "sharedfs");

  for (double complexity : complexities) {
    const double cpu = 0.1 + (35.0 - 0.1) * (complexity / 64.0);
    double results[4] = {};
    int idx = 0;
    for (bool shared_fs : {false, true}) {
      for (bool hoist : {true, false}) {
        const dag::TaskGraph graph = flat_workflow(calls, cpu);
        cluster::NodeSpec node = cluster::paper_worker_node();
        node.cores = 32;
        cluster::ClusterSpec cspec = cluster::paper_cluster(
            workers, node, storage::vast_spec(), 5);
        cspec.batch.preemption_rate_per_hour = 0;
        cluster::Cluster cluster(cspec);

        exec::RunOptions options;
        options.seed = 5;
        options.mode = exec::ExecMode::kFunctionCalls;
        options.hoist_imports = hoist;
        options.env_from_shared_fs = shared_fs;
        options.imports = pyrt::ImportSet{{pyrt::numpy_lib()}};
        // numpy-only environment; much smaller than the full HEP stack.
        options.python.environment_bytes = 100 * util::kMB;
        options.exec_time_jitter = 0.05;

        vine::VineScheduler scheduler;
        const auto report = scheduler.run(graph, cluster, options);
        results[idx++] =
            report.success ? report.makespan_seconds() : -1.0;
      }
    }
    std::printf("  %-10.3f %13.1fs %13.1fs %13.1fs %13.1fs\n", complexity,
                results[0], results[1], results[2], results[3]);
  }
  std::printf("\n  shape: hoisting helps most at low complexity; local "
              "storage edges out the shared filesystem (paper Fig 10)\n");
  return 0;
}
