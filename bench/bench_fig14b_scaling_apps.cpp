// Fig 14b — Scaling DV3-Large and RS-TriPhoton from 120 to 2400 cores on
// TaskVine.
//
// Paper: DV3-Large reaches peak performance around 1200 cores (further
// cores add little once input staging dominates); RS-TriPhoton keeps
// gaining, sub-linearly, up to 2400 cores. Dask.Distributed cannot run
// these workloads at this scale (crashes/hangs) — demonstrated at one
// configuration.
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 14b: Application scaling, 120-2400 cores (TaskVine)");

  const std::vector<std::uint32_t> cores = {120, 240, 600, 1200, 2400};

  for (int which = 0; which < 2; ++which) {
    apps::WorkloadSpec workload =
        which == 0 ? apps::dv3_large() : apps::rs_triphoton();
    workload.events_per_chunk = 50;
    RunConfig config;
    if (which == 1) config.node = cluster::triphoton_worker_node();
    if (fast_mode()) {
      workload.process_tasks = which == 0 ? 1'500 : 600;
      workload.input_bytes = (which == 0 ? 120 : 50) * util::kGB;
    }

    std::printf("\n%s:\n", workload.name.c_str());
    std::printf("  %8s %12s %10s\n", "cores", "makespan", "speedup");
    double base = 0;
    for (std::uint32_t c : cores) {
      RunConfig cfg = config;
      cfg.workers = c / 12;
      exec::RunOptions options;
      options.seed = 15;
      options.mode = exec::ExecMode::kFunctionCalls;
      vine::VineScheduler scheduler;
      const auto report = run_workload(scheduler, workload, cfg, options);
      if (base == 0) base = report.makespan_seconds();
      std::printf("  %8u %11.1fs %9.2fx %s\n", c,
                  report.makespan_seconds(),
                  base / report.makespan_seconds(),
                  report.success ? "" : "[FAILED]");
    }
  }

  // Dask.Distributed at DV3-Large scale: the paper reports consistent
  // failure (worker/application crashes and hangs).
  {
    apps::WorkloadSpec workload = apps::dv3_large();
    workload.events_per_chunk = 50;
    if (fast_mode()) {
      workload.process_tasks = 1'500;
      workload.input_bytes = 120 * util::kGB;
    }
    RunConfig config;
    config.workers = scaled(200, 40);  // the full 2400 cores
    exec::RunOptions options;
    options.seed = 15;
    options.max_sim_time = 3 * util::kHour;
    dd::DaskDistScheduler scheduler;
    const auto report = run_workload(scheduler, workload, config, options);
    std::printf("\nDask.Distributed on %s at %u cores: %s%s\n",
                workload.name.c_str(), config.workers * 12,
                report.success ? "completed (paper: fails at this scale) in "
                               : "FAILED: ",
                report.success
                    ? (std::to_string(report.makespan_seconds()) + "s").c_str()
                    : report.failure_reason.c_str());
    std::printf("  worker-process crashes: %u\n", report.worker_crashes);
  }
  return 0;
}
