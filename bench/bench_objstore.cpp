// Object-store ablation (Figs 8-10 axis): the serverless run with and
// without the node-local zero-copy object store.
//
// With the store on, a FunctionCall output is published into its node's
// in-memory store instead of being serialized and written to scratch disk;
// colocated consumers take it by reference (free), remote consumers force
// a spill onto the ordinary replica/peer-transfer paths. The headline
// workload is RS-TriPhoton: its 2.6 GB partials make the avoided
// per-output serialization+write a full second of task time, so the store
// shows up in the makespan instead of drowning in transfer noise (on
// DV3's 100 MB outputs the delta is real but ~0.1% of a transfer-bound
// run). The structural win is a few percent, which a single placement
// roll can mask at reduced scale, so each arm runs a small seed ensemble
// and the gate compares mean makespans. Per-seed gates still require the
// same physics and a balanced put/spill/drop ledger on every run.
//
// Emits BENCH_objstore.json in the working directory.
#include "bench_common.h"

#include <string>
#include <vector>

namespace {

int violations = 0;

void violation(const std::string& what) {
  std::fprintf(stderr, "VIOLATION: %s\n", what.c_str());
  ++violations;
}

}  // namespace

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header(
      "Ablation: node-local object store (RS-TriPhoton, function calls)");

  apps::WorkloadSpec workload = apps::rs_triphoton();
  if (fast_mode()) {
    // 1/5 scale along every axis, preserving the per-dataset reduction
    // shape (200 partials/dataset) and the 20 tasks-per-worker ratio.
    workload.process_tasks = 800;
    workload.datasets = 4;
    workload.input_bytes = 100 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(200, 40);
  // The reduced-scale runs are noisier, so fast mode uses the larger
  // ensemble; full scale converges with fewer (and costlier) runs.
  const unsigned seeds = scaled(3, 5);

  auto run_store = [&](bool object_store, unsigned seed) {
    vine::VineTunables tun;
    tun.object_store = object_store;
    vine::VineScheduler scheduler(vine::taskvine_policy(), tun);
    exec::RunOptions options;
    options.seed = seed;
    options.mode = exec::ExecMode::kFunctionCalls;
    // The ablation compares cost-model structure, not heterogeneity noise:
    // with jitter off, any makespan delta is attributable to the store.
    options.exec_time_jitter = 0.0;
    apply_txn_capture(options);
    const auto report = run_workload(scheduler, workload, config, options);
    maybe_write_spans(report);
    return report;
  };

  std::vector<double> off_s;
  std::vector<double> on_s;
  std::uint64_t puts = 0, put_bytes = 0, ref_hits = 0;
  std::uint64_t spills = 0, spill_bytes = 0, drops = 0;
  exec::RunReport last_off;
  exec::RunReport last_on;
  for (unsigned seed = 1; seed <= seeds; ++seed) {
    const auto off = run_store(false, seed);
    const auto on = run_store(true, seed);
    off_s.push_back(off.makespan_seconds());
    on_s.push_back(on.makespan_seconds());
    std::printf("  seed %u: store off %7.1f s  store on %7.1f s  (%.3fx)\n",
                seed, off.makespan_seconds(), on.makespan_seconds(),
                off.makespan_seconds() / on.makespan_seconds());

    if (!off.success) {
      violation("store-off run failed (seed " + std::to_string(seed) +
                "): " + off.failure_reason);
    }
    if (!on.success) {
      violation("store-on run failed (seed " + std::to_string(seed) +
                "): " + on.failure_reason);
    }
    if (on.store_puts == 0) {
      violation("store-on run published no objects (seed " +
                std::to_string(seed) + ")");
    }
    if (on.store_spills + on.store_drops != on.store_puts) {
      violation("store ledger does not balance (seed " +
                std::to_string(seed) + "): puts != spills + drops");
    }
    if (off.store_puts != 0 || off.store_ref_hits != 0 ||
        off.store_spills != 0) {
      violation("store-off run reported nonzero store counters (seed " +
                std::to_string(seed) + ")");
    }
    puts += on.store_puts;
    put_bytes += on.store_put_bytes;
    ref_hits += on.store_ref_hits;
    spills += on.store_spills;
    spill_bytes += on.store_spill_bytes;
    drops += on.store_drops;
    last_off = off;
    last_on = on;
  }

  print_report_line("function calls, store off", last_off);
  print_report_line("function calls, store on", last_on);
  print_blame_line("store off", last_off);
  print_blame_line("store on", last_on);

  double mean_off = 0.0, mean_on = 0.0;
  for (double s : off_s) mean_off += s;
  for (double s : on_s) mean_on += s;
  mean_off /= static_cast<double>(seeds);
  mean_on /= static_cast<double>(seeds);
  const double speedup = mean_on > 0 ? mean_off / mean_on : 0.0;

  std::printf("\n  store ledger (%u runs): %llu puts (%.1f GB), %llu by-ref "
              "handles, %llu spills (%.1f GB), %llu in-memory drops\n",
              seeds, static_cast<unsigned long long>(puts),
              static_cast<double>(put_bytes) / 1e9,
              static_cast<unsigned long long>(ref_hits),
              static_cast<unsigned long long>(spills),
              static_cast<double>(spill_bytes) / 1e9,
              static_cast<unsigned long long>(drops));
  const double zero_copy_fraction =
      puts > 0 ? static_cast<double>(drops) / static_cast<double>(puts) : 0.0;
  std::printf("  %.0f%% of outputs never touched a disk; mean makespan "
              "%.1fs -> %.1fs (%.3fx)\n",
              zero_copy_fraction * 100, mean_off, mean_on, speedup);

  // --- aggregate gates ----------------------------------------------------
  if (mean_on >= mean_off) {
    violation("store-on mean makespan did not beat store-off (" +
              std::to_string(mean_on) + "s vs " + std::to_string(mean_off) +
              "s over " + std::to_string(seeds) + " seeds)");
  }
  if (ref_hits == 0) {
    violation("no colocated consumer took a by-reference handle");
  }

  std::FILE* f = std::fopen("BENCH_objstore.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"objstore\",\n  \"fast_mode\": %s,\n",
                 fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"workers\": %u,\n  \"process_tasks\": %u,\n",
                 config.workers, workload.process_tasks);
    std::fprintf(f, "  \"seeds\": %u,\n", seeds);
    std::fprintf(f, "  \"makespan_off_s\": [");
    for (unsigned i = 0; i < seeds; ++i) {
      std::fprintf(f, "%s%.3f", i ? ", " : "", off_s[i]);
    }
    std::fprintf(f, "],\n  \"makespan_on_s\": [");
    for (unsigned i = 0; i < seeds; ++i) {
      std::fprintf(f, "%s%.3f", i ? ", " : "", on_s[i]);
    }
    std::fprintf(f,
                 "],\n  \"mean_off_s\": %.3f,\n  \"mean_on_s\": %.3f,\n"
                 "  \"speedup\": %.4f,\n",
                 mean_off, mean_on, speedup);
    std::fprintf(f,
                 "  \"store_puts\": %llu,\n  \"store_put_bytes\": %llu,\n"
                 "  \"store_ref_hits\": %llu,\n  \"store_spills\": %llu,\n"
                 "  \"store_spill_bytes\": %llu,\n  \"store_drops\": %llu,\n",
                 static_cast<unsigned long long>(puts),
                 static_cast<unsigned long long>(put_bytes),
                 static_cast<unsigned long long>(ref_hits),
                 static_cast<unsigned long long>(spills),
                 static_cast<unsigned long long>(spill_bytes),
                 static_cast<unsigned long long>(drops));
    std::fprintf(f, "  \"zero_copy_fraction\": %.4f,\n", zero_copy_fraction);
    std::fprintf(f, "  \"violations\": %d\n}\n", violations);
    std::fclose(f);
  } else {
    violation("could not write BENCH_objstore.json");
  }

  if (violations > 0) {
    std::fprintf(stderr, "\n%d violation(s)\n", violations);
    return 1;
  }
  std::printf("\nall object-store gates passed\n");
  return 0;
}
