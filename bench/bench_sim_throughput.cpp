// Simulation-substrate throughput: the paper-scale network scenario
// (600 nodes x 12 cores, Figs 14-15) driven directly on net::Network,
// comparing the incremental component recompute against the reference
// full recompute.
//
// Each of the 7200 core slots cycles through fetch -> compute -> fetch:
// a cold-start import from the shared filesystem first, then peer fetches
// from pseudo-random uplinks, with compute gaps between transfers so the
// instantaneous flow population matches a compute-dominated HEP campaign.
// Both modes replay the exact same scenario (peer choices and gaps are
// hashed from stable slot coordinates, not drawn from shared mutable
// state), so completions, bytes, and the final simulated tick must agree
// exactly; the bench fails if they diverge, or if the incremental path is
// not at least 3x faster in wall-clock.
//
// Emits BENCH_sim_throughput.json in the working directory.
// HEPVINE_FAST=1 shrinks the campaign (60 nodes, fewer rounds) for smoke
// runs; the identity and speedup gates still apply.
//
// vine-lint: allow(ambient-entropy) — steady_clock here measures the
// simulator's own wall-clock throughput (the bench's whole point); it
// never feeds simulated state, which runs entirely on virtual ticks.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/engine.h"
#include "util/env.h"
#include "util/units.h"

namespace {

using hepvine::net::FlowId;
using hepvine::net::LinkId;
using hepvine::net::Network;
using hepvine::net::NetworkOptions;
using hepvine::util::Tick;

[[nodiscard]] bool fast_mode() {
  return hepvine::util::env_flag("HEPVINE_FAST");
}

/// Order-independent determinism: every random choice is a pure function
/// of stable slot coordinates, so both recompute modes see the identical
/// scenario no matter how callback order is implemented internally.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

struct Params {
  std::uint32_t nodes = 600;
  std::uint32_t slots_per_node = 12;
  std::uint32_t rounds = 12;  // transfers per slot, incl. the FS import
};

struct Result {
  double wall_seconds = 0;
  std::uint64_t flows_completed = 0;
  std::uint64_t bytes_completed = 0;
  std::uint64_t recomputes = 0;
  std::uint64_t flow_visits = 0;
  std::uint64_t engine_events = 0;
  Tick end_tick = 0;
  [[nodiscard]] double flow_events_per_sec() const {
    const double events =
        static_cast<double>(flows_completed + recomputes);
    return wall_seconds > 0 ? events / wall_seconds : 0;
  }
};

class Campaign {
 public:
  Campaign(const Params& params, bool incremental)
      : params_(params), net_(engine_, NetworkOptions{incremental}) {
    fs_ = net_.add_link("shared-fs", 25e9);
    for (std::uint32_t n = 0; n < params_.nodes; ++n) {
      up_.push_back(net_.add_link("up" + std::to_string(n), 1.25e9));
      down_.push_back(net_.add_link("down" + std::to_string(n), 1.25e9));
    }
  }

  Result run() {
    for (std::uint32_t n = 0; n < params_.nodes; ++n) {
      for (std::uint32_t s = 0; s < params_.slots_per_node; ++s) {
        // Stagger slot starts across the first ~10 s, the way a batch
        // system matches workers over time: a synchronized cold start
        // would put every slot's FS import in one connected component
        // and (correctly, but uninterestingly) degenerate the
        // incremental recompute to the full one.
        const Tick start = static_cast<Tick>(mix(n * 131 + s) % 10'000'000);
        engine_.schedule_at(start, [this, n, s] {
          begin_cycle(n, s, params_.rounds);
        });
      }
    }
    const auto t0 = std::chrono::steady_clock::now();
    engine_.run();
    const auto t1 = std::chrono::steady_clock::now();

    Result r;
    r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    r.flows_completed = net_.flows_completed();
    r.bytes_completed = net_.total_bytes_completed();
    r.recomputes = net_.recomputes();
    r.flow_visits = net_.recompute_flow_visits();
    r.engine_events = engine_.executed();
    r.end_tick = engine_.now();
    return r;
  }

 private:
  void begin_cycle(std::uint32_t node, std::uint32_t slot,
                   std::uint32_t remaining) {
    if (remaining == 0) return;
    const std::uint64_t h =
        mix((static_cast<std::uint64_t>(node) << 32) |
            (static_cast<std::uint64_t>(slot) << 8) | remaining);
    std::vector<LinkId> path;
    if (remaining == params_.rounds) {
      // Cold start: every slot's first fetch reads from the shared FS.
      path = {fs_, down_[node]};
    } else {
      std::uint32_t peer =
          static_cast<std::uint32_t>(h % params_.nodes);
      if (peer == node) peer = (peer + 1) % params_.nodes;
      path = {up_[peer], down_[node]};
    }
    const std::uint64_t bytes =
        (6 + (h >> 32) % 5) * hepvine::util::kMB;
    const Tick compute_gap =
        80'000 + static_cast<Tick>((h >> 16) % 40'000);
    net_.start_flow(std::move(path), bytes, 200,
                    [this, node, slot, remaining, compute_gap](FlowId) {
                      engine_.schedule_after(compute_gap,
                                             [this, node, slot, remaining] {
                                               begin_cycle(node, slot,
                                                           remaining - 1);
                                             });
                    });
  }

  Params params_;
  hepvine::sim::Engine engine_;
  Network net_;
  LinkId fs_ = 0;
  std::vector<LinkId> up_;
  std::vector<LinkId> down_;
};

void print_result(const char* label, const Result& r) {
  std::printf(
      "  %-12s wall %8.3f s   flows %8llu   recomputes %9llu   "
      "flow-visits %12llu   flow-events/s %12.0f\n",
      label, r.wall_seconds,
      static_cast<unsigned long long>(r.flows_completed),
      static_cast<unsigned long long>(r.recomputes),
      static_cast<unsigned long long>(r.flow_visits),
      r.flow_events_per_sec());
}

void json_result(std::FILE* f, const char* key, const Result& r) {
  std::fprintf(f,
               "  \"%s\": {\n"
               "    \"wall_seconds\": %.6f,\n"
               "    \"flows_completed\": %llu,\n"
               "    \"bytes_completed\": %llu,\n"
               "    \"recomputes\": %llu,\n"
               "    \"flow_visits\": %llu,\n"
               "    \"engine_events\": %llu,\n"
               "    \"end_tick_us\": %lld,\n"
               "    \"flow_events_per_sec\": %.1f\n"
               "  }",
               key, r.wall_seconds,
               static_cast<unsigned long long>(r.flows_completed),
               static_cast<unsigned long long>(r.bytes_completed),
               static_cast<unsigned long long>(r.recomputes),
               static_cast<unsigned long long>(r.flow_visits),
               static_cast<unsigned long long>(r.engine_events),
               static_cast<long long>(r.end_tick),
               r.flow_events_per_sec());
}

}  // namespace

int main() {
  Params params;
  if (fast_mode()) {
    params.nodes = 60;
    params.rounds = 6;
  }
  std::printf(
      "bench_sim_throughput: %u nodes x %u slots, %u transfers/slot "
      "(%u flows)\n",
      params.nodes, params.slots_per_node, params.rounds,
      params.nodes * params.slots_per_node * params.rounds);

  const Result inc = Campaign(params, true).run();
  print_result("incremental", inc);
  const Result ref = Campaign(params, false).run();
  print_result("reference", ref);

  const bool identical = inc.flows_completed == ref.flows_completed &&
                         inc.bytes_completed == ref.bytes_completed &&
                         inc.end_tick == ref.end_tick &&
                         inc.engine_events == ref.engine_events;
  const double speedup =
      inc.wall_seconds > 0 ? ref.wall_seconds / inc.wall_seconds : 0;
  std::printf("  speedup %.2fx   identical %s\n", speedup,
              identical ? "yes" : "NO");

  std::FILE* f = std::fopen("BENCH_sim_throughput.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"sim_throughput\",\n"
                 "  \"nodes\": %u,\n"
                 "  \"slots_per_node\": %u,\n"
                 "  \"rounds\": %u,\n",
                 params.nodes, params.slots_per_node, params.rounds);
    json_result(f, "incremental", inc);
    std::fputs(",\n", f);
    json_result(f, "reference", ref);
    std::fprintf(f,
                 ",\n  \"speedup\": %.3f,\n"
                 "  \"identical\": %s\n"
                 "}\n",
                 speedup, identical ? "true" : "false");
    std::fclose(f);
  }

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: incremental and reference paths diverged\n");
    return 1;
  }
  // The 3x floor is an acceptance criterion for the paper-scale scenario;
  // the shrunken fast-mode campaign has too few concurrent flows for the
  // reference path's linear scan to hurt as much, so it only gates
  // identity.
  if (!fast_mode() && speedup < 3.0) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx below the 3x acceptance floor\n",
                 speedup);
    return 1;
  }
  return 0;
}
