// Ablation — locality-aware placement.
//
// TaskVine's replica table lets it schedule tasks where their inputs
// already sit ("moving tasks to data is the preferred mode", Section IV-B).
// This compares locality-aware placement against blind round-robin on an
// accumulation-heavy workload.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: locality-aware placement vs round-robin");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  workload.process_output_bytes = 250 * util::kMB;  // heavy partials
  if (fast_mode()) {
    workload.process_tasks = 800;
    workload.input_bytes = 64 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(50, 16);

  for (bool locality : {true, false}) {
    vine::DataPolicy policy = vine::taskvine_policy();
    policy.locality_placement = locality;
    vine::VineScheduler scheduler(policy, vine::VineTunables{});
    exec::RunOptions options;
    options.seed = 44;
    options.mode = exec::ExecMode::kFunctionCalls;
    const auto report = run_workload(scheduler, workload, config, options);
    std::printf("  %-22s makespan %8.1fs, peer traffic %s, fs traffic %s %s\n",
                locality ? "locality placement" : "round-robin only",
                report.makespan_seconds(),
                util::format_bytes(report.transfers.peer_bytes()).c_str(),
                util::format_bytes(report.transfers.row_total(
                    config.workers + 1)).c_str(),
                report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: locality cuts peer traffic (accumulators run "
              "where partials already live)\n");
  return 0;
}
