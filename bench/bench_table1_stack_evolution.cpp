// Table I — Overall Stack Performance.
//
// The paper's headline result: the standard DV3 run (17k tasks, 1.2 TB, 200
// twelve-core workers) executed on each evolution of the application stack.
//
//   Stack 1  Work Queue + HDFS                      3545 s   1.00x
//   Stack 2  Work Queue + VAST                      3378 s   1.05x
//   Stack 3  TaskVine (standard tasks) + VAST        730 s   4.86x
//   Stack 4  TaskVine (function calls) + VAST        272 s  13.03x
//
// The shape to reproduce: new storage hardware alone is a marginal win;
// moving data scheduling into the cluster (TaskVine) is ~5x; converting
// tasks to serverless function calls is ~13x total.
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Table I: Overall Stack Performance (DV3-Large)");

  apps::WorkloadSpec workload = apps::dv3_large();
  workload.events_per_chunk = fast_mode() ? 200 : 500;
  if (fast_mode()) {
    workload.process_tasks = 1500;
    workload.input_bytes = 120 * util::kGB;
  }

  RunConfig config;
  config.workers = scaled(200, 40);

  exec::RunOptions options;
  options.seed = 11;

  struct Stack {
    const char* label = "";
    double paper_seconds = 0;
    storage::SharedFsSpec fs;
    bool taskvine = false;
    exec::ExecMode mode;
  };
  const std::vector<Stack> stacks = {
      {"Stack 1: WQ + HDFS", 3545, storage::hdfs_spec(), false,
       exec::ExecMode::kStandardTasks},
      {"Stack 2: WQ + VAST", 3378, storage::vast_spec(), false,
       exec::ExecMode::kStandardTasks},
      {"Stack 3: TaskVine tasks", 730, storage::vast_spec(), true,
       exec::ExecMode::kStandardTasks},
      {"Stack 4: TaskVine functions", 272, storage::vast_spec(), true,
       exec::ExecMode::kFunctionCalls},
  };

  double baseline = 0;
  double paper_baseline = 0;
  for (const Stack& stack : stacks) {
    RunConfig cfg = config;
    cfg.fs = stack.fs;
    exec::RunOptions opts = options;
    opts.mode = stack.mode;

    exec::RunReport report;
    if (stack.taskvine) {
      vine::VineScheduler scheduler;
      report = run_workload(scheduler, workload, cfg, opts);
    } else {
      wq::WorkQueueScheduler scheduler;
      report = run_workload(scheduler, workload, cfg, opts);
    }
    maybe_write_spans(report);
    if (baseline == 0) {
      baseline = report.makespan_seconds();
      paper_baseline = stack.paper_seconds;
    }
    std::printf("  %-30s paper %6.0fs (%5.2fx)   measured %7.1fs (%5.2fx) %s\n",
                stack.label, stack.paper_seconds,
                paper_baseline / stack.paper_seconds,
                report.makespan_seconds(),
                baseline / report.makespan_seconds(),
                report.success ? "" : "[FAILED]");
    print_blame_line("", report);
  }
  return 0;
}
