// Ablation — intermediate-file replication under preemption.
//
// TaskVine can replicate freshly produced intermediates onto additional
// workers so that a preempted worker does not force lineage re-execution.
// This sweeps the replication factor against an aggressive preemption
// rate and reports recovery work (lineage resets, attempts) and the
// replication cost (peer traffic).
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: intermediate replication vs preemption");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 600;
    workload.input_bytes = 48 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(50, 16);
  config.preemption_rate_per_hour = 30.0;  // mean worker lifetime: 2 min

  std::printf("  %-10s %12s %14s %12s %16s\n", "replicas", "makespan",
              "lineage resets", "attempts", "peer bytes");
  for (std::uint32_t replicas : std::vector<std::uint32_t>{1, 2, 3}) {
    exec::RunOptions options;
    options.seed = 47;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.max_task_retries = 40;
    options.intermediate_replicas = replicas;
    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, workload, config, options);
    std::printf("  %-10u %11.1fs %14zu %12zu %16s %s\n", replicas,
                report.makespan_seconds(), report.lineage_resets,
                report.task_attempts,
                util::format_bytes(report.transfers.peer_bytes()).c_str(),
                report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: replication trades peer bandwidth for "
              "recovery work under preemption\n");
  return 0;
}
