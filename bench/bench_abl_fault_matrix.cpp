// Ablation — recovery cost under a matrix of injected fault schedules.
//
// The paper's runs survive preempted workers, broken transfers and shared-FS
// bad days; this bench makes each failure mode an explicit, deterministic
// input (fault::FaultSchedule) and measures what recovery costs on top of a
// clean run: extra makespan, re-fetch retries, backoff wait, and lineage
// re-execution. Every injected fault lands at a fixed fraction of the clean
// run's makespan, so rows are comparable across machines and seeds.
//
// With HEPVINE_TXN_LOG=<prefix> every run streams its transaction log to
// <prefix>.<n>.txn; CI runs the bench twice and diffs the logs to prove the
// fault/recovery timeline replays bit-identically.
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;
using util::Tick;

int main() {
  print_header("Ablation: fault-injection matrix");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 800;
    workload.input_bytes = 64 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(50, 16);
  config.preemption_rate_per_hour = 0.0;  // faults come from the schedule

  exec::RunOptions base;
  base.seed = 47;
  base.mode = exec::ExecMode::kFunctionCalls;
  base.max_task_retries = 60;

  auto run_case = [&](const char* label, const fault::FaultSchedule& faults) {
    exec::RunOptions options = base;
    options.faults = faults;
    apply_txn_capture(options);
    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, workload, config, options);
    std::printf(
        "  %-22s %9.1fs %7llu %7llu %7llu %8llu %8.1fs %7zu %s\n", label,
        report.makespan_seconds(),
        static_cast<unsigned long long>(report.faults.faults_injected),
        static_cast<unsigned long long>(report.faults.worker_crashes),
        static_cast<unsigned long long>(report.faults.transfers_killed),
        static_cast<unsigned long long>(report.faults.transfer_retries),
        util::to_seconds(report.faults.backoff_wait), report.lineage_resets,
        report.success ? "" : "[FAILED]");
    return report;
  };

  std::printf("  %-22s %10s %7s %7s %7s %8s %9s %7s\n", "schedule",
              "makespan", "faults", "crash", "xferko", "retries", "backoff",
              "resets");

  // Clean probe: the baseline cost and the clock all schedules hang off.
  const auto clean = run_case("none", fault::FaultSchedule{});
  const Tick m = clean.makespan;

  {
    fault::FaultSchedule s;
    for (int i = 1; i <= 10; ++i) s.kill_transfers(m * i / 12, 4);
    run_case("transfer-kill storm", s);
  }
  {
    fault::FaultSchedule s;
    s.crash_worker(m / 4, 0).crash_worker(m / 2, 1).crash_worker(3 * m / 4, 2);
    run_case("crash trio", s);
  }
  {
    fault::FaultSchedule s;
    for (std::int64_t f = 0; f < 32; ++f) {
      s.lose_cached_file(m * (2 + f % 6) / 8, -1, f);
    }
    run_case("cache-loss sweep", s);
  }
  {
    fault::FaultSchedule s;
    s.fs_brownout(m / 5, m / 3, 0.25);
    run_case("fs brownout 25%", s);
  }
  {
    fault::FaultSchedule s;
    s.fs_outage(util::seconds(2), util::seconds(30));
    run_case("fs outage @ startup", s);
  }
  {
    fault::FaultSchedule s;
    s.straggler(m / 10, 1, 4.0, m / 2).straggler(m / 10, 2, 4.0, m / 2);
    run_case("straggler pair 4x", s);
  }
  {
    fault::FaultSchedule s;
    s.stochastic.transfer_kill_prob = 0.02;
    s.stochastic.worker_crash_rate_per_hour = 2.0;
    s.seed = 13;
    run_case("stochastic chaos", s);
  }
  {
    fault::FaultSchedule s;
    s.fs_brownout(m / 6, m / 4, 0.5);
    s.straggler(m / 8, 3, 3.0, m / 3);
    s.crash_worker(m / 2, 0);
    for (int i = 1; i <= 5; ++i) s.kill_transfers(m * i / 6, 2);
    run_case("kitchen sink", s);
  }

  std::printf(
      "\n  expectation: every schedule finishes with the exact physics "
      "result; recovery cost shows up as retries/backoff (transfer kills), "
      "lineage resets (crashes, cache loss), or stretched makespan with no "
      "retries at all (fs windows, stragglers)\n");
  return 0;
}
