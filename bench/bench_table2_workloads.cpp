// Table II — Application workload variants.
//
// Regenerates the paper's workload inventory from the presets: name, task
// count, input size, plus derived graph statistics (roots, sinks, critical
// path) that characterize each configuration.
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Table II: Application Workloads");

  struct Row {
    apps::WorkloadSpec spec;
    double paper_tasks = 0;
    double paper_input_gb = 0;
  };
  std::vector<Row> rows = {
      {apps::dv3_small(), 400, 25},
      {apps::dv3_medium(), 2'900, 200},
      {apps::dv3_large(), 17'000, 1'200},
      {apps::rs_triphoton(), 4'000, 500},
      {apps::dv3_huge(), 185'000, 1'200},
  };

  std::printf("  %-14s %10s %10s %8s %8s %8s %12s\n", "workload", "tasks",
              "input", "roots", "sinks", "files", "crit.path");
  for (Row& row : rows) {
    apps::WorkloadSpec spec = apps::with_events(row.spec, 10);
    if (fast_mode() && spec.name == "DV3-Huge") {
      std::printf("  %-14s (skipped in HEPVINE_FAST mode)\n",
                  spec.name.c_str());
      continue;
    }
    const dag::TaskGraph graph = apps::build_workload(spec, 1);
    std::printf("  %-14s %10zu %10s %8zu %8zu %8zu %10.1fs\n",
                spec.name.c_str(), graph.size(),
                util::format_bytes(graph.input_bytes()).c_str(),
                graph.roots().size(), graph.sinks().size(),
                graph.catalog().size(), graph.critical_path_seconds());
    std::printf("    paper: ~%.0f tasks, %.0f GB input\n", row.paper_tasks,
                row.paper_input_gb);
  }
  return 0;
}
