// Fig 11 — Single-node vs hierarchical reduction (RS-TriPhoton).
//
// Paper: reducing each of 20 datasets with a single task pulls every
// partial onto one worker — cache usage spikes to ~700 GB, workers fail
// (X marks), and the workflow is delayed; rewriting the reduction as a
// tree bounds and evens out per-worker storage and the analysis succeeds.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 11: Reduction topology vs worker cache usage "
               "(RS-TriPhoton)");

  apps::WorkloadSpec workload = apps::rs_triphoton();
  workload.events_per_chunk = 50;
  if (fast_mode()) {
    workload.process_tasks = 800;
    workload.datasets = 8;
    workload.input_bytes = 100 * util::kGB;
  }

  RunConfig config;
  config.workers = scaled(100, 24);
  config.node = cluster::triphoton_worker_node();  // 700 GB scratch disks

  // The paper-era TaskVine had no pressure eviction: a full scratch
  // partition killed the worker. Both reduction shapes therefore run with
  // DataPolicy::evict_on_pressure off to reproduce Fig 11 exactly; a third
  // row re-runs the single-node pathology with the lifecycle's eviction
  // enabled as the ablation. Eviction cannot rescue it — every partial is
  // a pinned input of the dispatched reduction attempt, so nothing is
  // evictable and the overflow still crashes the worker. The fix remains
  // restructuring the DAG.
  struct Variant {
    const char* label = "";
    apps::ReductionShape shape = apps::ReductionShape::kSingleNode;
    bool evict_on_pressure = false;
  };
  for (const auto& variant :
       {Variant{"single-node reduction (original)",
                apps::ReductionShape::kSingleNode, false},
        Variant{"single-node + pressure eviction (ablation)",
                apps::ReductionShape::kSingleNode, true},
        Variant{"tree reduction (restructured DAG)",
                apps::ReductionShape::kTree, false}}) {
    apps::WorkloadSpec shaped = workload;
    shaped.reduction = variant.shape;
    exec::RunOptions options;
    options.seed = 31;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.cache_sample_interval = 5 * util::kSec;
    options.max_task_retries = 12;

    vine::DataPolicy policy = vine::taskvine_policy();
    policy.evict_on_pressure = variant.evict_on_pressure;
    vine::VineScheduler scheduler(policy, vine::VineTunables{});
    const auto report = run_workload(scheduler, shaped, config, options);

    std::printf("\n%s:\n", variant.label);
    print_report_line("  run", report);
    std::printf("%s",
                report.cache.render(report.makespan, 64, 16).c_str());
    std::printf("  peak cache %s, peak/median skew %.1fx, overflow "
                "crashes %u, evictions %llu\n",
                util::format_bytes(report.cache.global_peak()).c_str(),
                report.cache.peak_skew(), report.worker_crashes,
                static_cast<unsigned long long>(report.cache_evictions));
  }
  std::printf("\n  shape: single-node reduction shows outlier workers and "
              "failures (eviction or not — the partials are pinned); tree "
              "reduction is bounded and uniform (paper Fig 11)\n");
  return 0;
}
