// Fig 11 — Single-node vs hierarchical reduction (RS-TriPhoton).
//
// Paper: reducing each of 20 datasets with a single task pulls every
// partial onto one worker — cache usage spikes to ~700 GB, workers fail
// (X marks), and the workflow is delayed; rewriting the reduction as a
// tree bounds and evens out per-worker storage and the analysis succeeds.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 11: Reduction topology vs worker cache usage "
               "(RS-TriPhoton)");

  apps::WorkloadSpec workload = apps::rs_triphoton();
  workload.events_per_chunk = 50;
  if (fast_mode()) {
    workload.process_tasks = 800;
    workload.datasets = 8;
    workload.input_bytes = 100 * util::kGB;
  }

  RunConfig config;
  config.workers = scaled(100, 24);
  config.node = cluster::triphoton_worker_node();  // 700 GB scratch disks

  for (auto [label, shape] :
       {std::pair{"single-node reduction (original)",
                  apps::ReductionShape::kSingleNode},
        std::pair{"tree reduction (restructured DAG)",
                  apps::ReductionShape::kTree}}) {
    apps::WorkloadSpec variant = workload;
    variant.reduction = shape;
    exec::RunOptions options;
    options.seed = 31;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.cache_sample_interval = 5 * util::kSec;
    options.max_task_retries = 12;

    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, variant, config, options);

    std::printf("\n%s:\n", label);
    print_report_line("  run", report);
    std::printf("%s",
                report.cache.render(report.makespan, 64, 16).c_str());
    std::printf("  peak cache %s, peak/median skew %.1fx, overflow "
                "crashes %u\n",
                util::format_bytes(report.cache.global_peak()).c_str(),
                report.cache.peak_skew(), report.worker_crashes);
  }
  std::printf("\n  shape: single-node reduction shows outlier workers and "
              "failures; tree reduction is bounded and uniform (paper "
              "Fig 11)\n");
  return 0;
}
