file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_preemption.dir/bench_abl_preemption.cpp.o"
  "CMakeFiles/bench_abl_preemption.dir/bench_abl_preemption.cpp.o.d"
  "bench_abl_preemption"
  "bench_abl_preemption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_preemption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
