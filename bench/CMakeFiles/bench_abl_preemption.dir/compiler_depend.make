# Empty compiler generated dependencies file for bench_abl_preemption.
# This may be replaced when dependencies are built.
