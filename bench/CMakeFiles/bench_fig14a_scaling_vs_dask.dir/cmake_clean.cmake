file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14a_scaling_vs_dask.dir/bench_fig14a_scaling_vs_dask.cpp.o"
  "CMakeFiles/bench_fig14a_scaling_vs_dask.dir/bench_fig14a_scaling_vs_dask.cpp.o.d"
  "bench_fig14a_scaling_vs_dask"
  "bench_fig14a_scaling_vs_dask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14a_scaling_vs_dask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
