# Empty dependencies file for bench_fig14a_scaling_vs_dask.
# This may be replaced when dependencies are built.
