file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_dispatch_cost.dir/bench_abl_dispatch_cost.cpp.o"
  "CMakeFiles/bench_abl_dispatch_cost.dir/bench_abl_dispatch_cost.cpp.o.d"
  "bench_abl_dispatch_cost"
  "bench_abl_dispatch_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_dispatch_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
