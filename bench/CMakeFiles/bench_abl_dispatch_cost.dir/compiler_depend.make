# Empty compiler generated dependencies file for bench_abl_dispatch_cost.
# This may be replaced when dependencies are built.
