# Empty compiler generated dependencies file for bench_disk_pressure.
# This may be replaced when dependencies are built.
