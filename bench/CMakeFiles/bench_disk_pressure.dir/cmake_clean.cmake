file(REMOVE_RECURSE
  "CMakeFiles/bench_disk_pressure.dir/bench_disk_pressure.cpp.o"
  "CMakeFiles/bench_disk_pressure.dir/bench_disk_pressure.cpp.o.d"
  "bench_disk_pressure"
  "bench_disk_pressure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disk_pressure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
