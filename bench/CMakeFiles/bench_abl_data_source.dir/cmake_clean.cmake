file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_data_source.dir/bench_abl_data_source.cpp.o"
  "CMakeFiles/bench_abl_data_source.dir/bench_abl_data_source.cpp.o.d"
  "bench_abl_data_source"
  "bench_abl_data_source.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_data_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
