# Empty dependencies file for bench_abl_data_source.
# This may be replaced when dependencies are built.
