# Empty dependencies file for bench_abl_locality.
# This may be replaced when dependencies are built.
