file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_locality.dir/bench_abl_locality.cpp.o"
  "CMakeFiles/bench_abl_locality.dir/bench_abl_locality.cpp.o.d"
  "bench_abl_locality"
  "bench_abl_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
