file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_reduction_arity.dir/bench_abl_reduction_arity.cpp.o"
  "CMakeFiles/bench_abl_reduction_arity.dir/bench_abl_reduction_arity.cpp.o.d"
  "bench_abl_reduction_arity"
  "bench_abl_reduction_arity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_reduction_arity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
