# Empty compiler generated dependencies file for bench_abl_reduction_arity.
# This may be replaced when dependencies are built.
