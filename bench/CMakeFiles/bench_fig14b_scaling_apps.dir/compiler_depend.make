# Empty compiler generated dependencies file for bench_fig14b_scaling_apps.
# This may be replaced when dependencies are built.
