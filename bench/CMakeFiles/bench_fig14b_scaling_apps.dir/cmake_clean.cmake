file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14b_scaling_apps.dir/bench_fig14b_scaling_apps.cpp.o"
  "CMakeFiles/bench_fig14b_scaling_apps.dir/bench_fig14b_scaling_apps.cpp.o.d"
  "bench_fig14b_scaling_apps"
  "bench_fig14b_scaling_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14b_scaling_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
