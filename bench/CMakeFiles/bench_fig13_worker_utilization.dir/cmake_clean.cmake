file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_worker_utilization.dir/bench_fig13_worker_utilization.cpp.o"
  "CMakeFiles/bench_fig13_worker_utilization.dir/bench_fig13_worker_utilization.cpp.o.d"
  "bench_fig13_worker_utilization"
  "bench_fig13_worker_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_worker_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
