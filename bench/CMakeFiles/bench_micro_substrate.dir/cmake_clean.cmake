file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_substrate.dir/bench_micro_substrate.cpp.o"
  "CMakeFiles/bench_micro_substrate.dir/bench_micro_substrate.cpp.o.d"
  "bench_micro_substrate"
  "bench_micro_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
