# Empty dependencies file for bench_fig8_task_time_distribution.
# This may be replaced when dependencies are built.
