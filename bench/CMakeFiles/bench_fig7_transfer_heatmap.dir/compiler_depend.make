# Empty compiler generated dependencies file for bench_fig7_transfer_heatmap.
# This may be replaced when dependencies are built.
