file(REMOVE_RECURSE
  "CMakeFiles/bench_ha_recovery.dir/bench_ha_recovery.cpp.o"
  "CMakeFiles/bench_ha_recovery.dir/bench_ha_recovery.cpp.o.d"
  "bench_ha_recovery"
  "bench_ha_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ha_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
