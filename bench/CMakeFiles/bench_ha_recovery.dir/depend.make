# Empty dependencies file for bench_ha_recovery.
# This may be replaced when dependencies are built.
