# Empty compiler generated dependencies file for bench_fig11_tree_reduction.
# This may be replaced when dependencies are built.
