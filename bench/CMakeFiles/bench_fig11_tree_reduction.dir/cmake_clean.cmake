file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_tree_reduction.dir/bench_fig11_tree_reduction.cpp.o"
  "CMakeFiles/bench_fig11_tree_reduction.dir/bench_fig11_tree_reduction.cpp.o.d"
  "bench_fig11_tree_reduction"
  "bench_fig11_tree_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_tree_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
