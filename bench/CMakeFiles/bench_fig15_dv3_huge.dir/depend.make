# Empty dependencies file for bench_fig15_dv3_huge.
# This may be replaced when dependencies are built.
