file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_dv3_huge.dir/bench_fig15_dv3_huge.cpp.o"
  "CMakeFiles/bench_fig15_dv3_huge.dir/bench_fig15_dv3_huge.cpp.o.d"
  "bench_fig15_dv3_huge"
  "bench_fig15_dv3_huge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_dv3_huge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
