file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_stack_evolution.dir/bench_table1_stack_evolution.cpp.o"
  "CMakeFiles/bench_table1_stack_evolution.dir/bench_table1_stack_evolution.cpp.o.d"
  "bench_table1_stack_evolution"
  "bench_table1_stack_evolution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_stack_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
