# Empty dependencies file for bench_table1_stack_evolution.
# This may be replaced when dependencies are built.
