# Empty dependencies file for bench_fig12_stack_timelines.
# This may be replaced when dependencies are built.
