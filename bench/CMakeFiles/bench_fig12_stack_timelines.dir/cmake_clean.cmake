file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_stack_timelines.dir/bench_fig12_stack_timelines.cpp.o"
  "CMakeFiles/bench_fig12_stack_timelines.dir/bench_fig12_stack_timelines.cpp.o.d"
  "bench_fig12_stack_timelines"
  "bench_fig12_stack_timelines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_stack_timelines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
