# Empty compiler generated dependencies file for bench_fig10_import_hoisting.
# This may be replaced when dependencies are built.
