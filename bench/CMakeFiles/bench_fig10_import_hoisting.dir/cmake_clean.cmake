file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_import_hoisting.dir/bench_fig10_import_hoisting.cpp.o"
  "CMakeFiles/bench_fig10_import_hoisting.dir/bench_fig10_import_hoisting.cpp.o.d"
  "bench_fig10_import_hoisting"
  "bench_fig10_import_hoisting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_import_hoisting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
