file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_peer_throttle.dir/bench_abl_peer_throttle.cpp.o"
  "CMakeFiles/bench_abl_peer_throttle.dir/bench_abl_peer_throttle.cpp.o.d"
  "bench_abl_peer_throttle"
  "bench_abl_peer_throttle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_peer_throttle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
