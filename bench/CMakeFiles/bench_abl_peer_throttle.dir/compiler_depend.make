# Empty compiler generated dependencies file for bench_abl_peer_throttle.
# This may be replaced when dependencies are built.
