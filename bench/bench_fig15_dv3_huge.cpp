// Fig 15 — DV3-Huge: the full-scale analysis. 185k tasks (10k initially
// executable) on 600 12-core workers (7200 cores).
//
// Paper: TaskVine maintains high concurrency for the duration of the
// execution until the final reduction of the graph.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 15: DV3-Huge on 600 workers (7200 cores)");

  apps::WorkloadSpec workload = apps::dv3_huge();
  workload.events_per_chunk = fast_mode() ? 20 : 50;
  if (fast_mode()) {
    workload.process_tasks = 1'000;
    workload.variations = 8;
    workload.input_bytes = 120 * util::kGB;
  }

  RunConfig config;
  config.workers = scaled(600, 60);

  exec::RunOptions options;
  options.seed = 16;
  options.mode = exec::ExecMode::kFunctionCalls;
  options.max_sim_time = 6 * util::kHour;

  vine::VineScheduler scheduler;
  const auto report = run_workload(scheduler, workload, config, options);

  print_report_line("DV3-Huge", report);
  std::printf("  peak concurrency: %lld tasks (cores available: %u)\n",
              static_cast<long long>(report.trace.peak_concurrency()),
              config.workers * 12);

  const auto series =
      report.trace.concurrency_series(report.makespan / 72, report.makespan);
  std::vector<double> running;
  std::vector<double> waiting;
  running.reserve(series.size());
  for (const auto& p : series) {
    running.push_back(static_cast<double>(p.running));
    waiting.push_back(static_cast<double>(p.waiting));
  }
  std::printf("\nconcurrently running tasks:\n%s",
              metrics::render_series(running, report.makespan_seconds(), 10,
                                     72, 'r')
                  .c_str());
  std::printf("\ntasks waiting to be scheduled:\n%s",
              metrics::render_series(waiting, report.makespan_seconds(), 10,
                                     72, 'w')
                  .c_str());
  std::printf("  shape: concurrency stays high until the final reduction "
              "drains the graph (paper Fig 15)\n");
  return 0;
}
