// Fig 12 — Workflow timeline of the first 300 s on each stack: number of
// concurrently running tasks (top) and tasks waiting to be scheduled
// (bottom).
//
// Paper shapes: Stack 1 sustains high concurrency initially (its tasks are
// long) but has a very long accumulation tail around ~100 running tasks;
// Stack 3 oscillates because completions outrun dispatch; Stack 4
// dispatches fast enough to hold steady and finishes within the window.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 12: Running/waiting task timelines per stack (DV3)");

  apps::WorkloadSpec workload = apps::dv3_large();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 1'500;
    workload.input_bytes = 120 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(200, 40);

  struct Stack {
    const char* label = "";
    storage::SharedFsSpec fs;
    bool taskvine = false;
    exec::ExecMode mode;
  };
  const Stack stacks[] = {
      {"Stack 1: WQ + HDFS", storage::hdfs_spec(), false,
       exec::ExecMode::kStandardTasks},
      {"Stack 2: WQ + VAST", storage::vast_spec(), false,
       exec::ExecMode::kStandardTasks},
      {"Stack 3: TaskVine tasks", storage::vast_spec(), true,
       exec::ExecMode::kStandardTasks},
      {"Stack 4: TaskVine functions", storage::vast_spec(), true,
       exec::ExecMode::kFunctionCalls},
  };

  const util::Tick window = 300 * util::kSec;
  for (const Stack& stack : stacks) {
    RunConfig cfg = config;
    cfg.fs = stack.fs;
    exec::RunOptions options;
    options.seed = 12;
    options.mode = stack.mode;

    exec::RunReport report;
    if (stack.taskvine) {
      vine::VineScheduler scheduler;
      report = run_workload(scheduler, workload, cfg, options);
    } else {
      wq::WorkQueueScheduler scheduler;
      report = run_workload(scheduler, workload, cfg, options);
    }
    maybe_write_spans(report);
    std::printf("\n%s (completes at %.0fs):\n", stack.label,
                report.makespan_seconds());
    const auto series =
        report.trace.concurrency_series(2 * util::kSec, window);
    std::printf("%s", metrics::render_concurrency(series, 10, 72).c_str());

    // The paper's diagnosis, re-derived from the attribution ledger: which
    // non-compute blame category dominates the cluster's core-seconds.
    const obs::AttributionLedger ledger = obs::attribute(report.profile);
    print_blame_line("blame:", report);
    if (ledger.capacity > 0) {
      struct Axis {
        const char* verdict = "";
        obs::Blame blame = obs::Blame::kIdle;
      };
      const Axis axes[] = {
          {"transfer-bound", obs::Blame::kTransferWait},
          {"dispatch-bound", obs::Blame::kDispatchWait},
          {"import-bound", obs::Blame::kImport},
      };
      const Axis* worst = &axes[0];
      for (const Axis& a : axes) {
        if (ledger.fraction(a.blame) > ledger.fraction(worst->blame)) {
          worst = &a;
        }
      }
      std::printf("  %-28s %s (%.1f%% of core-seconds waiting on %s)\n",
                  "diagnosis:", worst->verdict,
                  ledger.fraction(worst->blame) * 100,
                  obs::to_string(worst->blame));
    }
  }
  return 0;
}
