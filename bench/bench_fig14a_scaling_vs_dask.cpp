// Fig 14a — Scaling TaskVine vs Dask.Distributed on DV3-Small and
// DV3-Medium, 60-300 cores.
//
// Paper: similar behaviour at small scale; approaching 300 cores TaskVine
// completes in about half the time of Dask.Distributed.
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 14a: TaskVine vs Dask.Distributed scaling (60-300 cores)");

  const std::vector<std::uint32_t> cores = {60, 120, 180, 240, 300};

  for (apps::WorkloadSpec workload : {apps::dv3_small(), apps::dv3_medium()}) {
    workload.events_per_chunk = 100;
    if (fast_mode() && workload.name == "DV3-Medium") {
      workload.process_tasks = 800;
      workload.input_bytes = 64 * util::kGB;
    }
    std::printf("\n%s (%zu-task graph):\n", workload.name.c_str(),
                apps::build_workload(workload, 1).size());
    std::printf("  %8s %14s %20s %8s\n", "cores", "taskvine",
                "dask.distributed", "ratio");
    for (std::uint32_t c : cores) {
      RunConfig config;
      config.workers = c / 12;

      exec::RunOptions vine_opts;
      vine_opts.seed = 14;
      vine_opts.mode = exec::ExecMode::kFunctionCalls;
      vine::VineScheduler vine_sched;
      const auto vine_report =
          run_workload(vine_sched, workload, config, vine_opts);

      exec::RunOptions dd_opts;
      dd_opts.seed = 14;
      dd::DaskDistScheduler dd_sched;
      const auto dd_report =
          run_workload(dd_sched, workload, config, dd_opts);

      std::printf("  %8u %13.1fs%s %18.1fs%s %8.2f\n", c,
                  vine_report.makespan_seconds(),
                  vine_report.success ? " " : "!",
                  dd_report.makespan_seconds(),
                  dd_report.success ? " " : "!",
                  dd_report.makespan_seconds() /
                      vine_report.makespan_seconds());
    }
  }
  std::printf("\n  shape: comparable at small scale, TaskVine ~2x faster "
              "near 300 cores (paper Fig 14a)\n");
  return 0;
}
