// Disk-pressure campaign: the worker-disk lifecycle gate.
//
// Small scratch disks, a wide map whose dataset chunks stay live (every
// chunk is re-read by a second pass gated behind a barrier), single-core
// workers so staging is sequential. Per worker, the third live chunk
// cannot fit: with DataPolicy::evict_on_pressure off the reservation
// overflows the partition and kills the worker (the paper's Fig 11
// pathology); with it on the manager evicts the least-recently-used
// unpinned chunk (recoverable — dataset inputs re-stage from shared
// storage) and the campaign must finish with zero overflow crashes.
//
// Exits non-zero if either side of the ablation misbehaves:
//   eviction off  ->  at least one worker must crash
//   eviction on   ->  success, zero worker crashes, evictions happened,
//                     and a repeat run replays bit-identically
#include "bench_common.h"

#include <memory>
#include <vector>

#include "dag/task_graph.h"
#include "dag/value.h"

using namespace hepvine;
using namespace hepvine::bench;

namespace {

dag::ValuePtr scalar(double v) {
  return std::make_shared<dag::ScalarValue>(v);
}

/// `parts` chunks, each read twice: a first-pass map task, then (behind a
/// barrier joining every first pass) a second-pass task re-reading the
/// same chunk. Both consumers keep each chunk's refcount alive across the
/// whole first pass, so live input bytes grow past the scratch partition.
dag::TaskGraph double_pass_map(std::uint32_t parts,
                               std::uint64_t chunk_bytes) {
  dag::TaskGraph graph;
  std::vector<dag::TaskId> pass1;
  std::vector<data::FileId> chunks;
  for (std::uint32_t i = 0; i < parts; ++i) {
    chunks.push_back(graph.add_input_file("part" + std::to_string(i),
                                          chunk_bytes, 900 + i));
  }
  for (std::uint32_t i = 0; i < parts; ++i) {
    dag::TaskSpec spec;
    spec.category = "pass1";
    spec.function = "pass1";
    spec.input_files = {chunks[i]};
    spec.cpu_seconds = 2.0;
    spec.output_bytes = 1 * util::kMB;
    spec.memory_bytes = 1 * util::kGB;
    spec.fn = [i](const std::vector<dag::ValuePtr>&) {
      return scalar(static_cast<double>(i) + 1.0);
    };
    pass1.push_back(graph.add_task(spec));
  }

  dag::TaskSpec barrier;
  barrier.category = "barrier";
  barrier.function = "barrier";
  barrier.deps = pass1;
  barrier.cpu_seconds = 0.5;
  barrier.output_bytes = 1 * util::kMB;
  barrier.memory_bytes = 1 * util::kGB;
  barrier.fn = [](const std::vector<dag::ValuePtr>& in) {
    double sum = 0;
    for (const auto& v : in) {
      sum += dynamic_cast<const dag::ScalarValue&>(*v).get();
    }
    return scalar(sum);
  };
  const dag::TaskId tb = graph.add_task(barrier);

  std::vector<dag::TaskId> pass2;
  for (std::uint32_t i = 0; i < parts; ++i) {
    dag::TaskSpec spec;
    spec.category = "pass2";
    spec.function = "pass2";
    spec.deps = {tb};
    spec.input_files = {chunks[i]};
    spec.cpu_seconds = 2.0;
    spec.output_bytes = 1 * util::kMB;
    spec.memory_bytes = 1 * util::kGB;
    spec.fn = [i](const std::vector<dag::ValuePtr>& in) {
      return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() +
                    static_cast<double>(i));
    };
    pass2.push_back(graph.add_task(spec));
  }

  dag::TaskSpec top;
  top.category = "accumulate";
  top.function = "accumulate";
  top.deps = pass2;
  top.cpu_seconds = 0.5;
  top.output_bytes = 1 * util::kMB;
  top.memory_bytes = 1 * util::kGB;
  top.fn = barrier.fn;
  graph.add_task(top);
  return graph;
}

exec::RunReport run_campaign(bool evict_on_pressure, std::uint32_t workers,
                             std::uint32_t parts) {
  const dag::TaskGraph graph = double_pass_map(parts, 3 * util::kGB);

  cluster::NodeSpec node = cluster::paper_worker_node();
  node.cores = 1;                      // sequential staging per worker
  node.disk_capacity = 8 * util::kGB;  // two live chunks fit, three do not

  cluster::ClusterSpec cspec = cluster::paper_cluster(
      workers, node, storage::vast_spec(), /*seed=*/1);
  cspec.batch.first_match_delay = util::seconds(0.5);
  cspec.batch.match_window = util::seconds(2);
  cspec.batch.preemption_rate_per_hour = 0.0;
  cspec.batch.replacement_delay_mean = util::seconds(10);
  cluster::Cluster cluster(cspec);

  vine::DataPolicy policy = vine::taskvine_policy();
  policy.evict_on_pressure = evict_on_pressure;
  vine::VineScheduler scheduler(policy, vine::VineTunables{});

  exec::RunOptions options;
  options.seed = 17;
  options.exec_time_jitter = 0.1;
  options.max_task_retries = 12;
  apply_txn_capture(options);
  return scheduler.run(graph, cluster, options);
}

void print_campaign_line(const char* label, const exec::RunReport& report) {
  print_report_line(label, report);
  std::printf("    evictions %llu (%s), gc drops %llu, peak cache %s\n",
              static_cast<unsigned long long>(report.cache_evictions),
              util::format_bytes(report.cache_evicted_bytes).c_str(),
              static_cast<unsigned long long>(report.cache_gc_drops),
              util::format_bytes(report.cache.global_peak()).c_str());
}

}  // namespace

int main() {
  print_header("Disk-pressure campaign: pressure eviction vs overflow "
               "crash (lifecycle gate)");

  const std::uint32_t workers = scaled(8, 4);
  const std::uint32_t parts = scaled(32, 12);
  std::printf("  %u workers x 8 GB scratch, %u x 3 GB chunks read twice\n",
              workers, parts);

  int violations = 0;

  const auto crashy = run_campaign(/*evict_on_pressure=*/false, workers,
                                   parts);
  print_campaign_line("  eviction off (baseline)", crashy);
  if (crashy.worker_crashes < 1) {
    std::fprintf(stderr, "VIOLATION: eviction-off campaign must overflow "
                         "at least one worker disk\n");
    ++violations;
  }
  if (crashy.cache_evictions != 0) {
    std::fprintf(stderr, "VIOLATION: eviction-off campaign reported "
                         "evictions\n");
    ++violations;
  }

  const auto evicting = run_campaign(/*evict_on_pressure=*/true, workers,
                                     parts);
  print_campaign_line("  eviction on  (lifecycle)", evicting);
  if (!evicting.success) {
    std::fprintf(stderr, "VIOLATION: eviction-on campaign failed: %s\n",
                 evicting.failure_reason.c_str());
    ++violations;
  }
  if (evicting.worker_crashes != 0) {
    std::fprintf(stderr, "VIOLATION: eviction-on campaign crashed %u "
                         "worker(s); overflow must be absorbed\n",
                 evicting.worker_crashes);
    ++violations;
  }
  if (evicting.cache_evictions < 1) {
    std::fprintf(stderr, "VIOLATION: eviction-on campaign never evicted; "
                         "the pressure generator is mis-calibrated\n");
    ++violations;
  }

  // Replay: the eviction path must be deterministic.
  const auto replay = run_campaign(/*evict_on_pressure=*/true, workers,
                                   parts);
  if (replay.makespan != evicting.makespan ||
      replay.cache_evictions != evicting.cache_evictions ||
      replay.cache_gc_drops != evicting.cache_gc_drops) {
    std::fprintf(stderr, "VIOLATION: eviction-on replay diverged "
                         "(makespan %lld vs %lld)\n",
                 static_cast<long long>(replay.makespan),
                 static_cast<long long>(evicting.makespan));
    ++violations;
  }

  if (violations == 0) {
    std::printf("\n  gate ok: overflow crashes only with eviction "
                "disabled; lifecycle absorbs the pressure\n");
  }
  return violations == 0 ? 0 : 1;
}
