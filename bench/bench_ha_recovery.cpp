// Manager-HA recovery campaign: crash the manager mid-run under every
// scheduler, recover by deterministic re-execution, and prove bit-identity.
//
// Three gates, each exiting non-zero on violation:
//
//   1. Bit-identity — for every scheduler (vine, wq, dd) and every snapshot
//      cadence in the sweep, the recovered run's run_digest() must equal an
//      independently executed uninterrupted baseline, the latest snapshot
//      must converge (digest compare at the anchor tick), and the txn tail
//      must replay verbatim.
//   2. Tail scaling — denser checkpoints leave shorter txn tails, so the
//      modeled recovery time must grow with cadence interval across the
//      sweep (work since the last checkpoint, not campaign length).
//   3. Campaign independence — at a FIXED absolute cadence, doubling the
//      campaign must not proportionally grow recovery time: the tail is
//      bounded by the cadence window no matter how long the run is.
//
// A fourth scenario exercises the elastic factory under opportunistic
// preemption: the pool must grow from the configured minimum, absorb
// preempted workers, and still finish successfully.
//
// Emits BENCH_ha_recovery.json in the working directory.
#include "bench_common.h"

#include <string>
#include <vector>

#include "ha/recovery.h"

using namespace hepvine;
using namespace hepvine::bench;
using util::Tick;

namespace {

int violations = 0;

void violation(const std::string& what) {
  std::fprintf(stderr, "VIOLATION: %s\n", what.c_str());
  ++violations;
}

std::unique_ptr<exec::SchedulerBackend> make_scheduler(
    const std::string& kind) {
  if (kind == "vine") return std::make_unique<vine::VineScheduler>();
  if (kind == "wq") return std::make_unique<wq::WorkQueueScheduler>();
  return std::make_unique<dd::DaskDistScheduler>();
}

exec::RunReport run_kind(const std::string& kind,
                         const apps::WorkloadSpec& workload,
                         const RunConfig& config,
                         exec::RunOptions options) {
  apply_txn_capture(options);
  const auto scheduler = make_scheduler(kind);
  return run_workload(*scheduler, workload, config, options);
}

struct SweepPoint {
  std::string scheduler;
  Tick interval = 0;
  Tick crash_at = 0;
  std::uint64_t snapshot_bytes = 0;
  std::size_t tail_lines = 0;
  Tick restore_cost = 0;
  Tick replay_cost = 0;
  bool identical = false;
};

/// Crash at `crash_at` with checkpoints every `interval`, recover, verify
/// against an independently executed uninterrupted baseline.
SweepPoint recover_case(const std::string& kind,
                        const apps::WorkloadSpec& workload,
                        const RunConfig& config,
                        const exec::RunOptions& base, Tick interval,
                        Tick crash_at) {
  SweepPoint point;
  point.scheduler = kind;
  point.interval = interval;
  point.crash_at = crash_at;

  exec::RunOptions crash_options = base;
  crash_options.ha.snapshot_interval = interval;
  crash_options.faults.crash_manager(crash_at);
  const auto crashed = run_kind(kind, workload, config, crash_options);
  if (!crashed.ha.manager_crashed) {
    violation(kind + ": injected manager crash never landed");
    return point;
  }

  exec::RunOptions rerun_options = crash_options;
  rerun_options.faults = ha::strip_manager_crash(crash_options.faults);
  const auto outcome = ha::recover(crashed, crash_options.ha, [&] {
    return run_kind(kind, workload, config, rerun_options);
  });
  if (!outcome.recovered) {
    violation(kind + ": recovery failed: " + outcome.error);
    return point;
  }

  // The rerun already proved snapshot convergence and tail identity; the
  // end-to-end gate compares it against a separate uninterrupted execution.
  const auto baseline = run_kind(kind, workload, config, rerun_options);
  point.snapshot_bytes = outcome.snapshot_bytes;
  point.tail_lines = outcome.tail_lines;
  point.restore_cost = outcome.restore_cost;
  point.replay_cost = outcome.replay_cost;
  point.identical =
      ha::run_digest(outcome.report) == ha::run_digest(baseline);
  if (!point.identical) {
    violation(kind + ": recovered run diverged from uninterrupted baseline");
  }
  std::printf("  %-5s cadence %6.1fs  snapshot %7llu B  tail %6zu lines  "
              "restore %6.1f ms  replay %6.1f ms  %s\n",
              kind.c_str(), util::to_seconds(interval),
              static_cast<unsigned long long>(point.snapshot_bytes),
              point.tail_lines, util::to_seconds(point.restore_cost) * 1e3,
              util::to_seconds(point.replay_cost) * 1e3,
              point.identical ? "bit-identical" : "DIVERGED");
  return point;
}

void json_point(std::FILE* f, const SweepPoint& p, bool last) {
  std::fprintf(f,
               "    {\"scheduler\": \"%s\", \"cadence_us\": %lld, "
               "\"snapshot_bytes\": %llu, \"tail_lines\": %zu, "
               "\"restore_us\": %lld, \"replay_us\": %lld, "
               "\"recovery_us\": %lld, \"bit_identical\": %s}%s\n",
               p.scheduler.c_str(), static_cast<long long>(p.interval),
               static_cast<unsigned long long>(p.snapshot_bytes),
               p.tail_lines, static_cast<long long>(p.restore_cost),
               static_cast<long long>(p.replay_cost),
               static_cast<long long>(p.restore_cost + p.replay_cost),
               p.identical ? "true" : "false", last ? "" : ",");
}

}  // namespace

int main() {
  print_header("Manager HA: crash, snapshot-restore, txn-tail replay");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 400;
    workload.input_bytes = 32 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(50, 8);
  config.preemption_rate_per_hour = 0.0;

  exec::RunOptions base;
  base.seed = 53;
  base.mode = exec::ExecMode::kFunctionCalls;
  base.max_task_retries = 60;
  base.observability.enabled = true;
  base.observability.txn_log = true;
  base.observability.perf_log = false;
  base.observability.chrome_trace = false;

  // --- cadence sweep per scheduler --------------------------------------
  std::vector<SweepPoint> sweep;
  const std::vector<std::string> kinds = {"vine", "wq", "dd"};
  for (const std::string& kind : kinds) {
    const auto probe = run_kind(kind, workload, config, base);
    if (!probe.success) {
      violation(kind + ": clean probe failed: " + probe.failure_reason);
      continue;
    }
    const Tick crash_at = probe.makespan * 6 / 10;
    // Denominators chosen so every cadence checkpoints at least once
    // before the crash and the tails differ by construction.
    std::vector<SweepPoint> row;
    for (const Tick denom : {16, 8, 4, 2}) {
      row.push_back(recover_case(kind, workload, config, base,
                                 crash_at / denom + 1, crash_at));
    }
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i].identical && row[i - 1].identical &&
          row[i].replay_cost <= row[i - 1].replay_cost) {
        violation(kind + ": replay cost did not grow with cadence interval");
      }
    }
    sweep.insert(sweep.end(), row.begin(), row.end());
  }

  // --- campaign-length independence (vine, fixed absolute cadence) ------
  print_header("Recovery tracks the checkpoint window, not campaign length");
  apps::WorkloadSpec longer = workload;
  longer.process_tasks = workload.process_tasks * 2;
  const auto probe_short = run_kind("vine", workload, config, base);
  const auto probe_long = run_kind("vine", longer, config, base);
  SweepPoint fixed_short;
  SweepPoint fixed_long;
  if (!probe_short.success || !probe_long.success) {
    violation("campaign-independence probes failed");
  } else {
    const Tick cadence = probe_short.makespan / 8 + 1;
    fixed_short = recover_case("vine", workload, config, base, cadence,
                               probe_short.makespan * 6 / 10);
    fixed_long = recover_case("vine", longer, config, base, cadence,
                              probe_long.makespan * 6 / 10);
    const double stretch = static_cast<double>(probe_long.makespan) /
                           static_cast<double>(probe_short.makespan);
    const double recovery_ratio =
        static_cast<double>(fixed_long.restore_cost + fixed_long.replay_cost) /
        static_cast<double>(fixed_short.restore_cost +
                            fixed_short.replay_cost);
    std::printf("  campaign stretched %.2fx, recovery cost %.2fx\n", stretch,
                recovery_ratio);
    if (fixed_short.identical && fixed_long.identical &&
        recovery_ratio > stretch) {
      violation("recovery cost grew faster than the campaign itself");
    }
  }

  // --- elastic factory under opportunistic preemption -------------------
  print_header("Elastic factory under preemption");
  RunConfig churn = config;
  churn.preemption_rate_per_hour = 60.0;
  exec::RunOptions elastic = base;
  elastic.ha.factory.min_workers = 2;
  elastic.ha.factory.max_workers = config.workers;
  elastic.ha.factory.tasks_per_worker = 4;
  elastic.ha.factory.evaluation_interval = util::seconds(10);
  const auto pool = run_kind("vine", workload, churn, elastic);
  std::printf("  grow %u shrink %u started %u released %u preempted %u  %s\n",
              pool.ha.factory_grow_events, pool.ha.factory_shrink_events,
              pool.ha.workers_started, pool.ha.workers_released,
              pool.worker_preemptions,
              pool.success ? "ok" : pool.failure_reason.c_str());
  if (!pool.success) {
    violation("factory-under-preemption campaign failed: " +
              pool.failure_reason);
  }
  if (pool.ha.factory_grow_events == 0 || pool.ha.workers_started == 0) {
    violation("factory never grew the pool from its minimum");
  }

  // --- JSON ---------------------------------------------------------------
  std::FILE* f = std::fopen("BENCH_ha_recovery.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n  \"bench\": \"ha_recovery\",\n  \"fast_mode\": %s,\n",
                 fast_mode() ? "true" : "false");
    std::fprintf(f, "  \"cadence_sweep\": [\n");
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      json_point(f, sweep[i], i + 1 == sweep.size());
    }
    std::fprintf(f, "  ],\n  \"campaign_independence\": [\n");
    json_point(f, fixed_short, false);
    json_point(f, fixed_long, true);
    std::fprintf(f,
                 "  ],\n  \"factory\": {\"grow_events\": %u, "
                 "\"shrink_events\": %u, \"workers_started\": %u, "
                 "\"workers_released\": %u, \"success\": %s},\n",
                 pool.ha.factory_grow_events, pool.ha.factory_shrink_events,
                 pool.ha.workers_started, pool.ha.workers_released,
                 pool.success ? "true" : "false");
    std::fprintf(f, "  \"violations\": %d\n}\n", violations);
    std::fclose(f);
  } else {
    violation("could not write BENCH_ha_recovery.json");
  }

  if (violations > 0) {
    std::fprintf(stderr, "\n%d violation(s)\n", violations);
    return 1;
  }
  std::printf("\n  all recoveries bit-identical; recovery time tracks the "
              "txn tail, not the campaign\n");
  return 0;
}
