// Fig 8 — Distribution of task execution times: standard tasks vs
// serverless function calls on the DV3 workload.
//
// Paper: the majority of tasks execute in 1-10 s; converting them to
// function calls shifts the whole distribution left (no per-task
// interpreter start, no per-task imports), which is what makes the 17k-task
// workload complete 2.7x faster end to end (730 s -> 272 s).
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 8: Task execution time distribution (DV3)");

  apps::WorkloadSpec workload = apps::dv3_large();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 1'500;
    workload.input_bytes = 120 * util::kGB;
  }
  RunConfig config;
  config.workers = scaled(200, 40);

  vine::VineScheduler scheduler;

  exec::RunOptions std_opts;
  std_opts.seed = 8;
  std_opts.mode = exec::ExecMode::kStandardTasks;
  const auto std_report = run_workload(scheduler, workload, config, std_opts);

  exec::RunOptions fc_opts = std_opts;
  fc_opts.mode = exec::ExecMode::kFunctionCalls;
  const auto fc_report = run_workload(scheduler, workload, config, fc_opts);

  std::printf("\nStandard tasks (makespan %.0fs):\n",
              std_report.makespan_seconds());
  std::printf("%s", metrics::TaskTrace::render_histogram(
                        std_report.trace.exec_time_histogram(0.1, 100, 3))
                        .c_str());

  std::printf("\nFunction calls (makespan %.0fs):\n",
              fc_report.makespan_seconds());
  std::printf("%s", metrics::TaskTrace::render_histogram(
                        fc_report.trace.exec_time_histogram(0.1, 100, 3))
                        .c_str());

  // Shape checks: majority of function-call tasks within 1-10 s; standard
  // tasks shifted right by the per-invocation overhead.
  auto fraction_in = [](const metrics::TaskTrace& trace, double lo,
                        double hi) {
    std::size_t in = 0;
    std::size_t total = 0;
    for (const auto& rec : trace.records()) {
      if (rec.failed) continue;
      ++total;
      const double secs = util::to_seconds(rec.exec_time());
      if (secs >= lo && secs < hi) ++in;
    }
    return total ? static_cast<double>(in) / static_cast<double>(total) : 0.0;
  };
  std::printf("\nfraction of tasks in [1s,10s): standard %.2f, "
              "function-calls %.2f (paper: majority in 1-10s)\n",
              fraction_in(std_report.trace, 1, 10),
              fraction_in(fc_report.trace, 1, 10));
  return 0;
}
