// Fig 13 — Worker occupancy: Stacks 3 and 4 at 20 and 200 workers.
//
// Paper: Stack 3 (standard tasks) keeps 20 workers busy but cannot
// dispatch/collect fast enough for 200 workers; Stack 4 (function calls)
// is only marginally faster at 20 workers but dramatically better at 200,
// because invocations are cheap for the manager.
#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Fig 13: Worker occupancy, Stack 3 vs Stack 4 (DV3)");

  apps::WorkloadSpec workload = apps::dv3_large();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 3'000;
    workload.input_bytes = 240 * util::kGB;
  }

  for (std::uint32_t workers : {scaled(20, 10), scaled(200, 40)}) {
    for (auto [label, mode] :
         {std::pair{"Stack 3 (standard tasks)",
                    exec::ExecMode::kStandardTasks},
          std::pair{"Stack 4 (function calls)",
                    exec::ExecMode::kFunctionCalls}}) {
      RunConfig config;
      config.workers = workers;
      exec::RunOptions options;
      options.seed = 13;
      options.mode = mode;

      vine::VineScheduler scheduler;
      const auto report = run_workload(scheduler, workload, config, options);
      maybe_write_spans(report);

      // Occupancy from the attribution ledger: the share of each worker's
      // core-seconds not blamed on idle or preemption. Unlike the old
      // task-interval overlap estimate, this is exact and sums to the
      // cluster capacity by construction.
      const obs::AttributionLedger ledger = obs::attribute(report.profile);
      std::vector<double> occupancy;
      occupancy.reserve(ledger.workers.size());
      double mean = 0;
      for (const auto& w : ledger.workers) {
        const std::int64_t unused =
            w.ticks[static_cast<std::size_t>(obs::Blame::kIdle)] +
            w.ticks[static_cast<std::size_t>(obs::Blame::kPreempted)];
        const double occ =
            w.capacity > 0 ? 1.0 - static_cast<double>(unused) /
                                       static_cast<double>(w.capacity)
                           : 0.0;
        occupancy.push_back(occ);
        mean += occ;
      }
      mean /= occupancy.empty() ? 1.0 : static_cast<double>(occupancy.size());

      std::printf("\n%u workers, %s: makespan %.0fs, mean occupancy %.0f%%, "
                  "manager busy %.0f%%\n",
                  workers, label, report.makespan_seconds(), mean * 100,
                  report.manager_busy_fraction * 100);
      std::printf("%s",
                  metrics::TaskTrace::render_occupancy(occupancy).c_str());
      print_blame_line("blame:", report);
    }
  }
  std::printf("\n  shape: Stack 3 starves the large cluster (low occupancy at "
              "200 workers); Stack 4 keeps it busy (paper Fig 13)\n");
  return 0;
}
