// Ablation — peer-transfer throttling.
//
// TaskVine limits how many concurrent peer transfers a worker may source
// "so that uncontrolled peer transfers do not create network contention
// for frequently used files" (Section IV-B). This sweep varies the limit,
// including unlimited (0).
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: peer-transfer throttle limit");

  apps::WorkloadSpec workload = apps::dv3_medium();
  workload.events_per_chunk = 100;
  if (fast_mode()) {
    workload.process_tasks = 800;
    workload.input_bytes = 64 * util::kGB;
  }
  // Accumulation-heavy variant: bigger partials stress peer links.
  workload.process_output_bytes = 200 * util::kMB;
  workload.reduce_arity = 16;

  RunConfig config;
  config.workers = scaled(50, 20);

  std::printf("  %-12s %12s %16s %14s\n", "limit", "makespan", "peer bytes",
              "max pair");
  for (std::uint32_t limit : std::vector<std::uint32_t>{0, 1, 2, 3, 8, 32}) {
    exec::RunOptions options;
    options.seed = 41;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.peer_transfer_limit = limit;
    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, workload, config, options);
    char label[16];
    std::snprintf(label, sizeof(label), "%s",
                  limit == 0 ? "unlimited" : std::to_string(limit).c_str());
    std::printf("  %-12s %11.1fs %16s %14s %s\n", label,
                report.makespan_seconds(),
                util::format_bytes(report.transfers.peer_bytes()).c_str(),
                util::format_bytes(report.transfers.max_pair()).c_str(),
                report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: very low limits serialize staging; moderate "
              "limits match unlimited while bounding per-node contention\n");
  return 0;
}
