// Ablation — reduction tree arity.
//
// Fig 11 motivates *a* tree; this sweep asks which fan-in is best: low
// arity adds levels (latency), high arity concentrates data per node
// (approaching the single-node failure mode).
#include <vector>

#include "bench_common.h"

using namespace hepvine;
using namespace hepvine::bench;

int main() {
  print_header("Ablation: reduction arity (RS-TriPhoton-like accumulation)");

  apps::WorkloadSpec workload = apps::rs_triphoton();
  workload.events_per_chunk = 50;
  workload.process_tasks = fast_mode() ? 400 : 2'000;
  workload.datasets = fast_mode() ? 4 : 20;
  workload.input_bytes = (fast_mode() ? 50ull : 250ull) * util::kGB;

  RunConfig config;
  config.workers = scaled(60, 20);
  config.node = cluster::triphoton_worker_node();

  std::printf("  %-8s %10s %12s %14s %10s\n", "arity", "tasks", "makespan",
              "peak cache", "crashes");
  for (std::size_t arity : std::vector<std::size_t>{2, 4, 8, 16, 64, 200}) {
    apps::WorkloadSpec variant = workload;
    variant.reduce_arity = arity;
    const dag::TaskGraph probe = apps::build_workload(variant, 42);
    exec::RunOptions options;
    options.seed = 42;
    options.mode = exec::ExecMode::kFunctionCalls;
    options.max_task_retries = 12;
    vine::VineScheduler scheduler;
    const auto report = run_workload(scheduler, variant, config, options);
    std::printf("  %-8zu %10zu %11.1fs %14s %10u %s\n", arity, probe.size(),
                report.makespan_seconds(),
                util::format_bytes(report.cache.global_peak()).c_str(),
                report.worker_crashes, report.success ? "" : "[FAILED]");
  }
  std::printf("\n  expectation: moderate arities (4-16) minimize makespan; "
              "extreme fan-in concentrates cache load\n");
  return 0;
}
