// Manager-saturation sweep: how many tasks per wall-clock second can the
// manager hot path (choose_worker + dispatch + staging bookkeeping + result
// ingest) push through as workers and tasks scale toward the facility
// limit (10k workers x 1M tasks)?
//
// The workload is deliberately dispatch-bound: a wide fan-out of short
// "process" FunctionCalls over shared dataset chunks, folded by an
// arity-64 tree reduction. Modeled compute is small, so once the worker
// pool is large the manager's serial control loop is the bottleneck —
// the paper's Fig 13 regime — and wall-clock throughput measures the
// scheduler's own per-task overhead ("Runtime vs Scheduler: Analyzing
// Dask's Overheads" shows exactly this cost capping real stacks).
//
// Each sweep point reports tasks-dispatched/sec (task attempts / wall
// seconds), engine events/sec, and manager_busy_fraction. The gate point
// (largest sweep entry) is additionally run with the indexed dispatch path
// disabled (VineTunables::indexed_dispatch=false, the pre-optimization
// reference semantics) and compared for txn-observable identity via the
// run's attempt/event counts and makespan.
//
// Emits BENCH_manager_saturation.json. When a baseline record produced by
// the pre-optimization tree is present (bench/BENCH_manager_saturation_
// baseline.json, committed), its gate-point dispatch rate is embedded and
// the speedup computed against it. HEPVINE_FAST=1 runs the reduced sweep
// with an absolute dispatch-rate floor (the CI perf-smoke gate).
//
// vine-lint: allow(ambient-entropy) — steady_clock measures the
// simulator's wall-clock throughput (the bench's whole point); it never
// feeds simulated state.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "dag/task_graph.h"
#include "vine/vine_scheduler.h"

namespace {

using hepvine::util::Tick;

struct Point {
  std::uint32_t workers = 0;
  std::uint32_t tasks = 0;  // fan-out width (reduction tasks ride on top)
};

/// Dispatch-bound saturation workload: `width` short process tasks over
/// shared dataset chunks (16 consumers per chunk, so locality scoring has
/// real replica lists to rank), folded by an arity-64 tree reduction.
[[nodiscard]] hepvine::dag::TaskGraph saturation_graph(std::uint32_t width) {
  using hepvine::dag::ScalarValue;
  using hepvine::dag::TaskId;
  using hepvine::dag::TaskSpec;
  using hepvine::dag::ValuePtr;
  hepvine::dag::TaskGraph graph;

  constexpr std::uint32_t kConsumersPerChunk = 16;
  constexpr std::size_t kReduceArity = 64;

  const std::uint32_t chunks =
      (width + kConsumersPerChunk - 1) / kConsumersPerChunk;
  std::vector<hepvine::data::FileId> inputs;
  inputs.reserve(chunks);
  for (std::uint32_t c = 0; c < chunks; ++c) {
    inputs.push_back(graph.add_input_file("chunk" + std::to_string(c),
                                          8 * hepvine::util::kMB, c + 1));
  }

  std::vector<TaskId> layer;
  layer.reserve(width);
  for (std::uint32_t i = 0; i < width; ++i) {
    TaskSpec spec;
    spec.category = "process";
    spec.function = "process";
    spec.input_files = {inputs[i / kConsumersPerChunk]};
    spec.cpu_seconds = 1.0;
    spec.output_bytes = 2 * hepvine::util::kMB;
    spec.memory_bytes = 1 * hepvine::util::kGB;
    const double leaf = static_cast<double>(i % 1024) + 1.0;
    spec.fn = [leaf](const std::vector<ValuePtr>&) -> ValuePtr {
      return std::make_shared<ScalarValue>(leaf);
    };
    layer.push_back(graph.add_task(std::move(spec)));
  }

  while (layer.size() > 1) {
    std::vector<TaskId> next;
    next.reserve(layer.size() / kReduceArity + 1);
    for (std::size_t i = 0; i < layer.size(); i += kReduceArity) {
      TaskSpec spec;
      spec.category = "accumulate";
      spec.function = "accumulate";
      const std::size_t hi = std::min(i + kReduceArity, layer.size());
      spec.deps.assign(layer.begin() + static_cast<std::ptrdiff_t>(i),
                       layer.begin() + static_cast<std::ptrdiff_t>(hi));
      spec.cpu_seconds = 0.4;
      spec.output_bytes = 2 * hepvine::util::kMB;
      spec.memory_bytes = 1 * hepvine::util::kGB;
      spec.fn = [](const std::vector<ValuePtr>& in) -> ValuePtr {
        double sum = 0;
        for (const auto& v : in) {
          sum += static_cast<const ScalarValue&>(*v).get();
        }
        return std::make_shared<ScalarValue>(sum);
      };
      next.push_back(graph.add_task(std::move(spec)));
    }
    layer = std::move(next);
  }
  return graph;
}

struct Result {
  std::uint32_t workers = 0;
  std::size_t tasks_total = 0;
  std::size_t attempts = 0;
  double wall_seconds = 0;
  double makespan_seconds = 0;
  double manager_busy_fraction = 0;
  std::uint64_t engine_events = 0;
  bool success = false;
  [[nodiscard]] double dispatch_rate() const {
    return wall_seconds > 0 ? static_cast<double>(attempts) / wall_seconds
                            : 0;
  }
  [[nodiscard]] double events_per_sec() const {
    return wall_seconds > 0
               ? static_cast<double>(engine_events) / wall_seconds
               : 0;
  }
};

[[nodiscard]] Result run_point(const Point& point, bool indexed_dispatch) {
  const hepvine::dag::TaskGraph graph = saturation_graph(point.tasks);

  hepvine::cluster::ClusterSpec cspec = hepvine::cluster::paper_cluster(
      point.workers, hepvine::cluster::paper_worker_node(),
      hepvine::storage::vast_spec(), /*seed=*/7);
  cspec.batch.preemption_rate_per_hour = 0.0;
  hepvine::cluster::Cluster cluster(cspec);

  hepvine::vine::VineTunables tun;
  tun.indexed_dispatch = indexed_dispatch;
  hepvine::vine::VineScheduler vine(hepvine::vine::taskvine_policy(), tun,
                                    indexed_dispatch ? "taskvine"
                                                     : "taskvine-ref");

  hepvine::exec::RunOptions options;
  options.mode = hepvine::exec::ExecMode::kFunctionCalls;
  options.seed = 11;
  hepvine::bench::apply_txn_capture(options);

  const auto t0 = std::chrono::steady_clock::now();
  const hepvine::exec::RunReport report =
      vine.run(graph, cluster, options);
  const auto t1 = std::chrono::steady_clock::now();

  Result r;
  r.workers = point.workers;
  r.tasks_total = report.tasks_total;
  r.attempts = report.task_attempts;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.makespan_seconds = report.makespan_seconds();
  r.manager_busy_fraction = report.manager_busy_fraction;
  r.engine_events = cluster.engine().executed();
  r.success = report.success;
  return r;
}

void print_result(const char* label, const Result& r) {
  std::printf(
      "  %-22s %7zu tasks  wall %8.3f s  mgr-busy %5.3f  "
      "dispatch/s %9.0f  events/s %11.0f  %s\n",
      label, r.tasks_total, r.wall_seconds, r.manager_busy_fraction,
      r.dispatch_rate(), r.events_per_sec(), r.success ? "ok" : "FAILED");
}

void json_result(std::FILE* f, const Result& r, std::uint32_t sweep_tasks,
                 const char* mode) {
  std::fprintf(f,
               "    {\"workers\": %u, \"tasks\": %u, \"mode\": \"%s\",\n"
               "     \"tasks_total\": %zu, \"attempts\": %zu,\n"
               "     \"wall_seconds\": %.6f, \"makespan_seconds\": %.3f,\n"
               "     \"manager_busy_fraction\": %.6f,\n"
               "     \"engine_events\": %llu,\n"
               "     \"tasks_dispatched_per_sec\": %.1f,\n"
               "     \"events_per_sec\": %.1f, \"success\": %s}",
               r.workers, sweep_tasks, mode, r.tasks_total, r.attempts,
               r.wall_seconds, r.makespan_seconds, r.manager_busy_fraction,
               static_cast<unsigned long long>(r.engine_events),
               r.dispatch_rate(), r.events_per_sec(),
               r.success ? "true" : "false");
}

/// Parse "tasks_dispatched_per_sec" for the gate point out of the
/// committed baseline record (flat text scan; the file is our own output).
[[nodiscard]] double baseline_gate_rate(const char* path,
                                        std::uint32_t workers,
                                        std::uint32_t tasks) {
  std::FILE* f = std::fopen(path, "r");
  if (f == nullptr) return 0;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  std::fclose(f);
  const std::string key = "{\"workers\": " + std::to_string(workers) +
                          ", \"tasks\": " + std::to_string(tasks);
  std::size_t at = text.find(key);
  if (at == std::string::npos) return 0;
  const std::string rate_key = "\"tasks_dispatched_per_sec\": ";
  at = text.find(rate_key, at);
  if (at == std::string::npos) return 0;
  return std::strtod(text.c_str() + at + rate_key.size(), nullptr);
}

}  // namespace

/// Sweep override for experiments: HEPVINE_SAT_POINTS="600x10000,2500x1e5"
/// (comma-separated WORKERSxTASKS). Empty/unset keeps the standard sweep.
[[nodiscard]] std::vector<Point> sweep_from_env() {
  std::vector<Point> sweep;
  const std::string spec = hepvine::util::env_or("HEPVINE_SAT_POINTS", "");
  const char* s = spec.c_str();
  while (*s != '\0') {
    char* end = nullptr;
    const auto workers = static_cast<std::uint32_t>(std::strtod(s, &end));
    if (end == s || *end != 'x') return {};
    s = end + 1;
    const auto tasks = static_cast<std::uint32_t>(std::strtod(s, &end));
    if (end == s || workers == 0 || tasks == 0) return {};
    sweep.push_back(Point{workers, tasks});
    s = *end == ',' ? end + 1 : end;
  }
  return sweep;
}

int main() {
  const bool fast = hepvine::bench::fast_mode();
  std::vector<Point> sweep = sweep_from_env();
  const bool custom_sweep = !sweep.empty();
  if (!custom_sweep) {
    if (fast) {
      // The CI smoke gate needs a manager-bound point (600x100k saturates
      // the manager at ~0.74 busy), not a makespan-bound one where the
      // dispatch rate mostly measures simulated time.
      sweep = {{600, 10'000}, {600, 100'000}};
    } else {
      sweep = {{600, 10'000}, {600, 100'000}, {2500, 100'000},
               {10'000, 300'000}, {10'000, 1'000'000}};
    }
  }
  const Point gate = sweep.back();

  std::printf("bench_manager_saturation: %zu sweep points, gate %u x %u\n",
              sweep.size(), gate.workers, gate.tasks);

  std::vector<Result> results;
  results.reserve(sweep.size());
  for (const Point& p : sweep) {
    const Result r = run_point(p, /*indexed_dispatch=*/true);
    const std::string label = std::to_string(p.workers) + "w x " +
                              std::to_string(p.tasks) + "t";
    print_result(label.c_str(), r);
    results.push_back(r);
  }

  // Reference-path control at a reduced point: the indexed dispatch path
  // must make the same decisions as the reference scan (the differential
  // suite diffs txn logs byte-for-byte; here we cross-check the cheap
  // invariants on a point small enough to afford the O(workers) scans).
  const Point ref_point =
      (fast || custom_sweep) ? sweep.front() : Point{2500, 100'000};
  const Result ref = run_point(ref_point, /*indexed_dispatch=*/false);
  print_result("reference-dispatch", ref);
  const Result* idx_at_ref = nullptr;
  for (const Result& r : results) {
    if (r.workers == ref_point.workers &&
        r.tasks_total == ref.tasks_total) {
      idx_at_ref = &r;
    }
  }
  const bool identical =
      idx_at_ref != nullptr && idx_at_ref->attempts == ref.attempts &&
      idx_at_ref->makespan_seconds == ref.makespan_seconds &&
      idx_at_ref->engine_events == ref.engine_events;

  const Result& gate_result = results.back();
  const double baseline_rate = baseline_gate_rate(
      "BENCH_manager_saturation_baseline.json", gate.workers, gate.tasks);
  const double speedup = baseline_rate > 0
                             ? gate_result.dispatch_rate() / baseline_rate
                             : 0;
  if (baseline_rate > 0) {
    std::printf("  gate point vs pre-optimization baseline: %.0f -> %.0f "
                "dispatch/s (%.2fx)\n",
                baseline_rate, gate_result.dispatch_rate(), speedup);
  }

  std::FILE* f = std::fopen("BENCH_manager_saturation.json", "w");
  if (f != nullptr) {
    std::fprintf(f,
                 "{\n  \"bench\": \"manager_saturation\",\n"
                 "  \"fast_mode\": %s,\n  \"points\": [\n",
                 fast ? "true" : "false");
    for (std::size_t i = 0; i < results.size(); ++i) {
      json_result(f, results[i], sweep[i].tasks, "indexed");
      std::fputs(",\n", f);
    }
    json_result(f, ref, ref_point.tasks, "reference");
    std::fprintf(f,
                 "\n  ],\n"
                 "  \"reference_identical\": %s,\n"
                 "  \"gate_workers\": %u,\n  \"gate_tasks\": %u,\n"
                 "  \"gate_tasks_dispatched_per_sec\": %.1f,\n"
                 "  \"gate_manager_busy_fraction\": %.6f,\n"
                 "  \"baseline_tasks_dispatched_per_sec\": %.1f,\n"
                 "  \"speedup_vs_baseline\": %.3f\n}\n",
                 identical ? "true" : "false", gate.workers, gate.tasks,
                 gate_result.dispatch_rate(),
                 gate_result.manager_busy_fraction, baseline_rate, speedup);
    std::fclose(f);
  }

  bool ok = true;
  for (const Result& r : results) {
    if (!r.success) {
      std::fprintf(stderr, "FAIL: %u-worker point did not complete\n",
                   r.workers);
      ok = false;
    }
  }
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: indexed and reference dispatch paths diverged at "
                 "%u workers x %u tasks\n",
                 ref_point.workers, ref_point.tasks);
    ok = false;
  }
  // CI floor: the reduced sweep must clear an absolute dispatch rate at
  // the manager-bound gate point — above the 3823/s pre-optimization
  // baseline with headroom for slower CI hardware, below the ~7200/s the
  // optimized hot path delivers. The full sweep instead gates the 2x
  // speedup against the committed pre-optimization baseline.
  const double floor = 4'500.0;
  if (fast && gate_result.dispatch_rate() < floor) {
    std::fprintf(stderr,
                 "FAIL: dispatch rate %.0f/s below the %.0f/s floor\n",
                 gate_result.dispatch_rate(), floor);
    ok = false;
  }
  if (!fast && baseline_rate > 0 && speedup < 2.0) {
    std::fprintf(stderr,
                 "FAIL: speedup %.2fx below the 2x acceptance floor\n",
                 speedup);
    ok = false;
  }
  return ok ? 0 : 1;
}
