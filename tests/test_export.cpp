#include "dag/export.h"

#include <gtest/gtest.h>

#include "apps/workloads.h"
#include "exec/report_io.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine::dag {
namespace {

using namespace hepvine::testutil;

TaskGraph small_graph() {
  apps::WorkloadSpec spec = tiny_dv3(12);
  return apps::build_workload(spec, 3);
}

TEST(DotExport, ContainsNodesAndEdges) {
  const TaskGraph graph = small_graph();
  const std::string dot = to_dot(graph);
  EXPECT_NE(dot.find("digraph workflow"), std::string::npos);
  EXPECT_NE(dot.find("t0 ["), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("process"), std::string::npos);
  EXPECT_NE(dot.find("accumulate"), std::string::npos);
  EXPECT_EQ(dot.find("truncated"), std::string::npos);
}

TEST(DotExport, TruncatesHugeGraphs) {
  const TaskGraph graph = small_graph();
  DotOptions options;
  options.max_tasks = 4;
  const std::string dot = to_dot(graph, options);
  EXPECT_NE(dot.find("truncated"), std::string::npos);
  EXPECT_EQ(dot.find("t10 ["), std::string::npos);
}

TEST(DotExport, InputFileNodesOptIn) {
  const TaskGraph graph = small_graph();
  EXPECT_EQ(to_dot(graph).find("shape=note"), std::string::npos);
  DotOptions options;
  options.show_input_files = true;
  EXPECT_NE(to_dot(graph, options).find("shape=note"), std::string::npos);
}

TEST(JsonSummary, ReportsCountsAndBytes) {
  const TaskGraph graph = small_graph();
  const std::string json = to_json_summary(graph);
  EXPECT_NE(json.find("\"tasks\": " + std::to_string(graph.size())),
            std::string::npos);
  EXPECT_NE(json.find("\"input_bytes\": " +
                      std::to_string(graph.input_bytes())),
            std::string::npos);
  EXPECT_NE(json.find("\"process\""), std::string::npos);
  EXPECT_NE(json.find("\"sinks\": 1"), std::string::npos);
}

TEST(ReportIo, SummaryAndCsvCoverAllFields) {
  const TaskGraph graph = small_graph();
  cluster::Cluster cluster(tiny_cluster(2));
  vine::VineScheduler scheduler;
  const exec::RunReport report =
      scheduler.run(graph, cluster, fast_options());
  ASSERT_TRUE(report.success);

  const std::string summary = exec::summarize(report);
  EXPECT_NE(summary.find("taskvine"), std::string::npos);
  EXPECT_NE(summary.find("success"), std::string::npos);
  EXPECT_NE(summary.find("makespan"), std::string::npos);
  EXPECT_NE(summary.find("peak cache"), std::string::npos);

  const std::string header = exec::csv_header();
  const std::string row = exec::csv_row(report);
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_NE(row.find("taskvine,1,"), std::string::npos);
}

}  // namespace
}  // namespace hepvine::dag
