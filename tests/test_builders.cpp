#include "dag/builders.h"

#include <gtest/gtest.h>

#include "dag/evaluate.h"

namespace hepvine::dag {
namespace {

ValuePtr make_scalar(double v) { return std::make_shared<ScalarValue>(v); }

ComputeFn sum_merge() {
  return [](const std::vector<ValuePtr>& in) {
    double sum = 0;
    for (const auto& v : in) {
      sum += dynamic_cast<const ScalarValue&>(*v).get();
    }
    return make_scalar(sum);
  };
}

std::vector<TaskId> make_leaves(TaskGraph& graph, int n) {
  std::vector<TaskId> leaves;
  for (int i = 0; i < n; ++i) {
    TaskSpec spec;
    spec.category = "leaf";
    spec.output_bytes = 100;
    spec.fn = [i](const std::vector<ValuePtr>&) {
      return make_scalar(static_cast<double>(i + 1));
    };
    leaves.push_back(graph.add_task(std::move(spec)));
  }
  return leaves;
}

double sink_value(const TaskGraph& graph) {
  const auto results = evaluate_serially(graph);
  EXPECT_EQ(results.size(), 1u);
  return dynamic_cast<const ScalarValue&>(*results.begin()->second).get();
}

TEST(Builders, SingleReductionHasOneTaskOverAllInputs) {
  TaskGraph graph;
  const auto leaves = make_leaves(graph, 10);
  ReduceSpec spec;
  spec.merge = sum_merge();
  const TaskId root = add_single_reduction(graph, leaves, spec);
  EXPECT_EQ(graph.size(), 11u);
  EXPECT_EQ(graph.task(root).spec.deps.size(), 10u);
  EXPECT_DOUBLE_EQ(sink_value(graph), 55.0);
}

TEST(Builders, EmptyReductionRejected) {
  TaskGraph graph;
  ReduceSpec spec;
  spec.merge = sum_merge();
  EXPECT_THROW(add_single_reduction(graph, {}, spec), std::invalid_argument);
  EXPECT_THROW(add_tree_reduction(graph, {}, 2, spec),
               std::invalid_argument);
}

TEST(Builders, TreeArityBelowTwoRejected) {
  TaskGraph graph;
  const auto leaves = make_leaves(graph, 4);
  ReduceSpec spec;
  spec.merge = sum_merge();
  EXPECT_THROW(add_tree_reduction(graph, leaves, 1, spec),
               std::invalid_argument);
}

TEST(Builders, BinaryTreeBoundsFanIn) {
  TaskGraph graph;
  const auto leaves = make_leaves(graph, 16);
  ReduceSpec spec;
  spec.merge = sum_merge();
  const TaskId root = add_tree_reduction(graph, leaves, 2, spec);
  for (const auto& task : graph.tasks()) {
    EXPECT_LE(task.spec.deps.size(), 2u);
  }
  EXPECT_EQ(graph.task(root).dependents.size(), 0u);
  // 16 leaves binary: 8+4+2+1 = 15 merge tasks.
  EXPECT_EQ(graph.size(), 31u);
  EXPECT_DOUBLE_EQ(sink_value(graph), 136.0);
}

TEST(Builders, SingleLeafNeedsNoMerge) {
  TaskGraph graph;
  const auto leaves = make_leaves(graph, 1);
  ReduceSpec spec;
  spec.merge = sum_merge();
  const TaskId root = add_tree_reduction(graph, leaves, 4, spec);
  EXPECT_EQ(root, leaves[0]);
  EXPECT_EQ(graph.size(), 1u);
}

TEST(Builders, LeftoverLeafPropagatesWithoutMergeTask) {
  TaskGraph graph;
  // 5 leaves, arity 4: first level groups (4) + lone leftover -> second
  // level merges 2.
  const auto leaves = make_leaves(graph, 5);
  ReduceSpec spec;
  spec.merge = sum_merge();
  add_tree_reduction(graph, leaves, 4, spec);
  EXPECT_EQ(graph.size(), 7u);  // 5 leaves + 2 merges
  EXPECT_DOUBLE_EQ(sink_value(graph), 15.0);
}

TEST(Builders, TaskCountFormulaMatchesConstruction) {
  for (std::size_t n : {2u, 3u, 7u, 8u, 9u, 64u, 100u}) {
    for (std::size_t arity : {2u, 4u, 8u}) {
      TaskGraph graph;
      const auto leaves = make_leaves(graph, static_cast<int>(n));
      ReduceSpec spec;
      spec.merge = sum_merge();
      add_tree_reduction(graph, leaves, arity, spec);
      EXPECT_EQ(graph.size() - n, tree_reduction_task_count(n, arity))
          << "n=" << n << " arity=" << arity;
    }
  }
}

TEST(Builders, ReduceCostsScaleWithFanIn) {
  TaskGraph graph;
  const auto leaves = make_leaves(graph, 8);
  ReduceSpec spec;
  spec.merge = sum_merge();
  spec.cpu_seconds_fixed = 1.0;
  spec.cpu_seconds_per_input = 0.5;
  const TaskId root = add_single_reduction(graph, leaves, spec);
  EXPECT_DOUBLE_EQ(graph.task(root).spec.cpu_seconds, 1.0 + 0.5 * 8);
}

TEST(Builders, ReduceOutputObeysScaleAndMin) {
  TaskGraph graph;
  const auto leaves = make_leaves(graph, 4);  // 100 B outputs each
  ReduceSpec spec;
  spec.merge = sum_merge();
  spec.output_bytes_min = 50;
  spec.output_scale = 2.0;
  const TaskId root = add_single_reduction(graph, leaves, spec);
  EXPECT_EQ(graph.task(root).spec.output_bytes, 800u);  // 4*100*2

  TaskGraph graph2;
  const auto leaves2 = make_leaves(graph2, 4);
  spec.output_scale = 0.0;
  const TaskId root2 = add_single_reduction(graph2, leaves2, spec);
  EXPECT_EQ(graph2.task(root2).spec.output_bytes, 50u);
}

class TreeEquivalence
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(TreeEquivalence, AnyTreeShapeYieldsSameResultAsSingleReduction) {
  // Property (the algebraic core of the paper's Fig 11 rewrite): because
  // merging is associative and commutative, every reduction topology must
  // produce the same value.
  const auto [n, arity] = GetParam();
  TaskGraph flat;
  const auto flat_leaves = make_leaves(flat, n);
  ReduceSpec spec;
  spec.merge = sum_merge();
  add_single_reduction(flat, flat_leaves, spec);

  TaskGraph tree;
  const auto tree_leaves = make_leaves(tree, n);
  add_tree_reduction(tree, tree_leaves, arity, spec);

  EXPECT_DOUBLE_EQ(sink_value(flat), sink_value(tree));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeEquivalence,
    ::testing::Combine(::testing::Values(2, 5, 17, 64, 100),
                       ::testing::Values(std::size_t{2}, std::size_t{3},
                                         std::size_t{8}, std::size_t{16})));

}  // namespace
}  // namespace hepvine::dag
