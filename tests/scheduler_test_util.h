// Shared helpers for scheduler integration tests: small deterministic
// workloads and clusters that run in milliseconds.
#pragma once

#include "apps/workloads.h"
#include "cluster/calibration.h"
#include "dag/evaluate.h"
#include "exec/scheduler.h"
#include "hep/histogram.h"
#include "util/hash.h"

namespace hepvine::testutil {

/// A small DV3-style workload: `tasks` process tasks over `gb` of input.
inline apps::WorkloadSpec tiny_dv3(std::uint32_t tasks = 24,
                                   std::uint64_t gb = 6) {
  apps::WorkloadSpec spec = apps::dv3_small();
  spec.name = "tiny-dv3";
  spec.process_tasks = tasks;
  spec.input_bytes = gb * util::kGB;
  spec.events_per_chunk = 200;
  spec.process_output_bytes = 30 * util::kMB;
  return spec;
}

/// Cluster with fast batch matching and no preemption unless asked.
inline cluster::ClusterSpec tiny_cluster(std::uint32_t workers = 4,
                                         double preempt_per_hour = 0.0,
                                         std::uint64_t seed = 1) {
  cluster::ClusterSpec spec = cluster::paper_cluster(
      workers, cluster::paper_worker_node(), storage::vast_spec(), seed);
  spec.batch.first_match_delay = util::seconds(0.5);
  spec.batch.match_window = util::seconds(2);
  spec.batch.preemption_rate_per_hour = preempt_per_hour;
  spec.batch.replacement_delay_mean = util::seconds(5);
  return spec;
}

inline exec::RunOptions fast_options() {
  exec::RunOptions options;
  options.seed = 3;
  options.exec_time_jitter = 0.1;
  return options;
}

/// Digest of the single sink result of a report.
inline util::Digest128 sink_digest(const exec::RunReport& report) {
  EXPECT_EQ(report.results.size(), 1u);
  EXPECT_TRUE(report.results.begin()->second != nullptr);
  return report.results.begin()->second->digest();
}

/// Digest of the single sink of a serial evaluation.
inline util::Digest128 reference_digest(const dag::TaskGraph& graph) {
  const auto results = dag::evaluate_serially(graph);
  EXPECT_EQ(results.size(), 1u);
  return results.begin()->second->digest();
}

}  // namespace hepvine::testutil
