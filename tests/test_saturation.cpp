// Manager-saturation hot path: the slab event arena, the flat/dense
// container swaps, and the indexed dispatch index must all be invisible
// to the simulation's observable behaviour. The arena tests pin the
// handle/generation contract; the differential tests prove the indexed
// choose_worker and the container swaps replay bit-identically against
// the reference scans (vine) and across runs (vine, dd).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "apps/workloads.h"
#include "dd/dask_distributed.h"
#include "exec/scheduler.h"
#include "obs/observer.h"
#include "scheduler_test_util.h"
#include "sim/engine.h"
#include "vine/vine_scheduler.h"

namespace hepvine {
namespace {

using testutil::fast_options;
using testutil::sink_digest;
using testutil::tiny_cluster;
using testutil::tiny_dv3;

// ---------------------------------------------------------------------
// Event arena: slab allocation, generation-counted handles, batching.
// ---------------------------------------------------------------------

TEST(EventArena, CancelledEventDoesNotFire) {
  sim::Engine engine;
  int fired = 0;
  auto h = engine.schedule_at(10, [&] { ++fired; });
  engine.schedule_at(20, [&] { ++fired; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  engine.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 20);
}

TEST(EventArena, SlotReuseBumpsGeneration) {
  // Fire an event, then schedule another: the arena recycles the slot.
  // The stale handle must stay inert — cancelling it must not touch the
  // recycled slot's new occupant.
  sim::Engine engine;
  int first = 0;
  int second = 0;
  auto stale = engine.schedule_at(1, [&] { ++first; });
  engine.run();
  EXPECT_EQ(first, 1);
  EXPECT_FALSE(stale.pending());

  auto fresh = engine.schedule_at(2, [&] { ++second; });
  stale.cancel();  // must be a no-op even if the slot was recycled
  EXPECT_TRUE(fresh.pending());
  engine.run();
  EXPECT_EQ(second, 1);
}

TEST(EventArena, HandleOutlivesEngine) {
  sim::Engine::EventHandle handle;
  {
    sim::Engine engine;
    handle = engine.schedule_at(5, [] {});
    EXPECT_TRUE(handle.pending());
  }
  // The arena is gone; the handle must go inert, not dangle.
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // must not crash
}

TEST(EventArena, ScheduleManyPreservesArgumentOrder) {
  sim::Engine engine;
  std::vector<int> order;
  std::vector<sim::Engine::Callback> batch;
  for (int i = 0; i < 100; ++i) {
    batch.emplace_back([&order, i] { order.push_back(i); });
  }
  auto handles = engine.schedule_many(50, std::move(batch));
  ASSERT_EQ(handles.size(), 100u);
  // Interleave a single-event schedule at the same tick after the batch:
  // FIFO within a tick means it fires last.
  engine.schedule_at(50, [&order] { order.push_back(100); });
  handles[7].cancel();
  engine.run();
  ASSERT_EQ(order.size(), 100u);
  for (std::size_t i = 0; i < order.size(); ++i) {
    int expected = static_cast<int>(i);
    if (expected >= 7) ++expected;  // 7 was cancelled
    EXPECT_EQ(order[i], expected);
  }
}

TEST(EventArena, MassCancellationPurgesTombstones) {
  // Cancel-heavy load (the flow network's reschedule pattern) must not
  // leave the queue dominated by tombstones: after the purge kicks in,
  // pending() reflects live events, not cancelled husks.
  sim::Engine engine;
  std::vector<sim::Engine::EventHandle> handles;
  int fired = 0;
  constexpr int kEvents = 8192;
  for (int i = 0; i < kEvents; ++i) {
    handles.push_back(engine.schedule_at(1000 + i, [&] { ++fired; }));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    if (i % 8 != 0) handles[i].cancel();  // cancel 7/8ths
  }
  // The purge runs lazily at the next schedule once tombstones dominate.
  engine.schedule_at(1, [&] { ++fired; });
  EXPECT_LT(engine.pending(), static_cast<std::size_t>(kEvents) / 2)
      << "purge must drop tombstones";
  engine.run();
  EXPECT_EQ(fired, kEvents / 8 + 1);
}

TEST(EventArena, RescheduleMovesEventAndKeepsStoredCallback) {
  // A live event's reschedule reuses the slot and the callback already
  // stored in it; the replacement callback is only consumed when the
  // handle is dead. Observable contract: the original callback fires at
  // the new time, exactly once.
  sim::Engine engine;
  int original = 0;
  int replacement = 0;
  auto h = engine.schedule_at(10, [&] { ++original; });
  h = engine.reschedule_at(h, 30, [&] { ++replacement; });
  EXPECT_TRUE(h.pending());
  engine.run();
  EXPECT_EQ(original, 1);
  EXPECT_EQ(replacement, 0);
  EXPECT_EQ(engine.now(), 30);

  // A dead handle falls back to a fresh schedule with the new callback.
  h = engine.reschedule_at(h, 40, [&] { ++replacement; });
  EXPECT_TRUE(h.pending());
  engine.run();
  EXPECT_EQ(original, 1);
  EXPECT_EQ(replacement, 1);

  // A handle from another engine must not touch this engine's slots.
  sim::Engine other;
  auto foreign = other.schedule_at(5, [&] { ++original; });
  auto local = engine.reschedule_at(foreign, 50, [&] { ++replacement; });
  EXPECT_TRUE(foreign.pending());
  EXPECT_TRUE(local.pending());
  engine.run();
  EXPECT_EQ(replacement, 2);
  EXPECT_EQ(original, 1);  // the foreign event never ran
}

TEST(EventArena, RescheduleOrderMatchesCancelPlusSchedule) {
  // reschedule_at consumes exactly one seq, like cancel()+schedule_at —
  // so interleaved same-tick events fire in the same order under either
  // pattern. This is the bit-identity contract the flow network's
  // re-rate loop depends on.
  auto run = [](bool use_reschedule) {
    sim::Engine engine;
    std::vector<int> order;
    auto moved = engine.schedule_at(10, [&] { order.push_back(0); });
    engine.schedule_at(20, [&] { order.push_back(1); });
    if (use_reschedule) {
      moved = engine.reschedule_at(moved, 20, [&] { order.push_back(0); });
    } else {
      moved.cancel();
      moved = engine.schedule_at(20, [&] { order.push_back(0); });
    }
    engine.schedule_at(20, [&] { order.push_back(2); });
    engine.run();
    return order;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(EventArena, SlabReusedAcrossWaves) {
  // Scheduling N events, draining them, and scheduling N more must not
  // grow the arena a second time: the free list recycles the first
  // wave's slots.
  sim::Engine engine;
  for (int i = 0; i < 1000; ++i) engine.schedule_at(i, [] {});
  engine.run();
  const std::size_t cap_after_first = engine.arena_capacity();
  for (int i = 0; i < 1000; ++i) engine.schedule_at(2000 + i, [] {});
  engine.run();
  EXPECT_EQ(engine.arena_capacity(), cap_after_first);
}

// ---------------------------------------------------------------------
// Differential: indexed dispatch vs reference scans, and run-to-run
// determinism of the flat/dense container swaps.
// ---------------------------------------------------------------------

struct TxnRun {
  exec::RunReport report;
  std::string txn;
};

[[nodiscard]] exec::RunOptions txn_options() {
  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  options.observability.txn_log = true;
  options.observability.perf_log = false;
  options.observability.chrome_trace = false;
  return options;
}

[[nodiscard]] TxnRun run_vine(const apps::WorkloadSpec& workload,
                              bool indexed_dispatch,
                              std::uint32_t workers = 6) {
  const dag::TaskGraph graph = apps::build_workload(workload, 3);
  cluster::Cluster cluster(tiny_cluster(workers));
  vine::VineTunables tun;
  tun.indexed_dispatch = indexed_dispatch;
  // Same scheduler name for both paths so the txn logs are comparable
  // byte-for-byte.
  vine::VineScheduler scheduler(vine::taskvine_policy(), tun);
  TxnRun out;
  out.report = scheduler.run(graph, cluster, txn_options());
  out.txn = out.report.observation->txn().text();
  return out;
}

TEST(DispatchDifferential, IndexedMatchesReferenceTxnByteForByte) {
  const auto indexed = run_vine(tiny_dv3(48), /*indexed_dispatch=*/true);
  const auto reference = run_vine(tiny_dv3(48), /*indexed_dispatch=*/false);
  ASSERT_TRUE(indexed.report.success);
  ASSERT_TRUE(reference.report.success);
  EXPECT_EQ(indexed.report.makespan, reference.report.makespan);
  EXPECT_EQ(indexed.report.task_attempts, reference.report.task_attempts);
  ASSERT_FALSE(indexed.txn.empty());
  EXPECT_EQ(indexed.txn, reference.txn)
      << "indexed choose_worker diverged from the reference scan";
}

TEST(DispatchDifferential, IndexedMatchesReferenceUnderTightDisks) {
  // Tight scratch disks drive the disk-pressure fallback — the segment
  // tree's territory. The tree argmax must pick exactly the worker the
  // reference scan picks, including tie-breaks.
  apps::WorkloadSpec workload = tiny_dv3(48);
  workload.process_output_bytes = 400 * util::kMB;
  const auto indexed = run_vine(workload, /*indexed_dispatch=*/true);
  const auto reference = run_vine(workload, /*indexed_dispatch=*/false);
  EXPECT_EQ(indexed.report.success, reference.report.success);
  EXPECT_EQ(indexed.report.makespan, reference.report.makespan);
  EXPECT_EQ(indexed.txn, reference.txn);
}

TEST(DispatchDifferential, VineTwoRunTxnIdentity) {
  // Flat containers (FlatMap pins/last_use, sharded fetches, dense
  // attempts) iterate in key order by construction; two identical runs
  // must emit identical transaction logs.
  const auto a = run_vine(tiny_dv3(), /*indexed_dispatch=*/true);
  const auto b = run_vine(tiny_dv3(), /*indexed_dispatch=*/true);
  ASSERT_TRUE(a.report.success);
  ASSERT_FALSE(a.txn.empty());
  EXPECT_EQ(a.txn, b.txn);
  EXPECT_EQ(sink_digest(a.report), sink_digest(b.report));
}

TEST(DispatchDifferential, DaskTwoRunTxnIdentity) {
  // dd's dense attempts/running_on/sink_gathered must not perturb replay.
  auto run_dd = [] {
    const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 3);
    cluster::Cluster cluster(tiny_cluster(4));
    dd::DaskDistScheduler scheduler{dd::DaskTunables{}};
    TxnRun out;
    out.report = scheduler.run(graph, cluster, txn_options());
    out.txn = out.report.observation->txn().text();
    return out;
  };
  const auto a = run_dd();
  const auto b = run_dd();
  ASSERT_TRUE(a.report.success);
  ASSERT_FALSE(a.txn.empty());
  EXPECT_EQ(a.txn, b.txn);
}

TEST(DispatchDifferential, ObjectStoreTwoRunTxnIdentity) {
  // The node-local object store adds state (holder map, ref counts, the
  // serialize residue accumulator) to every dispatch and completion; with
  // it on, two identical serverless runs must still replay byte-for-byte.
  auto run_fc = [](bool object_store) {
    const dag::TaskGraph graph = apps::build_workload(tiny_dv3(48), 3);
    cluster::Cluster cluster(tiny_cluster(6));
    vine::VineTunables tun;
    tun.object_store = object_store;
    vine::VineScheduler scheduler(vine::taskvine_policy(), tun);
    exec::RunOptions options = txn_options();
    options.mode = exec::ExecMode::kFunctionCalls;
    TxnRun out;
    out.report = scheduler.run(graph, cluster, options);
    out.txn = out.report.observation->txn().text();
    return out;
  };
  const auto on_a = run_fc(true);
  const auto on_b = run_fc(true);
  ASSERT_TRUE(on_a.report.success) << on_a.report.failure_reason;
  ASSERT_FALSE(on_a.txn.empty());
  EXPECT_GT(on_a.report.store_puts, 0u);
  EXPECT_EQ(on_a.txn, on_b.txn);
  EXPECT_EQ(sink_digest(on_a.report), sink_digest(on_b.report));

  // And the off arm both replays and stays verb-free.
  const auto off_a = run_fc(false);
  const auto off_b = run_fc(false);
  ASSERT_TRUE(off_a.report.success) << off_a.report.failure_reason;
  EXPECT_EQ(off_a.txn, off_b.txn);
  EXPECT_EQ(off_a.txn.find(" STORE "), std::string::npos);
  EXPECT_EQ(sink_digest(on_a.report), sink_digest(off_a.report));
}

TEST(DispatchDifferential, DaskServerlessTwoRunTxnIdentity) {
  // dd's serverless path now charges serialization through the per-proc
  // residue accumulator; the accumulator state must not perturb replay.
  auto run_dd_fc = [] {
    const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 3);
    cluster::Cluster cluster(tiny_cluster(4));
    dd::DaskDistScheduler scheduler{dd::DaskTunables{}};
    exec::RunOptions options = txn_options();
    options.mode = exec::ExecMode::kFunctionCalls;
    TxnRun out;
    out.report = scheduler.run(graph, cluster, options);
    out.txn = out.report.observation->txn().text();
    return out;
  };
  const auto a = run_dd_fc();
  const auto b = run_dd_fc();
  ASSERT_TRUE(a.report.success) << a.report.failure_reason;
  ASSERT_FALSE(a.txn.empty());
  EXPECT_EQ(a.txn, b.txn);
}

// ---------------------------------------------------------------------
// Dispatch-correctness bugfix regressions.
// ---------------------------------------------------------------------

TEST(DispatchBugfix, LocalityTriesSecondBestHolderUnderDiskPressure) {
  // With scratch outputs sized so a single worker's disk cannot hold the
  // whole reduction, locality placement must fall through to the next
  // holder in (score, id) order instead of abandoning locality — the run
  // still completes and matches the two-run replay.
  apps::WorkloadSpec workload = tiny_dv3(48);
  workload.process_output_bytes = 300 * util::kMB;
  const auto a = run_vine(workload, /*indexed_dispatch=*/true);
  ASSERT_TRUE(a.report.success) << a.report.failure_reason;
  const auto b = run_vine(workload, /*indexed_dispatch=*/true);
  EXPECT_EQ(a.txn, b.txn);
}

TEST(DispatchBugfix, LocalityWinsStillRotateRoundRobinCursor) {
  // The fairness fix: locality placements advance the round-robin cursor,
  // so cache-miss dispatches keep rotating instead of hammering the
  // worker after the last cold start. Observable effect: with plenty of
  // workers, dispatches spread — no worker is starved while another
  // hoards the whole run.
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(60), 3);
  cluster::Cluster cluster(tiny_cluster(8));
  vine::VineScheduler scheduler(vine::taskvine_policy(), vine::VineTunables{});
  const auto report = scheduler.run(graph, cluster, fast_options());
  ASSERT_TRUE(report.success);

  std::map<std::int32_t, std::size_t> per_worker;
  for (const metrics::TaskRecord& rec : report.trace.records()) {
    if (!rec.failed) ++per_worker[rec.worker];
  }
  EXPECT_GE(per_worker.size(), 4u)
      << "round-robin cursor stuck: dispatches collapsed onto "
      << per_worker.size() << " workers";
  std::size_t max_share = 0;
  std::size_t total = 0;
  for (const auto& [w, n] : per_worker) {
    max_share = std::max(max_share, n);
    total += n;
  }
  EXPECT_LT(max_share, total)  // at least two workers did real work
      << "one worker hoarded every dispatch";
}

}  // namespace
}  // namespace hepvine
