#include "batch/batch_system.h"

#include <gtest/gtest.h>

#include <vector>

namespace hepvine::batch {
namespace {

using util::Tick;

TEST(Batch, AllWorkersMatchWithinWindow) {
  sim::Engine engine;
  BatchSpec spec;
  spec.first_match_delay = util::seconds(2);
  spec.match_window = util::seconds(30);
  spec.preemption_rate_per_hour = 0;
  BatchSystem batch(engine, spec, 1);

  std::vector<Tick> starts;
  batch.submit(
      50, [&](std::uint32_t, std::uint32_t) { starts.push_back(engine.now()); },
      nullptr);
  engine.run();
  ASSERT_EQ(starts.size(), 50u);
  for (Tick t : starts) {
    EXPECT_GE(t, util::seconds(2));
    EXPECT_LE(t, util::seconds(32));
  }
  EXPECT_EQ(batch.active_workers(), 50u);
  EXPECT_EQ(batch.preemptions(), 0u);
}

TEST(Batch, IncarnationZeroOnFirstStart) {
  sim::Engine engine;
  BatchSpec spec;
  spec.preemption_rate_per_hour = 0;
  BatchSystem batch(engine, spec, 1);
  std::vector<std::uint32_t> incs;
  batch.submit(
      3, [&](std::uint32_t, std::uint32_t inc) { incs.push_back(inc); },
      nullptr);
  engine.run();
  EXPECT_EQ(incs, (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(Batch, PreemptionsOccurAtConfiguredRate) {
  sim::Engine engine;
  BatchSpec spec;
  spec.first_match_delay = 0;
  spec.match_window = 0;
  spec.preemption_rate_per_hour = 1.0;  // mean lifetime 1 h
  spec.resubmit_on_preempt = false;
  BatchSystem batch(engine, spec, 42);

  int preempted = 0;
  batch.submit(1000, nullptr,
               [&](std::uint32_t, std::uint32_t) { ++preempted; });
  engine.run_until(util::seconds(3600));
  batch.drain();
  engine.run();
  // Exponential lifetimes: ~63% preempted within one mean lifetime.
  EXPECT_GT(preempted, 550);
  EXPECT_LT(preempted, 720);
  EXPECT_EQ(batch.preemptions(), static_cast<std::uint32_t>(preempted));
}

TEST(Batch, ResubmittedWorkerReturnsWithNewIncarnation) {
  sim::Engine engine;
  BatchSpec spec;
  spec.first_match_delay = 0;
  spec.match_window = 0;
  spec.preemption_rate_per_hour = 0;
  spec.resubmit_on_preempt = true;
  spec.replacement_delay_mean = util::seconds(10);
  BatchSystem batch(engine, spec, 7);

  std::vector<std::uint32_t> start_incs;
  batch.submit(
      1,
      [&](std::uint32_t, std::uint32_t inc) { start_incs.push_back(inc); },
      nullptr);
  engine.run_until(util::seconds(1));
  batch.force_preempt(0);
  engine.run_until(util::seconds(500));
  batch.drain();
  engine.run();
  ASSERT_EQ(start_incs.size(), 2u);
  EXPECT_EQ(start_incs[0], 0u);
  EXPECT_EQ(start_incs[1], 1u);
}

TEST(Batch, ForcePreemptOnIdleSlotIsNoop) {
  sim::Engine engine;
  BatchSpec spec;
  spec.first_match_delay = util::seconds(100);
  BatchSystem batch(engine, spec, 1);
  batch.submit(1, nullptr, nullptr);
  batch.force_preempt(0);  // not yet running
  EXPECT_EQ(batch.preemptions(), 0u);
}

TEST(Batch, DrainStopsFuturePreemptions) {
  sim::Engine engine;
  BatchSpec spec;
  spec.first_match_delay = 0;
  spec.match_window = 0;
  spec.preemption_rate_per_hour = 1000.0;  // aggressive
  BatchSystem batch(engine, spec, 3);
  int preempted = 0;
  batch.submit(10, nullptr,
               [&](std::uint32_t, std::uint32_t) { ++preempted; });
  engine.run_until(1);  // workers start
  batch.drain();
  engine.run();
  EXPECT_EQ(preempted, 0);
}

TEST(Batch, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine engine;
    BatchSpec spec;
    spec.preemption_rate_per_hour = 2.0;
    spec.resubmit_on_preempt = false;
    BatchSystem batch(engine, spec, seed);
    std::vector<Tick> events;
    batch.submit(
        100,
        [&](std::uint32_t, std::uint32_t) { events.push_back(engine.now()); },
        [&](std::uint32_t, std::uint32_t) { events.push_back(engine.now()); });
    engine.run_until(util::seconds(1800));
    batch.drain();
    engine.run();
    return events;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace hepvine::batch
