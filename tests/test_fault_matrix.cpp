// Adversarial fault-schedule matrix: every scheduler backend must survive
// every schedule and produce the bit-identical physics histogram a serial
// evaluation produces, with RunReport fault counters exact where the
// schedule guarantees a landing, and the whole run replayable: the same
// schedule + seed twice gives identical makespan, counters, and txn log.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dd/dask_distributed.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"
#include "wq/work_queue.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;
using util::Tick;

std::unique_ptr<exec::SchedulerBackend> make_scheduler(
    const std::string& name) {
  if (name == "taskvine") return std::make_unique<vine::VineScheduler>();
  if (name == "work-queue") return std::make_unique<wq::WorkQueueScheduler>();
  return std::make_unique<dd::DaskDistScheduler>();
}

class FaultMatrix : public ::testing::TestWithParam<const char*> {
 protected:
  dag::TaskGraph graph_ = apps::build_workload(tiny_dv3(24), 31);

  exec::RunOptions base_options() const {
    exec::RunOptions options = fast_options();
    options.seed = 31;
    options.max_task_retries = 30;
    return options;
  }

  exec::RunReport run(const exec::RunOptions& options,
                      std::uint32_t workers = 4,
                      double preempt_per_hour = 0.0) const {
    cluster::Cluster cluster(tiny_cluster(workers, preempt_per_hour));
    return make_scheduler(GetParam())->run(graph_, cluster, options);
  }

  /// Fault-free probe of this scheduler, to time faults relative to.
  exec::RunReport probe() const {
    const auto report = run(base_options());
    EXPECT_TRUE(report.success) << report.failure_reason;
    return report;
  }

  void expect_exact_result(const exec::RunReport& report) const {
    ASSERT_TRUE(report.success) << report.failure_reason;
    EXPECT_EQ(sink_digest(report), reference_digest(graph_));
  }

  /// Same schedule + seed twice must replay identically.
  static void expect_replay_identical(const exec::RunReport& a,
                                      const exec::RunReport& b) {
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.task_attempts, b.task_attempts);
    EXPECT_EQ(a.lineage_resets, b.lineage_resets);
    EXPECT_EQ(a.worker_crashes, b.worker_crashes);
    EXPECT_EQ(a.faults.faults_injected, b.faults.faults_injected);
    EXPECT_EQ(a.faults.worker_crashes, b.faults.worker_crashes);
    EXPECT_EQ(a.faults.cache_losses, b.faults.cache_losses);
    EXPECT_EQ(a.faults.transfers_killed, b.faults.transfers_killed);
    EXPECT_EQ(a.faults.transfer_retries, b.faults.transfer_retries);
    EXPECT_EQ(a.faults.backoff_wait, b.faults.backoff_wait);
  }

  const metrics::TaskRecord* find_success(const exec::RunReport& report,
                                          dag::TaskId t) const {
    for (const auto& rec : report.trace.records()) {
      if (rec.task_id == t && !rec.failed) return &rec;
    }
    return nullptr;
  }
};

TEST_P(FaultMatrix, MidTransferKillStorm) {
  const auto clean = probe();
  exec::RunOptions options = base_options();
  for (int i = 1; i <= 8; ++i) {
    options.faults.kill_transfers(clean.makespan * i / 12, 2);
  }
  const auto report = run(options);
  expect_exact_result(report);
  const auto replay = run(options);
  expect_exact_result(replay);
  expect_replay_identical(report, replay);
}

TEST_P(FaultMatrix, CrashDuringFinalReduction) {
  const auto clean = probe();
  const auto* sink = find_success(clean, graph_.sinks().at(0));
  ASSERT_NE(sink, nullptr);
  ASSERT_GE(sink->worker, 0);
  exec::RunOptions options = base_options();
  // The fault run replays the probe until the crash tick, so the sink's
  // worker is mid-reduction exactly then — the crash is guaranteed to land.
  options.faults.crash_worker((sink->started_at + sink->finished_at) / 2,
                              sink->worker);
  const auto report = run(options);
  expect_exact_result(report);
  EXPECT_EQ(report.faults.worker_crashes, 1u);
  EXPECT_EQ(report.faults.faults_injected, 1u);
  EXPECT_EQ(report.worker_crashes, 1u);
}

TEST_P(FaultMatrix, FsOutageDuringImportStorm) {
  // Full shared-FS outage while the cluster cold-starts (environment and
  // dataset reads in flight). Flows stall at zero rate and resume.
  exec::RunOptions options = base_options();
  const Tick duration = util::seconds(20);
  options.faults.fs_outage(util::seconds(2), duration);
  const auto report = run(options);
  expect_exact_result(report);
  EXPECT_EQ(report.faults.fs_degradations, 1u);
  EXPECT_EQ(report.faults.fs_degraded_time, duration);
  // The outage can only delay, never speed up, the cold start.
  const auto clean = probe();
  EXPECT_GE(report.makespan, clean.makespan);
}

TEST_P(FaultMatrix, BrownoutMidRunPlusTransferKills) {
  const auto clean = probe();
  exec::RunOptions options = base_options();
  options.faults.fs_brownout(clean.makespan / 5, clean.makespan / 3, 0.25)
      .kill_transfers(clean.makespan / 2, 3);
  const auto report = run(options);
  expect_exact_result(report);
  EXPECT_EQ(report.faults.fs_degradations, 1u);
  EXPECT_EQ(report.faults.fs_degraded_time, clean.makespan / 3);
}

TEST_P(FaultMatrix, StragglerPlusBatchPreemptionCombo) {
  const auto clean = probe();
  exec::RunOptions options = base_options();
  options.faults
      .straggler(clean.makespan / 10, 1, 4.0, clean.makespan / 2)
      .crash_worker(clean.makespan / 2, 2);
  // Injected faults on top of organic batch preemption.
  const auto report = run(options, 4, 20.0);
  expect_exact_result(report);
  EXPECT_EQ(report.faults.stragglers, 1u);
  const auto replay = run(options, 4, 20.0);
  expect_exact_result(replay);
  expect_replay_identical(report, replay);
}

TEST_P(FaultMatrix, CacheLossStorm) {
  const auto clean = probe();
  exec::RunOptions options = base_options();
  for (std::int64_t f = 0; f < 12; ++f) {
    options.faults.lose_cached_file(clean.makespan * (2 + f % 5) / 8, -1, f);
  }
  const auto report = run(options);
  expect_exact_result(report);
  const auto replay = run(options);
  expect_exact_result(replay);
  expect_replay_identical(report, replay);
}

TEST_P(FaultMatrix, StochasticChaosReplaysBitIdentically) {
  // Seeded generators only: armed mid-stream transfer deaths plus Poisson
  // worker crashes. Two runs with the same schedule seed must produce the
  // same result, the same counters, and the same transaction log.
  exec::RunOptions options = base_options();
  options.faults.stochastic.transfer_kill_prob = 0.05;
  options.faults.stochastic.worker_crash_rate_per_hour = 30.0;
  options.faults.seed = 13;
  options.observability.enabled = true;
  options.observability.txn_log = true;
  const auto report = run(options);
  expect_exact_result(report);
  const auto replay = run(options);
  expect_exact_result(replay);
  expect_replay_identical(report, replay);
  ASSERT_NE(report.observation, nullptr);
  ASSERT_NE(replay.observation, nullptr);
  EXPECT_EQ(report.observation->txn().text(), replay.observation->txn().text());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, FaultMatrix,
                         ::testing::Values("taskvine", "work-queue",
                                           "dask.distributed"));

}  // namespace
}  // namespace hepvine
