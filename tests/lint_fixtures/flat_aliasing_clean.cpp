// Fixture: VL009 is quiet when aliases never cross a mutation.
#include <cstdint>

struct Cache {
  util::FlatMap<int, int> pins_;
};

int use_before_mutation(Cache& c) {
  auto it = c.pins_.find(7);
  const int v = (it != c.pins_.end()) ? it->second : 0;
  c.pins_.insert(8, 1);  // alias is dead by now
  return v;
}

int rebind_after_mutation(Cache& c) {
  auto it = c.pins_.find(7);
  c.pins_.insert(8, 1);
  it = c.pins_.find(7);  // re-bound, not read, after the insert
  return it->second;
}

int same_statement(Cache& c) {
  // Mutation and use in one statement never dangle.
  return ++c.pins_[3];
}

int block_scoped(Cache& c) {
  {
    auto it = c.pins_.find(7);
    if (it != c.pins_.end()) return it->second;
  }
  c.pins_.erase(7);  // the alias's block is closed
  return 0;
}
