// Fixture: the file-level allow pragma silences VL001 everywhere.
// vine-lint: allow(unordered-iter)
#include <unordered_map>

int allowed_iteration() {
  std::unordered_map<int, int> counts;
  int total = 0;
  for (const auto& [k, v] : counts) total += k + v;  // allowed by pragma
  auto it = counts.begin();                          // allowed by pragma
  return total + (it == counts.end() ? 0 : it->second);
}
