// Fixture: VL006 must flag naive float accumulation in digest-path files.
struct Digest128 {
  unsigned long long lo = 0;
  unsigned long long hi = 0;
};

double digest_weight(const double* xs, int n, Digest128& d) {
  double acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += xs[i];  // flagged: order-sensitive rounding feeds the digest
  }
  double spill = 0, bias = 1;
  spill -= bias;  // flagged: comma-declared accumulator
  d.lo ^= static_cast<unsigned long long>(acc + spill);
  return acc;
}
