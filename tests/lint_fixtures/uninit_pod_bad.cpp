// Fixture: VL004 must flag scalar and pointer members with no initializer.
#include <cstdint>

struct Event {
  std::int64_t tick;   // flagged
  unsigned worker;     // flagged
  double weight;       // flagged
  const char* label;   // flagged
  int ok = 0;          // initialized: fine
};

struct Pair {
  int a, b;  // flagged twice: comma-separated declarators
};
