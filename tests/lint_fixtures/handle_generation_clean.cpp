// Fixture: VL008 is quiet on generation-checked and hand-off patterns.
#include <vector>

struct Timers {
  sim::EventHandle completion_;
  std::vector<sim::EventHandle> retries_;
};

void tick();

void safe(Timers& tm, sim::Engine& eng, std::size_t i) {
  // First arm in this file: nothing to supersede.
  tm.completion_ = eng.schedule_at(10, tick);
  // cancel() is generation-checked, so the re-arm after it is safe.
  tm.completion_.cancel();
  tm.completion_ = eng.schedule_at(20, tick);
  // pending() is the other stale-safe accessor.
  if (tm.completion_.pending()) {
    // reschedule_at reuses the live slot: the hand-off keeps one event.
    eng.reschedule_at(tm.completion_, 30);
  }
  // A re-arm right after the hand-off is sanctioned by the reschedule.
  tm.completion_ = eng.schedule_at(40, tick);
  // Container first-arm is fine too.
  tm.retries_[i] = eng.schedule_after(5, tick);
}
