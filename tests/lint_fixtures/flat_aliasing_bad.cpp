// Fixture: VL009 — references/iterators into FlatMap held across a
// mutating call.
#include <cstdint>

struct Cache {
  util::FlatMap<int, int> pins_;
};

int alias_across_insert(Cache& c) {
  auto it = c.pins_.find(7);
  c.pins_.insert(8, 1);  // shifts the backing vector
  return it->second;     // flagged: alias invalidated by the insert
}

int ref_across_reserve(Cache& c) {
  int& slot = c.pins_[3];
  c.pins_.reserve(64);  // may reallocate
  return slot;          // flagged: reference invalidated by the reserve
}

void erase_under_range_for(Cache& c) {
  for (const auto& kv : c.pins_) {
    if (kv.second == 0) {
      c.pins_.erase(kv.first);  // flagged: mutation under the loop
    }
  }
}
