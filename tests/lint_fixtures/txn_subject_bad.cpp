// Fixture: VL005 must flag txn-log lines whose subject word is not in the
// kTxnSubjects registry.
#include <cinttypes>
#include <cstdio>

#include "obs/txn_log.h"

void emit(hepvine::obs::TxnLog& log, long long t, char* buf,
          unsigned long n) {
  log.line(t, "ZOMBIE 7 RISEN");  // flagged: unregistered subject
  std::snprintf(buf, n, "%" PRId64 " GHOST %d SPOOKED", t, 3);  // flagged
}
