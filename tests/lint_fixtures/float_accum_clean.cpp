// Fixture: VL006 must stay quiet on DetSum-based accumulation and on
// integral accumulators, even in a file that calls add_to_digest().
#include "util/det_sum.h"

struct Digest128 {
  unsigned long long lo = 0;
  unsigned long long hi = 0;
};

void add_to_digest(Digest128& d, unsigned long long v);

double digest_weight(const double* xs, int n, Digest128& d) {
  hepvine::util::DetSum acc;
  for (int i = 0; i < n; ++i) acc.add(xs[i]);  // compensated: fine
  unsigned long long count = 0;
  for (int i = 0; i < n; ++i) count += 1;  // integral accumulation: fine
  add_to_digest(d, count);
  return acc.value();
}
