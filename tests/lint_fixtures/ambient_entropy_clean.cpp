// Fixture: VL002 must stay quiet on member functions that merely share a
// banned name, and on identifiers containing banned words.
struct Engine {
  long clock() const { return now_us; }
  long time(int scale) const { return now_us * scale; }
  long now_us = 0;
};

struct Timer {
  long time_us = 0;  // identifier contains "time": fine
};

long virtual_time(const Engine& engine) {
  return engine.clock() + engine.time(2);  // member calls: fine
}

long runtime(long run_time) {  // substrings of banned names: fine
  return run_time;
}
