// Fixture: line suppression covers the pragma line and the next one.
#include <algorithm>
#include <vector>

struct Node {
  int id = 0;
};

void dedupe_scratch(std::vector<Node*>& nodes) {
  std::sort(nodes.begin(), nodes.end(),
            // vine-lint: suppress(pointer-sort)
            [](const Node* a, const Node* b) { return a < b; });
}
