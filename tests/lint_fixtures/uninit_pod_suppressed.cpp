// Fixture: line suppression silences VL004 on a scratch struct whose
// members are always overwritten before use.
struct Scratch {
  // vine-lint: suppress(uninit-pod)
  long long tick;
  int worker;  // vine-lint: suppress(uninit-pod)
};
