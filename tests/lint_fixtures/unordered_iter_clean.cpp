// Fixture: VL001 must stay quiet on ordered iteration and on pure
// lookups against unordered containers.
#include <map>
#include <unordered_map>
#include <vector>

int ordered_iteration() {
  std::map<int, int> counts;
  int total = 0;
  for (const auto& [k, v] : counts) total += k + v;  // ordered: fine
  return total;
}

bool lookup_only(int key) {
  std::unordered_map<int, int> index;
  index[key] = 1;
  auto it = index.find(key);   // point lookup: fine
  return it != index.end() && index.count(key) > 0;
}

int vector_loop() {
  std::vector<int> values{1, 2, 3};
  int total = 0;
  for (int v : values) total += v;
  return total;
}
