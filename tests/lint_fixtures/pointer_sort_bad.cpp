// Fixture: VL003 must flag sorts keyed on raw pointer values.
#include <algorithm>
#include <vector>

struct Task {
  int id = 0;
};

void sort_by_address(std::vector<Task*>& tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [](const Task* a, const Task* b) { return a < b; });  // flagged
}

void sort_by_address_of(std::vector<Task>& tasks) {
  std::sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
    return &a < &b;  // flagged: address-of comparison
  });
}

void sort_without_key(std::vector<Task*>& tasks) {
  std::sort(tasks.begin(), tasks.end());  // flagged: pointer container
}
