// Fixture: a line suppression silences VL007 on the member below it.
#include <cstdint>

// vine-snapshot: state
struct RunState {
  std::uint64_t tasks_done = 0;
  // vine-lint: suppress(snapshot-completeness) — serialization lands in the next PR
  std::uint64_t rr_cursor = 0;
};

void take_snapshot(const RunState& st) {
  ha::SnapshotBuilder b;
  b.section("run");
  b.field("tasks_done", st.tasks_done);
}
