// Fixture: suppression sanctions a float accumulation that provably cannot
// drift (all addends are exact powers of two).
struct Digest128 {
  unsigned long long lo = 0;
  unsigned long long hi = 0;
};

double digest_halves(int n, Digest128& d) {
  double acc = 0;
  for (int i = 0; i < n; ++i) {
    acc += 0.5;  // vine-lint: suppress(float-accum)
  }
  d.lo ^= static_cast<unsigned long long>(acc);
  return acc;
}
