// Fixture: line suppression silences VL008 on the re-arm below it.
struct Timers {
  sim::EventHandle completion_;
};

void observe(const sim::EventHandle& h);
void tick();

void misuse(Timers& tm, sim::Engine& eng) {
  observe(tm.completion_);
  // vine-lint: suppress(handle-generation) — teardown path, the old event is drained
  tm.completion_ = eng.schedule_at(10, tick);
  // vine-lint: suppress(handle-generation) — debug probe behind an assert
  tm.completion_.fire();
}
