// Fixture: VL004 must stay quiet on initialized members, constructors,
// and class-type members (which have their own default constructors).
#include <cstdint>
#include <string>
#include <vector>

struct Sample {
  std::uint64_t tick = 0;
  double value{0};
  bool ok = false;
};

struct Slot {
  explicit Slot(int s) : seq(s) {}  // a user ctor may initialize members
  int seq;
};

struct Owning {
  std::string name;      // class-type member: default-constructs
  std::vector<int> xs;   // template member: out of scope
};
