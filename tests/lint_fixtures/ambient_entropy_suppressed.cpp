// Fixture: harness-style wall-clock measurement, sanctioned per line.
#include <chrono>
#include <cstdlib>

double measure_wall_seconds() {
  // vine-lint: suppress(ambient-entropy)
  const auto t0 = std::chrono::steady_clock::now();
  // vine-lint: suppress(ambient-entropy)
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count();
}

const char* knob() {
  return std::getenv("KNOB");  // vine-lint: suppress(ambient-entropy)
}
