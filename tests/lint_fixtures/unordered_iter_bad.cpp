// Fixture: VL001 must flag iteration over unordered containers.
#include <unordered_map>
#include <unordered_set>

int flag_range_for() {
  std::unordered_map<int, int> counts;
  counts[1] = 2;
  int total = 0;
  for (const auto& [k, v] : counts) {  // flagged: range-for
    total += k + v;
  }
  return total;
}

int flag_begin() {
  std::unordered_set<int> seen;
  auto it = seen.begin();  // flagged: .begin()
  return it == seen.end() ? 0 : *it;
}

using HotMap = std::unordered_map<int, double>;

double flag_alias() {
  HotMap rates;
  double acc = 0;
  for (const auto& kv : rates) acc += kv.second;  // flagged: alias range-for
  return acc;
}
