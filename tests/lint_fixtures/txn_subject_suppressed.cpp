// Fixture: suppression silences VL005 for an experimental subject that is
// deliberately kept out of the registry.
#include "obs/txn_log.h"

void emit(hepvine::obs::TxnLog& log, long long t) {
  // vine-lint: suppress(txn-subject)
  log.line(t, "ZOMBIE 7 RISEN");
  log.line(t, "ZOMBIE 8 FED");  // vine-lint: suppress(txn-subject)
}
