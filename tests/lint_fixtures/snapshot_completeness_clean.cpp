// Fixture: VL007 is quiet when every member is serialized or exempted.
#include <cstdint>

// vine-snapshot: state
struct RunState {
  std::uint64_t tasks_done = 0;    // serialized below
  std::uint64_t rr_cursor = 0;     // serialized below
  std::uint64_t snapshot_seq = 0;  // serialized below (stripped-name match)
  // vine-snapshot: derived(rebuilt from the task graph at startup)
  std::uint64_t fanout_cache = 0;
  // vine-snapshot: serialized(via the rng section's field_rng call)
  std::uint64_t rng_words = 0;
};

void take_snapshot(const RunState& st) {
  ha::SnapshotBuilder b;
  b.section("run");
  b.field("tasks_done", st.tasks_done);
  b.field("rr_cursor", st.rr_cursor);
  b.field("seq", st.snapshot_seq);
}
