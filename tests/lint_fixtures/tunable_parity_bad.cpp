// Fixture: VL010 — a fast-path tunable with no reference arm and no
// differential-test mention.
struct Opts {
  // vine-fastpath: opt-in
  bool fast_dispatch = true;
};

int dispatch(const Opts& o) {
  int n = 0;
  if (o.fast_dispatch) {  // flagged: no else / reference arm
    n = 1;
  }
  return n;
}
