// Fixture: VL008 — stored EventHandle re-armed or poked past the
// generation check.
#include <vector>

struct Timers {
  sim::EventHandle completion_;             // tracked scalar handle
  std::vector<sim::EventHandle> retries_;   // tracked handle container
};

void observe(const sim::EventHandle& h);
void use(const sim::EventHandle& h);
void tick();

void misuse(Timers& tm, sim::Engine& eng, std::size_t i) {
  observe(tm.completion_);  // plain use: the handle is live
  // flagged: re-arm after a plain use — the superseded event still fires
  tm.completion_ = eng.schedule_at(10, tick);
  // flagged: .fire() bypasses the generation check
  tm.completion_.fire();
  use(tm.retries_[i]);  // plain use of a container entry
  // flagged: container slot re-armed after a plain use
  tm.retries_[i] = eng.schedule_after(5, tick);
}
