// Fixture: VL010 is quiet when every read branches to a reference arm
// and a differential test names the flag (see tunable_parity_tests.cpp).
struct Opts {
  // vine-fastpath: opt-in
  bool fast_dispatch = true;
};

int dispatch(const Opts& o) {
  int n = 0;
  if (o.fast_dispatch) {
    n = fast_path();
  } else {
    n = reference_path();
  }
  return n;
}

int pick(const Opts& o) {
  return o.fast_dispatch ? fast_path() : reference_path();
}
