// Fixture: a file-level allow() silences VL010 for a transitional flag.
// vine-lint: allow(tunable-parity)
struct Opts {
  // vine-fastpath: opt-in
  bool fast_dispatch = true;
};

int dispatch(const Opts& o) {
  int n = 0;
  if (o.fast_dispatch) {  // would be flagged without the allow()
    n = 1;
  }
  return n;
}
