// Fixture: line suppression silences VL009 on the stale use below it.
#include <cstdint>

struct Cache {
  util::FlatMap<int, int> pins_;
};

int alias_across_insert(Cache& c) {
  auto it = c.pins_.find(7);
  c.pins_.insert(8, 1);
  // vine-lint: suppress(flat-container-aliasing) — insert proven no-realloc here
  return it->second;
}
