// Fixture: VL003 must stay quiet on key-based comparators, including ones
// that dereference pointer parameters.
#include <algorithm>
#include <vector>

struct Task {
  int id = 0;
  double priority = 0;
};

void sort_by_id(std::vector<Task*>& tasks) {
  std::sort(tasks.begin(), tasks.end(),
            [](const Task* a, const Task* b) { return a->id < b->id; });
}

void sort_by_value(std::vector<Task>& tasks) {
  std::sort(tasks.begin(), tasks.end(), [](const Task& a, const Task& b) {
    return a.priority < b.priority;
  });
}

void sort_ints(std::vector<int>& xs) { std::sort(xs.begin(), xs.end()); }
