// Fixture: VL002 must flag wall-clock and ambient-entropy sources.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long wall_clock() {
  return static_cast<long>(time(nullptr));  // flagged: time()
}

int ambient_random() {
  std::random_device rd;  // flagged: random_device
  return static_cast<int>(rd());
}

const char* ambient_config() {
  return std::getenv("SOME_KNOB");  // flagged: getenv()
}

double now_seconds() {
  const auto now = std::chrono::system_clock::now();  // flagged: system_clock
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}
