// Auxiliary corpus for the tunable_parity_clean fixture: a differential
// test that exercises fast_dispatch against the reference path by name.
// Passed to the linter via --tests; never compiled.
void differential_fast_dispatch() {
  // run once with fast_dispatch on, once off, and compare outputs
}
