// Fixture: VL005 must stay quiet on registered subjects, non-txn format
// strings, and non-literal line() arguments.
#include <cinttypes>
#include <cstdio>

#include "obs/txn_log.h"

void emit(hepvine::obs::TxnLog& log, long long t, char* buf,
          unsigned long n, const char* detail) {
  log.line(t, "TASK 7 DONE outputs=1");                         // registered
  std::snprintf(buf, n, "%" PRId64 " MANAGER 0 START", t);      // registered
  std::snprintf(buf, n, "fraction %d of POOL", 3);              // not a txn line
  log.line(t, detail);                                          // non-literal
}
