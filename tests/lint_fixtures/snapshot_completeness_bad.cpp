// Fixture: VL007 must flag a snapshot-bearing member no writer serializes.
#include <cstdint>

// vine-snapshot: state
struct RunState {
  std::uint64_t tasks_done = 0;
  std::uint64_t rr_cursor = 0;  // flagged: never serialized, no exemption
  // vine-snapshot: derived(rebuilt from the task graph at startup)
  std::uint64_t fanout_cache = 0;
};

void take_snapshot(const RunState& st) {
  ha::SnapshotBuilder b;
  b.section("run");
  b.field("tasks_done", st.tasks_done);
}
