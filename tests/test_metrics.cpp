#include <gtest/gtest.h>

#include <sstream>

#include "metrics/cache_trace.h"
#include "metrics/task_trace.h"
#include "metrics/transfer_matrix.h"
#include "util/units.h"

namespace hepvine::metrics {
namespace {

using util::seconds;

TEST(TransferMatrix, RecordsAndTotals) {
  TransferMatrix m(4);
  m.record(0, 1, 100);
  m.record(0, 2, 50);
  m.record(2, 3, 25);
  EXPECT_EQ(m.at(0, 1), 100u);
  EXPECT_EQ(m.total(), 175u);
  EXPECT_EQ(m.row_total(0), 150u);
  EXPECT_EQ(m.col_total(3), 25u);
  EXPECT_EQ(m.max_pair(), 100u);
}

TEST(TransferMatrix, ManagerVsPeerSplit) {
  // Convention: endpoint 0 = manager, last = shared filesystem.
  TransferMatrix m(4);
  m.record(0, 1, 100);  // manager -> worker
  m.record(1, 0, 40);   // worker -> manager
  m.record(1, 2, 30);   // worker peer transfer
  m.record(3, 2, 20);   // fs -> worker (not peer traffic)
  EXPECT_EQ(m.manager_bytes(), 140u);
  EXPECT_EQ(m.peer_bytes(), 30u);
  EXPECT_EQ(m.between(1, 3), 30u);
}

TEST(TransferMatrix, OutOfRangeIsIgnored) {
  TransferMatrix m(2);
  m.record(5, 1, 100);
  m.record(1, 7, 100);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.at(9, 9), 0u);
  EXPECT_EQ(m.row_total(9), 0u);
}

TEST(TransferMatrix, AccumulatesRepeatedRecords) {
  TransferMatrix m(2);
  m.record(0, 1, 10);
  m.record(0, 1, 15);
  EXPECT_EQ(m.at(0, 1), 25u);
}

TEST(TransferMatrix, HeatmapAndCsvRender) {
  TransferMatrix m(8);
  m.record(0, 1, 1000000);
  m.record(3, 4, 500);
  const std::string heat = m.render_heatmap(8);
  EXPECT_NE(heat.find("max pair"), std::string::npos);
  const std::string csv = m.to_csv();
  EXPECT_NE(csv.find("0,1,1000000"), std::string::npos);
  EXPECT_NE(csv.find("3,4,500"), std::string::npos);
}

TaskRecord rec(std::int64_t id, std::int32_t worker, double ready,
               double start, double finish, bool failed = false) {
  TaskRecord r;
  r.task_id = id;
  r.worker = worker;
  r.ready_at = seconds(ready);
  r.dispatched_at = seconds(ready);
  r.started_at = seconds(start);
  r.finished_at = seconds(finish);
  r.failed = failed;
  r.category = "test";
  return r;
}

TEST(TaskTrace, ConcurrencySeriesCountsRunningAndWaiting) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0.0, 1.0, 5.0));
  trace.add(rec(1, 1, 0.0, 2.0, 6.0));
  const auto series = trace.concurrency_series(seconds(1.0), seconds(8.0));
  ASSERT_EQ(series.size(), 9u);
  EXPECT_EQ(series[0].waiting, 2);  // both ready, none started
  EXPECT_EQ(series[0].running, 0);
  EXPECT_EQ(series[1].running, 1);  // task 0 started at t=1
  EXPECT_EQ(series[1].waiting, 1);
  EXPECT_EQ(series[3].running, 2);
  EXPECT_EQ(series[5].running, 1);  // task 0 finished at t=5
  EXPECT_EQ(series[7].running, 0);
}

TEST(TaskTrace, PeakConcurrency) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0, 0.0, 10.0));
  trace.add(rec(1, 1, 0, 2.0, 4.0));
  trace.add(rec(2, 2, 0, 3.0, 5.0));
  EXPECT_EQ(trace.peak_concurrency(), 3);
}

TEST(TaskTrace, FailureCounting) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0, 0, 1));
  trace.add(rec(1, 0, 0, 0, 1, /*failed=*/true));
  EXPECT_EQ(trace.failures(), 1u);
}

TEST(TaskTrace, WorkerOccupancyMeasuresBusyFraction) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0, 0.0, 5.0));   // worker 0 busy 5 of 10 s
  trace.add(rec(1, 1, 0, 0.0, 10.0));  // worker 1 busy all 10 s
  const auto occ = trace.worker_occupancy(3, 0, seconds(10.0));
  ASSERT_EQ(occ.size(), 3u);
  EXPECT_NEAR(occ[0], 0.5, 1e-9);
  EXPECT_NEAR(occ[1], 1.0, 1e-9);
  EXPECT_NEAR(occ[2], 0.0, 1e-9);
}

TEST(TaskTrace, OccupancyMergesOverlappingIntervals) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0, 0.0, 6.0));
  trace.add(rec(1, 0, 0, 4.0, 8.0));  // overlaps the first
  const auto occ = trace.worker_occupancy(1, 0, seconds(10.0));
  EXPECT_NEAR(occ[0], 0.8, 1e-9);
}

TEST(TaskTrace, ExecTimeHistogramBucketsLogarithmically) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0, 0.0, 0.05));  // 0.05 s
  trace.add(rec(1, 0, 0, 0.0, 1.2));   // 1.2 s
  trace.add(rec(2, 0, 0, 0.0, 3.0));   // 3.0 s: same half-decade as 1.2
  trace.add(rec(3, 0, 0, 0.0, 200.0, true));  // failed: excluded
  const auto buckets = trace.exec_time_histogram(0.01, 100.0, 2);
  std::uint64_t total = 0;
  for (const auto& b : buckets) total += b.count;
  EXPECT_EQ(total, 3u);
  // 1.2 and 3.0 s land in the same half-decade bucket [1, 3.16).
  std::uint64_t maxc = 0;
  for (const auto& b : buckets) maxc = std::max(maxc, b.count);
  EXPECT_EQ(maxc, 2u);
}

TEST(TaskTrace, RendersProduceNonEmptyOutput) {
  TaskTrace trace;
  trace.add(rec(0, 0, 0, 0.0, 2.0));
  const auto buckets = trace.exec_time_histogram();
  EXPECT_FALSE(TaskTrace::render_histogram(buckets).empty());
  const auto occ = trace.worker_occupancy(4, 0, seconds(2.0));
  EXPECT_FALSE(TaskTrace::render_occupancy(occ).empty());
  const auto series = trace.concurrency_series(seconds(0.5), seconds(4.0));
  EXPECT_FALSE(render_concurrency(series).empty());
  EXPECT_FALSE(trace.to_csv().empty());
}

TEST(Render, SeriesSpansFullWidthWhenPointsExceedColumns) {
  // Regression: 73 points into 72 columns once collapsed into the left
  // half of the chart. The final samples must land near the right edge.
  std::vector<double> values(73, 5.0);
  const std::string chart = render_series(values, 100.0, 4, 72);
  std::istringstream lines(chart);
  std::string line;
  std::getline(lines, line);  // top row: all at/below threshold boundary
  bool found_tail = false;
  while (std::getline(lines, line)) {
    const auto last = line.find_last_of('*');
    if (last != std::string::npos && last > 60) found_tail = true;
  }
  EXPECT_TRUE(found_tail);
}

TEST(Render, ConcurrencySpansFullWidth) {
  std::vector<TaskTrace::ConcurrencyPoint> series;
  for (int i = 0; i <= 72; ++i) {
    series.push_back({seconds(i), 10, 0});
  }
  const std::string chart = render_concurrency(series, 4, 72);
  std::istringstream lines(chart);
  std::string line;
  bool found_tail = false;
  while (std::getline(lines, line)) {
    const auto last = line.find_last_of('r');
    if (last != std::string::npos && last > 60) found_tail = true;
  }
  EXPECT_TRUE(found_tail);
}

TEST(CacheTrace, PeaksAndSkew) {
  CacheTrace cache(4);
  cache.sample(0, seconds(1), 100);
  cache.sample(0, seconds(2), 300);
  cache.sample(1, seconds(1), 100);
  cache.sample(2, seconds(1), 120);
  cache.sample(3, seconds(1), 90);
  const auto peaks = cache.peak_per_worker();
  EXPECT_EQ(peaks[0], 300u);
  EXPECT_EQ(cache.global_peak(), 300u);
  EXPECT_NEAR(cache.peak_skew(), 300.0 / 120.0, 1e-9);
}

TEST(CacheTrace, FailureMarks) {
  CacheTrace cache(2);
  cache.sample(0, seconds(1), 50);
  cache.mark_failure(0, seconds(2));
  EXPECT_EQ(cache.failure_count(), 1u);
  const std::string render = cache.render(seconds(10));
  EXPECT_NE(render.find('X'), std::string::npos);
}

TEST(CacheTrace, OutOfRangeWorkerIgnored) {
  CacheTrace cache(2);
  cache.sample(7, seconds(1), 50);
  EXPECT_EQ(cache.global_peak(), 0u);
}

TEST(Render, HistogramHandlesEmptySinglePointAndAllEqual) {
  // Empty bucket list: must not crash or emit garbage.
  EXPECT_TRUE(TaskTrace::render_histogram({}).empty());

  // All-zero counts: rendering is defined (no divide-by-zero on max=0).
  std::vector<TaskTrace::TimeBucket> zeros(3);
  zeros[0] = {0.1, 1.0, 0};
  zeros[1] = {1.0, 10.0, 0};
  zeros[2] = {10.0, 100.0, 0};
  const std::string z = TaskTrace::render_histogram(zeros);
  EXPECT_EQ(z.find('#'), std::string::npos);

  // Single populated bucket gets the full bar width.
  std::vector<TaskTrace::TimeBucket> one(1);
  one[0] = {1.0, 10.0, 7};
  const std::string s = TaskTrace::render_histogram(one, 10);
  EXPECT_NE(s.find("##########"), std::string::npos);

  // All-equal counts: every bucket renders an identical full-width bar.
  std::vector<TaskTrace::TimeBucket> eq(3);
  eq[0] = {0.1, 1.0, 5};
  eq[1] = {1.0, 10.0, 5};
  eq[2] = {10.0, 100.0, 5};
  const std::string e = TaskTrace::render_histogram(eq, 8);
  std::istringstream lines(e);
  std::string line;
  int full = 0;
  while (std::getline(lines, line)) {
    if (line.find("########") != std::string::npos) ++full;
  }
  EXPECT_EQ(full, 3);
}

// The chart body is everything before the axis line (the footer legend
// itself contains 'r'/'w'/'*' characters, so marks must be counted in the
// body only).
std::string chart_body(const std::string& chart) {
  const auto axis = chart.find("+--");
  return axis == std::string::npos ? chart : chart.substr(0, axis);
}

TEST(Render, ConcurrencyHandlesEmptySinglePointAndAllEqual) {
  // Empty series renders a placeholder (and does not crash).
  EXPECT_EQ(render_concurrency({}), "(no data)\n");

  // A single point must produce a chart with a running mark in the body.
  std::vector<TaskTrace::ConcurrencyPoint> single = {{seconds(1), 3, 1}};
  const std::string s = render_concurrency(single, 4, 20);
  EXPECT_NE(chart_body(s).find('r'), std::string::npos);

  // All-equal running/waiting: flat line, rendered as '*' (both series),
  // with no divide-by-zero on the value range.
  std::vector<TaskTrace::ConcurrencyPoint> flat;
  for (int i = 0; i < 10; ++i) flat.push_back({seconds(i), 4, 4});
  const std::string f = render_concurrency(flat, 4, 20);
  EXPECT_NE(chart_body(f).find('*'), std::string::npos);

  // All-zero values: defined output, no marks above the axis.
  std::vector<TaskTrace::ConcurrencyPoint> zero;
  for (int i = 0; i < 10; ++i) zero.push_back({seconds(i), 0, 0});
  const std::string body = chart_body(render_concurrency(zero, 4, 20));
  EXPECT_EQ(body.find('r'), std::string::npos);
  EXPECT_EQ(body.find('w'), std::string::npos);
  EXPECT_EQ(body.find('*'), std::string::npos);
}

TEST(Render, SeriesHandlesEmptySinglePointAndAllEqual) {
  // Empty input renders a placeholder.
  EXPECT_EQ(render_series({}, 10.0), "(no data)\n");

  // Single point: chart exists and carries exactly the one mark column.
  const std::string s = render_series({5.0}, 10.0, 4, 20);
  EXPECT_FALSE(s.empty());
  EXPECT_NE(s.find('*'), std::string::npos);

  // All-equal values: flat series must not divide by a zero range.
  const std::string f = render_series(std::vector<double>(16, 2.5), 10.0, 4, 20);
  EXPECT_FALSE(f.empty());
  EXPECT_NE(f.find('*'), std::string::npos);

  // All-zero values: defined, no marks.
  const std::string z = render_series(std::vector<double>(16, 0.0), 10.0, 4, 20);
  EXPECT_EQ(z.find('*'), std::string::npos);
}

}  // namespace
}  // namespace hepvine::metrics
