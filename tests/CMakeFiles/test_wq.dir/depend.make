# Empty dependencies file for test_wq.
# This may be replaced when dependencies are built.
