file(REMOVE_RECURSE
  "CMakeFiles/test_wq.dir/test_wq.cpp.o"
  "CMakeFiles/test_wq.dir/test_wq.cpp.o.d"
  "test_wq"
  "test_wq.pdb"
  "test_wq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
