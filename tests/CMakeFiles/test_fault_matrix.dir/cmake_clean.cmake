file(REMOVE_RECURSE
  "CMakeFiles/test_fault_matrix.dir/test_fault_matrix.cpp.o"
  "CMakeFiles/test_fault_matrix.dir/test_fault_matrix.cpp.o.d"
  "test_fault_matrix"
  "test_fault_matrix.pdb"
  "test_fault_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
