# Empty dependencies file for test_fault_matrix.
# This may be replaced when dependencies are built.
