file(REMOVE_RECURSE
  "CMakeFiles/test_disk_lifecycle.dir/test_disk_lifecycle.cpp.o"
  "CMakeFiles/test_disk_lifecycle.dir/test_disk_lifecycle.cpp.o.d"
  "test_disk_lifecycle"
  "test_disk_lifecycle.pdb"
  "test_disk_lifecycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
