file(REMOVE_RECURSE
  "CMakeFiles/test_vine_lint.dir/test_vine_lint.cpp.o"
  "CMakeFiles/test_vine_lint.dir/test_vine_lint.cpp.o.d"
  "test_vine_lint"
  "test_vine_lint.pdb"
  "test_vine_lint[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vine_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
