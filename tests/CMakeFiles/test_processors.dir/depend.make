# Empty dependencies file for test_processors.
# This may be replaced when dependencies are built.
