# Empty compiler generated dependencies file for test_dd.
# This may be replaced when dependencies are built.
