file(REMOVE_RECURSE
  "CMakeFiles/test_dd.dir/test_dd.cpp.o"
  "CMakeFiles/test_dd.dir/test_dd.cpp.o.d"
  "test_dd"
  "test_dd.pdb"
  "test_dd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
