# Empty compiler generated dependencies file for test_ha.
# This may be replaced when dependencies are built.
