file(REMOVE_RECURSE
  "CMakeFiles/test_ha.dir/test_ha.cpp.o"
  "CMakeFiles/test_ha.dir/test_ha.cpp.o.d"
  "test_ha"
  "test_ha.pdb"
  "test_ha[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
