file(REMOVE_RECURSE
  "CMakeFiles/test_pyrt.dir/test_pyrt.cpp.o"
  "CMakeFiles/test_pyrt.dir/test_pyrt.cpp.o.d"
  "test_pyrt"
  "test_pyrt.pdb"
  "test_pyrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pyrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
