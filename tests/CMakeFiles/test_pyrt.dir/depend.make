# Empty dependencies file for test_pyrt.
# This may be replaced when dependencies are built.
