# Empty compiler generated dependencies file for test_net_differential.
# This may be replaced when dependencies are built.
