file(REMOVE_RECURSE
  "CMakeFiles/test_net_differential.dir/test_net_differential.cpp.o"
  "CMakeFiles/test_net_differential.dir/test_net_differential.cpp.o.d"
  "test_net_differential"
  "test_net_differential.pdb"
  "test_net_differential[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
