file(REMOVE_RECURSE
  "CMakeFiles/test_network_invariants.dir/test_network_invariants.cpp.o"
  "CMakeFiles/test_network_invariants.dir/test_network_invariants.cpp.o.d"
  "test_network_invariants"
  "test_network_invariants.pdb"
  "test_network_invariants[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_invariants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
