# Empty compiler generated dependencies file for test_network_invariants.
# This may be replaced when dependencies are built.
