
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/test_rng.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_rng.dir/test_rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/apps/CMakeFiles/hepvine_apps.dir/DependInfo.cmake"
  "/root/repo/src/coffea/CMakeFiles/hepvine_coffea.dir/DependInfo.cmake"
  "/root/repo/src/vine/CMakeFiles/hepvine_vine.dir/DependInfo.cmake"
  "/root/repo/src/dd/CMakeFiles/hepvine_dd.dir/DependInfo.cmake"
  "/root/repo/src/ha/CMakeFiles/hepvine_ha.dir/DependInfo.cmake"
  "/root/repo/src/hep/CMakeFiles/hepvine_hep.dir/DependInfo.cmake"
  "/root/repo/src/exec/CMakeFiles/hepvine_exec.dir/DependInfo.cmake"
  "/root/repo/src/fault/CMakeFiles/hepvine_fault.dir/DependInfo.cmake"
  "/root/repo/src/dag/CMakeFiles/hepvine_dag.dir/DependInfo.cmake"
  "/root/repo/src/cluster/CMakeFiles/hepvine_cluster.dir/DependInfo.cmake"
  "/root/repo/src/batch/CMakeFiles/hepvine_batch.dir/DependInfo.cmake"
  "/root/repo/src/pyrt/CMakeFiles/hepvine_pyrt.dir/DependInfo.cmake"
  "/root/repo/src/data/CMakeFiles/hepvine_data.dir/DependInfo.cmake"
  "/root/repo/src/storage/CMakeFiles/hepvine_storage.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/hepvine_net.dir/DependInfo.cmake"
  "/root/repo/src/metrics/CMakeFiles/hepvine_metrics.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/hepvine_sim.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/hepvine_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
