# Empty dependencies file for test_replica_table.
# This may be replaced when dependencies are built.
