file(REMOVE_RECURSE
  "CMakeFiles/test_replica_table.dir/test_replica_table.cpp.o"
  "CMakeFiles/test_replica_table.dir/test_replica_table.cpp.o.d"
  "test_replica_table"
  "test_replica_table.pdb"
  "test_replica_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_replica_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
