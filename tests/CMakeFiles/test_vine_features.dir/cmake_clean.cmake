file(REMOVE_RECURSE
  "CMakeFiles/test_vine_features.dir/test_vine_features.cpp.o"
  "CMakeFiles/test_vine_features.dir/test_vine_features.cpp.o.d"
  "test_vine_features"
  "test_vine_features.pdb"
  "test_vine_features[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vine_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
