# Empty dependencies file for test_vine_features.
# This may be replaced when dependencies are built.
