file(REMOVE_RECURSE
  "CMakeFiles/test_vine.dir/test_vine.cpp.o"
  "CMakeFiles/test_vine.dir/test_vine.cpp.o.d"
  "test_vine"
  "test_vine.pdb"
  "test_vine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
