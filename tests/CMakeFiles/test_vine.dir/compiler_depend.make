# Empty compiler generated dependencies file for test_vine.
# This may be replaced when dependencies are built.
