file(REMOVE_RECURSE
  "CMakeFiles/test_coffea.dir/test_coffea.cpp.o"
  "CMakeFiles/test_coffea.dir/test_coffea.cpp.o.d"
  "test_coffea"
  "test_coffea.pdb"
  "test_coffea[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coffea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
