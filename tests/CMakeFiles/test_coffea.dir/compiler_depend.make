# Empty compiler generated dependencies file for test_coffea.
# This may be replaced when dependencies are built.
