file(REMOVE_RECURSE
  "CMakeFiles/test_exec_util.dir/test_exec_util.cpp.o"
  "CMakeFiles/test_exec_util.dir/test_exec_util.cpp.o.d"
  "test_exec_util"
  "test_exec_util.pdb"
  "test_exec_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
