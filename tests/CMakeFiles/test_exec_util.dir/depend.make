# Empty dependencies file for test_exec_util.
# This may be replaced when dependencies are built.
