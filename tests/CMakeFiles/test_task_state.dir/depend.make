# Empty dependencies file for test_task_state.
# This may be replaced when dependencies are built.
