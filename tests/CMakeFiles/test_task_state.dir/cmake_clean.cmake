file(REMOVE_RECURSE
  "CMakeFiles/test_task_state.dir/test_task_state.cpp.o"
  "CMakeFiles/test_task_state.dir/test_task_state.cpp.o.d"
  "test_task_state"
  "test_task_state.pdb"
  "test_task_state[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
