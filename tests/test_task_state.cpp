#include "exec/task_state.h"

#include <gtest/gtest.h>

#include <set>

namespace hepvine::exec {
namespace {

using dag::TaskGraph;
using dag::TaskId;
using dag::TaskSpec;

dag::ValuePtr scalar(double v) {
  return std::make_shared<dag::ScalarValue>(v);
}

/// Diamond: a -> {b, c} -> d.
TaskGraph diamond() {
  TaskGraph graph;
  TaskSpec a;
  a.category = "a";
  graph.add_task(std::move(a));
  TaskSpec b;
  b.deps = {0};
  graph.add_task(std::move(b));
  TaskSpec c;
  c.deps = {0};
  graph.add_task(std::move(c));
  TaskSpec d;
  d.deps = {1, 2};
  graph.add_task(std::move(d));
  return graph;
}

TEST(TaskState, RootsStartReady) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  EXPECT_EQ(table.ready_count(), 1u);
  EXPECT_EQ(table.pop_ready(), 0);
  EXPECT_EQ(table.pop_ready(), dag::kInvalidTask);
}

TEST(TaskState, DoneUnblocksDependents) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.mark_dispatched(0, 1, 0);
  table.mark_running(0, 1);
  table.mark_done(0, scalar(1), 2);
  EXPECT_EQ(table.pop_ready(), 1);
  EXPECT_EQ(table.pop_ready(), 2);
  EXPECT_EQ(table.pop_ready(), dag::kInvalidTask);
}

TEST(TaskState, JoinWaitsForAllDeps) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(1), 1);
  table.mark_dispatched(1, 0, 1);
  table.mark_done(1, scalar(2), 2);
  EXPECT_EQ(table.at(3).state, TaskState::kWaiting);
  table.mark_dispatched(2, 0, 2);
  table.mark_done(2, scalar(3), 3);
  EXPECT_EQ(table.at(3).state, TaskState::kReady);
  EXPECT_EQ(table.at(3).ready_at, 3);
}

TEST(TaskState, AllDoneAfterFullExecution) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  for (TaskId t : {0, 1, 2, 3}) {
    const TaskId popped = table.pop_ready();
    ASSERT_EQ(popped, t);
    table.mark_dispatched(t, 0, 0);
    table.mark_running(t, 0);
    table.mark_done(t, scalar(1), 0);
  }
  EXPECT_TRUE(table.all_done());
  EXPECT_EQ(table.done_count(), 4u);
}

TEST(TaskState, GatherInputsInDeclarationOrder) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(10), 0);
  table.mark_dispatched(1, 0, 0);
  table.mark_done(1, scalar(20), 0);
  table.mark_dispatched(2, 0, 0);
  table.mark_done(2, scalar(30), 0);
  const auto inputs = table.gather_inputs(3);
  ASSERT_EQ(inputs.size(), 2u);
  EXPECT_DOUBLE_EQ(dynamic_cast<const dag::ScalarValue&>(*inputs[0]).get(),
                   20.0);
  EXPECT_DOUBLE_EQ(dynamic_cast<const dag::ScalarValue&>(*inputs[1]).get(),
                   30.0);
}

TEST(TaskState, RequeueReturnsTaskToReadyAndAttemptsCount) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.pop_ready();
  table.mark_dispatched(0, 5, 10);
  EXPECT_EQ(table.at(0).attempts, 1u);
  table.requeue(0, 20);
  EXPECT_EQ(table.at(0).state, TaskState::kReady);
  EXPECT_EQ(table.pop_ready(), 0);
  table.mark_dispatched(0, 6, 21);
  EXPECT_EQ(table.at(0).attempts, 2u);
}

TEST(TaskState, StaleReadyQueueEntriesSkipped) {
  // A task can appear in the ready deque more than once (requeue paths);
  // pop must return it exactly once per time it is actually ready.
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  ASSERT_EQ(table.pop_ready(), 0);
  table.mark_dispatched(0, 0, 0);
  table.requeue(0, 1);
  ASSERT_EQ(table.pop_ready(), 0);
  table.mark_dispatched(0, 0, 2);
  // The deque is now empty of valid entries.
  EXPECT_EQ(table.pop_ready(), dag::kInvalidTask);
  EXPECT_EQ(table.peek_ready(), dag::kInvalidTask);
}

TEST(TaskState, ResetLostSingleProducer) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(1), 0);
  // b and c are now ready. Simulate loss of a's output.
  const std::size_t reset =
      table.reset_lost(0, 5, [](TaskId) { return false; });
  EXPECT_EQ(reset, 1u);
  EXPECT_EQ(table.at(0).state, TaskState::kReady) << "a re-runs";
  EXPECT_EQ(table.at(1).state, TaskState::kWaiting) << "b demoted";
  EXPECT_EQ(table.at(2).state, TaskState::kWaiting) << "c demoted";
  EXPECT_EQ(table.at(1).deps_remaining, 1u);
  // Re-run a: b and c become ready again.
  EXPECT_EQ(table.pop_ready(), 0);
  table.mark_dispatched(0, 0, 6);
  table.mark_done(0, scalar(1), 7);
  EXPECT_EQ(table.at(1).state, TaskState::kReady);
  EXPECT_EQ(table.at(2).state, TaskState::kReady);
}

TEST(TaskState, ResetLostOnNonDoneTaskIsNoop) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  EXPECT_EQ(table.reset_lost(0, 0, [](TaskId) { return false; }), 0u);
}

TEST(TaskState, ResetLostCascadesThroughLostAncestors) {
  // Chain a -> b -> c; complete a and b; lose both outputs; reset b must
  // cascade to a.
  TaskGraph graph;
  TaskSpec a;
  graph.add_task(std::move(a));
  TaskSpec b;
  b.deps = {0};
  graph.add_task(std::move(b));
  TaskSpec c;
  c.deps = {1};
  graph.add_task(std::move(c));

  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(1), 0);
  table.mark_dispatched(1, 0, 0);
  table.mark_done(1, scalar(2), 0);

  const std::size_t reset =
      table.reset_lost(1, 1, [](TaskId) { return false; });
  EXPECT_EQ(reset, 2u);
  EXPECT_EQ(table.at(0).state, TaskState::kReady);
  EXPECT_EQ(table.at(1).state, TaskState::kWaiting);
  EXPECT_EQ(table.at(1).deps_remaining, 1u);
  EXPECT_EQ(table.at(2).state, TaskState::kWaiting);
}

TEST(TaskState, ResetLostStopsAtAvailableAncestors) {
  TaskGraph graph;
  TaskSpec a;
  graph.add_task(std::move(a));
  TaskSpec b;
  b.deps = {0};
  graph.add_task(std::move(b));

  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(1), 0);
  table.mark_dispatched(1, 0, 0);
  table.mark_done(1, scalar(2), 0);

  // Only b's output lost; a's replica survives.
  const std::size_t reset =
      table.reset_lost(1, 1, [](TaskId t) { return t == 0; });
  EXPECT_EQ(reset, 1u);
  EXPECT_EQ(table.at(0).state, TaskState::kDone);
  EXPECT_EQ(table.at(1).state, TaskState::kReady) << "deps satisfied";
}

TEST(TaskState, ResetLostLeavesRunningDependentsAlone) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(1), 0);
  table.pop_ready();
  table.mark_dispatched(1, 2, 0);
  table.mark_running(1, 0);  // b is running with its staged copy

  table.reset_lost(0, 1, [](TaskId) { return false; });
  EXPECT_EQ(table.at(1).state, TaskState::kRunning)
      << "running consumers keep their staged inputs";
  EXPECT_EQ(table.at(2).state, TaskState::kWaiting);

  // b finishes normally even though a is re-running.
  table.mark_done(1, scalar(5), 2);
  EXPECT_EQ(table.at(3).state, TaskState::kWaiting);
  EXPECT_EQ(table.at(3).deps_remaining, 1u) << "d still waits on c only";
}

TEST(TaskState, DoubleResetDoesNotDoubleCountDeps) {
  const TaskGraph graph = diamond();
  TaskStateTable table(graph);
  table.mark_dispatched(0, 0, 0);
  table.mark_done(0, scalar(1), 0);
  table.reset_lost(0, 1, [](TaskId) { return false; });
  // Second reset attempt: producer is no longer done -> noop.
  EXPECT_EQ(table.reset_lost(0, 1, [](TaskId) { return false; }), 0u);
  EXPECT_EQ(table.at(1).deps_remaining, 1u);
}

}  // namespace
}  // namespace hepvine::exec
