#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace hepvine::util {
namespace {

TEST(ThreadPool, RunsSubmittedWork) {
  ThreadPool pool(4);
  auto fut = pool.submit([] { return 7 * 6; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 500; ++i) {
    futs.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPool, ExceptionsPropagateThroughFuture) {
  ThreadPool pool(2);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, SizeReflectsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelFor, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for(100, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

}  // namespace
}  // namespace hepvine::util
