#include "util/units.h"

#include <gtest/gtest.h>

namespace hepvine::util {
namespace {

TEST(Units, SecondsRoundTrip) {
  EXPECT_EQ(seconds(1.0), kSec);
  EXPECT_EQ(seconds(0.001), kMsec);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(12.5)), 12.5);
}

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(gbps(8.0), 1e9);     // 8 Gbit/s = 1 GB/s
  EXPECT_DOUBLE_EQ(mbs(100.0), 100e6);  // 100 MB/s
}

TEST(Units, TransferTimeBasics) {
  // 1 GB at 1 GB/s = 1 s.
  EXPECT_EQ(transfer_time(1'000'000'000, 1e9), kSec);
  EXPECT_EQ(transfer_time(0, 1e9), 0);
}

TEST(Units, TransferTimeNeverZeroForNonzeroBytes) {
  EXPECT_GE(transfer_time(1, 1e12), 1);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1.5 us worth of bytes must take 2 ticks.
  EXPECT_EQ(transfer_time(1500, 1e9), 2);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1500), "1.5 KB");
  EXPECT_EQ(format_bytes(2 * kGB), "2.0 GB");
  EXPECT_EQ(format_bytes(3 * kTB + 500 * kGB), "3.5 TB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(5.25)), "5.2s");
  EXPECT_EQ(format_duration(seconds(125.0)), "2m05.0s");
  EXPECT_EQ(format_duration(seconds(3725.0)), "1h02m05s");
}

}  // namespace
}  // namespace hepvine::util
