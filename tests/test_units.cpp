#include "util/units.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/det_sum.h"

namespace hepvine::util {
namespace {

TEST(Units, SecondsRoundTrip) {
  EXPECT_EQ(seconds(1.0), kSec);
  EXPECT_EQ(seconds(0.001), kMsec);
  EXPECT_DOUBLE_EQ(to_seconds(kMinute), 60.0);
  EXPECT_DOUBLE_EQ(to_seconds(seconds(12.5)), 12.5);
}

TEST(Units, BandwidthConversions) {
  EXPECT_DOUBLE_EQ(gbps(8.0), 1e9);     // 8 Gbit/s = 1 GB/s
  EXPECT_DOUBLE_EQ(mbs(100.0), 100e6);  // 100 MB/s
}

TEST(Units, TransferTimeBasics) {
  // 1 GB at 1 GB/s = 1 s.
  EXPECT_EQ(transfer_time(1'000'000'000, 1e9), kSec);
  EXPECT_EQ(transfer_time(0, 1e9), 0);
}

TEST(Units, TickAccumulatorSumsExactly) {
  // Per-call transfer_time rounds every payload up to a whole tick, so N
  // sub-tick serializations overcharge by up to N-1 ticks. The residue
  // accumulator must make any split sum to the one-shot total.
  const Bandwidth rate = mbs(200.0);        // the pickle throughput
  const std::uint64_t tuple = 16 * kKiB;    // one argument tuple
  const int n = 1000;
  TickAccumulator acc;
  Tick split_total = 0;
  for (int i = 0; i < n; ++i) split_total += acc.charge(tuple, rate);
  EXPECT_EQ(split_total,
            transfer_time(static_cast<std::uint64_t>(n) * tuple, rate));
  // The naive per-call charging really does lose fractional ticks — the
  // accumulator exists because these two disagree.
  EXPECT_GT(static_cast<Tick>(n) * transfer_time(tuple, rate), split_total);
}

TEST(Units, TickAccumulatorZeroBytesIsFree) {
  TickAccumulator acc;
  EXPECT_EQ(acc.charge(0, mbs(200.0)), 0);
  EXPECT_EQ(acc.bytes, 0u);
  EXPECT_EQ(acc.charged, 0);
  // A zero charge between real ones must not disturb the residue.
  const Tick a = acc.charge(16 * kKiB, mbs(200.0));
  EXPECT_EQ(acc.charge(0, mbs(200.0)), 0);
  const Tick b = acc.charge(16 * kKiB, mbs(200.0));
  EXPECT_EQ(a + b, transfer_time(32 * kKiB, mbs(200.0)));
}

TEST(Units, TickAccumulatorMatchesArbitrarySplits) {
  // Exactness must not depend on uniform chunk sizes.
  const Bandwidth rate = gbps(1.0);
  const std::vector<std::uint64_t> chunks = {1, 1500, 7, 16 * kKiB,
                                             3 * kMiB, 42, 999'999};
  std::uint64_t total_bytes = 0;
  Tick total_ticks = 0;
  TickAccumulator acc;
  for (const std::uint64_t c : chunks) {
    total_bytes += c;
    total_ticks += acc.charge(c, rate);
  }
  EXPECT_EQ(total_ticks, transfer_time(total_bytes, rate));
}

TEST(Units, TransferTimeNeverZeroForNonzeroBytes) {
  EXPECT_GE(transfer_time(1, 1e12), 1);
}

TEST(Units, TransferTimeRoundsUp) {
  // 1.5 us worth of bytes must take 2 ticks.
  EXPECT_EQ(transfer_time(1500, 1e9), 2);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1500), "1.5 KB");
  EXPECT_EQ(format_bytes(2 * kGB), "2.0 GB");
  EXPECT_EQ(format_bytes(3 * kTB + 500 * kGB), "3.5 TB");
}

TEST(Units, FormatDuration) {
  EXPECT_EQ(format_duration(seconds(5.25)), "5.2s");
  EXPECT_EQ(format_duration(seconds(125.0)), "2m05.0s");
  EXPECT_EQ(format_duration(seconds(3725.0)), "1h02m05s");
}

TEST(DetSum, RecoversBitsNaiveSummationLoses) {
  // Naive left-to-right: (1e16 + 1) - 1e16 == 0 in double. Compensated
  // summation keeps the low-order 1.0 alive.
  double naive = 0;
  DetSum comp;
  for (double x : {1e16, 1.0, -1e16}) {
    naive += x;
    comp.add(x);
  }
  EXPECT_EQ(naive, 0.0);
  EXPECT_EQ(comp.value(), 1.0);
}

TEST(DetSum, NeumaierHandlesAddendLargerThanSum) {
  // Kahan's original scheme loses the compensation when the incoming
  // addend dominates the running sum; Neumaier's branch keeps it.
  DetSum s;
  s.add(1.0);
  s.add(1e100);
  s.add(1.0);
  s.add(-1e100);
  EXPECT_EQ(s.value(), 2.0);
}

TEST(DetSum, MatchesExactArithmeticOnQuantizedWeights) {
  // Scheduler weights are quantized to 1/1024, so sums are exact; DetSum
  // must agree bit-for-bit with the naive sum in that regime.
  double naive = 0;
  DetSum s;
  for (int i = 1; i <= 4096; ++i) {
    const double w = static_cast<double>(i % 97) / 1024.0;
    naive += w;
    s += w;
  }
  EXPECT_EQ(s.value(), naive);
}

TEST(DetSum, InitialValueResetAndRangeHelper) {
  DetSum s(5.0);
  s.add(2.5);
  EXPECT_EQ(s.value(), 7.5);
  s.reset();
  EXPECT_EQ(s.value(), 0.0);

  const std::vector<double> xs = {1e16, 1.0, -1e16, 1.0};
  EXPECT_EQ(det_sum(xs), 2.0);
  EXPECT_EQ(det_sum({0.25, 0.5, 0.25}), 1.0);
}

}  // namespace
}  // namespace hepvine::util
