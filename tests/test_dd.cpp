#include "dd/dask_distributed.h"

#include <gtest/gtest.h>

#include "scheduler_test_util.h"

namespace hepvine::dd {
namespace {

using namespace hepvine::testutil;

struct DdEndToEnd : public ::testing::Test {
  exec::RunReport run(const apps::WorkloadSpec& workload,
                      const exec::RunOptions& options,
                      std::uint32_t workers = 4,
                      DaskTunables tunables = DaskTunables{}) {
    graph = apps::build_workload(workload, options.seed);
    cluster::Cluster cluster(tiny_cluster(workers));
    DaskDistScheduler scheduler(tunables);
    return scheduler.run(graph, cluster, options);
  }
  dag::TaskGraph graph;
};

TEST_F(DdEndToEnd, CompletesAndMatchesSerialReference) {
  const auto report = run(tiny_dv3(), fast_options());
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.scheduler, "dask.distributed");
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST_F(DdEndToEnd, DeterministicAcrossRuns) {
  const auto a = run(tiny_dv3(), fast_options());
  const auto b = run(tiny_dv3(), fast_options());
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(sink_digest(a), sink_digest(b));
}

TEST_F(DdEndToEnd, UsesAllCoresViaSingleCoreProcesses) {
  const auto report = run(tiny_dv3(48), fast_options(), 2);
  ASSERT_TRUE(report.success);
  // 2 nodes x 12 procs: peak concurrency must exceed one proc per node.
  EXPECT_GT(report.trace.peak_concurrency(), 2);
}

TEST_F(DdEndToEnd, MemoryOverflowKillsAndRestartsProcesses) {
  // Process memory slice = 96 GB / 12 = 8 GB; make each task's held
  // result 9 GB so the first completion on any process kills it.
  apps::WorkloadSpec workload = tiny_dv3(6);
  workload.process_output_bytes = 9 * util::kGB;
  workload.reduce_output_bytes = 9 * util::kGB;
  exec::RunOptions options = fast_options();
  options.max_task_retries = 3;
  options.max_sim_time = util::kHour;
  const auto report = run(workload, options, 2);
  EXPECT_GT(report.worker_crashes, 0u);
  EXPECT_FALSE(report.success)
      << "results that exceed the per-process memory slice crash-loop";
}

TEST_F(DdEndToEnd, SchedulerOverloadCollapsesViaHeartbeatTimeouts) {
  // Inflate per-task scheduler cost so offered load >> loop capacity:
  // heartbeats miss their window, workers restart, the run fails — the
  // paper's "crashes and hangs at scale".
  DaskTunables tunables;
  tunables.dispatch_cost = util::kSec;
  tunables.result_cost = util::kSec;
  tunables.heartbeat_timeout = 15 * util::kSec;
  tunables.restart_delay = 5 * util::kSec;
  tunables.max_restarts_per_proc = 5;
  apps::WorkloadSpec workload = tiny_dv3(120);
  exec::RunOptions options = fast_options();
  options.max_sim_time = util::kHour;
  const auto report = run(workload, options, 4, tunables);
  EXPECT_FALSE(report.success);
  EXPECT_GT(report.worker_crashes, 0u);
}

TEST_F(DdEndToEnd, SmallScaleHealthyNoCrashes) {
  const auto report = run(tiny_dv3(24), fast_options(), 2);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.worker_crashes, 0u);
  EXPECT_EQ(report.task_failures, 0u);
}

TEST_F(DdEndToEnd, PerProcessImportsMakeFirstWaveSlow) {
  // With one task per process, every task pays the full import stack;
  // the run takes at least interpreter+imports regardless of parallelism.
  apps::WorkloadSpec workload = tiny_dv3(24);
  const auto report = run(workload, fast_options(), 2);
  ASSERT_TRUE(report.success);
  const auto& py = fast_options().python;
  const util::Tick import_floor =
      py.interpreter_startup +
      fast_options().imports.import_time_local(storage::nvme_disk());
  EXPECT_GT(report.makespan, import_floor);
}

}  // namespace
}  // namespace hepvine::dd
