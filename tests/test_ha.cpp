// Manager high-availability tests: snapshot serialization round trips,
// the vine_factory-style elastic pool, injected manager crashes, and the
// full recovery protocol — restore the latest snapshot, replay the txn
// tail, and prove the recovered run bit-identical to an uninterrupted one
// on all three scheduler backends.
#include <gtest/gtest.h>

#include <string>

#include "dd/dask_distributed.h"
#include "fault/fault_schedule.h"
#include "ha/factory.h"
#include "ha/recovery.h"
#include "ha/snapshot.h"
#include "scheduler_test_util.h"
#include "sim/engine.h"
#include "vine/vine_scheduler.h"
#include "wq/work_queue.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;
using util::Tick;

// --- snapshot serialization ----------------------------------------------

ha::SnapshotRecord sample_snapshot(std::uint64_t done) {
  ha::SnapshotBuilder b;
  b.section("run");
  b.field("tasks_done", done);
  b.field_i("cursor", -3);
  b.section("workers");
  b.field_s("w0", "inc=2 out=1 pins=4:1,7:2");
  b.section("rng");
  b.field_rng("main", {1, 2, 3, 0xfffffffffffffffeULL});
  return b.finish(12345, 7);
}

TEST(Snapshot, BuilderIsDeterministic) {
  const auto a = sample_snapshot(10);
  const auto b = sample_snapshot(10);
  EXPECT_EQ(a.state, b.state);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.tick, 12345);
  EXPECT_EQ(a.seq, 7u);
  EXPECT_EQ(a.bytes, a.state.size());

  // Any state change must change the digest.
  const auto c = sample_snapshot(11);
  EXPECT_NE(a.digest, c.digest);
}

TEST(Snapshot, ParseRoundTripsFieldsInOrder) {
  const auto rec = sample_snapshot(10);
  const auto fields = ha::parse_snapshot(rec.state);
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0].first, "run.tasks_done");
  EXPECT_EQ(fields[0].second, "10");
  EXPECT_EQ(fields[1].first, "run.cursor");
  EXPECT_EQ(fields[1].second, "-3");
  EXPECT_EQ(fields[2].first, "workers.w0");
  EXPECT_EQ(fields[2].second, "inc=2 out=1 pins=4:1,7:2");
  EXPECT_EQ(fields[3].first, "rng.main");

  EXPECT_EQ(ha::snapshot_field(rec.state, "workers.w0"),
            "inc=2 out=1 pins=4:1,7:2");
  EXPECT_EQ(ha::snapshot_field(rec.state, "run.missing"), "");
}

// --- factory demand model ------------------------------------------------

TEST(Factory, TargetClampsDemandToBounds) {
  sim::Engine engine;
  ha::FactorySpec spec;
  spec.min_workers = 2;
  spec.max_workers = 8;
  spec.tasks_per_worker = 4;
  ha::Factory factory(engine, spec, {});
  EXPECT_EQ(factory.target(0), 2u);    // floor
  EXPECT_EQ(factory.target(8), 2u);    // ceil(8/4) = 2
  EXPECT_EQ(factory.target(9), 3u);    // ceil(9/4) = 3
  EXPECT_EQ(factory.target(32), 8u);
  EXPECT_EQ(factory.target(1000), 8u);  // ceiling
}

// --- end-to-end helpers --------------------------------------------------

exec::RunReport run_backend(const std::string& kind,
                            const dag::TaskGraph& graph,
                            const exec::RunOptions& options,
                            std::uint32_t workers) {
  cluster::Cluster cluster(tiny_cluster(workers));
  if (kind == "vine") {
    vine::VineScheduler s;
    return s.run(graph, cluster, options);
  }
  if (kind == "wq") {
    wq::WorkQueueScheduler s;
    return s.run(graph, cluster, options);
  }
  dd::DaskDistScheduler s;
  return s.run(graph, cluster, options);
}

/// Successful trace record for `t`, or nullptr.
const metrics::TaskRecord* find_success(const exec::RunReport& report,
                                        dag::TaskId t) {
  for (const auto& rec : report.trace.records()) {
    if (rec.task_id == t && !rec.failed) return &rec;
  }
  return nullptr;
}

exec::RunOptions ha_options() {
  exec::RunOptions options = fast_options();
  options.max_task_retries = 20;
  options.observability.enabled = true;
  options.ha.snapshot_interval = util::seconds(5);
  return options;
}

// --- manager crash -------------------------------------------------------

TEST(ManagerHa, InjectedCrashEndsRunAndRecordsState) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(24), 5);
  exec::RunOptions options = ha_options();

  const auto probe = run_backend("vine", graph, options, 4);
  ASSERT_TRUE(probe.success) << probe.failure_reason;
  EXPECT_FALSE(probe.ha.manager_crashed);
  EXPECT_FALSE(probe.ha.snapshots.empty());

  const Tick mid = probe.makespan / 2;
  options.faults.crash_manager(mid);
  const auto crashed = run_backend("vine", graph, options, 4);
  EXPECT_FALSE(crashed.success);
  EXPECT_TRUE(crashed.ha.manager_crashed);
  EXPECT_EQ(crashed.ha.crash_tick, mid);
  EXPECT_EQ(crashed.makespan, mid);
  EXPECT_EQ(crashed.faults.manager_crashes, 1u);
  EXPECT_EQ(crashed.faults.faults_injected, 1u);
  // Snapshots up to the crash are a prefix of the uninterrupted series.
  ASSERT_FALSE(crashed.ha.snapshots.empty());
  ASSERT_LE(crashed.ha.snapshots.size(), probe.ha.snapshots.size());
  for (std::size_t i = 0; i < crashed.ha.snapshots.size(); ++i) {
    EXPECT_EQ(crashed.ha.snapshots[i].digest, probe.ha.snapshots[i].digest)
        << "snapshot " << i << " diverged before the crash";
  }
}

TEST(ManagerHa, CrashAfterCompletionDoesNotCount) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(12), 5);
  exec::RunOptions options = ha_options();
  const auto probe = run_backend("vine", graph, options, 4);
  ASSERT_TRUE(probe.success) << probe.failure_reason;

  options.faults.crash_manager(probe.makespan + util::seconds(1));
  const auto report = run_backend("vine", graph, options, 4);
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_FALSE(report.ha.manager_crashed);
  EXPECT_EQ(report.faults.manager_crashes, 0u);
}

// --- recovery: snapshot + txn-tail replay, bit-identity ------------------

void expect_recovery_bit_identical(const std::string& kind) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(24), 5);
  exec::RunOptions options = ha_options();

  // Uninterrupted baseline: what the recovered run must be identical to.
  const auto baseline = run_backend(kind, graph, options, 4);
  ASSERT_TRUE(baseline.success) << baseline.failure_reason;
  ASSERT_GE(baseline.ha.snapshots.size(), 2u)
      << "workload too short to checkpoint; lower snapshot_interval";

  // Crash mid-campaign, after at least one checkpoint.
  exec::RunOptions crash_options = options;
  crash_options.faults.crash_manager(baseline.makespan * 6 / 10);
  const auto crashed = run_backend(kind, graph, crash_options, 4);
  ASSERT_TRUE(crashed.ha.manager_crashed);
  ASSERT_FALSE(crashed.ha.snapshots.empty())
      << "crash landed before the first checkpoint";

  exec::RunOptions rerun_options = crash_options;
  rerun_options.faults = ha::strip_manager_crash(crash_options.faults);
  const auto outcome =
      ha::recover(crashed, crash_options.ha, [&] {
        return run_backend(kind, graph, rerun_options, 4);
      });

  EXPECT_TRUE(outcome.snapshot_converged) << outcome.error;
  EXPECT_TRUE(outcome.tail_identical) << outcome.error;
  EXPECT_TRUE(outcome.recovered) << outcome.error;
  EXPECT_GT(outcome.tail_lines, 0u);
  EXPECT_GT(outcome.restore_cost, 0);
  EXPECT_GT(outcome.replay_cost, 0);

  // End-to-end bit-identity: recovered run == uninterrupted baseline.
  EXPECT_EQ(ha::run_digest(outcome.report), ha::run_digest(baseline));
  EXPECT_EQ(sink_digest(outcome.report), reference_digest(graph));

  // The protocol journal records all three phases in txn-line format.
  EXPECT_NE(outcome.journal.find("RECOVER"), std::string::npos);
  EXPECT_NE(outcome.journal.find("RESTORE"), std::string::npos);
  EXPECT_NE(outcome.journal.find("REPLAY"), std::string::npos);
  EXPECT_NE(outcome.journal.find("DONE"), std::string::npos);
  EXPECT_NE(outcome.journal.find("recovered=1"), std::string::npos);
}

TEST(ManagerHa, RecoveryBitIdenticalVine) {
  expect_recovery_bit_identical("vine");
}

TEST(ManagerHa, RecoveryBitIdenticalWq) {
  expect_recovery_bit_identical("wq");
}

TEST(ManagerHa, RecoveryBitIdenticalDask) {
  expect_recovery_bit_identical("dd");
}

TEST(ManagerHa, RecoveryBitIdenticalWithObjectStoreSpills) {
  // The object store adds live manager state — holder map, ref counts,
  // per-object LRU stamps, the serialize residue accumulators — all of
  // which must survive the snapshot/replay cycle. A deliberately small
  // budget keeps the store under pressure so snapshots are taken with
  // objects resident AND spills already on disk.
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(24), 5);
  exec::RunOptions options = ha_options();
  options.mode = exec::ExecMode::kFunctionCalls;
  vine::VineTunables tun;
  tun.object_store = true;
  tun.object_store_bytes = 64 * util::kMB;  // ~2 process outputs
  auto run_store = [&](const exec::RunOptions& o) {
    cluster::Cluster cluster(tiny_cluster(4));
    vine::VineScheduler s(vine::taskvine_policy(), tun);
    return s.run(graph, cluster, o);
  };

  const auto baseline = run_store(options);
  ASSERT_TRUE(baseline.success) << baseline.failure_reason;
  ASSERT_GE(baseline.ha.snapshots.size(), 2u);
  EXPECT_GT(baseline.store_puts, 0u);
  EXPECT_GT(baseline.store_spills, 0u)
      << "budget too large: no snapshot can catch a spilled object";

  // At least one cadence tick must serialize live store objects.
  bool saw_object = false;
  for (const auto& rec : baseline.ha.snapshots) {
    EXPECT_FALSE(ha::snapshot_field(rec.state, "store.puts").empty())
        << rec.state;
    if (!ha::snapshot_field(rec.state, "store.objects").empty() &&
        ha::snapshot_field(rec.state, "store.objects") != "0") {
      saw_object = true;
    }
  }
  EXPECT_TRUE(saw_object)
      << "no snapshot observed a resident store object";

  exec::RunOptions crash_options = options;
  crash_options.faults.crash_manager(baseline.makespan * 6 / 10);
  const auto crashed = run_store(crash_options);
  ASSERT_TRUE(crashed.ha.manager_crashed);
  ASSERT_FALSE(crashed.ha.snapshots.empty());

  exec::RunOptions rerun_options = crash_options;
  rerun_options.faults = ha::strip_manager_crash(crash_options.faults);
  const auto outcome = ha::recover(crashed, crash_options.ha, [&] {
    return run_store(rerun_options);
  });

  EXPECT_TRUE(outcome.snapshot_converged) << outcome.error;
  EXPECT_TRUE(outcome.tail_identical) << outcome.error;
  EXPECT_TRUE(outcome.recovered) << outcome.error;
  EXPECT_EQ(ha::run_digest(outcome.report), ha::run_digest(baseline));
  EXPECT_EQ(sink_digest(outcome.report), reference_digest(graph));
}

// --- snapshot completeness: the VL007-audited fields are live ------------

TEST(ManagerHa, SnapshotCarriesCursorResetAndInjectorState) {
  // A reduction tree on a single worker: crashing the worker while the
  // final reduce executes loses every retained output at once, forcing
  // lineage resets (the per-task r<id> counters) on the rerun tasks.
  apps::WorkloadSpec workload = tiny_dv3(4);
  workload.reduce_arity = 2;
  const dag::TaskGraph graph = apps::build_workload(workload, 7);
  ASSERT_EQ(graph.sinks().size(), 1u);
  const dag::TaskId sink = graph.sinks().at(0);
  exec::RunOptions options = ha_options();
  options.seed = 7;

  const auto probe = run_backend("vine", graph, options, 1);
  ASSERT_TRUE(probe.success) << probe.failure_reason;
  const auto* rec = find_success(probe, sink);
  ASSERT_NE(rec, nullptr);
  ASSERT_LT(rec->started_at, rec->finished_at);
  options.faults.crash_worker((rec->started_at + rec->finished_at) / 2, 0);

  const auto baseline = run_backend("vine", graph, options, 1);
  ASSERT_TRUE(baseline.success) << baseline.failure_reason;
  ASSERT_FALSE(baseline.ha.snapshots.empty());
  const std::string& state = baseline.ha.snapshots.back().state;

  // The dispatch round-robin cursor (unserialized before the VL007 audit).
  EXPECT_FALSE(ha::snapshot_field(state, "run.rr_cursor").empty());
  // The injector tallies, present and counting the crash we injected.
  EXPECT_EQ(ha::snapshot_field(state, "injector.faults_injected"), "1");
  EXPECT_EQ(ha::snapshot_field(state, "injector.worker_crashes"), "1");
  EXPECT_FALSE(ha::snapshot_field(state, "injector.backoff_wait").empty());
  // The sparse per-task reset counters (r<id> lines in the tasks section).
  bool has_reset = false;
  for (const auto& [key, value] : ha::parse_snapshot(state)) {
    if (key.rfind("tasks.r", 0) == 0 && value != "0") {
      has_reset = true;
      break;
    }
  }
  EXPECT_TRUE(has_reset)
      << "worker crash produced no tasks.r<id> reset field";

  // With the new fields in the stream, recovery must still converge and
  // the recovered run must stay bit-identical to the uninterrupted one.
  exec::RunOptions crash_options = options;
  crash_options.faults.crash_manager(baseline.makespan * 7 / 10);
  const auto crashed = run_backend("vine", graph, crash_options, 1);
  ASSERT_TRUE(crashed.ha.manager_crashed);
  ASSERT_FALSE(crashed.ha.snapshots.empty());
  exec::RunOptions rerun_options = crash_options;
  rerun_options.faults = ha::strip_manager_crash(crash_options.faults);
  const auto outcome = ha::recover(crashed, crash_options.ha, [&] {
    return run_backend("vine", graph, rerun_options, 1);
  });
  EXPECT_TRUE(outcome.snapshot_converged) << outcome.error;
  EXPECT_TRUE(outcome.recovered) << outcome.error;
  EXPECT_EQ(ha::run_digest(outcome.report), ha::run_digest(baseline));
}

TEST(ManagerHa, RecoveryCostScalesWithTailNotCampaign) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(24), 5);
  exec::RunOptions options = ha_options();
  const auto probe = run_backend("vine", graph, options, 4);
  ASSERT_TRUE(probe.success) << probe.failure_reason;
  const Tick crash_at = probe.makespan * 6 / 10;

  const auto crash_with_cadence = [&](Tick interval) {
    exec::RunOptions o = options;
    o.ha.snapshot_interval = interval;
    o.faults = fault::FaultSchedule{};
    o.faults.crash_manager(crash_at);
    const auto crashed = run_backend("vine", graph, o, 4);
    exec::RunOptions rerun = o;
    rerun.faults = ha::strip_manager_crash(o.faults);
    return ha::recover(crashed, o.ha, [&] {
      return run_backend("vine", graph, rerun, 4);
    });
  };

  // Denser checkpoints leave a shorter tail since the last anchor, so the
  // modeled recovery time shrinks — it tracks work-since-checkpoint, not
  // campaign length.
  const auto dense = crash_with_cadence(crash_at / 7 + 1);
  const auto sparse = crash_with_cadence(crash_at / 2 + 1);
  ASSERT_TRUE(dense.recovered) << dense.error;
  ASSERT_TRUE(sparse.recovered) << sparse.error;
  EXPECT_LT(dense.tail_lines, sparse.tail_lines);
  EXPECT_LT(dense.replay_cost, sparse.replay_cost);
}

TEST(ManagerHa, CrashBeforeFirstCheckpointIsDiagnosed) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(12), 5);
  exec::RunOptions options = ha_options();
  options.ha.snapshot_interval = util::kHour;  // never fires in this run
  options.faults.crash_manager(util::seconds(8));
  const auto crashed = run_backend("vine", graph, options, 4);
  ASSERT_TRUE(crashed.ha.manager_crashed);
  ASSERT_TRUE(crashed.ha.snapshots.empty());

  bool rerun_called = false;
  const auto outcome = ha::recover(crashed, options.ha, [&] {
    rerun_called = true;
    return exec::RunReport{};
  });
  EXPECT_FALSE(outcome.recovered);
  EXPECT_FALSE(rerun_called);
  EXPECT_NE(outcome.error.find("no snapshot"), std::string::npos)
      << outcome.error;
}

TEST(ManagerHa, RecoverOnHealthyRunIsAnError) {
  exec::RunReport healthy;
  const auto outcome = ha::recover(healthy, ha::HaOptions{}, [] {
    return exec::RunReport{};
  });
  EXPECT_FALSE(outcome.recovered);
  EXPECT_NE(outcome.error.find("did not crash"), std::string::npos);
}

// --- elastic factory end-to-end ------------------------------------------

TEST(Factory, ElasticPoolGrowsToDemandAndCompletes) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(24), 5);
  exec::RunOptions options = fast_options();
  options.ha.factory.min_workers = 1;
  options.ha.factory.max_workers = 4;
  options.ha.factory.tasks_per_worker = 2;
  options.ha.factory.evaluation_interval = util::seconds(2);

  const auto report = run_backend("vine", graph, options, 4);
  ASSERT_TRUE(report.success) << report.failure_reason;
  // A 24-task campaign over tasks_per_worker=2 demands more than the
  // single seed worker: the factory must have grown the pool.
  EXPECT_GT(report.ha.factory_grow_events, 0u);
  EXPECT_GT(report.ha.workers_started, 0u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(Factory, DisabledByDefaultAndLeavesNoTrace) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(12), 5);
  const exec::RunOptions options = fast_options();
  ASSERT_FALSE(options.ha.factory.enabled());
  ASSERT_FALSE(options.ha.snapshots_enabled());
  const auto report = run_backend("vine", graph, options, 4);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_TRUE(report.ha.snapshots.empty());
  EXPECT_FALSE(report.ha.manager_crashed);
  EXPECT_EQ(report.ha.factory_grow_events, 0u);
  EXPECT_EQ(report.ha.workers_started, 0u);
}

}  // namespace
}  // namespace hepvine
