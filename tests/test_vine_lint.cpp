// Tests for tools/vine_lint: per-rule fixtures (flagging / clean /
// suppressed), the pragma machinery, the subject-table parser, and an
// end-to-end check that the real tree lints clean.
#include "lint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

using hepvine::lint::Finding;
using hepvine::lint::Linter;
using hepvine::lint::LintOptions;
using hepvine::lint::Rule;
using hepvine::lint::rule_from_name;
using hepvine::lint::rule_info;

const std::vector<std::string> kSubjects = {
    "MANAGER", "TASK",     "WORKER", "CACHE",
    "TRANSFER", "LIBRARY", "FAULT",  "NET"};

std::string fixture_path(const std::string& name) {
  return std::string(LINT_FIXTURE_DIR) + "/" + name;
}

std::vector<Finding> lint_fixture(const std::string& name) {
  LintOptions opts;
  opts.roots = {fixture_path(name)};
  opts.subjects = kSubjects;
  Linter linter(std::move(opts));
  return linter.run();
}

/// Like lint_fixture but with caller-tuned options (test corpus, --only,
/// justification policy); roots/subjects are still filled in here.
std::vector<Finding> lint_fixture_with(const std::string& name,
                                       LintOptions opts) {
  opts.roots = {fixture_path(name)};
  opts.subjects = kSubjects;
  Linter linter(std::move(opts));
  return linter.run();
}

std::vector<Finding> lint_snippet(const std::string& path,
                                  const std::string& text) {
  LintOptions opts;
  opts.subjects = kSubjects;
  Linter linter(std::move(opts));
  return linter.lint_text(path, text);
}

int count_rule(const std::vector<Finding>& findings, Rule rule) {
  return static_cast<int>(
      std::count_if(findings.begin(), findings.end(),
                    [rule](const Finding& f) { return f.rule == rule; }));
}

bool only_rule(const std::vector<Finding>& findings, Rule rule) {
  return std::all_of(findings.begin(), findings.end(),
                     [rule](const Finding& f) { return f.rule == rule; });
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// VL001 unordered-iter
// ---------------------------------------------------------------------------

TEST(VineLintUnorderedIter, FlagsIterationOverUnorderedContainers) {
  const auto findings = lint_fixture("unordered_iter_bad.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 3)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kUnorderedIter));
}

TEST(VineLintUnorderedIter, QuietOnOrderedIterationAndLookups) {
  const auto findings = lint_fixture("unordered_iter_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintUnorderedIter, FileAllowPragmaSilencesRule) {
  const auto findings = lint_fixture("unordered_iter_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL002 ambient-entropy
// ---------------------------------------------------------------------------

TEST(VineLintAmbientEntropy, FlagsWallClockAndEntropySources) {
  const auto findings = lint_fixture("ambient_entropy_bad.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kAmbientEntropy), 4)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kAmbientEntropy));
}

TEST(VineLintAmbientEntropy, QuietOnMemberFunctionsSharingBannedNames) {
  const auto findings = lint_fixture("ambient_entropy_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintAmbientEntropy, LineSuppressionCoversPragmaAndNextLine) {
  const auto findings = lint_fixture("ambient_entropy_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintAmbientEntropy, UtilDirectoryIsExempt) {
  const auto findings = lint_snippet(
      "src/util/env.cpp", "const char* v = std::getenv(\"X\");\n");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL003 pointer-sort
// ---------------------------------------------------------------------------

TEST(VineLintPointerSort, FlagsAddressKeyedSorts) {
  const auto findings = lint_fixture("pointer_sort_bad.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kPointerSort), 3)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kPointerSort));
}

TEST(VineLintPointerSort, QuietOnKeyBasedComparators) {
  const auto findings = lint_fixture("pointer_sort_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintPointerSort, LineSuppressionSilencesRule) {
  const auto findings = lint_fixture("pointer_sort_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL004 uninit-pod
// ---------------------------------------------------------------------------

TEST(VineLintUninitPod, FlagsUninitializedScalarAndPointerMembers) {
  const auto findings = lint_fixture("uninit_pod_bad.cpp");
  // Event: tick, worker, weight, label. Pair: a, b.
  EXPECT_EQ(count_rule(findings, Rule::kUninitPod), 6)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kUninitPod));
}

TEST(VineLintUninitPod, QuietOnInitializedMembersCtorsAndClassTypes) {
  const auto findings = lint_fixture("uninit_pod_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintUninitPod, LineSuppressionSilencesRule) {
  const auto findings = lint_fixture("uninit_pod_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL005 txn-subject
// ---------------------------------------------------------------------------

TEST(VineLintTxnSubject, FlagsUnregisteredSubjects) {
  const auto findings = lint_fixture("txn_subject_bad.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kTxnSubject), 2)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kTxnSubject));
}

TEST(VineLintTxnSubject, QuietOnRegisteredSubjectsAndNonTxnStrings) {
  const auto findings = lint_fixture("txn_subject_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintTxnSubject, SuppressionSilencesRule) {
  const auto findings = lint_fixture("txn_subject_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintTxnSubject, FilesWithoutTxnLogIncludeAreOutOfScope) {
  const auto findings = lint_snippet(
      "src/foo.cpp", "void f(L& log, long long t) { log.line(t, \"ZOMBIE 1 X\"); }\n");
  EXPECT_EQ(count_rule(findings, Rule::kTxnSubject), 0)
      << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL006 float-accum
// ---------------------------------------------------------------------------

TEST(VineLintFloatAccum, FlagsNaiveAccumulationInDigestFiles) {
  const auto findings = lint_fixture("float_accum_bad.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kFloatAccum), 2)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kFloatAccum));
}

TEST(VineLintFloatAccum, QuietOnDetSumAndIntegralAccumulators) {
  const auto findings = lint_fixture("float_accum_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintFloatAccum, SuppressionSilencesRule) {
  const auto findings = lint_fixture("float_accum_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintFloatAccum, NonDigestFilesAreOutOfScope) {
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "double total(const double* xs, int n) {\n"
      "  double acc = 0;\n"
      "  for (int i = 0; i < n; ++i) acc += xs[i];\n"
      "  return acc;\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL007 snapshot-completeness
// ---------------------------------------------------------------------------

TEST(VineLintSnapshotCompleteness, FlagsUnserializedStateMember) {
  const auto findings = lint_fixture("snapshot_completeness_bad.cpp");
  EXPECT_EQ(count_rule(findings, Rule::kSnapshotCompleteness), 1)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kSnapshotCompleteness));
  ASSERT_FALSE(findings.empty());
  EXPECT_NE(findings[0].message.find("rr_cursor"), std::string::npos)
      << findings[0].message;
}

TEST(VineLintSnapshotCompleteness, QuietWhenSerializedOrExempt) {
  const auto findings = lint_fixture("snapshot_completeness_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintSnapshotCompleteness, SuppressionSilencesRule) {
  const auto findings = lint_fixture("snapshot_completeness_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintSnapshotCompleteness, IndexCountsTypesMembersAndWriters) {
  LintOptions opts;
  opts.roots = {fixture_path("snapshot_completeness_bad.cpp")};
  opts.subjects = kSubjects;
  Linter linter(std::move(opts));
  (void)linter.run();
  const auto& s = linter.index_stats();
  EXPECT_EQ(s.files_indexed, 1u);
  EXPECT_EQ(s.state_types, 1u);
  EXPECT_GE(s.members_checked, 2u);  // tasks_done + rr_cursor
  EXPECT_GE(s.members_exempt, 1u);   // fanout_cache is derived()
  EXPECT_EQ(s.writer_regions, 1u);
  EXPECT_GT(s.writer_idents, 0u);
}

// ---------------------------------------------------------------------------
// VL008 handle-generation
// ---------------------------------------------------------------------------

TEST(VineLintHandleGeneration, FlagsUncheckedRearmAndInternalsAccess) {
  const auto findings = lint_fixture("handle_generation_bad.cpp");
  // Re-arm after a plain use, .fire() internals access, container re-arm.
  EXPECT_EQ(count_rule(findings, Rule::kHandleGeneration), 3)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kHandleGeneration));
}

TEST(VineLintHandleGeneration, QuietOnCancelPendingAndRescheduleHandoff) {
  const auto findings = lint_fixture("handle_generation_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintHandleGeneration, SuppressionSilencesRule) {
  const auto findings = lint_fixture("handle_generation_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL009 flat-container-aliasing
// ---------------------------------------------------------------------------

TEST(VineLintFlatAliasing, FlagsAliasesHeldAcrossMutation) {
  const auto findings = lint_fixture("flat_aliasing_bad.cpp");
  // Iterator across insert, reference across reserve, erase in range-for.
  EXPECT_EQ(count_rule(findings, Rule::kFlatAliasing), 3)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kFlatAliasing));
}

TEST(VineLintFlatAliasing, QuietOnUseBeforeMutationAndRebind) {
  const auto findings = lint_fixture("flat_aliasing_clean.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintFlatAliasing, SuppressionSilencesRule) {
  const auto findings = lint_fixture("flat_aliasing_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// VL010 tunable-parity
// ---------------------------------------------------------------------------

TEST(VineLintTunableParity, FlagsBareReadMissingElseAndMissingTest) {
  const auto findings = lint_fixture("tunable_parity_bad.cpp");
  // Bare branch read, flag never against a reference arm, no test mention.
  EXPECT_EQ(count_rule(findings, Rule::kTunableParity), 3)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kTunableParity));
}

TEST(VineLintTunableParity, QuietWithReferenceArmsAndNamedTest) {
  LintOptions opts;
  opts.test_roots = {fixture_path("tunable_parity_tests.cpp")};
  const auto findings =
      lint_fixture_with("tunable_parity_clean.cpp", std::move(opts));
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintTunableParity, MissingTestCorpusMentionIsItsOwnFinding) {
  // Same clean fixture, but without the differential-test corpus: the
  // branch shape is fine, so exactly the test-parity leg must fire.
  const auto findings = lint_fixture("tunable_parity_clean.cpp");
  ASSERT_EQ(count_rule(findings, Rule::kTunableParity), 1)
      << hepvine::lint::format_findings(findings);
  EXPECT_NE(findings[0].message.find("not exercised by name"),
            std::string::npos)
      << findings[0].message;
}

TEST(VineLintTunableParity, FileAllowPragmaSilencesRule) {
  const auto findings = lint_fixture("tunable_parity_suppressed.cpp");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

// ---------------------------------------------------------------------------
// Rule metadata, formatting, pragma edge cases
// ---------------------------------------------------------------------------

TEST(VineLintMeta, RuleNamesRoundTrip) {
  for (std::size_t i = 0; i < hepvine::lint::kRuleCount; ++i) {
    const Rule rule = static_cast<Rule>(i);
    const auto& info = rule_info(rule);
    EXPECT_STRNE(info.id, "");
    EXPECT_STRNE(info.hint, "");
    const auto back = rule_from_name(info.name);
    ASSERT_TRUE(back.has_value()) << info.name;
    EXPECT_EQ(*back, rule);
  }
  EXPECT_FALSE(rule_from_name("no-such-rule").has_value());
}

TEST(VineLintMeta, FormatIncludesIdNameAndHint) {
  std::vector<Finding> findings;
  findings.push_back(
      Finding{"src/x.cpp", 12, Rule::kPointerSort, "sorted by address"});
  const std::string out = hepvine::lint::format_findings(findings);
  EXPECT_NE(out.find("src/x.cpp:12"), std::string::npos);
  EXPECT_NE(out.find("VL003"), std::string::npos);
  EXPECT_NE(out.find("pointer-sort"), std::string::npos);
  EXPECT_NE(out.find("fix-it:"), std::string::npos);
}

TEST(VineLintMeta, UnknownPragmaRuleIsAHardError) {
  // A pragma naming an unknown rule must not silence anything, and the
  // typo itself is a VL011 finding — a misspelled suppression that
  // silently disables nothing is worse than no suppression at all.
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "#include <unordered_map>\n"
      "// vine-lint: allow(bogus-rule)\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  return s;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 1)
      << hepvine::lint::format_findings(findings);
  ASSERT_EQ(count_rule(findings, Rule::kPragmaHygiene), 1)
      << hepvine::lint::format_findings(findings);
  const auto it = std::find_if(
      findings.begin(), findings.end(),
      [](const Finding& f) { return f.rule == Rule::kPragmaHygiene; });
  EXPECT_NE(it->message.find("bogus-rule"), std::string::npos) << it->message;
  EXPECT_EQ(it->line, 2);
}

TEST(VineLintMeta, MalformedPragmaOpsAreHardErrors) {
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "// vine-lint: suppress\n"
      "// vine-snapshot: derived()\n"
      "// vine-fastpath: sometimes\n"
      "int x = 0;\n");
  EXPECT_EQ(count_rule(findings, Rule::kPragmaHygiene), 3)
      << hepvine::lint::format_findings(findings);
}

TEST(VineLintMeta, SuppressionIsPerRule) {
  // Suppressing one rule must not hide a different rule on the same line.
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  // vine-lint: suppress(pointer-sort)\n"
      "  for (const auto& kv : m) s += kv.second;\n"
      "  return s;\n"
      "}\n");
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 1)
      << hepvine::lint::format_findings(findings);
}

TEST(VineLintMeta, SuppressionOnLastLineOfFile) {
  // A trailing-comment suppression on the file's final line (no newline
  // after it) still covers its own line.
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "int f() {\n"
      "  return rand();  // vine-lint: suppress(ambient-entropy) seeded later"
      );
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintMeta, StackedSuppressionsInOnePragma) {
  // One comment may carry several groups; each silences its own rule.
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  // vine-lint: suppress(unordered-iter) suppress(ambient-entropy)\n"
      "  for (const auto& kv : m) s += kv.second + rand();\n"
      "  return s;\n"
      "}\n");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintMeta, OnlyFilterKeepsSelectedRules) {
  LintOptions opts;
  opts.subjects = kSubjects;
  opts.only = {Rule::kUnorderedIter};
  Linter linter(std::move(opts));
  const auto findings = linter.lint_text(
      "src/foo.cpp",
      "#include <unordered_map>\n"
      "int f() {\n"
      "  std::unordered_map<int, int> m;\n"
      "  int s = 0;\n"
      "  for (const auto& kv : m) s += kv.second + rand();\n"
      "  return s;\n"
      "}\n");
  // Both VL001 and VL002 fire on the loop line; only VL001 is reported.
  EXPECT_EQ(count_rule(findings, Rule::kUnorderedIter), 1)
      << hepvine::lint::format_findings(findings);
  EXPECT_TRUE(only_rule(findings, Rule::kUnorderedIter))
      << hepvine::lint::format_findings(findings);
}

TEST(VineLintMeta, RuleIdsResolveForOnlyFlag) {
  // --only accepts ids as well as names, case-insensitively.
  auto rule = rule_from_name("VL009");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(*rule, Rule::kFlatAliasing);
  rule = rule_from_name("vl007");
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(*rule, Rule::kSnapshotCompleteness);
  EXPECT_FALSE(rule_from_name("VL999").has_value());
}

TEST(VineLintMeta, SuppressJustificationPolicy) {
  const std::string bare =
      "int f() {\n"
      "  // vine-lint: suppress(ambient-entropy)\n"
      "  return rand();\n"
      "}\n";
  const std::string justified =
      "int f() {\n"
      "  // vine-lint: suppress(ambient-entropy) — benchmark warmup only\n"
      "  return rand();\n"
      "}\n";
  LintOptions strict;
  strict.subjects = kSubjects;
  strict.require_suppress_justification = true;
  {
    Linter linter(strict);
    const auto findings = linter.lint_text("src/foo.cpp", bare);
    EXPECT_EQ(count_rule(findings, Rule::kPragmaHygiene), 1)
        << hepvine::lint::format_findings(findings);
  }
  {
    Linter linter(strict);
    const auto findings = linter.lint_text("src/foo.cpp", justified);
    EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
  }
  {
    // Without the policy flag a bare suppression is tolerated.
    LintOptions lax;
    lax.subjects = kSubjects;
    Linter linter(std::move(lax));
    const auto findings = linter.lint_text("src/foo.cpp", bare);
    EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
  }
}

TEST(VineLintMeta, CommentsAndStringsDoNotTriggerRules) {
  const auto findings = lint_snippet(
      "src/foo.cpp",
      "// getenv(\"HOME\") and rand() in a comment\n"
      "const char* kDoc = \"call time(nullptr) then rand()\";\n"
      "/* std::random_device in a block comment */\n");
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
}

TEST(VineLintMeta, ParseSubjectTable) {
  const std::string header =
      "struct TxnSubjectInfo { const char* name = \"\"; bool id_first = "
      "false; };\n"
      "inline constexpr TxnSubjectInfo kTxnSubjects[] = {\n"
      "    {\"MANAGER\", true}, {\"TASK\", true},\n"
      "};\n";
  const auto subjects = Linter::parse_subject_table(header);
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], "MANAGER");
  EXPECT_EQ(subjects[1], "TASK");
}

TEST(VineLintMeta, ParseSubjectTableToleratesTrailingComma) {
  const std::string header =
      "inline constexpr TxnSubjectInfo kTxnSubjects[] = {\n"
      "    {\"MANAGER\", true},\n"
      "    {\"TASK\", true},\n"
      "};\n";
  const auto subjects = Linter::parse_subject_table(header);
  ASSERT_EQ(subjects.size(), 2u);
  EXPECT_EQ(subjects[0], "MANAGER");
  EXPECT_EQ(subjects[1], "TASK");
}

TEST(VineLintMeta, ParseSubjectTableToleratesBlockComments) {
  // Block comments inside the initializer — including ones quoting retired
  // subject names — must not confuse or pollute the parse.
  const std::string header =
      "inline constexpr TxnSubjectInfo kTxnSubjects[] = {\n"
      "    /* core */ {\"MANAGER\", true},\n"
      "    {\"TASK\", /* id leads */ true},\n"
      "    /* retired: {\"ZOMBIE\", false} */\n"
      "    {\"NET\", false},  // trailing line comment\n"
      "};\n";
  const auto subjects = Linter::parse_subject_table(header);
  ASSERT_EQ(subjects.size(), 3u);
  EXPECT_EQ(subjects[0], "MANAGER");
  EXPECT_EQ(subjects[1], "TASK");
  EXPECT_EQ(subjects[2], "NET");
}

TEST(VineLintMeta, ParseSubjectTableFromRealHeader) {
  const std::string header =
      read_file(std::string(LINT_SOURCE_ROOT) + "/src/obs/txn_log.h");
  ASSERT_FALSE(header.empty());
  const auto subjects = Linter::parse_subject_table(header);
  for (const std::string& want : kSubjects) {
    EXPECT_NE(std::find(subjects.begin(), subjects.end(), want),
              subjects.end())
        << "subject " << want << " missing from kTxnSubjects";
  }
}

// ---------------------------------------------------------------------------
// End to end: the tree itself must lint clean.
// ---------------------------------------------------------------------------

TEST(VineLintTree, WholeTreeIsClean) {
  const std::string root(LINT_SOURCE_ROOT);
  LintOptions opts;
  opts.roots = {root + "/src", root + "/bench", root + "/tools"};
  opts.txn_log_header = root + "/src/obs/txn_log.h";
  Linter linter(std::move(opts));
  const auto findings = linter.run();
  EXPECT_TRUE(findings.empty()) << hepvine::lint::format_findings(findings);
  EXPECT_GT(linter.files_scanned(), 100u);
}

}  // namespace
