// Direct unit tests for ReplicaTable — the manager's cluster-wide map of
// which workers hold which files. The scheduler integration suites exercise
// it constantly but only ever observe it through placement decisions; these
// tests pin down the contract the disk-lifecycle machinery (ref-count GC,
// pressure eviction) now leans on: idempotent add/remove, exact lost sets
// from drop_worker, files_on consistency under interleaved removes, and the
// id-sorted holder order lifecycle sweeps iterate.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "vine/replica_table.h"

namespace hepvine::vine {
namespace {

using cluster::WorkerId;
using data::FileId;

TEST(ReplicaTable, AddIsIdempotent) {
  ReplicaTable table(/*files=*/4, /*workers=*/3);
  table.add(FileId{1}, WorkerId{0});
  table.add(FileId{1}, WorkerId{0});
  table.add(FileId{1}, WorkerId{0});
  EXPECT_EQ(table.holders(FileId{1}).size(), 1u);
  EXPECT_EQ(table.files_on(WorkerId{0}).size(), 1u);
  EXPECT_EQ(table.replica_count(FileId{1}), 1u);
}

TEST(ReplicaTable, RemoveIsIdempotent) {
  ReplicaTable table(4, 3);
  table.add(FileId{1}, WorkerId{0});
  table.remove(FileId{1}, WorkerId{0});
  table.remove(FileId{1}, WorkerId{0});  // double remove must be a no-op
  table.remove(FileId{2}, WorkerId{1});  // never added at all
  EXPECT_TRUE(table.holders(FileId{1}).empty());
  EXPECT_TRUE(table.files_on(WorkerId{0}).empty());
  EXPECT_FALSE(table.available(FileId{1}));
}

TEST(ReplicaTable, OnWorkerAndAvailabilityTrackMembership) {
  ReplicaTable table(4, 3);
  EXPECT_FALSE(table.on_worker(FileId{0}, WorkerId{0}));
  table.add(FileId{0}, WorkerId{2});
  EXPECT_TRUE(table.on_worker(FileId{0}, WorkerId{2}));
  EXPECT_FALSE(table.on_worker(FileId{0}, WorkerId{1}));
  EXPECT_TRUE(table.available(FileId{0}));

  // A manager copy keeps the file available with zero worker holders.
  table.remove(FileId{0}, WorkerId{2});
  EXPECT_FALSE(table.available(FileId{0}));
  table.set_at_manager(FileId{0});
  EXPECT_TRUE(table.available(FileId{0}));
  EXPECT_EQ(table.replica_count(FileId{0}), 1u);
}

TEST(ReplicaTable, DropWorkerReturnsExactLostSet) {
  ReplicaTable table(/*files=*/6, /*workers=*/3);
  // file 0: only on worker 0                      -> lost
  // file 1: on workers 0 and 1                    -> survives on 1
  // file 2: on worker 0 but also at the manager   -> not lost
  // file 3: on worker 1 only                      -> untouched
  table.add(FileId{0}, WorkerId{0});
  table.add(FileId{1}, WorkerId{0});
  table.add(FileId{1}, WorkerId{1});
  table.add(FileId{2}, WorkerId{0});
  table.set_at_manager(FileId{2});
  table.add(FileId{3}, WorkerId{1});

  const std::vector<FileId> lost = table.drop_worker(WorkerId{0});
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], FileId{0});

  EXPECT_TRUE(table.files_on(WorkerId{0}).empty());
  EXPECT_TRUE(table.holders(FileId{0}).empty());
  ASSERT_EQ(table.holders(FileId{1}).size(), 1u);
  EXPECT_EQ(table.holders(FileId{1})[0], WorkerId{1});
  EXPECT_TRUE(table.available(FileId{2}));
  EXPECT_TRUE(table.on_worker(FileId{3}, WorkerId{1}));
}

TEST(ReplicaTable, DropWorkerIsIdempotent) {
  ReplicaTable table(4, 2);
  table.add(FileId{0}, WorkerId{0});
  EXPECT_EQ(table.drop_worker(WorkerId{0}).size(), 1u);
  EXPECT_TRUE(table.drop_worker(WorkerId{0}).empty());
}

TEST(ReplicaTable, FilesOnStaysConsistentUnderInterleavedRemoves) {
  ReplicaTable table(/*files=*/8, /*workers=*/2);
  for (FileId f = 0; f < 8; ++f) table.add(f, WorkerId{0});
  for (FileId f = 0; f < 4; ++f) table.add(f, WorkerId{1});

  // Remove alternating files from worker 0, interleaved with removes of
  // the shared copies from worker 1 — each side's bookkeeping must not
  // disturb the other's.
  table.remove(FileId{0}, WorkerId{0});
  table.remove(FileId{1}, WorkerId{1});
  table.remove(FileId{2}, WorkerId{0});
  table.remove(FileId{3}, WorkerId{1});
  table.remove(FileId{4}, WorkerId{0});

  const auto& on0 = table.files_on(WorkerId{0});
  EXPECT_EQ(on0.size(), 5u);  // 1, 3, 5, 6, 7
  for (FileId f : {FileId{1}, FileId{3}, FileId{5}, FileId{6}, FileId{7}}) {
    EXPECT_TRUE(table.on_worker(f, WorkerId{0})) << "file " << f;
  }
  const auto& on1 = table.files_on(WorkerId{1});
  EXPECT_EQ(on1.size(), 2u);  // 0, 2
  EXPECT_TRUE(table.on_worker(FileId{0}, WorkerId{1}));
  EXPECT_TRUE(table.on_worker(FileId{2}, WorkerId{1}));

  // Cross-check holders against files_on: every membership agrees.
  for (FileId f = 0; f < 8; ++f) {
    for (WorkerId w = 0; w < 2; ++w) {
      const auto& hs = table.holders(f);
      const bool held =
          std::find(hs.begin(), hs.end(), w) != hs.end();
      EXPECT_EQ(held, table.on_worker(f, w)) << "file " << f << " w " << w;
    }
  }
}

TEST(ReplicaTable, HoldersSortedIsIdOrderedRegardlessOfInsertion) {
  ReplicaTable table(2, 5);
  table.add(FileId{0}, WorkerId{3});
  table.add(FileId{0}, WorkerId{0});
  table.add(FileId{0}, WorkerId{4});
  table.add(FileId{0}, WorkerId{1});

  const auto sorted = table.holders_sorted(FileId{0});
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0], WorkerId{0});
  EXPECT_EQ(sorted[1], WorkerId{1});
  EXPECT_EQ(sorted[2], WorkerId{3});
  EXPECT_EQ(sorted[3], WorkerId{4});
  // The insertion-ordered list is untouched by the sorted copy.
  EXPECT_EQ(table.holders(FileId{0})[0], WorkerId{3});
}

}  // namespace
}  // namespace hepvine::vine
