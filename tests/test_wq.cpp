#include "wq/work_queue.h"

#include <gtest/gtest.h>

#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine::wq {
namespace {

using namespace hepvine::testutil;

struct WqEndToEnd : public ::testing::Test {
  exec::RunReport run(const apps::WorkloadSpec& workload,
                      const exec::RunOptions& options,
                      std::uint32_t workers = 4,
                      double preempt_per_hour = 0.0) {
    graph = apps::build_workload(workload, options.seed);
    cluster::Cluster cluster(tiny_cluster(workers, preempt_per_hour));
    WorkQueueScheduler scheduler;
    return scheduler.run(graph, cluster, options);
  }
  dag::TaskGraph graph;
};

TEST_F(WqEndToEnd, CompletesAndMatchesSerialReference) {
  const auto report = run(tiny_dv3(), fast_options());
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.scheduler, "work-queue");
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST_F(WqEndToEnd, AllDataFlowsThroughTheManager) {
  // The defining Work Queue property (paper Fig 7 left): no peer traffic,
  // everything crosses the manager.
  const auto report = run(tiny_dv3(48), fast_options());
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.transfers.peer_bytes(), 0u);
  EXPECT_GT(report.transfers.manager_bytes(), graph.input_bytes())
      << "inputs must be staged through the manager";
}

TEST_F(WqEndToEnd, ForcesStandardTaskMode) {
  exec::RunOptions options = fast_options();
  options.mode = exec::ExecMode::kFunctionCalls;  // must be ignored
  const auto report = run(tiny_dv3(), options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST_F(WqEndToEnd, SlowerThanTaskVineOnSameWorkload) {
  const apps::WorkloadSpec workload = tiny_dv3(48);
  const auto wq_report = run(workload, fast_options(), 4);

  const dag::TaskGraph vine_graph =
      apps::build_workload(workload, fast_options().seed);
  cluster::Cluster cluster(tiny_cluster(4));
  vine::VineScheduler vine;
  exec::RunOptions fc = fast_options();
  fc.mode = exec::ExecMode::kFunctionCalls;
  const auto vine_report = vine.run(vine_graph, cluster, fc);

  ASSERT_TRUE(wq_report.success);
  ASSERT_TRUE(vine_report.success);
  EXPECT_GT(wq_report.makespan, vine_report.makespan);
  EXPECT_EQ(sink_digest(wq_report), sink_digest(vine_report));
}

TEST_F(WqEndToEnd, SurvivesPreemption) {
  exec::RunOptions options = fast_options();
  options.seed = 23;
  const auto report = run(tiny_dv3(32), options, 4, 12.0);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST_F(WqEndToEnd, HdfsAndVastBothWorkWithModestDifference) {
  const apps::WorkloadSpec workload = tiny_dv3(32);
  auto run_on = [&](const storage::SharedFsSpec& fs) {
    const dag::TaskGraph g = apps::build_workload(workload, 3);
    cluster::ClusterSpec cspec = tiny_cluster(4);
    cspec.fs = fs;
    cluster::Cluster cluster(cspec);
    WorkQueueScheduler scheduler;
    return scheduler.run(g, cluster, fast_options());
  };
  const auto hdfs = run_on(storage::hdfs_spec());
  const auto vast = run_on(storage::vast_spec());
  ASSERT_TRUE(hdfs.success);
  ASSERT_TRUE(vast.success);
  EXPECT_LE(vast.makespan, hdfs.makespan);
  // Table I shape: storage hardware alone is a small win (< 1.6x here,
  // 1.05x at paper scale) because the manager remains the bottleneck.
  EXPECT_LT(util::to_seconds(hdfs.makespan) / util::to_seconds(vast.makespan),
            1.8);
}

}  // namespace
}  // namespace hepvine::wq
