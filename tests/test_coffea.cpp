#include "coffea/analysis.h"

#include <gtest/gtest.h>

#include "dag/evaluate.h"
#include "hep/processors.h"
#include "scheduler_test_util.h"
#include "wq/work_queue.h"

namespace hepvine::coffea {
namespace {

using namespace hepvine::testutil;

Analysis small_analysis() {
  Analysis a("SingleMu");
  a.files(4, 100 * util::kMB)
      .chunks_per_file(5)
      .events_per_chunk(300)
      .processor(Processor::kDv3)
      .processor_costs(1.0, 10 * util::kMB, util::kGB)
      .tree_accumulate(4)
      .seed(9);
  return a;
}

TEST(Analysis, BuildsExpectedGraphShape) {
  const dag::TaskGraph graph = small_analysis().build();
  const auto counts = graph.category_counts();
  EXPECT_EQ(counts.at("process"), 20u);  // 4 files x 5 chunks
  EXPECT_EQ(graph.sinks().size(), 1u);
  EXPECT_EQ(graph.catalog().size(), 20u + (graph.size()));
  for (const auto& task : graph.tasks()) {
    if (task.spec.category == "accumulate") {
      EXPECT_LE(task.spec.deps.size(), 4u);
    }
  }
}

TEST(Analysis, SingleAccumulateCollapsesToOneReducer) {
  Analysis a = small_analysis();
  a.single_accumulate();
  const dag::TaskGraph graph = a.build();
  EXPECT_EQ(graph.category_counts().at("accumulate"), 1u);
  EXPECT_EQ(graph.task(graph.sinks().front()).spec.deps.size(), 20u);
}

TEST(Analysis, RequiresProcessor) {
  Analysis a("empty");
  EXPECT_THROW((void)a.build(), std::logic_error);
}

TEST(Analysis, RejectsArityBelowTwo) {
  Analysis a = small_analysis();
  EXPECT_THROW(a.tree_accumulate(1), std::invalid_argument);
}

TEST(Analysis, ComputeMatchesSerialEvaluation) {
  const Analysis a = small_analysis();
  exec::RunOptions options = fast_options();
  options.mode = exec::ExecMode::kFunctionCalls;
  const ComputeResult result = a.compute(tiny_cluster(3), options);
  ASSERT_TRUE(result.histograms);
  const auto reference = dag::evaluate_serially(a.build());
  EXPECT_EQ(result.histograms->digest(),
            reference.begin()->second->digest());
  EXPECT_TRUE(result.report.success);
}

TEST(Analysis, ComputeWithExplicitBackend) {
  const Analysis a = small_analysis();
  wq::WorkQueueScheduler wq;
  const ComputeResult result =
      a.compute(wq, tiny_cluster(3), fast_options());
  EXPECT_EQ(result.report.scheduler, "work-queue");
  const auto reference = dag::evaluate_serially(a.build());
  EXPECT_EQ(result.histograms->digest(),
            reference.begin()->second->digest());
}

TEST(Analysis, CustomProcessorFlowsThrough) {
  Analysis a("custom");
  a.files(2, 10 * util::kMB)
      .chunks_per_file(2)
      .events_per_chunk(100)
      .processor("count_events",
                 [](const hep::EventChunk& chunk) {
                   hep::HistogramSet out;
                   out.get("n", 1, 0, 1).fill(0.5,
                                              static_cast<double>(
                                                  chunk.events));
                   return out;
                 })
      .tree_accumulate(2)
      .seed(3);
  exec::RunOptions options = fast_options();
  const ComputeResult result = a.compute(tiny_cluster(2), options);
  // 2 files x 2 chunks x 100 events, weight-summed into one bin.
  EXPECT_DOUBLE_EQ(result.histograms->find("n")->bin_content(0), 400.0);
}

TEST(Analysis, ThrowsOnRunFailure) {
  Analysis a = small_analysis();
  a.processor_costs(1.0, 400 * util::kGB, util::kGB);  // can't fit any disk
  exec::RunOptions options = fast_options();
  options.max_task_retries = 2;
  options.max_sim_time = util::kHour;
  EXPECT_THROW((void)a.compute(tiny_cluster(2), options),
               std::runtime_error);
}

TEST(Analysis, CutflowIsMonotonic) {
  const Analysis a = small_analysis();
  const ComputeResult result =
      a.compute(tiny_cluster(3), fast_options());
  const hep::Histogram1D* cutflow = result.histograms->find("cutflow");
  ASSERT_NE(cutflow, nullptr);
  EXPECT_GT(cutflow->bin_content(hep::dv3_cuts::kAll), 0.0);
  EXPECT_GE(cutflow->bin_content(hep::dv3_cuts::kAll),
            cutflow->bin_content(hep::dv3_cuts::kMet25));
  EXPECT_GE(cutflow->bin_content(hep::dv3_cuts::kTwoBJets),
            cutflow->bin_content(hep::dv3_cuts::kHiggsWindow));
}

}  // namespace
}  // namespace hepvine::coffea
