#include "hep/events.h"

#include <gtest/gtest.h>

namespace hepvine::hep {
namespace {

TEST(Events, DeterministicForSeed) {
  const EventChunk a = generate_chunk(42, 500);
  const EventChunk b = generate_chunk(42, 500);
  EXPECT_EQ(a.met_pt, b.met_pt);
  EXPECT_EQ(a.jets.pt, b.jets.pt);
  EXPECT_EQ(a.photons.pt, b.photons.pt);
  EXPECT_EQ(a.jets.event_offsets, b.jets.event_offsets);
}

TEST(Events, DifferentSeedsDiffer) {
  const EventChunk a = generate_chunk(1, 500);
  const EventChunk b = generate_chunk(2, 500);
  EXPECT_NE(a.met_pt, b.met_pt);
}

TEST(Events, OffsetsAreConsistent) {
  const EventChunk c = generate_chunk(7, 300);
  ASSERT_EQ(c.jets.event_offsets.size(), 301u);
  ASSERT_EQ(c.photons.event_offsets.size(), 301u);
  EXPECT_EQ(c.jets.event_offsets.front(), 0u);
  EXPECT_EQ(c.jets.event_offsets.back(), c.jets.count());
  for (std::size_t e = 0; e < 300; ++e) {
    EXPECT_LE(c.jets.begin_of(e), c.jets.end_of(e));
    EXPECT_LE(c.photons.begin_of(e), c.photons.end_of(e));
  }
}

TEST(Events, ColumnsHaveUniformLength) {
  const EventChunk c = generate_chunk(7, 200);
  EXPECT_EQ(c.jets.pt.size(), c.jets.eta.size());
  EXPECT_EQ(c.jets.pt.size(), c.jets.phi.size());
  EXPECT_EQ(c.jets.pt.size(), c.jets.mass.size());
  EXPECT_EQ(c.jets.pt.size(), c.jets.quality.size());
  EXPECT_EQ(c.photons.pt.size(), c.photons.quality.size());
}

TEST(Events, EveryEventHasBackgroundJets) {
  const EventChunk c = generate_chunk(11, 500);
  for (std::size_t e = 0; e < c.events; ++e) {
    EXPECT_GE(c.jets.end_of(e) - c.jets.begin_of(e), 2u);
  }
}

TEST(Events, SignalFractionsRoughlyMatch) {
  // ~3% Higgs-like (adds 2 extra jets), ~0.5% tri-photon (3 photons).
  const EventChunk c = generate_chunk(123, 50'000);
  std::size_t triphoton_events = 0;
  for (std::size_t e = 0; e < c.events; ++e) {
    if (c.photons.end_of(e) - c.photons.begin_of(e) >= 3) {
      ++triphoton_events;
    }
  }
  EXPECT_NEAR(static_cast<double>(triphoton_events) / 50'000.0, 0.005,
              0.002);
}

TEST(Events, KinematicsArePhysical) {
  const EventChunk c = generate_chunk(5, 1000);
  for (float met : c.met_pt) EXPECT_GE(met, 0.0f);
  for (float pt : c.jets.pt) EXPECT_GT(pt, 0.0f);
  for (float eta : c.jets.eta) {
    EXPECT_GE(eta, -3.0f);
    EXPECT_LE(eta, 3.0f);
  }
  for (float q : c.jets.quality) {
    EXPECT_GE(q, 0.0f);
    EXPECT_LE(q, 1.0f);
  }
}

TEST(Events, ZeroEventsIsValid) {
  const EventChunk c = generate_chunk(1, 0);
  EXPECT_EQ(c.events, 0u);
  EXPECT_EQ(c.jets.count(), 0u);
  ASSERT_EQ(c.jets.event_offsets.size(), 1u);
}

TEST(EventChunkValue, ReportsModeledBytesAndSeedDigest) {
  EventChunkValue a(generate_chunk(9, 100), 5000);
  EventChunkValue b(generate_chunk(9, 100), 5000);
  EventChunkValue c(generate_chunk(10, 100), 5000);
  EXPECT_EQ(a.byte_size(), 5000u);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_EQ(a.chunk().events, 100u);
}

}  // namespace
}  // namespace hepvine::hep
