// Tests for the observability subsystem: transactions log, stats registry,
// performance log, Chrome-trace export, txn_query reconstruction, and the
// end-to-end round trip through a real scheduler run.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dd/dask_distributed.h"
#include "exec/report_io.h"
#include "obs/chrome_trace.h"
#include "obs/observer.h"
#include "obs/perf_log.h"
#include "obs/stats_registry.h"
#include "obs/txn_log.h"
#include "obs/txn_query.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine {
namespace {

using testutil::fast_options;
using testutil::reference_digest;
using testutil::sink_digest;
using testutil::tiny_cluster;
using testutil::tiny_dv3;

// ---------------------------------------------------------------------------
// TxnLog
// ---------------------------------------------------------------------------

TEST(TxnLog, DisabledLogRecordsNothing) {
  obs::TxnLog log;
  EXPECT_FALSE(log.enabled());
  log.manager_start(0);
  log.task_waiting(1, 7, "proc", 0);
  log.transfer_done(2, 0, 1, 3, 100);
  EXPECT_EQ(log.events(), 0u);
  EXPECT_TRUE(log.text().empty());
}

TEST(TxnLog, RecordsGrammarLines) {
  obs::TxnLog log(64, "");
  log.manager_start(0);
  log.task_waiting(1'000'000, 3, "process", 0);
  log.task_running(2'000'000, 3, 1);
  log.task_retrieved(3'000'000, 3, "SUCCESS");
  log.task_done(3'000'001, 3, "SUCCESS");
  log.worker_connection(500'000, 1);
  log.worker_disconnection(9'000'000, 1, "PREEMPTED");
  log.cache_insert(1'500'000, 1, 42, 1024);
  log.cache_evict(8'000'000, 1, 42, 1024);
  log.cache_gc(8'100'000, 1, 43, 2048);
  log.cache_lost(8'200'000, 1, 44, 4096);
  log.transfer_start(1'100'000, 0, 2, 42, 1024);
  log.transfer_done(1'200'000, 0, 2, 42, 1024);
  log.library_sent(600'000, 1);
  log.library_started(700'000, 1);
  log.manager_end(10'000'000);

  EXPECT_EQ(log.events(), 16u);
  EXPECT_EQ(log.dropped(), 0u);
  const std::string text = log.text();
  EXPECT_NE(text.find("0 MANAGER 0 START"), std::string::npos);
  EXPECT_NE(text.find("1000000 TASK 3 WAITING process 0"), std::string::npos);
  EXPECT_NE(text.find("2000000 TASK 3 RUNNING 1"), std::string::npos);
  EXPECT_NE(text.find("3000000 TASK 3 RETRIEVED SUCCESS"), std::string::npos);
  EXPECT_NE(text.find("3000001 TASK 3 DONE SUCCESS"), std::string::npos);
  EXPECT_NE(text.find("500000 WORKER 1 CONNECTION"), std::string::npos);
  EXPECT_NE(text.find("9000000 WORKER 1 DISCONNECTION PREEMPTED"),
            std::string::npos);
  EXPECT_NE(text.find("1500000 CACHE 42 INSERT 1024 1"), std::string::npos);
  EXPECT_NE(text.find("8000000 CACHE 42 EVICT 1024 1"), std::string::npos);
  EXPECT_NE(text.find("8100000 CACHE 43 GC 2048 1"), std::string::npos);
  EXPECT_NE(text.find("8200000 CACHE 44 LOST 4096 1"), std::string::npos);
  EXPECT_NE(text.find("1100000 TRANSFER 0 2 42 1024 START"),
            std::string::npos);
  EXPECT_NE(text.find("600000 LIBRARY 1 SENT"), std::string::npos);
  EXPECT_NE(text.find("10000000 MANAGER 0 END"), std::string::npos);
}

TEST(TxnLog, RecordsStoreGrammarLines) {
  // The object-store verbs mirror CACHE: subject, file id, verb, bytes,
  // worker — so existing txn tooling parses them without special cases.
  obs::TxnLog log(64, "");
  log.store_put(1'500'000, 1, 42, 1024);
  log.store_ref(1'600'000, 1, 42, 1024);
  log.store_spill(8'000'000, 1, 42, 1024);
  log.store_drop(8'100'000, 2, 43, 2048);

  EXPECT_EQ(log.events(), 4u);
  const std::string text = log.text();
  EXPECT_NE(text.find("1500000 STORE 42 PUT 1024 1"), std::string::npos);
  EXPECT_NE(text.find("1600000 STORE 42 REF 1024 1"), std::string::npos);
  EXPECT_NE(text.find("8000000 STORE 42 SPILL 1024 1"), std::string::npos);
  EXPECT_NE(text.find("8100000 STORE 43 DROP 2048 2"), std::string::npos);
}

TEST(TxnLog, RingRotatesOldestLines) {
  obs::TxnLog log(4, "");
  for (int i = 0; i < 10; ++i) {
    log.task_done(i, i, "SUCCESS");
  }
  EXPECT_EQ(log.events(), 10u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto tail = log.tail();
  ASSERT_EQ(tail.size(), 4u);
  EXPECT_NE(tail.front().find("TASK 6 DONE"), std::string::npos);
  EXPECT_NE(tail.back().find("TASK 9 DONE"), std::string::npos);
}

TEST(TxnLog, StreamsToFileBeyondRing) {
  const std::string path = testing::TempDir() + "/txn_stream_test.log";
  {
    obs::TxnLog log(2, path);
    for (int i = 0; i < 8; ++i) log.task_done(i, i, "SUCCESS");
    log.flush();
    EXPECT_EQ(log.dropped(), 6u);
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    // Rotated-out lines are still on disk.
    EXPECT_NE(text.find("TASK 0 DONE"), std::string::npos);
    EXPECT_NE(text.find("TASK 7 DONE"), std::string::npos);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// StatsRegistry
// ---------------------------------------------------------------------------

TEST(StatsRegistry, CountersHaveStablePointers) {
  obs::StatsRegistry reg;
  std::uint64_t* a = reg.counter("a");
  *a = 5;
  // Force growth; the first pointer must stay valid.
  for (int i = 0; i < 100; ++i) {
    *reg.counter("c" + std::to_string(i)) = static_cast<std::uint64_t>(i);
  }
  *a += 1;
  EXPECT_DOUBLE_EQ(reg.value("a"), 6.0);
  EXPECT_EQ(reg.counter("a"), a);  // re-fetch returns the same slot
  EXPECT_EQ(reg.size(), 101u);
}

TEST(StatsRegistry, GaugesSampleLiveStateAndDetach) {
  obs::StatsRegistry reg;
  double live = 1.0;
  reg.gauge("g", [&live] { return live; });
  EXPECT_DOUBLE_EQ(reg.value("g"), 1.0);
  live = 42.0;
  EXPECT_DOUBLE_EQ(reg.value("g"), 42.0);
  reg.detach_gauges();
  live = -7.0;  // must not be visible after detach
  EXPECT_DOUBLE_EQ(reg.value("g"), 42.0);
}

TEST(StatsRegistry, NamesPreserveRegistrationOrder) {
  obs::StatsRegistry reg;
  reg.gauge("z", [] { return 0.0; });
  *reg.counter("a") = 1;
  reg.gauge("m", [] { return 2.0; });
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "z");
  EXPECT_EQ(names[1], "a");
  EXPECT_EQ(names[2], "m");
  const auto values = reg.sample();
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
}

// ---------------------------------------------------------------------------
// PerfLog
// ---------------------------------------------------------------------------

TEST(PerfLog, SamplesBoundColumns) {
  obs::StatsRegistry reg;
  std::uint64_t* n = reg.counter("n");
  reg.gauge("g", [] { return 3.5; });
  obs::PerfLog perf;
  perf.bind(reg);
  *n = 1;
  perf.sample(1'000'000, reg);
  *n = 4;
  perf.sample(2'000'000, reg);
  ASSERT_EQ(perf.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(perf.final_value("n"), 4.0);
  EXPECT_DOUBLE_EQ(perf.final_value("g"), 3.5);
  EXPECT_DOUBLE_EQ(perf.final_value("missing"), 0.0);

  const std::string text = perf.to_text();
  EXPECT_NE(text.find("# time_us n g"), std::string::npos);
  EXPECT_NE(text.find("1000000 1 3.500000"), std::string::npos);
  EXPECT_NE(text.find("2000000 4 3.500000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ChromeTraceBuilder
// ---------------------------------------------------------------------------

TEST(ChromeTrace, BuildsWellFormedJson) {
  obs::ChromeTraceBuilder trace;
  trace.set_lane_name(0, "manager");
  trace.set_lane_name(1, "worker \"0\"");  // exercises escaping
  trace.add_span(1, "proc", "process", 1'000, 2'000, "{\"task\":7}");
  trace.add_flow(1, 2, "peer file 3", 1'500, 2'500);
  trace.add_counter(0, "tasks", 2'000, 12.0);

  const std::string json = trace.to_json();
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("worker \\\"0\\\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"task\":7}"), std::string::npos);

  // Structural sanity: braces and brackets balance, quotes are paired.
  int braces = 0;
  int brackets = 0;
  int quotes = 0;
  bool escaped = false;
  bool in_string = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      in_string = !in_string;
      ++quotes;
      continue;
    }
    if (in_string) continue;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_FALSE(in_string);
}

TEST(ChromeTrace, ZeroDurationSpansGetMinimumWidth) {
  obs::ChromeTraceBuilder trace;
  trace.add_span(1, "instant", "t", 100, 0);
  EXPECT_NE(trace.to_json().find("\"dur\":1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// txn_query parsing and reconstruction
// ---------------------------------------------------------------------------

TEST(TxnQuery, ParsesEachLineShape) {
  auto ev = obs::txnq::parse_line("12 TASK 7 WAITING process 0");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->t, 12);
  EXPECT_EQ(ev->subject, "TASK");
  EXPECT_EQ(ev->id, 7);
  EXPECT_EQ(ev->verb, "WAITING");
  ASSERT_EQ(ev->rest.size(), 2u);
  EXPECT_EQ(ev->rest[0], "process");

  ev = obs::txnq::parse_line("99 TRANSFER 1 2 42 1024 DONE");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->subject, "TRANSFER");
  EXPECT_EQ(ev->verb, "1");  // endpoints ride in verb/rest for TRANSFER
  ASSERT_EQ(ev->rest.size(), 4u);
  EXPECT_EQ(ev->rest.back(), "DONE");

  EXPECT_FALSE(obs::txnq::parse_line("# comment").has_value());
  EXPECT_FALSE(obs::txnq::parse_line("").has_value());
  EXPECT_FALSE(obs::txnq::parse_line("not a number HERE").has_value());
}

// Regression: FAULT (`time FAULT seq KIND detail`) and NET
// (`time NET flow_id WARN detail`) carry an id-first field. Before the
// subject registry in txn_log.h, subject_has_id() did not know them, so
// the id landed in `verb` and the verb was pushed into `rest`.
TEST(TxnQuery, ParsesFaultAndNetSubjectIds) {
  auto ev = obs::txnq::parse_line("12 FAULT 3 CRASH worker=2");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->t, 12);
  EXPECT_EQ(ev->subject, "FAULT");
  EXPECT_EQ(ev->id, 3);
  EXPECT_EQ(ev->verb, "CRASH");
  ASSERT_EQ(ev->rest.size(), 1u);
  EXPECT_EQ(ev->rest[0], "worker=2");

  ev = obs::txnq::parse_line("77 NET 5 WARN flow stalled");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->subject, "NET");
  EXPECT_EQ(ev->id, 5);
  EXPECT_EQ(ev->verb, "WARN");
  ASSERT_EQ(ev->rest.size(), 2u);
}

TEST(TxnLog, SubjectRegistryCoversGrammar) {
  for (const char* s : {"MANAGER", "TASK", "WORKER", "CACHE", "TRANSFER",
                        "LIBRARY", "FAULT", "NET", "STORE"}) {
    EXPECT_TRUE(obs::txn_subject_registered(s)) << s;
  }
  EXPECT_FALSE(obs::txn_subject_registered("ZOMBIE"));
  EXPECT_FALSE(obs::txn_subject_registered(""));

  EXPECT_TRUE(obs::txn_subject_id_first("TASK"));
  EXPECT_TRUE(obs::txn_subject_id_first("FAULT"));
  EXPECT_TRUE(obs::txn_subject_id_first("NET"));
  EXPECT_TRUE(obs::txn_subject_id_first("STORE"));
  // TRANSFER leads with src/dst endpoints, not a single id.
  EXPECT_FALSE(obs::txn_subject_id_first("TRANSFER"));
  EXPECT_FALSE(obs::txn_subject_id_first("ZOMBIE"));
}

TEST(TxnQuery, LooksLikeTxnLogDiscriminatesFormats) {
  // The CLI diagnostics (txn_query profile, vine_profile) use this to tell
  // a transactions log handed to the wrong tool from plain garbage.
  EXPECT_TRUE(obs::txnq::looks_like_txn_log(
      "# time_us SUBJECT id EVENT ...\n"));
  EXPECT_TRUE(obs::txnq::looks_like_txn_log(
      "12 TASK 7 WAITING process 0\n"));
  EXPECT_TRUE(obs::txnq::looks_like_txn_log(
      "0 MANAGER 0 START\n12 TASK 7 WAITING process 0\n"));
  // Span logs, garbage, unknown subjects, and empty input are not txn logs.
  EXPECT_FALSE(obs::txnq::looks_like_txn_log(""));
  EXPECT_FALSE(obs::txnq::looks_like_txn_log("# hepvine spans v1\nRUN 5 1 vine\n"));
  EXPECT_FALSE(obs::txnq::looks_like_txn_log("hello world\nmore garbage\n"));
  EXPECT_FALSE(obs::txnq::looks_like_txn_log("12 ZOMBIE 7 WAITING\n"));
}

TEST(TxnQuery, SpanRecordsAreEmptyOnSpanlessLog) {
  // A pre-profiler txn log parses fine but carries no SPAN lines; the
  // profile CLI must detect this (and error out) rather than emit a
  // zero-filled report.
  const auto events = obs::txnq::parse_log(
      "0 MANAGER 0 START\n"
      "12 TASK 7 WAITING process 0\n"
      "90 TASK 7 DONE ok\n"
      "99 MANAGER 0 END\n");
  ASSERT_FALSE(events.empty());
  EXPECT_TRUE(obs::txnq::span_records(events).empty());
}

TEST(TxnQuery, ReconstructsLifetimeAndBreakdown) {
  const std::string log =
      "0 MANAGER 0 START\n"
      "# header comment\n"
      "100 TASK 1 WAITING process 0\n"
      "200 WORKER 0 CONNECTION\n"
      "300 TASK 1 RUNNING 0\n"
      "400 TASK 1 RETRIEVED FAILURE\n"
      "450 TASK 1 WAITING process 1\n"
      "500 TASK 1 RUNNING 2\n"
      "900 TASK 1 RETRIEVED SUCCESS\n"
      "950 TASK 1 DONE SUCCESS\n"
      "960 TASK 2 WAITING accumulate 0\n"
      "970 WORKER 0 DISCONNECTION PREEMPTED\n"
      "1000 MANAGER 0 END\n";
  const auto events = obs::txnq::parse_log(log);

  const auto lt = obs::txnq::task_lifetime(events, 1);
  ASSERT_TRUE(lt.has_value());
  EXPECT_TRUE(lt->complete());
  EXPECT_EQ(lt->category, "process");
  EXPECT_EQ(lt->attempts, 2u);
  EXPECT_EQ(lt->worker, 2);          // final attempt's worker
  EXPECT_EQ(lt->waiting_at, 100);    // first WAITING
  EXPECT_EQ(lt->running_at, 500);    // last RUNNING
  EXPECT_EQ(lt->retrieved_at, 900);
  EXPECT_EQ(lt->done_at, 950);
  EXPECT_EQ(lt->wait_time(), 400);
  EXPECT_EQ(lt->run_time(), 400);

  const auto lt2 = obs::txnq::task_lifetime(events, 2);
  ASSERT_TRUE(lt2.has_value());
  EXPECT_FALSE(lt2->complete());
  EXPECT_FALSE(obs::txnq::task_lifetime(events, 99).has_value());

  const auto breakdown = obs::txnq::category_breakdown(events);
  ASSERT_EQ(breakdown.size(), 1u);  // incomplete task 2 excluded
  const auto& agg = breakdown.at("process");
  EXPECT_EQ(agg.tasks, 1u);
  EXPECT_EQ(agg.attempts, 2u);
  EXPECT_EQ(agg.total_wait, 400);
  EXPECT_EQ(agg.total_run, 400);

  const auto ws = obs::txnq::worker_summary(events);
  EXPECT_EQ(ws.connections, 1u);
  EXPECT_EQ(ws.disconnections_by_reason.at("PREEMPTED"), 1u);

  const std::string rendered = obs::txnq::format_lifetime(*lt);
  EXPECT_NE(rendered.find("task 1 (process), 2 attempt(s)"),
            std::string::npos);
  EXPECT_NE(obs::txnq::format_breakdown(breakdown).find("process"),
            std::string::npos);
}

TEST(TxnQuery, CacheSummaryRollsUpAllFourVerbs) {
  obs::TxnLog log(64, "");
  log.cache_insert(100, 0, 7, 1000);
  log.cache_insert(200, 1, 7, 1000);
  log.cache_evict(300, 0, 7, 1000);
  log.cache_gc(400, 1, 7, 1000);
  log.cache_gc(450, 1, 8, 500);
  log.cache_lost(500, 2, 9, 250);
  const auto events = obs::txnq::parse_log(log.text());

  const auto cs = obs::txnq::cache_summary(events);
  EXPECT_EQ(cs.inserts, 2u);
  EXPECT_EQ(cs.inserted_bytes, 2000u);
  EXPECT_EQ(cs.evictions, 1u);
  EXPECT_EQ(cs.evicted_bytes, 1000u);
  EXPECT_EQ(cs.gc_drops, 2u);
  EXPECT_EQ(cs.gc_bytes, 1500u);
  EXPECT_EQ(cs.losses, 1u);
  EXPECT_EQ(cs.lost_bytes, 250u);

  const std::string rendered = obs::txnq::format_cache_summary(cs);
  EXPECT_NE(rendered.find("INSERT"), std::string::npos);
  EXPECT_NE(rendered.find("EVICT"), std::string::npos);
  EXPECT_NE(rendered.find("GC"), std::string::npos);
  EXPECT_NE(rendered.find("LOST"), std::string::npos);
}

TEST(TxnQuery, StoreSummaryRollsUpAllFourVerbs) {
  obs::TxnLog log(64, "");
  log.store_put(100, 0, 7, 1000);
  log.store_put(150, 1, 8, 500);
  log.store_ref(200, 0, 7, 1000);
  log.store_ref(250, 0, 7, 1000);
  log.store_spill(300, 1, 8, 500);
  log.store_drop(400, 0, 7, 1000);
  const auto events = obs::txnq::parse_log(log.text());

  const auto ss = obs::txnq::store_summary(events);
  EXPECT_EQ(ss.puts, 2u);
  EXPECT_EQ(ss.put_bytes, 1500u);
  EXPECT_EQ(ss.refs, 2u);
  EXPECT_EQ(ss.ref_bytes, 2000u);
  EXPECT_EQ(ss.spills, 1u);
  EXPECT_EQ(ss.spilled_bytes, 500u);
  EXPECT_EQ(ss.drops, 1u);
  EXPECT_EQ(ss.dropped_bytes, 1000u);

  const std::string rendered = obs::txnq::format_store_summary(ss);
  EXPECT_NE(rendered.find("PUT"), std::string::npos);
  EXPECT_NE(rendered.find("REF"), std::string::npos);
  EXPECT_NE(rendered.find("SPILL"), std::string::npos);
  EXPECT_NE(rendered.find("DROP"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: a DV3 run with logging enabled round-trips through every sink.
// ---------------------------------------------------------------------------

exec::RunReport run_vine(const dag::TaskGraph& graph, bool observe,
                         const std::string& trace_path = {}) {
  cluster::Cluster cluster(tiny_cluster(4));
  exec::RunOptions options = fast_options();
  options.observability.enabled = observe;
  options.observability.trace_path = trace_path;
  vine::VineScheduler scheduler;
  return scheduler.run(graph, cluster, options);
}

TEST(ObsEndToEnd, VineRunProducesReconstructableLifecycles) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 7);
  const exec::RunReport report = run_vine(graph, /*observe=*/true);
  ASSERT_TRUE(report.success);
  ASSERT_TRUE(report.observation != nullptr);
  ASSERT_TRUE(report.observation->enabled());

  const auto& txn = report.observation->txn();
  EXPECT_GT(txn.events(), 0u);
  EXPECT_EQ(txn.dropped(), 0u);  // tiny run fits the default ring

  const auto events = obs::txnq::parse_log(txn.text());
  const auto lifetimes = obs::txnq::all_task_lifetimes(events);
  EXPECT_EQ(lifetimes.size(), graph.size());
  for (const auto& [id, lt] : lifetimes) {
    EXPECT_TRUE(lt.complete()) << "task " << id << " lifecycle incomplete";
    EXPECT_GE(lt.worker, 0);
    EXPECT_LE(lt.waiting_at, lt.running_at);
    EXPECT_LE(lt.running_at, lt.retrieved_at);
    EXPECT_LE(lt.retrieved_at, lt.done_at);
  }

  // The per-category breakdown covers every task exactly once.
  std::size_t tasks_in_breakdown = 0;
  for (const auto& [cat, agg] : obs::txnq::category_breakdown(events)) {
    tasks_in_breakdown += agg.tasks;
  }
  EXPECT_EQ(tasks_in_breakdown, graph.size());

  // Workers connected at least once; the MANAGER START/END frame is there.
  EXPECT_GE(obs::txnq::worker_summary(events).connections, 1u);
  EXPECT_NE(txn.text().find("MANAGER 0 START"), std::string::npos);
  EXPECT_NE(txn.text().find("MANAGER 0 END"), std::string::npos);
}

TEST(ObsEndToEnd, PerfFinalSnapshotMatchesReportTotals) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 7);
  const exec::RunReport report = run_vine(graph, /*observe=*/true);
  ASSERT_TRUE(report.success);
  ASSERT_TRUE(report.observation != nullptr);

  const auto& perf = report.observation->perf();
  ASSERT_FALSE(perf.empty());
  EXPECT_DOUBLE_EQ(perf.final_value("tasks.total"),
                   static_cast<double>(report.tasks_total));
  EXPECT_DOUBLE_EQ(perf.final_value("tasks.done"),
                   static_cast<double>(report.tasks_total));
  EXPECT_DOUBLE_EQ(perf.final_value("tasks.inflight"), 0.0);
  EXPECT_GE(perf.final_value("workers.connected"), 1.0);
  EXPECT_GT(perf.final_value("engine.events_executed"), 0.0);
  EXPECT_GT(perf.final_value("manager.ops"), 0.0);
  EXPECT_GT(perf.final_value("net.bytes_completed"), 0.0);
  EXPECT_NEAR(perf.final_value("manager.busy_fraction"),
              report.manager_busy_fraction, 1e-9);
  // Bytes classified by route sum to something positive on this workload.
  EXPECT_GT(perf.final_value("xfer.bytes_via_manager") +
                perf.final_value("xfer.bytes_peer") +
                perf.final_value("xfer.bytes_via_fs"),
            0.0);
  EXPECT_NE(perf.to_text().find("# time_us"), std::string::npos);
}

TEST(ObsEndToEnd, TraceJsonIsWrittenAndLoadable) {
  const std::string path = testing::TempDir() + "/obs_trace_test.json";
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 7);
  const exec::RunReport report = run_vine(graph, /*observe=*/true, path);
  ASSERT_TRUE(report.success);
  ASSERT_TRUE(report.observation != nullptr);
  EXPECT_GT(report.observation->trace().events(), 0u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // task spans
  EXPECT_NE(json.find("process_name"), std::string::npos);  // lane metadata
  std::remove(path.c_str());
}

TEST(ObsEndToEnd, LoggingDoesNotPerturbTheSimulation) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 7);
  const exec::RunReport with = run_vine(graph, /*observe=*/true);
  const exec::RunReport without = run_vine(graph, /*observe=*/false);
  ASSERT_TRUE(with.success);
  ASSERT_TRUE(without.success);
  EXPECT_TRUE(without.observation == nullptr);
  EXPECT_EQ(with.makespan, without.makespan);
  EXPECT_EQ(with.task_attempts, without.task_attempts);
  EXPECT_EQ(sink_digest(with), sink_digest(without));
  EXPECT_EQ(sink_digest(with), reference_digest(graph));
}

TEST(ObsEndToEnd, DaskRunEmitsLifecycles) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 7);
  cluster::Cluster cluster(tiny_cluster(4));
  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  dd::DaskDistScheduler scheduler;
  const exec::RunReport report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success);
  ASSERT_TRUE(report.observation != nullptr);

  const auto events =
      obs::txnq::parse_log(report.observation->txn().text());
  const auto lifetimes = obs::txnq::all_task_lifetimes(events);
  EXPECT_EQ(lifetimes.size(), graph.size());
  for (const auto& [id, lt] : lifetimes) {
    EXPECT_TRUE(lt.complete()) << "task " << id;
  }
  const auto& perf = report.observation->perf();
  ASSERT_FALSE(perf.empty());
  EXPECT_DOUBLE_EQ(perf.final_value("tasks.done"),
                   static_cast<double>(report.tasks_total));
}

TEST(ObsEndToEnd, StoreVerbsRoundTripThroughTxnQuery) {
  // A serverless run with the object store on must emit a STORE line for
  // every store transition it reports: puts, by-reference handles,
  // forced spills (remote consumers), and in-memory GC drops all
  // round-trip through parse_log/store_summary. Spilled objects become
  // ordinary cache files, so the CACHE summary sees their inserts too.
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 3);
  cluster::Cluster cluster(tiny_cluster(4));
  exec::RunOptions options = fast_options();
  options.mode = exec::ExecMode::kFunctionCalls;
  options.observability.enabled = true;
  vine::VineTunables tun;
  tun.object_store = true;
  vine::VineScheduler scheduler(vine::taskvine_policy(), tun);
  const exec::RunReport report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  ASSERT_TRUE(report.observation != nullptr);

  const auto events =
      obs::txnq::parse_log(report.observation->txn().text());
  const auto ss = obs::txnq::store_summary(events);
  EXPECT_EQ(ss.puts, report.store_puts);
  EXPECT_EQ(ss.put_bytes, report.store_put_bytes);
  EXPECT_EQ(ss.refs, report.store_ref_hits);
  EXPECT_EQ(ss.spills, report.store_spills);
  EXPECT_EQ(ss.spilled_bytes, report.store_spill_bytes);
  EXPECT_EQ(ss.drops, report.store_drops);
  EXPECT_GT(ss.puts, 0u);
  EXPECT_GT(ss.spills, 0u);

  // Every object leaves memory exactly once: spilled to disk or dropped
  // by GC/worker loss (never both, never neither).
  EXPECT_EQ(ss.spills + ss.drops, ss.puts);
  const auto cs = obs::txnq::cache_summary(events);
  EXPECT_GE(cs.inserts, ss.spills)
      << "each spill must materialize a cache insert on the holder";
}

TEST(ObsEndToEnd, ReportSummaryMentionsObservability) {
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(), 7);
  const exec::RunReport report = run_vine(graph, /*observe=*/true);
  ASSERT_TRUE(report.success);
  const std::string summary = exec::summarize(report);
  EXPECT_NE(summary.find("observability:"), std::string::npos);
  EXPECT_NE(summary.find("txn events"), std::string::npos);
}

}  // namespace
}  // namespace hepvine
