#include "apps/workloads.h"

#include <gtest/gtest.h>

#include "dag/evaluate.h"
#include "hep/histogram.h"

namespace hepvine::apps {
namespace {

TEST(Workloads, TableTwoPresetsMatchPaper) {
  EXPECT_EQ(dv3_small().input_bytes, 25 * util::kGB);
  EXPECT_EQ(dv3_medium().input_bytes, 200 * util::kGB);
  EXPECT_EQ(dv3_large().input_bytes, 1'200 * util::kGB);
  EXPECT_EQ(dv3_huge().input_bytes, 1'200 * util::kGB);
  EXPECT_EQ(rs_triphoton().input_bytes, 500 * util::kGB);
  EXPECT_EQ(rs_triphoton().datasets, 20u);
  EXPECT_EQ(dv3_huge().variations, 16u);
}

TEST(Workloads, Dv3LargeBuildsSeventeenThousandTasks) {
  WorkloadSpec spec = with_events(dv3_large(), 10);
  const dag::TaskGraph graph = build_workload(spec, 1);
  // Paper: "17,000 tasks consuming 1.2 TB".
  EXPECT_NEAR(static_cast<double>(graph.size()), 17'000.0, 400.0);
  EXPECT_NEAR(static_cast<double>(graph.input_bytes()),
              1.2e12, 0.05e12);
  EXPECT_EQ(graph.sinks().size(), 1u);
}

TEST(Workloads, Dv3HugeBuildsRoughly185kTasksWith10kRoots) {
  WorkloadSpec spec = with_events(dv3_huge(), 10);
  const dag::TaskGraph graph = build_workload(spec, 1);
  // Paper: "185,000 tasks with 10,000 initial executable tasks".
  EXPECT_NEAR(static_cast<double>(graph.size()), 185'000.0, 6'000.0);
  EXPECT_EQ(graph.roots().size(), 10'000u);
  const auto counts = graph.category_counts();
  EXPECT_EQ(counts.at("preprocess"), 10'000u);
  EXPECT_EQ(counts.at("variation"), 160'000u);
}

TEST(Workloads, TriphotonBuildsFourThousandProcessTasksOver20Datasets) {
  WorkloadSpec spec = with_events(rs_triphoton(), 10);
  const dag::TaskGraph graph = build_workload(spec, 1);
  const auto counts = graph.category_counts();
  EXPECT_EQ(counts.at("process"), 4'000u);
  EXPECT_TRUE(counts.contains("final-merge"));
  EXPECT_EQ(graph.sinks().size(), 1u);
}

TEST(Workloads, SingleNodeReductionShrinksGraphAndWidensFanIn) {
  WorkloadSpec tree = with_events(rs_triphoton(), 10);
  tree.process_tasks = 400;
  WorkloadSpec flat = tree;
  flat.reduction = ReductionShape::kSingleNode;

  const dag::TaskGraph tg = build_workload(tree, 1);
  const dag::TaskGraph fg = build_workload(flat, 1);
  EXPECT_GT(tg.size(), fg.size());

  std::size_t max_fan_tree = 0;
  for (const auto& t : tg.tasks()) {
    max_fan_tree = std::max(max_fan_tree, t.spec.deps.size());
  }
  std::size_t max_fan_flat = 0;
  for (const auto& t : fg.tasks()) {
    max_fan_flat = std::max(max_fan_flat, t.spec.deps.size());
  }
  EXPECT_LE(max_fan_tree, tree.reduce_arity);
  EXPECT_EQ(max_fan_flat, 400u / 20u) << "one reduction per dataset";
}

TEST(Workloads, GraphDeterministicInSeed) {
  WorkloadSpec spec = with_events(dv3_small(), 20);
  spec.process_tasks = 60;
  const dag::TaskGraph a = build_workload(spec, 5);
  const dag::TaskGraph b = build_workload(spec, 5);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.task(static_cast<dag::TaskId>(i)).spec.cpu_seconds,
                     b.task(static_cast<dag::TaskId>(i)).spec.cpu_seconds);
  }
  const auto ra = dag::evaluate_serially(a);
  const auto rb = dag::evaluate_serially(b);
  EXPECT_EQ(ra.begin()->second->digest(), rb.begin()->second->digest());
}

TEST(Workloads, DifferentSeedsChangeCostsAndData) {
  WorkloadSpec spec = with_events(dv3_small(), 20);
  spec.process_tasks = 30;
  const dag::TaskGraph a = build_workload(spec, 1);
  const dag::TaskGraph b = build_workload(spec, 2);
  const auto ra = dag::evaluate_serially(a);
  const auto rb = dag::evaluate_serially(b);
  EXPECT_NE(ra.begin()->second->digest(), rb.begin()->second->digest());
}

TEST(Workloads, ProcessCpuTimesFollowPaperDistribution) {
  // Fig 8: the majority of tasks run 1-10 s.
  WorkloadSpec spec = with_events(dv3_large(), 10);
  const dag::TaskGraph graph = build_workload(spec, 1);
  std::size_t in_band = 0;
  std::size_t process = 0;
  for (const auto& t : graph.tasks()) {
    if (t.spec.category != "process") continue;
    ++process;
    if (t.spec.cpu_seconds >= 1.0 && t.spec.cpu_seconds <= 10.0) ++in_band;
  }
  EXPECT_GT(static_cast<double>(in_band) / static_cast<double>(process),
            0.75);
}

TEST(Workloads, HugeVariationsProduceVariationTaggedHistograms) {
  WorkloadSpec spec = with_events(dv3_huge(), 50);
  spec.process_tasks = 10;
  spec.variations = 4;
  const dag::TaskGraph graph = build_workload(spec, 3);
  const auto results = dag::evaluate_serially(graph);
  const auto& set =
      dynamic_cast<const hep::HistogramSet&>(*results.begin()->second);
  for (std::uint32_t v = 0; v < 4; ++v) {
    EXPECT_NE(set.find("dijet_mass_v" + std::to_string(v)), nullptr);
  }
}

TEST(Workloads, TriphotonFinalHistogramSeesResonance) {
  WorkloadSpec spec = with_events(rs_triphoton(), 2'000);
  spec.process_tasks = 100;
  spec.datasets = 5;
  const dag::TaskGraph graph = build_workload(spec, 4);
  const auto results = dag::evaluate_serially(graph);
  const auto& set =
      dynamic_cast<const hep::HistogramSet&>(*results.begin()->second);
  const hep::Histogram1D* mass = set.find("triphoton_mass");
  ASSERT_NE(mass, nullptr);
  EXPECT_GT(mass->integral(), 0.0);
}

TEST(Workloads, InvalidSpecRejected) {
  WorkloadSpec spec = dv3_small();
  spec.process_tasks = 0;
  EXPECT_THROW(build_workload(spec, 1), std::invalid_argument);
}

}  // namespace
}  // namespace hepvine::apps
