#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/engine.h"
#include "storage/disk.h"
#include "storage/shared_fs.h"

namespace hepvine::storage {
namespace {

using util::Tick;

TEST(LocalDisk, ReserveRespectsCapacity) {
  LocalDisk disk(nvme_disk(), 100);
  EXPECT_TRUE(disk.reserve(60));
  EXPECT_EQ(disk.used(), 60u);
  EXPECT_EQ(disk.available(), 40u);
  EXPECT_FALSE(disk.reserve(50));
  EXPECT_EQ(disk.used(), 60u) << "failed reserve must not change usage";
  EXPECT_TRUE(disk.reserve(40));
  EXPECT_EQ(disk.available(), 0u);
}

TEST(LocalDisk, TryReserveReportsOverflow) {
  LocalDisk disk(nvme_disk(), 100);
  EXPECT_TRUE(disk.try_reserve(80)) << "within capacity: still healthy";
  EXPECT_FALSE(disk.try_reserve(80)) << "overflow: partition is doomed";
  EXPECT_TRUE(disk.over_capacity());
  EXPECT_EQ(disk.used(), 160u) << "bytes are accounted regardless";
}

TEST(LocalDisk, ReleaseClampsAtZero) {
  LocalDisk disk(nvme_disk(), 100);
  ASSERT_TRUE(disk.reserve(50));
  disk.release(70);
  EXPECT_EQ(disk.used(), 0u);
}

TEST(LocalDisk, PeakTracksHighWatermark) {
  LocalDisk disk(nvme_disk(), 1000);
  ASSERT_TRUE(disk.reserve(700));
  disk.release(600);
  ASSERT_TRUE(disk.reserve(100));
  EXPECT_EQ(disk.peak_used(), 700u);
}

TEST(LocalDisk, ServiceTimesScaleWithSize) {
  LocalDisk disk(nvme_disk(), util::kGB);
  EXPECT_GT(disk.read_time(100 * util::kMB), disk.read_time(10 * util::kMB));
  EXPECT_GT(disk.write_time(1), 0);
}

TEST(DiskSpecs, SpinningIsSlowerThanNvme) {
  EXPECT_LT(spinning_disk().read_bw, nvme_disk().read_bw);
  EXPECT_GT(spinning_disk().op_latency, nvme_disk().op_latency);
}

TEST(FsSpecs, HdfsVsVastProfiles) {
  const SharedFsSpec hdfs = hdfs_spec();
  const SharedFsSpec vast = vast_spec();
  EXPECT_GT(hdfs.open_latency, vast.open_latency)
      << "the paper's core storage contrast: HDFS is high-latency";
  EXPECT_GT(hdfs.metadata_latency, vast.metadata_latency);
  EXPECT_LT(hdfs.metadata_ops_per_sec, vast.metadata_ops_per_sec);
  EXPECT_EQ(hdfs.replication, 3u);
  EXPECT_EQ(vast.replication, 1u);
}

struct FsFixture : public ::testing::Test {
  sim::Engine engine;
  net::Network net{engine};
  net::LinkId fs_link = net.add_link("fs", util::gbps(80));
  net::LinkId node_down = net.add_link("node.down", util::gbps(10));
  net::LinkId node_up = net.add_link("node.up", util::gbps(10));
  SharedFilesystem fs{engine, net, fs_link, vast_spec()};
};

TEST_F(FsFixture, ReadDeliversAfterOpenLatencyPlusTransfer) {
  Tick done = -1;
  fs.read(node_down, 1'250'000'000, [&] { done = engine.now(); });  // 1.25 GB
  engine.run();
  // 1.25 GB over a 10 Gbit/s node link = 1 s, plus ~0.7 ms open latency.
  EXPECT_NEAR(util::to_seconds(done), 1.0007, 0.01);
  EXPECT_EQ(fs.bytes_read(), 1'250'000'000u);
}

TEST_F(FsFixture, WriteChargesReplicationOnFsLink) {
  sim::Engine eng2;
  net::Network net2(eng2);
  const net::LinkId fsl = net2.add_link("fs", util::gbps(80));
  const net::LinkId up = net2.add_link("up", util::gbps(80));
  SharedFilesystem hdfs(eng2, net2, fsl, hdfs_spec());
  hdfs.write(up, 100 * util::kMB, nullptr);
  eng2.run();
  // Triple replication: the fs link carries 3x the client bytes.
  EXPECT_NEAR(static_cast<double>(net2.link_stats(fsl).bytes_carried),
              3.0 * 100e6, 5e6);
}

TEST_F(FsFixture, MetadataOpsCompleteInOrderWithQueueing) {
  std::vector<Tick> done;
  fs.metadata_ops(1000, [&] { done.push_back(engine.now()); });
  fs.metadata_ops(1000, [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_LT(done[0], done[1]) << "second batch queues behind the first";
}

TEST_F(FsFixture, MetadataContentionGrowsLatency) {
  // One client: ~1000/200k = 5 ms. Heavy contention: 100 batches queue.
  sim::Engine eng2;
  net::Network net2(eng2);
  const net::LinkId fsl = net2.add_link("fs", util::gbps(80));
  SharedFilesystem vast(eng2, net2, fsl, vast_spec());
  Tick last = 0;
  for (int i = 0; i < 100; ++i) {
    vast.metadata_ops(2000, [&] { last = eng2.now(); });
  }
  eng2.run();
  // 200k ops at 200k ops/s ~ 1 s total.
  EXPECT_NEAR(util::to_seconds(last), 1.0, 0.05);
  EXPECT_EQ(vast.metadata_ops_served(), 200'000u);
}

TEST_F(FsFixture, HdfsMetadataFarSlowerThanVast) {
  sim::Engine e1;
  net::Network n1(e1);
  SharedFilesystem hdfs(e1, n1, n1.add_link("h", util::gbps(40)),
                        hdfs_spec());
  Tick hdfs_done = 0;
  hdfs.metadata_ops(5'000, [&] { hdfs_done = e1.now(); });
  e1.run();

  sim::Engine e2;
  net::Network n2(e2);
  SharedFilesystem vast(e2, n2, n2.add_link("v", util::gbps(80)),
                        vast_spec());
  Tick vast_done = 0;
  vast.metadata_ops(5'000, [&] { vast_done = e2.now(); });
  e2.run();

  EXPECT_GT(hdfs_done, 10 * vast_done);
}

}  // namespace
}  // namespace hepvine::storage
