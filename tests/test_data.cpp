#include <gtest/gtest.h>

#include <set>

#include "data/dataset.h"
#include "data/file_catalog.h"
#include "util/units.h"

namespace hepvine::data {
namespace {

TEST(FileCatalog, AssignsDenseIds) {
  FileCatalog catalog;
  const FileId a = catalog.add("a.root", FileKind::kDatasetInput, 100);
  const FileId b = catalog.add("b.root", FileKind::kDatasetInput, 200);
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.get(a).size, 100u);
}

TEST(FileCatalog, CachenamesAreDeterministic) {
  FileCatalog c1;
  FileCatalog c2;
  const FileId a = c1.add("x.root", FileKind::kDatasetInput, 100, 7);
  const FileId b = c2.add("x.root", FileKind::kDatasetInput, 100, 7);
  EXPECT_EQ(c1.get(a).cachename(), c2.get(b).cachename());
}

TEST(FileCatalog, CachenamesDependOnContentSeed) {
  FileCatalog catalog;
  const FileId a = catalog.add("x.root", FileKind::kDatasetInput, 100, 1);
  const FileId b = catalog.add("x.root", FileKind::kDatasetInput, 100, 2);
  EXPECT_NE(catalog.get(a).cachename(), catalog.get(b).cachename());
}

TEST(FileCatalog, CachenameEncodesKind) {
  FileCatalog catalog;
  const FileId a = catalog.add("f", FileKind::kDatasetInput, 10);
  const FileId b = catalog.add("f", FileKind::kEnvironment, 10);
  EXPECT_TRUE(catalog.get(a).cachename().starts_with("input-"));
  EXPECT_TRUE(catalog.get(b).cachename().starts_with("environment-"));
}

TEST(FileCatalog, TotalBytesByKind) {
  FileCatalog catalog;
  catalog.add("a", FileKind::kDatasetInput, 100);
  catalog.add("b", FileKind::kDatasetInput, 50);
  catalog.add("c", FileKind::kIntermediate, 999);
  EXPECT_EQ(catalog.total_bytes(FileKind::kDatasetInput), 150u);
  EXPECT_EQ(catalog.total_bytes(FileKind::kIntermediate), 999u);
}

TEST(FileCatalog, SetSizeUpdates) {
  FileCatalog catalog;
  const FileId f = catalog.add("x", FileKind::kIntermediate, 10);
  catalog.set_size(f, 77);
  EXPECT_EQ(catalog.get(f).size, 77u);
}

TEST(Dataset, UniformDatasetTotals) {
  const DatasetSpec spec =
      make_uniform_dataset("ds", 10, 400 * util::kMB, 5, 1000);
  EXPECT_EQ(spec.files.size(), 10u);
  EXPECT_EQ(spec.total_bytes(), 4'000 * util::kMB);
  EXPECT_EQ(spec.total_chunks(), 50u);
  EXPECT_EQ(spec.total_events(), 50'000u);
}

TEST(Dataset, RegisterProducesOneChunkRefPerChunk) {
  FileCatalog catalog;
  const DatasetSpec spec =
      make_uniform_dataset("ds", 4, 100 * util::kMB, 5, 500);
  const auto chunks = register_dataset(spec, catalog, 42);
  EXPECT_EQ(chunks.size(), 20u);
  // Every chunk is its own addressable catalog entry (partial reads), with
  // the file's bytes split evenly across them.
  EXPECT_EQ(catalog.size(), 20u);
  EXPECT_NE(chunks[0].file_id, chunks[1].file_id);
  EXPECT_EQ(chunks[0].bytes, 20 * util::kMB);
  EXPECT_EQ(chunks[0].events, 500u);
  EXPECT_EQ(chunks[0].file_index, 0u);
  EXPECT_EQ(chunks[5].file_index, 1u);
  std::uint64_t total = 0;
  for (const auto& c : chunks) total += c.bytes;
  EXPECT_EQ(total, spec.total_bytes());
}

TEST(Dataset, ChunkSeedsAreUniqueAndDeterministic) {
  FileCatalog c1;
  FileCatalog c2;
  const DatasetSpec spec =
      make_uniform_dataset("ds", 8, 100 * util::kMB, 4, 100);
  const auto chunks1 = register_dataset(spec, c1, 7);
  const auto chunks2 = register_dataset(spec, c2, 7);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < chunks1.size(); ++i) {
    EXPECT_EQ(chunks1[i].seed, chunks2[i].seed);
    seeds.insert(chunks1[i].seed);
  }
  EXPECT_EQ(seeds.size(), chunks1.size());
}

TEST(Dataset, DifferentRunSeedsChangeChunkSeeds) {
  FileCatalog c1;
  FileCatalog c2;
  const DatasetSpec spec =
      make_uniform_dataset("ds", 2, 10 * util::kMB, 2, 10);
  const auto a = register_dataset(spec, c1, 1);
  const auto b = register_dataset(spec, c2, 2);
  EXPECT_NE(a[0].seed, b[0].seed);
}

TEST(Dataset, ZeroChunksTreatedAsOne) {
  FileCatalog catalog;
  DatasetSpec spec = make_uniform_dataset("ds", 1, util::kMB, 1, 10);
  spec.files[0].chunks = 0;
  const auto chunks = register_dataset(spec, catalog, 1);
  EXPECT_EQ(chunks.size(), 1u);
}

}  // namespace
}  // namespace hepvine::data
