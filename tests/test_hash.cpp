#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace hepvine::util {
namespace {

TEST(Hash, Mix64AvalanchesZero) {
  EXPECT_NE(mix64(0), 0u);
  EXPECT_NE(mix64(0), mix64(1));
}

TEST(Hash, BytesDeterministic) {
  EXPECT_EQ(hash_bytes("hello"), hash_bytes("hello"));
  EXPECT_NE(hash_bytes("hello"), hash_bytes("hellp"));
  EXPECT_NE(hash_bytes("hello", 1), hash_bytes("hello", 2));
}

TEST(Hash, EmptyInputIsValid) {
  EXPECT_EQ(hash_bytes(""), hash_bytes(""));
  EXPECT_NE(hash_bytes("", 1), hash_bytes("", 2));
}

TEST(Hash, CombineOrderSensitive) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(Hash, Digest128HexFormat) {
  const Digest128 d = digest128("taskvine");
  EXPECT_EQ(d.hex().size(), 32u);
  EXPECT_EQ(d.hex(), d.hex());
  for (char c : d.hex()) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(Hash, Digest128Distinct) {
  std::set<std::string> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(digest128("file-" + std::to_string(i)).hex());
  }
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Hash, HasherFieldOrderMatters) {
  Hasher a;
  a.update("x").update_u64(1);
  Hasher b;
  b.update_u64(1).update("x");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, HasherSeedChangesDigest) {
  Hasher a(1);
  Hasher b(2);
  a.update("same");
  b.update("same");
  EXPECT_NE(a.digest(), b.digest());
}

TEST(Hash, HasherDoubleAndInt) {
  Hasher a;
  a.update_double(1.5);
  Hasher b;
  b.update_double(1.5);
  EXPECT_EQ(a.digest(), b.digest());
  Hasher c;
  c.update_i64(-12);
  EXPECT_NE(c.digest(), a.digest());
}

TEST(Hash, Digest64StableAcrossCalls) {
  Hasher h;
  h.update("abc").update_u64(42);
  EXPECT_EQ(h.digest64(), h.digest64());
}

}  // namespace
}  // namespace hepvine::util
