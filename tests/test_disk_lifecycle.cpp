// Worker-disk lifecycle tests: ref-counted GC of dead intermediates,
// pinning of in-use files, and deterministic LRU eviction under disk
// pressure — plus the staging-overflow regression (waiters must be failed,
// not dropped) and the eviction/injected-loss composition contract.
//
// The core fixture is a three-task chain on ONE paper worker (108 GB
// scratch disk) whose dataset inputs cannot coexist:
//
//   chunk0 (60 GB)  chunk1 (50 GB)        dataset inputs
//        |               |
//        A ------------> B -------------> D
//                            (D re-reads chunk0)
//
// Staging chunk1 for B does not fit next to the cached chunk0 (plus the
// software environment). With eviction disabled that reservation overflows
// the disk and kills the worker — the paper's Fig 11 pathology. With
// eviction enabled the manager evicts the unpinned chunk0 (recoverable:
// dataset inputs re-stage from shared storage), B runs, chunk1 is
// garbage-collected the moment its last consumer finishes, and D re-stages
// chunk0 into the reclaimed space. Same graph, crash vs. success — the
// ablation the DataPolicy::evict_on_pressure knob exists for.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "dag/task_graph.h"
#include "dag/value.h"
#include "exec/scheduler.h"
#include "ha/snapshot.h"
#include "obs/observer.h"
#include "obs/txn_query.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine::vine {
namespace {

using namespace hepvine::testutil;

dag::ValuePtr scalar(double v) {
  return std::make_shared<dag::ScalarValue>(v);
}

/// The chain described in the file header. Built fresh per run so
/// determinism tests never share closure state between runs.
dag::TaskGraph pressure_chain() {
  dag::TaskGraph graph;
  const data::FileId chunk0 =
      graph.add_input_file("chunk0", 60 * util::kGB, /*content_seed=*/101);
  const data::FileId chunk1 =
      graph.add_input_file("chunk1", 50 * util::kGB, /*content_seed=*/102);

  dag::TaskSpec a;
  a.category = "scan";
  a.function = "scan";
  a.input_files = {chunk0};
  a.cpu_seconds = 2.0;
  a.output_bytes = 1 * util::kMB;
  a.fn = [](const std::vector<dag::ValuePtr>&) { return scalar(1.0); };
  const dag::TaskId ta = graph.add_task(a);

  dag::TaskSpec b;
  b.category = "scan";
  b.function = "scan";
  b.deps = {ta};
  b.input_files = {chunk1};
  b.cpu_seconds = 2.0;
  b.output_bytes = 1 * util::kMB;
  b.fn = [](const std::vector<dag::ValuePtr>& in) {
    return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() + 1.0);
  };
  const dag::TaskId tb = graph.add_task(b);

  dag::TaskSpec d;
  d.category = "merge";
  d.function = "merge";
  d.deps = {tb};
  d.input_files = {chunk0};
  d.cpu_seconds = 2.0;
  d.output_bytes = 1 * util::kMB;
  d.fn = [](const std::vector<dag::ValuePtr>& in) {
    return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() * 2.0);
  };
  graph.add_task(d);
  return graph;
}

exec::RunReport run_chain(const DataPolicy& policy,
                          exec::RunOptions options) {
  const dag::TaskGraph graph = pressure_chain();
  cluster::Cluster cluster(tiny_cluster(/*workers=*/1, /*preempt=*/0.0,
                                        options.seed));
  VineScheduler scheduler(policy, VineTunables{});
  return scheduler.run(graph, cluster, options);
}

// --- the eviction-vs-crash ablation -------------------------------------

TEST(DiskLifecycle, EvictionTurnsOverflowCrashIntoSuccess) {
  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  const auto report = run_chain(taskvine_policy(), options);

  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.worker_crashes, 0u)
      << "pressure eviction must absorb the overflow, not crash the worker";
  EXPECT_GE(report.cache_evictions, 1u);
  EXPECT_GT(report.cache_evicted_bytes, 0u);
  // chunk1 dies when B (its only consumer) finishes; the task outputs of A
  // and B die when their consumers finish.
  EXPECT_GE(report.cache_gc_drops, 2u);
  // Evicting is a scheduler decision, not a fault: no injector ran and no
  // loss may be reported.
  EXPECT_EQ(report.faults.cache_losses, 0u);

  // The result is still the correct one.
  EXPECT_EQ(sink_digest(report), reference_digest(pressure_chain()));

  // Txn log carries the new verbs, and they agree with the counters.
  ASSERT_TRUE(report.observation != nullptr);
  const auto events = obs::txnq::parse_log(report.observation->txn().text());
  const auto cs = obs::txnq::cache_summary(events);
  EXPECT_EQ(cs.evictions, report.cache_evictions);
  EXPECT_EQ(cs.evicted_bytes, report.cache_evicted_bytes);
  EXPECT_EQ(cs.gc_drops, report.cache_gc_drops);
  EXPECT_EQ(cs.losses, 0u);
}

TEST(DiskLifecycle, EvictionDisabledReproducesOverflowCrash) {
  DataPolicy policy = taskvine_policy();
  policy.evict_on_pressure = false;

  exec::RunOptions options = fast_options();
  options.max_task_retries = 2;  // bound the crash/replace/crash loop
  const auto report = run_chain(policy, options);

  EXPECT_FALSE(report.success);
  EXPECT_GE(report.worker_crashes, 1u)
      << "with eviction off the staging overflow must kill the worker";
  EXPECT_EQ(report.cache_evictions, 0u);
  // Regression (staging overflow used to drop its fetch waiters on the
  // floor): the run must end decisively via the retry budget, not stall
  // until the simulation horizon with a task waiting on a callback that
  // was never invoked.
  EXPECT_LT(report.makespan, options.max_sim_time);
}

// --- GC bookkeeping on a real workload ----------------------------------

TEST(DiskLifecycle, RefcountGcMatchesTxnLogOnWorkload) {
  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  const dag::TaskGraph graph = apps::build_workload(tiny_dv3(24),
                                                    options.seed);
  cluster::Cluster cluster(tiny_cluster(4, 0.0, options.seed));
  VineScheduler scheduler;
  const auto report = scheduler.run(graph, cluster, options);

  ASSERT_TRUE(report.success) << report.failure_reason;
  // Intermediates must be collected as their consumers finish.
  EXPECT_GE(report.cache_gc_drops, 1u);

  ASSERT_TRUE(report.observation != nullptr);
  const auto events = obs::txnq::parse_log(report.observation->txn().text());
  const auto cs = obs::txnq::cache_summary(events);
  EXPECT_EQ(cs.gc_drops, report.cache_gc_drops);
  EXPECT_EQ(cs.evictions, report.cache_evictions);
  EXPECT_EQ(cs.losses, 0u);
  EXPECT_GE(cs.inserts, graph.size());
}

// --- eviction composes with injected cache loss -------------------------

TEST(DiskLifecycle, InjectedLossIsDistinctFromEviction) {
  // Probe once to learn the makespan, then aim a cache-loss fault at the
  // first dataset chunk mid-run. Two legal outcomes, both exercised by the
  // composition contract: the chunk still has holders (a LOST record and
  // cache_losses == 1) or the lifecycle already dropped every copy
  // (cache_loss_noops == 1 — evicting/GCing is not a fault). Exactly one
  // of the two must be reported.
  const apps::WorkloadSpec workload = tiny_dv3(24);
  exec::RunOptions options = fast_options();
  const dag::TaskGraph probe_graph = apps::build_workload(workload,
                                                          options.seed);
  cluster::Cluster probe_cluster(tiny_cluster(4, 0.0, options.seed));
  VineScheduler scheduler;
  const auto probe = scheduler.run(probe_graph, probe_cluster, options);
  ASSERT_TRUE(probe.success) << probe.failure_reason;

  options.observability.enabled = true;
  options.faults.lose_cached_file(probe.makespan / 2, /*worker=*/-1,
                                  /*file=*/0);
  const dag::TaskGraph graph = apps::build_workload(workload, options.seed);
  cluster::Cluster cluster(tiny_cluster(4, 0.0, options.seed));
  const auto report = scheduler.run(graph, cluster, options);

  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.faults.cache_losses + report.faults.cache_loss_noops, 1u);

  ASSERT_TRUE(report.observation != nullptr);
  const auto events = obs::txnq::parse_log(report.observation->txn().text());
  const auto cs = obs::txnq::cache_summary(events);
  EXPECT_EQ(cs.losses, report.faults.cache_losses);
  EXPECT_EQ(cs.evictions, report.cache_evictions);
  EXPECT_EQ(sink_digest(report), sink_digest(probe));
}

// --- determinism ---------------------------------------------------------

TEST(DiskLifecycle, EvictionPathIsDeterministic) {
  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  const auto a = run_chain(taskvine_policy(), options);
  const auto b = run_chain(taskvine_policy(), options);
  ASSERT_TRUE(a.success) << a.failure_reason;
  ASSERT_TRUE(b.success) << b.failure_reason;
  ASSERT_TRUE(a.observation && b.observation);
  // Byte-identical transaction logs: the LRU victim order (last-use tick,
  // file-id tiebreak) and id-ordered GC sweeps admit no nondeterminism.
  EXPECT_EQ(a.observation->txn().text(), b.observation->txn().text());
  EXPECT_GE(a.cache_evictions, 1u);
}

TEST(DiskLifecycle, DisabledEvictionPathIsDeterministic) {
  DataPolicy policy = taskvine_policy();
  policy.evict_on_pressure = false;

  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  options.max_task_retries = 2;
  const auto a = run_chain(policy, options);
  const auto b = run_chain(policy, options);
  ASSERT_TRUE(a.observation && b.observation);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.worker_crashes, b.worker_crashes);
  EXPECT_EQ(a.observation->txn().text(), b.observation->txn().text());
}

// --- peer-slot accounting ------------------------------------------------

TEST(DiskLifecycle, PeerSlotReleasesBalanceUnderPreemption) {
  // Replication plus heavy preemption drives every peer-transfer teardown
  // path (completion, source death, destination death, throttle-queue
  // kills). Releases must exactly balance acquisitions: any double release
  // shows up as a nonzero underflow counter (and an assert in Debug).
  const apps::WorkloadSpec workload = tiny_dv3(48);
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    exec::RunOptions options = fast_options();
    options.seed = seed;
    options.max_task_retries = 40;
    options.intermediate_replicas = 2;
    const dag::TaskGraph graph = apps::build_workload(workload, seed);
    cluster::Cluster cluster(tiny_cluster(4, /*preempt_per_hour=*/120.0,
                                          seed));
    VineScheduler scheduler;
    const auto report = scheduler.run(graph, cluster, options);
    ASSERT_TRUE(report.success) << "seed " << seed << ": "
                                << report.failure_reason;
    EXPECT_EQ(report.peer_slot_underflows, 0u) << "seed " << seed;
  }
}

// --- manager snapshots under disk pressure -------------------------------

TEST(DiskLifecycle, MidPressureSnapshotCarriesPinsAndIsDeterministic) {
  // The PR 5 invariants — pin sets guarded by worker incarnation and the
  // peer-slot/active-out balance — must survive serialization: a snapshot
  // taken while the pressure chain is staging carries them in the workers
  // section, and two identical runs serialize byte-identical state at
  // every cadence tick.
  exec::RunOptions options = fast_options();
  options.observability.enabled = true;
  options.ha.snapshot_interval = util::seconds(1);
  const auto a = run_chain(taskvine_policy(), options);
  const auto b = run_chain(taskvine_policy(), options);
  ASSERT_TRUE(a.success) << a.failure_reason;
  ASSERT_TRUE(b.success) << b.failure_reason;
  ASSERT_FALSE(a.ha.snapshots.empty());
  ASSERT_EQ(a.ha.snapshots.size(), b.ha.snapshots.size());
  for (std::size_t i = 0; i < a.ha.snapshots.size(); ++i) {
    EXPECT_EQ(a.ha.snapshots[i].digest, b.ha.snapshots[i].digest)
        << "snapshot " << i;
    EXPECT_EQ(a.ha.snapshots[i].state, b.ha.snapshots[i].state)
        << "snapshot " << i;
    EXPECT_EQ(a.ha.snapshots[i].tick, b.ha.snapshots[i].tick)
        << "snapshot " << i;
  }

  // Every snapshot serializes the single worker with its incarnation and
  // pin set; while an input chunk is staged-or-executing it is pinned, so
  // at least one cadence tick must catch a non-empty pin set.
  // (Snapshots taken before the worker connects have no workers entries.)
  bool saw_worker = false;
  bool saw_pin = false;
  for (const auto& rec : a.ha.snapshots) {
    const std::string w0 = ha::snapshot_field(rec.state, "workers.w0");
    if (w0.empty()) continue;
    saw_worker = true;
    EXPECT_NE(w0.find("inc="), std::string::npos) << rec.state;
    ASSERT_NE(w0.find("pins="), std::string::npos) << rec.state;
    const std::string pins = w0.substr(w0.find("pins=") + 5);
    if (!pins.empty()) saw_pin = true;
    // Replica bookkeeping rides along in the same state blob.
    EXPECT_FALSE(ha::parse_snapshot(rec.state).empty());
  }
  EXPECT_TRUE(saw_worker) << "no cadence tick observed the live worker";
  EXPECT_TRUE(saw_pin)
      << "no cadence tick observed a pinned file during staging";

  // The txn log anchors each snapshot with its digest — the line recovery
  // uses to find the replay tail.
  ASSERT_TRUE(a.observation != nullptr);
  EXPECT_NE(a.observation->txn().text().find("SNAPSHOT"),
            std::string::npos);
}

}  // namespace
}  // namespace hepvine::vine
