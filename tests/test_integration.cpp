// Cross-scheduler integration and property tests: the backbone guarantee
// that real results flow through the simulation unchanged — every
// scheduler, execution paradigm, failure pattern, DAG shape, and cluster
// size must produce the bit-identical physics histogram that a serial
// in-process evaluation produces.
#include <gtest/gtest.h>

#include <memory>

#include "dd/dask_distributed.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"
#include "wq/work_queue.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;

std::unique_ptr<exec::SchedulerBackend> make_scheduler(
    const std::string& name) {
  if (name == "taskvine") return std::make_unique<vine::VineScheduler>();
  if (name == "work-queue") return std::make_unique<wq::WorkQueueScheduler>();
  return std::make_unique<dd::DaskDistScheduler>();
}

class SchedulerEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(SchedulerEquivalence, MatchesSerialReferenceOnDv3) {
  const apps::WorkloadSpec workload = tiny_dv3(32);
  const dag::TaskGraph graph = apps::build_workload(workload, 9);
  cluster::Cluster cluster(tiny_cluster(4));
  exec::RunOptions options = fast_options();
  options.seed = 9;
  auto scheduler = make_scheduler(GetParam());
  const auto report = scheduler->run(graph, cluster, options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST_P(SchedulerEquivalence, MatchesSerialReferenceOnTriphoton) {
  apps::WorkloadSpec workload = with_events(apps::rs_triphoton(), 150);
  workload.process_tasks = 40;
  workload.datasets = 4;
  workload.input_bytes = 10 * util::kGB;
  workload.process_output_bytes = 50 * util::kMB;
  workload.reduce_output_bytes = 50 * util::kMB;
  workload.process_memory = 2 * util::kGB;
  workload.reduce_memory = 2 * util::kGB;
  const dag::TaskGraph graph = apps::build_workload(workload, 11);
  cluster::Cluster cluster(tiny_cluster(4));
  exec::RunOptions options = fast_options();
  options.seed = 11;
  auto scheduler = make_scheduler(GetParam());
  const auto report = scheduler->run(graph, cluster, options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, SchedulerEquivalence,
                         ::testing::Values("taskvine", "work-queue",
                                           "dask.distributed"));

class FailureInjectionSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(FailureInjectionSweep, TaskVineReproducesResultsUnderPreemption) {
  const auto [rate, seed] = GetParam();
  const apps::WorkloadSpec workload = tiny_dv3(32);
  const dag::TaskGraph graph = apps::build_workload(workload, seed);
  cluster::Cluster cluster(tiny_cluster(4, rate, seed));
  exec::RunOptions options = fast_options();
  options.seed = seed;
  options.max_task_retries = 20;
  vine::VineScheduler scheduler;
  const auto report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(sink_digest(report), reference_digest(graph))
      << "preemption rate " << rate << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Rates, FailureInjectionSweep,
    ::testing::Combine(::testing::Values(0.0, 6.0, 20.0, 60.0),
                       ::testing::Values(1u, 2u, 3u)));

class ReductionShapeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReductionShapeSweep, AnyArityMatchesSingleNodeResult) {
  apps::WorkloadSpec tree = tiny_dv3(30);
  tree.reduce_arity = GetParam();
  const dag::TaskGraph tree_graph = apps::build_workload(tree, 13);

  apps::WorkloadSpec flat = tiny_dv3(30);
  flat.reduction = apps::ReductionShape::kSingleNode;
  const dag::TaskGraph flat_graph = apps::build_workload(flat, 13);

  EXPECT_EQ(reference_digest(tree_graph), reference_digest(flat_graph));

  cluster::Cluster cluster(tiny_cluster(4));
  vine::VineScheduler scheduler;
  const auto report = scheduler.run(tree_graph, cluster, fast_options());
  ASSERT_TRUE(report.success);
  EXPECT_EQ(sink_digest(report), reference_digest(flat_graph));
}

INSTANTIATE_TEST_SUITE_P(Arities, ReductionShapeSweep,
                         ::testing::Values(2, 3, 8, 32));

class ClusterSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ClusterSizeSweep, ResultIndependentOfWorkerCount) {
  const apps::WorkloadSpec workload = tiny_dv3(32);
  const dag::TaskGraph graph = apps::build_workload(workload, 21);
  cluster::Cluster cluster(tiny_cluster(GetParam()));
  exec::RunOptions options = fast_options();
  options.seed = 21;
  vine::VineScheduler scheduler;
  const auto report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeSweep,
                         ::testing::Values(1, 2, 5, 12));

TEST(Integration, MoreWorkersNeverSlowTinyWorkloadPathologically) {
  // Sanity on scaling direction at tiny scale: 8 workers should not be
  // slower than 1 worker for an embarrassingly parallel map phase.
  const apps::WorkloadSpec workload = tiny_dv3(48);
  auto run_with = [&](std::uint32_t workers) {
    const dag::TaskGraph graph = apps::build_workload(workload, 2);
    cluster::Cluster cluster(tiny_cluster(workers));
    exec::RunOptions options = fast_options();
    options.seed = 2;
    options.mode = exec::ExecMode::kFunctionCalls;
    vine::VineScheduler scheduler;
    return scheduler.run(graph, cluster, options);
  };
  const auto one = run_with(1);
  const auto eight = run_with(8);
  ASSERT_TRUE(one.success);
  ASSERT_TRUE(eight.success);
  EXPECT_LT(eight.makespan, one.makespan);
}

TEST(Integration, TraceAccountsForEveryTask) {
  const apps::WorkloadSpec workload = tiny_dv3(24);
  const dag::TaskGraph graph = apps::build_workload(workload, 4);
  cluster::Cluster cluster(tiny_cluster(3));
  exec::RunOptions options = fast_options();
  options.seed = 4;
  vine::VineScheduler scheduler;
  const auto report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success);
  // Every task has exactly one successful trace record; timestamps are
  // ordered ready <= dispatched <= started <= finished.
  std::size_t successes = 0;
  for (const auto& rec : report.trace.records()) {
    if (rec.failed) continue;
    ++successes;
    EXPECT_LE(rec.ready_at, rec.dispatched_at);
    EXPECT_LE(rec.dispatched_at, rec.started_at);
    EXPECT_LT(rec.started_at, rec.finished_at);
    EXPECT_GE(rec.worker, 0);
  }
  EXPECT_EQ(successes, graph.size());
}

}  // namespace
}  // namespace hepvine
