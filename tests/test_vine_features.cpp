// Tests for TaskVine extension features: intermediate replication,
// wide-area data streaming, depth-priority scheduling, and automatic
// reduction-arity planning.
#include <gtest/gtest.h>

#include "dag/builders.h"
#include "exec/task_state.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine::vine {
namespace {

using namespace hepvine::testutil;

exec::RunReport run_vine(const apps::WorkloadSpec& workload,
                         const exec::RunOptions& options,
                         std::uint32_t workers = 4,
                         double preempt_per_hour = 0.0) {
  const dag::TaskGraph graph = apps::build_workload(workload, options.seed);
  cluster::Cluster cluster(tiny_cluster(workers, preempt_per_hour,
                                        options.seed));
  VineScheduler scheduler;
  return scheduler.run(graph, cluster, options);
}

// --- intermediate replication -------------------------------------------

TEST(Replication, ExtraCopiesAppearInPeerTraffic) {
  const apps::WorkloadSpec workload = tiny_dv3(24);
  exec::RunOptions single = fast_options();
  single.intermediate_replicas = 1;
  const auto base = run_vine(workload, single);
  ASSERT_TRUE(base.success);

  exec::RunOptions twice = fast_options();
  twice.intermediate_replicas = 2;
  const auto replicated = run_vine(workload, twice);
  ASSERT_TRUE(replicated.success);

  EXPECT_GT(replicated.transfers.peer_bytes(), base.transfers.peer_bytes())
      << "replication must move extra copies between workers";
  EXPECT_EQ(sink_digest(base), sink_digest(replicated));
}

TEST(Replication, ReducesLineageReExecutionUnderPreemption) {
  // Heavy preemption; compare total lineage resets across seeds with and
  // without replication. Replicated runs recover from surviving copies.
  apps::WorkloadSpec workload = tiny_dv3(48);
  std::size_t resets_without = 0;
  std::size_t resets_with = 0;
  for (std::uint64_t seed : {11u, 12u, 13u, 14u}) {
    exec::RunOptions options = fast_options();
    options.seed = seed;
    options.max_task_retries = 40;
    options.intermediate_replicas = 1;
    const auto a = run_vine(workload, options, 4, 120.0);
    ASSERT_TRUE(a.success) << a.failure_reason;
    resets_without += a.lineage_resets;

    options.intermediate_replicas = 3;
    const auto b = run_vine(workload, options, 4, 120.0);
    ASSERT_TRUE(b.success) << b.failure_reason;
    resets_with += b.lineage_resets;
  }
  EXPECT_LE(resets_with, resets_without);
}

TEST(Replication, DisabledWithoutPeerTransfers) {
  apps::WorkloadSpec workload = tiny_dv3(12);
  exec::RunOptions options = fast_options();
  options.intermediate_replicas = 3;
  const dag::TaskGraph graph = apps::build_workload(workload, options.seed);
  cluster::Cluster cluster(tiny_cluster(3));
  DataPolicy policy = taskvine_policy();
  policy.peer_transfers = false;
  VineScheduler scheduler(policy, VineTunables{});
  const auto report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.transfers.peer_bytes(), 0u);
}

// --- wide-area (XRootD) input streaming ----------------------------------

TEST(WanInputs, CorrectButFarSlowerThanLocalStore) {
  // 48 GB of input: ~96 s over the 4 Gbit/s federation ingress, seconds
  // from the local store.
  const apps::WorkloadSpec workload = tiny_dv3(24, 48);
  exec::RunOptions local = fast_options();
  const auto local_report = run_vine(workload, local);
  ASSERT_TRUE(local_report.success);

  exec::RunOptions wan = fast_options();
  wan.inputs_from_wan = true;
  const auto wan_report = run_vine(workload, wan);
  ASSERT_TRUE(wan_report.success);

  EXPECT_EQ(sink_digest(local_report), sink_digest(wan_report));
  EXPECT_GT(wan_report.makespan, 2 * local_report.makespan)
      << "streaming 48 GB from the federation cannot match the local store";
}

// --- depth-priority scheduling -------------------------------------------

TEST(DepthPriority, ReadyReductionsDispatchBeforeReadyMapTasks) {
  // One completed partial group makes a reduce task ready while many map
  // tasks are still queued; the reduce task must dispatch first.
  const apps::WorkloadSpec workload = tiny_dv3(48);
  const dag::TaskGraph graph = apps::build_workload(workload, 5);
  exec::TaskStateTable table(graph);
  // Depths: process = 0, first accumulate level = 1.
  bool saw_reduce_depth = false;
  for (const auto& task : graph.tasks()) {
    if (task.spec.category == "accumulate") {
      EXPECT_GE(table.depth(task.id), 1u);
      saw_reduce_depth = true;
    } else {
      EXPECT_EQ(table.depth(task.id), 0u);
    }
  }
  EXPECT_TRUE(saw_reduce_depth);

  // Complete the first 8 process tasks -> their accumulator becomes ready
  // and must pop before the remaining process tasks.
  for (int i = 0; i < 8; ++i) {
    const dag::TaskId t = table.pop_ready();
    ASSERT_LT(t, 8);
    table.mark_dispatched(t, 0, 0);
    table.mark_done(t, std::make_shared<dag::ScalarValue>(1.0), 0);
  }
  const dag::TaskId next = table.pop_ready();
  EXPECT_EQ(graph.task(next).spec.category, "accumulate");
}

TEST(DepthPriority, BoundsStandingIntermediatesOnSmallClusters) {
  // DV3-like workload whose total intermediates exceed total disk: only
  // eager reduction (plus pruning, plus waiting for space instead of
  // over-committing) lets it complete on few workers.
  apps::WorkloadSpec workload = tiny_dv3(96, 10);
  workload.process_output_bytes = 4 * util::kGB;  // 384 GB of partials
  workload.reduce_output_bytes = 4 * util::kGB;
  workload.reduce_arity = 4;
  exec::RunOptions options = fast_options();
  options.max_task_retries = 10;
  const auto report = run_vine(workload, options, 3);  // 324 GB total disk
  EXPECT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.worker_crashes, 0u);
}

// --- dispatch fallback ranking -------------------------------------------

TEST(DispatchFallback, OverflowDispatchSparesWorkerWithCommittedBytes) {
  // A task whose footprint exceeds every scratch disk is dispatched anyway
  // (the overflow surfaces as the worker failure it would be in
  // production). The sacrificial dispatch must go to the worker with the
  // most *uncommitted* headroom: ranking by raw disk.available() would
  // crown the worker whose free space is already promised to an in-flight
  // attempt, and the overflow would take that attempt down with it.
  dag::TaskGraph graph;
  const auto scalar = [](double v) {
    return [v](const std::vector<dag::ValuePtr>&) {
      return std::make_shared<dag::ScalarValue>(v);
    };
  };
  // Long-running task with a large declared output: its worker's disk
  // looks empty (output not written yet) but 90 GB of it is committed.
  dag::TaskSpec blob;
  blob.category = "blob";
  blob.cpu_seconds = 300;
  blob.output_bytes = 90 * util::kGB;
  blob.memory_bytes = 60 * util::kGB;  // blob+small can't share a worker
  blob.fn = scalar(1.0);
  const dag::TaskId t_blob = graph.add_task(blob);

  // Quick task leaving a 20 GB output resident: its worker has less raw
  // free space than the blob's, but far more uncommitted headroom.
  dag::TaskSpec small;
  small.category = "small";
  small.cpu_seconds = 0.1;
  small.output_bytes = 20 * util::kGB;
  small.memory_bytes = 60 * util::kGB;
  small.fn = scalar(2.0);
  const dag::TaskId t_small = graph.add_task(small);

  // Doomed: 120 GB output can never fit a 108 GB disk.
  dag::TaskSpec doomed;
  doomed.category = "doomed";
  doomed.deps = {t_small};
  doomed.cpu_seconds = 0.1;
  doomed.output_bytes = 120 * util::kGB;
  doomed.memory_bytes = 2 * util::kGB;
  doomed.fn = scalar(3.0);
  const dag::TaskId t_doomed = graph.add_task(doomed);

  exec::RunOptions options = fast_options();
  options.max_task_retries = 0;  // first overflow ends the run
  cluster::Cluster cluster(tiny_cluster(2));
  VineScheduler scheduler;
  const auto report = scheduler.run(graph, cluster, options);

  ASSERT_FALSE(report.success);
  EXPECT_EQ(report.worker_crashes, 1u);
  const metrics::TaskRecord* small_rec = nullptr;
  const metrics::TaskRecord* doomed_rec = nullptr;
  bool blob_failed = false;
  for (const auto& rec : report.trace.records()) {
    if (rec.task_id == t_small && !rec.failed) small_rec = &rec;
    if (rec.task_id == t_doomed) doomed_rec = &rec;
    if (rec.task_id == t_blob && rec.failed) blob_failed = true;
  }
  ASSERT_NE(small_rec, nullptr);
  ASSERT_NE(doomed_rec, nullptr);
  EXPECT_TRUE(doomed_rec->failed);
  // The sacrifice lands next to the resident 20 GB (88 GB of real
  // headroom), not on the blob's worker (108 GB free on paper, 18 GB net
  // of its commitment).
  EXPECT_EQ(doomed_rec->worker, small_rec->worker);
  // And the blob, whose disk promise the ranking respected, is untouched.
  EXPECT_FALSE(blob_failed);
}

// --- automatic arity planning --------------------------------------------

TEST(ArityPlanner, RespectsDiskBudget) {
  // 10 GB partials on a 108 GB disk with a 25% budget: 27 GB / 10 GB ->
  // at most 1 output + 1 input colocated... arity clamps to the minimum.
  EXPECT_EQ(dag::choose_reduction_arity(10 * util::kGB, 108 * util::kGB,
                                        1000),
            2u);
  // 1 GB partials: 27 files fit; arity 26 (leave room for the output).
  EXPECT_EQ(dag::choose_reduction_arity(util::kGB, 108 * util::kGB, 1000),
            26u);
}

TEST(ArityPlanner, ClampsToInputCountAndMinimum) {
  EXPECT_EQ(dag::choose_reduction_arity(util::kMB, 108 * util::kGB, 5), 5u);
  EXPECT_EQ(dag::choose_reduction_arity(0, 108 * util::kGB, 500), 500u);
  EXPECT_EQ(dag::choose_reduction_arity(500 * util::kGB, 108 * util::kGB,
                                        100),
            2u);
}

TEST(ArityPlanner, PlannedTreeCompletesWhereSingleNodeCannot) {
  apps::WorkloadSpec workload = tiny_dv3(30);
  workload.process_output_bytes = 12 * util::kGB;
  workload.reduce_output_bytes = 12 * util::kGB;
  workload.reduce_arity = dag::choose_reduction_arity(
      workload.process_output_bytes, 108 * util::kGB, 30);
  const auto report = run_vine(workload, fast_options(), 6);
  EXPECT_TRUE(report.success) << report.failure_reason;
}

}  // namespace
}  // namespace hepvine::vine
