// Differential harness for the incremental max-min recompute: every
// scheduler backend, run end-to-end over fault schedules from the
// adversarial matrix, must produce bit-identical results whether the
// network uses the incremental component recompute or the reference full
// recompute — same makespan, same counters, same physics histogram
// digest, and the exact same transactions log text.
//
// This is the acceptance gate for NetworkOptions::incremental_recompute:
// the optimization must be observationally invisible.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dd/dask_distributed.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"
#include "wq/work_queue.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;
using util::Tick;

std::unique_ptr<exec::SchedulerBackend> make_scheduler(
    const std::string& name) {
  if (name == "taskvine") return std::make_unique<vine::VineScheduler>();
  if (name == "work-queue") return std::make_unique<wq::WorkQueueScheduler>();
  return std::make_unique<dd::DaskDistScheduler>();
}

class NetDifferential : public ::testing::TestWithParam<const char*> {
 protected:
  dag::TaskGraph graph_ = apps::build_workload(tiny_dv3(24), 31);

  exec::RunOptions base_options() const {
    exec::RunOptions options = fast_options();
    options.seed = 31;
    options.max_task_retries = 30;
    // Txn logging on, so the bit-identity check covers every logged
    // transition, not just the end-of-run aggregates.
    options.observability.enabled = true;
    options.observability.txn_log = true;
    return options;
  }

  exec::RunReport run(const exec::RunOptions& options, bool incremental,
                      std::uint32_t workers = 4,
                      double preempt_per_hour = 0.0) const {
    auto spec = tiny_cluster(workers, preempt_per_hour);
    spec.net.incremental_recompute = incremental;
    cluster::Cluster cluster(spec);
    return make_scheduler(GetParam())->run(graph_, cluster, options);
  }

  /// Run the same schedule under both recompute paths and require the
  /// outcomes to be indistinguishable.
  void expect_paths_identical(const exec::RunOptions& options,
                              std::uint32_t workers = 4,
                              double preempt_per_hour = 0.0) const {
    const auto inc = run(options, true, workers, preempt_per_hour);
    const auto ref = run(options, false, workers, preempt_per_hour);
    ASSERT_TRUE(inc.success) << inc.failure_reason;
    ASSERT_TRUE(ref.success) << ref.failure_reason;
    EXPECT_EQ(sink_digest(inc), reference_digest(graph_));
    EXPECT_EQ(sink_digest(inc), sink_digest(ref));
    EXPECT_EQ(inc.makespan, ref.makespan);
    EXPECT_EQ(inc.task_attempts, ref.task_attempts);
    EXPECT_EQ(inc.lineage_resets, ref.lineage_resets);
    EXPECT_EQ(inc.worker_crashes, ref.worker_crashes);
    EXPECT_EQ(inc.faults.faults_injected, ref.faults.faults_injected);
    EXPECT_EQ(inc.faults.worker_crashes, ref.faults.worker_crashes);
    EXPECT_EQ(inc.faults.cache_losses, ref.faults.cache_losses);
    EXPECT_EQ(inc.faults.transfers_killed, ref.faults.transfers_killed);
    EXPECT_EQ(inc.faults.transfer_retries, ref.faults.transfer_retries);
    EXPECT_EQ(inc.faults.backoff_wait, ref.faults.backoff_wait);
    ASSERT_NE(inc.observation, nullptr);
    ASSERT_NE(ref.observation, nullptr);
    EXPECT_EQ(inc.observation->txn().text(), ref.observation->txn().text());
  }

  /// Fault-free probe (incremental path) to time faults relative to; both
  /// paths see the same schedule, so which path probes is immaterial.
  Tick probe_makespan() const {
    const auto report = run(base_options(), true);
    EXPECT_TRUE(report.success) << report.failure_reason;
    return report.makespan;
  }
};

TEST_P(NetDifferential, CleanRun) {
  expect_paths_identical(base_options());
}

TEST_P(NetDifferential, MidTransferKillStorm) {
  const Tick makespan = probe_makespan();
  exec::RunOptions options = base_options();
  for (int i = 1; i <= 8; ++i) {
    options.faults.kill_transfers(makespan * i / 12, 2);
  }
  expect_paths_identical(options);
}

TEST_P(NetDifferential, OutageBrownoutAndCrashCombo) {
  const Tick makespan = probe_makespan();
  exec::RunOptions options = base_options();
  options.faults.fs_outage(util::seconds(2), util::seconds(20))
      .fs_brownout(makespan / 2, makespan / 4, 0.25)
      .kill_transfers(makespan * 2 / 3, 3)
      .crash_worker(makespan / 3, 2);
  expect_paths_identical(options);
}

TEST_P(NetDifferential, StochasticChaosWithBatchPreemption) {
  exec::RunOptions options = base_options();
  options.faults.stochastic.transfer_kill_prob = 0.05;
  options.faults.stochastic.worker_crash_rate_per_hour = 30.0;
  options.faults.seed = 13;
  expect_paths_identical(options, 4, 20.0);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, NetDifferential,
                         ::testing::Values("taskvine", "work-queue",
                                           "dask.distributed"));

}  // namespace
}  // namespace hepvine
