#include "hep/histogram.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace hepvine::hep {
namespace {

TEST(Histogram, ConstructionValidates) {
  EXPECT_THROW(Histogram1D(0, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(Histogram1D(10, 2.0, 1.0), std::invalid_argument);
  EXPECT_NO_THROW(Histogram1D(10, 0.0, 1.0));
}

TEST(Histogram, FillLandsInCorrectBin) {
  Histogram1D h(10, 0.0, 10.0);
  h.fill(0.5);
  h.fill(9.99);
  h.fill(5.0);
  EXPECT_DOUBLE_EQ(h.bin_content(0), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_content(9), 1.0);
  EXPECT_DOUBLE_EQ(h.bin_content(5), 1.0);
  EXPECT_EQ(h.entries(), 3u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram1D h(10, 0.0, 10.0);
  h.fill(-1.0);
  h.fill(10.0);  // hi edge is exclusive
  h.fill(100.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 2.0);
  EXPECT_DOUBLE_EQ(h.integral(), 3.0);
}

TEST(Histogram, WeightsQuantizedTo1024ths) {
  Histogram1D h(4, 0.0, 4.0);
  h.fill(1.0, 0.10009765625);  // exactly 102.5/1024 -> rounds to 103/1024
  EXPECT_DOUBLE_EQ(h.bin_content(1) * 1024.0,
                   std::round(h.bin_content(1) * 1024.0));
}

TEST(Histogram, MergeAddsBinwise) {
  Histogram1D a(4, 0.0, 4.0);
  Histogram1D b(4, 0.0, 4.0);
  a.fill(0.5);
  b.fill(0.5);
  b.fill(3.5, 2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.bin_content(0), 2.0);
  EXPECT_DOUBLE_EQ(a.bin_content(3), 2.0);
  EXPECT_EQ(a.entries(), 3u);
}

TEST(Histogram, MergeRejectsDifferentBinning) {
  Histogram1D a(4, 0.0, 4.0);
  Histogram1D b(8, 0.0, 4.0);
  a.fill(1);
  b.fill(1);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Histogram, MergeIntoDefaultAdoptsBinning) {
  Histogram1D a;  // default-constructed (empty)
  Histogram1D b(4, 0.0, 4.0);
  b.fill(2.0);
  a.merge(b);
  EXPECT_EQ(a.bins(), 4u);
  EXPECT_DOUBLE_EQ(a.bin_content(2), 1.0);
}

TEST(Histogram, MeanOfSymmetricFillIsCenter) {
  Histogram1D h(100, 0.0, 10.0);
  h.fill(2.0);
  h.fill(8.0);
  EXPECT_NEAR(h.mean(), 5.0, 0.1);
}

TEST(Histogram, MergeIsExactlyAssociativeAndCommutative) {
  // Weight quantization makes merge order irrelevant bit-for-bit.
  sim::Rng rng(99);
  std::vector<Histogram1D> parts;
  for (int p = 0; p < 12; ++p) {
    Histogram1D h(50, 0.0, 100.0);
    for (int i = 0; i < 1000; ++i) {
      h.fill(rng.uniform(0.0, 110.0), rng.uniform(0.0, 2.0));
    }
    parts.push_back(std::move(h));
  }
  // Left fold.
  Histogram1D left = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) left.merge(parts[i]);
  // Reverse fold.
  Histogram1D right = parts.back();
  for (std::size_t i = parts.size() - 1; i-- > 0;) right.merge(parts[i]);
  // Pairwise tree.
  std::vector<Histogram1D> level = parts;
  while (level.size() > 1) {
    std::vector<Histogram1D> next;
    for (std::size_t i = 0; i < level.size(); i += 2) {
      Histogram1D merged = level[i];
      if (i + 1 < level.size()) merged.merge(level[i + 1]);
      next.push_back(std::move(merged));
    }
    level = std::move(next);
  }
  EXPECT_EQ(left, right);
  EXPECT_EQ(left, level[0]);
}

TEST(HistogramSet, GetCreatesOnce) {
  HistogramSet set;
  Histogram1D& a = set.get("met", 10, 0, 100);
  a.fill(50);
  const Histogram1D& again = set.get("met");
  EXPECT_DOUBLE_EQ(again.bin_content(5), 1.0);
  EXPECT_EQ(set.count(), 1u);
}

TEST(HistogramSet, FindReturnsNullForMissing) {
  HistogramSet set;
  EXPECT_EQ(set.find("nope"), nullptr);
}

TEST(HistogramSet, MergeUnionsNames) {
  HistogramSet a;
  a.get("x", 4, 0, 4).fill(1);
  HistogramSet b;
  b.get("x", 4, 0, 4).fill(1);
  b.get("y", 4, 0, 4).fill(2);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.find("x")->bin_content(1), 2.0);
  EXPECT_DOUBLE_EQ(a.find("y")->bin_content(2), 1.0);
}

TEST(HistogramSet, DigestDetectsAnyChange) {
  HistogramSet a;
  a.get("x", 4, 0, 4).fill(1);
  HistogramSet b;
  b.get("x", 4, 0, 4).fill(1);
  EXPECT_EQ(a.digest(), b.digest());
  b.get("x").fill(2);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(HistogramSet, MergeValuesComputeFn) {
  auto p1 = std::make_shared<HistogramSet>();
  p1->get("m", 4, 0, 4).fill(1);
  auto p2 = std::make_shared<HistogramSet>();
  p2->get("m", 4, 0, 4).fill(2);
  const dag::ValuePtr merged = HistogramSet::merge_values({p1, p2});
  const auto& set = dynamic_cast<const HistogramSet&>(*merged);
  EXPECT_DOUBLE_EQ(set.find("m")->integral(), 2.0);
}

TEST(HistogramSet, MergeValuesRejectsWrongType) {
  const dag::ValuePtr bogus = std::make_shared<dag::ScalarValue>(1.0);
  EXPECT_THROW(HistogramSet::merge_values({bogus}), std::invalid_argument);
}

TEST(HistogramSet, MergeValuesSkipsNull) {
  auto p1 = std::make_shared<HistogramSet>();
  p1->get("m", 4, 0, 4).fill(1);
  const dag::ValuePtr merged = HistogramSet::merge_values({nullptr, p1});
  EXPECT_DOUBLE_EQ(
      dynamic_cast<const HistogramSet&>(*merged).find("m")->integral(), 1.0);
}

TEST(HistogramSet, ByteSizeGrowsWithContent) {
  HistogramSet set;
  const auto empty = set.byte_size();
  set.get("big", 1000, 0, 1);
  EXPECT_GT(set.byte_size(), empty + 1000 * sizeof(double) - 1);
}

}  // namespace
}  // namespace hepvine::hep
