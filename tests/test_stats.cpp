// Tests for the statistics helpers added on top of the core metrics/hep
// modules: per-category trace statistics, chi-squared histogram
// compatibility, and manager-utilization reporting.
#include <gtest/gtest.h>

#include "hep/events.h"
#include "hep/histogram.h"
#include "hep/processors.h"
#include "metrics/task_trace.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;
using util::seconds;

metrics::TaskRecord make_record(const char* category, double exec_sec,
                                bool failed = false) {
  metrics::TaskRecord r;
  r.category = category;
  r.started_at = 0;
  r.finished_at = seconds(exec_sec);
  r.failed = failed;
  return r;
}

TEST(CategoryStats, ComputesPerCategoryQuantiles) {
  metrics::TaskTrace trace;
  for (double t : {1.0, 2.0, 3.0, 4.0, 100.0}) {
    trace.add(make_record("process", t));
  }
  trace.add(make_record("accumulate", 10.0));
  trace.add(make_record("process", 999.0, /*failed=*/true));  // excluded

  const auto stats = trace.category_stats();
  ASSERT_EQ(stats.size(), 2u);
  const auto& process = stats.at("process");
  EXPECT_EQ(process.count, 5u);
  EXPECT_DOUBLE_EQ(process.mean_sec, 22.0);
  EXPECT_DOUBLE_EQ(process.median_sec, 3.0);
  EXPECT_DOUBLE_EQ(process.max_sec, 100.0);
  EXPECT_DOUBLE_EQ(stats.at("accumulate").mean_sec, 10.0);
}

TEST(CategoryStats, EmptyTraceYieldsNothing) {
  metrics::TaskTrace trace;
  EXPECT_TRUE(trace.category_stats().empty());
}

TEST(Chi2, IdenticalHistogramsAreZero) {
  hep::Histogram1D a(20, 0, 10);
  for (int i = 0; i < 100; ++i) a.fill(i % 10 + 0.5);
  EXPECT_DOUBLE_EQ(hep::chi2_per_dof(a, a), 0.0);
}

TEST(Chi2, RequiresMatchingBinning) {
  hep::Histogram1D a(10, 0, 10);
  hep::Histogram1D b(20, 0, 10);
  EXPECT_THROW((void)hep::chi2_per_dof(a, b), std::invalid_argument);
}

TEST(Chi2, IndependentSeedsAreStatisticallyCompatible) {
  // Two disjoint synthetic datasets of the same physics must agree within
  // Poisson fluctuations: chi2/dof ~ 1.
  const hep::HistogramSet a =
      hep::dv3_process(hep::generate_chunk(101, 60'000));
  const hep::HistogramSet b =
      hep::dv3_process(hep::generate_chunk(202, 60'000));
  const double chi2 = hep::chi2_per_dof(*a.find("met"), *b.find("met"));
  EXPECT_GT(chi2, 0.2);
  EXPECT_LT(chi2, 2.0);
}

TEST(Chi2, DetectsDifferentPhysics) {
  hep::Histogram1D met_like(50, 0, 200);
  hep::Histogram1D flat(50, 0, 200);
  sim::Rng rng(9);
  for (int i = 0; i < 20'000; ++i) {
    met_like.fill(rng.exponential(35.0));
    flat.fill(rng.uniform(0.0, 200.0));
  }
  EXPECT_GT(hep::chi2_per_dof(met_like, flat), 10.0);
}

TEST(ManagerUtilization, StandardTasksBusierThanFunctionCalls) {
  const apps::WorkloadSpec workload = tiny_dv3(96);
  auto run_mode = [&](exec::ExecMode mode) {
    const dag::TaskGraph graph = apps::build_workload(workload, 7);
    cluster::Cluster cluster(tiny_cluster(8));
    exec::RunOptions options = fast_options();
    options.seed = 7;
    options.mode = mode;
    vine::VineScheduler scheduler;
    return scheduler.run(graph, cluster, options);
  };
  const auto standard = run_mode(exec::ExecMode::kStandardTasks);
  const auto serverless = run_mode(exec::ExecMode::kFunctionCalls);
  ASSERT_TRUE(standard.success);
  ASSERT_TRUE(serverless.success);
  EXPECT_GT(standard.manager_busy_fraction,
            serverless.manager_busy_fraction)
      << "standard tasks cost the manager far more per task";
  EXPECT_GT(standard.manager_busy_fraction, 0.0);
  EXPECT_LE(standard.manager_busy_fraction, 1.0);
}

}  // namespace
}  // namespace hepvine
