#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace hepvine::sim {
namespace {

TEST(Engine, StartsAtTimeZero) {
  Engine engine;
  EXPECT_EQ(engine.now(), 0);
  EXPECT_FALSE(engine.step());
}

TEST(Engine, EventsFireInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&] { order.push_back(3); });
  engine.schedule_at(10, [&] { order.push_back(1); });
  engine.schedule_at(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(Engine, TiesBreakByScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine engine;
  util::Tick fired_at = -1;
  engine.schedule_at(100, [&] {
    engine.schedule_after(50, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Engine, PastEventsClampToNow) {
  Engine engine;
  util::Tick fired_at = -1;
  engine.schedule_at(100, [&] {
    engine.schedule_at(10, [&] { fired_at = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Engine, NegativeDelayClampsToZero) {
  Engine engine;
  bool fired = false;
  engine.schedule_after(-5, [&] { fired = true; });
  engine.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(engine.now(), 0);
}

TEST(Engine, CancelledEventsDoNotFire) {
  Engine engine;
  bool fired = false;
  auto handle = engine.schedule_at(10, [&] { fired = true; });
  handle.cancel();
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(engine.executed(), 0u);
}

TEST(Engine, CancelIsIdempotentAndSafeAfterFire) {
  Engine engine;
  auto handle = engine.schedule_at(1, [] {});
  engine.run();
  handle.cancel();  // already fired: harmless
  handle.cancel();
}

TEST(Engine, PendingReflectsLifecycle) {
  Engine engine;
  auto handle = engine.schedule_at(10, [] {});
  EXPECT_TRUE(handle.pending());
  engine.run();
  EXPECT_FALSE(handle.pending());
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine engine;
  std::vector<util::Tick> fired;
  for (util::Tick t = 10; t <= 100; t += 10) {
    engine.schedule_at(t, [&fired, &engine] { fired.push_back(engine.now()); });
  }
  const std::size_t count = engine.run_until(50);
  EXPECT_EQ(count, 5u);
  EXPECT_EQ(engine.now(), 50);
  engine.run();
  EXPECT_EQ(fired.size(), 10u);
}

TEST(Engine, RunUntilAdvancesTimeWhenIdle) {
  Engine engine;
  engine.run_until(1000);
  EXPECT_EQ(engine.now(), 1000);
}

TEST(Engine, EventsScheduledDuringRunExecute) {
  Engine engine;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) engine.schedule_after(1, recurse);
  };
  engine.schedule_at(0, recurse);
  engine.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(engine.now(), 4);
}

TEST(Engine, MassCancellationDoesNotAccumulateTombstones) {
  // The flow network cancels and reschedules completion events constantly;
  // the queue must compact cancelled entries instead of hoarding them.
  Engine engine;
  for (int round = 0; round < 50; ++round) {
    std::vector<Engine::EventHandle> handles;
    handles.reserve(2000);
    for (int i = 0; i < 2000; ++i) {
      handles.push_back(engine.schedule_at(1'000'000'000, [] {}));
    }
    for (auto& h : handles) h.cancel();
  }
  // 100k cancelled entries were scheduled; compaction keeps the queue far
  // smaller than that.
  EXPECT_LT(engine.pending(), 20'000u);
  int fired = 0;
  engine.schedule_at(5, [&] { ++fired; });
  engine.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, CancelledThenPurgedEventsNeverFire) {
  Engine engine;
  bool bad = false;
  std::vector<Engine::EventHandle> handles;
  for (int i = 0; i < 10'000; ++i) {
    handles.push_back(engine.schedule_at(100, [&] { bad = true; }));
  }
  for (auto& h : handles) h.cancel();
  for (int i = 0; i < 10'000; ++i) {
    engine.schedule_at(50, [] {});  // trigger compaction
  }
  engine.run();
  EXPECT_FALSE(bad);
}

TEST(Engine, ExecutedCountsOnlyFiredEvents) {
  Engine engine;
  engine.schedule_at(1, [] {});
  auto cancelled = engine.schedule_at(2, [] {});
  cancelled.cancel();
  engine.run();
  EXPECT_EQ(engine.executed(), 1u);
}

}  // namespace
}  // namespace hepvine::sim
