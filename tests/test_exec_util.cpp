#include <gtest/gtest.h>

#include "exec/serial_resource.h"
#include "net/flow_gate.h"
#include "sim/engine.h"

namespace hepvine {
namespace {

using util::Tick;

TEST(SerialResource, ServesFifoWithQueueing) {
  sim::Engine engine;
  exec::SerialResource res(engine);
  std::vector<Tick> done;
  res.acquire_then(util::seconds(1), [&] { done.push_back(engine.now()); });
  res.acquire_then(util::seconds(2), [&] { done.push_back(engine.now()); });
  res.acquire_then(util::seconds(1), [&] { done.push_back(engine.now()); });
  engine.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], util::seconds(1));
  EXPECT_EQ(done[1], util::seconds(3));
  EXPECT_EQ(done[2], util::seconds(4));
}

TEST(SerialResource, IdleGapsDoNotAccumulate) {
  sim::Engine engine;
  exec::SerialResource res(engine);
  Tick done = 0;
  engine.schedule_at(util::seconds(10), [&] {
    res.acquire_then(util::seconds(1), [&] { done = engine.now(); });
  });
  engine.run();
  EXPECT_EQ(done, util::seconds(11));
}

TEST(SerialResource, BacklogReflectsQueuedWork) {
  sim::Engine engine;
  exec::SerialResource res(engine);
  res.acquire(util::seconds(5));
  EXPECT_EQ(res.backlog(), util::seconds(5));
  EXPECT_EQ(res.total_busy_time(), util::seconds(5));
  EXPECT_EQ(res.operations(), 1u);
  engine.run_until(util::seconds(2));
  EXPECT_EQ(res.backlog(), util::seconds(3));
}

TEST(FlowGate, LimitsConcurrency) {
  net::FlowGate gate(2);
  std::vector<net::FlowGate::SlotToken> held;
  int started = 0;
  for (int i = 0; i < 5; ++i) {
    gate.submit([&](net::FlowGate::SlotToken token) {
      ++started;
      held.push_back(std::move(token));
    });
  }
  EXPECT_EQ(started, 2);
  EXPECT_EQ(gate.active(), 2u);
  EXPECT_EQ(gate.queued(), 3u);
  // Release one slot (move the token out first: releasing admits a new
  // starter that appends to `held`, so never destroy in-place).
  auto release_one = [&held] {
    net::FlowGate::SlotToken token = std::move(held.front());
    held.erase(held.begin());
    token.reset();
  };
  release_one();
  EXPECT_EQ(started, 3);
  while (!held.empty()) release_one();
  EXPECT_EQ(started, 5);
  EXPECT_EQ(gate.active(), 0u);
}

TEST(FlowGate, DroppingTokenInsideStarterAdmitsNext) {
  net::FlowGate gate(1);
  int ran = 0;
  for (int i = 0; i < 100; ++i) {
    gate.submit([&](net::FlowGate::SlotToken) { ++ran; });  // drop at once
  }
  EXPECT_EQ(ran, 100) << "synchronous drops must drain the queue iteratively";
  EXPECT_EQ(gate.active(), 0u);
}

TEST(FlowGate, UnboundedRunsImmediately) {
  net::FlowGate gate(0);
  int ran = 0;
  std::vector<net::FlowGate::SlotToken> held;
  for (int i = 0; i < 10; ++i) {
    gate.submit([&](net::FlowGate::SlotToken token) {
      ++ran;
      held.push_back(std::move(token));
    });
  }
  EXPECT_EQ(ran, 10);
}

TEST(FlowGate, TokensOutliveGateObject) {
  net::FlowGate::SlotToken survivor;
  {
    net::FlowGate gate(1);
    gate.submit([&](net::FlowGate::SlotToken token) {
      survivor = std::move(token);
    });
  }
  survivor.reset();  // must not touch freed memory (state is shared-owned)
  SUCCEED();
}

TEST(FlowGate, CopiedTokensHoldTheSlotUntilLastCopyDies) {
  net::FlowGate gate(1);
  int started = 0;
  net::FlowGate::SlotToken a;
  gate.submit([&](net::FlowGate::SlotToken token) {
    ++started;
    a = token;  // copy
  });
  net::FlowGate::SlotToken b = a;
  gate.submit([&](net::FlowGate::SlotToken) { ++started; });
  EXPECT_EQ(started, 1);
  a.reset();
  EXPECT_EQ(started, 1) << "second copy still holds the slot";
  b.reset();
  EXPECT_EQ(started, 2);
}

}  // namespace
}  // namespace hepvine
