// Fault-injection subsystem tests: RetryPolicy/FaultSchedule units, the
// crash double-count regression, exact chained lineage-reset accounting,
// the poisoned-task detector, relay retry when the source dies, and the
// zero-cost-when-off guarantee (empty schedule => byte-identical txn log).
#include <gtest/gtest.h>

#include <string>

#include "fault/backoff_ledger.h"
#include "fault/fault_schedule.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;
using util::Tick;

// --- RetryPolicy / FaultSchedule units -----------------------------------

TEST(RetryPolicy, BackoffIsCappedExponential) {
  fault::RetryPolicy policy;
  policy.backoff_base = 100 * util::kMsec;
  policy.backoff_multiplier = 2.0;
  policy.backoff_cap = 5 * util::kSec;
  EXPECT_EQ(policy.backoff(1), 100 * util::kMsec);
  EXPECT_EQ(policy.backoff(2), 200 * util::kMsec);
  EXPECT_EQ(policy.backoff(3), 400 * util::kMsec);
  EXPECT_EQ(policy.backoff(6), 3200 * util::kMsec);
  // 100ms * 2^6 = 6.4 s: capped.
  EXPECT_EQ(policy.backoff(7), 5 * util::kSec);
  EXPECT_EQ(policy.backoff(30), 5 * util::kSec);
}

TEST(FaultSchedule, BuildersFillEventFields) {
  fault::FaultSchedule schedule;
  schedule.crash_worker(util::seconds(1), 3)
      .lose_cached_file(util::seconds(2), -1, 17)
      .kill_transfers(util::seconds(3), 4)
      .fs_brownout(util::seconds(4), util::seconds(10), 0.25)
      .fs_outage(util::seconds(5), util::seconds(2))
      .straggler(util::seconds(6), 1, 8.0, util::seconds(30));
  ASSERT_EQ(schedule.events.size(), 6u);
  EXPECT_EQ(schedule.events[0].kind, fault::FaultKind::kWorkerCrash);
  EXPECT_EQ(schedule.events[0].worker, 3);
  EXPECT_EQ(schedule.events[1].kind, fault::FaultKind::kCacheLoss);
  EXPECT_EQ(schedule.events[1].worker, -1);
  EXPECT_EQ(schedule.events[1].file, 17);
  EXPECT_EQ(schedule.events[2].kind, fault::FaultKind::kTransferKill);
  EXPECT_EQ(schedule.events[2].count, 4u);
  EXPECT_EQ(schedule.events[3].kind, fault::FaultKind::kFsDegrade);
  EXPECT_DOUBLE_EQ(schedule.events[3].factor, 0.25);
  EXPECT_EQ(schedule.events[3].duration, util::seconds(10));
  EXPECT_EQ(schedule.events[4].kind, fault::FaultKind::kFsDegrade);
  EXPECT_DOUBLE_EQ(schedule.events[4].factor, 0.0);  // outage = zero bw
  EXPECT_EQ(schedule.events[5].kind, fault::FaultKind::kStraggler);
  EXPECT_DOUBLE_EQ(schedule.events[5].factor, 8.0);
}

TEST(FaultSchedule, ManagerCrashBuilderFillsEventFields) {
  fault::FaultSchedule schedule;
  schedule.crash_manager(util::seconds(9));
  ASSERT_EQ(schedule.events.size(), 1u);
  EXPECT_EQ(schedule.events[0].kind, fault::FaultKind::kManagerCrash);
  EXPECT_EQ(schedule.events[0].at, util::seconds(9));
  EXPECT_FALSE(schedule.empty());
}

TEST(BackoffLedger, EscalatesPerKeyAndResetsOnSuccess) {
  // Regression (sticky escalation): the raw per-file counters this class
  // replaced were never cleared on success, so a later, independent failure
  // of the same file inherited the earlier episode's escalation. reset()
  // must make the next failure a fresh attempt 1.
  fault::BackoffLedger<std::int64_t> ledger;
  EXPECT_TRUE(ledger.empty());
  EXPECT_EQ(ledger.attempts(7), 0u);
  EXPECT_EQ(ledger.next_attempt(7), 1u);
  EXPECT_EQ(ledger.next_attempt(7), 2u);
  EXPECT_EQ(ledger.next_attempt(9), 1u);  // keys escalate independently
  EXPECT_EQ(ledger.attempts(7), 2u);
  EXPECT_EQ(ledger.size(), 2u);
  ledger.reset(7);
  EXPECT_EQ(ledger.attempts(7), 0u);
  EXPECT_EQ(ledger.next_attempt(7), 1u);  // fresh episode, not 3
  ledger.reset(42);  // resetting an unknown key is a no-op
  EXPECT_EQ(ledger.size(), 2u);
}

TEST(BackoffLedger, VisitsOpenEpisodesInKeyOrder) {
  // Snapshot serialization (ha/snapshot.h) depends on a deterministic
  // visitation order regardless of insertion order.
  fault::BackoffLedger<std::int64_t> ledger;
  ledger.next_attempt(30);
  ledger.next_attempt(10);
  ledger.next_attempt(20);
  ledger.next_attempt(10);
  std::string seen;
  ledger.for_each([&seen](std::int64_t key, std::uint32_t attempts) {
    seen += std::to_string(key) + ":" + std::to_string(attempts) + " ";
  });
  EXPECT_EQ(seen, "10:2 20:1 30:1 ");
}

TEST(FaultSchedule, EmptyDetection) {
  fault::FaultSchedule schedule;
  EXPECT_TRUE(schedule.empty());
  schedule.stochastic.transfer_kill_prob = 0.1;
  EXPECT_FALSE(schedule.empty());
  schedule.stochastic.transfer_kill_prob = 0.0;
  schedule.crash_worker(util::seconds(1), 0);
  EXPECT_FALSE(schedule.empty());
}

// --- end-to-end regressions ----------------------------------------------

/// Successful trace record for `t`, or nullptr.
const metrics::TaskRecord* find_success(const exec::RunReport& report,
                                        dag::TaskId t) {
  for (const auto& rec : report.trace.records()) {
    if (rec.task_id == t && !rec.failed) return &rec;
  }
  return nullptr;
}

exec::RunReport run_vine(const dag::TaskGraph& graph,
                         const exec::RunOptions& options,
                         std::uint32_t workers) {
  cluster::Cluster cluster(tiny_cluster(workers));
  vine::VineScheduler scheduler;
  return scheduler.run(graph, cluster, options);
}

TEST(VineFaults, DuplicateCrashRequestsCountOnce) {
  // Regression (double-crash window): a second crash request for the same
  // worker — same tick or while its forced preemption is still in flight —
  // must be a no-op, not a second counted crash.
  const apps::WorkloadSpec workload = tiny_dv3(24);
  const dag::TaskGraph graph = apps::build_workload(workload, 5);
  exec::RunOptions options = fast_options();
  options.max_task_retries = 20;

  const auto probe = run_vine(graph, options, 4);
  ASSERT_TRUE(probe.success) << probe.failure_reason;

  const Tick mid = probe.makespan / 2;
  options.faults.crash_worker(mid, 0)
      .crash_worker(mid, 0)                  // same tick duplicate
      .crash_worker(mid + util::kMsec, 0);   // inside the teardown window
  const auto report = run_vine(graph, options, 4);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.worker_crashes, 1u);
  EXPECT_EQ(report.faults.worker_crashes, 1u);
  EXPECT_EQ(report.faults.faults_injected, 1u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(VineFaults, ChainedLineageResetCountsEachTaskOnce) {
  // A depth-3 reduction tree on a single worker: a crash while the final
  // reduce executes loses every retained output at once. Recovery must
  // lineage-reset the whole ancestor subtree — reduces first, then chained
  // through them their producers — counting each task exactly once: every
  // task except the sink itself, graph.size() - 1 resets total.
  apps::WorkloadSpec workload = tiny_dv3(4);
  workload.reduce_arity = 2;
  const dag::TaskGraph graph = apps::build_workload(workload, 7);
  ASSERT_EQ(graph.sinks().size(), 1u);
  ASSERT_GE(graph.size(), 7u);
  const dag::TaskId sink = graph.sinks().at(0);

  exec::RunOptions options = fast_options();
  options.seed = 7;
  options.max_task_retries = 20;
  const auto probe = run_vine(graph, options, 1);
  ASSERT_TRUE(probe.success) << probe.failure_reason;
  const auto* rec = find_success(probe, sink);
  ASSERT_NE(rec, nullptr);
  ASSERT_LT(rec->started_at, rec->finished_at);

  // The fault run replays the probe timeline exactly until the crash, so
  // the midpoint of the probe's sink execution is mid-R3 here too.
  options.faults.crash_worker((rec->started_at + rec->finished_at) / 2, 0);
  const auto report = run_vine(graph, options, 1);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.faults.worker_crashes, 1u);
  EXPECT_EQ(report.lineage_resets, graph.size() - 1);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(VineFaults, PoisonedTaskDetectorFailsRunWithPreciseReason) {
  // Two crashes, each timed (via probe runs) to land while the final
  // reduce executes, reset its producers twice. With the threshold at 1
  // the run must fail naming the poisoned task instead of looping.
  apps::WorkloadSpec workload = tiny_dv3(2);
  const dag::TaskGraph graph = apps::build_workload(workload, 3);
  const dag::TaskId sink = graph.sinks().at(0);

  exec::RunOptions options = fast_options();
  options.max_task_retries = 50;

  const auto probe0 = run_vine(graph, options, 1);
  ASSERT_TRUE(probe0.success) << probe0.failure_reason;
  const auto* rec0 = find_success(probe0, sink);
  ASSERT_NE(rec0, nullptr);
  const Tick crash1 = (rec0->started_at + rec0->finished_at) / 2;

  exec::RunOptions once = options;
  once.faults.crash_worker(crash1, 0);
  const auto probe1 = run_vine(graph, once, 1);
  ASSERT_TRUE(probe1.success) << probe1.failure_reason;
  const auto* rec1 = find_success(probe1, sink);  // the post-crash re-run
  ASSERT_NE(rec1, nullptr);
  ASSERT_GT(rec1->started_at, crash1);

  exec::RunOptions twice = options;
  twice.faults.crash_worker(crash1, 0)
      .crash_worker((rec1->started_at + rec1->finished_at) / 2, 0);
  twice.fault_retry.poisoned_reset_threshold = 1;
  const auto report = run_vine(graph, twice, 1);
  EXPECT_FALSE(report.success);
  EXPECT_NE(report.failure_reason.find("poisoned"), std::string::npos)
      << report.failure_reason;
  EXPECT_NE(report.failure_reason.find("output lost 2 times"),
            std::string::npos)
      << report.failure_reason;
}

TEST(VineFaults, RelayRetrySurvivesSourceWorkerCrash) {
  // Without peer transfers, a consumer reaches a worker-resident output
  // through a manager relay pull. Crash the holder while the final reduce
  // is staging: the relay retry finds the source gone and the lost-input
  // path (lineage reset on a fresh worker) must still finish the run.
  // Enough tasks to overflow one 16-core node so outputs land on several
  // workers and the final reduce must pull across nodes.
  const apps::WorkloadSpec workload = tiny_dv3(40);
  const dag::TaskGraph graph = apps::build_workload(workload, 17);
  const dag::TaskId sink = graph.sinks().at(0);
  vine::DataPolicy policy = vine::taskvine_policy();
  policy.peer_transfers = false;

  exec::RunOptions options = fast_options();
  options.seed = 17;
  options.max_task_retries = 20;
  auto run_with = [&](const exec::RunOptions& opts) {
    cluster::Cluster cluster(tiny_cluster(3));
    vine::VineScheduler scheduler(policy, vine::VineTunables{});
    return scheduler.run(graph, cluster, opts);
  };

  const auto probe = run_with(options);
  ASSERT_TRUE(probe.success) << probe.failure_reason;
  const auto* rec = find_success(probe, sink);
  ASSERT_NE(rec, nullptr);
  // Crash a worker that ran a process task on another node than the sink:
  // its retained output is mid-relay (or about to be) while the sink stages.
  std::int32_t victim = -1;
  for (const auto& r : probe.trace.records()) {
    if (!r.failed && r.worker >= 0 && r.worker != rec->worker) {
      victim = r.worker;
      break;
    }
  }
  ASSERT_GE(victim, 0);
  const Tick staging_mid = (rec->dispatched_at + rec->started_at) / 2;
  options.faults.crash_worker(
      staging_mid > rec->dispatched_at ? staging_mid : rec->dispatched_at + 1,
      victim);
  const auto report = run_with(options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.faults.worker_crashes, 1u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(VineFaults, TransferKillStormOnRelayPathRecovers) {
  // Same no-peer topology, but kill live transfers (fetches, relay pulls,
  // manager sends, returns) repeatedly across the whole run. Backoff
  // retries and the lost-input path must converge to the exact result.
  const apps::WorkloadSpec workload = tiny_dv3(16);
  const dag::TaskGraph graph = apps::build_workload(workload, 19);
  vine::DataPolicy policy = vine::taskvine_policy();
  policy.peer_transfers = false;

  exec::RunOptions options = fast_options();
  options.seed = 19;
  options.max_task_retries = 30;
  cluster::Cluster probe_cluster(tiny_cluster(3));
  vine::VineScheduler probe_sched(policy, vine::VineTunables{});
  const auto probe = probe_sched.run(graph, probe_cluster, options);
  ASSERT_TRUE(probe.success) << probe.failure_reason;

  for (int i = 1; i <= 8; ++i) {
    options.faults.kill_transfers(probe.makespan * i / 10, 2);
  }
  cluster::Cluster cluster(tiny_cluster(3));
  vine::VineScheduler scheduler(policy, vine::VineTunables{});
  const auto report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_GE(report.faults.transfers_killed, 1u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(VineFaults, ExhaustedKillBudgetRecordsGiveupAndConverges) {
  // Regression (off-by-one budget): max_transfer_retries counts kills
  // tolerated, and the Nth kill exhausts it — with the budget at 1 the
  // FIRST kill of a staging fetch must give up immediately (no backoff
  // re-fetch), emit a TRANSFER_GIVEUP audit line, and hand the file to the
  // lost-input path. The run still converges bit-identically.
  const apps::WorkloadSpec workload = tiny_dv3(16);
  const dag::TaskGraph graph = apps::build_workload(workload, 31);
  vine::DataPolicy policy = vine::taskvine_policy();
  policy.peer_transfers = false;

  exec::RunOptions options = fast_options();
  options.seed = 31;
  options.max_task_retries = 30;
  options.observability.enabled = true;
  options.observability.txn_log = true;
  auto run_with = [&](const exec::RunOptions& opts) {
    cluster::Cluster cluster(tiny_cluster(3));
    vine::VineScheduler scheduler(policy, vine::VineTunables{});
    return scheduler.run(graph, cluster, opts);
  };

  const auto probe = run_with(options);
  ASSERT_TRUE(probe.success) << probe.failure_reason;

  options.fault_retry.max_transfer_retries = 1;
  for (int i = 1; i <= 8; ++i) {
    options.faults.kill_transfers(probe.makespan * i / 10, 3);
  }
  const auto report = run_with(options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_GE(report.faults.transfers_killed, 1u);
  EXPECT_GE(report.faults.transfer_giveups, 1u);
  ASSERT_NE(report.observation, nullptr);
  EXPECT_NE(report.observation->txn().text().find("TRANSFER_GIVEUP"),
            std::string::npos);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(VineFaults, CacheLossOnAllHoldersForcesRecovery) {
  // Drop a sweep of file ids from every holder mid-run. Dataset chunks are
  // re-fetched from the shared FS; task outputs lineage-reset. Either way
  // the histogram must come out bit-identical.
  const apps::WorkloadSpec workload = tiny_dv3(24);
  const dag::TaskGraph graph = apps::build_workload(workload, 23);
  exec::RunOptions options = fast_options();
  options.seed = 23;
  options.max_task_retries = 20;
  const auto probe = run_vine(graph, options, 4);
  ASSERT_TRUE(probe.success) << probe.failure_reason;

  for (std::int64_t f = 0; f < 16; ++f) {
    options.faults.lose_cached_file(probe.makespan * (3 + f % 4) / 10, -1, f);
  }
  const auto report = run_vine(graph, options, 4);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_GE(report.faults.cache_losses, 1u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST(VineFaults, EmptyScheduleLeavesTxnLogByteIdentical) {
  // Zero-cost-when-off: with an empty FaultSchedule no injector exists, no
  // fault RNG is drawn, and the transaction log is byte-identical no
  // matter how the retry policy is tuned.
  const apps::WorkloadSpec workload = tiny_dv3(24);
  const dag::TaskGraph graph = apps::build_workload(workload, 29);
  exec::RunOptions options = fast_options();
  options.seed = 29;
  options.observability.enabled = true;
  options.observability.txn_log = true;

  const auto base = run_vine(graph, options, 4);
  ASSERT_TRUE(base.success) << base.failure_reason;
  ASSERT_NE(base.observation, nullptr);

  exec::RunOptions tuned = options;
  tuned.fault_retry.max_transfer_retries = 1;
  tuned.fault_retry.backoff_base = util::kSec;
  tuned.fault_retry.poisoned_reset_threshold = 2;
  const auto other = run_vine(graph, tuned, 4);
  ASSERT_TRUE(other.success) << other.failure_reason;
  ASSERT_NE(other.observation, nullptr);

  const std::string a = base.observation->txn().text();
  const std::string b = other.observation->txn().text();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.find("FAULT"), std::string::npos);
  EXPECT_EQ(base.faults.faults_injected, 0u);
  EXPECT_EQ(base.faults.transfer_retries, 0u);
}

}  // namespace
}  // namespace hepvine
