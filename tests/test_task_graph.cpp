#include "dag/task_graph.h"

#include <gtest/gtest.h>

#include "dag/evaluate.h"

namespace hepvine::dag {
namespace {

ValuePtr make_scalar(double v) { return std::make_shared<ScalarValue>(v); }

TaskSpec constant(double v) {
  TaskSpec spec;
  spec.category = "const";
  spec.cpu_seconds = 1.0;
  spec.fn = [v](const std::vector<ValuePtr>&) { return make_scalar(v); };
  return spec;
}

TaskSpec adder(std::vector<TaskId> deps) {
  TaskSpec spec;
  spec.category = "add";
  spec.cpu_seconds = 1.0;
  spec.deps = std::move(deps);
  spec.fn = [](const std::vector<ValuePtr>& in) {
    double sum = 0;
    for (const auto& v : in) {
      sum += dynamic_cast<const ScalarValue&>(*v).get();
    }
    return make_scalar(sum);
  };
  return spec;
}

TEST(TaskGraph, AddTaskAssignsIdsAndOutputs) {
  TaskGraph graph;
  const TaskId a = graph.add_task(constant(1));
  const TaskId b = graph.add_task(constant(2));
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(graph.size(), 2u);
  EXPECT_NE(graph.task(a).output_file, graph.task(b).output_file);
  EXPECT_EQ(graph.catalog().size(), 2u);
}

TEST(TaskGraph, ForwardDependencyRejected) {
  TaskGraph graph;
  TaskSpec bad = constant(1);
  bad.deps = {0};  // self/forward reference
  EXPECT_THROW(graph.add_task(std::move(bad)), std::invalid_argument);
}

TEST(TaskGraph, UnknownInputFileRejected) {
  TaskGraph graph;
  TaskSpec bad = constant(1);
  bad.input_files = {99};
  EXPECT_THROW(graph.add_task(std::move(bad)), std::invalid_argument);
}

TEST(TaskGraph, DependentsAreReverseEdges) {
  TaskGraph graph;
  const TaskId a = graph.add_task(constant(1));
  const TaskId b = graph.add_task(constant(2));
  const TaskId c = graph.add_task(adder({a, b}));
  EXPECT_EQ(graph.task(a).dependents, std::vector<TaskId>{c});
  EXPECT_EQ(graph.task(b).dependents, std::vector<TaskId>{c});
  EXPECT_TRUE(graph.task(c).dependents.empty());
}

TEST(TaskGraph, RootsAndSinks) {
  TaskGraph graph;
  const TaskId a = graph.add_task(constant(1));
  const TaskId b = graph.add_task(constant(2));
  const TaskId c = graph.add_task(adder({a, b}));
  EXPECT_EQ(graph.roots(), (std::vector<TaskId>{a, b}));
  EXPECT_EQ(graph.sinks(), (std::vector<TaskId>{c}));
}

TEST(TaskGraph, TopoOrderIsAscendingIds) {
  TaskGraph graph;
  graph.add_task(constant(1));
  graph.add_task(constant(2));
  graph.add_task(adder({0, 1}));
  EXPECT_EQ(graph.topo_order(), (std::vector<TaskId>{0, 1, 2}));
}

TEST(TaskGraph, CriticalPathIsLongestChain) {
  TaskGraph graph;
  TaskSpec a = constant(1);
  a.cpu_seconds = 2.0;
  const TaskId ta = graph.add_task(std::move(a));
  TaskSpec b = constant(2);
  b.cpu_seconds = 10.0;
  graph.add_task(std::move(b));  // independent long task
  TaskSpec c = adder({ta});
  c.cpu_seconds = 3.0;
  graph.add_task(std::move(c));
  EXPECT_DOUBLE_EQ(graph.critical_path_seconds(), 10.0);
  EXPECT_DOUBLE_EQ(graph.total_cpu_seconds(), 15.0);
}

TEST(TaskGraph, CategoryCounts) {
  TaskGraph graph;
  graph.add_task(constant(1));
  graph.add_task(constant(2));
  graph.add_task(adder({0, 1}));
  const auto counts = graph.category_counts();
  EXPECT_EQ(counts.at("const"), 2u);
  EXPECT_EQ(counts.at("add"), 1u);
}

TEST(TaskGraph, InputAndIntermediateBytes) {
  TaskGraph graph;
  graph.add_input_file("d.root", 500);
  TaskSpec spec = constant(1);
  spec.input_files = {0};
  spec.output_bytes = 123;
  graph.add_task(std::move(spec));
  EXPECT_EQ(graph.input_bytes(), 500u);
  EXPECT_EQ(graph.modeled_intermediate_bytes(), 123u);
}

TEST(Evaluate, SerialEvaluationComputesDiamond) {
  TaskGraph graph;
  const TaskId a = graph.add_task(constant(3));
  const TaskId b = graph.add_task(adder({a}));
  const TaskId c = graph.add_task(adder({a}));
  const TaskId d = graph.add_task(adder({b, c}));
  const auto results = evaluate_serially(graph);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_DOUBLE_EQ(dynamic_cast<const ScalarValue&>(*results.at(d)).get(),
                   6.0);
}

TEST(Evaluate, MultipleSinks) {
  TaskGraph graph;
  const TaskId a = graph.add_task(constant(1));
  const TaskId b = graph.add_task(adder({a}));
  const TaskId c = graph.add_task(adder({a}));
  const auto results = evaluate_serially(graph);
  EXPECT_EQ(results.size(), 2u);
  EXPECT_TRUE(results.contains(b));
  EXPECT_TRUE(results.contains(c));
}

TEST(Value, ScalarDigestReflectsValue) {
  ScalarValue a(1.5);
  ScalarValue b(1.5);
  ScalarValue c(2.5);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
  EXPECT_EQ(a.byte_size(), 8u);
}

}  // namespace
}  // namespace hepvine::dag
