#include "hep/processors.h"

#include <gtest/gtest.h>

#include <cmath>

namespace hepvine::hep {
namespace {

TEST(DijetMass, BackToBackPairHasMassTwicePt) {
  // Two massless jets, equal pT, opposite phi, same eta:
  // m^2 = 2 pT^2 (1 - cos(pi)) = 4 pT^2 -> m = 2 pT.
  const double m = dijet_mass(50.0f, 0.0f, 0.0f, 50.0f, 0.0f,
                              3.14159265f);
  EXPECT_NEAR(m, 100.0, 0.1);
}

TEST(DijetMass, CollinearPairIsMassless) {
  const double m = dijet_mass(50.0f, 1.0f, 2.0f, 30.0f, 1.0f, 2.0f);
  EXPECT_NEAR(m, 0.0, 1e-3);
}

TEST(Dv3Processor, ProducesExpectedHistograms) {
  const EventChunk chunk = generate_chunk(42, 20'000);
  const HistogramSet out = dv3_process(chunk);
  ASSERT_NE(out.find("met"), nullptr);
  ASSERT_NE(out.find("dijet_mass"), nullptr);
  ASSERT_NE(out.find("n_btag_jets"), nullptr);
  EXPECT_EQ(out.find("met")->entries(), 20'000u);
}

TEST(Dv3Processor, FindsHiggsPeakNear125) {
  const EventChunk chunk = generate_chunk(1234, 200'000);
  const HistogramSet out = dv3_process(chunk);
  const Histogram1D* mass = out.find("dijet_mass");
  ASSERT_NE(mass, nullptr);
  // Find the histogram's modal bin in the 80-200 GeV window; the
  // injected H->bb resonance must put it near 125 GeV.
  const double width =
      (binning::kDijetHi - binning::kDijetLo) / binning::kDijetBins;
  double best_center = 0;
  double best = -1;
  for (std::uint32_t b = 0; b < mass->bins(); ++b) {
    const double center = binning::kDijetLo + width * (b + 0.5);
    if (center < 80.0 || center > 200.0) continue;
    if (mass->bin_content(b) > best) {
      best = mass->bin_content(b);
      best_center = center;
    }
  }
  EXPECT_NEAR(best_center, 125.0, 15.0);
}

TEST(Dv3Processor, DeterministicOnSameChunk) {
  const EventChunk chunk = generate_chunk(7, 5'000);
  EXPECT_EQ(dv3_process(chunk).digest(), dv3_process(chunk).digest());
}

TEST(Dv3Processor, EmptyChunkYieldsEmptyHistograms) {
  const EventChunk chunk = generate_chunk(7, 0);
  const HistogramSet out = dv3_process(chunk);
  EXPECT_DOUBLE_EQ(out.find("met")->integral(), 0.0);
}

TEST(TriphotonProcessor, FindsResonanceNear800) {
  const EventChunk chunk = generate_chunk(555, 400'000);
  const HistogramSet out = triphoton_process(chunk);
  const Histogram1D* mass = out.find("triphoton_mass");
  ASSERT_NE(mass, nullptr);
  EXPECT_GT(mass->integral(), 100.0) << "selection must accept signal";
  // Modal bin in the 400-1600 window sits near the injected 800 GeV.
  const double width = (binning::kTriphotonHi - binning::kTriphotonLo) /
                       binning::kTriphotonBins;
  double best_center = 0;
  double best = -1;
  for (std::uint32_t b = 0; b < mass->bins(); ++b) {
    const double center = binning::kTriphotonLo + width * (b + 0.5);
    if (center < 400.0) continue;
    if (mass->bin_content(b) > best) {
      best = mass->bin_content(b);
      best_center = center;
    }
  }
  EXPECT_NEAR(best_center, 800.0, 120.0);
}

TEST(TriphotonProcessor, SelectionIsRare) {
  const EventChunk chunk = generate_chunk(3, 100'000);
  const HistogramSet out = triphoton_process(chunk);
  // Only the ~0.5% cascade events pass the 3-photon selection.
  EXPECT_LT(out.find("triphoton_mass")->integral(), 2'000.0);
}

TEST(TriphotonProcessor, LeadingPhotonPtIsEnergetic) {
  const EventChunk chunk = generate_chunk(9, 200'000);
  const HistogramSet out = triphoton_process(chunk);
  const Histogram1D* pt = out.find("leading_photon_pt");
  ASSERT_NE(pt, nullptr);
  if (pt->integral() > 0) {
    EXPECT_GT(pt->mean(), 200.0);
  }
}

TEST(Processors, PartialsMergeLikeFullChunk) {
  // Processing two half-chunks and merging must equal processing the
  // concatenation — the property that makes chunked map/accumulate valid.
  const EventChunk half1 = generate_chunk(100, 3'000);
  const EventChunk half2 = generate_chunk(200, 3'000);
  HistogramSet merged = dv3_process(half1);
  merged.merge(dv3_process(half2));

  // Concatenate the two chunks manually.
  EventChunk both = half1;
  both.events += half2.events;
  both.met_pt.insert(both.met_pt.end(), half2.met_pt.begin(),
                     half2.met_pt.end());
  auto append = [](ParticleColumns& dst, const ParticleColumns& src) {
    const auto base = static_cast<std::uint32_t>(dst.pt.size());
    dst.pt.insert(dst.pt.end(), src.pt.begin(), src.pt.end());
    dst.eta.insert(dst.eta.end(), src.eta.begin(), src.eta.end());
    dst.phi.insert(dst.phi.end(), src.phi.begin(), src.phi.end());
    dst.mass.insert(dst.mass.end(), src.mass.begin(), src.mass.end());
    dst.quality.insert(dst.quality.end(), src.quality.begin(),
                       src.quality.end());
    // Skip src's leading 0 offset; rebase the rest.
    for (std::size_t i = 1; i < src.event_offsets.size(); ++i) {
      dst.event_offsets.push_back(base + src.event_offsets[i]);
    }
  };
  append(both.jets, half2.jets);
  append(both.photons, half2.photons);

  EXPECT_EQ(merged.digest(), dv3_process(both).digest());
}

}  // namespace
}  // namespace hepvine::hep
