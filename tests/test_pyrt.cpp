#include "pyrt/python_runtime.h"

#include <gtest/gtest.h>

namespace hepvine::pyrt {
namespace {

TEST(PyRuntime, LibraryPresetsAreOrdered) {
  // The Coffea stack dwarfs numpy: more code, more metadata traffic.
  EXPECT_GT(coffea_stack().code_bytes, numpy_lib().code_bytes);
  EXPECT_GT(coffea_stack().metadata_ops, numpy_lib().metadata_ops);
  EXPECT_GT(scipy_lib().metadata_ops, numpy_lib().metadata_ops);
}

TEST(PyRuntime, LocalImportFasterOnNvmeThanSpinning) {
  const LibrarySpec lib = numpy_lib();
  EXPECT_LT(lib.import_time_local(storage::nvme_disk()),
            lib.import_time_local(storage::spinning_disk()));
}

TEST(PyRuntime, ImportTimeDominatedByMetadataOnSlowDisks) {
  const LibrarySpec lib = numpy_lib();
  const auto spin = storage::spinning_disk();
  const util::Tick metadata_part =
      static_cast<util::Tick>(lib.metadata_ops) * spin.op_latency;
  EXPECT_GT(metadata_part, util::transfer_time(lib.code_bytes, spin.read_bw));
}

TEST(PyRuntime, SerializeTimeHasFixedAndLinearParts) {
  const PythonRuntimeSpec py = default_python_runtime();
  const util::Tick small = py.serialize_time(1);
  const util::Tick big = py.serialize_time(200'000'000);
  EXPECT_GE(small, py.serialize_fixed);
  EXPECT_NEAR(util::to_seconds(big - small), 1.0, 0.05);
}

TEST(PyRuntime, ImportSetAggregates) {
  const ImportSet set = hep_import_set();
  ASSERT_EQ(set.libraries.size(), 2u);
  EXPECT_EQ(set.total_code_bytes(),
            numpy_lib().code_bytes + coffea_stack().code_bytes);
  EXPECT_EQ(set.total_metadata_ops(),
            numpy_lib().metadata_ops + coffea_stack().metadata_ops);
  EXPECT_EQ(set.total_cpu_cost(),
            numpy_lib().cpu_cost + coffea_stack().cpu_cost);
  EXPECT_EQ(set.import_time_local(storage::nvme_disk()),
            numpy_lib().import_time_local(storage::nvme_disk()) +
                coffea_stack().import_time_local(storage::nvme_disk()));
}

TEST(PyRuntime, DefaultsAreSane) {
  const PythonRuntimeSpec py = default_python_runtime();
  EXPECT_GT(py.interpreter_startup, 0);
  EXPECT_GT(py.fork_cost, 0);
  EXPECT_LT(py.fork_cost, py.interpreter_startup)
      << "forking a warm library must beat a cold interpreter";
  EXPECT_GT(py.environment_bytes, py.function_body_bytes);
}

}  // namespace
}  // namespace hepvine::pyrt
