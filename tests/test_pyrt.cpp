#include "pyrt/python_runtime.h"

#include <gtest/gtest.h>

namespace hepvine::pyrt {
namespace {

TEST(PyRuntime, LibraryPresetsAreOrdered) {
  // The Coffea stack dwarfs numpy: more code, more metadata traffic.
  EXPECT_GT(coffea_stack().code_bytes, numpy_lib().code_bytes);
  EXPECT_GT(coffea_stack().metadata_ops, numpy_lib().metadata_ops);
  EXPECT_GT(scipy_lib().metadata_ops, numpy_lib().metadata_ops);
}

TEST(PyRuntime, LocalImportFasterOnNvmeThanSpinning) {
  const LibrarySpec lib = numpy_lib();
  EXPECT_LT(lib.import_time_local(storage::nvme_disk()),
            lib.import_time_local(storage::spinning_disk()));
}

TEST(PyRuntime, ImportTimeDominatedByMetadataOnSlowDisks) {
  const LibrarySpec lib = numpy_lib();
  const auto spin = storage::spinning_disk();
  const util::Tick metadata_part =
      static_cast<util::Tick>(lib.metadata_ops) * spin.op_latency;
  EXPECT_GT(metadata_part, util::transfer_time(lib.code_bytes, spin.read_bw));
}

TEST(PyRuntime, SerializeTimeHasFixedAndLinearParts) {
  const PythonRuntimeSpec py = default_python_runtime();
  const util::Tick small = py.serialize_time(1);
  const util::Tick big = py.serialize_time(200'000'000);
  EXPECT_GE(small, py.serialize_fixed);
  EXPECT_NEAR(util::to_seconds(big - small), 1.0, 0.05);
}

TEST(PyRuntime, SerializeTimeZeroBytesIsFree) {
  // A by-reference handoff moves nothing across the pickle boundary, so
  // it must not pay the 2 ms fixed cost either — this is what makes the
  // object store's colocated exchange genuinely zero-cost.
  const PythonRuntimeSpec py = default_python_runtime();
  EXPECT_EQ(py.serialize_time(0), 0);
  EXPECT_EQ(py.byref_handoff_time(), 0);
  util::TickAccumulator acc;
  EXPECT_EQ(py.serialize_time_acc(0, acc), 0);
  EXPECT_EQ(acc.charged, 0);
}

TEST(PyRuntime, SerializeTimeAccChargesFixedPerCallButThroughputExactly) {
  const PythonRuntimeSpec py = default_python_runtime();
  util::TickAccumulator acc;
  const int n = 100;
  util::Tick total = 0;
  for (int i = 0; i < n; ++i) {
    total += py.serialize_time_acc(py.argument_bytes, acc);
  }
  // Every call pays the fixed pickle cost; the throughput term across
  // all calls must equal one n-times-larger transfer, not n round-ups.
  const util::Tick throughput = util::transfer_time(
      static_cast<std::uint64_t>(n) * py.argument_bytes,
      py.serialize_bytes_per_sec);
  EXPECT_EQ(total, static_cast<util::Tick>(n) * py.serialize_fixed +
                       throughput);
  EXPECT_LE(total, static_cast<util::Tick>(n) *
                       py.serialize_time(py.argument_bytes));
}

TEST(PyRuntime, ImportSetAggregates) {
  const ImportSet set = hep_import_set();
  ASSERT_EQ(set.libraries.size(), 2u);
  EXPECT_EQ(set.total_code_bytes(),
            numpy_lib().code_bytes + coffea_stack().code_bytes);
  EXPECT_EQ(set.total_metadata_ops(),
            numpy_lib().metadata_ops + coffea_stack().metadata_ops);
  EXPECT_EQ(set.total_cpu_cost(),
            numpy_lib().cpu_cost + coffea_stack().cpu_cost);
  EXPECT_EQ(set.import_time_local(storage::nvme_disk()),
            numpy_lib().import_time_local(storage::nvme_disk()) +
                coffea_stack().import_time_local(storage::nvme_disk()));
}

TEST(PyRuntime, DefaultsAreSane) {
  const PythonRuntimeSpec py = default_python_runtime();
  EXPECT_GT(py.interpreter_startup, 0);
  EXPECT_GT(py.fork_cost, 0);
  EXPECT_LT(py.fork_cost, py.interpreter_startup)
      << "forking a warm library must beat a cold interpreter";
  EXPECT_GT(py.environment_bytes, py.function_body_bytes);
}

}  // namespace
}  // namespace hepvine::pyrt
