// Network invariant suite, run against BOTH recompute paths (incremental
// component recompute and the reference full recompute):
//   - bytes conservation: a link's carried bytes are exactly the completed
//     bytes plus the abandoned bytes of the flows that crossed it, under
//     churn, cancels, injected kills, brownouts, and outages;
//   - max-min optimality: at any instant, every flow is bottlenecked at
//     some saturated link on its path (the defining property of the
//     max-min fair allocation);
//   - differential bit-identity: an adversarial scenario produces the
//     exact same event sequence, tick for tick, under both paths.
#include "net/network.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace hepvine::net {
namespace {

using util::Tick;

class RecomputePath : public ::testing::TestWithParam<bool> {
 protected:
  [[nodiscard]] NetworkOptions options() const {
    return NetworkOptions{GetParam()};
  }
};

TEST_P(RecomputePath, HubAccountingConservesBytesUnderChaos) {
  // Every flow crosses the hub, so the hub's carried bytes must equal the
  // bytes of completed flows plus the attributed bytes of abandoned ones —
  // exactly, despite cancels, injected kills, armed faults, a leaf
  // outage, and a hub brownout forcing settles at awkward instants.
  sim::Engine engine;
  Network net(engine, options());
  const LinkId hub = net.add_link("hub", 2e9);
  std::vector<LinkId> leaf;
  for (int i = 0; i < 6; ++i) {
    leaf.push_back(net.add_link("leaf" + std::to_string(i), 1e9));
  }

  int completed = 0;
  std::vector<FlowId> ids;
  for (int i = 0; i < 30; ++i) {
    engine.schedule_at(6'007 * i, [&, i] {
      const std::vector<LinkId> path =
          (i % 2 == 0) ? std::vector<LinkId>{leaf[i % 6], hub}
                       : std::vector<LinkId>{hub, leaf[(i + 3) % 6]};
      const std::uint64_t bytes =
          (i % 7 == 6) ? 0 : 20'000'000ULL + 7'000'003ULL * i;
      ids.push_back(net.start_flow(path, bytes, (i % 3) * 900,
                                   [&](FlowId) { ++completed; }));
    });
  }
  engine.schedule_at(70'001, [&] { net.cancel_flow(ids.at(9)); });
  engine.schedule_at(95'009, [&] { net.cancel_flow(ids.at(8)); });
  engine.schedule_at(120'013, [&] { net.cancel_flow(ids.at(12)); });
  engine.schedule_at(88'019, [&] { net.fail_flow(ids.at(5)); });
  engine.schedule_at(140'023, [&] { net.fail_flow(ids.at(17)); });
  engine.schedule_at(100'003, [&] { net.arm_flow_fault(ids.at(10), 9'000'000); });
  engine.schedule_at(150'007, [&] { net.arm_flow_fault(ids.at(15), 1); });
  engine.schedule_at(80'000, [&] { net.set_link_scale(hub, 0.35); });
  engine.schedule_at(170'000, [&] { net.set_link_scale(hub, 1.0); });
  engine.schedule_at(110'000, [&] { net.set_link_scale(leaf[2], 0.0); });
  engine.schedule_at(210'000, [&] { net.set_link_scale(leaf[2], 1.0); });
  engine.run();

  // Every flow ends in exactly one bucket.
  EXPECT_EQ(net.flows_completed() + net.flows_cancelled() + net.flows_failed(),
            30u);
  EXPECT_EQ(static_cast<std::uint64_t>(completed), net.flows_completed());
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_EQ(net.starvation_rescues(), 0u);
  // Exact, not NEAR: conservation is an identity, not an approximation.
  EXPECT_EQ(net.link_stats(hub).bytes_carried,
            net.total_bytes_completed() + net.bytes_abandoned());
}

TEST_P(RecomputePath, EveryFlowIsBottleneckedAtASaturatedLink) {
  // Max-min optimality probe: freeze time at several checkpoints and check
  // (a) feasibility — no link carries more than its effective capacity —
  // and (b) the bottleneck property — every flow crosses some saturated
  // link on which its rate is maximal. (A flow failing (b) could be given
  // more bandwidth without hurting a smaller flow, i.e. the allocation
  // would not be max-min fair.)
  sim::Engine engine;
  Network net(engine, options());
  const LinkId hub = net.add_link("hub", 8e9);
  std::vector<LinkId> up;
  std::vector<LinkId> down;
  for (int i = 0; i < 5; ++i) {
    up.push_back(net.add_link("u" + std::to_string(i), 1e9 + 4e8 * i));
    down.push_back(net.add_link("d" + std::to_string(i), 1.2e9 + 3e8 * i));
  }

  struct Probe {
    FlowId id;
    std::vector<LinkId> path;
  };
  std::vector<Probe> flows;
  const std::uint64_t huge = 1'000'000'000'000ULL;  // outlives the test
  const auto add = [&](std::vector<LinkId> path) {
    const FlowId id = net.start_flow(path, huge, 0, [](FlowId) {});
    flows.push_back({id, std::move(path)});
  };
  for (int i = 0; i < 18; ++i) {
    switch (i % 3) {
      case 0: add({up[i % 5], hub, down[(i + 2) % 5]}); break;
      case 1: add({up[(i + 1) % 5], hub}); break;
      default: add({hub, down[(i + 4) % 5]}); break;
    }
  }
  engine.schedule_at(900'000, [&] { net.set_link_scale(up[0], 0.4); });
  engine.schedule_at(1'400'000, [&] {
    for (int i = 0; i < 4; ++i) add({up[(i * 2) % 5], hub, down[i % 5]});
  });

  for (const Tick checkpoint : {500'003, 1'200'007, 2'000'011}) {
    engine.run_until(checkpoint);
    const auto nlinks = static_cast<LinkId>(net.link_count());
    std::vector<double> load(static_cast<std::size_t>(nlinks), 0.0);
    std::vector<double> peak(static_cast<std::size_t>(nlinks), 0.0);
    for (const auto& f : flows) {
      const double r = net.flow_rate(f.id);
      EXPECT_GT(r, 0.0) << "flow " << f.id << " at t=" << checkpoint;
      for (LinkId l : f.path) {
        load[static_cast<std::size_t>(l)] += r;
        peak[static_cast<std::size_t>(l)] =
            std::max(peak[static_cast<std::size_t>(l)], r);
      }
    }
    for (LinkId l = 0; l < nlinks; ++l) {
      const double cap = net.link(l).capacity * net.link_scale(l);
      EXPECT_LE(load[static_cast<std::size_t>(l)], cap * (1 + 1e-9))
          << net.link(l).name << " overcommitted at t=" << checkpoint;
    }
    for (const auto& f : flows) {
      const double r = net.flow_rate(f.id);
      bool bottlenecked = false;
      for (LinkId l : f.path) {
        const double cap = net.link(l).capacity * net.link_scale(l);
        if (load[static_cast<std::size_t>(l)] >= cap * (1 - 1e-9) &&
            r >= peak[static_cast<std::size_t>(l)] * (1 - 1e-9)) {
          bottlenecked = true;
          break;
        }
      }
      EXPECT_TRUE(bottlenecked)
          << "flow " << f.id << " at t=" << checkpoint
          << " has no saturated bottleneck on its path";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Paths, RecomputePath, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "Incremental" : "Reference";
                         });

// --- low-level differential: both paths, same event stream ---------------

struct Outcome {
  std::vector<std::string> events;
  std::uint64_t completed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;
  std::uint64_t bytes_completed = 0;
  std::uint64_t bytes_abandoned = 0;
  std::vector<std::uint64_t> link_bytes;
  Tick end = 0;
};

Outcome run_scenario(bool incremental) {
  sim::Engine engine;
  Network net(engine, NetworkOptions{incremental});
  const LinkId hub = net.add_link("hub", 2.5e9);
  std::vector<LinkId> up;
  std::vector<LinkId> down;
  for (int i = 0; i < 6; ++i) {
    up.push_back(net.add_link("u" + std::to_string(i), 1e9 + 2e8 * i));
    down.push_back(net.add_link("d" + std::to_string(i), 1e9 + 1.5e8 * i));
  }

  Outcome out;
  const auto record = [&](const char* what, FlowId id) {
    out.events.push_back(std::to_string(engine.now()) + " " + what + " " +
                         std::to_string(id));
  };
  net.set_fail_listener([&](FlowId id) { record("fail", id); });
  std::vector<FlowId> ids;
  for (int i = 0; i < 36; ++i) {
    engine.schedule_at(7'001 * i, [&, i] {
      std::vector<LinkId> path;
      switch (i % 4) {
        case 0: path = {up[i % 6], hub, down[(i * 2 + 1) % 6]}; break;
        case 1: path = {up[(i + 2) % 6], hub}; break;
        case 2: path = {hub, down[(i + 3) % 6]}; break;
        default: path = {up[i % 6], down[(i + 1) % 6]}; break;  // no hub
      }
      const std::uint64_t bytes =
          (i % 5 == 4) ? 0 : 40'000'000ULL + 9'000'001ULL * i;
      ids.push_back(net.start_flow(std::move(path), bytes, (i % 3) * 1'500,
                                   [&](FlowId id) { record("done", id); }));
    });
  }
  engine.schedule_at(60'000, [&] { net.arm_flow_fault(ids.at(3), 20'000'000); });
  engine.schedule_at(90'000, [&] { net.arm_flow_fault(ids.at(8), 1); });
  engine.schedule_at(130'000,
                     [&] { net.arm_flow_fault(ids.at(11), 1ULL << 62); });
  engine.schedule_at(110'003, [&] { net.cancel_flow(ids.at(12)); });
  engine.schedule_at(150'007, [&] { net.cancel_flow(ids.at(16)); });
  engine.schedule_at(170'011, [&] { net.fail_flow(ids.at(6)); });
  engine.schedule_at(80'000, [&] { net.set_link_scale(hub, 0.3); });
  engine.schedule_at(160'000, [&] { net.set_link_scale(hub, 1.0); });
  engine.schedule_at(100'000, [&] { net.set_link_scale(down[1], 0.0); });
  engine.schedule_at(200'000, [&] { net.set_link_scale(down[1], 1.0); });
  engine.run();

  out.completed = net.flows_completed();
  out.cancelled = net.flows_cancelled();
  out.failed = net.flows_failed();
  out.bytes_completed = net.total_bytes_completed();
  out.bytes_abandoned = net.bytes_abandoned();
  for (LinkId l = 0; l < static_cast<LinkId>(net.link_count()); ++l) {
    out.link_bytes.push_back(net.link_stats(l).bytes_carried);
  }
  out.end = engine.now();
  return out;
}

TEST(NetworkDifferential, IncrementalMatchesReferenceBitExact) {
  const Outcome inc = run_scenario(true);
  const Outcome ref = run_scenario(false);
  EXPECT_EQ(inc.events, ref.events);
  EXPECT_EQ(inc.completed, ref.completed);
  EXPECT_EQ(inc.cancelled, ref.cancelled);
  EXPECT_EQ(inc.failed, ref.failed);
  EXPECT_EQ(inc.bytes_completed, ref.bytes_completed);
  EXPECT_EQ(inc.bytes_abandoned, ref.bytes_abandoned);
  EXPECT_EQ(inc.link_bytes, ref.link_bytes);
  EXPECT_EQ(inc.end, ref.end);
  // The scenario exercised every terminal path in both modes.
  EXPECT_GT(inc.completed, 0u);
  EXPECT_GT(inc.cancelled, 0u);
  EXPECT_GT(inc.failed, 2u);
}

}  // namespace
}  // namespace hepvine::net
