#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/calibration.h"

namespace hepvine::cluster {
namespace {

ClusterSpec small_spec() {
  ClusterSpec spec = paper_cluster(4, paper_worker_node(),
                                   storage::vast_spec(), 1);
  spec.batch.first_match_delay = 0;
  spec.batch.match_window = 0;
  spec.batch.preemption_rate_per_hour = 0;
  return spec;
}

TEST(Cluster, AssemblesWorkersWithSpecs) {
  Cluster cluster(small_spec());
  EXPECT_EQ(cluster.worker_count(), 4u);
  EXPECT_EQ(cluster.total_cores(), 48u);
  EXPECT_EQ(cluster.worker(0).cores, 12u);
  EXPECT_EQ(cluster.worker(0).disk.capacity(), 108 * util::kGB);
  EXPECT_FALSE(cluster.worker(0).alive) << "workers start unmatched";
}

TEST(Cluster, HeterogeneousSpeedsWithinSpread) {
  ClusterSpec spec = small_spec();
  spec.worker_count = 100;
  spec.speed_spread = 0.10;
  Cluster cluster(spec);
  bool varied = false;
  for (WorkerId w = 0; w < 100; ++w) {
    const double s = cluster.worker(w).speed;
    EXPECT_GE(s, 0.9);
    EXPECT_LE(s, 1.1);
    if (s != cluster.worker(0).speed) varied = true;
  }
  EXPECT_TRUE(varied);
}

TEST(Cluster, ZeroSpreadMeansUniformSpeed) {
  ClusterSpec spec = small_spec();
  spec.speed_spread = 0;
  Cluster cluster(spec);
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_DOUBLE_EQ(cluster.worker(w).speed, 1.0);
  }
}

TEST(Cluster, EndpointNumbering) {
  Cluster cluster(small_spec());
  EXPECT_EQ(cluster.endpoint_count(), 6u);  // manager + 4 workers + fs
  EXPECT_EQ(Cluster::manager_endpoint(), 0u);
  EXPECT_EQ(cluster.worker_endpoint(0), 1u);
  EXPECT_EQ(cluster.worker_endpoint(3), 4u);
  EXPECT_EQ(cluster.fs_endpoint(), 5u);
}

TEST(Cluster, RequestWorkersBringsAllUp) {
  Cluster cluster(small_spec());
  int up = 0;
  cluster.request_workers([&](WorkerId) { ++up; }, nullptr);
  cluster.engine().run();
  EXPECT_EQ(up, 4);
  EXPECT_EQ(cluster.alive_workers(), 4u);
}

TEST(Cluster, PreemptionResetsNodeState) {
  Cluster cluster(small_spec());
  int down = 0;
  cluster.request_workers(nullptr, [&](WorkerId) { ++down; });
  cluster.engine().run();
  cluster.worker(2).cores_in_use = 5;
  ASSERT_TRUE(cluster.worker(2).disk.reserve(util::kGB));
  cluster.batch().force_preempt(2);
  EXPECT_EQ(down, 1);
  EXPECT_FALSE(cluster.worker(2).alive);
  EXPECT_EQ(cluster.worker(2).cores_in_use, 0u);
  EXPECT_EQ(cluster.alive_workers(), 3u);
}

TEST(Cluster, ReplacementArrivesWithFreshDiskAndIncarnation) {
  ClusterSpec spec = small_spec();
  spec.batch.replacement_delay_mean = util::seconds(5);
  Cluster cluster(spec);
  cluster.request_workers(nullptr, nullptr);
  cluster.engine().run_until(util::seconds(1));
  ASSERT_TRUE(cluster.worker(1).disk.reserve(2 * util::kGB));
  cluster.batch().force_preempt(1);
  cluster.engine().run_until(util::seconds(600));
  EXPECT_TRUE(cluster.worker(1).alive);
  EXPECT_EQ(cluster.worker(1).incarnation, 1u);
  EXPECT_EQ(cluster.worker(1).disk.used(), 0u);
}

TEST(Cluster, ManagerToWorkerTransferTiming) {
  Cluster cluster(small_spec());
  util::Tick done = -1;
  // 1.25 GB over the worker's 10 Gbit/s downlink (manager has 25 Gbit/s).
  cluster.send_manager_to_worker(0, 1'250'000'000, 0,
                                 [&] { done = cluster.engine().now(); });
  cluster.engine().run();
  EXPECT_NEAR(util::to_seconds(done), 1.0, 0.02);
}

TEST(Cluster, PeerTransferUsesWorkerLinks) {
  Cluster cluster(small_spec());
  util::Tick done = -1;
  cluster.send_peer(0, 1, 1'250'000'000, 0,
                    [&] { done = cluster.engine().now(); });
  cluster.engine().run();
  EXPECT_NEAR(util::to_seconds(done), 1.0, 0.02);
  EXPECT_GT(cluster.network().link_stats(cluster.worker(0).uplink)
                .bytes_carried,
            1'200'000'000u);
}

TEST(Cluster, FsReadsShareAggregateBandwidth) {
  ClusterSpec spec = small_spec();
  spec.worker_count = 16;
  Cluster cluster(spec);
  int completed = 0;
  // 16 simultaneous 1 GB reads: VAST at 40 Gbit/s = 5 GB/s aggregate,
  // worker NICs 1.25 GB/s each -> fs link is the bottleneck: ~3.2 s.
  for (WorkerId w = 0; w < 16; ++w) {
    cluster.read_fs_to_worker(w, 1'000'000'000, [&] { ++completed; });
  }
  cluster.engine().run();
  EXPECT_EQ(completed, 16);
  EXPECT_NEAR(util::to_seconds(cluster.engine().now()), 3.2, 0.2);
}

TEST(Calibration, PaperNodeMatchesPaper) {
  const NodeSpec node = paper_worker_node();
  EXPECT_EQ(node.cores, 12u);
  EXPECT_EQ(node.memory, 96 * util::kGB);
  EXPECT_EQ(node.disk_capacity, 108 * util::kGB);
  const NodeSpec rs = triphoton_worker_node();
  EXPECT_EQ(rs.memory, 200 * util::kGB);
  EXPECT_EQ(rs.disk_capacity, 700 * util::kGB);
}

}  // namespace
}  // namespace hepvine::cluster
