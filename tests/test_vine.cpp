#include "vine/vine_scheduler.h"

#include <gtest/gtest.h>

#include "scheduler_test_util.h"
#include "vine/replica_table.h"

namespace hepvine::vine {
namespace {

using namespace hepvine::testutil;

// ---------------------------------------------------------------------
// ReplicaTable unit tests.
// ---------------------------------------------------------------------
TEST(ReplicaTable, AddRemoveQuery) {
  ReplicaTable table(4, 3);
  table.add(0, 1);
  table.add(0, 2);
  table.add(0, 1);  // duplicate ignored
  EXPECT_TRUE(table.on_worker(0, 1));
  EXPECT_EQ(table.holders(0).size(), 2u);
  EXPECT_EQ(table.replica_count(0), 2u);
  table.remove(0, 1);
  EXPECT_FALSE(table.on_worker(0, 1));
  EXPECT_TRUE(table.available(0));
  table.remove(0, 2);
  EXPECT_FALSE(table.available(0));
}

TEST(ReplicaTable, ManagerCopyCountsAsAvailable) {
  ReplicaTable table(2, 2);
  table.set_at_manager(1);
  EXPECT_TRUE(table.available(1));
  EXPECT_EQ(table.replica_count(1), 1u);
  table.set_at_manager(1, false);
  EXPECT_FALSE(table.available(1));
}

TEST(ReplicaTable, DropWorkerReportsLostFiles) {
  ReplicaTable table(3, 2);
  table.add(0, 0);  // only on worker 0 -> lost
  table.add(1, 0);
  table.add(1, 1);  // survives on worker 1
  table.add(2, 0);
  table.set_at_manager(2);  // survives at manager
  const auto lost = table.drop_worker(0);
  EXPECT_EQ(lost, std::vector<data::FileId>{0});
  EXPECT_TRUE(table.available(1));
  EXPECT_TRUE(table.available(2));
  EXPECT_TRUE(table.files_on(0).empty());
}

// ---------------------------------------------------------------------
// End-to-end scheduler behaviour.
// ---------------------------------------------------------------------
struct VineEndToEnd : public ::testing::Test {
  exec::RunReport run(const apps::WorkloadSpec& workload,
                      const exec::RunOptions& options,
                      std::uint32_t workers = 4,
                      double preempt_per_hour = 0.0,
                      DataPolicy policy = taskvine_policy()) {
    graph = apps::build_workload(workload, options.seed);
    cluster::Cluster cluster(tiny_cluster(workers, preempt_per_hour));
    VineScheduler scheduler(policy, VineTunables{});
    return scheduler.run(graph, cluster, options);
  }
  dag::TaskGraph graph;
};

TEST_F(VineEndToEnd, CompletesAndMatchesSerialReference) {
  const auto report = run(tiny_dv3(), fast_options());
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
  EXPECT_GE(report.task_attempts, graph.size());
  EXPECT_EQ(report.trace.size() - report.trace.failures(), graph.size());
}

TEST_F(VineEndToEnd, ServerlessModeMatchesReferenceAndIsFaster) {
  exec::RunOptions std_opts = fast_options();
  std_opts.mode = exec::ExecMode::kStandardTasks;
  const auto std_report = run(tiny_dv3(48), std_opts);
  ASSERT_TRUE(std_report.success);

  exec::RunOptions fc_opts = fast_options();
  fc_opts.mode = exec::ExecMode::kFunctionCalls;
  const auto fc_report = run(tiny_dv3(48), fc_opts);
  ASSERT_TRUE(fc_report.success);

  EXPECT_EQ(sink_digest(std_report), sink_digest(fc_report));
  EXPECT_LT(fc_report.makespan, std_report.makespan)
      << "serverless execution must beat per-task interpreters";
}

TEST_F(VineEndToEnd, DeterministicAcrossRuns) {
  const auto a = run(tiny_dv3(), fast_options());
  const auto b = run(tiny_dv3(), fast_options());
  ASSERT_TRUE(a.success);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.task_attempts, b.task_attempts);
  EXPECT_EQ(sink_digest(a), sink_digest(b));
}

TEST_F(VineEndToEnd, PeerTransfersMoveAccumulationTraffic) {
  exec::RunOptions options = fast_options();
  const auto report = run(tiny_dv3(48), options);
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.transfers.peer_bytes(), 0u)
      << "accumulation partials must move worker-to-worker";
}

TEST_F(VineEndToEnd, LocalityKeepsRepeatReadsOffTheFilesystem) {
  // chunks_per_file = 5 means 5 tasks share each dataset file; with
  // locality the file is fetched from the fs far fewer than once per task.
  apps::WorkloadSpec workload = tiny_dv3(40);
  workload.chunks_per_file = 5;
  const auto report = run(workload, fast_options());
  ASSERT_TRUE(report.success);
  // Endpoints: 0 = manager, 1..4 = the 4 workers, 5 = shared filesystem.
  const std::uint64_t fs_bytes = report.transfers.row_total(5);
  // All 8 files must be read, but far less than 40 chunk-sized reads.
  EXPECT_GT(fs_bytes, 0u);
  EXPECT_LT(fs_bytes, graph.input_bytes() * 2);
}

TEST_F(VineEndToEnd, SurvivesPreemptionAndStaysCorrect) {
  // Aggressive preemption: mean worker lifetime of one minute.
  exec::RunOptions options = fast_options();
  options.seed = 17;
  options.max_task_retries = 30;
  const auto report = run(tiny_dv3(64), options, 4, 120.0);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_GT(report.worker_preemptions, 0u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph))
      << "lineage re-execution must reproduce identical physics";
}

TEST_F(VineEndToEnd, ImportHoistingSpeedsUpServerless) {
  apps::WorkloadSpec workload = tiny_dv3(48);
  exec::RunOptions hoisted = fast_options();
  hoisted.mode = exec::ExecMode::kFunctionCalls;
  hoisted.hoist_imports = true;
  const auto fast = run(workload, hoisted);
  ASSERT_TRUE(fast.success);

  exec::RunOptions unhoisted = hoisted;
  unhoisted.hoist_imports = false;
  const auto slow = run(workload, unhoisted);
  ASSERT_TRUE(slow.success);

  EXPECT_LT(fast.makespan, slow.makespan);
  EXPECT_EQ(sink_digest(fast), sink_digest(slow));
}

TEST_F(VineEndToEnd, SharedFsImportsSlowerThanLocal) {
  // The Fig 10 contrast is a *contention* effect: enough concurrent
  // short unhoisted invocations to load the metadata server.
  apps::WorkloadSpec workload = tiny_dv3(768, 12);
  workload.process_cpu_median = 0.5;
  exec::RunOptions local = fast_options();
  local.mode = exec::ExecMode::kFunctionCalls;
  local.hoist_imports = false;
  local.env_from_shared_fs = false;
  const auto local_report = run(workload, local, 16);
  ASSERT_TRUE(local_report.success);

  exec::RunOptions shared = local;
  shared.env_from_shared_fs = true;
  const auto shared_report = run(workload, shared, 16);
  ASSERT_TRUE(shared_report.success);

  EXPECT_LT(local_report.makespan, shared_report.makespan)
      << "unhoisted imports from the shared fs pay metadata contention";
}

TEST_F(VineEndToEnd, SingleNodeReductionOverflowsSmallDisks) {
  // Partials totalling far beyond one worker's disk, reduced on a single
  // node: the reduction worker must overflow and crash (paper Fig 11).
  apps::WorkloadSpec workload = tiny_dv3(30);
  workload.process_output_bytes = 12 * util::kGB;  // 30 x 12 GB = 360 GB
  workload.reduce_output_bytes = 12 * util::kGB;
  workload.reduction = apps::ReductionShape::kSingleNode;
  exec::RunOptions options = fast_options();
  options.max_task_retries = 3;
  options.max_sim_time = 2 * util::kHour;
  const auto report = run(workload, options, 6);
  EXPECT_GT(report.worker_crashes, 0u);
  EXPECT_FALSE(report.success)
      << "a 360 GB single-node reduction cannot fit a 108 GB disk";
}

TEST_F(VineEndToEnd, TreeReductionOfSameWorkloadSucceeds) {
  // Same shape as the overflow case above but with the paper's headroom
  // proportions: bounded fan-in keeps every node's cache well under its
  // disk, so the workload completes without a single crash.
  apps::WorkloadSpec workload = tiny_dv3(30);
  workload.process_output_bytes = 8 * util::kGB;
  workload.reduce_output_bytes = 8 * util::kGB;
  workload.reduction = apps::ReductionShape::kTree;
  workload.reduce_arity = 4;
  const auto report = run(workload, fast_options(), 6);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.worker_crashes, 0u);
}

TEST_F(VineEndToEnd, ReportsFailureWhenRetriesExhausted) {
  // One worker, disk too small for even one task's staging: every attempt
  // crashes the worker until the retry budget trips.
  apps::WorkloadSpec workload = tiny_dv3(2);
  workload.process_output_bytes = 500 * util::kGB;
  workload.reduce_output_bytes = 500 * util::kGB;
  exec::RunOptions options = fast_options();
  options.max_task_retries = 2;
  options.max_sim_time = util::kHour;
  const auto report = run(workload, options, 1);
  EXPECT_FALSE(report.success);
  EXPECT_FALSE(report.failure_reason.empty());
}

TEST_F(VineEndToEnd, CacheTraceSeesGrowth) {
  exec::RunOptions options = fast_options();
  options.cache_sample_interval = util::seconds(1);
  const auto report = run(tiny_dv3(48), options);
  ASSERT_TRUE(report.success);
  EXPECT_GT(report.cache.global_peak(), 0u);
}

TEST_F(VineEndToEnd, NoLocalityAblationStillCorrect) {
  DataPolicy policy = taskvine_policy();
  policy.locality_placement = false;
  const auto report = run(tiny_dv3(), fast_options(), 4, 0.0, policy);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

TEST_F(VineEndToEnd, NoPeerTransfersFallsBackToManagerRelay) {
  DataPolicy policy = taskvine_policy();
  policy.peer_transfers = false;
  const auto report = run(tiny_dv3(24), fast_options(), 4, 0.0, policy);
  ASSERT_TRUE(report.success);
  EXPECT_EQ(report.transfers.peer_bytes(), 0u);
  EXPECT_GT(report.transfers.manager_bytes(), 0u);
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

// Parameterized sweep: every (mode, hoist, peer) combination must produce
// the identical physics result.
class VineConfigMatrix
    : public ::testing::TestWithParam<std::tuple<exec::ExecMode, bool, bool>> {
};

TEST_P(VineConfigMatrix, AllConfigurationsProduceIdenticalResults) {
  const auto [mode, hoist, peers] = GetParam();
  const apps::WorkloadSpec workload = tiny_dv3(24);
  exec::RunOptions options = fast_options();
  options.mode = mode;
  options.hoist_imports = hoist;
  options.peer_transfers = peers;
  DataPolicy policy = taskvine_policy();
  policy.peer_transfers = peers;

  const dag::TaskGraph graph = apps::build_workload(workload, options.seed);
  cluster::Cluster cluster(tiny_cluster(4));
  VineScheduler scheduler(policy, VineTunables{});
  const auto report = scheduler.run(graph, cluster, options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(sink_digest(report), reference_digest(graph));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, VineConfigMatrix,
    ::testing::Combine(::testing::Values(exec::ExecMode::kStandardTasks,
                                         exec::ExecMode::kFunctionCalls),
                       ::testing::Bool(), ::testing::Bool()));

}  // namespace
}  // namespace hepvine::vine
