#include "net/network.h"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "sim/engine.h"

namespace hepvine::net {
namespace {

using util::gbps;
using util::Tick;

struct NetFixture : public ::testing::Test {
  sim::Engine engine;
  Network net{engine};
};

TEST_F(NetFixture, SingleFlowTakesBytesOverBandwidth) {
  const LinkId a = net.add_link("a", 1e9);  // 1 GB/s
  const LinkId b = net.add_link("b", 1e9);
  Tick done_at = -1;
  net.start_flow({a, b}, 500'000'000, 0,
                 [&](FlowId) { done_at = engine.now(); });
  engine.run();
  // 0.5 GB at 1 GB/s = 0.5 s (plus the zero-delay recompute tick).
  EXPECT_NEAR(util::to_seconds(done_at), 0.5, 0.001);
}

TEST_F(NetFixture, LatencyDelaysStart) {
  const LinkId a = net.add_link("a", 1e9);
  Tick done_at = -1;
  net.start_flow({a}, 1'000'000, util::seconds(2.0),
                 [&](FlowId) { done_at = engine.now(); });
  engine.run();
  EXPECT_NEAR(util::to_seconds(done_at), 2.001, 0.001);
}

TEST_F(NetFixture, ZeroByteFlowCompletesAfterLatency) {
  const LinkId a = net.add_link("a", 1e9);
  Tick done_at = -1;
  net.start_flow({a}, 0, util::seconds(1.0),
                 [&](FlowId) { done_at = engine.now(); });
  engine.run();
  EXPECT_EQ(done_at, util::seconds(1.0));
}

TEST_F(NetFixture, TwoFlowsShareBottleneckEqually) {
  const LinkId shared = net.add_link("shared", 1e9);
  std::vector<Tick> done;
  for (int i = 0; i < 2; ++i) {
    net.start_flow({shared}, 500'000'000, 0,
                   [&](FlowId) { done.push_back(engine.now()); });
  }
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  // Both flows share 1 GB/s: each gets 0.5 GB/s -> 1 s.
  EXPECT_NEAR(util::to_seconds(done[0]), 1.0, 0.01);
  EXPECT_NEAR(util::to_seconds(done[1]), 1.0, 0.01);
}

TEST_F(NetFixture, RatesRecomputeWhenFlowFinishes) {
  const LinkId shared = net.add_link("shared", 1e9);
  Tick small_done = -1;
  Tick big_done = -1;
  net.start_flow({shared}, 100'000'000, 0,
                 [&](FlowId) { small_done = engine.now(); });
  net.start_flow({shared}, 500'000'000, 0,
                 [&](FlowId) { big_done = engine.now(); });
  engine.run();
  // Small: 0.1 GB at 0.5 GB/s = 0.2 s. Big: 0.1 GB at 0.5 GB/s by then,
  // remaining 0.4 GB at full 1 GB/s = 0.2 + 0.4 = 0.6 s.
  EXPECT_NEAR(util::to_seconds(small_done), 0.2, 0.01);
  EXPECT_NEAR(util::to_seconds(big_done), 0.6, 0.01);
}

TEST_F(NetFixture, MaxMinAllocatesSlackToUnconstrainedFlows) {
  // Flow A crosses both links; flow B only the second. Link 1 = 1 GB/s,
  // link 2 = 3 GB/s. Max-min: A gets 1 (bottlenecked by link 1), B gets
  // the remaining 2 on link 2 — NOT an equal 1.5/1.5 split.
  const LinkId l1 = net.add_link("l1", 1e9);
  const LinkId l2 = net.add_link("l2", 3e9);
  Tick a_done = -1;
  Tick b_done = -1;
  net.start_flow({l1, l2}, 1'000'000'000, 0,
                 [&](FlowId) { a_done = engine.now(); });
  net.start_flow({l2}, 2'000'000'000, 0,
                 [&](FlowId) { b_done = engine.now(); });
  engine.run();
  EXPECT_NEAR(util::to_seconds(a_done), 1.0, 0.02);
  EXPECT_NEAR(util::to_seconds(b_done), 1.0, 0.02);
}

TEST_F(NetFixture, ManyFlowsThroughOneLinkSerializeFairly) {
  const LinkId hub = net.add_link("hub", 1e9);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    const LinkId leaf = net.add_link("leaf" + std::to_string(i), 10e9);
    net.start_flow({hub, leaf}, 100'000'000, 0,
                   [&](FlowId) { ++completed; });
  }
  engine.run();
  EXPECT_EQ(completed, 10);
  // 10 x 0.1 GB through a 1 GB/s hub: all finish together at ~1 s.
  EXPECT_NEAR(util::to_seconds(engine.now()), 1.0, 0.02);
}

TEST_F(NetFixture, CancelledFlowNeverCompletes) {
  const LinkId a = net.add_link("a", 1e9);
  bool fired = false;
  const FlowId id = net.start_flow({a}, 1'000'000'000, 0,
                                   [&](FlowId) { fired = true; });
  engine.schedule_at(util::seconds(0.2), [&] { net.cancel_flow(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(NetFixture, CancelFreesBandwidthForOthers) {
  const LinkId shared = net.add_link("shared", 1e9);
  Tick done = -1;
  const FlowId victim =
      net.start_flow({shared}, 10'000'000'000ULL, 0, [](FlowId) {});
  net.start_flow({shared}, 500'000'000, 0,
                 [&](FlowId) { done = engine.now(); });
  engine.schedule_at(util::seconds(0.5), [&] { net.cancel_flow(victim); });
  engine.run();
  // Survivor: 0.25 GB in first 0.5 s (half rate), then 0.25 GB at full
  // rate -> total 0.75 s.
  EXPECT_NEAR(util::to_seconds(done), 0.75, 0.02);
}

TEST_F(NetFixture, LinkStatsAccumulateBytes) {
  const LinkId a = net.add_link("a", 1e9);
  net.start_flow({a}, 300'000'000, 0, [](FlowId) {});
  engine.run();
  EXPECT_NEAR(static_cast<double>(net.link_stats(a).bytes_carried),
              300'000'000.0, 1'000'000.0);
  EXPECT_EQ(net.link_stats(a).flows_carried, 1u);
}

TEST_F(NetFixture, CompletionCountersTrack) {
  const LinkId a = net.add_link("a", 1e9);
  net.start_flow({a}, 1'000, 0, [](FlowId) {});
  net.start_flow({a}, 2'000, 0, [](FlowId) {});
  engine.run();
  EXPECT_EQ(net.flows_completed(), 2u);
  EXPECT_EQ(net.total_bytes_completed(), 3'000u);
}

TEST_F(NetFixture, FlowRateVisibleWhileTransferring) {
  const LinkId a = net.add_link("a", 1e9);
  const FlowId id = net.start_flow({a}, 1'000'000'000, 0, [](FlowId) {});
  engine.run_until(util::seconds(0.1));
  EXPECT_NEAR(net.flow_rate(id), 1e9, 1e6);
}

TEST_F(NetFixture, SameTickBurstTriggersSingleRecomputeBatch) {
  const LinkId hub = net.add_link("hub", 1e9);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    net.start_flow({hub}, 10'000'000, 0, [&](FlowId) { ++completed; });
  }
  engine.run();
  EXPECT_EQ(completed, 100);
  // 100 x 10 MB = 1 GB over 1 GB/s -> ~1 s regardless of batching.
  EXPECT_NEAR(util::to_seconds(engine.now()), 1.0, 0.05);
}

TEST_F(NetFixture, CancelDuringSetupPhaseIsClean) {
  const LinkId a = net.add_link("a", 1e9);
  bool fired = false;
  const FlowId id = net.start_flow({a}, 1'000'000, util::seconds(5.0),
                                   [&](FlowId) { fired = true; });
  engine.schedule_at(util::seconds(1.0), [&] { net.cancel_flow(id); });
  engine.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(net.active_flows(), 0u);
  EXPECT_EQ(net.link_stats(a).bytes_carried, 0u);
}

TEST_F(NetFixture, ThreeLinkPathBottlenecksOnNarrowest) {
  const LinkId a = net.add_link("a", 4e9);
  const LinkId b = net.add_link("b", 1e9);  // narrowest
  const LinkId c = net.add_link("c", 2e9);
  Tick done = -1;
  net.start_flow({a, b, c}, 1'000'000'000, 0,
                 [&](FlowId) { done = engine.now(); });
  engine.run();
  EXPECT_NEAR(util::to_seconds(done), 1.0, 0.01);
}

TEST_F(NetFixture, CancelUnknownFlowIsNoop) {
  net.cancel_flow(999);
  net.cancel_flow(kInvalidFlow);
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(NetFixture, StaggeredArrivalsSettleProgressCorrectly) {
  // Flow A runs alone for 0.5 s (0.5 GB done), then B joins and halves
  // A's rate: A finishes its second 0.5 GB in 1 s -> total 1.5 s.
  const LinkId shared = net.add_link("shared", 1e9);
  Tick a_done = -1;
  net.start_flow({shared}, 1'000'000'000, 0,
                 [&](FlowId) { a_done = engine.now(); });
  engine.schedule_at(util::seconds(0.5), [&] {
    net.start_flow({shared}, 2'000'000'000, 0, [](FlowId) {});
  });
  engine.run();
  EXPECT_NEAR(util::to_seconds(a_done), 1.5, 0.02);
}

// --- fractional-byte settle residue (regression) -------------------------

TEST_F(NetFixture, SettleResidueNeverLosesBytes) {
  // A 3-way split of 1 GB/s gives each flow 333333333.33... B/s, so every
  // settle produces a fractional byte. Joining/leaving flows force many
  // settles at awkward instants; at the end the link must have carried
  // exactly the bytes that completed — the residue is carried per flow,
  // not truncated per settle.
  const LinkId shared = net.add_link("shared", 1e9);
  const std::uint64_t bytes = 100'000'007;  // prime: no clean divisions
  int completed = 0;
  for (int i = 0; i < 3; ++i) {
    net.start_flow({shared}, bytes, 0, [&](FlowId) { ++completed; });
  }
  // Churn: short flows join at odd ticks and force settles at fractional
  // progress points.
  for (int i = 0; i < 7; ++i) {
    engine.schedule_at(util::seconds(0.013 * (i + 1)), [&] {
      net.start_flow({shared}, 1'000'003, 0, [&](FlowId) { ++completed; });
    });
  }
  engine.run();
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(net.total_bytes_completed(), 3 * bytes + 7 * 1'000'003ULL);
  // Exact, not NEAR: completed flows attribute precisely their size.
  EXPECT_EQ(net.link_stats(shared).bytes_carried, net.total_bytes_completed());
}

// --- cancelled/failed flow accounting (regression) -----------------------

TEST_F(NetFixture, CancelAccountingInvariantHolds) {
  // Invariant: completed bytes + abandoned bytes == bytes the link carried.
  const LinkId shared = net.add_link("shared", 1e9);
  int completed = 0;
  const FlowId victim =
      net.start_flow({shared}, 1'000'000'000, 0, [&](FlowId) { ++completed; });
  net.start_flow({shared}, 400'000'000, 0, [&](FlowId) { ++completed; });
  engine.schedule_at(util::seconds(0.3), [&] { net.cancel_flow(victim); });
  engine.run();
  EXPECT_EQ(completed, 1);
  EXPECT_EQ(net.flows_cancelled(), 1u);
  // Victim carried 150 MB (half of 1 GB/s for 0.3 s) before the cancel.
  EXPECT_NEAR(static_cast<double>(net.bytes_abandoned()), 150e6, 1.0);
  EXPECT_EQ(net.link_stats(shared).bytes_carried,
            net.total_bytes_completed() + net.bytes_abandoned());
}

TEST_F(NetFixture, CancelDuringSetupAbandonsNothing) {
  const LinkId a = net.add_link("a", 1e9);
  const FlowId id = net.start_flow({a}, 1'000'000, util::seconds(5.0),
                                   [](FlowId) {});
  engine.schedule_at(util::seconds(1.0), [&] { net.cancel_flow(id); });
  engine.run();
  EXPECT_EQ(net.flows_cancelled(), 1u);
  EXPECT_EQ(net.bytes_abandoned(), 0u);
}

// --- fault-injection hooks ----------------------------------------------

TEST_F(NetFixture, FailFlowFiresListenerNotDone) {
  const LinkId a = net.add_link("a", 1e9);
  bool done_fired = false;
  FlowId failed = kInvalidFlow;
  net.set_fail_listener([&](FlowId id) { failed = id; });
  const FlowId id = net.start_flow({a}, 1'000'000'000, 0,
                                   [&](FlowId) { done_fired = true; });
  engine.schedule_at(util::seconds(0.2), [&] { net.fail_flow(id); });
  engine.run();
  EXPECT_FALSE(done_fired);
  EXPECT_EQ(failed, id);
  EXPECT_EQ(net.flows_failed(), 1u);
  EXPECT_EQ(net.flows_completed(), 0u);
  EXPECT_EQ(net.link_stats(a).bytes_carried, net.bytes_abandoned());
}

TEST_F(NetFixture, ArmedFaultFiresAtExactByteOffset) {
  const LinkId a = net.add_link("a", 1e9);
  Tick failed_at = -1;
  net.set_fail_listener([&](FlowId) { failed_at = engine.now(); });
  const FlowId id = net.start_flow({a}, 1'000'000'000, 0, [](FlowId) {});
  net.arm_flow_fault(id, 250'000'000);
  engine.run();
  // 250 MB at 1 GB/s: dies at 0.25 s having carried exactly 250 MB.
  EXPECT_NEAR(util::to_seconds(failed_at), 0.25, 0.001);
  EXPECT_EQ(net.bytes_abandoned(), 250'000'000u);
  EXPECT_EQ(net.flows_failed(), 1u);
}

TEST_F(NetFixture, LinkOutageStallsFlowUntilRestored) {
  const LinkId a = net.add_link("a", 1e9);
  Tick done = -1;
  net.start_flow({a}, 500'000'000, 0, [&](FlowId) { done = engine.now(); });
  engine.schedule_at(util::seconds(0.2), [&] { net.set_link_scale(a, 0.0); });
  engine.schedule_at(util::seconds(0.7), [&] { net.set_link_scale(a, 1.0); });
  engine.run();
  // 200 MB before the outage, stalled 0.5 s, 300 MB after: 1.0 s total.
  EXPECT_NEAR(util::to_seconds(done), 1.0, 0.01);
}

TEST_F(NetFixture, BrownoutScalesRateByFactor) {
  const LinkId a = net.add_link("a", 1e9);
  net.set_link_scale(a, 0.25);
  Tick done = -1;
  net.start_flow({a}, 500'000'000, 0, [&](FlowId) { done = engine.now(); });
  engine.run();
  EXPECT_NEAR(util::to_seconds(done), 2.0, 0.02);
  EXPECT_EQ(net.link_scale(a), 0.25);
}

// --- slot-map flow table -------------------------------------------------

TEST_F(NetFixture, FlowIdsStayUniqueAndValidAcrossSlotReuse) {
  // Waves of short flows force slot recycling while older ids retire; ids
  // must stay unique, stale lookups must miss, and the live count must
  // return to zero.
  const LinkId a = net.add_link("a", 1e9);
  std::vector<FlowId> ids;
  int completed = 0;
  for (int wave = 0; wave < 5; ++wave) {
    engine.schedule_at(wave * 10'000, [&] {
      for (int i = 0; i < 8; ++i) {
        ids.push_back(
            net.start_flow({a}, 1'000'000, 0, [&](FlowId) { ++completed; }));
      }
    });
  }
  engine.run();
  EXPECT_EQ(completed, 40);
  const std::set<FlowId> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), 40u);
  for (FlowId id : ids) {
    EXPECT_FALSE(net.flow_active(id));
    EXPECT_EQ(net.flow_rate(id), 0.0);
  }
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST_F(NetFixture, IncrementalRecomputeVisitsOnlyTouchedComponent) {
  // A long flow on link `a` and churn on disjoint link `b`: the long
  // flow's component is untouched by the churn, so after its initial
  // rating it is never settle-checked again. The reference path would
  // visit it on every one of the ~100 recomputes.
  const LinkId a = net.add_link("a", 1e9);
  const LinkId b = net.add_link("b", 1e9);
  int completed = 0;
  net.start_flow({a}, 2'000'000'000, 0, [&](FlowId) { ++completed; });
  for (int i = 0; i < 50; ++i) {
    engine.schedule_at(10'000 * (i + 1), [&] {
      net.start_flow({b}, 1'000'000, 0, [&](FlowId) { ++completed; });
    });
  }
  engine.run();
  EXPECT_EQ(completed, 51);
  // One visit for the long flow, one per short-flow arrival (departure
  // recomputes find an empty component).
  EXPECT_LE(net.recompute_flow_visits(), 51u + 5u);
}

// --- recompute-path parity: both paths must pass the same regressions ----

class RecomputePathParam : public ::testing::TestWithParam<bool> {
 protected:
  sim::Engine engine;
  Network net{engine, NetworkOptions{GetParam()}};
};

TEST_P(RecomputePathParam, ArmedFaultInsideResidualBytesStillFails) {
  // Three equal flows split 1 GB/s at 1e9/3 B/s each, so at t = 3.0 s
  // every flow has settled to a sub-half-byte residue while its completion
  // event sits one tick later (ceil rounding). A fourth flow arriving at
  // exactly 3.0 s forces a recompute that lands all three in the
  // finish-immediately branch. Flow A is armed to die on its final byte:
  // the armed failure must win there — a transfer injected to die in its
  // last bytes must not slip through as a completion.
  const LinkId shared = net.add_link("shared", 1e9);
  const std::uint64_t bytes = 1'000'000'000;
  bool a_done = false;
  FlowId a_failed = kInvalidFlow;
  Tick failed_at = -1;
  net.set_fail_listener([&](FlowId id) {
    a_failed = id;
    failed_at = engine.now();
  });
  int others_done = 0;
  const FlowId a =
      net.start_flow({shared}, bytes, 0, [&](FlowId) { a_done = true; });
  net.start_flow({shared}, bytes, 0, [&](FlowId) { ++others_done; });
  net.start_flow({shared}, bytes, 0, [&](FlowId) { ++others_done; });
  net.arm_flow_fault(a, bytes);
  engine.schedule_at(3'000'000, [&] {
    net.start_flow({shared}, bytes, 0, [&](FlowId) { ++others_done; });
  });
  engine.run();
  EXPECT_FALSE(a_done);
  EXPECT_EQ(a_failed, a);
  EXPECT_EQ(failed_at, 3'000'000);
  EXPECT_EQ(net.flows_failed(), 1u);
  EXPECT_EQ(others_done, 3);
  EXPECT_EQ(net.flows_completed(), 3u);
  // The armed flow abandons (essentially) all of its bytes, and the link
  // accounting invariant still holds exactly.
  EXPECT_NEAR(static_cast<double>(net.bytes_abandoned()), 1e9, 2.0);
  EXPECT_EQ(net.link_stats(shared).bytes_carried,
            net.total_bytes_completed() + net.bytes_abandoned());
}

TEST_P(RecomputePathParam, StarvedFlowIsRescuedNotHung) {
  // Force the defensive water-filling break (via the test seam) with a
  // transferring flow still unrated. Without the rescue path nothing ever
  // schedules an event for the flow and the run hangs; with it the
  // network warns, re-dirties the flow's links, and re-rates it one tick
  // later.
  const LinkId a = net.add_link("a", 1e9);
  Tick done_at = -1;
  std::vector<std::pair<Tick, FlowId>> warns;
  net.set_warn_listener([&](Tick t, FlowId f, const char*) {
    warns.emplace_back(t, f);
  });
  const FlowId id = net.start_flow({a}, 1'000'000, 0,
                                   [&](FlowId) { done_at = engine.now(); });
  net.debug_starve_next_water_fill();
  engine.run();
  EXPECT_EQ(net.starvation_rescues(), 1u);
  ASSERT_EQ(warns.size(), 1u);
  EXPECT_EQ(warns[0].first, 0);
  EXPECT_EQ(warns[0].second, id);
  // Rescued at tick 1, then 1 MB at 1 GB/s.
  EXPECT_EQ(done_at, 1 + util::transfer_time(1'000'000, 1e9));
  EXPECT_EQ(net.flows_completed(), 1u);
}

INSTANTIATE_TEST_SUITE_P(RecomputePaths, RecomputePathParam, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& pinfo) {
                           return pinfo.param ? "Incremental" : "Reference";
                         });

class FlowCountParam : public ::testing::TestWithParam<int> {};

TEST_P(FlowCountParam, AggregateThroughputConservedUnderSharing) {
  // Property: N equal flows through one link finish in N * (bytes/bw),
  // i.e. the link is never over- or under-committed.
  sim::Engine engine;
  Network net(engine);
  const LinkId hub = net.add_link("hub", 1e9);
  const int n = GetParam();
  int completed = 0;
  for (int i = 0; i < n; ++i) {
    net.start_flow({hub}, 50'000'000, 0, [&](FlowId) { ++completed; });
  }
  engine.run();
  EXPECT_EQ(completed, n);
  EXPECT_NEAR(util::to_seconds(engine.now()), 0.05 * n, 0.002 * n + 0.01);
}

INSTANTIATE_TEST_SUITE_P(Sharing, FlowCountParam,
                         ::testing::Values(1, 2, 4, 8, 16, 64));

}  // namespace
}  // namespace hepvine::net
