// Node-local object store tests: the bookkeeping core (put/ref/spill/drop
// lifecycle, LRU victim order, holder uniqueness), the vine integration
// (zero-copy colocated exchange, forced spill for remote consumers, inert
// when disabled), and the adversarial eviction-vs-live-reference contract:
// an object a running consumer holds by reference must never be the
// capacity-spill victim, and once a forced spill materializes a disk copy
// the consumer's dispatch-time pin shields it from pressure eviction.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "dag/task_graph.h"
#include "dag/value.h"
#include "exec/scheduler.h"
#include "objstore/object_store.h"
#include "obs/observer.h"
#include "obs/txn_query.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"

namespace hepvine::vine {
namespace {

using namespace hepvine::testutil;
using objstore::ObjectStore;

// ---------------------------------------------------------------------
// Bookkeeping core
// ---------------------------------------------------------------------

TEST(ObjectStore, PutRefSpillVictimLifecycle) {
  ObjectStore store;
  store.reset(/*nodes=*/2, /*capacity_bytes=*/100);

  store.put(0, /*file=*/5, /*bytes=*/40, /*now=*/10);
  EXPECT_TRUE(store.holds(0, 5));
  EXPECT_FALSE(store.holds(1, 5));
  EXPECT_EQ(store.holder_of(5), 0);
  EXPECT_EQ(store.object_bytes(0, 5), 40u);
  EXPECT_EQ(store.used(0), 40u);
  EXPECT_FALSE(store.over_capacity(0));

  store.put(0, /*file=*/3, /*bytes=*/70, /*now=*/20);
  EXPECT_EQ(store.used(0), 110u);
  EXPECT_TRUE(store.over_capacity(0));

  // LRU: the older unreferenced object is the victim.
  EXPECT_EQ(store.spill_victim(0), 5);

  // A live reference exempts an object from victim selection; when every
  // resident object is referenced there is no victim at all (the store
  // tolerates running over budget rather than destroying live state).
  store.add_ref(0, 5);
  EXPECT_EQ(store.spill_victim(0), 3);
  store.add_ref(0, 3);
  EXPECT_EQ(store.spill_victim(0), data::kInvalidFile);
  store.release_ref(0, 5);
  EXPECT_EQ(store.spill_victim(0), 5);

  EXPECT_TRUE(store.erase(0, 5));
  EXPECT_FALSE(store.erase(0, 5));  // already gone
  EXPECT_EQ(store.holder_of(5), objstore::kNoHolder);
  EXPECT_EQ(store.used(0), 70u);
  EXPECT_EQ(store.total_objects(), 1u);

  EXPECT_EQ(store.counters().puts, 2u);
  EXPECT_EQ(store.counters().put_bytes, 110u);
  EXPECT_EQ(store.counters().ref_hits, 2u);
}

TEST(ObjectStore, VictimTiebreakIsSmallestFileId) {
  ObjectStore store;
  store.reset(1, 10);
  store.put(0, 7, 4, /*now=*/5);
  store.put(0, 2, 4, /*now=*/5);  // same put_at: id breaks the tie
  EXPECT_EQ(store.spill_victim(0), 2);
}

TEST(ObjectStore, DropNodeWipesSilently) {
  ObjectStore store;
  store.reset(3, 100);
  store.put(1, 8, 10, 1);
  store.put(1, 9, 10, 2);
  store.add_ref(1, 8);
  store.drop_node(1);
  EXPECT_EQ(store.total_objects(), 0u);
  EXPECT_EQ(store.used(1), 0u);
  EXPECT_EQ(store.holder_of(8), objstore::kNoHolder);
  // Release after a wipe must be tolerated: the consumer attempt that
  // held the handle dies asynchronously.
  store.release_ref(1, 8);
  EXPECT_EQ(store.spill_victim(1), data::kInvalidFile);
}

TEST(ObjectStore, ObjectsIterateInAscendingFileOrder) {
  ObjectStore store;
  store.reset(2, 1000);
  store.put(1, 9, 1, 3);
  store.put(0, 4, 2, 1);
  store.put(1, 6, 3, 2);
  const auto items = store.objects();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].file, 4);
  EXPECT_EQ(items[0].holder, 0);
  EXPECT_EQ(items[1].file, 6);
  EXPECT_EQ(items[2].file, 9);
  EXPECT_EQ(items[2].entry.bytes, 1u);
}

// ---------------------------------------------------------------------
// Vine integration: serverless runs with the store on and off
// ---------------------------------------------------------------------

struct StoreRun {
  exec::RunReport report;
  std::string txn;
};

[[nodiscard]] exec::RunOptions store_options() {
  exec::RunOptions options = fast_options();
  options.mode = exec::ExecMode::kFunctionCalls;
  options.exec_time_jitter = 0.0;  // makespan deltas are structural
  options.observability.enabled = true;
  options.observability.txn_log = true;
  options.observability.perf_log = false;
  options.observability.chrome_trace = false;
  return options;
}

[[nodiscard]] StoreRun run_store(const apps::WorkloadSpec& workload,
                                 bool object_store,
                                 std::uint64_t capacity = 4 * util::kGiB,
                                 std::uint32_t workers = 4) {
  const dag::TaskGraph graph = apps::build_workload(workload, 3);
  cluster::Cluster cluster(tiny_cluster(workers));
  VineTunables tun;
  tun.object_store = object_store;
  tun.object_store_bytes = capacity;
  VineScheduler scheduler(taskvine_policy(), tun);
  StoreRun out;
  out.report = scheduler.run(graph, cluster, store_options());
  out.txn = out.report.observation->txn().text();
  return out;
}

TEST(ObjectStoreRun, ZeroCopyExchangeKeepsResultsAndIsNotSlower) {
  const apps::WorkloadSpec workload = tiny_dv3();
  const auto on = run_store(workload, /*object_store=*/true);
  const auto off = run_store(workload, /*object_store=*/false);
  ASSERT_TRUE(on.report.success) << on.report.failure_reason;
  ASSERT_TRUE(off.report.success) << off.report.failure_reason;

  // Same physics either way.
  const auto expected =
      reference_digest(apps::build_workload(workload, 3));
  EXPECT_EQ(sink_digest(on.report), expected);
  EXPECT_EQ(sink_digest(off.report), expected);

  // Dropping serialization and the scratch-disk write from every
  // colocated exchange must not cost wall-clock time.
  EXPECT_LE(on.report.makespan, off.report.makespan);

  // The store actually carried traffic: outputs published in memory,
  // colocated consumers took references, and remote consumers forced
  // spills onto the ordinary replica/peer-transfer paths.
  EXPECT_GT(on.report.store_puts, 0u);
  EXPECT_GT(on.report.store_put_bytes, 0u);
  EXPECT_GT(on.report.store_ref_hits, 0u);
  EXPECT_GT(on.report.store_spills, 0u);

  // Txn verbs agree with the report counters.
  const auto events = obs::txnq::parse_log(on.txn);
  const auto ss = obs::txnq::store_summary(events);
  EXPECT_EQ(ss.puts, on.report.store_puts);
  EXPECT_EQ(ss.refs, on.report.store_ref_hits);
  EXPECT_EQ(ss.spills, on.report.store_spills);
  EXPECT_EQ(ss.drops, on.report.store_drops);
}

TEST(ObjectStoreRun, StoreOffIsInert) {
  const auto off = run_store(tiny_dv3(), /*object_store=*/false);
  ASSERT_TRUE(off.report.success) << off.report.failure_reason;
  EXPECT_EQ(off.report.store_puts, 0u);
  EXPECT_EQ(off.report.store_put_bytes, 0u);
  EXPECT_EQ(off.report.store_ref_hits, 0u);
  EXPECT_EQ(off.report.store_spills, 0u);
  EXPECT_EQ(off.report.store_spill_bytes, 0u);
  EXPECT_EQ(off.report.store_drops, 0u);
  EXPECT_EQ(off.txn.find(" STORE "), std::string::npos)
      << "a disabled store must not emit STORE transactions";
}

TEST(ObjectStoreRun, TinyCapacityForcesSpillEverythingAndStaysCorrect) {
  // A 1 MB budget cannot hold a single 30 MB process output: every put
  // immediately self-spills to disk and the run degrades gracefully to
  // the classic disk path.
  const apps::WorkloadSpec workload = tiny_dv3();
  const auto run = run_store(workload, /*object_store=*/true,
                             /*capacity=*/1 * util::kMB);
  ASSERT_TRUE(run.report.success) << run.report.failure_reason;
  EXPECT_EQ(sink_digest(run.report),
            reference_digest(apps::build_workload(workload, 3)));
  EXPECT_GT(run.report.store_puts, 0u);
  EXPECT_EQ(run.report.store_spills, run.report.store_puts)
      << "every object overflows a 1 MB budget the moment it is put";
}

// ---------------------------------------------------------------------
// Eviction vs. live references (the satellite-3 regression)
// ---------------------------------------------------------------------

dag::ValuePtr scalar(double v) {
  return std::make_shared<dag::ScalarValue>(v);
}

struct PressureFixture {
  dag::TaskGraph graph;
  dag::TaskId tp = 0;   // producer whose output stays live-referenced
  dag::TaskId tp2 = 0;  // producer whose output overflows the store
};

/// One paper worker (108 GB scratch), a 32 MB store, and two dataset
/// chunks that cannot coexist on disk:
///
///   P  (no inputs, 30 MB out) ------+
///   A  (chunk0 60 GB, 1 MB out) --+ |
///                                 | v
///   P2 (dep A, 1 s, 30 MB out)    B (deps only, 3 s: by-reference)
///        |                        |
///        +----------------------> D (chunk1 50 GB)
///                                 |
///                                 E (chunk0 again, sink)
///
/// B is a pure in-memory consumer: it dispatches the moment A finishes,
/// takes by-reference handles on P's and A's outputs, and computes for
/// 3 s. P2 runs concurrently and completes first; its 30 MB put
/// overflows the 32 MB budget — victim selection must skip the
/// referenced P output (and the referenced A output) and spill P2's own
/// output instead. D then stages chunk1 next to the still-live chunk0,
/// forcing a pressure eviction against a disk that also holds the
/// spilled, consumer-pinned copy of P2's output; E re-stages chunk0 into
/// the reclaimed space.
PressureFixture pressure_fixture() {
  PressureFixture fx;
  const data::FileId chunk0 =
      fx.graph.add_input_file("chunk0", 60 * util::kGB, /*content_seed=*/201);
  const data::FileId chunk1 =
      fx.graph.add_input_file("chunk1", 50 * util::kGB, /*content_seed=*/202);

  dag::TaskSpec p;
  p.category = "produce";
  p.function = "produce";
  p.cpu_seconds = 0.2;
  p.output_bytes = 30 * util::kMB;
  p.fn = [](const std::vector<dag::ValuePtr>&) { return scalar(2.0); };
  fx.tp = fx.graph.add_task(p);

  dag::TaskSpec a;
  a.category = "scan";
  a.function = "scan";
  a.input_files = {chunk0};
  a.cpu_seconds = 0.3;
  a.output_bytes = 1 * util::kMB;
  a.fn = [](const std::vector<dag::ValuePtr>&) { return scalar(3.0); };
  const dag::TaskId ta = fx.graph.add_task(a);

  dag::TaskSpec b;
  b.category = "combine";
  b.function = "combine";
  b.deps = {fx.tp, ta};  // no dataset inputs: a by-reference FunctionCall
  b.cpu_seconds = 3.0;
  b.output_bytes = 1 * util::kMB;
  b.fn = [](const std::vector<dag::ValuePtr>& in) {
    return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() +
                  dynamic_cast<const dag::ScalarValue&>(*in[1]).get() + 1.0);
  };
  const dag::TaskId tb = fx.graph.add_task(b);

  dag::TaskSpec p2;
  p2.category = "produce";
  p2.function = "produce";
  p2.deps = {ta};
  p2.cpu_seconds = 1.0;
  p2.output_bytes = 30 * util::kMB;
  p2.fn = [](const std::vector<dag::ValuePtr>& in) {
    return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() * 2.0);
  };
  fx.tp2 = fx.graph.add_task(p2);

  dag::TaskSpec d;
  d.category = "merge";
  d.function = "merge";
  d.deps = {tb, fx.tp2};
  d.input_files = {chunk1};
  d.cpu_seconds = 0.5;
  d.output_bytes = 1 * util::kMB;
  d.fn = [](const std::vector<dag::ValuePtr>& in) {
    return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() +
                  dynamic_cast<const dag::ScalarValue&>(*in[1]).get());
  };
  const dag::TaskId td = fx.graph.add_task(d);

  dag::TaskSpec e;
  e.category = "merge";
  e.function = "merge";
  e.deps = {td};
  e.input_files = {chunk0};  // re-read after the eviction wave
  e.cpu_seconds = 0.2;
  e.output_bytes = 1 * util::kMB;
  e.fn = [](const std::vector<dag::ValuePtr>& in) {
    return scalar(dynamic_cast<const dag::ScalarValue&>(*in[0]).get() * 3.0);
  };
  fx.graph.add_task(e);
  return fx;
}

TEST(ObjectStoreRun, CapacitySpillSkipsLiveReferencesUnderDiskPressure) {
  PressureFixture fx = pressure_fixture();
  cluster::Cluster cluster(tiny_cluster(/*workers=*/1));
  VineTunables tun;
  tun.object_store = true;
  tun.object_store_bytes = 32 * util::kMB;
  VineScheduler scheduler(taskvine_policy(), tun);
  const auto report = scheduler.run(fx.graph, cluster, store_options());

  ASSERT_TRUE(report.success) << report.failure_reason;
  EXPECT_EQ(report.worker_crashes, 0u)
      << "spills and evictions must absorb both pressure waves";
  EXPECT_EQ(report.lineage_resets, 0u)
      << "no result may be destroyed while a consumer holds it";
  EXPECT_EQ(sink_digest(report), reference_digest(pressure_fixture().graph));

  // Both pressure mechanisms fired: the store overflowed exactly once
  // (P2's put) and the disk evicted a dataset chunk at least once.
  EXPECT_EQ(report.store_puts, 5u);  // P, A, B, P2, D outputs
  EXPECT_EQ(report.store_spills, 1u);
  EXPECT_EQ(report.store_spill_bytes, 30 * util::kMB);
  EXPECT_GE(report.store_ref_hits, 4u);
  EXPECT_GE(report.store_drops, 2u)
      << "unspilled outputs must die in memory via GC, never on disk";
  EXPECT_GE(report.cache_evictions, 1u);

  // The adversarial core, pinned down in the txn log: the overflow chose
  // P2's own (unreferenced) output, not the older P output B was holding
  // by reference — P's output never spilled and was dropped from memory
  // when B finished.
  ASSERT_TRUE(report.observation != nullptr);
  const std::string& txn = report.observation->txn().text();
  const std::string p_out = std::to_string(fx.graph.task(fx.tp).output_file);
  const std::string p2_out =
      std::to_string(fx.graph.task(fx.tp2).output_file);
  EXPECT_NE(txn.find(" STORE " + p2_out + " SPILL "), std::string::npos)
      << txn;
  EXPECT_EQ(txn.find(" STORE " + p_out + " SPILL "), std::string::npos)
      << "a live-referenced object was chosen as spill victim:\n" << txn;
  EXPECT_NE(txn.find(" STORE " + p_out + " DROP "), std::string::npos)
      << txn;
}

TEST(ObjectStoreRun, PressurePathIsDeterministic) {
  auto once = [] {
    PressureFixture fx = pressure_fixture();
    cluster::Cluster cluster(tiny_cluster(/*workers=*/1));
    VineTunables tun;
    tun.object_store = true;
    tun.object_store_bytes = 32 * util::kMB;
    VineScheduler scheduler(taskvine_policy(), tun);
    const auto report = scheduler.run(fx.graph, cluster, store_options());
    EXPECT_TRUE(report.success) << report.failure_reason;
    return report.observation->txn().text();
  };
  const std::string a = once();
  const std::string b = once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace hepvine::vine
