// The time-attribution profiler: core-second blame accounting, critical-
// path extraction, span-log serialization, and their determinism contract.
//
// Two layers of coverage:
//  - a hand-built SpanLog whose ledger, critical path, and speedup bounds
//    are known exactly and asserted to the tick, and
//  - a property sweep over every scheduler backend × fault schedule: the
//    accounting identity (Σ blame == cores × makespan, no negative idle)
//    must hold on every run, the ledger-derived manager busy fraction must
//    equal the legacy direct measurement exactly, and serialized spans /
//    profile text / profile JSON must be bit-identical across replays.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "dd/dask_distributed.h"
#include "obs/attribution.h"
#include "obs/chrome_trace.h"
#include "obs/critical_path.h"
#include "obs/profile_report.h"
#include "obs/span.h"
#include "obs/txn_query.h"
#include "scheduler_test_util.h"
#include "vine/vine_scheduler.h"
#include "wq/work_queue.h"

namespace hepvine {
namespace {

using namespace hepvine::testutil;
using obs::Blame;
using util::Tick;

std::int64_t blame_ticks(const obs::BlameVector& v, Blame b) {
  return v[static_cast<std::size_t>(b)];
}

obs::AttemptSpan make_span(std::int64_t task, std::uint32_t attempt,
                           std::int32_t worker, Tick ready, Tick dispatched,
                           Tick staged, Tick exec, Tick compute,
                           Tick exec_end, Tick retrieved, bool failed,
                           const std::string& category) {
  obs::AttemptSpan s;
  s.task = task;
  s.attempt = attempt;
  s.worker = worker;
  s.ready_at = ready;
  s.dispatched_at = dispatched;
  s.staged_at = staged;
  s.exec_at = exec;
  s.compute_at = compute;
  s.exec_end_at = exec_end;
  s.retrieved_at = retrieved;
  s.failed = failed;
  s.category = category;
  return s;
}

/// A three-task chain (0 → 1 → 2) on two workers whose every segment is
/// chosen by hand, so the ledger and critical path are known to the tick.
/// Worker 0 has 2 cores and stays up; worker 1 has 1 core and is lost at
/// t=500 (of a 1000-tick makespan). Task 2 fails once on worker 1 before
/// succeeding there.
obs::SpanLog hand_built_log() {
  obs::SpanLog log;
  log.set_worker_cores({2, 1});
  log.set_deps(1, {0});
  log.set_deps(2, {1});
  log.worker_up(0, 0);
  log.worker_up(0, 1);
  log.worker_down(500, 1);
  // Worker 0: dispatch 20, transfer 10, import 20, compute 140.
  log.add_attempt(
      make_span(0, 1, 0, 0, 10, 30, 40, 60, 200, 210, false, "process"));
  // Worker 0: dispatch 40, transfer 10, import 30, compute 100.
  log.add_attempt(
      make_span(1, 1, 0, 210, 220, 260, 270, 300, 400, 410, false,
                "process"));
  // Worker 1, failed during staging: recovery [100, 180] = 80.
  log.add_attempt(
      make_span(2, 1, 1, 90, 100, -1, -1, -1, -1, 180, true, "accumulate"));
  // Worker 1: dispatch 10, transfer 10, import 10, compute 40.
  log.add_attempt(
      make_span(2, 2, 1, 410, 420, 430, 440, 450, 490, 495, false,
                "accumulate"));
  obs::FlowSpan flow;
  flow.flow = 7;
  flow.bytes = 1000;
  flow.carried = 600;
  flow.started_at = 30;
  flow.ended_at = 40;
  flow.outcome = 'F';
  log.add_flow(flow);
  obs::CacheSpan drop;
  drop.t = 450;
  drop.worker = 0;
  drop.file = 3;
  drop.bytes = 2048;
  drop.verb = 'E';
  log.add_cache(drop);
  log.set_manager(680, 42);
  log.set_run(1000, "hand-built", true);
  return log;
}

TEST(Attribution, HandBuiltLedgerIsExact) {
  const obs::AttributionLedger ledger = obs::attribute(hand_built_log());

  EXPECT_EQ(ledger.makespan, 1000);
  EXPECT_EQ(ledger.capacity, 3000);  // 2×1000 + 1×1000
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kCompute), 280);
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kImport), 60);
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kTransferWait), 30);
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kDispatchWait), 70);
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kRecovery), 80);
  // Worker 1 disappears at 500 with 1 core: 500 preempted core-ticks.
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kPreempted), 500);
  // Idle is the residual: w0 2000−370 = 1630, w1 500−150 = 350.
  EXPECT_EQ(blame_ticks(ledger.ticks, Blame::kIdle), 1980);
  EXPECT_EQ(ledger.attributed(), ledger.capacity);
  EXPECT_EQ(ledger.identity_error(), 0);
  EXPECT_TRUE(ledger.identity_ok());

  ASSERT_EQ(ledger.workers.size(), 2u);
  EXPECT_EQ(ledger.workers[0].capacity, 2000);
  EXPECT_EQ(ledger.workers[0].alive, 1000);
  EXPECT_EQ(blame_ticks(ledger.workers[0].ticks, Blame::kIdle), 1630);
  EXPECT_EQ(ledger.workers[1].capacity, 1000);
  EXPECT_EQ(ledger.workers[1].alive, 500);
  EXPECT_EQ(blame_ticks(ledger.workers[1].ticks, Blame::kPreempted), 500);
  EXPECT_EQ(blame_ticks(ledger.workers[1].ticks, Blame::kRecovery), 80);
  EXPECT_EQ(blame_ticks(ledger.workers[1].ticks, Blame::kIdle), 350);

  ASSERT_EQ(ledger.tenants.size(), 2u);
  const auto& process = ledger.tenants.at("process");
  EXPECT_EQ(process.attempts, 2);
  EXPECT_EQ(blame_ticks(process.ticks, Blame::kCompute), 240);
  const auto& accumulate = ledger.tenants.at("accumulate");
  EXPECT_EQ(accumulate.attempts, 2);
  EXPECT_EQ(blame_ticks(accumulate.ticks, Blame::kRecovery), 80);
  EXPECT_EQ(blame_ticks(accumulate.ticks, Blame::kCompute), 40);

  EXPECT_EQ(ledger.manager_busy_ticks, 680);
  EXPECT_EQ(ledger.manager_ops, 42u);
  EXPECT_DOUBLE_EQ(ledger.manager_busy_fraction, 0.68);
}

TEST(Attribution, NegativeIdleBreaksTheIdentity) {
  // Three concurrent attempts on a 1-core worker: the residual goes
  // negative and identity_ok must flag it even though the sum still
  // telescopes to capacity.
  obs::SpanLog log;
  log.set_worker_cores({1});
  log.worker_up(0, 0);
  for (std::int64_t t = 0; t < 3; ++t) {
    log.add_attempt(
        make_span(t, 1, 0, 0, 10, 20, 30, 40, 900, 910, false, "p"));
  }
  log.set_run(1000, "overcommit", true);
  const obs::AttributionLedger ledger = obs::attribute(log);
  EXPECT_EQ(ledger.identity_error(), 0);
  EXPECT_LT(blame_ticks(ledger.workers[0].ticks, Blame::kIdle), 0);
  EXPECT_FALSE(ledger.identity_ok());
}

TEST(CriticalPath, HandBuiltChainIsExact) {
  const obs::SpanLog log = hand_built_log();
  const obs::CriticalPath path = obs::extract_critical_path(log);

  // Chain is 0 → 1 → 2, root first; gates tile exactly.
  ASSERT_EQ(path.nodes.size(), 3u);
  EXPECT_EQ(path.nodes[0].task, 0);
  EXPECT_EQ(path.nodes[1].task, 1);
  EXPECT_EQ(path.nodes[2].task, 2);
  EXPECT_EQ(path.nodes[0].gate, 0);
  EXPECT_EQ(path.nodes[0].finish, 200);
  EXPECT_EQ(path.nodes[1].gate, 200);
  EXPECT_EQ(path.nodes[1].finish, 400);
  EXPECT_EQ(path.nodes[2].gate, 400);
  EXPECT_EQ(path.nodes[2].finish, 490);
  EXPECT_EQ(path.start, 0);
  EXPECT_EQ(path.finish, 490);
  EXPECT_EQ(path.realized_length(), 490);

  // Per-category path ticks, worked out by hand (the [gate → ready] gap of
  // task 2 is recovery because its first attempt failed; task 1's gap is
  // dispatch-wait).
  EXPECT_EQ(blame_ticks(path.ticks, Blame::kCompute), 280);
  EXPECT_EQ(blame_ticks(path.ticks, Blame::kImport), 60);
  EXPECT_EQ(blame_ticks(path.ticks, Blame::kTransferWait), 30);
  EXPECT_EQ(blame_ticks(path.ticks, Blame::kDispatchWait), 110);
  EXPECT_EQ(blame_ticks(path.ticks, Blame::kRecovery), 10);
  std::int64_t sum = 0;
  for (const std::int64_t t : path.ticks) sum += t;
  EXPECT_EQ(sum, path.realized_length());

  // Amdahl bounds follow exactly.
  EXPECT_DOUBLE_EQ(path.overall_speedup_bound(), 1000.0 / 490.0);
  EXPECT_DOUBLE_EQ(path.speedup_bound_without(Blame::kCompute),
                   1000.0 / 210.0);
  EXPECT_DOUBLE_EQ(path.speedup_bound_without(Blame::kDispatchWait),
                   1000.0 / 380.0);
  EXPECT_DOUBLE_EQ(path.category_share(Blame::kCompute), 280.0 / 490.0);
}

TEST(SpanLog, SerializeParseRoundTripsExactly) {
  const obs::SpanLog log = hand_built_log();
  const std::string text = log.serialize();
  const auto parsed = obs::SpanLog::parse(text);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->serialize(), text);
  EXPECT_EQ(parsed->worker_cores(), log.worker_cores());
  EXPECT_EQ(parsed->attempts().size(), log.attempts().size());
  EXPECT_EQ(parsed->flows().size(), log.flows().size());
  EXPECT_EQ(parsed->cache_events().size(), log.cache_events().size());
  EXPECT_EQ(parsed->deps(), log.deps());
  EXPECT_EQ(parsed->makespan(), log.makespan());
  EXPECT_EQ(parsed->scheduler(), log.scheduler());
  EXPECT_EQ(parsed->manager_busy_ticks(), log.manager_busy_ticks());

  // Profiles built from the original and the round-tripped log agree.
  const obs::ProfileReport a = obs::build_profile(log);
  const obs::ProfileReport b = obs::build_profile(*parsed);
  EXPECT_EQ(obs::profile_text(log, a, 5), obs::profile_text(*parsed, b, 5));
  EXPECT_EQ(obs::profile_json(log, a), obs::profile_json(*parsed, b));

  EXPECT_FALSE(obs::SpanLog::parse("not a spans file").has_value());
}

TEST(SpanLog, ParseRejectsTxnLogText) {
  // Handing a transactions log to the span parser must fail cleanly (the
  // vine_profile CLI then points the user at txn_query), never produce a
  // zero-filled log.
  const std::string txn =
      "# time_us SUBJECT id EVENT ...\n"
      "0 MANAGER 0 START\n"
      "12 TASK 7 WAITING process 0\n"
      "99 MANAGER 0 END\n";
  EXPECT_FALSE(obs::SpanLog::parse(txn).has_value());
}

TEST(SpanLog, LifecycleTraceNestsAndEmptyLogIsByteStable) {
  obs::ChromeTraceBuilder trace;
  trace.set_lane_name(0, "manager");
  const std::string before = trace.to_json();

  // Empty span log: the builder's output must not change at all.
  obs::emit_lifecycle_trace(obs::SpanLog{}, trace);
  EXPECT_EQ(trace.to_json(), before);

  // The hand-built log: one outer B/E pair per attempt that ran, nested
  // phase pairs inside, in timestamp order within each attempt.
  obs::emit_lifecycle_trace(hand_built_log(), trace);
  const std::string json = trace.to_json();
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("task 0 attempt 1"), std::string::npos);
  EXPECT_NE(json.find("fetch-inputs"), std::string::npos);
  EXPECT_NE(json.find("startup-import"), std::string::npos);
  // The failed attempt never reached staging: only the outer span exists.
  EXPECT_NE(json.find("attempt-failed"), std::string::npos);
}

std::unique_ptr<exec::SchedulerBackend> make_scheduler(
    const std::string& name) {
  if (name == "taskvine") return std::make_unique<vine::VineScheduler>();
  if (name == "work-queue") return std::make_unique<wq::WorkQueueScheduler>();
  return std::make_unique<dd::DaskDistScheduler>();
}

class ProfileMatrix : public ::testing::TestWithParam<const char*> {
 protected:
  dag::TaskGraph graph_ = apps::build_workload(tiny_dv3(24), 47);

  exec::RunOptions base_options() const {
    exec::RunOptions options = fast_options();
    options.seed = 47;
    options.max_task_retries = 30;
    return options;
  }

  exec::RunReport run(const exec::RunOptions& options,
                      double preempt_per_hour = 0.0) const {
    cluster::Cluster cluster(tiny_cluster(4, preempt_per_hour));
    return make_scheduler(GetParam())->run(graph_, cluster, options);
  }

  /// The tentpole invariants every run must satisfy, faults or not.
  void expect_profile_sound(const exec::RunReport& report) const {
    const obs::AttributionLedger ledger = obs::attribute(report.profile);
    EXPECT_GT(ledger.capacity, 0);
    EXPECT_EQ(ledger.identity_error(), 0);
    EXPECT_TRUE(ledger.identity_ok());
    // Ledger-derived busy fraction replaces the legacy measurement and
    // must agree with it exactly (same integer inputs, same division).
    EXPECT_EQ(report.manager_busy_fraction,
              report.manager_busy_fraction_legacy);
    // The critical path is a lower bound on the makespan and its per-node
    // blame tiles its realized length exactly.
    const obs::CriticalPath path =
        obs::extract_critical_path(report.profile);
    if (report.success) {
      ASSERT_FALSE(path.nodes.empty());
      EXPECT_LE(path.realized_length(), report.makespan);
      std::int64_t sum = 0;
      for (const std::int64_t t : path.ticks) sum += t;
      EXPECT_EQ(sum, path.realized_length());
      EXPECT_GE(path.overall_speedup_bound(), 1.0);
    }
  }
};

TEST_P(ProfileMatrix, IdentityHoldsOnCleanRun) {
  const auto report = run(base_options());
  ASSERT_TRUE(report.success) << report.failure_reason;
  expect_profile_sound(report);
  // Every attempt of a clean run succeeded and landed on a real worker.
  for (const auto& s : report.profile.attempts()) {
    EXPECT_FALSE(s.failed);
    EXPECT_GE(s.worker, 0);
    EXPECT_LE(s.ready_at, s.dispatched_at);
    EXPECT_LE(s.dispatched_at, s.staged_at);
    EXPECT_LE(s.staged_at, s.exec_at);
    EXPECT_LE(s.exec_at, s.compute_at);
    EXPECT_LE(s.compute_at, s.exec_end_at);
    EXPECT_LE(s.exec_end_at, s.retrieved_at);
  }
}

TEST_P(ProfileMatrix, IdentityHoldsUnderFaults) {
  // A clean probe gives timestamps to aim the fault schedule at.
  const auto clean = run(base_options());
  ASSERT_TRUE(clean.success) << clean.failure_reason;

  exec::RunOptions options = base_options();
  options.faults.crash_worker(clean.makespan / 3, 1)
      .crash_worker(clean.makespan / 2, 2)
      .kill_transfers(clean.makespan / 5, 2)
      .fs_brownout(clean.makespan / 4, clean.makespan / 8, 0.25);
  const auto report = run(options, /*preempt_per_hour=*/40.0);
  ASSERT_TRUE(report.success) << report.failure_reason;
  expect_profile_sound(report);
  // Recovery blame only exists when something actually failed, and the
  // sweep is only meaningful if something did.
  const obs::AttributionLedger ledger = obs::attribute(report.profile);
  if (report.task_failures > 0) {
    EXPECT_GT(blame_ticks(ledger.ticks, Blame::kRecovery), 0);
  }
}

TEST_P(ProfileMatrix, ProfileOutputsReplayBitIdentically) {
  exec::RunOptions options = base_options();
  options.faults.crash_worker(20 * util::kSec, 1)
      .kill_transfers(10 * util::kSec, 2);
  const auto a = run(options, /*preempt_per_hour=*/20.0);
  const auto b = run(options, /*preempt_per_hour=*/20.0);
  ASSERT_TRUE(a.success) << a.failure_reason;
  ASSERT_TRUE(b.success) << b.failure_reason;

  EXPECT_EQ(a.profile.serialize(), b.profile.serialize());
  const obs::ProfileReport pa = obs::build_profile(a.profile);
  const obs::ProfileReport pb = obs::build_profile(b.profile);
  EXPECT_EQ(obs::profile_text(a.profile, pa, 10),
            obs::profile_text(b.profile, pb, 10));
  EXPECT_EQ(obs::profile_json(a.profile, pa),
            obs::profile_json(b.profile, pb));
}

TEST_P(ProfileMatrix, TxnSpanLinesMatchTheSpanLog) {
  exec::RunOptions options = base_options();
  options.observability.enabled = true;
  options.observability.txn_log = true;
  options.observability.perf_log = false;
  options.observability.chrome_trace = false;
  const auto report = run(options);
  ASSERT_TRUE(report.success) << report.failure_reason;
  ASSERT_TRUE(report.observation != nullptr);

  const auto events =
      obs::txnq::parse_log(report.observation->txn().text());
  const auto spans = obs::txnq::span_records(events);
  ASSERT_EQ(spans.size(), report.profile.attempts().size());
  // The txn rollup and the ledger agree on the occupied categories (both
  // derive from the same boundaries by the same clamping rules).
  const auto rollup = obs::txnq::profile_rollup(spans);
  const obs::AttributionLedger ledger = obs::attribute(report.profile);
  EXPECT_EQ(rollup.compute, blame_ticks(ledger.ticks, Blame::kCompute));
  EXPECT_EQ(rollup.import_cost, blame_ticks(ledger.ticks, Blame::kImport));
  EXPECT_EQ(rollup.transfer_wait,
            blame_ticks(ledger.ticks, Blame::kTransferWait));
  EXPECT_EQ(rollup.dispatch_wait,
            blame_ticks(ledger.ticks, Blame::kDispatchWait));
  EXPECT_EQ(rollup.recovery, blame_ticks(ledger.ticks, Blame::kRecovery));
}

TEST_P(ProfileMatrix, LifecycleTraceOptInLeavesLegacyTraceByteStable) {
  exec::RunOptions options = base_options();
  options.observability.enabled = true;
  options.observability.txn_log = false;
  options.observability.perf_log = false;
  options.observability.chrome_trace = true;
  const auto plain = run(options);
  ASSERT_TRUE(plain.success) << plain.failure_reason;

  exec::RunOptions opted = options;
  opted.observability.trace_lifecycle_spans = true;
  const auto with_spans = run(opted);
  ASSERT_TRUE(with_spans.success) << with_spans.failure_reason;

  const std::string plain_json = plain.observation->trace().to_json();
  const std::string spans_json = with_spans.observation->trace().to_json();
  // Off by default: no B/E events anywhere in the legacy trace.
  EXPECT_EQ(plain_json.find("\"ph\":\"B\""), std::string::npos);
  // Opt-in: strictly additive nested lifecycle events.
  EXPECT_NE(spans_json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(spans_json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_GT(with_spans.observation->trace().events(),
            plain.observation->trace().events());
}

INSTANTIATE_TEST_SUITE_P(Schedulers, ProfileMatrix,
                         ::testing::Values("taskvine", "work-queue",
                                           "dask.distributed"));

}  // namespace
}  // namespace hepvine
