#include "sim/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace hepvine::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, TaggedConstructionIsolatesComponents) {
  Rng batch(7, "batch");
  Rng events(7, "events");
  EXPECT_NE(batch.next_u64(), events.next_u64());
  Rng batch2(7, "batch");
  EXPECT_NE(batch.next_u64(), batch2.next_u64());  // batch advanced once
  Rng batch3(7, "batch");
  batch3.next_u64();
  EXPECT_EQ(batch2.next_u64(), batch3.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(42);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformLoHiRespectsBounds) {
  Rng rng(42);
  for (int i = 0; i < 1'000; ++i) {
    const double u = rng.uniform(3.0, 7.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, UniformBelowCoversRange) {
  Rng rng(42);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100'000; ++i) {
    counts[rng.uniform_below(10)] += 1;
  }
  for (int c : counts) {
    EXPECT_GT(c, 9'000);
    EXPECT_LT(c, 11'000);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (rng.bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 100'000.0, 0.25, 0.01);
}

TEST(Rng, ExponentialMeanIsApproximatelyRight) {
  Rng rng(11);
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
  }
}

}  // namespace
}  // namespace hepvine::sim
