// DV3 analysis example: the paper's flagship application at reduced scale.
//
// Runs the DV3 Higgs->bb search over a synthetic dataset on a simulated
// opportunistic cluster, with the full Stack-4 configuration (TaskVine,
// serverless function calls, peer transfers, import hoisting), then prints
// the physics: the reconstructed dijet mass spectrum with its Higgs peak,
// and the run's systems-level report.
#include <cstdio>

#include "apps/workloads.h"
#include "cluster/calibration.h"
#include "dag/evaluate.h"
#include "hep/histogram.h"
#include "hep/processors.h"
#include "metrics/task_trace.h"
#include "vine/vine_scheduler.h"

using namespace hepvine;

int main() {
  // DV3-Small shape with enough real events to resolve the 125 GeV peak.
  apps::WorkloadSpec spec = apps::dv3_small();
  spec.process_tasks = 160;
  spec.events_per_chunk = 20'000;
  spec.input_bytes = 25 * util::kGB;

  const dag::TaskGraph graph = apps::build_workload(spec, /*seed=*/2024);
  std::printf("DV3 analysis: %zu tasks over %s of (synthetic) CMS data\n",
              graph.size(), util::format_bytes(graph.input_bytes()).c_str());

  // 20 opportunistic workers; ~1%/h preemption like the paper's cluster.
  cluster::ClusterSpec cspec = cluster::paper_cluster(
      20, cluster::paper_worker_node(), storage::vast_spec(), 2024);
  cluster::Cluster cluster(cspec);

  exec::RunOptions options;
  options.mode = exec::ExecMode::kFunctionCalls;
  options.seed = 2024;
  // Full observability: transactions log, perf time-series, and a
  // Perfetto-loadable trace, written next to the binary.
  options.observability.enabled = true;
  options.observability.txn_path = "dv3_txn.log";
  options.observability.perf_path = "dv3_perf.log";
  options.observability.trace_path = "dv3_trace.json";

  vine::VineScheduler scheduler;
  const exec::RunReport report = scheduler.run(graph, cluster, options);
  if (!report.success) {
    std::fprintf(stderr, "run failed: %s\n", report.failure_reason.c_str());
    return 1;
  }

  std::printf("completed in %.1f simulated seconds on %u cores "
              "(%zu attempts, %u preemptions)\n\n",
              report.makespan_seconds(), cluster.total_cores(),
              report.task_attempts, report.worker_preemptions);

  const auto* hists = dynamic_cast<const hep::HistogramSet*>(
      report.results.begin()->second.get());
  const hep::Histogram1D* mass = hists->find("dijet_mass");
  std::printf("b-tagged dijet invariant mass (%llu candidate pairs):\n",
              static_cast<unsigned long long>(mass->entries()));
  const double width = (mass->hi() - mass->lo()) / mass->bins();
  double peak_center = 0;
  double peak_value = 0;
  for (std::uint32_t b = 0; b < mass->bins(); b += 5) {
    double sum = 0;
    for (std::uint32_t i = b; i < b + 5 && i < mass->bins(); ++i) {
      sum += mass->bin_content(i);
    }
    const double center = mass->lo() + width * (b + 2.5);
    if (center > 60 && sum > peak_value) {
      peak_value = sum;
      peak_center = center;
    }
    if (center < 40 || center > 210) continue;
    const int bar = static_cast<int>(sum / 120.0);
    std::printf("  %5.0f GeV |%-50.*s| %.0f\n", center, bar,
                "##################################################", sum);
  }
  std::printf("\npeak near %.0f GeV -- the injected H->bb resonance "
              "(m_H = 125 GeV)\n",
              peak_center);

  std::printf("\ntask execution time distribution:\n%s",
              metrics::TaskTrace::render_histogram(
                  report.trace.exec_time_histogram(0.5, 50, 3))
                  .c_str());

  if (report.observation) {
    std::printf("\nlogs written: dv3_txn.log (%llu events), dv3_perf.log "
                "(%zu samples), dv3_trace.json (open in ui.perfetto.dev)\n",
                static_cast<unsigned long long>(
                    report.observation->txn().events()),
                report.observation->perf().rows().size());
    std::printf("inspect with: tools/txn_query dv3_txn.log summary\n");
  }
  return 0;
}
