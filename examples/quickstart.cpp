// Quickstart: the C++ analogue of the paper's Fig 4 sample application.
//
// Build a small "SingleMu"-style dataset, map the DV3 processor over its
// chunks, accumulate the partial histograms with a tree reduction, and
// execute the graph on a simulated campus cluster with the TaskVine
// scheduler in serverless (function-calls) mode with peer transfers —
// exactly the configuration the paper's sample code requests:
//
//     manager.compute(..., peer_transfers=True, task_mode='function-calls')
//
// The run prints the MET histogram and verifies the distributed result is
// bit-identical to a serial in-process evaluation.
#include <cstdio>

#include "apps/workloads.h"
#include "cluster/calibration.h"
#include "dag/evaluate.h"
#include "exec/scheduler.h"
#include "hep/histogram.h"
#include "vine/vine_scheduler.h"

using namespace hepvine;

int main() {
  // A small dataset: 8 ROOT-like files, 5 chunks per file (Fig 4's
  // `chunks_per_file`), 2000 synthetic events per chunk.
  apps::WorkloadSpec spec = apps::dv3_small();
  spec.name = "SingleMu";
  spec.process_tasks = 40;
  spec.chunks_per_file = 5;
  spec.events_per_chunk = 2000;
  spec.input_bytes = 4 * util::kGB;

  const dag::TaskGraph graph = apps::build_workload(spec, /*seed=*/7);
  std::printf("graph: %zu tasks (%zu roots, %zu sinks), %s input\n",
              graph.size(), graph.roots().size(), graph.sinks().size(),
              util::format_bytes(graph.input_bytes()).c_str());

  // A 10-worker slice of the campus cluster on the VAST filesystem.
  cluster::Cluster cluster(cluster::paper_cluster(
      10, cluster::paper_worker_node(), storage::vast_spec(), /*seed=*/7));

  exec::RunOptions options;
  options.mode = exec::ExecMode::kFunctionCalls;  // serverless
  options.peer_transfers = true;
  options.hoist_imports = true;
  options.seed = 7;

  vine::VineScheduler scheduler;
  const exec::RunReport report = scheduler.run(graph, cluster, options);

  std::printf("scheduler: %s\n", report.scheduler.c_str());
  std::printf("success:   %s\n", report.success ? "yes" : "no");
  std::printf("makespan:  %.1f s (simulated)\n", report.makespan_seconds());
  std::printf("attempts:  %zu (%u preemptions)\n", report.task_attempts,
              report.worker_preemptions);

  // The workflow's single sink is the fully merged HistogramSet.
  const auto& [sink_id, value] = *report.results.begin();
  const auto* hists = dynamic_cast<const hep::HistogramSet*>(value.get());
  if (hists == nullptr) {
    std::fprintf(stderr, "unexpected result type\n");
    return 1;
  }
  const hep::Histogram1D* met = hists->find("met");
  std::printf("\nMET histogram (%llu entries, mean %.1f GeV):\n",
              static_cast<unsigned long long>(met->entries()), met->mean());
  for (std::uint32_t b = 0; b < met->bins(); b += 10) {
    double sum = 0;
    for (std::uint32_t i = b; i < b + 10 && i < met->bins(); ++i) {
      sum += met->bin_content(i);
    }
    const int bar = static_cast<int>(sum / 400.0);
    std::printf("  %5.0f-%5.0f GeV |%-40.*s| %.0f\n", met->lo() + 2 * b,
                met->lo() + 2 * (b + 10), bar,
                "########################################", sum);
  }

  // Ground truth: serial evaluation of the same graph.
  const auto reference = dag::evaluate_serially(graph);
  const bool identical =
      reference.at(sink_id)->digest() == value->digest();
  std::printf("\ndistributed result %s serial reference\n",
              identical ? "MATCHES" : "DIFFERS FROM");
  return identical && report.success ? 0 : 1;
}
