// The paper's Fig 4 sample application, line for line, in this library's
// front-end API.
//
// Paper (Python):                        Here (C++):
//   dataset = get_dataset("SingleMu")      coffea::Analysis("SingleMu")
//   NanoEventsFactory.from_root(             .files(...)
//     dataset,                               .chunks_per_file(5)
//     uproot_options={"chunks_per_file":5})  .events_per_chunk(...)
//   hda.Hist...fill(events.MET.pt)           .processor(...)  // fills MET
//   manager = DaskVine(...)                  (TaskVine scheduler)
//   manager.compute(                         .compute(cluster, options)
//     peer_transfers=True,                   options.peer_transfers = true
//     task_mode='function-calls',            options.mode = kFunctionCalls
//     lib_resources={'cores':12,...},        node.cores = 12
//     import_modules=[numpy, ...])           options.imports = {...}
#include <cstdio>

#include "cluster/calibration.h"
#include "coffea/analysis.h"
#include "hep/processors.h"
#include "pyrt/python_runtime.h"

using namespace hepvine;

int main() {
  // A custom user-defined processor: histogram MET (what Fig 4's
  // hda.Hist.new.Reg(100, 0, 200, name="met").fill(events.MET.pt) does).
  auto met_processor = [](const hep::EventChunk& events) {
    hep::HistogramSet out;
    hep::Histogram1D& met = out.get("met", 100, 0, 200);
    for (float pt : events.met_pt) met.fill(pt);
    return out;
  };

  exec::RunOptions options;
  options.peer_transfers = true;                    // peer_transfers=True
  options.mode = exec::ExecMode::kFunctionCalls;    // 'function-calls'
  options.hoist_imports = true;                     // import hoisting
  options.imports =
      pyrt::ImportSet{{pyrt::numpy_lib(), pyrt::scipy_lib()}};
  options.seed = 4;

  const coffea::ComputeResult result =
      coffea::Analysis("SingleMu")
          .files(12, 500 * util::kMB)
          .chunks_per_file(5)  // uproot_options={"chunks_per_file": 5}
          .events_per_chunk(5'000)
          .processor("met_histogram", met_processor)
          .processor_costs(2.0, 20 * util::kMB, util::kGB)
          .tree_accumulate(8)
          .seed(4)
          .compute(cluster::paper_cluster(8, cluster::paper_worker_node(),
                                          storage::vast_spec(), 4),
                   options);

  const hep::Histogram1D* met = result.histograms->find("met");
  std::printf("computed MET histogram over %llu events in %.1f simulated "
              "seconds (%s scheduler)\n",
              static_cast<unsigned long long>(met->entries()),
              result.report.makespan_seconds(),
              result.report.scheduler.c_str());
  std::printf("  mean MET %.1f GeV, overflow %.0f\n", met->mean(),
              met->overflow());
  return met->entries() == 12 * 5 * 5'000 ? 0 : 1;
}
