// Serverless execution example: standard tasks vs LibraryTask/FunctionCall.
//
// Builds one workload and executes it four ways on identical clusters —
// {standard tasks, function calls} x {imports hoisted, per-invocation} —
// then prints a comparison. This is the mechanism behind the paper's
// Stack-3 -> Stack-4 jump and its Fig 9/10 discussion: a persistent
// library process eliminates per-task interpreter startup, and hoisting
// imports into the library preamble eliminates per-invocation library
// loading.
#include <cstdio>

#include "apps/workloads.h"
#include "cluster/calibration.h"
#include "vine/vine_scheduler.h"

using namespace hepvine;

int main() {
  apps::WorkloadSpec spec = apps::dv3_small();
  spec.process_tasks = 240;
  spec.events_per_chunk = 500;
  spec.input_bytes = 10 * util::kGB;
  // Short tasks: per-invocation overhead dominates, as in the paper's
  // fine-grained regime.
  spec.process_cpu_median = 1.2;

  std::printf("240 short analysis tasks on 8 workers, four execution "
              "configurations:\n\n");
  std::printf("  %-34s %10s %10s\n", "configuration", "makespan", "speedup");

  double baseline = 0;
  for (auto [label, mode, hoist] :
       {std::tuple{"standard tasks", exec::ExecMode::kStandardTasks, false},
        std::tuple{"function calls, imports per-call",
                   exec::ExecMode::kFunctionCalls, false},
        std::tuple{"function calls, hoisted imports",
                   exec::ExecMode::kFunctionCalls, true}}) {
    const dag::TaskGraph graph = apps::build_workload(spec, /*seed=*/5);
    cluster::Cluster cluster(cluster::paper_cluster(
        8, cluster::paper_worker_node(), storage::vast_spec(), 5));
    exec::RunOptions options;
    options.seed = 5;
    options.mode = mode;
    options.hoist_imports = hoist;
    vine::VineScheduler scheduler;
    const exec::RunReport report = scheduler.run(graph, cluster, options);
    if (!report.success) {
      std::fprintf(stderr, "%s failed: %s\n", label,
                   report.failure_reason.c_str());
      return 1;
    }
    if (baseline == 0) baseline = report.makespan_seconds();
    std::printf("  %-34s %9.1fs %9.2fx\n", label, report.makespan_seconds(),
                baseline / report.makespan_seconds());
  }

  std::printf(
      "\nWhy: a standard task pays interpreter startup + full imports +\n"
      "function deserialization on every execution; a FunctionCall forks\n"
      "from a persistent LibraryTask, and hoisting moves the imports into\n"
      "the library preamble so they are paid once per worker, not once\n"
      "per invocation (paper Sections III-C and IV-B).\n");
  return 0;
}
