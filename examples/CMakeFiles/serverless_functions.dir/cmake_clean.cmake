file(REMOVE_RECURSE
  "CMakeFiles/serverless_functions.dir/serverless_functions.cpp.o"
  "CMakeFiles/serverless_functions.dir/serverless_functions.cpp.o.d"
  "serverless_functions"
  "serverless_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
