# Empty dependencies file for serverless_functions.
# This may be replaced when dependencies are built.
