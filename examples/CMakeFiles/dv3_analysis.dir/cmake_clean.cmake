file(REMOVE_RECURSE
  "CMakeFiles/dv3_analysis.dir/dv3_analysis.cpp.o"
  "CMakeFiles/dv3_analysis.dir/dv3_analysis.cpp.o.d"
  "dv3_analysis"
  "dv3_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dv3_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
