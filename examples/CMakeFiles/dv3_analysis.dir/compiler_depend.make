# Empty compiler generated dependencies file for dv3_analysis.
# This may be replaced when dependencies are built.
