file(REMOVE_RECURSE
  "CMakeFiles/triphoton_tree_reduction.dir/triphoton_tree_reduction.cpp.o"
  "CMakeFiles/triphoton_tree_reduction.dir/triphoton_tree_reduction.cpp.o.d"
  "triphoton_tree_reduction"
  "triphoton_tree_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/triphoton_tree_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
