# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for triphoton_tree_reduction.
