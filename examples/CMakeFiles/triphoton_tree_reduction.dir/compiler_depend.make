# Empty compiler generated dependencies file for triphoton_tree_reduction.
# This may be replaced when dependencies are built.
