# Empty compiler generated dependencies file for fig4_sample_application.
# This may be replaced when dependencies are built.
