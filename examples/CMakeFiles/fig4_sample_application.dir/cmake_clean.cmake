file(REMOVE_RECURSE
  "CMakeFiles/fig4_sample_application.dir/fig4_sample_application.cpp.o"
  "CMakeFiles/fig4_sample_application.dir/fig4_sample_application.cpp.o.d"
  "fig4_sample_application"
  "fig4_sample_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_sample_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
