// RS-TriPhoton example: restructuring a reduction DAG (paper Fig 11).
//
// The original RS-TriPhoton application reduced each dataset with a single
// task, pulling every multi-GB partial result onto one worker and
// overflowing its scratch disk. This example runs both topologies on the
// same simulated cluster and prints the per-worker cache-usage picture for
// each, demonstrating why the tree rewrite was necessary.
#include <cstdio>

#include "apps/workloads.h"
#include "cluster/calibration.h"
#include "hep/histogram.h"
#include "vine/vine_scheduler.h"

using namespace hepvine;

namespace {

exec::RunReport run_variant(apps::ReductionShape shape) {
  apps::WorkloadSpec spec = apps::rs_triphoton();
  spec.process_tasks = 280;  // 70 partials per dataset
  spec.datasets = 4;
  spec.input_bytes = 50 * util::kGB;
  spec.events_per_chunk = 2'000;
  // ~10 GB partials: a single-node reduction must colocate ~700 GB on one
  // 700 GB scratch disk — the paper's overflow scenario.
  spec.process_output_bytes = 10 * util::kGB;
  spec.reduce_output_bytes = 10 * util::kGB;
  spec.reduction = shape;

  const dag::TaskGraph graph = apps::build_workload(spec, /*seed=*/77);
  cluster::ClusterSpec cspec = cluster::paper_cluster(
      12, cluster::triphoton_worker_node(), storage::vast_spec(), 77);
  cluster::Cluster cluster(cspec);

  exec::RunOptions options;
  options.mode = exec::ExecMode::kFunctionCalls;
  options.seed = 77;
  options.max_task_retries = 12;
  options.cache_sample_interval = 2 * util::kSec;

  vine::VineScheduler scheduler;
  return scheduler.run(graph, cluster, options);
}

}  // namespace

int main() {
  std::printf("RS-TriPhoton: single-node vs tree reduction\n");
  std::printf("(280 process tasks x ~10 GB partials, 4 datasets, 12 "
              "workers with 700 GB scratch)\n");

  for (auto [label, shape] :
       {std::pair{"single-node reduction (original application)",
                  apps::ReductionShape::kSingleNode},
        std::pair{"binary/8-ary tree reduction (restructured)",
                  apps::ReductionShape::kTree}}) {
    const exec::RunReport report = run_variant(shape);
    std::printf("\n=== %s ===\n", label);
    std::printf("outcome: %s, makespan %.0fs, overflow crashes %u, "
                "task failures %zu\n",
                report.success ? "succeeded" : "FAILED",
                report.makespan_seconds(), report.worker_crashes,
                report.task_failures);
    std::printf("peak worker cache: %s (skew max/median %.1fx)\n",
                util::format_bytes(report.cache.global_peak()).c_str(),
                report.cache.peak_skew());
    std::printf("%s", report.cache.render(report.makespan, 64, 12).c_str());

    if (report.success) {
      const auto* hists = dynamic_cast<const hep::HistogramSet*>(
          report.results.begin()->second.get());
      const hep::Histogram1D* mass = hists->find("triphoton_mass");
      std::printf("tri-photon candidates: %.0f (resonance search at "
                  "~800 GeV)\n",
                  mass->integral());
    }
  }
  return 0;
}
