# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_hash[1]_include.cmake")
include("/root/repo/build/tests/test_units[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_pyrt[1]_include.cmake")
include("/root/repo/build/tests/test_batch[1]_include.cmake")
include("/root/repo/build/tests/test_cluster[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_task_graph[1]_include.cmake")
include("/root/repo/build/tests/test_builders[1]_include.cmake")
include("/root/repo/build/tests/test_histogram[1]_include.cmake")
include("/root/repo/build/tests/test_events[1]_include.cmake")
include("/root/repo/build/tests/test_processors[1]_include.cmake")
include("/root/repo/build/tests/test_task_state[1]_include.cmake")
include("/root/repo/build/tests/test_vine[1]_include.cmake")
include("/root/repo/build/tests/test_vine_features[1]_include.cmake")
include("/root/repo/build/tests/test_coffea[1]_include.cmake")
include("/root/repo/build/tests/test_exec_util[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_wq[1]_include.cmake")
include("/root/repo/build/tests/test_dd[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
