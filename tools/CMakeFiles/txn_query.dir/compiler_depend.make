# Empty compiler generated dependencies file for txn_query.
# This may be replaced when dependencies are built.
