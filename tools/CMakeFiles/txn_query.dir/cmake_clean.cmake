file(REMOVE_RECURSE
  "CMakeFiles/txn_query.dir/txn_query.cpp.o"
  "CMakeFiles/txn_query.dir/txn_query.cpp.o.d"
  "txn_query"
  "txn_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
