file(REMOVE_RECURSE
  "CMakeFiles/vine_profile.dir/vine_profile.cpp.o"
  "CMakeFiles/vine_profile.dir/vine_profile.cpp.o.d"
  "vine_profile"
  "vine_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vine_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
