# Empty compiler generated dependencies file for vine_profile.
# This may be replaced when dependencies are built.
