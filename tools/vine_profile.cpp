// vine_profile: turn a span log captured by a scheduler run into a
// time-attribution profile — core-second blame accounting, per-worker and
// per-tenant rollups, and the DAG critical path with Amdahl-style speedup
// bounds.
//
// Usage:
//   vine_profile <run.spans>                  text report (top 5 path links)
//   vine_profile <run.spans> report [k]       text report, top-k path links
//   vine_profile <run.spans> json             machine-readable profile
//   vine_profile <run.spans> trace <out.json> Perfetto/Chrome trace with
//                                             nested lifecycle spans
//
// Exit status doubles as the CI accounting gate: 0 = profile produced and
// the core-second identity held exactly (sum of blame == cores x makespan,
// no worker over-committed); 3 = profile produced but the identity was
// violated; 1/2 = I/O, parse, or usage errors.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/chrome_trace.h"
#include "obs/profile_report.h"
#include "obs/span.h"
#include "obs/txn_query.h"

namespace {

using namespace hepvine;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <run.spans> [command]\n"
               "commands:\n"
               "  report [k]        text profile, top-k critical-path links "
               "(default)\n"
               "  json              machine-readable profile\n"
               "  trace <out.json>  Chrome/Perfetto trace with nested "
               "lifecycle spans\n",
               argv0);
  return 2;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

/// 0 when the accounting identity held, 3 when it was violated — the
/// CI gate that every attributed profile must sum exactly to capacity.
int identity_status(const obs::ProfileReport& profile) {
  return profile.ledger.identity_ok() ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string path = argv[1];
  const std::string cmd = argc >= 3 ? argv[2] : "report";

  bool ok = false;
  const std::string text = read_file(path, ok);
  if (!ok) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  const auto log = obs::SpanLog::parse(text);
  if (!log) {
    if (obs::txnq::looks_like_txn_log(text)) {
      std::fprintf(stderr,
                   "error: %s is a transactions log, not a span log — "
                   "profile it with `txn_query %s profile` instead (and if "
                   "that reports no SPAN lines, the run predates the "
                   "profiler and cannot be attributed)\n",
                   path.c_str(), path.c_str());
      return 1;
    }
    std::fprintf(stderr, "error: %s is not a span log (expected a "
                         "'# hepvine spans v1' header)\n",
                 path.c_str());
    return 1;
  }
  if (log->attempts().empty()) {
    std::fprintf(stderr,
                 "error: %s parsed as a span log but carries no attempt "
                 "spans — an empty or truncated capture cannot be "
                 "attributed\n",
                 path.c_str());
    return 1;
  }

  if (cmd == "report") {
    std::size_t top_k = 5;
    if (argc >= 4) {
      top_k = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
    }
    const obs::ProfileReport profile = obs::build_profile(*log);
    std::fputs(obs::profile_text(*log, profile, top_k).c_str(), stdout);
    return identity_status(profile);
  }

  if (cmd == "json") {
    const obs::ProfileReport profile = obs::build_profile(*log);
    std::fputs(obs::profile_json(*log, profile).c_str(), stdout);
    return identity_status(profile);
  }

  if (cmd == "trace") {
    if (argc < 4) return usage(argv[0]);
    obs::ChromeTraceBuilder trace;
    obs::emit_lifecycle_trace(*log, trace);
    std::ofstream out(argv[3], std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", argv[3]);
      return 1;
    }
    out << trace.to_json();
    const obs::ProfileReport profile = obs::build_profile(*log);
    std::fprintf(stderr, "wrote %zu trace events to %s\n", trace.events(),
                 argv[3]);
    return identity_status(profile);
  }

  return usage(argv[0]);
}
