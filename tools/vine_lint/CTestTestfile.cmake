# CMake generated Testfile for 
# Source directory: /root/repo/tools/vine_lint
# Build directory: /root/repo/tools/vine_lint
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
