#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hepvine::lint {

namespace {

const RuleInfo kRules[kRuleCount] = {
    {Rule::kUnorderedIter, "VL001", "unordered-iter",
     "iterate a deterministically ordered snapshot (std::map, or sort the "
     "keys first); if the order provably never escapes the loop, annotate "
     "the file with // vine-lint: allow(unordered-iter)"},
    {Rule::kAmbientEntropy, "VL002", "ambient-entropy",
     "simulation code must take time from the engine clock and randomness "
     "from sim::Rng (xoshiro256**); read the environment only through the "
     "util/env.h helpers"},
    {Rule::kPointerSort, "VL003", "pointer-sort",
     "sort on a stable key (id, name, tick) instead of an address; pointer "
     "values differ run to run with ASLR and allocation order"},
    {Rule::kUninitPod, "VL004", "uninit-pod",
     "brace- or equals-initialize the member (e.g. `std::uint64_t seq = 0;`) "
     "so structs crossing the txn-log/digest boundary never carry "
     "indeterminate bytes"},
    {Rule::kTxnSubject, "VL005", "txn-subject",
     "register the subject in kTxnSubjects in obs/txn_log.h so txn_query "
     "can parse the line"},
    {Rule::kFloatAccum, "VL006", "float-accum",
     "accumulate through util::DetSum (compensated summation) so digest "
     "inputs do not drift with rounding order"},
    {Rule::kSnapshotCompleteness, "VL007", "snapshot-completeness",
     "serialize the member in every SnapshotBuilder writer (b.field / "
     "field_i / field_s / field_rng) or annotate it with "
     "// vine-snapshot: derived(<why it is rebuilt, not state>) — an "
     "unserialized member silently diverges the RESTORE rerun from the "
     "anchor snapshot"},
    {Rule::kHandleGeneration, "VL008", "handle-generation",
     "cancel() the stored handle (or check pending()) before re-arming it, "
     "or hand it to engine.reschedule_at/after which supersedes in place; "
     "only cancel()/pending() are generation-checked, so any other access "
     "can touch a recycled slot"},
    {Rule::kFlatAliasing, "VL009", "flat-container-aliasing",
     "re-find() after any insert/erase/operator[] on a FlatMap/FlatSet — "
     "the backing sorted vector reallocates and shifts, invalidating every "
     "outstanding reference and iterator"},
    {Rule::kTunableParity, "VL010", "tunable-parity",
     "keep the reference implementation reachable (else arm, ternary, or a "
     "negated early-out) and name the tunable in a differential test under "
     "tests/ so the fast path stays verifiable against it"},
    {Rule::kPragmaHygiene, "VL011", "pragma-hygiene",
     "fix the pragma: rule names must match --list-rules, vine-snapshot "
     "ops are state | derived(<why>) | serialized(<how>), vine-fastpath "
     "ops are opt-in, and suppressions need a trailing justification"},
};

// ---------------------------------------------------------------------------
// Lexer: a C++-shaped token stream plus the comment list (for pragmas).
// Preprocessor directives are skipped; adjacent analysis that needs them
// (include detection, VL005/VL006 file gates) works on the raw text.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = kPunct;
  std::string text;  // for kString: the literal's inner content, unquoted
  int line = 0;
};

struct Comment {
  std::string text;
  int line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

LexResult lex(const std::string& text) {
  LexResult out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto push = [&](Token::Kind kind, std::string body, int at) {
    out.tokens.push_back(Token{kind, std::move(body), at});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments.push_back(Comment{text.substr(i + 2, end - i - 2), line});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back(
          Comment{text.substr(i + 2, j - i - 2), start_line});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // String literal (with optional raw-string handling via the ident path).
    if (c == '"') {
      std::string body;
      std::size_t j = i + 1;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; be forgiving
        body += text[j];
        ++j;
      }
      push(Token::kString, body, line);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != '\'') {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j + 1];
          j += 2;
          continue;
        }
        body += text[j];
        ++j;
      }
      push(Token::kChar, body, line);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      push(Token::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      std::string id = text.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim"
      if (j < n && text[j] == '"' && !id.empty() && id.back() == 'R') {
        std::size_t open = text.find('(', j + 1);
        if (open != std::string::npos) {
          const std::string delim = text.substr(j + 1, open - j - 1);
          const std::string closer = ")" + delim + "\"";
          std::size_t close = text.find(closer, open + 1);
          if (close == std::string::npos) close = n;
          std::string body = text.substr(open + 1, close - open - 1);
          line += static_cast<int>(
              std::count(body.begin(), body.end(), '\n'));
          push(Token::kString, std::move(body), line);
          i = (close == n) ? n : close + closer.size();
          continue;
        }
      }
      push(Token::kIdent, std::move(id), line);
      i = j;
      continue;
    }
    // Multi-char punctuation we care about; everything else single-char.
    static const char* kTwoChar[] = {"::", "->", "++", "--", "+=", "-=",
                                     "*=", "/=", "%=", "&=", "|=", "^=",
                                     "==", "!=", "<=", ">=", "&&", "||"};
    bool matched = false;
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      for (const char* p : kTwoChar) {
        if (two == p) {
          push(Token::kPunct, two, line);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push(Token::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pragmas.
//   // vine-lint: allow(rule) | suppress(rule)
//     allow() covers the whole file; suppress() its own line and the next.
//   // vine-snapshot: state | derived(<why>) | serialized(<how>)
//     state marks the next struct/class as snapshot-bearing; derived and
//     serialized exempt the member declared on the same or next line.
//   // vine-fastpath: opt-in
//     marks the tunable declared on the same or next line as a fast path
//     that VL010 holds to reference-branch and differential-test parity.
// Malformed pragmas (unknown rule names, unknown ops, empty reasons) are
// collected as issues and reported as VL011 — a typo in a suppression must
// never silently disable nothing.
// ---------------------------------------------------------------------------

struct PragmaIssue {
  int line = 0;
  std::string message;
};

struct FilePragmas {
  std::set<Rule> allowed;
  std::map<int, std::set<Rule>> suppressed_at;
  std::vector<PragmaIssue> issues;
  /// Lines bearing `// vine-lint: suppress(...)` and whether a trailing
  /// justification follows the pragma groups.
  std::vector<std::pair<int, bool>> suppress_sites;
  std::set<int> state_lines;                 // lines bearing the state pragma
  std::map<int, std::string> member_exempt;  // line -> "derived: <why>" etc
  std::set<int> fastpath_lines;              // opt-in tunable pragma lines
};

/// Extract `op(content)` with paren counting so reasons may contain calls,
/// e.g. derived(rebuilt by index_flush()). Returns content and advances p
/// past the closing paren; returns nullopt if no '(' at p.
std::optional<std::string> parse_paren_group(const std::string& s,
                                             std::size_t& p) {
  if (p >= s.size() || s[p] != '(') return std::nullopt;
  int depth = 0;
  const std::size_t start = p + 1;
  for (; p < s.size(); ++p) {
    if (s[p] == '(') {
      ++depth;
    } else if (s[p] == ')') {
      --depth;
      if (depth == 0) {
        const std::string content = s.substr(start, p - start);
        ++p;
        return content;
      }
    }
  }
  p = s.size();
  return s.substr(start);  // unterminated; be forgiving, caller validates
}

bool has_alnum(const std::string& s, std::size_t from) {
  for (std::size_t i = from; i < s.size(); ++i) {
    if (std::isalnum(static_cast<unsigned char>(s[i])) != 0) return true;
  }
  return false;
}

std::string next_pragma_word(const std::string& s, std::size_t& p) {
  while (p < s.size() && std::isspace(static_cast<unsigned char>(s[p])) != 0) {
    ++p;
  }
  const std::size_t word_start = p;
  while (p < s.size() && (ident_char(s[p]) || s[p] == '-')) ++p;
  return s.substr(word_start, p - word_start);
}

/// A pragma only counts when nothing but whitespace precedes it in the
/// comment: documentation that *mentions* the syntax (indented, or behind
/// another `//` as in `//   // vine-lint: ...` or `/// ... pragmas`) never
/// parses as a live pragma.
std::size_t pragma_at(const std::string& text, const char* marker) {
  const std::size_t pos = text.find(marker);
  if (pos == std::string::npos) return std::string::npos;
  for (std::size_t i = 0; i < pos; ++i) {
    if (std::isspace(static_cast<unsigned char>(text[i])) == 0) {
      return std::string::npos;
    }
  }
  return pos;
}

FilePragmas collect_pragmas(const std::vector<Comment>& comments) {
  FilePragmas out;
  for (const Comment& c : comments) {
    // Family 1: vine-lint rule pragmas.
    std::size_t pos = pragma_at(c.text, "vine-lint:");
    if (pos != std::string::npos) {
      pos += 10;
      std::size_t p = pos;
      bool saw_suppress = false;
      std::size_t groups_end = p;
      while (p < c.text.size()) {
        const std::size_t word_at = p;
        const std::string op = next_pragma_word(c.text, p);
        if (op != "allow" && op != "suppress") {
          p = word_at;
          break;
        }
        auto name = parse_paren_group(c.text, p);
        if (!name) {
          out.issues.push_back(
              {c.line, "vine-lint " + op + " pragma is missing its (rule)"});
          break;
        }
        groups_end = p;
        if (auto rule = rule_from_name(*name)) {
          if (op == "allow") {
            out.allowed.insert(*rule);
          } else {
            out.suppressed_at[c.line].insert(*rule);
            saw_suppress = true;
          }
        } else {
          out.issues.push_back({c.line, "unknown rule '" + *name +
                                            "' in vine-lint " + op +
                                            "() pragma"});
        }
      }
      if (saw_suppress) {
        out.suppress_sites.emplace_back(c.line,
                                        has_alnum(c.text, groups_end));
      }
    }
    // Family 2: vine-snapshot contract pragmas.
    pos = pragma_at(c.text, "vine-snapshot:");
    if (pos != std::string::npos) {
      pos += 14;
      std::size_t p = pos;
      const std::string op = next_pragma_word(c.text, p);
      if (op == "state") {
        out.state_lines.insert(c.line);
      } else if (op == "derived" || op == "serialized") {
        auto why = parse_paren_group(c.text, p);
        if (!why || !has_alnum(*why, 0)) {
          out.issues.push_back({c.line, "vine-snapshot " + op +
                                            "() needs a non-empty reason"});
        } else {
          out.member_exempt[c.line] = op + ": " + *why;
        }
      } else {
        out.issues.push_back(
            {c.line, "unknown vine-snapshot op '" + op +
                         "' (expected state | derived(<why>) | "
                         "serialized(<how>))"});
      }
    }
    // Family 3: vine-fastpath tunable registration.
    pos = pragma_at(c.text, "vine-fastpath:");
    if (pos != std::string::npos) {
      pos += 14;
      std::size_t p = pos;
      const std::string op = next_pragma_word(c.text, p);
      if (op == "opt-in") {
        out.fastpath_lines.insert(c.line);
      } else {
        out.issues.push_back({c.line, "unknown vine-fastpath op '" + op +
                                          "' (expected opt-in)"});
      }
    }
  }
  return out;
}

bool is_suppressed(const FilePragmas& p, Rule rule, int line) {
  if (p.allowed.count(rule) != 0) return true;
  for (int l : {line, line - 1}) {
    auto it = p.suppressed_at.find(l);
    if (it != p.suppressed_at.end() && it->second.count(rule) != 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Shared per-file context and token helpers.
// ---------------------------------------------------------------------------

struct FileCtx {
  const std::string& path;
  const std::string& raw;
  const std::vector<Token>& toks;
  const FilePragmas& pragmas;
  std::vector<Finding>& out;

  void report(Rule rule, int line, std::string msg) const {
    if (is_suppressed(pragmas, rule, line)) return;
    out.push_back(Finding{path, line, rule, std::move(msg)});
  }
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// `i` indexes an open token; returns the index of the matching close
/// (same nesting family only), or toks.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& t, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != Token::kPunct) continue;
    if (t[k].text == open) {
      ++depth;
    } else if (t[k].text == close) {
      --depth;
      if (depth == 0) return k;
    }
  }
  return t.size();
}

bool tok_is(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].text == s;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  const std::string needle = "/" + dir + "/";
  if (path.find(needle) != std::string::npos) return true;
  return path.rfind(dir + "/", 0) == 0;
}

// ---------------------------------------------------------------------------
// VL001 unordered-iter
// ---------------------------------------------------------------------------

const std::set<std::string>& unordered_type_names() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

bool is_begin_like(const std::string& s) {
  return s == "begin" || s == "cbegin" || s == "rbegin" || s == "crbegin";
}

void rule_unordered_iter(const FileCtx& ctx) {
  const auto& t = ctx.toks;
  std::set<std::string> vars;
  std::set<std::string> aliases;

  // Pass A: declarations and `using Alias = std::unordered_...` aliases.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const bool direct = unordered_type_names().count(t[i].text) != 0;
    const bool via_alias = aliases.count(t[i].text) != 0;
    if (!direct && !via_alias) continue;

    // `using Alias = [std::]unordered_map<...>` registers the alias.
    std::size_t base = i;
    if (base >= 2 && t[base - 1].text == "::" && t[base - 2].text == "std") {
      base -= 2;
    }
    if (direct && base >= 3 && t[base - 1].text == "=" &&
        t[base - 2].kind == Token::kIdent && t[base - 3].text == "using") {
      aliases.insert(t[base - 2].text);
      continue;
    }

    std::size_t j = i + 1;
    if (direct) {
      if (!tok_is(t, j, "<")) continue;  // not a concrete type use
      j = match_forward(t, j, "<", ">");
      if (j >= t.size()) continue;
      ++j;
    }
    if (tok_is(t, j, "::")) {
      if (j + 1 < t.size() && (t[j + 1].text == "iterator" ||
                               t[j + 1].text == "const_iterator")) {
        ctx.report(Rule::kUnorderedIter, t[i].line,
                   "explicit iterator type over " + t[i].text +
                       " — traversal order is nondeterministic");
      }
      continue;
    }
    while (j < t.size() &&
           (t[j].text == "const" || t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::kIdent) {
      vars.insert(t[j].text);
    }
  }

  // Pass B: range-for over a tracked name, or .begin()-family calls on one.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && t[i].text == "for" &&
        tok_is(t, i + 1, "(")) {
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      std::size_t colon = kNpos;
      int depth = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "[" || s == "{") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}") {
          --depth;
        } else if (depth == 0 && s == ";") {
          break;  // classic for loop
        } else if (depth == 0 && s == ":") {
          colon = k;
          break;
        }
      }
      if (colon != kNpos) {
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (t[k].kind != Token::kIdent) continue;
          if (vars.count(t[k].text) != 0 ||
              unordered_type_names().count(t[k].text) != 0 ||
              aliases.count(t[k].text) != 0) {
            ctx.report(Rule::kUnorderedIter, t[k].line,
                       "range-for over unordered container '" + t[k].text +
                           "' — iteration order is nondeterministic");
            break;
          }
        }
      }
    }
    if (t[i].kind == Token::kIdent && vars.count(t[i].text) != 0 &&
        i + 3 < t.size() &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        t[i + 2].kind == Token::kIdent && is_begin_like(t[i + 2].text) &&
        t[i + 3].text == "(") {
      ctx.report(Rule::kUnorderedIter, t[i].line,
                 "iteration over unordered container '" + t[i].text +
                     "' via ." + t[i + 2].text + "()");
    }
  }
}

// ---------------------------------------------------------------------------
// VL002 ambient-entropy
// ---------------------------------------------------------------------------

void rule_ambient_entropy(const FileCtx& ctx) {
  if (path_contains_dir(ctx.path, "src/util") ||
      path_contains_dir(ctx.path, "util")) {
    return;  // util/ is the sanctioned wrapper layer
  }
  static const std::set<std::string> kBannedCalls = {
      "rand",          "srand",      "random",       "drand48",
      "lrand48",       "mrand48",    "time",         "clock",
      "gettimeofday",  "localtime",  "gmtime",       "mktime",
      "getenv",        "secure_getenv", "setenv",    "putenv",
      "clock_gettime"};
  static const std::set<std::string> kBannedEntities = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock"};
  // Identifier-shaped tokens after which `name(` is still a call expression
  // rather than a declaration of `name`.
  static const std::set<std::string> kExprKeywords = {
      "return", "co_return", "co_await", "co_yield", "throw", "case",
      "else",   "do",        "sizeof",   "new",      "delete"};
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const std::string& s = t[i].text;
    if (kBannedEntities.count(s) != 0) {
      const bool qualified = (i > 0 && t[i - 1].text == "::") ||
                             tok_is(t, i + 1, "::");
      if (qualified) {
        ctx.report(Rule::kAmbientEntropy, t[i].line,
                   "ambient entropy / wall-clock source 'std::" + s + "'");
      }
      continue;
    }
    if (kBannedCalls.count(s) != 0 && tok_is(t, i + 1, "(")) {
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) {
        continue;  // member call on some object, e.g. engine.clock()
      }
      if (i > 0 && t[i - 1].kind == Token::kIdent &&
          kExprKeywords.count(t[i - 1].text) == 0 && t[i - 1].text != "::") {
        // `long clock() const` / `auto time(...)`: a declaration that merely
        // shares the banned name, not a call into libc.
        continue;
      }
      if (i > 0 && t[i - 1].text == "::") {
        // Only std:: or the global namespace count as the libc function.
        if (i >= 2 && t[i - 2].kind == Token::kIdent &&
            t[i - 2].text != "std") {
          continue;
        }
      }
      ctx.report(Rule::kAmbientEntropy, t[i].line,
                 "call to ambient entropy / wall-clock function '" + s +
                     "()'");
    }
  }
}

// ---------------------------------------------------------------------------
// VL003 pointer-sort
// ---------------------------------------------------------------------------

void rule_pointer_sort(const FileCtx& ctx) {
  const auto& t = ctx.toks;

  // Track vectors of pointers so comparator-less sorts over them flag.
  std::set<std::string> ptr_containers;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && t[i].text == "vector" &&
        t[i + 1].text == "<") {
      const std::size_t close = match_forward(t, i + 1, "<", ">");
      if (close >= t.size() || close < 2 || t[close - 1].text != "*") {
        continue;
      }
      std::size_t j = close + 1;
      while (j < t.size() &&
             (t[j].text == "const" || t[j].text == "&" || t[j].text == "*")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == Token::kIdent) {
        ptr_containers.insert(t[j].text);
      }
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        (t[i].text != "sort" && t[i].text != "stable_sort" &&
         t[i].text != "partial_sort") ||
        !tok_is(t, i + 1, "(")) {
      continue;
    }
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    if (close >= t.size()) continue;
    const int call_line = t[i].line;

    bool has_comparator = false;

    // std::less<T*> as comparator.
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].kind == Token::kIdent && t[k].text == "less" &&
          tok_is(t, k + 1, "<")) {
        const std::size_t lc = match_forward(t, k + 1, "<", ">");
        has_comparator = true;
        if (lc < close && lc >= 1 && t[lc - 1].text == "*") {
          ctx.report(Rule::kPointerSort, t[k].line,
                     "std::less over a pointer type orders by address");
        }
      }
    }

    // Lambda comparator.
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].text != "[") continue;
      const std::size_t cap_close = match_forward(t, k, "[", "]");
      if (cap_close >= close || !tok_is(t, cap_close + 1, "(")) continue;
      const std::size_t p_open = cap_close + 1;
      const std::size_t p_close = match_forward(t, p_open, "(", ")");
      if (p_close >= close) continue;
      has_comparator = true;

      // Parse parameters: name = last ident per comma-separated chunk.
      std::set<std::string> ptr_params;
      std::set<std::string> all_params;
      {
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        std::size_t start = p_open + 1;
        int depth = 0;
        for (std::size_t m = p_open + 1; m <= p_close; ++m) {
          const std::string& s = t[m].text;
          if (s == "(" || s == "[" || s == "{" || s == "<") {
            ++depth;
          } else if (s == ")" || s == "]" || s == "}" || s == ">") {
            if (m == p_close) {
              chunks.emplace_back(start, m);
              break;
            }
            --depth;
          } else if (depth == 0 && s == ",") {
            chunks.emplace_back(start, m);
            start = m + 1;
          }
        }
        for (auto [b, e] : chunks) {
          std::string name;
          bool is_ptr = false;
          for (std::size_t m = b; m < e; ++m) {
            if (t[m].kind == Token::kIdent) name = t[m].text;
            if (t[m].text == "*") is_ptr = true;
          }
          if (name.empty()) continue;
          all_params.insert(name);
          if (is_ptr) ptr_params.insert(name);
        }
      }

      std::size_t b_open = p_close + 1;
      while (b_open < close && t[b_open].text != "{") ++b_open;
      if (b_open >= close) continue;
      const std::size_t b_close = match_forward(t, b_open, "{", "}");

      static const std::set<std::string> kRelOps = {"<", ">", "<=", ">="};
      for (std::size_t m = b_open + 1; m < b_close && m < close; ++m) {
        if (t[m].kind != Token::kPunct || kRelOps.count(t[m].text) == 0) {
          continue;
        }
        if (m < 1 || m + 1 >= t.size()) continue;
        const Token& lhs = t[m - 1];
        const Token& rhs = t[m + 1];
        // &a < &b — comparing addresses of anything.
        if (m >= 2 && t[m - 2].text == "&" && rhs.text == "&") {
          ctx.report(Rule::kPointerSort, t[m].line,
                     "comparator orders by address-of (&) — addresses are "
                     "not stable across runs");
          continue;
        }
        // Raw pointer params compared without dereference.
        if (lhs.kind == Token::kIdent && rhs.kind == Token::kIdent &&
            ptr_params.count(lhs.text) != 0 &&
            ptr_params.count(rhs.text) != 0) {
          const bool lhs_deref = m >= 2 && t[m - 2].text == "*";
          const bool rhs_member =
              m + 2 < t.size() &&
              (t[m + 2].text == "." || t[m + 2].text == "->");
          if (!lhs_deref && !rhs_member) {
            ctx.report(Rule::kPointerSort, t[m].line,
                       "comparator orders raw pointers '" + lhs.text +
                           "' and '" + rhs.text + "' by address");
          }
        }
      }
    }

    // Comparator-less sort over a container of pointers.
    if (!has_comparator) {
      for (std::size_t k = open + 1; k < close; ++k) {
        if (t[k].kind == Token::kIdent && ptr_containers.count(t[k].text) &&
            k + 2 < close && (t[k + 1].text == "." || t[k + 1].text == "->") &&
            t[k + 2].text == "begin") {
          ctx.report(Rule::kPointerSort, call_line,
                     "sorting container of pointers '" + t[k].text +
                         "' without a key-based comparator orders by "
                         "address");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// VL004 uninit-pod
// ---------------------------------------------------------------------------

bool is_scalar_word(const std::string& s) {
  static const std::set<std::string> kScalars = {
      "bool",    "char",    "wchar_t",  "char8_t",  "char16_t", "char32_t",
      "short",   "int",     "long",     "float",    "double",   "unsigned",
      "signed",  "size_t",  "ptrdiff_t", "intptr_t", "uintptr_t", "Tick"};
  if (kScalars.count(s) != 0) return true;
  // (u)int{8,16,32,64}[_least|_fast]_t
  std::size_t p = 0;
  if (p < s.size() && s[p] == 'u') ++p;
  if (s.compare(p, 3, "int") != 0) return false;
  p += 3;
  std::size_t d = p;
  while (d < s.size() && std::isdigit(static_cast<unsigned char>(s[d])) != 0) {
    ++d;
  }
  if (d == p) return false;
  return s.compare(d, std::string::npos, "_t") == 0 ||
         s.compare(d, std::string::npos, "_least_t") == 0 ||
         s.compare(d, std::string::npos, "_fast_t") == 0;
}

struct PendingField {
  int line = 0;
  std::string name;
  std::string type;
};

void analyze_struct(const FileCtx& ctx, const std::string& sname,
                    std::size_t body_begin, std::size_t body_end) {
  const auto& t = ctx.toks;
  bool has_ctor = false;
  std::vector<PendingField> pending;

  std::size_t k = body_begin;
  while (k < body_end) {
    // Collect one member statement; parenthesized/braced/bracketed groups
    // collapse to their open-token marker.
    std::vector<std::size_t> stmt;
    bool saw_paren = false;
    while (k < body_end) {
      const std::string& s = t[k].text;
      if (t[k].kind == Token::kPunct && s == ";") {
        ++k;
        break;
      }
      if (t[k].kind == Token::kPunct && s == "{") {
        const std::size_t bc = match_forward(t, k, "{", "}");
        if (saw_paren) {
          // Function (or constructor) body: statement ends here.
          k = bc + 1;
          if (k < body_end && t[k].text == ";") ++k;
          break;
        }
        stmt.push_back(k);  // in-class brace initializer marker
        k = bc + 1;
        continue;
      }
      if (t[k].kind == Token::kPunct && s == "(") {
        saw_paren = true;
        stmt.push_back(k);
        k = match_forward(t, k, "(", ")") + 1;
        continue;
      }
      if (t[k].kind == Token::kPunct && s == "[") {
        stmt.push_back(k);
        k = match_forward(t, k, "[", "]") + 1;
        continue;
      }
      stmt.push_back(k);
      ++k;
    }
    if (stmt.empty()) continue;

    // Strip leading qualifiers that can precede either a data member or a
    // constructor, so `explicit Foo(...)` still registers as a ctor.
    std::size_t s0 = 0;
    while (s0 < stmt.size() &&
           (t[stmt[s0]].text == "mutable" || t[stmt[s0]].text == "const" ||
            t[stmt[s0]].text == "volatile" ||
            t[stmt[s0]].text == "explicit" ||
            t[stmt[s0]].text == "constexpr" ||
            t[stmt[s0]].text == "inline" ||
            t[stmt[s0]].text == "[")) {  // leading [[attribute]]
      ++s0;
    }
    if (s0 >= stmt.size()) continue;
    const Token& first = t[stmt[s0]];

    if (first.kind == Token::kIdent && first.text == sname &&
        s0 + 1 < stmt.size() && t[stmt[s0 + 1]].text == "(") {
      has_ctor = true;
      continue;
    }
    static const std::set<std::string> kSkipLead = {
        "public",   "private", "protected", "using",    "friend",
        "typedef",  "template", "static",   "operator", "enum",
        "struct",   "class",    "union",    "virtual",  "~",
        "requires", "alignas"};
    if (kSkipLead.count(first.text) != 0) continue;

    // Templates / qualified class types: not scalar, skip whole statement.
    bool has_angle = false;
    std::size_t first_paren = kNpos;
    std::size_t first_eq = kNpos;
    for (std::size_t m = s0; m < stmt.size(); ++m) {
      const std::string& s = t[stmt[m]].text;
      if (s == "<") has_angle = true;
      if (s == "(" && first_paren == kNpos) first_paren = m;
      if (s == "=" && first_eq == kNpos) first_eq = m;
    }
    if (has_angle) continue;
    if (first_paren != kNpos &&
        (first_eq == kNpos || first_paren < first_eq)) {
      continue;  // function declaration
    }

    // Split into comma-separated declarator chunks.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::size_t start = s0;
    for (std::size_t m = s0; m <= stmt.size(); ++m) {
      if (m == stmt.size() || t[stmt[m]].text == ",") {
        if (m > start) chunks.emplace_back(start, m);
        start = m + 1;
      }
    }
    if (chunks.empty()) continue;

    // First chunk carries the type; its declarator name is the last ident
    // before any initializer.
    std::vector<std::string> type_words;
    bool type_ptr = false;
    std::string first_name;
    int first_line = 0;
    bool first_init = false;
    {
      auto [b, e] = chunks[0];
      std::size_t limit = e;
      for (std::size_t m = b; m < e; ++m) {
        const std::string& s = t[stmt[m]].text;
        if (s == "=" || s == "{") {
          limit = m;
          first_init = true;
          break;
        }
      }
      std::size_t name_idx = kNpos;
      for (std::size_t m = b; m < limit; ++m) {
        if (t[stmt[m]].kind == Token::kIdent) name_idx = m;
      }
      if (name_idx == kNpos) continue;
      first_name = t[stmt[name_idx]].text;
      first_line = t[stmt[name_idx]].line;
      for (std::size_t m = b; m < name_idx; ++m) {
        const Token& tk = t[stmt[m]];
        if (tk.kind == Token::kIdent) {
          if (tk.text != "std" && tk.text != "const" &&
              tk.text != "volatile" && tk.text != "mutable") {
            type_words.push_back(tk.text);
          }
        } else if (tk.text == "*") {
          type_ptr = true;
        } else if (tk.text == "&" || tk.text == "&&") {
          type_words.clear();
          type_ptr = false;
          break;  // reference members are out of scope
        }
      }
    }
    if (type_words.empty() && !type_ptr) continue;
    bool scalar = true;
    for (const std::string& w : type_words) {
      if (!is_scalar_word(w)) {
        scalar = false;
        break;
      }
    }
    const bool flaggable = type_ptr || (scalar && !type_words.empty());
    if (!flaggable) continue;

    std::string type_str;
    for (const std::string& w : type_words) {
      if (!type_str.empty()) type_str += ' ';
      type_str += w;
    }
    if (type_ptr) type_str += '*';

    if (!first_init) {
      pending.push_back(PendingField{first_line, first_name, type_str});
    }
    for (std::size_t ci = 1; ci < chunks.size(); ++ci) {
      auto [b, e] = chunks[ci];
      std::string name;
      int line = 0;
      bool init = false;
      for (std::size_t m = b; m < e; ++m) {
        const std::string& s = t[stmt[m]].text;
        if (s == "=" || s == "{") {
          init = true;
          break;
        }
        if (t[stmt[m]].kind == Token::kIdent && name.empty()) {
          name = s;
          line = t[stmt[m]].line;
        }
      }
      if (!name.empty() && !init) {
        pending.push_back(PendingField{line, name, type_str});
      }
    }
  }

  if (has_ctor) return;  // a user constructor may initialize the members
  for (const PendingField& f : pending) {
    ctx.report(Rule::kUninitPod, f.line,
               "struct '" + sname + "' member '" + f.name + "' (" + f.type +
                   ") has no initializer");
  }
}

void rule_uninit_pod(const FileCtx& ctx) {
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "struct") continue;
    if (i > 0 && t[i - 1].text == "enum") continue;
    if (t[i + 1].kind != Token::kIdent) continue;
    const std::string sname = t[i + 1].text;
    std::size_t j = i + 2;
    if (tok_is(t, j, "final")) ++j;
    if (tok_is(t, j, ":")) {
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
    }
    if (!tok_is(t, j, "{")) continue;  // forward decl or elaborated use
    const std::size_t body_close = match_forward(t, j, "{", "}");
    if (body_close >= t.size()) continue;
    analyze_struct(ctx, sname, j + 1, body_close);
  }
}

// ---------------------------------------------------------------------------
// VL005 txn-subject
// ---------------------------------------------------------------------------

bool in_txn_scope(const std::string& path, const std::string& raw) {
  if (path.find("obs/txn_log.") != std::string::npos) return true;
  return raw.find("obs/txn_log.h\"") != std::string::npos;
}

bool all_caps_word(const std::string& s) {
  if (s.size() < 2) return false;
  for (char c : s) {
    if ((c < 'A' || c > 'Z') && c != '_') return false;
  }
  return true;
}

/// Merge a run of adjacent string literals, treating interleaved PRIxNN
/// macros as the `lld` length modifier they expand to. Returns the merged
/// content and the index one past the run.
std::pair<std::string, std::size_t> merge_literal(
    const std::vector<Token>& t, std::size_t i) {
  std::string merged;
  std::size_t j = i;
  while (j < t.size()) {
    if (t[j].kind == Token::kString) {
      merged += t[j].text;
    } else if (t[j].kind == Token::kIdent &&
               t[j].text.rfind("PRI", 0) == 0) {
      merged += "lld";
    } else {
      break;
    }
    ++j;
  }
  return {merged, j};
}

std::string first_word(const std::string& s, std::size_t from) {
  std::size_t b = from;
  while (b < s.size() && s[b] == ' ') ++b;
  std::size_t e = b;
  while (e < s.size() && s[e] != ' ' && s[e] != '\\' && s[e] != '\n') ++e;
  return s.substr(b, e - b);
}

void rule_txn_subject(const FileCtx& ctx,
                      const std::vector<std::string>& subjects,
                      bool subjects_available) {
  if (!in_txn_scope(ctx.path, ctx.raw)) return;
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kString) continue;
    auto [merged, jend] = merge_literal(t, i);

    std::string subject;
    if (!merged.empty() && merged[0] == '%') {
      // A printf body is a txn line iff it leads with the 64-bit tick
      // conversion, "%lld " after PRId64 splicing.
      if (merged.rfind("%lld ", 0) == 0) {
        const std::string w = first_word(merged, 5);
        if (all_caps_word(w)) subject = w;
      }
    } else {
      // Literal passed straight to TxnLog::line(t, "SUBJECT ...").
      bool in_line_call = false;
      const std::size_t back = (i >= 8) ? i - 8 : 0;
      for (std::size_t k = i; k > back; --k) {
        if (t[k - 1].text == ")") break;
        if (t[k - 1].kind == Token::kIdent && t[k - 1].text == "line" &&
            tok_is(t, k, "(")) {
          in_line_call = true;
          break;
        }
      }
      if (in_line_call) {
        const std::string w = first_word(merged, 0);
        if (all_caps_word(w)) subject = w;
      }
    }

    if (!subject.empty()) {
      if (!subjects_available) {
        ctx.report(Rule::kTxnSubject, t[i].line,
                   "cannot verify txn subject '" + subject +
                       "': kTxnSubjects table not found in obs/txn_log.h");
      } else if (std::find(subjects.begin(), subjects.end(), subject) ==
                 subjects.end()) {
        ctx.report(Rule::kTxnSubject, t[i].line,
                   "txn subject '" + subject +
                       "' is not registered in kTxnSubjects");
      }
    }
    i = jend - 1;
  }
}

// ---------------------------------------------------------------------------
// VL006 float-accum
// ---------------------------------------------------------------------------

bool is_digest_file(const std::string& raw) {
  return raw.find("add_to_digest") != std::string::npos ||
         raw.find("Digest128") != std::string::npos ||
         raw.find("util::Hasher") != std::string::npos ||
         raw.find("Hasher&") != std::string::npos;
}

void rule_float_accum(const FileCtx& ctx) {
  if (!is_digest_file(ctx.raw)) return;
  const auto& t = ctx.toks;
  std::set<std::string> float_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        (t[i].text != "double" && t[i].text != "float")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j + 1 < t.size() && t[j].kind == Token::kIdent) {
      const std::string& name = t[j].text;
      const std::string& after = t[j + 1].text;
      if (after != "=" && after != "{" && after != "," && after != ";") {
        break;
      }
      float_vars.insert(name);
      if (after == ";") break;
      // Advance over the initializer to the declarator separator.
      std::size_t m = j + 1;
      int depth = 0;
      while (m < t.size()) {
        const std::string& s = t[m].text;
        if (s == "(" || s == "[" || s == "{") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}") {
          if (depth == 0) break;
          --depth;
        } else if (depth == 0 && (s == ";" )) {
          break;
        } else if (depth == 0 && s == ",") {
          break;
        }
        ++m;
      }
      if (m >= t.size() || t[m].text != ",") break;
      j = m + 1;
    }
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && float_vars.count(t[i].text) != 0 &&
        (t[i + 1].text == "+=" || t[i + 1].text == "-=")) {
      ctx.report(Rule::kFloatAccum, t[i].line,
                 "floating-point accumulation into '" + t[i].text +
                     "' in a digest-path file");
    }
  }
}

// ---------------------------------------------------------------------------
// Pass 1: the symbol index. One lightweight pass per file collects the
// cross-file facts pass 2 needs: annotated state types with their member
// lists, the identifier set of every SnapshotBuilder writer region, fast
// path tunable registrations, and the names of EventHandle- and
// FlatMap/FlatSet-typed members (so uses in other translation units are
// still recognized).
// ---------------------------------------------------------------------------

struct TypeSpan {
  std::string name;
  int decl_line = 0;
  std::size_t body_begin = 0;  // token index just past '{'
  std::size_t body_end = 0;    // token index of the matching '}'
};

std::vector<TypeSpan> find_type_spans(const std::vector<Token>& t) {
  std::vector<TypeSpan> out;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        (t[i].text != "struct" && t[i].text != "class")) {
      continue;
    }
    if (i > 0 && t[i - 1].text == "enum") continue;
    std::size_t j = i + 1;
    while (tok_is(t, j, "[")) j = match_forward(t, j, "[", "]") + 1;
    if (j >= t.size() || t[j].kind != Token::kIdent) continue;  // anonymous
    const std::string name = t[j].text;
    const int decl_line = t[j].line;
    std::size_t k = j + 1;
    if (tok_is(t, k, "final")) ++k;
    if (tok_is(t, k, ":")) {
      while (k < t.size() && t[k].text != "{" && t[k].text != ";") ++k;
    }
    if (!tok_is(t, k, "{")) continue;  // forward decl or elaborated use
    const std::size_t close = match_forward(t, k, "{", "}");
    if (close >= t.size()) continue;
    out.push_back(TypeSpan{name, decl_line, k + 1, close});
  }
  return out;
}

bool inside_any_span(const std::vector<TypeSpan>& spans, std::size_t pos) {
  for (const TypeSpan& s : spans) {
    if (pos >= s.body_begin && pos < s.body_end) return true;
  }
  return false;
}

/// `i` indexes '<'. Returns the matching '>' treating the sequence as a
/// template argument list, or kNpos when a statement boundary or an
/// operator-shaped token intervenes first (then '<' was a comparison).
std::size_t match_angle(const std::vector<Token>& t, std::size_t i,
                        std::size_t limit) {
  int depth = 0;
  for (std::size_t k = i; k < t.size() && k < limit; ++k) {
    if (t[k].kind != Token::kPunct) continue;
    const std::string& s = t[k].text;
    if (s == "<") {
      ++depth;
    } else if (s == ">") {
      --depth;
      if (depth == 0) return k;
    } else if (s == "(") {
      k = match_forward(t, k, "(", ")");
      if (k >= t.size()) return kNpos;
    } else if (s == "[") {
      k = match_forward(t, k, "[", "]");
      if (k >= t.size()) return kNpos;
    } else if (s == ";" || s == "{" || s == "}" || s == "&&" || s == "||") {
      return kNpos;
    }
  }
  return kNpos;
}

struct IndexedMember {
  std::string name;
  std::string type;
  int line = 0;       // the declarator name's line (used for reporting)
  int stmt_line = 0;  // first line of the declaration statement
  bool exempt = false;  // derived()/serialized() pragma on its line
};

struct IndexedType {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<IndexedMember> members;
};

struct FlagRead {
  enum Kind { kGuard, kElse, kTernary, kBare };
  std::string file;
  int line = 0;
  Kind kind = kBare;
};

struct IndexedFlag {
  std::string name;
  std::string file;
  int line = 0;
  std::vector<FlagRead> reads;
};

struct SymbolIndex {
  std::vector<IndexedType> state_types;
  std::set<std::string> writer_idents;
  std::size_t writer_regions = 0;
  std::vector<IndexedFlag> flags;
  std::set<std::string> handle_members;            // scalar EventHandle names
  std::set<std::string> handle_container_members;  // container-of-handle names
  std::set<std::string> flat_members;              // FlatMap/FlatSet names
};

struct FileData {
  std::string path;
  std::string raw;
  LexResult lexed;
  FilePragmas pragmas;
  std::vector<TypeSpan> spans;
};

/// Data-member extraction for VL007, generalized from the VL004 collector:
/// keeps template-typed members (angle groups collapse), skips nested type
/// bodies, methods, constructors, static/constexpr/const members, and
/// reference members (none of which are independently serializable state).
/// Multi-declarator statements (`int a, b;`) register the first declarator
/// only — the style here is one member per line.
void collect_state_members(const std::vector<Token>& t,
                           const TypeSpan& span,
                           std::vector<IndexedMember>& out) {
  struct Piece {
    std::size_t idx = 0;
    bool group = false;
  };
  std::size_t k = span.body_begin;
  while (k < span.body_end) {
    const std::string& lead = t[k].text;
    if (t[k].kind == Token::kIdent &&
        (lead == "public" || lead == "private" || lead == "protected") &&
        tok_is(t, k + 1, ":")) {
      k += 2;
      continue;
    }
    if (t[k].kind == Token::kIdent &&
        (lead == "struct" || lead == "class" || lead == "union" ||
         lead == "enum")) {
      // Nested type: skip its body and any trailing declarator wholesale.
      std::size_t j = k;
      while (j < span.body_end && t[j].text != "{" && t[j].text != ";") ++j;
      if (tok_is(t, j, "{")) {
        j = match_forward(t, j, "{", "}") + 1;
        while (j < span.body_end && t[j].text != ";") ++j;
      }
      k = j + 1;
      continue;
    }
    // Collect one statement, collapsing (), [], {} and template <> groups.
    std::vector<Piece> stmt;
    bool saw_paren = false;
    bool ended_by_body = false;
    while (k < span.body_end) {
      const std::string& s = t[k].text;
      if (t[k].kind == Token::kPunct) {
        if (s == ";") {
          ++k;
          break;
        }
        if (s == "{") {
          const std::size_t bc = match_forward(t, k, "{", "}");
          if (saw_paren) {  // method or constructor body
            k = bc + 1;
            if (k < span.body_end && t[k].text == ";") ++k;
            ended_by_body = true;
            break;
          }
          stmt.push_back({k, true});  // brace initializer
          k = bc + 1;
          continue;
        }
        if (s == "(") {
          saw_paren = true;
          stmt.push_back({k, true});
          k = match_forward(t, k, "(", ")") + 1;
          continue;
        }
        if (s == "[") {
          stmt.push_back({k, true});
          k = match_forward(t, k, "[", "]") + 1;
          continue;
        }
        if (s == "<" && !stmt.empty() && !stmt.back().group &&
            t[stmt.back().idx].kind == Token::kIdent) {
          const std::size_t ac = match_angle(t, k, span.body_end);
          if (ac != kNpos) {
            stmt.push_back({k, true});
            k = ac + 1;
            continue;
          }
        }
      }
      stmt.push_back({k, false});
      ++k;
    }
    if (stmt.empty() || ended_by_body) continue;

    auto text_at = [&](std::size_t m) -> const std::string& {
      return t[stmt[m].idx].text;
    };
    std::size_t s0 = 0;
    while (s0 < stmt.size()) {
      const std::string& s = text_at(s0);
      if (stmt[s0].group && s == "[") {  // [[attribute]]
        ++s0;
        continue;
      }
      if (s == "mutable" || s == "volatile" || s == "inline" ||
          s == "explicit") {
        ++s0;
        continue;
      }
      break;
    }
    if (s0 >= stmt.size()) continue;
    const std::string& first = text_at(s0);
    static const std::set<std::string> kSkipLead = {
        "public",    "private",  "protected", "using",    "friend",
        "typedef",   "template", "static",    "operator", "virtual",
        "~",         "requires", "alignas",   "const",    "constexpr",
        "consteval", "constinit", "extern",   "decltype"};
    if (kSkipLead.count(first) != 0) continue;
    if (first == span.name && s0 + 1 < stmt.size() && stmt[s0 + 1].group &&
        text_at(s0 + 1) == "(") {
      continue;  // constructor declaration without a body
    }
    std::size_t first_paren = kNpos;
    std::size_t first_init = kNpos;
    for (std::size_t m = s0; m < stmt.size(); ++m) {
      const std::string& s = text_at(m);
      if (stmt[m].group && s == "(" && first_paren == kNpos) first_paren = m;
      if (first_init == kNpos &&
          ((stmt[m].group && s == "{") || (!stmt[m].group && s == "="))) {
        first_init = m;
      }
    }
    if (first_paren != kNpos &&
        (first_init == kNpos || first_paren < first_init)) {
      continue;  // function declaration
    }
    const std::size_t limit = (first_init == kNpos) ? stmt.size() : first_init;
    bool is_ref = false;
    std::size_t name_idx = kNpos;
    for (std::size_t m = s0; m < limit; ++m) {
      if (stmt[m].group) continue;
      const Token& tk = t[stmt[m].idx];
      if (tk.kind == Token::kIdent) name_idx = m;
      if (tk.text == "&" || tk.text == "&&") is_ref = true;
    }
    if (is_ref || name_idx == kNpos) continue;
    std::string type_str;
    for (std::size_t m = s0; m < name_idx; ++m) {
      const std::string& s = text_at(m);
      if (stmt[m].group) {
        if (s == "<") type_str += "<>";
        continue;
      }
      if (s == "::" || s == "*") {
        type_str += s;
        continue;
      }
      if (!type_str.empty() && type_str.back() != ':') type_str += ' ';
      type_str += s;
    }
    out.push_back(IndexedMember{text_at(name_idx), type_str,
                                t[stmt[name_idx].idx].line,
                                t[stmt.front().idx].line, false});
  }
}

/// A writer region is the lexical scope from a `SnapshotBuilder <var>`
/// declaration to the close of its enclosing block. Every identifier inside
/// joins the serialized set: a member counts as covered when its name (or
/// the name with the trailing '_' stripped, for accessor-style emission)
/// appears in any region across the whole scan set.
void collect_writer_regions(const std::vector<Token>& t, SymbolIndex& idx) {
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "SnapshotBuilder") {
      continue;
    }
    if (i > 0 && t[i - 1].text == "class") continue;  // the definition
    std::size_t j = i + 1;
    if (j >= t.size() || t[j].kind != Token::kIdent) continue;
    const std::string& after = t[j + 1].text;
    if (after != ";" && after != "{" && after != "(" && after != "=") {
      continue;  // member function qualifier, return type, etc.
    }
    ++idx.writer_regions;
    int depth = 0;
    for (std::size_t k = j; k < t.size(); ++k) {
      if (t[k].kind == Token::kPunct) {
        if (t[k].text == "{") {
          ++depth;
        } else if (t[k].text == "}") {
          if (depth == 0) break;
          --depth;
        }
      } else if (t[k].kind == Token::kIdent) {
        idx.writer_idents.insert(t[k].text);
      }
    }
  }
}

/// Declarations of EventHandle / FlatMap / FlatSet variables. Scalar
/// handles are tracked when they are members (inside a type body) or named
/// like members (trailing '_'); containers of handles and flat containers
/// are tracked wherever declared.
void collect_typed_names(const FileData& fd, SymbolIndex& idx) {
  const auto& t = fd.lexed.tokens;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    if (t[i].text == "EventHandle") {
      std::size_t j = i + 1;
      std::size_t closers = 0;
      while (tok_is(t, j, ">")) {
        ++j;
        ++closers;
      }
      if (j + 1 >= t.size() || t[j].kind != Token::kIdent) continue;
      const std::string& after = t[j + 1].text;
      if (after != ";" && after != "=" && after != "{") continue;
      const std::string& name = t[j].text;
      const bool stored = inside_any_span(fd.spans, j) ||
                          (!name.empty() && name.back() == '_');
      if (closers > 0) {
        idx.handle_container_members.insert(name);
      } else if (stored) {
        idx.handle_members.insert(name);
      }
      continue;
    }
    if ((t[i].text == "FlatMap" || t[i].text == "FlatSet") &&
        tok_is(t, i + 1, "<")) {
      const std::size_t close = match_angle(t, i + 1, t.size());
      if (close == kNpos) continue;
      const std::size_t j = close + 1;
      if (j + 1 < t.size() && t[j].kind == Token::kIdent) {
        const std::string& after = t[j + 1].text;
        if (after == ";" || after == "=" || after == "{" || after == ",") {
          idx.flat_members.insert(t[j].text);
        }
      }
    }
  }
}

void collect_fastpath_flags(const FileData& fd, SymbolIndex& idx,
                            std::vector<Finding>& findings) {
  const auto& t = fd.lexed.tokens;
  for (int pragma_line : fd.pragmas.fastpath_lines) {
    bool found = false;
    for (int cand : {pragma_line, pragma_line + 1}) {
      for (std::size_t i = 0; i + 1 < t.size() && !found; ++i) {
        if (t[i].line != cand || t[i].kind != Token::kIdent) continue;
        if (t[i].text == "true" || t[i].text == "false" ||
            t[i].text == "nullptr") {
          continue;
        }
        if (i > 0 && t[i - 1].text == "=") continue;
        const std::string& after = t[i + 1].text;
        if (after == "=" || after == ";" || after == "{") {
          idx.flags.push_back(
              IndexedFlag{t[i].text, fd.path, t[i].line, {}});
          found = true;
        }
      }
      if (found) break;
    }
    if (!found &&
        !is_suppressed(fd.pragmas, Rule::kPragmaHygiene, pragma_line)) {
      findings.push_back(
          Finding{fd.path, pragma_line, Rule::kPragmaHygiene,
                  "vine-fastpath pragma does not precede a member "
                  "declaration"});
    }
  }
}

void index_file(const FileData& fd, SymbolIndex& idx, IndexStats& stats,
                std::vector<Finding>& findings) {
  const auto& t = fd.lexed.tokens;
  // State types: attach each `vine-snapshot: state` pragma to the first
  // type whose declaration opens within the next three lines.
  for (int pragma_line : fd.pragmas.state_lines) {
    const TypeSpan* best = nullptr;
    for (const TypeSpan& s : fd.spans) {
      if (s.decl_line >= pragma_line && s.decl_line <= pragma_line + 3 &&
          (best == nullptr || s.decl_line < best->decl_line)) {
        best = &s;
      }
    }
    if (best == nullptr) {
      if (!is_suppressed(fd.pragmas, Rule::kPragmaHygiene, pragma_line)) {
        findings.push_back(
            Finding{fd.path, pragma_line, Rule::kPragmaHygiene,
                    "vine-snapshot: state pragma does not precede a "
                    "struct/class definition"});
      }
      continue;
    }
    IndexedType ty;
    ty.name = best->name;
    ty.file = fd.path;
    ty.line = best->decl_line;
    collect_state_members(t, *best, ty.members);
    for (IndexedMember& m : ty.members) {
      // The pragma may sit on the declarator's line, the line above it, or
      // (for declarations that wrap) the line above the statement start.
      for (int l : {m.line, m.line - 1, m.stmt_line, m.stmt_line - 1}) {
        if (fd.pragmas.member_exempt.count(l) != 0) {
          m.exempt = true;
          break;
        }
      }
      ++stats.members_checked;
      if (m.exempt) ++stats.members_exempt;
    }
    idx.state_types.push_back(std::move(ty));
    ++stats.state_types;
  }
  collect_writer_regions(t, idx);
  collect_typed_names(fd, idx);
  collect_fastpath_flags(fd, idx, findings);
}

// ---------------------------------------------------------------------------
// Pass 1.5: fast-path flag reads. Runs after every file is indexed (so all
// flag names are known) and classifies each branch-shaped read.
// ---------------------------------------------------------------------------

bool classify_branch_read(const std::vector<Token>& t, std::size_t p,
                          FlagRead::Kind* kind) {
  // Nearest enclosing `if (...)` whose condition parens span p.
  const std::size_t back = (p > 96) ? p - 96 : 0;
  for (std::size_t q = p; q-- > back;) {
    if (t[q].kind != Token::kIdent || t[q].text != "if" ||
        !tok_is(t, q + 1, "(")) {
      continue;
    }
    const std::size_t close = match_forward(t, q + 1, "(", ")");
    if (close <= p || close >= t.size()) continue;
    // Else arm present?
    const std::size_t r = close + 1;
    if (tok_is(t, r, "{")) {
      const std::size_t bc = match_forward(t, r, "{", "}");
      if (tok_is(t, bc + 1, "else")) {
        *kind = FlagRead::kElse;
        return true;
      }
    } else {
      std::size_t s = r;
      int depth = 0;
      while (s < t.size()) {
        const std::string& x = t[s].text;
        if (t[s].kind == Token::kPunct) {
          if (x == "(" || x == "[" || x == "{") {
            ++depth;
          } else if (x == ")" || x == "]" || x == "}") {
            --depth;
          } else if (depth == 0 && x == ";") {
            break;
          }
        }
        ++s;
      }
      if (tok_is(t, s + 1, "else")) {
        *kind = FlagRead::kElse;
        return true;
      }
    }
    // Negated early-out guard: if (!flag) return|continue|break.
    if (tok_is(t, q + 2, "!")) {
      std::size_t b = close + 1;
      if (tok_is(t, b, "{")) ++b;
      if (b < t.size() &&
          (t[b].text == "return" || t[b].text == "continue" ||
           t[b].text == "break")) {
        *kind = FlagRead::kGuard;
        return true;
      }
    }
    *kind = FlagRead::kBare;
    return true;
  }
  // Ternary select in the same statement.
  int depth = 0;
  for (std::size_t s = p + 1; s < t.size() && s < p + 96; ++s) {
    if (t[s].kind != Token::kPunct) continue;
    const std::string& x = t[s].text;
    if (x == "(" || x == "[" || x == "{") {
      ++depth;
    } else if (x == ")" || x == "]" || x == "}") {
      if (depth == 0) break;
      --depth;
    } else if (depth == 0 && x == ";") {
      break;
    } else if (depth == 0 && x == "?") {
      *kind = FlagRead::kTernary;
      return true;
    }
  }
  return false;  // a write or a copy, not a branch read
}

void scan_flag_reads(const FileData& fd, SymbolIndex& idx,
                     IndexStats& stats) {
  const auto& t = fd.lexed.tokens;
  for (IndexedFlag& flag : idx.flags) {
    for (std::size_t p = 0; p < t.size(); ++p) {
      if (t[p].kind != Token::kIdent || t[p].text != flag.name) continue;
      if (fd.path == flag.file && t[p].line == flag.line) continue;  // decl
      if (tok_is(t, p + 1, "=")) continue;  // assignment write
      FlagRead::Kind kind = FlagRead::kBare;
      if (classify_branch_read(t, p, &kind)) {
        flag.reads.push_back(FlagRead{fd.path, t[p].line, kind});
        ++stats.branch_reads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// VL007 snapshot-completeness (cross-file)
// ---------------------------------------------------------------------------

void rule_snapshot_completeness(
    const SymbolIndex& idx,
    const std::map<std::string, const FilePragmas*>& pragmas_by_file,
    std::vector<Finding>& out) {
  for (const IndexedType& st : idx.state_types) {
    const FilePragmas* pg = nullptr;
    auto pit = pragmas_by_file.find(st.file);
    if (pit != pragmas_by_file.end()) pg = pit->second;
    for (const IndexedMember& m : st.members) {
      if (m.exempt) continue;
      std::string stripped = m.name;
      if (!stripped.empty() && stripped.back() == '_') stripped.pop_back();
      if (idx.writer_idents.count(m.name) != 0 ||
          idx.writer_idents.count(stripped) != 0) {
        continue;
      }
      if (pg != nullptr &&
          is_suppressed(*pg, Rule::kSnapshotCompleteness, m.line)) {
        continue;
      }
      out.push_back(Finding{
          st.file, m.line, Rule::kSnapshotCompleteness,
          "state type '" + st.name + "' member '" + m.name + "' (" + m.type +
              ") is never serialized by any SnapshotBuilder writer"});
    }
  }
}

// ---------------------------------------------------------------------------
// VL008 handle-generation
// ---------------------------------------------------------------------------

void rule_handle_generation(const FileCtx& ctx, const SymbolIndex& idx) {
  if (path_contains_dir(ctx.path, "src/sim")) {
    return;  // the implementation layer pokes slots by design
  }
  const auto& t = ctx.toks;
  const std::set<std::string>& scalars = idx.handle_members;
  const std::set<std::string>& containers = idx.handle_container_members;
  if (scalars.empty() && containers.empty()) return;

  auto stmt_arms_without_handoff = [&](std::size_t from) {
    bool arms = false;
    for (std::size_t s = from; s < t.size(); ++s) {
      if (t[s].kind == Token::kPunct && t[s].text == ";") break;
      if (t[s].kind != Token::kIdent) continue;
      const std::string& x = t[s].text;
      if (x == "schedule_at" || x == "schedule_after" ||
          x == "schedule_many") {
        arms = true;
      }
      if (x == "reschedule_at" || x == "reschedule_after") return false;
    }
    return arms;
  };

  auto previous_use_sanctions = [&](std::size_t p, const std::string& name) {
    for (std::size_t q = p; q-- > 0;) {
      if (t[q].kind != Token::kIdent || t[q].text != name) continue;
      // Declaration site (EventHandle x; / vector<EventHandle> x;).
      if (q > 0 && (t[q - 1].text == "EventHandle" || t[q - 1].text == ">")) {
        return true;
      }
      // Generation-checked access.
      if (tok_is(t, q + 1, ".") && q + 2 < t.size() &&
          (t[q + 2].text == "cancel" || t[q + 2].text == "pending")) {
        return true;
      }
      // Hand-off into reschedule_at/after(handle, ...).
      const std::size_t back = (q > 8) ? q - 8 : 0;
      for (std::size_t b = back; b < q; ++b) {
        if (t[b].kind == Token::kIdent &&
            (t[b].text == "reschedule_at" || t[b].text == "reschedule_after")) {
          return true;
        }
      }
      return false;  // plain previous use: the re-arm loses that event
    }
    return true;  // first occurrence in this file
  };

  for (std::size_t p = 0; p < t.size(); ++p) {
    if (t[p].kind != Token::kIdent) continue;
    const std::string& name = t[p].text;
    const bool scalar = scalars.count(name) != 0;
    const bool container = containers.count(name) != 0;
    if (!scalar && !container) continue;
    if (p > 0 && (t[p - 1].text == "EventHandle" || t[p - 1].text == ">")) {
      continue;  // the declaration itself
    }
    // Re-arm: X = ...schedule_*(...) or X[...] = ...schedule_*(...).
    std::size_t eq = kNpos;
    if (tok_is(t, p + 1, "=")) {
      eq = p + 1;
    } else if (container && tok_is(t, p + 1, "[")) {
      const std::size_t bc = match_forward(t, p + 1, "[", "]");
      if (tok_is(t, bc + 1, "=")) eq = bc + 1;
    }
    if (eq != kNpos) {
      if (stmt_arms_without_handoff(eq + 1) &&
          !previous_use_sanctions(p, name)) {
        ctx.report(Rule::kHandleGeneration, t[p].line,
                   "stored EventHandle '" + name +
                       "' is re-armed without cancel()/pending() or a "
                       "reschedule hand-off — the superseded event still "
                       "fires");
      }
      continue;
    }
    // Internals access on a scalar handle: only cancel()/pending() are
    // generation-checked.
    if (scalar && tok_is(t, p + 1, ".") && p + 3 < t.size() &&
        t[p + 2].kind == Token::kIdent && tok_is(t, p + 3, "(") &&
        t[p + 2].text != "cancel" && t[p + 2].text != "pending") {
      ctx.report(Rule::kHandleGeneration, t[p].line,
                 "access to EventHandle '" + name + "' via ." +
                     t[p + 2].text +
                     "() bypasses the generation check; only "
                     "cancel()/pending() are stale-safe");
    }
  }
}

// ---------------------------------------------------------------------------
// VL009 flat-container-aliasing
// ---------------------------------------------------------------------------

const std::set<std::string>& flat_mutators() {
  static const std::set<std::string> kSet = {"insert", "emplace", "erase",
                                             "clear", "reserve"};
  return kSet;
}

bool is_iter_producing(const std::string& s) {
  return s == "find" || s == "begin" || s == "cbegin" ||
         s == "lower_bound" || s == "erase";
}

void rule_flat_aliasing(const FileCtx& ctx, const SymbolIndex& idx) {
  const auto& t = ctx.toks;
  const std::set<std::string>& tracked = idx.flat_members;
  if (tracked.empty()) return;

  struct Alias {
    std::string container;
    std::size_t bound_at = 0;
    std::size_t frame = 0;
  };
  struct Mutation {
    std::string container;
    std::size_t pos = 0;
    int line = 0;
    std::string method;
  };
  std::map<std::string, Alias> aliases;
  std::vector<std::vector<Mutation>> frames(1);
  struct RangeFor {
    std::string container;
    std::size_t end = 0;
  };
  std::vector<RangeFor> range_fors;

  std::size_t stmt_start = 0;
  std::vector<Mutation> stmt_mutations;
  std::vector<std::pair<std::string, std::string>> stmt_bindings;

  auto bind_lhs = [&](std::size_t eq, const std::string& container,
                      bool need_ref) {
    // LHS names: structured binding `auto [a, b] =` or the last identifier
    // before '='. Reference-required bindings (operator[]) must show a '&'.
    bool has_ref = false;
    std::size_t br_open = kNpos;
    std::string last_ident;
    for (std::size_t k = stmt_start; k < eq; ++k) {
      if (t[k].kind == Token::kPunct) {
        if (t[k].text == "&") has_ref = true;
        if (t[k].text == "[") br_open = k;
        continue;
      }
      if (t[k].kind == Token::kIdent) last_ident = t[k].text;
    }
    if (need_ref && !has_ref) return;
    if (br_open != kNpos) {
      const std::size_t br_close = match_forward(t, br_open, "[", "]");
      bool any = false;
      for (std::size_t k = br_open + 1; k < br_close && k < eq; ++k) {
        if (t[k].kind == Token::kIdent) {
          stmt_bindings.emplace_back(t[k].text, container);
          any = true;
        }
      }
      if (any) return;
    }
    if (!last_ident.empty()) stmt_bindings.emplace_back(last_ident, container);
  };

  auto find_stmt_eq = [&](std::size_t before) {
    for (std::size_t k = before; k-- > stmt_start;) {
      if (t[k].kind != Token::kPunct) continue;
      if (t[k].text == "=") return k;
      if (t[k].text == ";" || t[k].text == "{" || t[k].text == "}") break;
    }
    return kNpos;
  };

  for (std::size_t p = 0; p < t.size(); ++p) {
    const Token& tk = t[p];
    if (tk.kind == Token::kPunct) {
      if (tk.text == "{") {
        frames.emplace_back();
        stmt_start = p + 1;
        stmt_mutations.clear();
        stmt_bindings.clear();
        continue;
      }
      if (tk.text == "}") {
        if (frames.size() > 1) {
          frames.pop_back();
          for (auto it = aliases.begin(); it != aliases.end();) {
            if (it->second.frame >= frames.size()) {
              it = aliases.erase(it);
            } else {
              ++it;
            }
          }
        }
        while (!range_fors.empty() && range_fors.back().end <= p) {
          range_fors.pop_back();
        }
        stmt_start = p + 1;
        stmt_mutations.clear();
        stmt_bindings.clear();
        continue;
      }
      if (tk.text == ";") {
        for (const Mutation& m : stmt_mutations) frames.back().push_back(m);
        for (const auto& [nm, c] : stmt_bindings) {
          aliases[nm] = Alias{c, p, frames.size() - 1};
        }
        stmt_mutations.clear();
        stmt_bindings.clear();
        stmt_start = p + 1;
        while (!range_fors.empty() && range_fors.back().end <= p) {
          range_fors.pop_back();
        }
        continue;
      }
      continue;
    }
    if (tk.kind != Token::kIdent) continue;

    // Range-for over a tracked container.
    if (tk.text == "for" && tok_is(t, p + 1, "(")) {
      const std::size_t close = match_forward(t, p + 1, "(", ")");
      int depth = 0;
      std::size_t colon = kNpos;
      for (std::size_t k = p + 2; k < close; ++k) {
        if (t[k].kind != Token::kPunct) continue;
        const std::string& s = t[k].text;
        if (s == "(" || s == "[" || s == "{" || s == "<") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}" || s == ">") {
          --depth;
        } else if (depth == 0 && s == ";") {
          break;
        } else if (depth == 0 && s == ":") {
          colon = k;
          break;
        }
      }
      if (colon != kNpos) {
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (t[k].kind != Token::kIdent || tracked.count(t[k].text) == 0) {
            continue;
          }
          std::size_t body_end = close + 1;
          if (tok_is(t, close + 1, "{")) {
            body_end = match_forward(t, close + 1, "{", "}");
          } else {
            int d2 = 0;
            while (body_end < t.size()) {
              const std::string& s = t[body_end].text;
              if (t[body_end].kind == Token::kPunct) {
                if (s == "(" || s == "[" || s == "{") {
                  ++d2;
                } else if (s == ")" || s == "]" || s == "}") {
                  --d2;
                } else if (d2 == 0 && s == ";") {
                  break;
                }
              }
              ++body_end;
            }
          }
          range_fors.push_back(RangeFor{t[k].text, body_end});
          break;
        }
      }
      continue;
    }

    // Tracked container: mutation and/or alias-producing call.
    if (tracked.count(tk.text) != 0) {
      std::string method;
      bool is_mut = false;
      if (tok_is(t, p + 1, ".") && p + 3 < t.size() &&
          t[p + 2].kind == Token::kIdent && tok_is(t, p + 3, "(")) {
        method = t[p + 2].text;
        is_mut = flat_mutators().count(method) != 0;
      } else if (tok_is(t, p + 1, "[")) {
        method = "operator[]";
        is_mut = true;
      }
      if (is_mut) {
        stmt_mutations.push_back(Mutation{tk.text, p, tk.line, method});
        for (const RangeFor& rf : range_fors) {
          if (rf.container == tk.text && p <= rf.end) {
            ctx.report(Rule::kFlatAliasing, tk.line,
                       "mutating FlatMap/FlatSet '" + tk.text + "' (" +
                           method +
                           ") inside a range-for over it — the backing "
                           "vector shifts under the loop");
            break;
          }
        }
      }
      // Alias binding: `[auto&] name = c.find(...)` / `auto& v = c[...]`.
      if (!method.empty()) {
        const std::size_t eq = find_stmt_eq(p);
        if (eq != kNpos) {
          if (method != "operator[]" && is_iter_producing(method)) {
            bind_lhs(eq, tk.text, /*need_ref=*/false);
          } else if (method == "operator[]") {
            bind_lhs(eq, tk.text, /*need_ref=*/true);
          }
        }
      }
      continue;
    }

    // Alias use after a committed mutation in a still-open frame.
    auto ait = aliases.find(tk.text);
    if (ait != aliases.end() && ait->second.bound_at < stmt_start) {
      if (tok_is(t, p + 1, "=")) {
        // `it = c.find(...)` re-binds the alias, it does not read it; the
        // RHS handling above re-registers the binding if one is produced.
        aliases.erase(ait);
        continue;
      }
      int mut_line = 0;
      std::string mut_method;
      for (const auto& fr : frames) {
        for (const Mutation& m : fr) {
          if (m.container == ait->second.container &&
              m.pos > ait->second.bound_at) {
            mut_line = m.line;
            mut_method = m.method;
          }
        }
      }
      if (mut_line != 0) {
        ctx.report(Rule::kFlatAliasing, tk.line,
                   "'" + tk.text + "' aliases into FlatMap/FlatSet '" +
                       ait->second.container + "' mutated by " + mut_method +
                       " on line " + std::to_string(mut_line) +
                       " — the alias is invalidated");
        aliases.erase(ait);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// VL010 tunable-parity (cross-file)
// ---------------------------------------------------------------------------

bool word_in_text(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(text[pos - 1]);
    const std::size_t end = pos + word.size();
    const bool right_ok = end >= text.size() || !ident_char(text[end]);
    if (left_ok && right_ok) return true;
    pos = end;
  }
  return false;
}

void rule_tunable_parity(
    const SymbolIndex& idx,
    const std::map<std::string, const FilePragmas*>& pragmas_by_file,
    const std::vector<std::pair<std::string, std::string>>& test_corpus,
    std::vector<Finding>& out) {
  for (const IndexedFlag& flag : idx.flags) {
    auto report = [&](const std::string& file, int line, std::string msg) {
      auto pit = pragmas_by_file.find(file);
      if (pit != pragmas_by_file.end() &&
          is_suppressed(*pit->second, Rule::kTunableParity, line)) {
        return;
      }
      out.push_back(Finding{file, line, Rule::kTunableParity,
                            std::move(msg)});
    };
    bool has_reference = false;
    for (const FlagRead& r : flag.reads) {
      if (r.kind == FlagRead::kElse || r.kind == FlagRead::kTernary) {
        has_reference = true;
      }
      if (r.kind == FlagRead::kBare) {
        report(r.file, r.line,
               "branch on fast-path tunable '" + flag.name +
                   "' has no reference arm (expected an else, a ternary, "
                   "or a negated early-out)");
      }
    }
    if (!flag.reads.empty() && !has_reference) {
      report(flag.file, flag.line,
             "fast-path tunable '" + flag.name +
                 "' is never branched against a reference path");
    }
    bool mentioned = false;
    for (const auto& [path, text] : test_corpus) {
      (void)path;
      if (word_in_text(text, flag.name)) {
        mentioned = true;
        break;
      }
    }
    if (!mentioned) {
      report(flag.file, flag.line,
             "fast-path tunable '" + flag.name +
                 "' is not exercised by name in any differential test "
                 "under the test roots");
    }
  }
}

// ---------------------------------------------------------------------------
// VL011 pragma-hygiene (per file)
// ---------------------------------------------------------------------------

void rule_pragma_hygiene(const FileCtx& ctx, bool require_justification) {
  for (const PragmaIssue& issue : ctx.pragmas.issues) {
    ctx.report(Rule::kPragmaHygiene, issue.line, issue.message);
  }
  if (require_justification) {
    for (const auto& [line, justified] : ctx.pragmas.suppress_sites) {
      if (!justified) {
        ctx.report(Rule::kPragmaHygiene, line,
                   "suppress() pragma lacks a trailing justification "
                   "comment");
      }
    }
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void build_file(FileData& fd) {
  fd.lexed = lex(fd.raw);
  fd.pragmas = collect_pragmas(fd.lexed.comments);
  fd.spans = find_type_spans(fd.lexed.tokens);
}

void run_file_rules(const FileData& fd, const SymbolIndex& idx,
                    const std::vector<std::string>& subjects,
                    bool subjects_available, bool require_justification,
                    std::vector<Finding>& findings) {
  FileCtx ctx{fd.path, fd.raw, fd.lexed.tokens, fd.pragmas, findings};
  rule_unordered_iter(ctx);
  rule_ambient_entropy(ctx);
  rule_pointer_sort(ctx);
  rule_uninit_pod(ctx);
  rule_txn_subject(ctx, subjects, subjects_available);
  rule_float_accum(ctx);
  rule_handle_generation(ctx, idx);
  rule_flat_aliasing(ctx, idx);
  rule_pragma_hygiene(ctx, require_justification);
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
}

}  // namespace

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

const RuleInfo& rule_info(Rule rule) {
  return kRules[static_cast<std::size_t>(rule)];
}

std::optional<Rule> rule_from_name(std::string_view name) {
  for (const RuleInfo& info : kRules) {
    if (name == info.name) return info.rule;
  }
  // Accept the rule id too ("VL007", case-insensitive) for --only.
  if (name.size() == 5) {
    std::string upper(name);
    for (char& c : upper) c = static_cast<char>(std::toupper(
        static_cast<unsigned char>(c)));
    for (const RuleInfo& info : kRules) {
      if (upper == info.id) return info.rule;
    }
  }
  return std::nullopt;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    const RuleInfo& info = rule_info(f.rule);
    out += f.file + ":" + std::to_string(f.line) + ": [" + info.id + " " +
           info.name + "] " + f.message + "\n  fix-it: " + info.hint + "\n";
  }
  return out;
}

Linter::Linter(LintOptions opts) : opts_(std::move(opts)) {
  if (!opts_.subjects.empty()) subjects_loaded_ = true;
}

std::vector<std::string> Linter::parse_subject_table(
    const std::string& header_text) {
  LexResult lexed = lex(header_text);
  const auto& t = lexed.tokens;
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "kTxnSubjects") continue;
    std::size_t j = i + 1;
    while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
    if (!tok_is(t, j, "{")) continue;
    const std::size_t close = match_forward(t, j, "{", "}");
    for (std::size_t k = j + 1; k < close && k < t.size(); ++k) {
      if (t[k].kind == Token::kString) out.push_back(t[k].text);
    }
    break;
  }
  return out;
}

void Linter::ensure_subjects() {
  if (subjects_loaded_ || subjects_missing_) return;
  namespace fs = std::filesystem;
  std::vector<std::string> candidates;
  if (!opts_.txn_log_header.empty()) {
    candidates.push_back(opts_.txn_log_header);
  }
  for (const std::string& root : opts_.roots) {
    candidates.push_back(root + "/obs/txn_log.h");
    candidates.push_back(root + "/src/obs/txn_log.h");
  }
  for (const std::string& c : candidates) {
    std::error_code ec;
    if (!fs::is_regular_file(c, ec)) continue;
    auto subjects = parse_subject_table(read_file(c));
    if (!subjects.empty()) {
      opts_.subjects = std::move(subjects);
      subjects_loaded_ = true;
      return;
    }
  }
  subjects_missing_ = true;
}

void Linter::apply_only_filter(std::vector<Finding>& findings) const {
  if (opts_.only.empty()) return;
  findings.erase(
      std::remove_if(findings.begin(), findings.end(),
                     [&](const Finding& f) {
                       return std::find(opts_.only.begin(), opts_.only.end(),
                                        f.rule) == opts_.only.end();
                     }),
      findings.end());
}

/// Raw text of every test file VL010 checks tunable names against. When
/// test_roots is empty, derives <root>/tests and <root>/../tests from each
/// scan root (so `vine_lint --root repo src` finds repo/tests).
std::vector<std::pair<std::string, std::string>> Linter::load_test_corpus()
    const {
  namespace fs = std::filesystem;
  static const std::set<std::string> kExts = {".h", ".hpp", ".cpp", ".cc",
                                              ".cxx"};
  std::vector<std::string> roots = opts_.test_roots;
  if (roots.empty()) {
    for (const std::string& root : opts_.roots) {
      std::error_code ec;
      const fs::path p(root);
      for (const fs::path& cand :
           {p / "tests", p.parent_path() / "tests"}) {
        if (fs::is_directory(cand, ec)) {
          roots.push_back(cand.generic_string());
        }
      }
    }
  }
  std::sort(roots.begin(), roots.end());
  roots.erase(std::unique(roots.begin(), roots.end()), roots.end());
  std::vector<std::pair<std::string, std::string>> corpus;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      corpus.emplace_back(root, read_file(root));
      continue;
    }
    if (!fs::is_directory(root, ec)) continue;
    std::vector<std::string> files;
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      if (kExts.count(it->path().extension().string()) != 0) {
        files.push_back(it->path().generic_string());
      }
    }
    std::sort(files.begin(), files.end());
    for (const std::string& f : files) corpus.emplace_back(f, read_file(f));
  }
  return corpus;
}

std::vector<Finding> Linter::lint_text(const std::string& path,
                                       const std::string& text) {
  ensure_subjects();
  FileData fd;
  fd.path = path;
  fd.raw = text;
  build_file(fd);

  stats_ = IndexStats{};
  stats_.files_indexed = 1;
  SymbolIndex idx;
  std::vector<Finding> findings;
  index_file(fd, idx, stats_, findings);
  scan_flag_reads(fd, idx, stats_);
  stats_.writer_regions = idx.writer_regions;
  stats_.writer_idents = idx.writer_idents.size();
  stats_.fastpath_flags = idx.flags.size();
  stats_.handle_members = idx.handle_members.size();
  stats_.flat_members = idx.flat_members.size();

  run_file_rules(fd, idx, opts_.subjects, subjects_loaded_,
                 opts_.require_suppress_justification, findings);
  const std::map<std::string, const FilePragmas*> by_file = {
      {fd.path, &fd.pragmas}};
  rule_snapshot_completeness(idx, by_file, findings);
  rule_tunable_parity(idx, by_file, load_test_corpus(), findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  apply_only_filter(findings);
  return findings;
}

std::vector<Finding> Linter::run() {
  namespace fs = std::filesystem;
  ensure_subjects();

  static const std::set<std::string> kExts = {".h", ".hpp", ".cpp", ".cc",
                                              ".cxx"};
  std::vector<std::string> files;
  for (const std::string& root : opts_.roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) continue;
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (kExts.count(ext) != 0) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  files_scanned_ = files.size();

  // Pass 1: lex, collect pragmas, and index every file.
  std::vector<FileData> fds(files.size());
  stats_ = IndexStats{};
  stats_.files_indexed = files.size();
  SymbolIndex idx;
  std::vector<Finding> findings;
  for (std::size_t i = 0; i < files.size(); ++i) {
    fds[i].path = files[i];
    fds[i].raw = read_file(files[i]);
    build_file(fds[i]);
    index_file(fds[i], idx, stats_, findings);
  }
  for (FileData& fd : fds) scan_flag_reads(fd, idx, stats_);
  stats_.writer_regions = idx.writer_regions;
  stats_.writer_idents = idx.writer_idents.size();
  stats_.fastpath_flags = idx.flags.size();
  stats_.handle_members = idx.handle_members.size();
  stats_.flat_members = idx.flat_members.size();

  // Pass 2: per-file rules, then the cross-file rules against the index.
  std::map<std::string, const FilePragmas*> by_file;
  for (const FileData& fd : fds) by_file.emplace(fd.path, &fd.pragmas);
  for (const FileData& fd : fds) {
    run_file_rules(fd, idx, opts_.subjects, subjects_loaded_,
                   opts_.require_suppress_justification, findings);
  }
  rule_snapshot_completeness(idx, by_file, findings);
  rule_tunable_parity(idx, by_file, load_test_corpus(), findings);

  sort_findings(findings);
  apply_only_filter(findings);
  return findings;
}

}  // namespace hepvine::lint
