#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace hepvine::lint {

namespace {

const RuleInfo kRules[kRuleCount] = {
    {Rule::kUnorderedIter, "VL001", "unordered-iter",
     "iterate a deterministically ordered snapshot (std::map, or sort the "
     "keys first); if the order provably never escapes the loop, annotate "
     "the file with // vine-lint: allow(unordered-iter)"},
    {Rule::kAmbientEntropy, "VL002", "ambient-entropy",
     "simulation code must take time from the engine clock and randomness "
     "from sim::Rng (xoshiro256**); read the environment only through the "
     "util/env.h helpers"},
    {Rule::kPointerSort, "VL003", "pointer-sort",
     "sort on a stable key (id, name, tick) instead of an address; pointer "
     "values differ run to run with ASLR and allocation order"},
    {Rule::kUninitPod, "VL004", "uninit-pod",
     "brace- or equals-initialize the member (e.g. `std::uint64_t seq = 0;`) "
     "so structs crossing the txn-log/digest boundary never carry "
     "indeterminate bytes"},
    {Rule::kTxnSubject, "VL005", "txn-subject",
     "register the subject in kTxnSubjects in obs/txn_log.h so txn_query "
     "can parse the line"},
    {Rule::kFloatAccum, "VL006", "float-accum",
     "accumulate through util::DetSum (compensated summation) so digest "
     "inputs do not drift with rounding order"},
};

// ---------------------------------------------------------------------------
// Lexer: a C++-shaped token stream plus the comment list (for pragmas).
// Preprocessor directives are skipped; adjacent analysis that needs them
// (include detection, VL005/VL006 file gates) works on the raw text.
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kString, kChar, kPunct };
  Kind kind = kPunct;
  std::string text;  // for kString: the literal's inner content, unquoted
  int line = 0;
};

struct Comment {
  std::string text;
  int line = 0;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

LexResult lex(const std::string& text) {
  LexResult out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;

  auto push = [&](Token::Kind kind, std::string body, int at) {
    out.tokens.push_back(Token{kind, std::move(body), at});
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring continuations.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t end = text.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments.push_back(Comment{text.substr(i + 2, end - i - 2), line});
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const int start_line = line;
      std::size_t j = i + 2;
      while (j + 1 < n && !(text[j] == '*' && text[j + 1] == '/')) {
        if (text[j] == '\n') ++line;
        ++j;
      }
      out.comments.push_back(
          Comment{text.substr(i + 2, j - i - 2), start_line});
      i = (j + 1 < n) ? j + 2 : n;
      continue;
    }
    // String literal (with optional raw-string handling via the ident path).
    if (c == '"') {
      std::string body;
      std::size_t j = i + 1;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j];
          body += text[j + 1];
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;  // unterminated; be forgiving
        body += text[j];
        ++j;
      }
      push(Token::kString, body, line);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (c == '\'') {
      std::size_t j = i + 1;
      std::string body;
      while (j < n && text[j] != '\'') {
        if (text[j] == '\\' && j + 1 < n) {
          body += text[j + 1];
          j += 2;
          continue;
        }
        body += text[j];
        ++j;
      }
      push(Token::kChar, body, line);
      i = (j < n) ? j + 1 : n;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i;
      while (j < n && (ident_char(text[j]) || text[j] == '.' ||
                       text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                         text[j - 1] == 'p' || text[j - 1] == 'P')))) {
        ++j;
      }
      push(Token::kNumber, text.substr(i, j - i), line);
      i = j;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(text[j])) ++j;
      std::string id = text.substr(i, j - i);
      // Raw string literal: R"delim( ... )delim"
      if (j < n && text[j] == '"' && !id.empty() && id.back() == 'R') {
        std::size_t open = text.find('(', j + 1);
        if (open != std::string::npos) {
          const std::string delim = text.substr(j + 1, open - j - 1);
          const std::string closer = ")" + delim + "\"";
          std::size_t close = text.find(closer, open + 1);
          if (close == std::string::npos) close = n;
          std::string body = text.substr(open + 1, close - open - 1);
          line += static_cast<int>(
              std::count(body.begin(), body.end(), '\n'));
          push(Token::kString, std::move(body), line);
          i = (close == n) ? n : close + closer.size();
          continue;
        }
      }
      push(Token::kIdent, std::move(id), line);
      i = j;
      continue;
    }
    // Multi-char punctuation we care about; everything else single-char.
    static const char* kTwoChar[] = {"::", "->", "++", "--", "+=", "-=",
                                     "*=", "/=", "%=", "&=", "|=", "^=",
                                     "==", "!=", "<=", ">=", "&&", "||"};
    bool matched = false;
    if (i + 1 < n) {
      const std::string two = text.substr(i, 2);
      for (const char* p : kTwoChar) {
        if (two == p) {
          push(Token::kPunct, two, line);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      push(Token::kPunct, std::string(1, c), line);
      ++i;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Pragmas: // vine-lint: allow(rule) | suppress(rule)
// allow() covers the whole file; suppress() covers its own line and the next.
// ---------------------------------------------------------------------------

struct Pragmas {
  std::set<Rule> allowed;
  std::map<int, std::set<Rule>> suppressed_at;
};

Pragmas collect_pragmas(const std::vector<Comment>& comments) {
  Pragmas out;
  for (const Comment& c : comments) {
    std::size_t pos = 0;
    while ((pos = c.text.find("vine-lint:", pos)) != std::string::npos) {
      pos += 10;
      // Parse a run of op(rule-name) groups.
      std::size_t p = pos;
      while (p < c.text.size()) {
        while (p < c.text.size() &&
               std::isspace(static_cast<unsigned char>(c.text[p])) != 0) {
          ++p;
        }
        std::size_t word_start = p;
        while (p < c.text.size() &&
               (ident_char(c.text[p]) || c.text[p] == '-')) {
          ++p;
        }
        const std::string op = c.text.substr(word_start, p - word_start);
        if ((op != "allow" && op != "suppress") || p >= c.text.size() ||
            c.text[p] != '(') {
          break;
        }
        ++p;
        std::size_t name_start = p;
        while (p < c.text.size() && c.text[p] != ')') ++p;
        const std::string name = c.text.substr(name_start, p - name_start);
        if (p < c.text.size()) ++p;  // ')'
        if (auto rule = rule_from_name(name)) {
          if (op == "allow") {
            out.allowed.insert(*rule);
          } else {
            out.suppressed_at[c.line].insert(*rule);
          }
        }
      }
      pos = p;
    }
  }
  return out;
}

bool is_suppressed(const Pragmas& p, Rule rule, int line) {
  if (p.allowed.count(rule) != 0) return true;
  for (int l : {line, line - 1}) {
    auto it = p.suppressed_at.find(l);
    if (it != p.suppressed_at.end() && it->second.count(rule) != 0) {
      return true;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Shared per-file context and token helpers.
// ---------------------------------------------------------------------------

struct FileCtx {
  const std::string& path;
  const std::string& raw;
  const std::vector<Token>& toks;
  const Pragmas& pragmas;
  std::vector<Finding>& out;

  void report(Rule rule, int line, std::string msg) const {
    if (is_suppressed(pragmas, rule, line)) return;
    out.push_back(Finding{path, line, rule, std::move(msg)});
  }
};

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

/// `i` indexes an open token; returns the index of the matching close
/// (same nesting family only), or toks.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& t, std::size_t i,
                          const char* open, const char* close) {
  int depth = 0;
  for (std::size_t k = i; k < t.size(); ++k) {
    if (t[k].kind != Token::kPunct) continue;
    if (t[k].text == open) {
      ++depth;
    } else if (t[k].text == close) {
      --depth;
      if (depth == 0) return k;
    }
  }
  return t.size();
}

bool tok_is(const std::vector<Token>& t, std::size_t i, const char* s) {
  return i < t.size() && t[i].text == s;
}

bool path_contains_dir(const std::string& path, const std::string& dir) {
  const std::string needle = "/" + dir + "/";
  if (path.find(needle) != std::string::npos) return true;
  return path.rfind(dir + "/", 0) == 0;
}

// ---------------------------------------------------------------------------
// VL001 unordered-iter
// ---------------------------------------------------------------------------

const std::set<std::string>& unordered_type_names() {
  static const std::set<std::string> kSet = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kSet;
}

bool is_begin_like(const std::string& s) {
  return s == "begin" || s == "cbegin" || s == "rbegin" || s == "crbegin";
}

void rule_unordered_iter(const FileCtx& ctx) {
  const auto& t = ctx.toks;
  std::set<std::string> vars;
  std::set<std::string> aliases;

  // Pass A: declarations and `using Alias = std::unordered_...` aliases.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const bool direct = unordered_type_names().count(t[i].text) != 0;
    const bool via_alias = aliases.count(t[i].text) != 0;
    if (!direct && !via_alias) continue;

    // `using Alias = [std::]unordered_map<...>` registers the alias.
    std::size_t base = i;
    if (base >= 2 && t[base - 1].text == "::" && t[base - 2].text == "std") {
      base -= 2;
    }
    if (direct && base >= 3 && t[base - 1].text == "=" &&
        t[base - 2].kind == Token::kIdent && t[base - 3].text == "using") {
      aliases.insert(t[base - 2].text);
      continue;
    }

    std::size_t j = i + 1;
    if (direct) {
      if (!tok_is(t, j, "<")) continue;  // not a concrete type use
      j = match_forward(t, j, "<", ">");
      if (j >= t.size()) continue;
      ++j;
    }
    if (tok_is(t, j, "::")) {
      if (j + 1 < t.size() && (t[j + 1].text == "iterator" ||
                               t[j + 1].text == "const_iterator")) {
        ctx.report(Rule::kUnorderedIter, t[i].line,
                   "explicit iterator type over " + t[i].text +
                       " — traversal order is nondeterministic");
      }
      continue;
    }
    while (j < t.size() &&
           (t[j].text == "const" || t[j].text == "&" || t[j].text == "*")) {
      ++j;
    }
    if (j < t.size() && t[j].kind == Token::kIdent) {
      vars.insert(t[j].text);
    }
  }

  // Pass B: range-for over a tracked name, or .begin()-family calls on one.
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && t[i].text == "for" &&
        tok_is(t, i + 1, "(")) {
      const std::size_t close = match_forward(t, i + 1, "(", ")");
      std::size_t colon = kNpos;
      int depth = 0;
      for (std::size_t k = i + 2; k < close; ++k) {
        const std::string& s = t[k].text;
        if (s == "(" || s == "[" || s == "{") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}") {
          --depth;
        } else if (depth == 0 && s == ";") {
          break;  // classic for loop
        } else if (depth == 0 && s == ":") {
          colon = k;
          break;
        }
      }
      if (colon != kNpos) {
        for (std::size_t k = colon + 1; k < close; ++k) {
          if (t[k].kind != Token::kIdent) continue;
          if (vars.count(t[k].text) != 0 ||
              unordered_type_names().count(t[k].text) != 0 ||
              aliases.count(t[k].text) != 0) {
            ctx.report(Rule::kUnorderedIter, t[k].line,
                       "range-for over unordered container '" + t[k].text +
                           "' — iteration order is nondeterministic");
            break;
          }
        }
      }
    }
    if (t[i].kind == Token::kIdent && vars.count(t[i].text) != 0 &&
        i + 3 < t.size() &&
        (t[i + 1].text == "." || t[i + 1].text == "->") &&
        t[i + 2].kind == Token::kIdent && is_begin_like(t[i + 2].text) &&
        t[i + 3].text == "(") {
      ctx.report(Rule::kUnorderedIter, t[i].line,
                 "iteration over unordered container '" + t[i].text +
                     "' via ." + t[i + 2].text + "()");
    }
  }
}

// ---------------------------------------------------------------------------
// VL002 ambient-entropy
// ---------------------------------------------------------------------------

void rule_ambient_entropy(const FileCtx& ctx) {
  if (path_contains_dir(ctx.path, "src/util") ||
      path_contains_dir(ctx.path, "util")) {
    return;  // util/ is the sanctioned wrapper layer
  }
  static const std::set<std::string> kBannedCalls = {
      "rand",          "srand",      "random",       "drand48",
      "lrand48",       "mrand48",    "time",         "clock",
      "gettimeofday",  "localtime",  "gmtime",       "mktime",
      "getenv",        "secure_getenv", "setenv",    "putenv",
      "clock_gettime"};
  static const std::set<std::string> kBannedEntities = {
      "random_device", "system_clock", "steady_clock",
      "high_resolution_clock"};
  // Identifier-shaped tokens after which `name(` is still a call expression
  // rather than a declaration of `name`.
  static const std::set<std::string> kExprKeywords = {
      "return", "co_return", "co_await", "co_yield", "throw", "case",
      "else",   "do",        "sizeof",   "new",      "delete"};
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const std::string& s = t[i].text;
    if (kBannedEntities.count(s) != 0) {
      const bool qualified = (i > 0 && t[i - 1].text == "::") ||
                             tok_is(t, i + 1, "::");
      if (qualified) {
        ctx.report(Rule::kAmbientEntropy, t[i].line,
                   "ambient entropy / wall-clock source 'std::" + s + "'");
      }
      continue;
    }
    if (kBannedCalls.count(s) != 0 && tok_is(t, i + 1, "(")) {
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == "->")) {
        continue;  // member call on some object, e.g. engine.clock()
      }
      if (i > 0 && t[i - 1].kind == Token::kIdent &&
          kExprKeywords.count(t[i - 1].text) == 0 && t[i - 1].text != "::") {
        // `long clock() const` / `auto time(...)`: a declaration that merely
        // shares the banned name, not a call into libc.
        continue;
      }
      if (i > 0 && t[i - 1].text == "::") {
        // Only std:: or the global namespace count as the libc function.
        if (i >= 2 && t[i - 2].kind == Token::kIdent &&
            t[i - 2].text != "std") {
          continue;
        }
      }
      ctx.report(Rule::kAmbientEntropy, t[i].line,
                 "call to ambient entropy / wall-clock function '" + s +
                     "()'");
    }
  }
}

// ---------------------------------------------------------------------------
// VL003 pointer-sort
// ---------------------------------------------------------------------------

void rule_pointer_sort(const FileCtx& ctx) {
  const auto& t = ctx.toks;

  // Track vectors of pointers so comparator-less sorts over them flag.
  std::set<std::string> ptr_containers;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && t[i].text == "vector" &&
        t[i + 1].text == "<") {
      const std::size_t close = match_forward(t, i + 1, "<", ">");
      if (close >= t.size() || close < 2 || t[close - 1].text != "*") {
        continue;
      }
      std::size_t j = close + 1;
      while (j < t.size() &&
             (t[j].text == "const" || t[j].text == "&" || t[j].text == "*")) {
        ++j;
      }
      if (j < t.size() && t[j].kind == Token::kIdent) {
        ptr_containers.insert(t[j].text);
      }
    }
  }

  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        (t[i].text != "sort" && t[i].text != "stable_sort" &&
         t[i].text != "partial_sort") ||
        !tok_is(t, i + 1, "(")) {
      continue;
    }
    const std::size_t open = i + 1;
    const std::size_t close = match_forward(t, open, "(", ")");
    if (close >= t.size()) continue;
    const int call_line = t[i].line;

    bool has_comparator = false;

    // std::less<T*> as comparator.
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].kind == Token::kIdent && t[k].text == "less" &&
          tok_is(t, k + 1, "<")) {
        const std::size_t lc = match_forward(t, k + 1, "<", ">");
        has_comparator = true;
        if (lc < close && lc >= 1 && t[lc - 1].text == "*") {
          ctx.report(Rule::kPointerSort, t[k].line,
                     "std::less over a pointer type orders by address");
        }
      }
    }

    // Lambda comparator.
    for (std::size_t k = open + 1; k < close; ++k) {
      if (t[k].text != "[") continue;
      const std::size_t cap_close = match_forward(t, k, "[", "]");
      if (cap_close >= close || !tok_is(t, cap_close + 1, "(")) continue;
      const std::size_t p_open = cap_close + 1;
      const std::size_t p_close = match_forward(t, p_open, "(", ")");
      if (p_close >= close) continue;
      has_comparator = true;

      // Parse parameters: name = last ident per comma-separated chunk.
      std::set<std::string> ptr_params;
      std::set<std::string> all_params;
      {
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        std::size_t start = p_open + 1;
        int depth = 0;
        for (std::size_t m = p_open + 1; m <= p_close; ++m) {
          const std::string& s = t[m].text;
          if (s == "(" || s == "[" || s == "{" || s == "<") {
            ++depth;
          } else if (s == ")" || s == "]" || s == "}" || s == ">") {
            if (m == p_close) {
              chunks.emplace_back(start, m);
              break;
            }
            --depth;
          } else if (depth == 0 && s == ",") {
            chunks.emplace_back(start, m);
            start = m + 1;
          }
        }
        for (auto [b, e] : chunks) {
          std::string name;
          bool is_ptr = false;
          for (std::size_t m = b; m < e; ++m) {
            if (t[m].kind == Token::kIdent) name = t[m].text;
            if (t[m].text == "*") is_ptr = true;
          }
          if (name.empty()) continue;
          all_params.insert(name);
          if (is_ptr) ptr_params.insert(name);
        }
      }

      std::size_t b_open = p_close + 1;
      while (b_open < close && t[b_open].text != "{") ++b_open;
      if (b_open >= close) continue;
      const std::size_t b_close = match_forward(t, b_open, "{", "}");

      static const std::set<std::string> kRelOps = {"<", ">", "<=", ">="};
      for (std::size_t m = b_open + 1; m < b_close && m < close; ++m) {
        if (t[m].kind != Token::kPunct || kRelOps.count(t[m].text) == 0) {
          continue;
        }
        if (m < 1 || m + 1 >= t.size()) continue;
        const Token& lhs = t[m - 1];
        const Token& rhs = t[m + 1];
        // &a < &b — comparing addresses of anything.
        if (m >= 2 && t[m - 2].text == "&" && rhs.text == "&") {
          ctx.report(Rule::kPointerSort, t[m].line,
                     "comparator orders by address-of (&) — addresses are "
                     "not stable across runs");
          continue;
        }
        // Raw pointer params compared without dereference.
        if (lhs.kind == Token::kIdent && rhs.kind == Token::kIdent &&
            ptr_params.count(lhs.text) != 0 &&
            ptr_params.count(rhs.text) != 0) {
          const bool lhs_deref = m >= 2 && t[m - 2].text == "*";
          const bool rhs_member =
              m + 2 < t.size() &&
              (t[m + 2].text == "." || t[m + 2].text == "->");
          if (!lhs_deref && !rhs_member) {
            ctx.report(Rule::kPointerSort, t[m].line,
                       "comparator orders raw pointers '" + lhs.text +
                           "' and '" + rhs.text + "' by address");
          }
        }
      }
    }

    // Comparator-less sort over a container of pointers.
    if (!has_comparator) {
      for (std::size_t k = open + 1; k < close; ++k) {
        if (t[k].kind == Token::kIdent && ptr_containers.count(t[k].text) &&
            k + 2 < close && (t[k + 1].text == "." || t[k + 1].text == "->") &&
            t[k + 2].text == "begin") {
          ctx.report(Rule::kPointerSort, call_line,
                     "sorting container of pointers '" + t[k].text +
                         "' without a key-based comparator orders by "
                         "address");
          break;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// VL004 uninit-pod
// ---------------------------------------------------------------------------

bool is_scalar_word(const std::string& s) {
  static const std::set<std::string> kScalars = {
      "bool",    "char",    "wchar_t",  "char8_t",  "char16_t", "char32_t",
      "short",   "int",     "long",     "float",    "double",   "unsigned",
      "signed",  "size_t",  "ptrdiff_t", "intptr_t", "uintptr_t", "Tick"};
  if (kScalars.count(s) != 0) return true;
  // (u)int{8,16,32,64}[_least|_fast]_t
  std::size_t p = 0;
  if (p < s.size() && s[p] == 'u') ++p;
  if (s.compare(p, 3, "int") != 0) return false;
  p += 3;
  std::size_t d = p;
  while (d < s.size() && std::isdigit(static_cast<unsigned char>(s[d])) != 0) {
    ++d;
  }
  if (d == p) return false;
  return s.compare(d, std::string::npos, "_t") == 0 ||
         s.compare(d, std::string::npos, "_least_t") == 0 ||
         s.compare(d, std::string::npos, "_fast_t") == 0;
}

struct PendingField {
  int line = 0;
  std::string name;
  std::string type;
};

void analyze_struct(const FileCtx& ctx, const std::string& sname,
                    std::size_t body_begin, std::size_t body_end) {
  const auto& t = ctx.toks;
  bool has_ctor = false;
  std::vector<PendingField> pending;

  std::size_t k = body_begin;
  while (k < body_end) {
    // Collect one member statement; parenthesized/braced/bracketed groups
    // collapse to their open-token marker.
    std::vector<std::size_t> stmt;
    bool saw_paren = false;
    while (k < body_end) {
      const std::string& s = t[k].text;
      if (t[k].kind == Token::kPunct && s == ";") {
        ++k;
        break;
      }
      if (t[k].kind == Token::kPunct && s == "{") {
        const std::size_t bc = match_forward(t, k, "{", "}");
        if (saw_paren) {
          // Function (or constructor) body: statement ends here.
          k = bc + 1;
          if (k < body_end && t[k].text == ";") ++k;
          break;
        }
        stmt.push_back(k);  // in-class brace initializer marker
        k = bc + 1;
        continue;
      }
      if (t[k].kind == Token::kPunct && s == "(") {
        saw_paren = true;
        stmt.push_back(k);
        k = match_forward(t, k, "(", ")") + 1;
        continue;
      }
      if (t[k].kind == Token::kPunct && s == "[") {
        stmt.push_back(k);
        k = match_forward(t, k, "[", "]") + 1;
        continue;
      }
      stmt.push_back(k);
      ++k;
    }
    if (stmt.empty()) continue;

    // Strip leading qualifiers that can precede either a data member or a
    // constructor, so `explicit Foo(...)` still registers as a ctor.
    std::size_t s0 = 0;
    while (s0 < stmt.size() &&
           (t[stmt[s0]].text == "mutable" || t[stmt[s0]].text == "const" ||
            t[stmt[s0]].text == "volatile" ||
            t[stmt[s0]].text == "explicit" ||
            t[stmt[s0]].text == "constexpr" ||
            t[stmt[s0]].text == "inline" ||
            t[stmt[s0]].text == "[")) {  // leading [[attribute]]
      ++s0;
    }
    if (s0 >= stmt.size()) continue;
    const Token& first = t[stmt[s0]];

    if (first.kind == Token::kIdent && first.text == sname &&
        s0 + 1 < stmt.size() && t[stmt[s0 + 1]].text == "(") {
      has_ctor = true;
      continue;
    }
    static const std::set<std::string> kSkipLead = {
        "public",   "private", "protected", "using",    "friend",
        "typedef",  "template", "static",   "operator", "enum",
        "struct",   "class",    "union",    "virtual",  "~",
        "requires", "alignas"};
    if (kSkipLead.count(first.text) != 0) continue;

    // Templates / qualified class types: not scalar, skip whole statement.
    bool has_angle = false;
    std::size_t first_paren = kNpos;
    std::size_t first_eq = kNpos;
    for (std::size_t m = s0; m < stmt.size(); ++m) {
      const std::string& s = t[stmt[m]].text;
      if (s == "<") has_angle = true;
      if (s == "(" && first_paren == kNpos) first_paren = m;
      if (s == "=" && first_eq == kNpos) first_eq = m;
    }
    if (has_angle) continue;
    if (first_paren != kNpos &&
        (first_eq == kNpos || first_paren < first_eq)) {
      continue;  // function declaration
    }

    // Split into comma-separated declarator chunks.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::size_t start = s0;
    for (std::size_t m = s0; m <= stmt.size(); ++m) {
      if (m == stmt.size() || t[stmt[m]].text == ",") {
        if (m > start) chunks.emplace_back(start, m);
        start = m + 1;
      }
    }
    if (chunks.empty()) continue;

    // First chunk carries the type; its declarator name is the last ident
    // before any initializer.
    std::vector<std::string> type_words;
    bool type_ptr = false;
    std::string first_name;
    int first_line = 0;
    bool first_init = false;
    {
      auto [b, e] = chunks[0];
      std::size_t limit = e;
      for (std::size_t m = b; m < e; ++m) {
        const std::string& s = t[stmt[m]].text;
        if (s == "=" || s == "{") {
          limit = m;
          first_init = true;
          break;
        }
      }
      std::size_t name_idx = kNpos;
      for (std::size_t m = b; m < limit; ++m) {
        if (t[stmt[m]].kind == Token::kIdent) name_idx = m;
      }
      if (name_idx == kNpos) continue;
      first_name = t[stmt[name_idx]].text;
      first_line = t[stmt[name_idx]].line;
      for (std::size_t m = b; m < name_idx; ++m) {
        const Token& tk = t[stmt[m]];
        if (tk.kind == Token::kIdent) {
          if (tk.text != "std" && tk.text != "const" &&
              tk.text != "volatile" && tk.text != "mutable") {
            type_words.push_back(tk.text);
          }
        } else if (tk.text == "*") {
          type_ptr = true;
        } else if (tk.text == "&" || tk.text == "&&") {
          type_words.clear();
          type_ptr = false;
          break;  // reference members are out of scope
        }
      }
    }
    if (type_words.empty() && !type_ptr) continue;
    bool scalar = true;
    for (const std::string& w : type_words) {
      if (!is_scalar_word(w)) {
        scalar = false;
        break;
      }
    }
    const bool flaggable = type_ptr || (scalar && !type_words.empty());
    if (!flaggable) continue;

    std::string type_str;
    for (const std::string& w : type_words) {
      if (!type_str.empty()) type_str += ' ';
      type_str += w;
    }
    if (type_ptr) type_str += '*';

    if (!first_init) {
      pending.push_back(PendingField{first_line, first_name, type_str});
    }
    for (std::size_t ci = 1; ci < chunks.size(); ++ci) {
      auto [b, e] = chunks[ci];
      std::string name;
      int line = 0;
      bool init = false;
      for (std::size_t m = b; m < e; ++m) {
        const std::string& s = t[stmt[m]].text;
        if (s == "=" || s == "{") {
          init = true;
          break;
        }
        if (t[stmt[m]].kind == Token::kIdent && name.empty()) {
          name = s;
          line = t[stmt[m]].line;
        }
      }
      if (!name.empty() && !init) {
        pending.push_back(PendingField{line, name, type_str});
      }
    }
  }

  if (has_ctor) return;  // a user constructor may initialize the members
  for (const PendingField& f : pending) {
    ctx.report(Rule::kUninitPod, f.line,
               "struct '" + sname + "' member '" + f.name + "' (" + f.type +
                   ") has no initializer");
  }
}

void rule_uninit_pod(const FileCtx& ctx) {
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "struct") continue;
    if (i > 0 && t[i - 1].text == "enum") continue;
    if (t[i + 1].kind != Token::kIdent) continue;
    const std::string sname = t[i + 1].text;
    std::size_t j = i + 2;
    if (tok_is(t, j, "final")) ++j;
    if (tok_is(t, j, ":")) {
      while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
    }
    if (!tok_is(t, j, "{")) continue;  // forward decl or elaborated use
    const std::size_t body_close = match_forward(t, j, "{", "}");
    if (body_close >= t.size()) continue;
    analyze_struct(ctx, sname, j + 1, body_close);
  }
}

// ---------------------------------------------------------------------------
// VL005 txn-subject
// ---------------------------------------------------------------------------

bool in_txn_scope(const std::string& path, const std::string& raw) {
  if (path.find("obs/txn_log.") != std::string::npos) return true;
  return raw.find("obs/txn_log.h\"") != std::string::npos;
}

bool all_caps_word(const std::string& s) {
  if (s.size() < 2) return false;
  for (char c : s) {
    if ((c < 'A' || c > 'Z') && c != '_') return false;
  }
  return true;
}

/// Merge a run of adjacent string literals, treating interleaved PRIxNN
/// macros as the `lld` length modifier they expand to. Returns the merged
/// content and the index one past the run.
std::pair<std::string, std::size_t> merge_literal(
    const std::vector<Token>& t, std::size_t i) {
  std::string merged;
  std::size_t j = i;
  while (j < t.size()) {
    if (t[j].kind == Token::kString) {
      merged += t[j].text;
    } else if (t[j].kind == Token::kIdent &&
               t[j].text.rfind("PRI", 0) == 0) {
      merged += "lld";
    } else {
      break;
    }
    ++j;
  }
  return {merged, j};
}

std::string first_word(const std::string& s, std::size_t from) {
  std::size_t b = from;
  while (b < s.size() && s[b] == ' ') ++b;
  std::size_t e = b;
  while (e < s.size() && s[e] != ' ' && s[e] != '\\' && s[e] != '\n') ++e;
  return s.substr(b, e - b);
}

void rule_txn_subject(const FileCtx& ctx,
                      const std::vector<std::string>& subjects,
                      bool subjects_available) {
  if (!in_txn_scope(ctx.path, ctx.raw)) return;
  const auto& t = ctx.toks;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kString) continue;
    auto [merged, jend] = merge_literal(t, i);

    std::string subject;
    if (!merged.empty() && merged[0] == '%') {
      // A printf body is a txn line iff it leads with the 64-bit tick
      // conversion, "%lld " after PRId64 splicing.
      if (merged.rfind("%lld ", 0) == 0) {
        const std::string w = first_word(merged, 5);
        if (all_caps_word(w)) subject = w;
      }
    } else {
      // Literal passed straight to TxnLog::line(t, "SUBJECT ...").
      bool in_line_call = false;
      const std::size_t back = (i >= 8) ? i - 8 : 0;
      for (std::size_t k = i; k > back; --k) {
        if (t[k - 1].text == ")") break;
        if (t[k - 1].kind == Token::kIdent && t[k - 1].text == "line" &&
            tok_is(t, k, "(")) {
          in_line_call = true;
          break;
        }
      }
      if (in_line_call) {
        const std::string w = first_word(merged, 0);
        if (all_caps_word(w)) subject = w;
      }
    }

    if (!subject.empty()) {
      if (!subjects_available) {
        ctx.report(Rule::kTxnSubject, t[i].line,
                   "cannot verify txn subject '" + subject +
                       "': kTxnSubjects table not found in obs/txn_log.h");
      } else if (std::find(subjects.begin(), subjects.end(), subject) ==
                 subjects.end()) {
        ctx.report(Rule::kTxnSubject, t[i].line,
                   "txn subject '" + subject +
                       "' is not registered in kTxnSubjects");
      }
    }
    i = jend - 1;
  }
}

// ---------------------------------------------------------------------------
// VL006 float-accum
// ---------------------------------------------------------------------------

bool is_digest_file(const std::string& raw) {
  return raw.find("add_to_digest") != std::string::npos ||
         raw.find("Digest128") != std::string::npos ||
         raw.find("util::Hasher") != std::string::npos ||
         raw.find("Hasher&") != std::string::npos;
}

void rule_float_accum(const FileCtx& ctx) {
  if (!is_digest_file(ctx.raw)) return;
  const auto& t = ctx.toks;
  std::set<std::string> float_vars;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent ||
        (t[i].text != "double" && t[i].text != "float")) {
      continue;
    }
    std::size_t j = i + 1;
    while (j + 1 < t.size() && t[j].kind == Token::kIdent) {
      const std::string& name = t[j].text;
      const std::string& after = t[j + 1].text;
      if (after != "=" && after != "{" && after != "," && after != ";") {
        break;
      }
      float_vars.insert(name);
      if (after == ";") break;
      // Advance over the initializer to the declarator separator.
      std::size_t m = j + 1;
      int depth = 0;
      while (m < t.size()) {
        const std::string& s = t[m].text;
        if (s == "(" || s == "[" || s == "{") {
          ++depth;
        } else if (s == ")" || s == "]" || s == "}") {
          if (depth == 0) break;
          --depth;
        } else if (depth == 0 && (s == ";" )) {
          break;
        } else if (depth == 0 && s == ",") {
          break;
        }
        ++m;
      }
      if (m >= t.size() || t[m].text != ",") break;
      j = m + 1;
    }
  }
  for (std::size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && float_vars.count(t[i].text) != 0 &&
        (t[i + 1].text == "+=" || t[i + 1].text == "-=")) {
      ctx.report(Rule::kFloatAccum, t[i].line,
                 "floating-point accumulation into '" + t[i].text +
                     "' in a digest-path file");
    }
  }
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------------------

const RuleInfo& rule_info(Rule rule) {
  return kRules[static_cast<std::size_t>(rule)];
}

std::optional<Rule> rule_from_name(std::string_view name) {
  for (const RuleInfo& info : kRules) {
    if (name == info.name) return info.rule;
  }
  return std::nullopt;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    const RuleInfo& info = rule_info(f.rule);
    out += f.file + ":" + std::to_string(f.line) + ": [" + info.id + " " +
           info.name + "] " + f.message + "\n  fix-it: " + info.hint + "\n";
  }
  return out;
}

Linter::Linter(LintOptions opts) : opts_(std::move(opts)) {
  if (!opts_.subjects.empty()) subjects_loaded_ = true;
}

std::vector<std::string> Linter::parse_subject_table(
    const std::string& header_text) {
  LexResult lexed = lex(header_text);
  const auto& t = lexed.tokens;
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "kTxnSubjects") continue;
    std::size_t j = i + 1;
    while (j < t.size() && t[j].text != "{" && t[j].text != ";") ++j;
    if (!tok_is(t, j, "{")) continue;
    const std::size_t close = match_forward(t, j, "{", "}");
    for (std::size_t k = j + 1; k < close && k < t.size(); ++k) {
      if (t[k].kind == Token::kString) out.push_back(t[k].text);
    }
    break;
  }
  return out;
}

void Linter::ensure_subjects() {
  if (subjects_loaded_ || subjects_missing_) return;
  namespace fs = std::filesystem;
  std::vector<std::string> candidates;
  if (!opts_.txn_log_header.empty()) {
    candidates.push_back(opts_.txn_log_header);
  }
  for (const std::string& root : opts_.roots) {
    candidates.push_back(root + "/obs/txn_log.h");
    candidates.push_back(root + "/src/obs/txn_log.h");
  }
  for (const std::string& c : candidates) {
    std::error_code ec;
    if (!fs::is_regular_file(c, ec)) continue;
    auto subjects = parse_subject_table(read_file(c));
    if (!subjects.empty()) {
      opts_.subjects = std::move(subjects);
      subjects_loaded_ = true;
      return;
    }
  }
  subjects_missing_ = true;
}

std::vector<Finding> Linter::lint_text(const std::string& path,
                                       const std::string& text) {
  ensure_subjects();
  LexResult lexed = lex(text);
  const Pragmas pragmas = collect_pragmas(lexed.comments);
  std::vector<Finding> findings;
  FileCtx ctx{path, text, lexed.tokens, pragmas, findings};
  rule_unordered_iter(ctx);
  rule_ambient_entropy(ctx);
  rule_pointer_sort(ctx);
  rule_uninit_pod(ctx);
  rule_txn_subject(ctx, opts_.subjects, subjects_loaded_);
  rule_float_accum(ctx);
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return findings;
}

std::vector<Finding> Linter::run() {
  namespace fs = std::filesystem;
  ensure_subjects();

  static const std::set<std::string> kExts = {".h", ".hpp", ".cpp", ".cc",
                                              ".cxx"};
  std::vector<std::string> files;
  for (const std::string& root : opts_.roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) continue;
    for (fs::recursive_directory_iterator it(root, ec), end;
         it != end && !ec; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string ext = it->path().extension().string();
      if (kExts.count(ext) != 0) {
        files.push_back(it->path().generic_string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  files_scanned_ = files.size();

  std::vector<Finding> findings;
  for (const std::string& f : files) {
    auto per_file = lint_text(f, read_file(f));
    findings.insert(findings.end(),
                    std::make_move_iterator(per_file.begin()),
                    std::make_move_iterator(per_file.end()));
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return static_cast<int>(a.rule) < static_cast<int>(b.rule);
            });
  return findings;
}

}  // namespace hepvine::lint
