# Empty dependencies file for vine_lint.
# This may be replaced when dependencies are built.
