file(REMOVE_RECURSE
  "CMakeFiles/vine_lint.dir/main.cpp.o"
  "CMakeFiles/vine_lint.dir/main.cpp.o.d"
  "vine_lint"
  "vine_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vine_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
