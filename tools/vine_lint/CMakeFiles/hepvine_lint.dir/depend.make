# Empty dependencies file for hepvine_lint.
# This may be replaced when dependencies are built.
