file(REMOVE_RECURSE
  "libhepvine_lint.a"
)
