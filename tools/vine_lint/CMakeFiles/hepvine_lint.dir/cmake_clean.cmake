file(REMOVE_RECURSE
  "CMakeFiles/hepvine_lint.dir/lint.cpp.o"
  "CMakeFiles/hepvine_lint.dir/lint.cpp.o.d"
  "libhepvine_lint.a"
  "libhepvine_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
