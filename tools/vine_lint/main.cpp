// vine_lint CLI: scan the tree for determinism-contract violations.
//
//   vine_lint --root <repo>            # scans <repo>/{src,bench,tools}
//   vine_lint file.cpp dir/ ...        # scans explicit paths
//   vine_lint --list-rules             # print the rule table
//   vine_lint --only=VL007,VL009 ...   # run everything, report these rules
//   vine_lint --stats ...              # print symbol-index counters
//
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void print_rules() {
  using hepvine::lint::kRuleCount;
  using hepvine::lint::Rule;
  using hepvine::lint::rule_info;
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const auto& info = rule_info(static_cast<Rule>(i));
    std::printf("%s %-24s %s\n", info.id, info.name, info.hint);
  }
}

void print_stats(const hepvine::lint::IndexStats& s) {
  std::printf(
      "vine_lint index: %zu file(s), %zu state type(s), %zu member(s) "
      "checked (%zu exempt), %zu writer region(s) covering %zu "
      "identifier(s), %zu fast-path flag(s) with %zu branch read(s), "
      "%zu handle member(s), %zu flat member(s)\n",
      s.files_indexed, s.state_types, s.members_checked, s.members_exempt,
      s.writer_regions, s.writer_idents, s.fastpath_flags, s.branch_reads,
      s.handle_members, s.flat_members);
}

/// Parse "VL007,flat-container-aliasing,..." into rules; returns false and
/// reports the offending name on error.
bool parse_only(const std::string& list,
                std::vector<hepvine::lint::Rule>* out) {
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string name = list.substr(pos, comma - pos);
    if (!name.empty()) {
      auto rule = hepvine::lint::rule_from_name(name);
      if (!rule) {
        std::fprintf(stderr,
                     "vine_lint: unknown rule '%s' in --only (see "
                     "--list-rules)\n",
                     name.c_str());
        return false;
      }
      out->push_back(*rule);
    }
    pos = comma + 1;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = ".";
  std::vector<std::string> paths;
  hepvine::lint::LintOptions opts;
  bool want_stats = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vine_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--tests") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vine_lint: --tests needs a path\n");
        return 2;
      }
      opts.test_roots.push_back(argv[++i]);
    } else if (arg.rfind("--only=", 0) == 0) {
      if (!parse_only(arg.substr(7), &opts.only)) return 2;
      if (opts.only.empty()) {
        std::fprintf(stderr, "vine_lint: --only needs at least one rule\n");
        return 2;
      }
    } else if (arg == "--stats") {
      want_stats = true;
    } else if (arg == "--require-suppress-justification") {
      opts.require_suppress_justification = true;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: vine_lint [--root DIR] [--tests PATH] [--only=RULES]\n"
          "                 [--stats] [--require-suppress-justification]\n"
          "                 [--list-rules] [paths...]\n"
          "With no paths, scans DIR/src, DIR/bench and DIR/tools.\n"
          "--only takes a comma-separated list of rule ids (VL007) or\n"
          "names (snapshot-completeness); all rules still run, output is\n"
          "filtered. --tests points VL010 at the differential-test corpus\n"
          "(default DIR/tests).\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "vine_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  if (paths.empty()) {
    for (const char* sub : {"src", "bench", "tools"}) {
      const std::string dir = root + "/" + sub;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) opts.roots.push_back(dir);
    }
    if (opts.roots.empty()) {
      std::fprintf(stderr,
                   "vine_lint: no src/, bench/ or tools/ under --root %s\n",
                   root.c_str());
      return 2;
    }
  } else {
    opts.roots = paths;
  }
  opts.txn_log_header = root + "/src/obs/txn_log.h";
  if (opts.test_roots.empty()) {
    const std::string tests = root + "/tests";
    std::error_code ec;
    if (fs::is_directory(tests, ec)) opts.test_roots.push_back(tests);
  }

  hepvine::lint::Linter linter(opts);
  const auto findings = linter.run();
  if (linter.files_scanned() == 0) {
    std::fprintf(stderr, "vine_lint: no input files found\n");
    return 2;
  }
  if (!findings.empty()) {
    std::fputs(hepvine::lint::format_findings(findings).c_str(), stdout);
  }
  if (want_stats) print_stats(linter.index_stats());
  std::printf("vine_lint: %zu finding(s) across %zu file(s)\n",
              findings.size(), linter.files_scanned());
  return findings.empty() ? 0 : 1;
}
