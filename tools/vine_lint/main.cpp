// vine_lint CLI: scan the tree for determinism-contract violations.
//
//   vine_lint --root <repo>            # scans <repo>/{src,bench,tools}
//   vine_lint file.cpp dir/ ...        # scans explicit paths
//   vine_lint --list-rules             # print the rule table
//
// Exit status: 0 clean, 1 findings, 2 usage/configuration error.
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "lint.h"

namespace {

void print_rules() {
  using hepvine::lint::kRuleCount;
  using hepvine::lint::Rule;
  using hepvine::lint::rule_info;
  for (std::size_t i = 0; i < kRuleCount; ++i) {
    const auto& info = rule_info(static_cast<Rule>(i));
    std::printf("%s %-16s %s\n", info.id, info.name, info.hint);
  }
}

}  // namespace

int main(int argc, char** argv) {
  namespace fs = std::filesystem;
  std::string root = ".";
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "vine_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: vine_lint [--root DIR] [--list-rules] [paths...]\n"
          "With no paths, scans DIR/src, DIR/bench and DIR/tools.\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "vine_lint: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  hepvine::lint::LintOptions opts;
  if (paths.empty()) {
    for (const char* sub : {"src", "bench", "tools"}) {
      const std::string dir = root + "/" + sub;
      std::error_code ec;
      if (fs::is_directory(dir, ec)) opts.roots.push_back(dir);
    }
    if (opts.roots.empty()) {
      std::fprintf(stderr,
                   "vine_lint: no src/, bench/ or tools/ under --root %s\n",
                   root.c_str());
      return 2;
    }
  } else {
    opts.roots = paths;
  }
  opts.txn_log_header = root + "/src/obs/txn_log.h";

  hepvine::lint::Linter linter(opts);
  const auto findings = linter.run();
  if (linter.files_scanned() == 0) {
    std::fprintf(stderr, "vine_lint: no input files found\n");
    return 2;
  }
  if (!findings.empty()) {
    std::fputs(hepvine::lint::format_findings(findings).c_str(), stdout);
  }
  std::printf("vine_lint: %zu finding(s) across %zu file(s)\n",
              findings.size(), linter.files_scanned());
  return findings.empty() ? 0 : 1;
}
