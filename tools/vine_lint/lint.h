// vine_lint: the determinism contract, statically enforced.
//
// The simulator's core guarantee — bit-identical transaction logs, digests
// and event interleavings across recompute paths, schedulers and fault
// schedules — is only as strong as the code that has not yet been written.
// This library scans `src/`, `bench/` and `tools/` with a lightweight
// tokenizer (no libclang) and rejects the hazard patterns that have
// historically broken replay in distributed schedulers:
//
//   VL001 unordered-iter   iteration over std::unordered_map/set
//   VL002 ambient-entropy  wall clocks, rand(), random_device, getenv
//   VL003 pointer-sort     sorts keyed on pointer addresses
//   VL004 uninit-pod       struct members of scalar type left uninitialized
//   VL005 txn-subject      txn-log subjects missing from the subject table
//   VL006 float-accum      naive floating-point accumulation in digest files
//
// Suppression is explicit and greppable:
//   // vine-lint: allow(<rule-name>)     — disable a rule for a whole file
//   // vine-lint: suppress(<rule-name>)  — disable for this line and the next
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hepvine::lint {

enum class Rule {
  kUnorderedIter = 0,
  kAmbientEntropy,
  kPointerSort,
  kUninitPod,
  kTxnSubject,
  kFloatAccum,
};

inline constexpr std::size_t kRuleCount = 6;

struct RuleInfo {
  Rule rule = Rule::kUnorderedIter;
  const char* id = "";    // "VL001"
  const char* name = "";  // "unordered-iter" — the pragma spelling
  const char* hint = "";  // fix-it guidance printed with every finding
};

/// Static metadata for every rule, indexed by the Rule enum value.
const RuleInfo& rule_info(Rule rule);

/// Reverse lookup from the pragma spelling ("unordered-iter").
std::optional<Rule> rule_from_name(std::string_view name);

struct Finding {
  std::string file;
  int line = 0;
  Rule rule = Rule::kUnorderedIter;
  std::string message;
};

/// `file:line: [VL00x unordered-iter] message` plus an indented fix-it
/// hint, one finding per block. Stable ordering is the caller's job.
std::string format_findings(const std::vector<Finding>& findings);

struct LintOptions {
  /// Files or directories to scan (directories walk recursively, picking
  /// up .h/.hpp/.cpp/.cc/.cxx in sorted order so output is deterministic).
  std::vector<std::string> roots;

  /// Path to obs/txn_log.h, used to load the txn subject table for VL005.
  /// Empty means "derive from the first root that contains
  /// src/obs/txn_log.h"; rule VL005 reports a finding if a file needs the
  /// table and it cannot be loaded.
  std::string txn_log_header;

  /// Pre-loaded subject table (tests use this to avoid touching disk).
  /// Non-empty overrides txn_log_header.
  std::vector<std::string> subjects;
};

class Linter {
 public:
  explicit Linter(LintOptions opts);

  /// Scan every root; findings come back sorted by (file, line, rule).
  [[nodiscard]] std::vector<Finding> run();

  /// Lint one in-memory file. `path` is used for reporting and for
  /// path-based exemptions (src/util/ may read the environment).
  [[nodiscard]] std::vector<Finding> lint_text(const std::string& path,
                                               const std::string& text);

  /// Number of files scanned by the last run().
  [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }

  /// Extract subject names from the kTxnSubjects table in txn_log.h text.
  /// Empty result means the table was not found.
  static std::vector<std::string> parse_subject_table(
      const std::string& header_text);

 private:
  void ensure_subjects();

  LintOptions opts_;
  bool subjects_loaded_ = false;
  bool subjects_missing_ = false;
  std::size_t files_scanned_ = 0;
};

}  // namespace hepvine::lint
