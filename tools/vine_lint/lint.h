// vine_lint: the determinism contract, statically enforced.
//
// The simulator's core guarantee — bit-identical transaction logs, digests
// and event interleavings across recompute paths, schedulers and fault
// schedules — is only as strong as the code that has not yet been written.
// This library scans `src/`, `bench/` and `tools/` with a lightweight
// tokenizer (no libclang) and rejects the hazard patterns that have
// historically broken replay in distributed schedulers.
//
// v2 runs in two passes. Pass 1 builds a symbol index over every file in
// the scan set: struct/class member lists for pragma-annotated state types,
// the identifier set of every SnapshotBuilder writer region, fast-path
// tunable registrations and their branch reads, and the names of
// EventHandle- and FlatMap/FlatSet-typed members. Pass 2 runs the per-file
// rules plus cross-file rules against the index:
//
//   VL001 unordered-iter           iteration over std::unordered_map/set
//   VL002 ambient-entropy          wall clocks, rand(), random_device, getenv
//   VL003 pointer-sort             sorts keyed on pointer addresses
//   VL004 uninit-pod               scalar struct members left uninitialized
//   VL005 txn-subject              txn subjects missing from the subject table
//   VL006 float-accum              naive float accumulation in digest files
//   VL007 snapshot-completeness    mutable state-type member never serialized
//   VL008 handle-generation        stored EventHandle re-armed or poked unsafely
//   VL009 flat-container-aliasing  FlatMap/FlatSet alias held across a mutation
//   VL010 tunable-parity           fast-path branch without reference/test twin
//   VL011 pragma-hygiene           malformed or unknown lint/snapshot pragmas
//
// Suppression is explicit and greppable:
//   // vine-lint: allow(<rule-name>)     — disable a rule for a whole file
//   // vine-lint: suppress(<rule-name>)  — disable for this line and the next
//
// Contract pragmas consumed by the index:
//   // vine-snapshot: state             — next struct/class is snapshot-bearing
//   // vine-snapshot: derived(<why>)    — member is rebuilt, not serialized
//   // vine-snapshot: serialized(<how>) — member is serialized indirectly
//   // vine-fastpath: opt-in            — member is a fast-path tunable flag
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace hepvine::lint {

enum class Rule {
  kUnorderedIter = 0,
  kAmbientEntropy,
  kPointerSort,
  kUninitPod,
  kTxnSubject,
  kFloatAccum,
  kSnapshotCompleteness,
  kHandleGeneration,
  kFlatAliasing,
  kTunableParity,
  kPragmaHygiene,
};

inline constexpr std::size_t kRuleCount = 11;

struct RuleInfo {
  Rule rule = Rule::kUnorderedIter;
  const char* id = "";    // "VL001"
  const char* name = "";  // "unordered-iter" — the pragma spelling
  const char* hint = "";  // fix-it guidance printed with every finding
};

/// Static metadata for every rule, indexed by the Rule enum value.
const RuleInfo& rule_info(Rule rule);

/// Reverse lookup from the pragma spelling ("unordered-iter") or the rule
/// id ("VL001", case-insensitive).
std::optional<Rule> rule_from_name(std::string_view name);

struct Finding {
  std::string file;
  int line = 0;
  Rule rule = Rule::kUnorderedIter;
  std::string message;
};

/// `file:line: [VL00x unordered-iter] message` plus an indented fix-it
/// hint, one finding per block. Stable ordering is the caller's job.
std::string format_findings(const std::vector<Finding>& findings);

/// Pass-1 symbol-index counters, for CI job summaries and tests.
struct IndexStats {
  std::size_t files_indexed = 0;
  std::size_t state_types = 0;      // // vine-snapshot: state annotations
  std::size_t members_checked = 0;  // mutable members of state types
  std::size_t members_exempt = 0;   // derived()/serialized() exemptions
  std::size_t writer_regions = 0;   // SnapshotBuilder lexical scopes
  std::size_t writer_idents = 0;    // distinct identifiers in those scopes
  std::size_t fastpath_flags = 0;   // // vine-fastpath: opt-in tunables
  std::size_t branch_reads = 0;     // if/ternary reads of those tunables
  std::size_t handle_members = 0;   // EventHandle-typed member names
  std::size_t flat_members = 0;     // FlatMap/FlatSet-typed member names
};

struct LintOptions {
  /// Files or directories to scan (directories walk recursively, picking
  /// up .h/.hpp/.cpp/.cc/.cxx in sorted order so output is deterministic).
  std::vector<std::string> roots;

  /// Path to obs/txn_log.h, used to load the txn subject table for VL005.
  /// Empty means "derive from the first root that contains
  /// src/obs/txn_log.h"; rule VL005 reports a finding if a file needs the
  /// table and it cannot be loaded.
  std::string txn_log_header;

  /// Pre-loaded subject table (tests use this to avoid touching disk).
  /// Non-empty overrides txn_log_header.
  std::vector<std::string> subjects;

  /// Files or directories holding the differential tests that VL010 checks
  /// fast-path tunables against. Empty means "derive <root>/../tests or
  /// <root>/tests from the first root that has one"; when nothing resolves,
  /// every fast-path flag reports missing test parity.
  std::vector<std::string> test_roots;

  /// When non-empty, only findings for these rules are reported (the CLI
  /// --only flag). All rules still execute; filtering is on output.
  std::vector<Rule> only;

  /// When true, every `// vine-lint: suppress(...)` pragma must carry a
  /// trailing justification after the closing parenthesis (VL011). CI turns
  /// this on for tree scans; fixtures and ad-hoc runs leave it off.
  bool require_suppress_justification = false;
};

class Linter {
 public:
  explicit Linter(LintOptions opts);

  /// Scan every root; findings come back sorted by (file, line, rule).
  [[nodiscard]] std::vector<Finding> run();

  /// Lint one in-memory file: the file is both the whole pass-1 index and
  /// the pass-2 scan set, so fixtures exercise the cross-file rules
  /// self-contained. `path` is used for reporting and for path-based
  /// exemptions (src/util/ may read the environment, src/sim is the
  /// EventHandle implementation layer).
  [[nodiscard]] std::vector<Finding> lint_text(const std::string& path,
                                               const std::string& text);

  /// Number of files scanned by the last run().
  [[nodiscard]] std::size_t files_scanned() const { return files_scanned_; }

  /// Symbol-index counters from the last run() or lint_text().
  [[nodiscard]] const IndexStats& index_stats() const { return stats_; }

  /// Extract subject names from the kTxnSubjects table in txn_log.h text.
  /// Empty result means the table was not found. Tolerates trailing commas
  /// and interleaved block comments inside the initializer.
  static std::vector<std::string> parse_subject_table(
      const std::string& header_text);

 private:
  void ensure_subjects();
  void apply_only_filter(std::vector<Finding>& findings) const;
  std::vector<std::pair<std::string, std::string>> load_test_corpus() const;

  LintOptions opts_;
  bool subjects_loaded_ = false;
  bool subjects_missing_ = false;
  std::size_t files_scanned_ = 0;
  IndexStats stats_;
};

}  // namespace hepvine::lint
