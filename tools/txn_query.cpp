// txn_query: interrogate a transactions log produced by a scheduler run
// (our analogue of CCTools' vine_plot_txn_log, but for questions rather
// than plots).
//
// Usage:
//   txn_query <txn.log> task <id>      lifecycle of one task
//   txn_query <txn.log> tasks          lifecycle of every task (brief)
//   txn_query <txn.log> categories     per-category wait/run breakdown
//   txn_query <txn.log> workers        connection/disconnection summary
//   txn_query <txn.log> cache          cache lifecycle (INSERT/EVICT/GC/LOST)
//   txn_query <txn.log> store          object-store lifecycle (PUT/REF/SPILL/DROP)
//   txn_query <txn.log> profile [k]    blame rollup + top-k critical chain
//   txn_query <txn.log> summary        everything above, condensed

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/txn_query.h"
#include "util/units.h"

namespace {

using namespace hepvine;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <txn.log> <command> [args]\n"
               "commands:\n"
               "  task <id>    lifecycle of task <id>\n"
               "  tasks        one-line lifecycle per task\n"
               "  categories   per-category wait/run breakdown\n"
               "  workers      worker connection summary\n"
               "  cache        cache lifecycle rollup (INSERT/EVICT/GC/LOST)\n"
               "  store        object-store rollup (PUT/REF/SPILL/DROP)\n"
               "  profile [k]  blame rollup + top-k critical-chain links\n"
               "  summary      condensed overview\n",
               argv0);
  return 2;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  ok = true;
  return buf.str();
}

void print_workers(const obs::txnq::WorkerSummary& ws) {
  std::printf("workers: %zu connections\n", ws.connections);
  for (const auto& [reason, count] : ws.disconnections_by_reason) {
    std::printf("  disconnections (%s): %zu\n", reason.c_str(), count);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0]);
  const std::string path = argv[1];
  const std::string cmd = argv[2];

  bool ok = false;
  const std::string text = read_file(path, ok);
  if (!ok) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  const auto events = obs::txnq::parse_log(text);
  if (events.empty()) {
    std::fprintf(stderr, "error: no parsable events in %s\n", path.c_str());
    return 1;
  }

  if (cmd == "task") {
    if (argc < 4) return usage(argv[0]);
    const std::int64_t id = std::strtoll(argv[3], nullptr, 10);
    const auto lt = obs::txnq::task_lifetime(events, id);
    if (!lt) {
      std::fprintf(stderr, "error: no record of task %lld in the log\n",
                   static_cast<long long>(id));
      return 1;
    }
    std::fputs(obs::txnq::format_lifetime(*lt).c_str(), stdout);
    return 0;
  }

  if (cmd == "tasks") {
    const auto all = obs::txnq::all_task_lifetimes(events);
    for (const auto& [id, lt] : all) {
      std::printf("task %lld [%s] attempts=%u worker=%d wait=%s run=%s%s\n",
                  static_cast<long long>(id), lt.category.c_str(),
                  lt.attempts, lt.worker,
                  util::format_duration(lt.wait_time()).c_str(),
                  util::format_duration(lt.run_time()).c_str(),
                  lt.complete() ? "" : " (incomplete)");
    }
    return 0;
  }

  if (cmd == "categories") {
    std::fputs(obs::txnq::format_breakdown(
                   obs::txnq::category_breakdown(events))
                   .c_str(),
               stdout);
    return 0;
  }

  if (cmd == "workers") {
    print_workers(obs::txnq::worker_summary(events));
    return 0;
  }

  if (cmd == "cache") {
    std::fputs(obs::txnq::format_cache_summary(
                   obs::txnq::cache_summary(events))
                   .c_str(),
               stdout);
    return 0;
  }

  if (cmd == "store") {
    std::fputs(obs::txnq::format_store_summary(
                   obs::txnq::store_summary(events))
                   .c_str(),
               stdout);
    return 0;
  }

  if (cmd == "profile") {
    std::size_t top_k = 5;
    if (argc >= 4) {
      top_k = static_cast<std::size_t>(std::strtoull(argv[3], nullptr, 10));
    }
    if (obs::txnq::span_records(events).empty()) {
      std::fprintf(stderr,
                   "error: no SPAN ATTEMPT records in %s — the profile "
                   "command needs a transactions log captured with span "
                   "lines (a pre-profiler run, or a log from a build "
                   "without obs spans, cannot be profiled)\n",
                   argv[1]);
      return 1;
    }
    std::fputs(obs::txnq::format_profile(events, top_k).c_str(), stdout);
    return 0;
  }

  if (cmd == "summary") {
    const auto all = obs::txnq::all_task_lifetimes(events);
    std::size_t complete = 0;
    for (const auto& [id, lt] : all) complete += lt.complete() ? 1 : 0;
    std::printf("events: %zu\n", events.size());
    std::printf("tasks: %zu (%zu with complete lifecycles)\n", all.size(),
                complete);
    print_workers(obs::txnq::worker_summary(events));
    std::fputs(obs::txnq::format_breakdown(
                   obs::txnq::category_breakdown(events))
                   .c_str(),
               stdout);
    std::fputs(obs::txnq::format_cache_summary(
                   obs::txnq::cache_summary(events))
                   .c_str(),
               stdout);
    // Store-less logs (store off, or pre-store runs) keep the exact
    // pre-existing summary output.
    const auto ss = obs::txnq::store_summary(events);
    if (ss.puts + ss.refs + ss.spills + ss.drops > 0) {
      std::fputs(obs::txnq::format_store_summary(ss).c_str(), stdout);
    }
    return 0;
  }

  return usage(argv[0]);
}
