#!/usr/bin/env bash
# Incremental clang-tidy over compile_commands.json.
#
# Each translation unit is skipped when a stamp for
#   sha256(TU source + all tracked headers + .clang-tidy + tidy version)
# already exists, so a re-run after an unrelated change is near-free. CI
# persists the stamp directory across runs with actions/cache, keyed on
# the same compiler/config hash.
#
# Usage: tools/lint/tidy_cache.sh <build-dir>
# Env:   CLANG_TIDY       clang-tidy binary (default: clang-tidy)
#        TIDY_CACHE_DIR   stamp directory (default: <build-dir>/.tidy-cache)
set -euo pipefail

BUILD_DIR=${1:?usage: tidy_cache.sh <build-dir>}
CLANG_TIDY=${CLANG_TIDY:-clang-tidy}
CACHE_DIR=${TIDY_CACHE_DIR:-${BUILD_DIR}/.tidy-cache}
DB="${BUILD_DIR}/compile_commands.json"

if ! command -v "${CLANG_TIDY}" >/dev/null 2>&1; then
  echo "tidy_cache: ${CLANG_TIDY} not found, skipping" >&2
  exit 0
fi
if [ ! -f "${DB}" ]; then
  echo "tidy_cache: ${DB} missing (configure with CMake first)" >&2
  exit 2
fi
mkdir -p "${CACHE_DIR}"

# Config hash: tidy version + profile + every header a TU might include.
# A header edit therefore invalidates every stamp; per-TU hashes below
# keep unrelated .cpp edits cheap.
CFG_HASH=$( {
  "${CLANG_TIDY}" --version
  cat .clang-tidy
  find src bench tools -name '*.h' -o -name '*.hpp' | LC_ALL=C sort |
    xargs cat
} | sha256sum | cut -c1-16)

# TU list from the compilation database, restricted to our own tree.
mapfile -t FILES < <(grep -o '"file": *"[^"]*"' "${DB}" |
  sed 's/.*"file": *"//; s/"$//' | LC_ALL=C sort -u |
  grep -E '/(src|bench|tools)/')

fail=0
ran=0
skipped=0
for f in "${FILES[@]}"; do
  [ -f "$f" ] || continue
  tu_hash=$(sha256sum "$f" | cut -c1-16)
  stamp="${CACHE_DIR}/$(printf '%s' "${f}-${tu_hash}-${CFG_HASH}" |
    sha256sum | cut -c1-32)"
  if [ -e "${stamp}" ]; then
    skipped=$((skipped + 1))
    continue
  fi
  echo "clang-tidy ${f}"
  if "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet "$f"; then
    touch "${stamp}"
  else
    fail=1
  fi
  ran=$((ran + 1))
done

echo "tidy_cache: ${ran} linted, ${skipped} cached, config ${CFG_HASH}"
exit "${fail}"
