# Empty dependencies file for hepvine_cluster.
# This may be replaced when dependencies are built.
