file(REMOVE_RECURSE
  "CMakeFiles/hepvine_cluster.dir/cluster.cpp.o"
  "CMakeFiles/hepvine_cluster.dir/cluster.cpp.o.d"
  "libhepvine_cluster.a"
  "libhepvine_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
