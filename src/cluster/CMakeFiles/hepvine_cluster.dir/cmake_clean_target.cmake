file(REMOVE_RECURSE
  "libhepvine_cluster.a"
)
