#include "cluster/cluster.h"

#include <utility>

namespace hepvine::cluster {

Cluster::Cluster(ClusterSpec spec) : spec_(std::move(spec)) {
  network_ = std::make_unique<net::Network>(engine_, spec_.net);

  manager_up_ = network_->add_link("manager.up", spec_.manager_nic);
  manager_down_ = network_->add_link("manager.down", spec_.manager_nic);

  const net::LinkId fs_link =
      network_->add_link("fs." + spec_.fs.name, spec_.fs.aggregate_bw);
  fs_ = std::make_unique<storage::SharedFilesystem>(engine_, *network_,
                                                    fs_link, spec_.fs);

  const net::LinkId wan_link =
      network_->add_link("wan." + spec_.wan.name, spec_.wan.aggregate_bw);
  wan_ = std::make_unique<storage::SharedFilesystem>(engine_, *network_,
                                                     wan_link, spec_.wan);

  sim::Rng speed_rng(spec_.seed, "node-speed");
  workers_.reserve(spec_.worker_count);
  for (std::uint32_t i = 0; i < spec_.worker_count; ++i) {
    WorkerNode node;
    node.id = static_cast<WorkerId>(i);
    node.uplink = network_->add_link("w" + std::to_string(i) + ".up",
                                     spec_.worker.nic);
    node.downlink = network_->add_link("w" + std::to_string(i) + ".down",
                                       spec_.worker.nic);
    node.cores = spec_.worker.cores;
    node.memory = spec_.worker.memory;
    node.disk = storage::LocalDisk(spec_.worker.disk,
                                   spec_.worker.disk_capacity);
    node.speed = spec_.worker.base_speed;
    if (spec_.speed_spread > 0) {
      node.speed *= speed_rng.uniform(1.0 - spec_.speed_spread,
                                      1.0 + spec_.speed_spread);
    }
    workers_.push_back(std::move(node));
  }

  batch_ = std::make_unique<batch::BatchSystem>(engine_, spec_.batch,
                                                spec_.seed);
}

std::uint32_t Cluster::alive_workers() const {
  std::uint32_t n = 0;
  for (const auto& w : workers_) {
    if (w.alive) ++n;
  }
  return n;
}

std::uint32_t Cluster::total_cores() const {
  std::uint32_t n = 0;
  for (const auto& w : workers_) n += w.cores;
  return n;
}

net::FlowId Cluster::send_manager_to_worker(WorkerId dst, std::uint64_t bytes,
                                            Tick latency,
                                            std::function<void()> done) {
  return network_->start_flow(
      {manager_up_, worker(dst).downlink}, bytes, latency,
      [cb = std::move(done)](net::FlowId) {
        if (cb) cb();
      });
}

net::FlowId Cluster::send_worker_to_manager(WorkerId src, std::uint64_t bytes,
                                            Tick latency,
                                            std::function<void()> done) {
  return network_->start_flow(
      {worker(src).uplink, manager_down_}, bytes, latency,
      [cb = std::move(done)](net::FlowId) {
        if (cb) cb();
      });
}

net::FlowId Cluster::send_peer(WorkerId src, WorkerId dst, std::uint64_t bytes,
                               Tick latency, std::function<void()> done) {
  return network_->start_flow(
      {worker(src).uplink, worker(dst).downlink}, bytes, latency,
      [cb = std::move(done)](net::FlowId) {
        if (cb) cb();
      });
}

net::FlowId Cluster::read_fs_to_worker(WorkerId dst, std::uint64_t bytes,
                                       std::function<void()> done) {
  return fs_->read(worker(dst).downlink, bytes, std::move(done));
}

net::FlowId Cluster::read_wan_to_worker(WorkerId dst, std::uint64_t bytes,
                                        std::function<void()> done) {
  return wan_->read(worker(dst).downlink, bytes, std::move(done));
}

net::FlowId Cluster::write_worker_to_fs(WorkerId src, std::uint64_t bytes,
                                        std::function<void()> done) {
  return fs_->write(worker(src).uplink, bytes, std::move(done));
}

net::FlowId Cluster::read_fs_to_manager(std::uint64_t bytes,
                                        std::function<void()> done) {
  return fs_->read(manager_down_, bytes, std::move(done));
}

void Cluster::request_workers(std::function<void(WorkerId)> on_up,
                              std::function<void(WorkerId)> on_down,
                              std::uint32_t initial) {
  batch_->submit(
      spec_.worker_count,
      [this, up = std::move(on_up)](std::uint32_t slot,
                                    std::uint32_t incarnation) {
        WorkerNode& node = workers_[slot];
        node.alive = true;
        node.incarnation = incarnation;
        node.cores_in_use = 0;
        // A replacement job lands on a fresh scratch allocation.
        node.disk = storage::LocalDisk(spec_.worker.disk,
                                       spec_.worker.disk_capacity);
        if (up) up(static_cast<WorkerId>(slot));
      },
      [this, down = std::move(on_down)](std::uint32_t slot,
                                        std::uint32_t /*incarnation*/) {
        WorkerNode& node = workers_[slot];
        node.alive = false;
        node.cores_in_use = 0;
        if (down) down(static_cast<WorkerId>(slot));
      },
      initial);
}

}  // namespace hepvine::cluster
