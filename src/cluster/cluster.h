// Cluster assembly: wires the event engine, flow network, shared
// filesystem, batch system, and worker nodes into one simulated facility.
//
// Topology is a star: every node (manager, each worker, the shared
// filesystem) has an uplink and a downlink of its NIC's capacity; the core
// switch is non-blocking (the paper's campus cluster bottlenecks are NICs
// and the filesystem, not the fabric). Workers are granted and preempted by
// the batch system; the scheduler on top registers a listener to react.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "batch/batch_system.h"
#include "net/network.h"
#include "sim/engine.h"
#include "sim/rng.h"
#include "storage/disk.h"
#include "storage/shared_fs.h"
#include "util/units.h"

namespace hepvine::cluster {

using util::Bandwidth;
using util::Tick;

using WorkerId = std::int32_t;
inline constexpr WorkerId kNoWorker = -1;

struct NodeSpec {
  std::uint32_t cores = 12;
  std::uint64_t memory = 96 * util::kGB;
  std::uint64_t disk_capacity = 108 * util::kGB;
  storage::DiskSpec disk = storage::nvme_disk();
  Bandwidth nic = util::gbps(10);
  /// Relative CPU speed; per-node heterogeneity is layered on top.
  double base_speed = 1.0;
};

struct ClusterSpec {
  std::uint32_t worker_count = 200;
  NodeSpec worker;
  Bandwidth manager_nic = util::gbps(25);
  storage::SharedFsSpec fs = storage::vast_spec();
  /// Wide-area data federation reachable from every node (XRootD). Always
  /// wired; schedulers use it only when asked to stream inputs remotely.
  storage::SharedFsSpec wan = storage::xrootd_wan_spec();
  batch::BatchSpec batch;
  /// Flow-network engine knobs (incremental vs reference recompute).
  net::NetworkOptions net;
  /// +/- fractional spread of per-node CPU speed (heterogeneous campus
  /// cluster; 0 disables).
  double speed_spread = 0.10;
  std::uint64_t seed = 1;
};

/// One worker node's physical state. Core accounting is cooperative: the
/// scheduler reserves/releases cores as it places work.
struct WorkerNode {
  WorkerId id = kNoWorker;
  net::LinkId uplink = -1;
  net::LinkId downlink = -1;
  std::uint32_t cores = 0;
  std::uint32_t cores_in_use = 0;
  std::uint64_t memory = 0;
  storage::LocalDisk disk;
  double speed = 1.0;
  /// Fault-injected straggler factor (1 = nominal). Kept separate from
  /// `speed` so a window can end by restoring exactly 1.0, drift-free.
  double speed_scale = 1.0;
  bool alive = false;
  std::uint32_t incarnation = 0;

  [[nodiscard]] std::uint32_t cores_free() const noexcept {
    return cores > cores_in_use ? cores - cores_in_use : 0;
  }
  /// Speed after any active straggler window; what task runtimes divide by.
  [[nodiscard]] double effective_speed() const noexcept {
    return speed * speed_scale;
  }
};

class Cluster {
 public:
  explicit Cluster(ClusterSpec spec);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] net::Network& network() noexcept { return *network_; }
  [[nodiscard]] storage::SharedFilesystem& fs() noexcept { return *fs_; }
  [[nodiscard]] storage::SharedFilesystem& wan() noexcept { return *wan_; }
  [[nodiscard]] batch::BatchSystem& batch() noexcept { return *batch_; }
  [[nodiscard]] const ClusterSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] std::uint32_t worker_count() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }
  [[nodiscard]] WorkerNode& worker(WorkerId id) {
    return workers_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] const WorkerNode& worker(WorkerId id) const {
    return workers_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::uint32_t alive_workers() const;
  [[nodiscard]] std::uint32_t total_cores() const;

  [[nodiscard]] net::LinkId manager_uplink() const noexcept {
    return manager_up_;
  }
  [[nodiscard]] net::LinkId manager_downlink() const noexcept {
    return manager_down_;
  }

  // --- transfer-matrix endpoint numbering -------------------------------
  // 0 = manager, 1..N = workers, N+1 = shared filesystem.
  [[nodiscard]] std::size_t endpoint_count() const noexcept {
    return workers_.size() + 2;
  }
  [[nodiscard]] static std::size_t manager_endpoint() noexcept { return 0; }
  [[nodiscard]] std::size_t worker_endpoint(WorkerId id) const noexcept {
    return static_cast<std::size_t>(id) + 1;
  }
  [[nodiscard]] std::size_t fs_endpoint() const noexcept {
    return workers_.size() + 1;
  }

  // --- data movement helpers ---------------------------------------------
  /// Manager -> worker transfer (dispatching serialized functions, small
  /// inputs). Completion callback omitted -> fire and forget.
  net::FlowId send_manager_to_worker(WorkerId dst, std::uint64_t bytes,
                                     Tick latency,
                                     std::function<void()> done);
  /// Worker -> manager transfer (returning results).
  net::FlowId send_worker_to_manager(WorkerId src, std::uint64_t bytes,
                                     Tick latency,
                                     std::function<void()> done);
  /// Worker -> worker peer transfer.
  net::FlowId send_peer(WorkerId src, WorkerId dst, std::uint64_t bytes,
                        Tick latency, std::function<void()> done);
  /// Shared filesystem -> worker read.
  net::FlowId read_fs_to_worker(WorkerId dst, std::uint64_t bytes,
                                std::function<void()> done);
  /// Wide-area federation -> worker read (XRootD streaming).
  net::FlowId read_wan_to_worker(WorkerId dst, std::uint64_t bytes,
                                 std::function<void()> done);
  /// Worker -> shared filesystem write.
  net::FlowId write_worker_to_fs(WorkerId src, std::uint64_t bytes,
                                 std::function<void()> done);
  /// Shared filesystem -> manager read (manager staging inputs itself, the
  /// Work Queue pattern).
  net::FlowId read_fs_to_manager(std::uint64_t bytes,
                                 std::function<void()> done);

  /// Round-trip control-message latency between manager and a worker.
  [[nodiscard]] Tick control_rtt() const noexcept { return 600 * util::kUsec; }

  // --- batch integration ---------------------------------------------------
  /// Ask the batch system for all configured workers. `on_up` / `on_down`
  /// fire as nodes are matched and preempted; the cluster updates the node
  /// state (alive flag, cleared disk) before forwarding. When `initial` is
  /// smaller than the configured pool, the remainder stays parked for an
  /// elastic factory to start via `batch().start_slots()`.
  void request_workers(std::function<void(WorkerId)> on_up,
                       std::function<void(WorkerId)> on_down,
                       std::uint32_t initial = 0xffffffffU);

 private:
  ClusterSpec spec_;
  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<storage::SharedFilesystem> fs_;
  std::unique_ptr<storage::SharedFilesystem> wan_;
  std::unique_ptr<batch::BatchSystem> batch_;
  std::vector<WorkerNode> workers_;
  net::LinkId manager_up_ = -1;
  net::LinkId manager_down_ = -1;
};

}  // namespace hepvine::cluster
