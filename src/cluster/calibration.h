// Hardware calibration: the constants describing the paper's facility.
//
// These are the knobs EXPERIMENTS.md documents. Absolute runtimes depend on
// them; the benches print paper-vs-measured so the mapping is explicit.
#pragma once

#include "cluster/cluster.h"
#include "storage/shared_fs.h"

namespace hepvine::cluster {

/// The paper's standard worker: 12 cores @2.5 GHz, 96 GB RAM, 108 GB disk.
[[nodiscard]] inline NodeSpec paper_worker_node() {
  NodeSpec node;
  node.cores = 12;
  node.memory = 96 * util::kGB;
  node.disk_capacity = 108 * util::kGB;
  node.disk = storage::nvme_disk();
  node.nic = util::gbps(10);
  return node;
}

/// RS-TriPhoton workers: 700 GB disk, 200 GB RAM (Section V-B).
[[nodiscard]] inline NodeSpec triphoton_worker_node() {
  NodeSpec node = paper_worker_node();
  node.memory = 200 * util::kGB;
  node.disk_capacity = 700 * util::kGB;
  return node;
}

/// Assemble the paper's campus cluster with `workers` nodes of `node` shape
/// on shared filesystem `fs`.
[[nodiscard]] inline ClusterSpec paper_cluster(
    std::uint32_t workers, const NodeSpec& node,
    const storage::SharedFsSpec& fs, std::uint64_t seed = 1) {
  ClusterSpec spec;
  spec.worker_count = workers;
  spec.worker = node;
  // The manager is an ordinary campus node on 10 GbE — which is exactly
  // why funneling terabytes through it (the Work Queue pattern) caps
  // Stacks 1-2 in Table I.
  spec.manager_nic = util::gbps(10);
  spec.fs = fs;
  spec.seed = seed;
  spec.batch.preemption_rate_per_hour = 0.01;  // ~1% per ~1 h run
  return spec;
}

}  // namespace hepvine::cluster
