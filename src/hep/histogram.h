// Histograms: the currency of HEP analysis results.
//
// Coffea applications reduce terabytes of events into summary histograms;
// the aggregation is commutative and associative, which is exactly what
// licenses the paper's tree-reduction rewrite (Fig 11). We implement real
// regular-binned histograms with weights; tests rely on merge algebra and
// on digests to prove result identity across schedulers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "dag/value.h"
#include "util/hash.h"

namespace hepvine::hep {

/// 1-D histogram with regular binning, under/overflow, and weighted fills.
class Histogram1D {
 public:
  Histogram1D() = default;
  Histogram1D(std::uint32_t bins, double lo, double hi);

  /// Fill with a weight. Weights are quantized to multiples of 1/1024 so
  /// that accumulation is exactly associative/commutative (see .cpp).
  void fill(double x, double weight = 1.0);
  void merge(const Histogram1D& other);

  [[nodiscard]] std::uint32_t bins() const noexcept {
    return static_cast<std::uint32_t>(counts_.size());
  }
  [[nodiscard]] double lo() const noexcept { return lo_; }
  [[nodiscard]] double hi() const noexcept { return hi_; }
  [[nodiscard]] double bin_content(std::uint32_t i) const {
    return counts_[i];
  }
  [[nodiscard]] double underflow() const noexcept { return underflow_; }
  [[nodiscard]] double overflow() const noexcept { return overflow_; }
  /// Total weight including under/overflow.
  [[nodiscard]] double integral() const noexcept;
  [[nodiscard]] std::uint64_t entries() const noexcept { return entries_; }
  /// Weighted mean of in-range fills (bin centers weighted by content).
  [[nodiscard]] double mean() const;

  [[nodiscard]] std::uint64_t byte_size() const noexcept {
    return counts_.size() * sizeof(double) + 64;
  }
  void add_to_digest(util::Hasher& hasher) const;

  friend bool operator==(const Histogram1D&, const Histogram1D&) = default;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  double width_ = 1.0;
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
  std::uint64_t entries_ = 0;
};

/// Pearson chi-squared per degree of freedom between two histograms with
/// identical binning (Poisson errors, empty-in-both bins skipped). ~1 for
/// statistically compatible spectra; used to validate physics shapes
/// across independent dataset seeds. Throws on binning mismatch.
[[nodiscard]] double chi2_per_dof(const Histogram1D& a,
                                  const Histogram1D& b);

/// A named collection of histograms — what one processor task returns and
/// what accumulation merges. Implements dag::Value so it can flow through
/// any scheduler.
class HistogramSet final : public dag::Value {
 public:
  HistogramSet() = default;

  /// Access (creating if absent) a histogram by name.
  Histogram1D& get(const std::string& name, std::uint32_t bins = 100,
                   double lo = 0.0, double hi = 1.0);
  [[nodiscard]] const Histogram1D* find(const std::string& name) const;

  void merge(const HistogramSet& other);

  [[nodiscard]] std::size_t count() const noexcept { return hists_.size(); }
  [[nodiscard]] const std::map<std::string, Histogram1D>& histograms()
      const noexcept {
    return hists_;
  }

  [[nodiscard]] std::uint64_t byte_size() const override;
  [[nodiscard]] util::Digest128 digest() const override;

  /// Merge any number of HistogramSet values (the accumulate ComputeFn).
  [[nodiscard]] static dag::ValuePtr merge_values(
      const std::vector<dag::ValuePtr>& inputs);

 private:
  std::map<std::string, Histogram1D> hists_;
};

}  // namespace hepvine::hep
