#include "hep/histogram.h"

#include <cmath>
#include <stdexcept>

#include "util/det_sum.h"

namespace hepvine::hep {

Histogram1D::Histogram1D(std::uint32_t bins, double lo, double hi)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  if (bins == 0 || !(hi > lo)) {
    throw std::invalid_argument("histogram needs bins > 0 and hi > lo");
  }
  width_ = (hi - lo) / static_cast<double>(bins);
}

void Histogram1D::fill(double x, double weight) {
  // Quantize weights to 1/1024: sums of such values are exact in binary
  // floating point (up to ~2^42 entries), which makes histogram merging
  // exactly associative and commutative. Tests exploit this to assert
  // bit-identical results under any reduction tree shape.
  weight = std::round(weight * 1024.0) / 1024.0;
  ++entries_;
  if (x < lo_) {
    underflow_ += weight;
  } else if (x >= hi_) {
    overflow_ += weight;
  } else {
    auto bin = static_cast<std::size_t>((x - lo_) / width_);
    if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge guard
    counts_[bin] += weight;
  }
}

void Histogram1D::merge(const Histogram1D& other) {
  if (counts_.empty()) {
    *this = other;
    return;
  }
  if (other.counts_.empty()) return;
  if (other.bins() != bins() || other.lo_ != lo_ || other.hi_ != hi_) {
    throw std::invalid_argument("merging histograms with different binning");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  underflow_ += other.underflow_;
  overflow_ += other.overflow_;
  entries_ += other.entries_;
}

double Histogram1D::integral() const noexcept {
  util::DetSum sum(underflow_ + overflow_);
  for (double c : counts_) sum.add(c);
  return sum.value();
}

double Histogram1D::mean() const {
  util::DetSum wsum;
  util::DetSum xsum;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double center = lo_ + width_ * (static_cast<double>(i) + 0.5);
    wsum.add(counts_[i]);
    xsum.add(counts_[i] * center);
  }
  return wsum.value() > 0 ? xsum.value() / wsum.value() : 0.0;
}

void Histogram1D::add_to_digest(util::Hasher& hasher) const {
  hasher.update_double(lo_).update_double(hi_);
  hasher.update_u64(counts_.size());
  for (double c : counts_) hasher.update_double(c);
  hasher.update_double(underflow_).update_double(overflow_);
  hasher.update_u64(entries_);
}

double chi2_per_dof(const Histogram1D& a, const Histogram1D& b) {
  if (a.bins() != b.bins() || a.lo() != b.lo() || a.hi() != b.hi()) {
    throw std::invalid_argument("chi2 requires identical binning");
  }
  util::DetSum chi2;
  std::size_t dof = 0;
  for (std::uint32_t i = 0; i < a.bins(); ++i) {
    const double na = a.bin_content(i);
    const double nb = b.bin_content(i);
    const double var = na + nb;  // Poisson
    if (var <= 0) continue;
    const double d = na - nb;
    chi2.add(d * d / var);
    ++dof;
  }
  return dof > 0 ? chi2.value() / static_cast<double>(dof) : 0.0;
}

Histogram1D& HistogramSet::get(const std::string& name, std::uint32_t bins,
                               double lo, double hi) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, Histogram1D(bins, lo, hi)).first;
  }
  return it->second;
}

const Histogram1D* HistogramSet::find(const std::string& name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void HistogramSet::merge(const HistogramSet& other) {
  for (const auto& [name, hist] : other.hists_) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      hists_.emplace(name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

std::uint64_t HistogramSet::byte_size() const {
  std::uint64_t total = 128;
  for (const auto& [name, hist] : hists_) {
    total += name.size() + hist.byte_size();
  }
  return total;
}

util::Digest128 HistogramSet::digest() const {
  util::Hasher hasher(0x415e7);
  hasher.update_u64(hists_.size());
  for (const auto& [name, hist] : hists_) {
    hasher.update(name);
    hist.add_to_digest(hasher);
  }
  return hasher.digest();
}

dag::ValuePtr HistogramSet::merge_values(
    const std::vector<dag::ValuePtr>& inputs) {
  auto out = std::make_shared<HistogramSet>();
  for (const auto& value : inputs) {
    if (!value) continue;
    const auto* set = dynamic_cast<const HistogramSet*>(value.get());
    if (set == nullptr) {
      throw std::invalid_argument("accumulate expects HistogramSet inputs");
    }
    out->merge(*set);
  }
  return out;
}

}  // namespace hepvine::hep
