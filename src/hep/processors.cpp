#include "hep/processors.h"

#include <cmath>

namespace hepvine::hep {

double dijet_mass(float pt1, float eta1, float phi1, float pt2, float eta2,
                  float phi2) {
  // m^2 = 2 pT1 pT2 (cosh(deta) - cos(dphi)) for massless constituents.
  const double deta = static_cast<double>(eta1) - static_cast<double>(eta2);
  const double dphi = static_cast<double>(phi1) - static_cast<double>(phi2);
  const double m2 = 2.0 * static_cast<double>(pt1) *
                    static_cast<double>(pt2) *
                    (std::cosh(deta) - std::cos(dphi));
  return m2 > 0 ? std::sqrt(m2) : 0.0;
}

namespace dv3_cuts {
const char* label(std::uint32_t stage) {
  switch (stage) {
    case kAll:
      return "all events";
    case kMet25:
      return "MET > 25 GeV";
    case kTwoBJets:
      return ">= 2 b-tagged jets";
    case kHiggsWindow:
      return "pair in 100-150 GeV";
  }
  return "?";
}
}  // namespace dv3_cuts

HistogramSet dv3_process(const EventChunk& chunk) {
  using namespace binning;
  HistogramSet out;
  Histogram1D& met =
      out.get("met", kMetBins, kMetLo, kMetHi);
  Histogram1D& mass =
      out.get("dijet_mass", kDijetBins, kDijetLo, kDijetHi);
  Histogram1D& njets = out.get("n_btag_jets", 10, 0.0, 10.0);
  Histogram1D& cutflow = out.get("cutflow", dv3_cuts::kStages, 0.0,
                                 static_cast<double>(dv3_cuts::kStages));

  for (std::size_t e = 0; e < chunk.events; ++e) {
    met.fill(chunk.met_pt[e]);
    cutflow.fill(dv3_cuts::kAll);
    if (chunk.met_pt[e] > 25.0f) cutflow.fill(dv3_cuts::kMet25);

    // Select b-tagged jets (quality above working point) with pt > 30.
    const std::uint32_t begin = chunk.jets.begin_of(e);
    const std::uint32_t end = chunk.jets.end_of(e);
    std::uint32_t selected[16];
    std::uint32_t nsel = 0;
    for (std::uint32_t j = begin; j < end && nsel < 16; ++j) {
      if (chunk.jets.quality[j] > 0.85f && chunk.jets.pt[j] > 30.0f) {
        selected[nsel++] = j;
      }
    }
    njets.fill(static_cast<double>(nsel));
    if (nsel >= 2) cutflow.fill(dv3_cuts::kTwoBJets);
    // All b-jet pairs: the Higgs candidate is any pair; background pairs
    // fill combinatorics, signal pairs pile up near 125 GeV.
    bool in_window = false;
    for (std::uint32_t a = 0; a < nsel; ++a) {
      for (std::uint32_t b = a + 1; b < nsel; ++b) {
        const std::uint32_t j1 = selected[a];
        const std::uint32_t j2 = selected[b];
        const double m =
            dijet_mass(chunk.jets.pt[j1], chunk.jets.eta[j1],
                       chunk.jets.phi[j1], chunk.jets.pt[j2],
                       chunk.jets.eta[j2], chunk.jets.phi[j2]);
        mass.fill(m);
        in_window |= m > 100.0 && m < 150.0;
      }
    }
    if (in_window) cutflow.fill(dv3_cuts::kHiggsWindow);
  }
  return out;
}

HistogramSet triphoton_process(const EventChunk& chunk) {
  using namespace binning;
  HistogramSet out;
  Histogram1D& mass =
      out.get("triphoton_mass", kTriphotonBins, kTriphotonLo, kTriphotonHi);
  Histogram1D& lead_pt = out.get("leading_photon_pt", 100, 0.0, 600.0);

  for (std::size_t e = 0; e < chunk.events; ++e) {
    const std::uint32_t begin = chunk.photons.begin_of(e);
    const std::uint32_t end = chunk.photons.end_of(e);

    // Select isolated photons with pt > 75.
    std::uint32_t selected[8];
    std::uint32_t nsel = 0;
    float max_pt = 0.0f;
    for (std::uint32_t g = begin; g < end && nsel < 8; ++g) {
      if (chunk.photons.quality[g] > 0.9f && chunk.photons.pt[g] > 75.0f) {
        selected[nsel++] = g;
        if (chunk.photons.pt[g] > max_pt) max_pt = chunk.photons.pt[g];
      }
    }
    if (nsel < 3) continue;
    lead_pt.fill(static_cast<double>(max_pt));

    // Invariant mass of the three leading selected photons (massless).
    double px = 0, py = 0, pz = 0, energy = 0;
    for (std::uint32_t i = 0; i < 3; ++i) {
      const std::uint32_t g = selected[i];
      const double pt = chunk.photons.pt[g];
      const double eta = chunk.photons.eta[g];
      const double phi = chunk.photons.phi[g];
      px += pt * std::cos(phi);
      py += pt * std::sin(phi);
      pz += pt * std::sinh(eta);
      energy += pt * std::cosh(eta);
    }
    const double m2 = energy * energy - (px * px + py * py + pz * pz);
    mass.fill(m2 > 0 ? std::sqrt(m2) : 0.0);
  }
  return out;
}

}  // namespace hepvine::hep
