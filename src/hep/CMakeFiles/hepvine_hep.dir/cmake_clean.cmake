file(REMOVE_RECURSE
  "CMakeFiles/hepvine_hep.dir/events.cpp.o"
  "CMakeFiles/hepvine_hep.dir/events.cpp.o.d"
  "CMakeFiles/hepvine_hep.dir/histogram.cpp.o"
  "CMakeFiles/hepvine_hep.dir/histogram.cpp.o.d"
  "CMakeFiles/hepvine_hep.dir/processors.cpp.o"
  "CMakeFiles/hepvine_hep.dir/processors.cpp.o.d"
  "libhepvine_hep.a"
  "libhepvine_hep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_hep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
