# Empty dependencies file for hepvine_hep.
# This may be replaced when dependencies are built.
