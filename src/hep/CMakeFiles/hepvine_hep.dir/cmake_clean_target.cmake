file(REMOVE_RECURSE
  "libhepvine_hep.a"
)
