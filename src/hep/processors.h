// Analysis processors: the user-defined physics functions of the two
// applications the paper reshapes.
//
//  * DV3 searches for Higgs decays to heavy-flavor jet pairs: select
//    b-tagged jets, reconstruct dijet invariant masses, histogram the
//    resonance region plus event-level quantities (MET).
//  * RS-TriPhoton searches for a heavy resonance X -> gamma Y, Y -> gamma
//    gamma: select events with three energetic isolated photons and
//    histogram the tri-photon invariant mass.
//
// These run real math over the synthetic columnar events; schedulers treat
// them as opaque functions.
#pragma once

#include "hep/events.h"
#include "hep/histogram.h"

namespace hepvine::hep {

/// Invariant mass of two massless particles from (pt, eta, phi).
[[nodiscard]] double dijet_mass(float pt1, float eta1, float phi1, float pt2,
                                float eta2, float phi2);

/// DV3 processor: one chunk in, partial histograms out. Alongside the
/// physics histograms it fills a "cutflow" — per-selection-stage event
/// counts (standard HEP bookkeeping, and mergeable like any histogram).
[[nodiscard]] HistogramSet dv3_process(const EventChunk& chunk);

/// DV3 cutflow stages (bin index -> label).
namespace dv3_cuts {
inline constexpr std::uint32_t kAll = 0;
inline constexpr std::uint32_t kMet25 = 1;
inline constexpr std::uint32_t kTwoBJets = 2;
inline constexpr std::uint32_t kHiggsWindow = 3;
inline constexpr std::uint32_t kStages = 4;
[[nodiscard]] const char* label(std::uint32_t stage);
}  // namespace dv3_cuts

/// RS-TriPhoton processor.
[[nodiscard]] HistogramSet triphoton_process(const EventChunk& chunk);

/// Binning constants shared by processors and tests.
namespace binning {
inline constexpr std::uint32_t kMetBins = 100;
inline constexpr double kMetLo = 0.0;
inline constexpr double kMetHi = 200.0;
inline constexpr std::uint32_t kDijetBins = 125;
inline constexpr double kDijetLo = 0.0;
inline constexpr double kDijetHi = 250.0;
inline constexpr std::uint32_t kTriphotonBins = 160;
inline constexpr double kTriphotonLo = 0.0;
inline constexpr double kTriphotonHi = 1600.0;
}  // namespace binning

}  // namespace hepvine::hep
