#include "hep/events.h"

#include <cmath>

#include "sim/rng.h"

namespace hepvine::hep {

namespace {

constexpr double kTwoPi = 6.283185307179586;

/// Falling-exponential pT spectrum with a floor, truncated to float for
/// platform-stable content.
float sample_pt(sim::Rng& rng, double floor_gev, double slope_gev) {
  return static_cast<float>(floor_gev + rng.exponential(slope_gev));
}

void push_particle(ParticleColumns& cols, float pt, float eta, float phi,
                   float mass, float quality) {
  cols.pt.push_back(pt);
  cols.eta.push_back(eta);
  cols.phi.push_back(phi);
  cols.mass.push_back(mass);
  cols.quality.push_back(quality);
}

}  // namespace

EventChunk generate_chunk(std::uint64_t seed, std::size_t events) {
  EventChunk chunk;
  chunk.seed = seed;
  chunk.events = events;
  chunk.met_pt.reserve(events);
  chunk.jets.event_offsets.reserve(events + 1);
  chunk.photons.event_offsets.reserve(events + 1);

  sim::Rng rng(seed);
  for (std::size_t e = 0; e < events; ++e) {
    chunk.jets.event_offsets.push_back(
        static_cast<std::uint32_t>(chunk.jets.count()));
    chunk.photons.event_offsets.push_back(
        static_cast<std::uint32_t>(chunk.photons.count()));

    chunk.met_pt.push_back(sample_pt(rng, 0.0, 35.0));

    // QCD background jets.
    const auto njets = static_cast<std::size_t>(rng.uniform_int(2, 6));
    for (std::size_t j = 0; j < njets; ++j) {
      push_particle(chunk.jets, sample_pt(rng, 20.0, 45.0),
                    static_cast<float>(rng.uniform(-2.5, 2.5)),
                    static_cast<float>(rng.uniform(0.0, kTwoPi)),
                    static_cast<float>(rng.uniform(5.0, 30.0)),
                    static_cast<float>(rng.uniform(0.0, 1.0)));
    }

    // ~3% of events carry a Higgs-like H->bb dijet: two b-tagged jets whose
    // pair mass reconstructs near 125 GeV.
    if (rng.bernoulli(0.03)) {
      const double m_h = rng.normal(125.0, 8.0);
      const double half = m_h / 2.0;
      const double pt1 = half + rng.exponential(20.0);
      const double pt2 = half + rng.exponential(20.0);
      push_particle(chunk.jets, static_cast<float>(pt1),
                    static_cast<float>(rng.uniform(-2.0, 2.0)),
                    static_cast<float>(rng.uniform(0.0, kTwoPi)),
                    static_cast<float>(half),
                    static_cast<float>(rng.uniform(0.85, 1.0)));
      push_particle(chunk.jets, static_cast<float>(pt2),
                    static_cast<float>(rng.uniform(-2.0, 2.0)),
                    static_cast<float>(rng.uniform(0.0, kTwoPi)),
                    static_cast<float>(half),
                    static_cast<float>(rng.uniform(0.85, 1.0)));
    }

    // Prompt photons: usually zero or one; 0.5% of events carry the
    // RS-TriPhoton cascade (X -> gamma + Y, Y -> gamma gamma): three
    // energetic isolated photons with a combined mass near 800 GeV.
    if (rng.bernoulli(0.005)) {
      const double m_x = rng.normal(800.0, 25.0);
      for (int g = 0; g < 3; ++g) {
        push_particle(chunk.photons, static_cast<float>(m_x / 3.0 +
                                                        rng.exponential(15.0)),
                      static_cast<float>(rng.uniform(-1.4, 1.4)),
                      static_cast<float>(rng.uniform(0.0, kTwoPi)), 0.0f,
                      static_cast<float>(rng.uniform(0.9, 1.0)));
      }
    } else {
      const auto nphotons = static_cast<std::size_t>(rng.uniform_int(0, 2));
      for (std::size_t g = 0; g < nphotons; ++g) {
        push_particle(chunk.photons, sample_pt(rng, 15.0, 25.0),
                      static_cast<float>(rng.uniform(-2.5, 2.5)),
                      static_cast<float>(rng.uniform(0.0, kTwoPi)), 0.0f,
                      static_cast<float>(rng.uniform(0.0, 1.0)));
      }
    }
  }
  chunk.jets.event_offsets.push_back(
      static_cast<std::uint32_t>(chunk.jets.count()));
  chunk.photons.event_offsets.push_back(
      static_cast<std::uint32_t>(chunk.photons.count()));
  return chunk;
}

}  // namespace hepvine::hep
