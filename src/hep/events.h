// Synthetic NanoEvents-style columnar event data.
//
// The paper's datasets are CMS ROOT files we cannot ship; instead every
// chunk's content is generated deterministically from its seed (derived
// from dataset name + file + chunk indices), so any re-execution — on any
// worker, after any failure — reproduces identical physics. Layout is
// columnar (structure-of-arrays), mirroring how uproot presents ROOT
// branches to Coffea.
#pragma once

#include <cstdint>
#include <vector>

#include "dag/value.h"
#include "util/hash.h"

namespace hepvine::hep {

/// Columns for one particle collection, flattened across events;
/// `event_offsets[i]..event_offsets[i+1]` indexes event i's particles.
struct ParticleColumns {
  std::vector<std::uint32_t> event_offsets;  // size = events + 1
  std::vector<float> pt;
  std::vector<float> eta;
  std::vector<float> phi;
  std::vector<float> mass;
  std::vector<float> quality;  // b-tag score for jets, isolation for photons

  [[nodiscard]] std::size_t count() const noexcept { return pt.size(); }
  [[nodiscard]] std::uint32_t begin_of(std::size_t event) const {
    return event_offsets[event];
  }
  [[nodiscard]] std::uint32_t end_of(std::size_t event) const {
    return event_offsets[event + 1];
  }
};

/// One chunk of events: MET plus jet and photon collections.
struct EventChunk {
  std::uint64_t seed = 0;
  std::size_t events = 0;
  std::vector<float> met_pt;
  ParticleColumns jets;
  ParticleColumns photons;
};

/// Deterministically generate `events` collision events from `seed`.
/// Kinematics are simplified but structured: jets follow falling pT
/// spectra; a fraction of events carry a Higgs-like dijet resonance at
/// ~125 GeV; a rarer fraction carry a tri-photon cascade resonance.
[[nodiscard]] EventChunk generate_chunk(std::uint64_t seed,
                                        std::size_t events);

/// dag::Value wrapper for a chunk (used when chunks flow between tasks).
class EventChunkValue final : public dag::Value {
 public:
  EventChunkValue(EventChunk chunk, std::uint64_t modeled_bytes)
      : chunk_(std::move(chunk)), modeled_bytes_(modeled_bytes) {}

  [[nodiscard]] const EventChunk& chunk() const noexcept { return chunk_; }
  [[nodiscard]] std::uint64_t byte_size() const override {
    return modeled_bytes_;
  }
  [[nodiscard]] util::Digest128 digest() const override {
    return util::Hasher(0xc4c)
        .update_u64(chunk_.seed)
        .update_u64(chunk_.events)
        .digest();
  }

 private:
  EventChunk chunk_;
  std::uint64_t modeled_bytes_;
};

}  // namespace hepvine::hep
