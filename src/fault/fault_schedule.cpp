#include "fault/fault_schedule.h"

#include <algorithm>
#include <cmath>

namespace hepvine::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kWorkerCrash:
      return "WORKER_CRASH";
    case FaultKind::kCacheLoss:
      return "CACHE_LOSS";
    case FaultKind::kTransferKill:
      return "TRANSFER_KILL";
    case FaultKind::kFsDegrade:
      return "FS_DEGRADE";
    case FaultKind::kStraggler:
      return "STRAGGLER";
    case FaultKind::kManagerCrash:
      return "MANAGER_CRASH";
  }
  return "UNKNOWN";
}

Tick RetryPolicy::backoff(std::uint32_t retry) const {
  if (retry <= 1) return std::min(backoff_base, backoff_cap);
  // Work in doubles so deep retry counts can't overflow Tick arithmetic.
  const double raw = static_cast<double>(backoff_base) *
                     std::pow(backoff_multiplier, retry - 1);
  const double capped = std::min(raw, static_cast<double>(backoff_cap));
  return static_cast<Tick>(capped);
}

FaultSchedule& FaultSchedule::crash_worker(Tick at, std::int32_t worker) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kWorkerCrash;
  ev.worker = worker;
  events.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::lose_cached_file(Tick at, std::int32_t worker,
                                               std::int64_t file) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kCacheLoss;
  ev.worker = worker;
  ev.file = file;
  events.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::kill_transfers(Tick at, std::uint32_t count) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kTransferKill;
  ev.count = count;
  events.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::fs_brownout(Tick at, Tick duration,
                                          double fraction) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kFsDegrade;
  ev.factor = fraction;
  ev.duration = duration;
  events.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::fs_outage(Tick at, Tick duration) {
  return fs_brownout(at, duration, 0.0);
}

FaultSchedule& FaultSchedule::straggler(Tick at, std::int32_t worker,
                                        double slowdown, Tick duration) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kStraggler;
  ev.worker = worker;
  ev.factor = slowdown;
  ev.duration = duration;
  events.push_back(ev);
  return *this;
}

FaultSchedule& FaultSchedule::crash_manager(Tick at) {
  FaultEvent ev;
  ev.at = at;
  ev.kind = FaultKind::kManagerCrash;
  events.push_back(ev);
  return *this;
}

}  // namespace hepvine::fault
