file(REMOVE_RECURSE
  "CMakeFiles/hepvine_fault.dir/fault_injector.cpp.o"
  "CMakeFiles/hepvine_fault.dir/fault_injector.cpp.o.d"
  "CMakeFiles/hepvine_fault.dir/fault_schedule.cpp.o"
  "CMakeFiles/hepvine_fault.dir/fault_schedule.cpp.o.d"
  "libhepvine_fault.a"
  "libhepvine_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
