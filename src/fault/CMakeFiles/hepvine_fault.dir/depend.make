# Empty dependencies file for hepvine_fault.
# This may be replaced when dependencies are built.
