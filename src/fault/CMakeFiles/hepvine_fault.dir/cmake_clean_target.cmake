file(REMOVE_RECURSE
  "libhepvine_fault.a"
)
