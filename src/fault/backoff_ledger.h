// BackoffLedger: per-key retry-escalation counters that reset on success.
//
// Every backoff site (manager-fs reads, manager relays, sink gathers,
// staging fetches) escalates its delay with the number of *consecutive*
// failures of one logical operation — kill, wait backoff(1), kill again,
// wait backoff(2), ... Success must clear the counter: a later, independent
// failure of the same file or task is a fresh episode and starts back at
// backoff(1). The raw `std::map<Key, uint32_t>` counters this replaces
// were incremented forever, so unrelated failures months of simulated time
// apart kept inheriting earlier episodes' escalation.
//
// Header-only and deterministic: std::map keeps iteration (and therefore
// snapshot serialization, ha/snapshot.h) in key order.
#pragma once

#include <cstdint>
#include <map>

namespace hepvine::fault {

template <typename Key>
class BackoffLedger {
 public:
  /// Record one more failure of `key` and return its attempt number
  /// (1-based) for RetryPolicy::backoff / FaultInjector::backoff_delay.
  std::uint32_t next_attempt(const Key& key) { return ++counts_[key]; }

  /// The operation succeeded: the episode is over, escalation starts fresh.
  void reset(const Key& key) { counts_.erase(key); }

  /// Failures recorded for `key` in the current episode (0 = none).
  [[nodiscard]] std::uint32_t attempts(const Key& key) const {
    const auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  [[nodiscard]] bool empty() const { return counts_.empty(); }
  [[nodiscard]] std::size_t size() const { return counts_.size(); }

  /// Visit every open episode in key order (snapshot serialization).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [key, attempts] : counts_) fn(key, attempts);
  }

 private:
  std::map<Key, std::uint32_t> counts_;
};

}  // namespace hepvine::fault
