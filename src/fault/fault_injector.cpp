#include "fault/fault_injector.h"

#include <cinttypes>
#include <cstdio>
#include <utility>
#include <vector>

namespace hepvine::fault {

FaultInjector::FaultInjector(cluster::Cluster& cluster,
                             const FaultSchedule& schedule,
                             const RetryPolicy& retry,
                             obs::RunObservation* observation)
    : cluster_(cluster),
      schedule_(schedule),
      retry_(retry),
      obs_(observation),
      rng_(schedule.seed, "fault") {}

void FaultInjector::txn(const char* kind, const std::string& detail) {
  const std::uint64_t seq = seq_++;
  if (obs_ != nullptr && obs_->txn_enabled()) {
    obs_->txn().fault_injected(cluster_.engine().now(), seq, kind, detail);
  }
}

void FaultInjector::arm(Hooks hooks) {
  hooks_ = std::move(hooks);
  cluster_.network().set_fail_listener(
      [this](net::FlowId id) { on_flow_failed(id); });
  auto& engine = cluster_.engine();
  for (const FaultEvent& ev : schedule_.events) {
    engine.schedule_at(ev.at, [this, ev] { fire(ev); });
  }
  if (schedule_.stochastic.worker_crash_rate_per_hour > 0) {
    const auto n = static_cast<std::int32_t>(cluster_.worker_count());
    for (std::int32_t w = 0; w < n; ++w) arm_crash_generator(w);
  }
}

void FaultInjector::fire(const FaultEvent& ev) {
  if (stopped_) return;
  char buf[160];
  switch (ev.kind) {
    case FaultKind::kWorkerCrash: {
      if (hooks_.crash_worker && hooks_.crash_worker(ev.worker)) {
        stats_.worker_crashes += 1;
        stats_.faults_injected += 1;
        std::snprintf(buf, sizeof(buf), "worker=%d", ev.worker);
        txn(to_string(ev.kind), buf);
      }
      break;
    }
    case FaultKind::kCacheLoss: {
      const std::size_t lost =
          hooks_.lose_cached_file
              ? hooks_.lose_cached_file(ev.worker, ev.file)
              : 0;
      if (lost > 0) {
        stats_.cache_losses += lost;
        stats_.faults_injected += 1;
        std::snprintf(buf, sizeof(buf),
                      "worker=%d file=%" PRId64 " replicas=%zu", ev.worker,
                      ev.file, lost);
        txn(to_string(ev.kind), buf);
      } else if (hooks_.lose_cached_file) {
        // The scheduler's own lifecycle (GC/eviction) beat the fault to
        // every replica; record the blank so schedules stay auditable.
        stats_.cache_loss_noops += 1;
      }
      break;
    }
    case FaultKind::kTransferKill:
      kill_registered_transfers(ev.count);
      break;
    case FaultKind::kFsDegrade:
      begin_fs_window(ev.factor, ev.duration);
      break;
    case FaultKind::kStraggler:
      begin_straggle_window(ev.worker, ev.factor, ev.duration);
      break;
    case FaultKind::kManagerCrash: {
      if (hooks_.crash_manager && hooks_.crash_manager()) {
        stats_.manager_crashes += 1;
        stats_.faults_injected += 1;
        txn(to_string(ev.kind), "manager=0");
      }
      break;
    }
  }
}

void FaultInjector::kill_registered_transfers(std::uint32_t count) {
  // Snapshot the victims first: fail_flow re-enters on_flow_failed, which
  // erases from killable_ while we would be iterating it.
  std::vector<net::FlowId> victims;
  victims.reserve(count);
  for (const auto& [id, cb] : killable_) {
    if (victims.size() >= count) break;
    // Skip ids whose flow already finished or was cancelled: killing a
    // dead flow is a no-op in the network, and the fault must land on a
    // live transfer to count.
    if (cluster_.network().flow_active(id)) victims.push_back(id);
  }
  for (net::FlowId id : victims) cluster_.network().fail_flow(id);
}

void FaultInjector::on_flow_failed(net::FlowId id) {
  auto it = killable_.find(id);
  if (it == killable_.end()) return;
  auto on_killed = std::move(it->second);
  killable_.erase(it);
  stats_.transfers_killed += 1;
  stats_.faults_injected += 1;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "flow=%" PRId64, id);
  txn("TRANSFER_KILL", buf);
  if (on_killed) on_killed();
}

void FaultInjector::begin_fs_window(double factor, Tick duration) {
  cluster_.fs().set_bandwidth_scale(factor);
  stats_.fs_degradations += 1;
  stats_.faults_injected += 1;
  stats_.fs_degraded_time += duration;
  char buf[96];
  std::snprintf(buf, sizeof(buf), "factor=%g duration_us=%" PRId64, factor,
                duration);
  txn("FS_DEGRADE", buf);
  cluster_.engine().schedule_after(duration, [this] {
    cluster_.fs().set_bandwidth_scale(1.0);
    txn("FS_RESTORE", "factor=1");
  });
}

void FaultInjector::begin_straggle_window(std::int32_t worker, double factor,
                                          Tick duration) {
  auto& node = cluster_.worker(worker);
  node.speed_scale = factor > 0 ? 1.0 / factor : 1.0;
  stats_.stragglers += 1;
  stats_.faults_injected += 1;
  char buf[112];
  std::snprintf(buf, sizeof(buf),
                "worker=%d slowdown=%g duration_us=%" PRId64, worker, factor,
                duration);
  txn("STRAGGLER", buf);
  cluster_.engine().schedule_after(duration, [this, worker] {
    cluster_.worker(worker).speed_scale = 1.0;
    char end[48];
    std::snprintf(end, sizeof(end), "worker=%d", worker);
    txn("STRAGGLER_END", end);
  });
}

void FaultInjector::arm_crash_generator(std::int32_t worker) {
  const double rate = schedule_.stochastic.worker_crash_rate_per_hour;
  const Tick wait = util::seconds(rng_.exponential(3600.0 / rate));
  cluster_.engine().schedule_after(wait, [this, worker] {
    if (stopped_) return;
    if (hooks_.crash_worker && hooks_.crash_worker(worker)) {
      stats_.worker_crashes += 1;
      stats_.faults_injected += 1;
      char buf[48];
      std::snprintf(buf, sizeof(buf), "worker=%d", worker);
      txn("WORKER_CRASH", buf);
    }
    arm_crash_generator(worker);
  });
}

void FaultInjector::offer_transfer(net::FlowId id, std::uint64_t bytes,
                                   std::function<void()> on_killed) {
  if (stopped_) return;
  killable_[id] = std::move(on_killed);
  const double p = schedule_.stochastic.transfer_kill_prob;
  if (p > 0 && rng_.bernoulli(p) && bytes > 0) {
    const std::uint64_t offset = 1 + rng_.uniform_below(bytes);
    cluster_.network().arm_flow_fault(id, offset);
  }
}

void FaultInjector::forget_transfer(net::FlowId id) { killable_.erase(id); }

Tick FaultInjector::backoff_delay(std::uint32_t attempt) {
  const Tick delay = retry_.backoff(attempt);
  stats_.transfer_retries += 1;
  stats_.backoff_wait += delay;
  return delay;
}

void FaultInjector::record_giveup(const std::string& detail) {
  stats_.transfer_giveups += 1;
  txn("TRANSFER_GIVEUP", detail);
}

}  // namespace hepvine::fault
