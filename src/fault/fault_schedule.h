// FaultSchedule: a deterministic, scriptable description of the failures a
// run must survive — the adversarial counterpart of ClusterSpec.
//
// The paper's results hinge on recovery: ~1% of opportunistic workers are
// preempted per run, transfers break, caches are lost, and the shared
// filesystem has bad days. The batch system already models *stochastic*
// preemption; this module makes failure a first-class input so tests and
// benches can place a specific fault at a specific simulated tick (or draw
// faults from seeded generators) and assert exact recovery behaviour.
//
// A schedule is data only — no engine or cluster dependencies — so it can
// ride inside exec::RunOptions without dependency cycles. FaultInjector
// (fault_injector.h) turns it into scheduled events against a live run.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace hepvine::fault {

using util::Tick;

enum class FaultKind : std::uint8_t {
  kWorkerCrash,   // kill a worker outright (distinct from batch preemption)
  kCacheLoss,     // drop one cached file from a worker (or all holders)
  kTransferKill,  // kill up to `count` registered in-flight transfers
  kFsDegrade,     // scale shared-FS bandwidth to `factor` for `duration`
  kStraggler,     // slow a worker's compute by `factor` for `duration`
  kManagerCrash,  // tear the manager down mid-campaign (HA recovery path)
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault. Which fields matter depends on `kind`; builder
/// helpers on FaultSchedule fill them consistently.
struct FaultEvent {
  Tick at = 0;
  FaultKind kind = FaultKind::kWorkerCrash;
  std::int32_t worker = -1;  // crash/straggler target; kCacheLoss: -1 = all
                             // holders of `file`
  std::int64_t file = -1;    // kCacheLoss target file
  std::uint32_t count = 1;   // kTransferKill: transfers to kill
  double factor = 1.0;       // kFsDegrade bandwidth fraction (0 = outage);
                             // kStraggler slowdown multiplier (> 1 = slower)
  Tick duration = 0;         // kFsDegrade / kStraggler window length
};

/// Seeded stochastic generators, expanded deterministically at run time
/// from the schedule seed (never from wall clock).
struct StochasticFaults {
  /// Probability that each registered transfer is armed to die mid-stream,
  /// at a uniformly drawn byte offset.
  double transfer_kill_prob = 0.0;
  /// Per-worker crash rate (events/hour, Poisson) on top of — and distinct
  /// from — the batch system's preemption rate.
  double worker_crash_rate_per_hour = 0.0;

  [[nodiscard]] bool empty() const {
    return transfer_kill_prob <= 0.0 && worker_crash_rate_per_hour <= 0.0;
  }
};

/// How a scheduler recovers from injected transfer kills and repeated
/// lineage loss. Always consulted (defaults apply even with no faults), so
/// organic failure loops hit the same poisoned-task detector.
struct RetryPolicy {
  /// Kill budget for one logical transfer: the Nth kill (N = this value)
  /// exhausts it, so N-1 backoff re-fetches are attempted before the
  /// consumer gives up (TRANSFER_GIVEUP in the txn log) and the normal
  /// lost-input path (attempt abort + lineage reset) takes over. 0 means
  /// give up on the first kill with no re-fetch.
  std::uint32_t max_transfer_retries = 6;
  /// Capped exponential backoff before each re-fetch.
  Tick backoff_base = 100 * util::kMsec;
  double backoff_multiplier = 2.0;
  Tick backoff_cap = 5 * util::kSec;
  /// Lineage resets of a single task before the run fails with a precise
  /// "poisoned task" reason instead of looping forever.
  std::uint32_t poisoned_reset_threshold = 64;

  /// Backoff before retry number `retry` (1-based): base * mult^(retry-1),
  /// capped.
  [[nodiscard]] Tick backoff(std::uint32_t retry) const;
};

struct FaultSchedule {
  std::vector<FaultEvent> events;
  StochasticFaults stochastic;
  /// Seed for the stochastic generators, mixed with a "fault" component tag
  /// so enabling faults never perturbs any other component's randomness.
  std::uint64_t seed = 7;

  [[nodiscard]] bool empty() const {
    return events.empty() && stochastic.empty();
  }

  // --- builder helpers (chainable) ---------------------------------------
  FaultSchedule& crash_worker(Tick at, std::int32_t worker);
  FaultSchedule& lose_cached_file(Tick at, std::int32_t worker,
                                  std::int64_t file);
  FaultSchedule& kill_transfers(Tick at, std::uint32_t count = 1);
  FaultSchedule& fs_brownout(Tick at, Tick duration, double fraction);
  FaultSchedule& fs_outage(Tick at, Tick duration);
  FaultSchedule& straggler(Tick at, std::int32_t worker, double slowdown,
                           Tick duration);
  FaultSchedule& crash_manager(Tick at);
};

/// What the injector actually did, copied into RunReport at the end of the
/// run. "Landed" means the fault had a live target (a crash of an already
/// dead worker, or a cache loss of an absent file, does not count).
// vine-snapshot: state
struct InjectionStats {
  std::uint64_t faults_injected = 0;  // events that landed, total
  std::uint64_t worker_crashes = 0;
  std::uint64_t cache_losses = 0;     // replicas dropped
  /// Cache-loss events that found nothing to destroy: every replica of the
  /// target file was already evicted or garbage-collected by the
  /// scheduler's own disk lifecycle. Not counted as injected faults —
  /// evicting a file is a scheduler decision, losing one is a fault.
  std::uint64_t cache_loss_noops = 0;
  std::uint64_t transfers_killed = 0;
  std::uint64_t fs_degradations = 0;
  std::uint64_t stragglers = 0;
  std::uint64_t manager_crashes = 0;
  // Recovery-time breakdown:
  std::uint64_t transfer_retries = 0;  // backoff re-fetches taken
  /// Transfers whose kill budget was exhausted: the consumer stopped
  /// re-fetching and fell through to the lost-input path.
  std::uint64_t transfer_giveups = 0;
  Tick backoff_wait = 0;               // total delay injected by backoff
  Tick fs_degraded_time = 0;           // cumulative degraded-window span
};

}  // namespace hepvine::fault
