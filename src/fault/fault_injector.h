// FaultInjector: executes a FaultSchedule against a live run.
//
// Built once per run (only when the schedule is non-empty — an empty
// schedule must cost nothing and leave the transactions log byte-identical,
// matching the observability convention). The injector schedules every
// explicit event on the simulation engine, expands the stochastic
// generators from its own component-tagged Rng, and reaches the run through
// three channels:
//
//  * scheduler hooks — worker crashes and cache loss go through the
//    scheduler so it can run its normal recovery (incarnation bump, replica
//    drop, lineage reset) and attribute the death as a crash rather than a
//    batch preemption;
//  * the transfer registry — schedulers register retryable in-flight
//    transfers (`offer_transfer`); only registered flows are eligible for
//    injected kills, because killing an unregistered fire-and-forget flow
//    (library push, import read) would strand its waiters with no retry
//    path. On a kill the scheduler's `on_killed` closure arranges the
//    capped-exponential-backoff retry;
//  * direct physics — shared-FS brownouts/outages scale the filesystem's
//    aggregate link, stragglers scale a worker's effective compute speed.
//
// Every fault that lands is recorded in InjectionStats (copied into
// RunReport) and, when observability is on, as a `FAULT` line in the
// transactions log.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "cluster/cluster.h"
#include "fault/fault_schedule.h"
#include "net/network.h"
#include "obs/observer.h"
#include "sim/rng.h"

namespace hepvine::fault {

class FaultInjector {
 public:
  struct Hooks {
    /// Kill a worker outright. Returns true if the worker was alive and the
    /// crash landed (dead targets don't count as injected faults).
    std::function<bool(std::int32_t worker)> crash_worker;
    /// Drop `file` from `worker`'s cache (worker -1 = every holder).
    /// Returns the number of replicas actually lost.
    std::function<std::size_t(std::int32_t worker, std::int64_t file)>
        lose_cached_file;
    /// Tear the manager itself down. The scheduler records its HA state
    /// (crash tick, snapshot series) and ends the run; ha::recover()
    /// rebuilds it from the latest snapshot + txn tail. Returns true if the
    /// run was still live (a crash after completion does not count).
    std::function<bool()> crash_manager;
  };

  /// `observation` may be null (or disabled); the injector then records
  /// stats only. The schedule is copied; the cluster must outlive the
  /// injector.
  FaultInjector(cluster::Cluster& cluster, const FaultSchedule& schedule,
                const RetryPolicy& retry, obs::RunObservation* observation);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Schedule every event and start the stochastic generators. Call once,
  /// after the hooks' targets exist. Installs the network fail listener.
  void arm(Hooks hooks);

  /// The run finished: later events become no-ops (the engine may still
  /// hold their callbacks, but they check this flag).
  void stop() { stopped_ = true; }

  // --- transfer registry --------------------------------------------------
  /// Declare a retryable in-flight transfer. May arm a stochastic
  /// mid-stream failure on it. `on_killed` runs after the flow has been
  /// removed from the network and must arrange the retry.
  void offer_transfer(net::FlowId id, std::uint64_t bytes,
                      std::function<void()> on_killed);

  /// The transfer ended by normal means — no longer a kill target.
  void forget_transfer(net::FlowId id);

  /// Backoff before retry number `attempt` (1-based); records the retry and
  /// the waited time in the recovery breakdown.
  [[nodiscard]] Tick backoff_delay(std::uint32_t attempt);

  /// A transfer's kill budget (RetryPolicy::max_transfer_retries) is
  /// exhausted: the consumer stops re-fetching and takes the lost-input
  /// path. Emits a `FAULT <seq> TRANSFER_GIVEUP <detail>` txn line so the
  /// budget semantics are auditable from the journal.
  void record_giveup(const std::string& detail);

  [[nodiscard]] const RetryPolicy& retry() const noexcept { return retry_; }
  [[nodiscard]] const InjectionStats& stats() const noexcept {
    return stats_;
  }

 private:
  void fire(const FaultEvent& ev);
  void kill_registered_transfers(std::uint32_t count);
  void begin_fs_window(double factor, Tick duration);
  void begin_straggle_window(std::int32_t worker, double factor,
                             Tick duration);
  void arm_crash_generator(std::int32_t worker);
  void on_flow_failed(net::FlowId id);
  void txn(const char* kind, const std::string& detail);

  cluster::Cluster& cluster_;
  FaultSchedule schedule_;
  RetryPolicy retry_;
  obs::RunObservation* obs_;
  sim::Rng rng_;
  Hooks hooks_;
  // Ordered by FlowId so timed kills pick victims deterministically.
  std::map<net::FlowId, std::function<void()>> killable_;
  InjectionStats stats_;
  std::uint64_t seq_ = 0;  // txn-line sequence number
  bool stopped_ = false;
};

}  // namespace hepvine::fault
