// Implementation of the manager-worker execution engine behind
// VineScheduler (and, via DataPolicy, the Work Queue baseline).
//
// Everything is event-driven: the manager reacts to worker arrivals,
// fetch completions, task completions, and failures; `pump()` greedily
// dispatches ready tasks whenever capacity may have appeared. All
// callbacks that land after asynchronous delays validate an attempt token
// (task id + attempt counter) or a worker incarnation before acting, which
// makes preemption/crash handling uniform: invalidate the token, requeue
// the task, and let stale events fall on the floor.

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "dag/task_graph.h"
#include "exec/serial_resource.h"
#include "fault/backoff_ledger.h"
#include "fault/fault_injector.h"
#include "ha/factory.h"
#include "ha/snapshot.h"
#include "net/flow_gate.h"
#include "exec/task_state.h"
#include "exec/time_model.h"
#include "objstore/object_store.h"
#include "obs/attribution.h"
#include "obs/observer.h"
#include "obs/span.h"
#include "sim/rng.h"
#include "util/flat_map.h"
#include "vine/replica_table.h"
#include "vine/vine_scheduler.h"

namespace hepvine::vine {

namespace {

using cluster::WorkerId;
using data::FileId;
using dag::TaskId;
using exec::TaskState;
using util::Tick;

// vine-snapshot: state
class VineRun {
 public:
  VineRun(const dag::TaskGraph& graph, cluster::Cluster& cluster,
          const exec::RunOptions& options, const DataPolicy& policy,
          const VineTunables& tunables, std::string name)
      : graph_(graph),
        cluster_(cluster),
        engine_(cluster.engine()),
        options_(options),
        policy_(policy),
        tun_(tunables),
        name_(std::move(name)),
        table_(graph, policy.depth_priority),
        rng_(options.seed, "vine-run"),
        manager_(cluster.engine()),
        workers_rt_(cluster.worker_count()),
        obs_(obs::make_observation(options.observability)),
        pending_crash_(cluster.worker_count(), false),
        pending_release_(cluster.worker_count(), false) {
    build_file_table();
    store_.reset(cluster.worker_count(), tunables.object_store_bytes);
    report_.scheduler = name_;
    report_.tasks_total = graph.size();
    report_.transfers = metrics::TransferMatrix(cluster.endpoint_count());
    report_.cache = metrics::CacheTrace(cluster.worker_count());
  }

  exec::RunReport execute() {
    const std::vector<TaskId> sinks = graph_.sinks();
    sinks_outstanding_ = sinks.size();
    for (TaskId sink : sinks) {
      is_sink_[static_cast<std::size_t>(sink)] = true;
    }

    begin_observation();
    begin_fault_injection();
    begin_profile();

    cluster_.network().set_warn_listener(
        [this](Tick t, net::FlowId f, const char* detail) {
          if (txn_on()) obs_->txn().net_warn(t, f, detail);
        });

    // With the elastic factory on, only min_workers slots start matching;
    // the factory starts parked slots as queue depth demands.
    const std::uint32_t initial_workers =
        options_.ha.factory.enabled()
            ? std::max(options_.ha.factory.min_workers, 1U)
            : 0xffffffffU;
    cluster_.request_workers([this](WorkerId w) { on_worker_up(w); },
                             [this](WorkerId w) { on_worker_down(w); },
                             initial_workers);
    begin_factory();

    engine_.schedule_at(options_.max_sim_time, [this] {
      if (!finished_) fail_run("exceeded max simulated time");
    });
    schedule_cache_sample();
    schedule_snapshot();

    while (!finished_ && engine_.step()) {
    }
    if (!finished_) {
      // Event queue drained without completing: nothing left can make
      // progress (e.g. no workers ever arrived).
      fail_run("event queue drained before workflow completion");
    }

    if (injector_) {
      injector_->stop();
      report_.faults = injector_->stats();
    }
    if (factory_) {
      factory_->stop();
      report_.ha.factory_grow_events = factory_->grow_events();
      report_.ha.factory_shrink_events = factory_->shrink_events();
      report_.ha.workers_started = factory_->workers_started();
      report_.ha.workers_released = factory_->workers_released();
    }
    report_.worker_preemptions = cluster_.batch().preemptions();
    report_.task_attempts = total_attempts_;
    report_.task_failures = report_.trace.failures();
    report_.lineage_resets = lineage_resets_;
    if (report_.makespan > 0) {
      report_.manager_busy_fraction_legacy =
          std::min(1.0, static_cast<double>(manager_.total_busy_time()) /
                            static_cast<double>(report_.makespan));
    }
    finish_profile();
    if (obs_->enabled()) {
      obs_->txn().manager_end(engine_.now());
      obs_->finalize(engine_.now());
      report_.observation = obs_;
    }
    return std::move(report_);
  }

 private:
  // ---------------------------------------------------------------------
  // File table: catalog files plus runtime files (environment, function
  // bodies) appended past the catalog's range.
  // ---------------------------------------------------------------------
  struct FileInfo {
    std::uint64_t size = 0;
    data::FileKind kind = data::FileKind::kIntermediate;
    TaskId producer = dag::kInvalidTask;  // for intermediates
  };

  void build_file_table() {
    const auto& catalog = graph_.catalog();
    files_.reserve(catalog.size() + 8);
    for (const auto& f : catalog) {
      files_.push_back(FileInfo{f.size, f.kind, dag::kInvalidTask});
    }
    for (const auto& task : graph_.tasks()) {
      files_[static_cast<std::size_t>(task.output_file)].producer = task.id;
    }

    if (!options_.env_from_shared_fs) {
      env_file_ = add_runtime_file(options_.python.environment_bytes,
                                   data::FileKind::kEnvironment);
    }
    if (policy_.cache_function_bodies) {
      for (const auto& task : graph_.tasks()) {
        auto [it, inserted] = function_bodies_.try_emplace(
            task.spec.function, data::kInvalidFile);
        if (inserted) {
          it->second = add_runtime_file(options_.python.function_body_bytes,
                                        data::FileKind::kFunctionBody);
        }
      }
    }

    replicas_ = std::make_unique<ReplicaTable>(files_.size(),
                                               cluster_.worker_count());
    // Runtime files and nothing else start at the manager.
    if (env_file_ != data::kInvalidFile) {
      replicas_->set_at_manager(env_file_);
    }
    for (const auto& [fn, file] : function_bodies_) {
      replicas_->set_at_manager(file);
    }
    is_sink_.assign(graph_.size(), false);
    reset_counts_.assign(graph_.size(), 0);
    attempts_.resize(graph_.size());
    sink_fetched_.assign(graph_.size(), 0);

    const std::size_t workers = cluster_.worker_count();
    eligible_bits_.assign((workers + 63) / 64, 0);
    dispatch_index_.reset(workers);
    loc_score_.assign(workers, 0);
    loc_epoch_.assign(workers, 0);
    index_dirty_flag_.assign(workers, 0);
    worker_fetches_.resize(workers);

    // Consumer reference counts, derived from the task graph: one count
    // per (task, file-it-reads) edge, covering both dependency outputs and
    // dataset inputs. Decremented as consuming tasks complete; a file at
    // zero has no pending reader and is garbage-collected cluster-wide.
    // Sink outputs and runtime files have no consuming edges, so their
    // count stays zero and is simply never decremented into a GC.
    consumers_left_.assign(files_.size(), 0);
    for (const auto& task : graph_.tasks()) {
      for (TaskId dep : task.spec.deps) {
        consumers_left_[static_cast<std::size_t>(
            graph_.task(dep).output_file)] += 1;
      }
      for (data::FileId f : task.spec.input_files) {
        consumers_left_[static_cast<std::size_t>(f)] += 1;
      }
    }
    // A lineage reset demotes done consumers back to waiting: they will
    // complete (and decrement) again, so their references come back.
    table_.set_undone_listener([this](TaskId t, Tick /*now*/) {
      for (TaskId dep : graph_.task(t).spec.deps) {
        consumers_left_[static_cast<std::size_t>(
            graph_.task(dep).output_file)] += 1;
      }
      for (data::FileId f : graph_.task(t).spec.input_files) {
        consumers_left_[static_cast<std::size_t>(f)] += 1;
      }
    });
  }

  FileId add_runtime_file(std::uint64_t size, data::FileKind kind) {
    const auto id = static_cast<FileId>(files_.size());
    files_.push_back(FileInfo{size, kind, dag::kInvalidTask});
    return id;
  }

  [[nodiscard]] const FileInfo& file(FileId id) const {
    return files_[static_cast<std::size_t>(id)];
  }

  // ---------------------------------------------------------------------
  // Attempt tokens.
  // ---------------------------------------------------------------------
  struct Token {
    TaskId task = dag::kInvalidTask;
    std::uint32_t attempt = 0;
  };

  [[nodiscard]] bool token_valid(const Token& token) const {
    const auto& st = table_.at(token.task);
    return st.attempts == token.attempt &&
           (st.state == TaskState::kDispatched ||
            st.state == TaskState::kRunning);
  }

  struct Attempt {
    std::uint32_t attempt = 0;
    std::uint32_t staging_outstanding = 0;
    std::vector<dag::ValuePtr> inputs;
    bool resources_released = false;
    Tick exec_finished_at = 0;  // when the worker-side process exited
    /// Lifecycle phase boundaries for the profiler (obs/span.h): when the
    /// attempt became dispatchable, left the manager, finished input
    /// staging, started its worker process, and began user compute.
    /// -1 until the attempt reaches the phase.
    Tick span_ready = -1;
    Tick span_dispatched = -1;
    Tick span_staged = -1;
    Tick span_exec = -1;
    Tick span_compute = -1;
    /// Disk bytes this attempt expects to add to its worker (missing
    /// inputs + output); reserved logically at dispatch so concurrent
    /// dispatches cannot over-commit a scratch disk.
    std::uint64_t disk_committed = 0;
    /// Files pinned on pin_worker for this attempt: every needed input at
    /// dispatch (staged or still staging), plus the output once produced.
    /// Released at attempt teardown; pin_incarnation guards against the
    /// worker having rebooted (the reboot wipes its pin set wholesale).
    std::vector<FileId> pinned;
    WorkerId pin_worker = cluster::kNoWorker;
    std::uint32_t pin_incarnation = 0;
    /// Object-store files this attempt holds by-reference handles on
    /// (subset of `pinned`); released with the pins. The handle keeps the
    /// object off the spill-victim list while the consumer runs.
    std::vector<FileId> store_refs;
  };

  /// Live attempt for `t`; the caller has already established one exists
  /// (token_valid or the task's state machine).
  [[nodiscard]] Attempt& attempt_at(TaskId t) {
    assert(attempts_[static_cast<std::size_t>(t)] && "no live attempt");
    return *attempts_[static_cast<std::size_t>(t)];
  }
  [[nodiscard]] Attempt* attempt_find(TaskId t) {
    return attempts_[static_cast<std::size_t>(t)].get();
  }
  void attempt_erase(TaskId t) {
    auto& slot = attempts_[static_cast<std::size_t>(t)];
    if (!slot) return;
    slot.reset();
    --attempts_live_;
  }

  // ---------------------------------------------------------------------
  // Per-worker runtime state (cache membership, library, transfer slots).
  // ---------------------------------------------------------------------
  enum class LibState : std::uint8_t { kNone, kInstalling, kReady };

  struct WorkerRt {
    std::vector<bool> in_cache;  // indexed by FileId
    LibState lib = LibState::kNone;
    std::uint64_t mem_in_use = 0;
    std::uint64_t disk_committed = 0;  // promised to in-flight attempts
    std::uint32_t active_out = 0;  // peer transfers sourced here
    std::vector<TaskId> here;      // tasks dispatched/running/returning
    std::vector<Token> waiting_for_lib;
    /// Pin counts per file: attempt inputs/outputs and transfer sources.
    /// A pinned file is unevictable and survives GC. Sorted-vector map:
    /// pin/unpin run on every dispatch, and snapshot serialization walks
    /// this in ascending file order either way.
    util::FlatMap<FileId, std::uint32_t> pins;
    /// Last-use tick per cached file — the LRU clock for pressure
    /// eviction. Insertion and pinning both count as uses.
    util::FlatMap<FileId, Tick> last_use;
    /// Bytes of unpinned cached dataset inputs: space eviction could mint
    /// without ever forcing a recompute (inputs re-fetch from the shared
    /// FS). Placement's disk-tight fallback counts this as headroom.
    std::uint64_t reclaimable_input_bytes = 0;
    /// Residue clock for serialization charges on this worker: repeated
    /// sub-tick argument pickles sum exactly instead of each rounding up.
    util::TickAccumulator ser;
  };

  [[nodiscard]] bool in_cache(WorkerId w, FileId f) const {
    const auto& cache = workers_rt_[static_cast<std::size_t>(w)].in_cache;
    return static_cast<std::size_t>(f) < cache.size() &&
           cache[static_cast<std::size_t>(f)];
  }

  void cache_insert(WorkerId w, FileId f) {
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    if (rt.in_cache.size() < files_.size()) rt.in_cache.resize(files_.size());
    const bool was_cached = rt.in_cache[static_cast<std::size_t>(f)];
    rt.in_cache[static_cast<std::size_t>(f)] = true;
    rt.last_use[f] = engine_.now();
    if (!was_cached && pin_count(w, f) == 0) reclaim_add(w, f);
    replicas_->add(f, w);
    if (txn_on()) {
      obs_->txn().cache_insert(engine_.now(), w, f, file(f).size);
    }
  }

  // ---------------------------------------------------------------------
  // Worker-disk lifecycle: pins, consumer-refcount GC, pressure eviction.
  // ---------------------------------------------------------------------
  [[nodiscard]] std::uint32_t pin_count(WorkerId w, FileId f) const {
    const auto& pins = workers_rt_[static_cast<std::size_t>(w)].pins;
    const auto it = pins.find(f);
    return it == pins.end() ? 0 : it->second;
  }

  void reclaim_add(WorkerId w, FileId f) {
    if (file(f).kind != data::FileKind::kDatasetInput) return;
    workers_rt_[static_cast<std::size_t>(w)].reclaimable_input_bytes +=
        file(f).size;
    index_touch(w);
  }
  void reclaim_sub(WorkerId w, FileId f) {
    if (file(f).kind != data::FileKind::kDatasetInput) return;
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    const std::uint64_t sz = file(f).size;
    rt.reclaimable_input_bytes =
        sz > rt.reclaimable_input_bytes ? 0 : rt.reclaimable_input_bytes - sz;
    index_touch(w);
  }

  /// Pin `f` on `w`: attempt inputs/outputs and transfer sources must not
  /// be evicted (or GC'd) from under their users. A pin is also a use for
  /// the LRU clock.
  void pin_file(WorkerId w, FileId f) {
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    if (rt.pins[f]++ == 0 && in_cache(w, f)) reclaim_sub(w, f);
    rt.last_use[f] = engine_.now();
  }

  /// Tolerant of a missing pin: a rebooted worker wiped its pin set, and
  /// callers with an incarnation guard may still race the wipe by design.
  void unpin_file(WorkerId w, FileId f) {
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    const auto it = rt.pins.find(f);
    if (it == rt.pins.end()) return;
    if (--it->second == 0) {
      rt.pins.erase(it);
      if (in_cache(w, f)) reclaim_add(w, f);
    }
  }

  /// Release every pin the attempt holds. Only the pinning incarnation
  /// unpins: after a reboot the worker's pin set was wiped wholesale, and
  /// decrementing a successor's identically-named pins would corrupt them.
  void unpin_attempt(Attempt& attempt) {
    if (attempt.pin_worker == cluster::kNoWorker) return;
    if (worker_current(attempt.pin_worker, attempt.pin_incarnation)) {
      for (FileId f : attempt.pinned) unpin_file(attempt.pin_worker, f);
      // release_ref tolerates objects that were force-spilled or wiped
      // while the consumer ran; the handle simply dies with the attempt.
      for (FileId f : attempt.store_refs) {
        store_.release_ref(attempt.pin_worker, f);
      }
    }
    attempt.pinned.clear();
    attempt.store_refs.clear();
    attempt.pin_worker = cluster::kNoWorker;
  }

  /// One consuming task of `f` completed. At zero pending consumers the
  /// file is dead: drop every worker replica (manager copies stay — they
  /// back sink results and relays and cost no worker disk).
  void release_consumer_ref(FileId f) {
    auto& left = consumers_left_[static_cast<std::size_t>(f)];
    assert(left > 0 && "consumer refcount underflow");
    if (left == 0) return;
    if (--left == 0) gc_file(f);
  }

  void gc_file(FileId f) {
    // An in-memory store object dies with its last consumer too. Running
    // consumers hold consumer refs, so at this point store refs are zero.
    const objstore::NodeId sh = store_.holder_of(f);
    if (sh != objstore::kNoHolder) drop_store_object(sh, f);
    for (WorkerId holder : replicas_->holders_sorted(f)) {
      if (pin_count(holder, f) > 0) continue;  // in use by a live transfer
      drop_worker_copy(holder, f, file(f).size, DropReason::kGc);
    }
  }

  // ---------------------------------------------------------------------
  // Node-local object store: zero-copy output exchange for colocated
  // FunctionCalls (see objstore/object_store.h and DESIGN.md §9).
  // ---------------------------------------------------------------------
  /// The store only makes sense in serverless mode with output retention:
  /// FunctionCalls sharing a LibraryTask node are what can exchange a
  /// pointer, and Work Queue semantics delete outputs anyway.
  [[nodiscard]] bool store_enabled() const {
    return tun_.object_store &&
           options_.mode == exec::ExecMode::kFunctionCalls &&
           policy_.retain_outputs_on_worker;
  }

  /// Should `t`'s output be published in-memory instead of written to
  /// scratch disk? Sink outputs always materialize: they are fetched back
  /// to the manager immediately and backing them with memory buys nothing.
  [[nodiscard]] bool store_output(TaskId t) const {
    return store_enabled() && !is_sink_[static_cast<std::size_t>(t)] &&
           file(graph_.task(t).output_file).kind ==
               data::FileKind::kIntermediate;
  }

  /// Is `f` usable on `w` without any staging — on its scratch disk or
  /// mapped in the node's object store?
  [[nodiscard]] bool file_resident(WorkerId w, FileId f) const {
    return in_cache(w, f) || store_.holds(w, f);
  }

  /// Does any copy of `f` exist — replica table, manager, or a live
  /// in-memory store object? Lineage decisions must see store objects or
  /// they would re-run producers whose output is sitting in memory.
  [[nodiscard]] bool output_available(FileId f) const {
    return replicas_->available(f) || store_.holder_of(f) != objstore::kNoHolder;
  }

  /// True when every dependency output of `t` is a live store object on
  /// `w`: the argument tuple is handed over by reference and nothing is
  /// pickled. Tasks reading dataset inputs still deserialize those.
  [[nodiscard]] bool inputs_by_reference(TaskId t, WorkerId w) const {
    const auto& spec = graph_.task(t).spec;
    if (spec.deps.empty() || !spec.input_files.empty()) return false;
    for (TaskId dep : spec.deps) {
      if (!store_.holds(w, graph_.task(dep).output_file)) return false;
    }
    return true;
  }

  /// Publish `f` into `w`'s store, then spill LRU unreferenced objects
  /// while over budget. Returns false when a spill's disk reservation
  /// crashed the worker (the store died with it); callers must re-validate
  /// their token.
  bool store_put_object(WorkerId w, FileId f) {
    const std::uint64_t bytes = file(f).size;
    store_.put(w, f, bytes, engine_.now());
    report_.store_puts += 1;
    report_.store_put_bytes += bytes;
    if (txn_on()) obs_->txn().store_put(engine_.now(), w, f, bytes);
    while (store_.over_capacity(w)) {
      const FileId victim = store_.spill_victim(w);
      if (victim == data::kInvalidFile) break;  // all referenced: tolerate
      if (!spill_object(w, victim)) return false;
    }
    return true;
  }

  /// Materialize a store object as an ordinary replica-table file on its
  /// holder's scratch disk (capacity pressure, or a remote consumer or
  /// sink fetch needs the bytes). The object leaves memory; the file then
  /// travels the existing peer/relay transfer paths and ages through the
  /// LRU like any other cached output. No write time is charged — the
  /// buffer drains to disk off the critical path, matching how fetch
  /// arrivals are charged. Returns false when the reservation crashed the
  /// worker.
  bool spill_object(WorkerId w, FileId f) {
    const std::uint64_t bytes = store_.object_bytes(w, f);
    if (!reserve_or_crash(w, bytes, "cache overflow spilling store object")) {
      return false;  // crash_worker already wiped w's store
    }
    store_.erase(w, f);
    store_.counters().spills += 1;
    store_.counters().spill_bytes += bytes;
    report_.store_spills += 1;
    report_.store_spill_bytes += bytes;
    if (txn_on()) obs_->txn().store_spill(engine_.now(), w, f, bytes);
    cache_insert(w, f);
    maybe_replicate(f);
    return true;
  }

  /// The object dies in memory without touching disk (GC, or holder loss
  /// handled by drop_node). Tolerant of a missing entry.
  void drop_store_object(WorkerId w, FileId f) {
    const std::uint64_t bytes = store_.object_bytes(w, f);
    if (!store_.erase(w, f)) return;
    store_.counters().drops += 1;
    report_.store_drops += 1;
    if (txn_on()) obs_->txn().store_drop(engine_.now(), w, f, bytes);
  }

  /// Reserve `bytes` of scratch on `w`, evicting under disk pressure when
  /// the policy allows. Returns false when the partition overflowed anyway
  /// (nothing evictable was enough): the worker is already crashing — the
  /// paper's Fig 11 pathology — and the caller must stop touching it.
  [[nodiscard]] bool reserve_or_crash(WorkerId w, std::uint64_t bytes,
                                      const char* why) {
    auto& node = cluster_.worker(w);
    if (policy_.evict_on_pressure && bytes > node.disk.available()) {
      evict_for_pressure(w, bytes - node.disk.available());
    }
    if (!node.disk.try_reserve(bytes)) {
      crash_worker(w, why);
      return false;
    }
    index_touch(w);
    return true;
  }

  /// Free at least `need` bytes on `w` by dropping unpinned cached files,
  /// in a deterministic order: files recoverable without recompute
  /// (dataset inputs, files with another replica or a manager copy) go
  /// first, then last-copy intermediates (a later consumer recovers those
  /// via lineage reset, backstopped by the poisoned-task detector). Within
  /// a tier, least-recently-used first, file id as the tiebreak. Pinned
  /// files, runtime files, and sink outputs not yet safe at the manager
  /// are never victims.
  void evict_for_pressure(WorkerId w, std::uint64_t need) {
    struct Victim {
      int tier = 0;
      Tick last_use = 0;
      FileId file = data::kInvalidFile;
    };
    const auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    std::vector<Victim> victims;
    for (FileId f : replicas_->files_on(w)) {
      if (pin_count(w, f) > 0) continue;
      const FileInfo& info = file(f);
      if (info.kind == data::FileKind::kEnvironment ||
          info.kind == data::FileKind::kFunctionBody) {
        continue;
      }
      if (info.producer != dag::kInvalidTask &&
          is_sink_[static_cast<std::size_t>(info.producer)] &&
          !replicas_->at_manager(f)) {
        continue;
      }
      const bool recoverable = info.kind == data::FileKind::kDatasetInput ||
                               replicas_->replica_count(f) > 1;
      const auto lu = rt.last_use.find(f);
      victims.push_back(Victim{recoverable ? 0 : 1,
                               lu == rt.last_use.end() ? 0 : lu->second, f});
    }
    std::sort(victims.begin(), victims.end(),
              [](const Victim& a, const Victim& b) {
                if (a.tier != b.tier) return a.tier < b.tier;
                if (a.last_use != b.last_use) return a.last_use < b.last_use;
                return a.file < b.file;
              });
    std::uint64_t freed = 0;
    for (const Victim& v : victims) {
      if (freed >= need) break;
      const std::uint64_t bytes = file(v.file).size;
      drop_worker_copy(w, v.file, bytes, DropReason::kEvict);
      freed += bytes;
    }
  }

  // ---------------------------------------------------------------------
  // Dispatch index: eligibility bitmap + incrementally maintained argmax
  // over disk headroom and capacity.
  //
  // `eligible_bits_` is the set of workers that are alive with a free
  // core (insert/erase O(1); the round-robin walk scans words in id order
  // from the cursor, visiting exactly what the old std::set walk did).
  // `dispatch_index_` is a segment tree over worker ids whose leaves hold
  // two keys — disk-tight fallback headroom (avail - committed, plus the
  // reclaimable-input credit when eviction is on) and raw disk capacity —
  // maximized up the tree with larger-key-then-smaller-id order, so
  // choose_worker reads the fallback ranking and the could-ever-fit bound
  // in O(1) instead of rescanning every worker. Leaves are re-derived by
  // index_touch(w) at every mutation of eligibility, disk reservations,
  // committed bytes, or reclaimable bytes; a key of 0 marks ineligible
  // (live zero headroom is stored as key 1). The differential suite pits
  // this path against the reference O(workers) scans byte-for-byte.
  // ---------------------------------------------------------------------
  class DispatchIndex {
   public:
    void reset(std::size_t workers) {
      leaves_ = 1;
      while (leaves_ < workers) leaves_ <<= 1;
      nodes_.assign(2 * leaves_, Node{});
    }

    /// Re-derive worker `w`'s leaf (keys of 0 mark ineligible) and fix up
    /// its root path. O(log workers).
    void update(WorkerId w, std::uint64_t free_key, std::uint64_t cap_key) {
      std::size_t i = leaves_ + static_cast<std::size_t>(w);
      // Most touches re-derive an unchanged leaf (pins and reservations
      // that cancel out, non-reclaimable files): skip the root fix-up.
      if (nodes_[i].free_key == free_key && nodes_[i].cap_key == cap_key) {
        return;
      }
      nodes_[i] = Node{free_key, cap_key, w, w};
      for (i >>= 1; i >= 1; i >>= 1) {
        nodes_[i] = merge(nodes_[2 * i], nodes_[2 * i + 1]);
      }
    }

    /// Eligible worker with the most fallback headroom (kNoWorker if none).
    [[nodiscard]] WorkerId top_free_worker() const {
      return nodes_[1].free_key == 0 ? cluster::kNoWorker : nodes_[1].free_w;
    }
    [[nodiscard]] std::uint64_t top_free_key() const {
      return nodes_[1].free_key;
    }
    /// Largest disk capacity over eligible workers (key+1 encoding).
    [[nodiscard]] std::uint64_t top_cap_key() const {
      return nodes_[1].cap_key;
    }

   private:
    struct Node {
      std::uint64_t free_key = 0;  // headroom + 1; 0 = ineligible
      std::uint64_t cap_key = 0;   // capacity + 1; 0 = ineligible
      WorkerId free_w = cluster::kNoWorker;
      WorkerId cap_w = cluster::kNoWorker;
    };
    [[nodiscard]] static Node merge(const Node& a, const Node& b) {
      Node out;
      // Larger key wins; ties go to the smaller worker id (a is the lower
      // id subtree), keeping the ranking deterministic.
      const bool free_b = b.free_key > a.free_key;
      out.free_key = free_b ? b.free_key : a.free_key;
      out.free_w = free_b ? b.free_w : a.free_w;
      const bool cap_b = b.cap_key > a.cap_key;
      out.cap_key = cap_b ? b.cap_key : a.cap_key;
      out.cap_w = cap_b ? b.cap_w : a.cap_w;
      return out;
    }
    std::size_t leaves_ = 1;
    std::vector<Node> nodes_{Node{}, Node{}};
  };

  [[nodiscard]] bool is_eligible(WorkerId w) const {
    return (eligible_bits_[static_cast<std::size_t>(w) >> 6] >>
            (static_cast<std::uint32_t>(w) & 63)) &
           1u;
  }

  void eligible_insert(WorkerId w) {
    auto& word = eligible_bits_[static_cast<std::size_t>(w) >> 6];
    const std::uint64_t bit = 1ull << (static_cast<std::uint32_t>(w) & 63);
    if ((word & bit) != 0) return;
    word |= bit;
    ++eligible_count_;
    index_touch(w);
  }

  void eligible_erase(WorkerId w) {
    auto& word = eligible_bits_[static_cast<std::size_t>(w) >> 6];
    const std::uint64_t bit = 1ull << (static_cast<std::uint32_t>(w) & 63);
    if ((word & bit) == 0) return;
    word &= ~bit;
    --eligible_count_;
    index_touch(w);
  }

  /// Fallback headroom for `w`: available scratch minus bytes promised to
  /// in-flight attempts, plus space held by unpinned cached dataset inputs
  /// when eviction can mint it back. Matches what disk_fits charges, so
  /// the ranking never crowns a worker whose free space is already spoken
  /// for.
  [[nodiscard]] std::uint64_t fallback_headroom(WorkerId w) const {
    const auto& node = cluster_.worker(w);
    const auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    const std::uint64_t avail = node.disk.available();
    const std::uint64_t committed = rt.disk_committed;
    std::uint64_t free = avail > committed ? avail - committed : 0;
    if (policy_.evict_on_pressure) free += rt.reclaimable_input_bytes;
    return free;
  }

  /// Mark `w`'s dispatch-index leaf stale. Called from every place
  /// eligibility, disk reservations, committed bytes, or reclaimable
  /// bytes change; the leaf is re-derived lazily by index_flush at the
  /// next indexed query, so bursts of touches between dispatches (pins,
  /// reservations, releases) cost one bit each, not a tree walk each.
  /// The reference path recomputes by scan and never reads the tree, so
  /// maintenance is skipped entirely there.
  void index_touch(WorkerId w) {
    if (!tun_.indexed_dispatch) return;
    auto& dirty = index_dirty_flag_[static_cast<std::size_t>(w)];
    if (dirty == 0) {
      dirty = 1;
      index_dirty_.push_back(w);
    }
  }

  /// Re-derive every stale leaf; the tree is current on return.
  void index_flush() {
    for (WorkerId w : index_dirty_) {
      index_dirty_flag_[static_cast<std::size_t>(w)] = 0;
      if (!is_eligible(w)) {
        dispatch_index_.update(w, 0, 0);
        continue;
      }
      dispatch_index_.update(w, fallback_headroom(w) + 1,
                             cluster_.worker(w).disk.capacity() + 1);
    }
    index_dirty_.clear();
  }

  /// Visit eligible workers in the circular id order the round-robin scan
  /// uses — ids >= start ascending, then wraparound — until `fn` returns
  /// true. Returns the worker it stopped on, or kNoWorker.
  template <typename Fn>
  [[nodiscard]] WorkerId walk_eligible(WorkerId start, Fn&& fn) const {
    const auto n = cluster_.worker_count();
    if (static_cast<std::size_t>(start) >= n) start = 0;
    const std::size_t words = eligible_bits_.size();
    // Segment [start, n).
    std::size_t wi = static_cast<std::size_t>(start) >> 6;
    std::uint64_t word =
        wi < words ? eligible_bits_[wi] &
                         (~0ull << (static_cast<std::uint32_t>(start) & 63))
                   : 0;
    for (; wi < words; word = (++wi < words) ? eligible_bits_[wi] : 0) {
      while (word != 0) {
        const auto w = static_cast<WorkerId>(
            (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(word)));
        if (fn(w)) return w;
        word &= word - 1;
      }
    }
    // Wraparound segment [0, start).
    for (wi = 0; wi <= (static_cast<std::size_t>(start) >> 6) && wi < words;
         ++wi) {
      std::uint64_t ww = eligible_bits_[wi];
      while (ww != 0) {
        const auto w = static_cast<WorkerId>(
            (wi << 6) + static_cast<std::size_t>(__builtin_ctzll(ww)));
        if (w >= start) break;
        if (fn(w)) return w;
        ww &= ww - 1;
      }
    }
    return cluster::kNoWorker;
  }

  // ---------------------------------------------------------------------
  // Fetches: one active fetch per (file, destination worker).
  // ---------------------------------------------------------------------
  using FetchKey = std::pair<FileId, WorkerId>;

  struct Fetch {
    FileId file = data::kInvalidFile;
    WorkerId dst = cluster::kNoWorker;
    WorkerId peer_src = cluster::kNoWorker;  // valid while a peer flow runs
    std::uint32_t peer_src_inc = 0;  // peer_src's incarnation at acquire
    net::FlowId flow = net::kInvalidFlow;
    bool throttled = false;
    std::uint32_t kill_retries = 0;  // injected kills survived so far
    // Transfer-matrix endpoint the running flow is sourced from, for txn
    // TRANSFER attribution (SIZE_MAX until a flow starts).
    std::size_t src_ep = static_cast<std::size_t>(-1);
    std::vector<std::function<void(bool)>> waiters;  // bool: file arrived
  };

  /// Active fetches, sharded by destination worker and keyed by file.
  /// Every lookup carries the full (file, dst) key, so the shard is O(1)
  /// to pick and each per-worker sorted vector stays a handful of entries
  /// (the files currently staging to that worker) — a Fetch is heavy
  /// (waiter callbacks), and a single flat global map paid an O(active
  /// fetches) move-and-destroy per insert/erase at 10k workers. Global
  /// iteration (worker teardown's peer-source scan, snapshots) walks
  /// shards in worker order, files ascending within, which is
  /// deterministic either way.
  std::vector<util::FlatMap<FileId, Fetch>> worker_fetches_;

  [[nodiscard]] Fetch* fetch_find(const FetchKey& key) {
    auto& shard = worker_fetches_[static_cast<std::size_t>(key.second)];
    auto it = shard.find(key.first);
    return it == shard.end() ? nullptr : &it->second;
  }
  /// Insert a fetch for `key`; returns null if one already exists.
  Fetch* fetch_emplace(const FetchKey& key, Fetch&& fetch) {
    auto& shard = worker_fetches_[static_cast<std::size_t>(key.second)];
    auto [it, inserted] = shard.emplace(key.first, std::move(fetch));
    return inserted ? &it->second : nullptr;
  }
  void fetch_erase(const FetchKey& key) {
    worker_fetches_[static_cast<std::size_t>(key.second)].erase(key.first);
  }

  std::deque<FetchKey> throttle_queue_;

  // ---------------------------------------------------------------------
  // Worker lifecycle.
  // ---------------------------------------------------------------------
  void on_worker_up(WorkerId w) {
    if (finished_) return;
    if (txn_on()) obs_->txn().worker_connection(engine_.now(), w);
    report_.profile.worker_up(engine_.now(), w);
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    rt = WorkerRt{};
    rt.in_cache.assign(files_.size(), false);
    // After the runtime reset: eligible_insert re-derives the worker's
    // dispatch-index leaf from the state it reads.
    eligible_insert(w);
    if (options_.mode == exec::ExecMode::kFunctionCalls) {
      install_library(w);
    }
    pump();
  }

  void on_worker_down(WorkerId w) {
    if (finished_) return;
    if (txn_on()) {
      const bool crashed = pending_crash_[static_cast<std::size_t>(w)];
      const bool released = pending_release_[static_cast<std::size_t>(w)];
      obs_->txn().worker_disconnection(
          engine_.now(), w,
          crashed ? "FAILURE" : released ? "RELEASED" : "PREEMPTED");
    }
    pending_crash_[static_cast<std::size_t>(w)] = false;
    pending_release_[static_cast<std::size_t>(w)] = false;
    report_.profile.worker_down(engine_.now(), w);
    eligible_erase(w);
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];

    // Fail every task attempt on this worker.
    const std::vector<TaskId> here = std::move(rt.here);
    rt.here.clear();
    for (TaskId t : here) {
      fail_attempt(t, /*requeue=*/true);
      if (finished_) return;
    }

    // Drop replicas and wipe the node's object store; lost intermediates
    // are rediscovered lazily at dispatch pre-check or fetch time
    // (lineage reset).
    replicas_->drop_worker(w);
    store_.drop_node(w);
    rt = WorkerRt{};
    report_.cache.mark_failure(static_cast<std::size_t>(w), engine_.now());

    // Cancel fetches touching this worker: everything staging to it (its
    // own shard) and, across the other shards, anything peer-sourced from
    // it. The cross-shard scan runs only on worker death.
    std::vector<FetchKey> to_dst;
    std::vector<FetchKey> from_src;
    for (const auto& [f, fetch] : worker_fetches_[static_cast<std::size_t>(w)]) {
      to_dst.push_back(FetchKey{f, w});
    }
    for (std::size_t dst = 0; dst < worker_fetches_.size(); ++dst) {
      if (dst == static_cast<std::size_t>(w)) continue;
      for (const auto& [f, fetch] : worker_fetches_[dst]) {
        if (fetch.peer_src == w) {
          from_src.push_back(FetchKey{f, static_cast<WorkerId>(dst)});
        }
      }
    }
    for (const FetchKey& key : to_dst) {
      Fetch* fetch = fetch_find(key);
      if (fetch == nullptr) continue;  // cascaded away already
      if (fetch->flow != net::kInvalidFlow) {
        forget_flow(fetch->flow);
        cluster_.network().cancel_flow(fetch->flow);
        if (fetch->src_ep != static_cast<std::size_t>(-1)) {
          txn_xfer_failed(fetch->src_ep, cluster_.worker_endpoint(w),
                          fetch->file, file(fetch->file).size);
        }
        if (fetch->peer_src != cluster::kNoWorker) {
          release_peer_slot(fetch->peer_src, fetch->peer_src_inc,
                            fetch->file);
        }
      }
      // If a peer broker request is still queued (flow not yet started),
      // the broker callback releases the slot when it finds the fetch gone.
      fetch_erase(key);  // waiters' tokens are already invalid
    }
    for (const FetchKey& key : from_src) {
      Fetch* fetch = fetch_find(key);
      if (fetch == nullptr) continue;
      forget_flow(fetch->flow);
      cluster_.network().cancel_flow(fetch->flow);
      txn_xfer_failed(cluster_.worker_endpoint(w),
                      cluster_.worker_endpoint(fetch->dst), fetch->file,
                      file(fetch->file).size);
      fetch->flow = net::kInvalidFlow;
      fetch->peer_src = cluster::kNoWorker;
      fetch->src_ep = static_cast<std::size_t>(-1);
      start_fetch_transfer(key);  // re-source from another replica
    }

    // Sink results mid-flight from this worker must be re-fetched (or the
    // sink recomputed if no replica survives).
    std::vector<TaskId> broken_sinks;
    for (const auto& [t, flow_src] : sink_flows_) {
      if (flow_src.second == w) broken_sinks.push_back(t);
    }
    for (TaskId t : broken_sinks) {
      forget_flow(sink_flows_.at(t).first);
      cluster_.network().cancel_flow(sink_flows_.at(t).first);
      txn_xfer_failed(cluster_.worker_endpoint(w),
                      cluster_.manager_endpoint(),
                      graph_.task(t).output_file,
                      file(graph_.task(t).output_file).size);
      sink_flows_.erase(t);
      fetch_sink_result(t);
    }

    pump();
  }

  /// A worker destroyed itself (scratch disk overflow) or was crashed by an
  /// injected fault. Routed through the batch system so replacement
  /// matching applies. A crash requested while one is already pending for
  /// the same worker is the same death — counting it again would double
  /// report_.worker_crashes for one disconnect.
  void crash_worker(WorkerId w, const char* /*reason*/) {
    if (!cluster_.worker(w).alive) return;
    if (pending_crash_[static_cast<std::size_t>(w)]) return;
    report_.worker_crashes += 1;
    pending_crash_[static_cast<std::size_t>(w)] = true;
    cluster_.batch().force_preempt(static_cast<std::uint32_t>(w));
  }

  // ---------------------------------------------------------------------
  // Fault injection. Only flows with a retry path are registered as kill
  // targets (fetches, relay pulls, output returns, sink gathers); library
  // pushes and import reads are fire-and-forget with no recovery closure,
  // so killing them would strand the run. With an empty schedule no
  // injector exists and every hook below is a null check.
  // ---------------------------------------------------------------------
  void begin_fault_injection() {
    if (options_.faults.empty()) return;
    injector_ = std::make_unique<fault::FaultInjector>(
        cluster_, options_.faults, options_.fault_retry, obs_.get());
    fault::FaultInjector::Hooks hooks;
    hooks.crash_worker = [this](std::int32_t w) {
      if (finished_ || !cluster_.worker(w).alive) return false;
      if (pending_crash_[static_cast<std::size_t>(w)]) return false;
      crash_worker(w, "injected crash");
      return true;
    };
    hooks.lose_cached_file = [this](std::int32_t w, std::int64_t f) {
      return lose_cached_file(w, static_cast<FileId>(f));
    };
    hooks.crash_manager = [this] {
      if (finished_) return false;
      on_manager_crash();
      return true;
    };
    injector_->arm(std::move(hooks));
  }

  /// Drop `f` from `w`'s cache (w = kNoWorker: from every holder). Future
  /// consumers rediscover the loss at precheck/fetch time and lineage-reset
  /// the producer; values already gathered for dispatched attempts are
  /// unaffected (they live in the task table, not in the file).
  std::size_t lose_cached_file(WorkerId w, FileId f) {
    if (finished_ || f < 0 || static_cast<std::size_t>(f) >= files_.size()) {
      return 0;
    }
    std::vector<WorkerId> targets;
    if (w == cluster::kNoWorker) {
      targets = replicas_->holders(f);  // copy: drop mutates the list
    } else {
      targets.push_back(w);
    }
    std::size_t lost = 0;
    for (WorkerId holder : targets) {
      if (!cluster_.worker(holder).alive || !in_cache(holder, f)) continue;
      drop_worker_copy(holder, f, file(f).size, DropReason::kLoss);
      ++lost;
    }
    return lost;
  }

  [[nodiscard]] const fault::RetryPolicy& retry_policy() const {
    return options_.fault_retry;
  }

  void forget_flow(net::FlowId flow) {
    if (injector_ && flow != net::kInvalidFlow) {
      injector_->forget_transfer(flow);
    }
  }

  /// Register a fetch's live flow as a kill target.
  void offer_fetch(const FetchKey& key) {
    if (!injector_) return;
    Fetch* fetch = fetch_find(key);
    if (fetch == nullptr || fetch->flow == net::kInvalidFlow) return;
    injector_->offer_transfer(fetch->flow, file(key.first).size,
                              [this, key] { on_fetch_killed(key); });
  }

  /// A fetch's flow was killed mid-stream: retry the fetch from scratch
  /// after capped exponential backoff (any surviving source is fine), or
  /// give up after the retry budget and let the lost-input path take over.
  void on_fetch_killed(const FetchKey& key) {
    Fetch* fp = fetch_find(key);
    if (fp == nullptr) return;
    Fetch& fetch = *fp;
    if (fetch.src_ep != static_cast<std::size_t>(-1)) {
      txn_xfer_failed(fetch.src_ep, cluster_.worker_endpoint(fetch.dst),
                      fetch.file, file(fetch.file).size);
    }
    if (fetch.peer_src != cluster::kNoWorker) {
      release_peer_slot(fetch.peer_src, fetch.peer_src_inc, fetch.file);
      fetch.peer_src = cluster::kNoWorker;
    }
    fetch.flow = net::kInvalidFlow;
    fetch.src_ep = static_cast<std::size_t>(-1);
    fetch.kill_retries += 1;
    if (fetch.kill_retries >= retry_policy().max_transfer_retries) {
      // The budget counts kills tolerated: the Nth kill exhausts it after
      // N-1 backoff re-fetches (RetryPolicy::max_transfer_retries).
      injector_->record_giveup(
          "file=" + std::to_string(fetch.file) +
          " dst=" + std::to_string(fetch.dst) +
          " kills=" + std::to_string(fetch.kill_retries));
      fail_fetch(key);
      pump();
      return;
    }
    const Tick delay = injector_->backoff_delay(fetch.kill_retries);
    engine_.schedule_after(delay, [this, key] { start_fetch_transfer(key); });
  }

  // ---------------------------------------------------------------------
  // The pump: dispatch ready tasks while capacity allows.
  // ---------------------------------------------------------------------
  void pump() {
    if (finished_ || pumping_) return;
    pumping_ = true;
    while (!finished_) {
      const TaskId t = table_.peek_ready();
      if (t == dag::kInvalidTask) break;
      if (!precheck_inputs(t)) continue;  // task was demoted; next
      const WorkerId w = choose_worker(t);
      if (w == cluster::kNoWorker) break;  // no capacity right now
      const TaskId popped = table_.pop_ready();
      assert(popped == t);
      (void)popped;
      dispatch(t, w);
    }
    pumping_ = false;
  }

  /// Verify that every dependency's output still exists somewhere. Done-
  /// but-lost producers get lineage-reset, which demotes `t` back to
  /// waiting as a side effect. Returns true if `t` is still dispatchable.
  bool precheck_inputs(TaskId t) {
    for (TaskId dep : graph_.task(t).spec.deps) {
      const FileId f = graph_.task(dep).output_file;
      if (table_.at(dep).state == TaskState::kDone && !output_available(f)) {
        lineage_reset(dep);
      }
    }
    return table_.at(t).state == TaskState::kReady;
  }

  void lineage_reset(TaskId producer) {
    const std::size_t reset = table_.reset_lost(
        producer, engine_.now(), [this](TaskId p) {
          return output_available(graph_.task(p).output_file);
        });
    lineage_resets_ += reset;
    if (reset == 0) return;
    // Poisoned-task detector: a task whose output keeps vanishing no matter
    // how often it re-runs must not loop forever; fail with the exact task
    // and count so the operator can see what to pin down.
    auto& count = reset_counts_[static_cast<std::size_t>(producer)];
    count += 1;
    const std::uint32_t limit = retry_policy().poisoned_reset_threshold;
    if (limit > 0 && count > limit) {
      fail_run("task " + std::to_string(producer) + " (" +
               graph_.task(producer).spec.category +
               ") poisoned: output lost " + std::to_string(count) +
               " times, exceeding the reset threshold of " +
               std::to_string(limit));
    }
  }

  /// Files the task needs staged into the worker's cache.
  void needed_files(TaskId t, std::vector<FileId>& out) const {
    out.clear();
    const auto& task = graph_.task(t);
    if (options_.mode == exec::ExecMode::kStandardTasks &&
        env_file_ != data::kInvalidFile) {
      out.push_back(env_file_);
    }
    if (policy_.cache_function_bodies &&
        options_.mode == exec::ExecMode::kStandardTasks) {
      // Serverless function code lives inside the library; only standard
      // tasks stage serialized bodies as files.
      out.push_back(function_bodies_.at(task.spec.function));
    }
    for (FileId f : task.spec.input_files) out.push_back(f);
    for (TaskId dep : task.spec.deps) {
      out.push_back(graph_.task(dep).output_file);
    }
  }

  [[nodiscard]] bool worker_eligible(WorkerId w, const dag::Task& task) const {
    const auto& node = cluster_.worker(w);
    if (!node.alive || node.cores_free() == 0) return false;
    const auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    return rt.mem_in_use + task.spec.memory_bytes <= node.memory;
  }

  [[nodiscard]] std::uint64_t missing_bytes(WorkerId w,
                                            const std::vector<FileId>& need)
      const {
    std::uint64_t bytes = 0;
    for (FileId f : need) {
      if (!file_resident(w, f)) bytes += file(f).size;
    }
    return bytes;
  }

  void advance_cursor(WorkerId w) {
    const auto n = static_cast<WorkerId>(cluster_.worker_count());
    rr_cursor_ = static_cast<WorkerId>((w + 1) % n);
  }

  WorkerId choose_worker(TaskId t) {
    const auto& task = graph_.task(t);
    needed_files(t, scratch_files_);

    if (policy_.locality_placement) {
      const WorkerId w = locality_choice(task);
      if (w != cluster::kNoWorker) {
        // A locality win consumes this worker's turn too: without the
        // cursor advance, the round-robin path restarted at the same
        // worker on the next non-local dispatch and starved the tail of
        // the id space under mixed workloads.
        advance_cursor(w);
        return w;
      }
    }
    return tun_.indexed_dispatch ? rr_indexed(task) : rr_reference(task);
  }

  /// Locality placement: score eligible workers by resident input bytes
  /// and take the best-scored one whose disk fits — trying the remaining
  /// holders in descending (score, id-ascending) order rather than giving
  /// up when only the top holder is disk-tight. Replica lists are tiny, so
  /// this is O(inputs x replicas) per dispatch in both dispatch modes.
  WorkerId locality_choice(const dag::Task& task) {
    if (++loc_epoch_cur_ == 0) {  // epoch wrapped: invalidate all stamps
      std::fill(loc_epoch_.begin(), loc_epoch_.end(), 0);
      loc_epoch_cur_ = 1;
    }
    scratch_holders_.clear();
    const auto score_holder = [&](WorkerId holder, FileId f) {
      const auto hi = static_cast<std::size_t>(holder);
      if (loc_epoch_[hi] != loc_epoch_cur_) {
        if (!worker_eligible(holder, task)) return;
        loc_epoch_[hi] = loc_epoch_cur_;
        loc_score_[hi] = 0;
        scratch_holders_.push_back(holder);
      }
      loc_score_[hi] += file(f).size;
    };
    for (FileId f : scratch_files_) {
      if (file(f).kind == data::FileKind::kEnvironment) continue;
      for (WorkerId holder : replicas_->holders(f)) score_holder(holder, f);
      // An in-memory store object is the strongest locality signal of
      // all: placing the consumer on its holder makes the input free.
      const objstore::NodeId sh = store_.holder_of(f);
      if (sh != objstore::kNoHolder) score_holder(sh, f);
    }
    std::sort(scratch_holders_.begin(), scratch_holders_.end(),
              [this](WorkerId a, WorkerId b) {
                const std::uint64_t sa = loc_score_[static_cast<std::size_t>(a)];
                const std::uint64_t sb = loc_score_[static_cast<std::size_t>(b)];
                if (sa != sb) return sa > sb;
                return a < b;
              });
    for (WorkerId w : scratch_holders_) {
      if (disk_fits(w, task, scratch_files_)) return w;
    }
    return cluster::kNoWorker;
  }

  /// Reference round-robin: circular walk over eligible workers from the
  /// cursor, first disk-fitting worker wins; disk-tight fallback re-derived
  /// by full scan. Kept as the differential oracle for rr_indexed.
  WorkerId rr_reference(const dag::Task& task) {
    std::uint64_t best_capacity = 0;
    const WorkerId hit = walk_eligible(rr_cursor_, [&](WorkerId w) {
      best_capacity = std::max(best_capacity, cluster_.worker(w).disk.capacity());
      return worker_eligible(w, task) && disk_fits(w, task, scratch_files_);
    });
    if (hit != cluster::kNoWorker) {
      advance_cursor(hit);
      return hit;
    }
    return resolve_fallback(task, best_capacity,
                            [&] { return scan_fallback_worker(task); });
  }

  /// Indexed round-robin: identical outcomes to rr_reference, with the
  /// O(workers) scans replaced by dispatch-index reads. The walk for a
  /// disk-fitting worker is skipped outright when even the cluster-wide
  /// max headroom cannot cover the task's output (disk_fits needs
  /// avail - committed >= missing + output, and headroom bounds
  /// avail - committed from above), and the disk-tight fallback comes from
  /// the index argmax instead of a rescan.
  WorkerId rr_indexed(const dag::Task& task) {
    // Probe a bounded prefix of the round-robin walk before touching the
    // index at all: when disks have room the first eligible worker wins
    // and the tree (and its deferred leaf fix-ups) stays cold. Only a
    // failed probe — the disk-tight regime — pays the flush, and the tree
    // then prunes the rest of the scan or answers the fallback outright.
    constexpr std::size_t kProbe = 64;
    std::size_t visited = 0;
    WorkerId bound_stop = cluster::kNoWorker;
    WorkerId hit = walk_eligible(rr_cursor_, [&](WorkerId w) {
      if (worker_eligible(w, task) && disk_fits(w, task, scratch_files_)) {
        return true;
      }
      if (++visited >= kProbe) {
        bound_stop = w;
        return true;  // stop the walk; not a hit
      }
      return false;
    });
    if (hit != cluster::kNoWorker && hit != bound_stop) {
      advance_cursor(hit);
      return hit;
    }
    index_flush();
    const std::uint64_t max_free = dispatch_index_.top_free_key();
    if (max_free == 0) return cluster::kNoWorker;  // nothing eligible
    const std::uint64_t best_capacity = dispatch_index_.top_cap_key() - 1;
    if (bound_stop != cluster::kNoWorker &&
        max_free - 1 >= task.spec.output_bytes) {
      // Something may still fit; resume past the probe boundary. The
      // continuation wraps through the already-probed prefix at its tail,
      // which re-tests provably unfit workers — harmless, and only on
      // this no-hit-in-prefix path.
      const auto n = static_cast<WorkerId>(cluster_.worker_count());
      hit = walk_eligible(static_cast<WorkerId>((bound_stop + 1) % n),
                          [&](WorkerId w) {
                            return worker_eligible(w, task) &&
                                   disk_fits(w, task, scratch_files_);
                          });
      if (hit != cluster::kNoWorker) {
        advance_cursor(hit);
        return hit;
      }
    }
    return resolve_fallback(task, best_capacity, [&] {
      // The index argmax ignores the per-task memory fit; when the top
      // worker passes it, it is also the argmax over the memory-fitting
      // subset (max over a superset attained inside the subset, same
      // smaller-id tiebreak). Otherwise re-derive by scan.
      const WorkerId fb = dispatch_index_.top_free_worker();
      if (fb != cluster::kNoWorker && !worker_eligible(fb, task)) {
        return scan_fallback_worker(task);
      }
      return fb;
    });
  }

  /// Disk-tight fallback by scan: the eligible, memory-fitting worker with
  /// the most fallback headroom (ties to the smaller id — the walk is in
  /// ascending id order and replacement is strict). Ranking by headroom
  /// rather than raw disk.available() matters: raw availability can crown
  /// a "roomiest" worker whose free space is already promised to in-flight
  /// attempts, and when eviction is on, space held by unpinned dataset
  /// inputs counts — a forced dispatch landing there reclaims it instead
  /// of overflowing.
  [[nodiscard]] WorkerId scan_fallback_worker(const dag::Task& task) const {
    WorkerId fb = cluster::kNoWorker;
    std::uint64_t fb_free = 0;
    (void)walk_eligible(0, [&](WorkerId w) {
      if (!worker_eligible(w, task)) return false;
      const std::uint64_t free = fallback_headroom(w);
      if (fb == cluster::kNoWorker || free > fb_free) {
        fb = w;
        fb_free = free;
      }
      return false;
    });
    return fb;
  }

  /// Workers are eligible but their disks are currently tight. If the
  /// task would fit an *empty* scratch disk, wait: running tasks will
  /// finish and pruning will reclaim space. If it cannot fit any disk at
  /// all — the paper's single-node reduction — dispatch to the roomiest
  /// worker anyway and let the overflow surface as the worker failure it
  /// would be in production. Also force progress if nothing is running
  /// (waiting would deadlock). `best_capacity` spans every eligible
  /// worker, memory fit aside — a task that only "could ever fit" on a
  /// memory-busy worker should still wait for it rather than overflow a
  /// smaller disk. `pick_fallback` is only invoked on the force-dispatch
  /// path, so the common wait case never pays the ranking scan.
  template <typename FallbackFn>
  WorkerId resolve_fallback(const dag::Task& task,
                            std::uint64_t best_capacity,
                            FallbackFn&& pick_fallback) {
    std::uint64_t footprint = task.spec.output_bytes;
    for (FileId f : scratch_files_) footprint += file(f).size;
    const bool could_ever_fit = footprint <= best_capacity;
    if (could_ever_fit && attempts_live_ != 0) {
      return cluster::kNoWorker;  // wait for space
    }
    const WorkerId fallback = pick_fallback();
    if (fallback == cluster::kNoWorker) return cluster::kNoWorker;
    advance_cursor(fallback);
    return fallback;
  }

  [[nodiscard]] bool disk_fits(WorkerId w, const dag::Task& task,
                               const std::vector<FileId>& need) const {
    const std::uint64_t committed =
        workers_rt_[static_cast<std::size_t>(w)].disk_committed;
    return missing_bytes(w, need) + task.spec.output_bytes + committed <=
           cluster_.worker(w).disk.available();
  }

  // ---------------------------------------------------------------------
  // Dispatch and staging.
  // ---------------------------------------------------------------------
  [[nodiscard]] Tick dispatch_cost() const {
    return options_.mode == exec::ExecMode::kFunctionCalls
               ? tun_.dispatch_cost_function_call
               : tun_.dispatch_cost_standard;
  }
  [[nodiscard]] Tick result_cost() const {
    return options_.mode == exec::ExecMode::kFunctionCalls
               ? tun_.result_cost_function_call
               : tun_.result_cost_standard;
  }

  void dispatch(TaskId t, WorkerId w) {
    table_.mark_dispatched(t, w, engine_.now());
    ++total_attempts_;
    auto& node = cluster_.worker(w);
    node.cores_in_use += 1;
    if (node.cores_free() == 0) eligible_erase(w);
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    rt.mem_in_use += graph_.task(t).spec.memory_bytes;
    rt.here.push_back(t);

    Attempt attempt;
    attempt.attempt = table_.at(t).attempts;
    attempt.inputs = table_.gather_inputs(t);
    needed_files(t, scratch_files_);
    attempt.disk_committed =
        missing_bytes(w, scratch_files_) + graph_.task(t).spec.output_bytes;
    rt.disk_committed += attempt.disk_committed;
    index_touch(w);
    // Pin every needed file for the attempt's lifetime — resident copies
    // now, in-flight ones ahead of their arrival — so pressure eviction
    // and GC cannot pull an input from under a dispatched task.
    attempt.pin_worker = w;
    attempt.pin_incarnation = node.incarnation;
    attempt.pinned = scratch_files_;
    attempt.span_ready = table_.at(t).ready_at;
    attempt.span_dispatched = engine_.now();
    for (FileId f : scratch_files_) pin_file(w, f);
    if (store_enabled()) {
      // Inputs already mapped in w's object store are consumed by
      // reference: take a handle per file so capacity pressure cannot
      // spill them from under the running FunctionCall.
      for (FileId f : scratch_files_) {
        if (!store_.holds(w, f)) continue;
        store_.add_ref(w, f);
        attempt.store_refs.push_back(f);
        report_.store_ref_hits += 1;
        if (txn_on()) obs_->txn().store_ref(engine_.now(), w, f, file(f).size);
      }
    }
    auto& slot = attempts_[static_cast<std::size_t>(t)];
    assert(!slot && "dispatching a task with a live attempt");
    slot = std::make_unique<Attempt>(std::move(attempt));
    ++attempts_live_;
    const Token token{t, table_.at(t).attempts};

    // Serialize + enqueue the dispatch on the manager thread. The argument
    // payload (plus the function body, when bodies are not cacheable
    // files) is small enough to ride the control channel: we charge the
    // manager's serial time and the control RTT rather than opening a
    // dedicated flow per task.
    std::uint64_t wire_bytes = options_.python.argument_bytes;
    if (!policy_.cache_function_bodies &&
        options_.mode == exec::ExecMode::kStandardTasks) {
      wire_bytes += options_.python.function_body_bytes;
    }
    manager_.acquire_then(dispatch_cost(), [this, token, w, wire_bytes] {
      if (!token_valid(token)) return;
      record_transfer(cluster_.manager_endpoint(),
                      cluster_.worker_endpoint(w), wire_bytes);
      engine_.schedule_after(cluster_.control_rtt() / 2,
                             [this, token, w] { begin_staging(token, w); });
    });
  }

  void begin_staging(const Token& token, WorkerId w) {
    if (!token_valid(token)) return;
    needed_files(token.task, scratch_files_);
    auto& attempt = *attempts_[static_cast<std::size_t>(token.task)];
    attempt.span_staged = engine_.now();
    std::vector<FileId> missing;
    for (FileId f : scratch_files_) {
      if (!file_resident(w, f)) missing.push_back(f);
    }
    attempt.staging_outstanding = static_cast<std::uint32_t>(missing.size());
    if (missing.empty()) {
      maybe_start_exec(token, w);
      return;
    }
    for (FileId f : missing) {
      stage_file(f, w, [this, token, w](bool ok) {
        if (!token_valid(token)) return;
        if (!ok) {
          // Input is unrecoverable right now: abort this attempt and
          // lineage-reset the producer; the dependents-fix inside
          // reset_lost demotes the (now requeued) task back to waiting.
          abort_attempt_for_lost_input(token);
          return;
        }
        auto& att = *attempts_[static_cast<std::size_t>(token.task)];
        assert(att.staging_outstanding > 0);
        if (--att.staging_outstanding == 0) {
          maybe_start_exec(token, w);
        }
      });
    }
  }

  void abort_attempt_for_lost_input(const Token& token) {
    const TaskId t = token.task;
    fail_attempt(t, /*requeue=*/true);
    if (finished_) return;
    // Every done dep with no surviving replica gets reset; each reset
    // demotes t (currently kReady from the requeue) back to waiting.
    for (TaskId dep : graph_.task(t).spec.deps) {
      const FileId f = graph_.task(dep).output_file;
      if (table_.at(dep).state == TaskState::kDone && !output_available(f)) {
        lineage_reset(dep);
      }
    }
    pump();
  }

  // --- stage_file: ensure `f` lands in w's cache, then notify ------------
  void stage_file(FileId f, WorkerId w, std::function<void(bool)> done) {
    if (file_resident(w, f)) {
      done(true);
      return;
    }
    const FetchKey key{f, w};
    if (Fetch* existing = fetch_find(key)) {
      existing->waiters.push_back(std::move(done));
      return;
    }
    Fetch fetch;
    fetch.file = f;
    fetch.dst = w;
    fetch.waiters.push_back(std::move(done));
    fetch_emplace(key, std::move(fetch));
    start_fetch_transfer(key);
  }

  void start_fetch_transfer(const FetchKey& key) {
    Fetch* fp = fetch_find(key);
    if (fp == nullptr) return;
    Fetch& fetch = *fp;
    const FileId f = fetch.file;
    const WorkerId w = fetch.dst;
    const std::uint64_t bytes = file(f).size;

    // Dataset inputs are always recoverable from backing storage (the
    // local data store or the wide-area federation). When replicas already
    // exist on workers — a chunk cached by an earlier attempt, or
    // replicated — peer transfer is still preferred below, so only truly
    // cold chunks hit storage.
    if (file(f).kind == data::FileKind::kDatasetInput &&
        pick_peer_source(f) == cluster::kNoWorker) {
      if (policy_.inputs_via_manager) {
        ensure_manager_copy(f, [this, key] { transfer_from_manager(key); });
      } else {
        (void)w;
        (void)bytes;
        fs_gate_.submit([this, key](net::FlowGate::SlotToken slot) {
          Fetch* fit = fetch_find(key);
          if (fit == nullptr) return;  // fetch vanished while queued
          fit->src_ep = cluster_.fs_endpoint();
          txn_xfer_start(cluster_.fs_endpoint(),
                         cluster_.worker_endpoint(key.second), key.first,
                         file(key.first).size);
          auto on_done = [this, key, slot = std::move(slot)] {
            record_transfer(cluster_.fs_endpoint(),
                            cluster_.worker_endpoint(key.second),
                            file(key.first).size);
            txn_xfer_done(cluster_.fs_endpoint(),
                          cluster_.worker_endpoint(key.second), key.first,
                          file(key.first).size);
            complete_fetch(key);
          };
          fit->flow =
              options_.inputs_from_wan
                  ? cluster_.read_wan_to_worker(
                        key.second, file(key.first).size, std::move(on_done))
                  : cluster_.read_fs_to_worker(
                        key.second, file(key.first).size, std::move(on_done));
          offer_fetch(key);
        });
      }
      return;
    }

    // Worker-resident replicas: peer transfer if allowed and a source has
    // a free slot; otherwise relay through the manager.
    const WorkerId src = pick_peer_source(f);
    if (src != cluster::kNoWorker) {
      fetch.peer_src = src;
      fetch.peer_src_inc = cluster_.worker(src).incarnation;
      acquire_peer_slot(src, f);
      const std::uint32_t src_inc = fetch.peer_src_inc;
      // The manager brokers the transfer (small control cost), then the
      // data flows directly between the workers.
      manager_.acquire_then(tun_.peer_instruction_cost,
                            [this, key, src, src_inc] {
        Fetch* fit = fetch_find(key);
        if (fit == nullptr || fit->peer_src != src ||
            fit->peer_src_inc != src_inc) {
          // The fetch vanished (destination died) or was re-sourced while
          // the broker request was queued; the slot we reserved is ours to
          // give back (the flow-completion path never runs).
          release_peer_slot(src, src_inc, key.first);
          return;
        }
        fit->src_ep = cluster_.worker_endpoint(src);
        txn_xfer_start(cluster_.worker_endpoint(src),
                       cluster_.worker_endpoint(key.second), key.first,
                       file(key.first).size);
        const Tick t0 = engine_.now();
        fit->flow = cluster_.send_peer(
            src, key.second, file(key.first).size, cluster_.control_rtt(),
            [this, key, src, src_inc, t0] {
              release_peer_slot(src, src_inc, key.first);
              record_transfer(cluster_.worker_endpoint(src),
                              cluster_.worker_endpoint(key.second),
                              file(key.first).size);
              txn_xfer_done(cluster_.worker_endpoint(src),
                            cluster_.worker_endpoint(key.second), key.first,
                            file(key.first).size);
              if (trace_on()) {
                obs_->trace().add_flow(
                    lane(cluster_.worker_endpoint(src)),
                    lane(cluster_.worker_endpoint(key.second)),
                    "peer file " + std::to_string(key.first), t0,
                    engine_.now());
              }
              if (Fetch* it2 = fetch_find(key)) {
                it2->peer_src = cluster::kNoWorker;
              }
              complete_fetch(key);
            });
        offer_fetch(key);
      });
      return;
    }

    if (policy_.peer_transfers && !replicas_->holders(f).empty()) {
      // All sources are at their transfer cap: wait for a slot.
      if (!fetch.throttled) {
        fetch.throttled = true;
        throttle_queue_.push_back(key);
      }
      return;
    }

    if (replicas_->at_manager(f)) {
      transfer_from_manager(key);
      return;
    }

    if (!replicas_->holders(f).empty()) {
      // Peer transfers disabled: relay worker -> manager -> worker.
      ensure_manager_copy_from_worker(f, [this, key](bool ok) {
        if (ok) {
          transfer_from_manager(key);
        } else {
          fail_fetch(key);
        }
      });
      return;
    }

    // The only copy may be a node-local store object: materialize it on
    // its holder's disk (it becomes an ordinary replica-table file) and
    // retry — the fresh replica takes the peer/relay paths above. When
    // the spill lands on the requesting worker itself (a re-dispatched
    // consumer racing a producer's spill), the fetch completes in place.
    const objstore::NodeId sh = store_.holder_of(f);
    if (sh != objstore::kNoHolder && cluster_.worker(sh).alive &&
        spill_object(sh, f)) {
      if (sh == w) {
        Fetch* again = fetch_find(key);
        if (again != nullptr) {
          auto waiters = std::move(again->waiters);
          fetch_erase(key);
          for (auto& cb : waiters) cb(true);
        }
      } else if (fetch_find(key) != nullptr) {
        start_fetch_transfer(key);
      }
      return;
    }

    // No replica anywhere: the file is lost.
    fail_fetch(key);
  }

  [[nodiscard]] WorkerId pick_peer_source(FileId f) const {
    if (!policy_.peer_transfers) return cluster::kNoWorker;
    WorkerId best = cluster::kNoWorker;
    std::uint32_t best_load = 0;
    for (WorkerId holder : replicas_->holders(f)) {
      if (!cluster_.worker(holder).alive) continue;
      const std::uint32_t load =
          workers_rt_[static_cast<std::size_t>(holder)].active_out;
      if (options_.peer_transfer_limit != 0 &&
          load >= options_.peer_transfer_limit) {
        continue;
      }
      if (best == cluster::kNoWorker || load < best_load) {
        best = holder;
        best_load = load;
      }
    }
    return best;
  }

  /// Take a peer-transfer slot on `src` for sending `f`: bump the active
  /// counter and pin the copy — a transfer source must not be evicted or
  /// GC'd from under its flow.
  void acquire_peer_slot(WorkerId src, FileId f) {
    workers_rt_[static_cast<std::size_t>(src)].active_out += 1;
    pin_file(src, f);
  }

  /// Release a slot taken at `incarnation`. Slots die with their worker
  /// (the reboot zeroes active_out and the pin set), so a release landing
  /// on a dead or later incarnation is a stale callback, not an underflow.
  /// A same-incarnation release with no slot outstanding is a genuine
  /// double release: a hard error in Debug builds, counted in the run
  /// report otherwise so production runs stay auditable.
  void release_peer_slot(WorkerId src, std::uint32_t incarnation, FileId f) {
    if (!worker_current(src, incarnation)) return;
    auto& rt = workers_rt_[static_cast<std::size_t>(src)];
    unpin_file(src, f);
    if (rt.active_out == 0) {
      report_.peer_slot_underflows += 1;
      assert(false && "peer-transfer slot double release");
      return;
    }
    rt.active_out -= 1;
    drain_throttle_queue();
  }

  void drain_throttle_queue() {
    // Retry throttled fetches; those still capped re-queue themselves.
    std::size_t n = throttle_queue_.size();
    while (n-- > 0 && !throttle_queue_.empty()) {
      const FetchKey key = throttle_queue_.front();
      throttle_queue_.pop_front();
      Fetch* fetch = fetch_find(key);
      if (fetch == nullptr) continue;
      fetch->throttled = false;
      start_fetch_transfer(key);
      // start_fetch_transfer may have erased or re-throttled the fetch.
      Fetch* again = fetch_find(key);
      if (again != nullptr && again->throttled) break;
    }
  }

  void transfer_from_manager(const FetchKey& key) {
    mgr_gate_.submit([this, key](net::FlowGate::SlotToken slot) {
      Fetch* fetch = fetch_find(key);
      if (fetch == nullptr) return;  // fetch vanished while queued
      const std::uint64_t bytes = file(key.first).size;
      fetch->src_ep = cluster_.manager_endpoint();
      txn_xfer_start(cluster_.manager_endpoint(),
                     cluster_.worker_endpoint(key.second), key.first, bytes);
      fetch->flow = cluster_.send_manager_to_worker(
          key.second, bytes, cluster_.control_rtt() / 2,
          [this, key, bytes, slot = std::move(slot)] {
            record_transfer(cluster_.manager_endpoint(),
                            cluster_.worker_endpoint(key.second), bytes);
            txn_xfer_done(cluster_.manager_endpoint(),
                          cluster_.worker_endpoint(key.second), key.first,
                          bytes);
            complete_fetch(key);
          });
      offer_fetch(key);
    });
  }

  /// Stage a dataset input from the shared filesystem to the manager's
  /// disk (Work Queue pattern), deduplicating concurrent requests. The
  /// filesystem is always available, so this path cannot fail.
  void ensure_manager_copy(FileId f, std::function<void()> then) {
    if (replicas_->at_manager(f)) {
      then();
      return;
    }
    auto [it, inserted] = manager_inflight_.try_emplace(f);
    it->second.push_back([then = std::move(then)](bool ok) {
      if (ok) then();
    });
    if (!inserted) return;
    submit_manager_fs_read(f);
  }

  void submit_manager_fs_read(FileId f) {
    fs_gate_.submit([this, f](net::FlowGate::SlotToken slot) {
      txn_xfer_start(cluster_.fs_endpoint(), cluster_.manager_endpoint(), f,
                     file(f).size);
      manager_fs_flows_[f] = cluster_.read_fs_to_manager(
          file(f).size, [this, f, slot = std::move(slot)] {
            if (auto mit = manager_fs_flows_.find(f);
                mit != manager_fs_flows_.end()) {
              forget_flow(mit->second);
              manager_fs_flows_.erase(mit);
            }
            record_transfer(cluster_.fs_endpoint(),
                            cluster_.manager_endpoint(), file(f).size);
            txn_xfer_done(cluster_.fs_endpoint(), cluster_.manager_endpoint(),
                          f, file(f).size);
            replicas_->set_at_manager(f);
            // The read landed: close the backoff episode so a later,
            // independent failure of this file starts at backoff(1).
            manager_fs_backoff_.reset(f);
            auto node = manager_inflight_.extract(f);
            for (auto& cb : node.mapped()) cb(true);
          });
      offer_manager_fs_read(f);
    });
  }

  /// Manager-side FS reads retry forever: the filesystem is durable, so a
  /// killed stream just re-opens after backoff. The killed flow's done
  /// callback dies with it, which releases its fs_gate_ slot; the retry
  /// queues for a fresh one.
  void offer_manager_fs_read(FileId f) {
    if (!injector_) return;
    auto it = manager_fs_flows_.find(f);
    if (it == manager_fs_flows_.end()) return;
    injector_->offer_transfer(it->second, file(f).size, [this, f] {
      manager_fs_flows_.erase(f);
      txn_xfer_failed(cluster_.fs_endpoint(), cluster_.manager_endpoint(), f,
                      file(f).size);
      const Tick delay =
          injector_->backoff_delay(manager_fs_backoff_.next_attempt(f));
      engine_.schedule_after(delay, [this, f] {
        if (!finished_ && manager_inflight_.count(f) > 0) {
          submit_manager_fs_read(f);
        }
      });
    });
  }

  /// Relay step 1: pull a worker-resident file back to the manager. The
  /// source can be preempted while the request is queued or in flight, so
  /// the continuation receives success/failure.
  void ensure_manager_copy_from_worker(FileId f,
                                       std::function<void(bool)> then) {
    if (replicas_->at_manager(f)) {
      then(true);
      return;
    }
    auto [it, inserted] = manager_inflight_.try_emplace(f);
    it->second.push_back(std::move(then));
    if (!inserted) return;
    mgr_gate_.submit([this, f](net::FlowGate::SlotToken slot) {
      start_relay_pull(f, std::move(slot));
    });
  }

  void start_relay_pull(FileId f, net::FlowGate::SlotToken slot) {
    if (replicas_->at_manager(f)) {
      // Arrived via another path (e.g. an output return) while this pull
      // was queued or backing off.
      auto node = manager_inflight_.extract(f);
      for (auto& cb : node.mapped()) cb(true);
      return;
    }
    // Re-pick a live holder at start time (the original may be gone).
    WorkerId holder = cluster::kNoWorker;
    for (WorkerId h : replicas_->holders(f)) {
      if (cluster_.worker(h).alive) {
        holder = h;
        break;
      }
    }
    if (holder == cluster::kNoWorker) {
      auto node = manager_inflight_.extract(f);
      if (!node.empty()) {
        for (auto& cb : node.mapped()) cb(false);
      }
      return;
    }
    const std::uint32_t incarnation = cluster_.worker(holder).incarnation;
    // The relay source is a live transfer origin: pin it for the flow's
    // duration so eviction/GC cannot destroy the copy being read.
    pin_file(holder, f);
    txn_xfer_start(cluster_.worker_endpoint(holder),
                   cluster_.manager_endpoint(), f, file(f).size);
    relay_flows_[f] = {
        cluster_.send_worker_to_manager(
            holder, file(f).size, cluster_.control_rtt() / 2,
            [this, f, holder, incarnation,
             slot = std::move(slot)]() mutable {
              if (auto rit = relay_flows_.find(f); rit != relay_flows_.end()) {
                forget_flow(rit->second.first);
                relay_flows_.erase(rit);
              }
              if (worker_current(holder, incarnation)) {
                unpin_file(holder, f);
              }
              if (!worker_current(holder, incarnation)) {
                txn_xfer_failed(cluster_.worker_endpoint(holder),
                                cluster_.manager_endpoint(), f, file(f).size);
                start_relay_pull(f, std::move(slot));  // retry elsewhere
                return;
              }
              record_transfer(cluster_.worker_endpoint(holder),
                              cluster_.manager_endpoint(), file(f).size);
              txn_xfer_done(cluster_.worker_endpoint(holder),
                            cluster_.manager_endpoint(), f, file(f).size);
              replicas_->set_at_manager(f);
              relay_backoff_.reset(f);
              auto node = manager_inflight_.extract(f);
              for (auto& cb : node.mapped()) cb(true);
            }),
        holder};
    offer_relay(f);
  }

  /// Relay pulls also retry without a cap: the holder set is re-resolved on
  /// each retry, and if every replica is gone by then the pull reports
  /// failure to its waiters (the lost-input path) rather than spinning.
  void offer_relay(FileId f) {
    if (!injector_) return;
    auto it = relay_flows_.find(f);
    if (it == relay_flows_.end()) return;
    const WorkerId holder = it->second.second;
    const std::uint32_t holder_inc = cluster_.worker(holder).incarnation;
    injector_->offer_transfer(it->second.first, file(f).size,
                              [this, f, holder, holder_inc] {
      relay_flows_.erase(f);
      if (worker_current(holder, holder_inc)) unpin_file(holder, f);
      txn_xfer_failed(cluster_.worker_endpoint(holder),
                      cluster_.manager_endpoint(), f, file(f).size);
      const Tick delay =
          injector_->backoff_delay(relay_backoff_.next_attempt(f));
      engine_.schedule_after(delay, [this, f] {
        if (finished_ || manager_inflight_.count(f) == 0) return;
        mgr_gate_.submit([this, f](net::FlowGate::SlotToken slot) {
          start_relay_pull(f, std::move(slot));
        });
      });
    });
  }

  void complete_fetch(const FetchKey& key) {
    Fetch* fetch = fetch_find(key);
    if (fetch == nullptr) return;
    const FileId f = key.first;
    const WorkerId w = key.second;
    forget_flow(fetch->flow);
    auto waiters = std::move(fetch->waiters);
    fetch_erase(key);

    if (!cluster_.worker(w).alive) {
      // Destination died while the bytes were in flight. The waiters'
      // tokens are stale, but the fetch outcome must still be delivered:
      // silently dropping moved-out callbacks leaks any continuation that
      // does not ride an attempt token.
      for (auto& cb : waiters) cb(false);
      return;
    }
    if (!reserve_or_crash(w, file(f).size, "cache overflow during staging")) {
      // Scratch partition overflowed and nothing evictable was enough: the
      // worker dies (paper Fig 11). crash_worker tears it down
      // synchronously, so every waiter token is already invalid — but the
      // outcome is still delivered, not dropped on the floor.
      for (auto& cb : waiters) cb(false);
      return;
    }
    cache_insert(w, f);
    for (auto& cb : waiters) cb(true);
  }

  void fail_fetch(const FetchKey& key) {
    Fetch* fetch = fetch_find(key);
    if (fetch == nullptr) return;
    forget_flow(fetch->flow);
    auto waiters = std::move(fetch->waiters);
    fetch_erase(key);
    for (auto& cb : waiters) cb(false);
  }

  // ---------------------------------------------------------------------
  // Execution.
  // ---------------------------------------------------------------------
  void maybe_start_exec(const Token& token, WorkerId w) {
    if (!token_valid(token)) return;
    if (options_.mode == exec::ExecMode::kFunctionCalls) {
      auto& rt = workers_rt_[static_cast<std::size_t>(w)];
      if (rt.lib != LibState::kReady) {
        rt.waiting_for_lib.push_back(token);
        return;
      }
    }
    start_exec(token, w);
  }

  void start_exec(const Token& token, WorkerId w) {
    if (!token_valid(token)) return;
    const TaskId t = token.task;
    table_.mark_running(t, engine_.now());
    if (txn_on()) obs_->txn().task_running(engine_.now(), t, w);
    attempt_at(t).span_exec = engine_.now();
    const auto& task = graph_.task(t);
    const auto& node = cluster_.worker(w);

    Tick pre = 0;
    bool shared_imports = false;
    const auto& py = options_.python;
    auto& rtw = workers_rt_[static_cast<std::size_t>(w)];
    if (options_.mode == exec::ExecMode::kStandardTasks) {
      pre += py.interpreter_startup;
      pre += py.serialize_time_acc(py.function_body_bytes + py.argument_bytes,
                                   rtw.ser);
      if (options_.env_from_shared_fs) {
        shared_imports = true;
      } else {
        pre += options_.imports.import_time_local(node.disk.spec());
      }
    } else {
      // Zero-copy bypass: when every dependency output is a live store
      // object on this node, the argument tuple is handed to the forked
      // FunctionCall by reference and nothing is pickled. The reference
      // arm (store off) charges the full serialization path.
      const bool by_ref =
          tun_.object_store ? inputs_by_reference(t, w) : false;
      pre += py.fork_cost +
             (by_ref ? py.byref_handoff_time()
                     : py.serialize_time_acc(py.argument_bytes, rtw.ser));
      if (!options_.hoist_imports) {
        if (options_.env_from_shared_fs) {
          shared_imports = true;
        } else {
          pre += options_.imports.import_time_local(node.disk.spec());
        }
      }
    }

    const Tick compute = exec::modeled_exec_ticks(
        task, node.effective_speed(), options_.exec_time_jitter, rng_);
    // Store-eligible outputs never touch scratch disk at completion, so
    // the write stage of the attempt costs nothing.
    const Tick write =
        store_output(t) ? 0 : node.disk.write_time(task.spec.output_bytes);

    if (shared_imports) {
      engine_.schedule_after(pre, [this, token, w, compute, write] {
        if (!token_valid(token)) return;
        cluster_.fs().metadata_ops(
            options_.imports.total_metadata_ops(),
            [this, token, w, compute, write] {
              if (!token_valid(token)) return;
              fs_gate_.submit([this, token, w, compute,
                               write](net::FlowGate::SlotToken slot) {
                if (!token_valid(token)) return;
                const std::uint64_t code =
                    options_.imports.total_code_bytes();
                cluster_.read_fs_to_worker(
                    w, code,
                    [this, token, w, compute, write, code,
                     slot = std::move(slot)] {
                      if (!token_valid(token)) return;
                      record_transfer(cluster_.fs_endpoint(),
                                      cluster_.worker_endpoint(w), code);
                      const Tick cpu = options_.imports.total_cpu_cost();
                      attempt_at(token.task).span_compute =
                          engine_.now() + cpu;
                      engine_.schedule_after(
                          cpu + compute + write,
                          [this, token, w] { complete_exec(token, w); });
                    });
              });
            });
      });
    } else {
      attempt_at(t).span_compute = engine_.now() + pre;
      engine_.schedule_after(pre + compute + write, [this, token, w] {
        complete_exec(token, w);
      });
    }
  }

  void complete_exec(const Token& token, WorkerId w) {
    if (!token_valid(token)) return;
    const TaskId t = token.task;
    const auto& task = graph_.task(t);

    // Produce the output: store-eligible FunctionCall outputs publish
    // into the node's in-memory object store (zero-copy, no disk write);
    // everything else lands on the worker's scratch disk as before.
    // A capacity spill inside store_put_object can crash the worker —
    // re-validate the token like any other asynchronous hazard.
    if (store_output(t)) {
      if (!store_put_object(w, task.output_file) || !token_valid(token)) {
        return;
      }
    } else {
      if (!reserve_or_crash(w, task.spec.output_bytes,
                            "cache overflow writing task output")) {
        return;
      }
      cache_insert(w, task.output_file);
    }
    // Run the real computation.
    auto& attempt = attempt_at(t);
    // The fresh output is pinned until the attempt finalizes: eviction
    // must not destroy a result the manager has not ingested yet. For a
    // store object the pin arms lazily — it starts protecting the disk
    // copy the moment a forced spill materializes one.
    attempt.pinned.push_back(task.output_file);
    pin_file(w, task.output_file);
    if (!store_output(t)) maybe_replicate(task.output_file);
    attempt.exec_finished_at = engine_.now();
    dag::ValuePtr value =
        task.spec.fn ? task.spec.fn(attempt.inputs) : nullptr;
    attempt.inputs.clear();

    // The process exits: core and memory free immediately; the manager
    // learns of the result after the control hop + its own handling cost.
    release_resources(t, w);

    if (policy_.retain_outputs_on_worker) {
      manager_.acquire_then(
          result_cost() + cluster_.control_rtt() / 2,
          [this, token, w, value = std::move(value)]() mutable {
            finalize_task(token, w, std::move(value));
          });
    } else {
      // Work Queue: ship the output back to the manager; the worker's
      // sandbox copy is deleted on arrival.
      const std::uint64_t bytes = task.spec.output_bytes;
      mgr_gate_.submit([this, token, w, bytes, t,
                        value = std::move(value)](
                           net::FlowGate::SlotToken slot) mutable {
        if (!token_valid(token)) return;
        txn_xfer_start(cluster_.worker_endpoint(w),
                       cluster_.manager_endpoint(),
                       graph_.task(t).output_file, bytes);
        return_flows_[t] = cluster_.send_worker_to_manager(
            w, bytes, cluster_.control_rtt() / 2,
            [this, token, w, bytes, value = std::move(value),
             slot = std::move(slot)]() mutable {
              if (!token_valid(token)) return;
              record_transfer(cluster_.worker_endpoint(w),
                              cluster_.manager_endpoint(), bytes);
              const FileId f = graph_.task(token.task).output_file;
              txn_xfer_done(cluster_.worker_endpoint(w),
                            cluster_.manager_endpoint(), f, bytes);
              replicas_->set_at_manager(f);
              drop_worker_copy(w, f, bytes, DropReason::kSandbox);
              manager_.acquire_then(
                  result_cost(), [this, token, w,
                                  value = std::move(value)]() mutable {
                    finalize_task(token, w, std::move(value));
                  });
            });
        offer_return(t, token, w, bytes);
      });
    }
  }

  /// A killed output return destroys the serialized result value riding
  /// the stream along with the flow, so the only recovery is re-running
  /// the attempt — there is nothing left to re-send.
  void offer_return(TaskId t, const Token& token, WorkerId w,
                    std::uint64_t bytes) {
    if (!injector_) return;
    auto it = return_flows_.find(t);
    if (it == return_flows_.end()) return;
    injector_->offer_transfer(it->second, bytes, [this, t, token, w, bytes] {
      return_flows_.erase(t);
      txn_xfer_failed(cluster_.worker_endpoint(w), cluster_.manager_endpoint(),
                      graph_.task(t).output_file, bytes);
      if (token_valid(token)) {
        fail_attempt(t, /*requeue=*/true);
        pump();
      }
    });
  }

  /// Why a cached replica is leaving a worker's disk. The reason picks the
  /// transaction verb and which run-report counters move: evicting a file
  /// is a scheduler decision, losing one is a fault.
  enum class DropReason : std::uint8_t {
    kGc,       // consumer refcount hit zero (CACHE ... GC)
    kEvict,    // LRU pressure eviction (CACHE ... EVICT)
    kSandbox,  // Work Queue sandbox cleanup after output return (EVICT)
    kLoss,     // injected fault destroyed the copy (CACHE ... LOST)
  };

  void drop_worker_copy(WorkerId w, FileId f, std::uint64_t bytes,
                        DropReason why) {
    auto& node = cluster_.worker(w);
    if (!node.alive) return;
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    if (static_cast<std::size_t>(f) >= rt.in_cache.size() ||
        !rt.in_cache[static_cast<std::size_t>(f)]) {
      return;
    }
    rt.in_cache[static_cast<std::size_t>(f)] = false;
    replicas_->remove(f, w);
    node.disk.release(bytes);
    rt.last_use.erase(f);
    if (pin_count(w, f) == 0) reclaim_sub(w, f);
    index_touch(w);  // disk.available() grew even when nothing reclaimable
    char span_verb = 'G';
    switch (why) {
      case DropReason::kGc:
        report_.cache_gc_drops += 1;
        if (txn_on()) obs_->txn().cache_gc(engine_.now(), w, f, bytes);
        span_verb = 'G';
        break;
      case DropReason::kEvict:
        report_.cache_evictions += 1;
        report_.cache_evicted_bytes += bytes;
        report_.cache.mark_eviction(static_cast<std::size_t>(w),
                                    engine_.now(), bytes);
        if (txn_on()) obs_->txn().cache_evict(engine_.now(), w, f, bytes);
        span_verb = 'E';
        break;
      case DropReason::kSandbox:
        if (txn_on()) obs_->txn().cache_evict(engine_.now(), w, f, bytes);
        span_verb = 'S';
        break;
      case DropReason::kLoss:
        if (txn_on()) obs_->txn().cache_lost(engine_.now(), w, f, bytes);
        span_verb = 'L';
        break;
    }
    obs::CacheSpan cs;
    cs.t = engine_.now();
    cs.worker = static_cast<std::int32_t>(w);
    cs.file = f;
    cs.bytes = bytes;
    cs.verb = span_verb;
    report_.profile.add_cache(cs);
  }

  void finalize_task(const Token& token, WorkerId w, dag::ValuePtr value) {
    if (!token_valid(token)) return;
    const TaskId t = token.task;
    if (auto rit = return_flows_.find(t); rit != return_flows_.end()) {
      forget_flow(rit->second);
      return_flows_.erase(rit);
    }
    remove_from_here(w, t);

    const auto& st = table_.at(t);
    metrics::TaskRecord rec;
    rec.task_id = t;
    rec.worker = w;
    rec.ready_at = st.ready_at;
    rec.dispatched_at = st.dispatched_at;
    rec.started_at = st.started_at;
    // Execution time is worker-side (process exit), not when the manager
    // got around to ingesting the result — otherwise manager backlog
    // masquerades as task time in the Fig 8 distributions.
    const Tick exec_end = attempt_at(t).exec_finished_at;
    rec.finished_at = exec_end > 0 ? exec_end : engine_.now();
    rec.category = graph_.task(t).spec.category;
    if (txn_on()) {
      obs_->txn().task_retrieved(engine_.now(), t, "SUCCESS");
    }
    if (trace_on() && rec.started_at > 0) {
      obs_->trace().add_span(
          lane(cluster_.worker_endpoint(w)), rec.category, rec.category,
          rec.started_at, rec.finished_at - rec.started_at,
          "{\"task\":" + std::to_string(t) + "}");
    }
    report_.trace.add(std::move(rec));
    record_attempt_span(t, w, attempt_at(t),
                        exec_end > 0 ? exec_end : engine_.now(),
                        /*failed=*/false);

    table_.mark_done(t, std::move(value), engine_.now());
    unpin_attempt(attempt_at(t));
    attempt_erase(t);
    if (txn_on()) obs_->txn().task_done(engine_.now(), t, "SUCCESS");

    // This completion consumed its dependency outputs and dataset inputs
    // once; files whose last pending consumer it was are dead and get
    // garbage-collected cluster-wide (TaskVine prunes cache entries with
    // no pending consumers; without this, long workflows exhaust worker
    // disks). Sink outputs have no consuming edge, so GC never sees them.
    for (TaskId dep : graph_.task(t).spec.deps) {
      release_consumer_ref(graph_.task(dep).output_file);
    }
    for (FileId f : graph_.task(t).spec.input_files) {
      release_consumer_ref(f);
    }

    if (is_sink_[static_cast<std::size_t>(t)]) {
      fetch_sink_result(t);
    }
    check_completion();
    pump();
  }

  /// Proactively replicate a freshly produced intermediate onto additional
  /// workers (TaskVine temp-file replication): preemption of the producer
  /// then no longer forces lineage re-execution. Reuses the normal fetch
  /// machinery, so replicas ride throttled peer transfers and register in
  /// the replica table like any other copy.
  void maybe_replicate(FileId f) {
    const std::uint32_t want = options_.intermediate_replicas;
    if (want <= 1 || !policy_.peer_transfers) return;
    if (file(f).kind != data::FileKind::kIntermediate) return;
    std::uint32_t have =
        static_cast<std::uint32_t>(replicas_->holders(f).size());
    if (have >= want) return;

    // Spread copies over alive workers with the most free disk, skipping
    // current holders.
    std::vector<WorkerId> targets;
    for (WorkerId w = 0;
         w < static_cast<WorkerId>(cluster_.worker_count()); ++w) {
      const auto& node = cluster_.worker(w);
      if (!node.alive || replicas_->on_worker(f, w)) continue;
      if (node.disk.available() < file(f).size * 2) continue;
      targets.push_back(w);
    }
    std::sort(targets.begin(), targets.end(), [this](WorkerId a, WorkerId b) {
      return cluster_.worker(a).disk.available() >
             cluster_.worker(b).disk.available();
    });
    for (WorkerId w : targets) {
      if (have >= want) break;
      ++have;
      stage_file(f, w, [](bool) { /* background copy; best effort */ });
    }
  }

  // ---------------------------------------------------------------------
  // Sink results must reach the manager for the workflow to complete.
  // ---------------------------------------------------------------------
  void fetch_sink_result(TaskId t) {
    const FileId f = graph_.task(t).output_file;
    if (replicas_->at_manager(f)) {
      on_sink_fetched(t);
      return;
    }
    const auto& holders = replicas_->holders(f);
    if (holders.empty()) {
      // A store-held sink output (a task promoted to sink after its
      // store-eligible output was published) must materialize before the
      // manager can gather it.
      const objstore::NodeId sh = store_.holder_of(f);
      if (sh != objstore::kNoHolder && cluster_.worker(sh).alive &&
          spill_object(sh, f)) {
        fetch_sink_result(t);
        return;
      }
      // Output lost between completion and fetch: recompute.
      lineage_reset(t);
      pump();
      return;
    }
    const WorkerId src = holders.front();
    const std::uint64_t bytes = file(f).size;
    mgr_gate_.submit([this, t, f, src, bytes](net::FlowGate::SlotToken slot) {
      if (sink_fetched_[static_cast<std::size_t>(t)] != 0) return;
      if (!cluster_.worker(src).alive) {
        fetch_sink_result(t);  // re-resolve a live holder
        return;
      }
      const std::uint32_t src_inc = cluster_.worker(src).incarnation;
      // Pin the gather source: a sink result being shipped to the manager
      // must survive on the worker until it lands.
      pin_file(src, f);
      txn_xfer_start(cluster_.worker_endpoint(src),
                     cluster_.manager_endpoint(), f, bytes);
      sink_flows_[t] = {
          cluster_.send_worker_to_manager(
              src, bytes, cluster_.control_rtt() / 2,
              [this, t, f, src, src_inc, bytes, slot = std::move(slot)] {
                if (worker_current(src, src_inc)) unpin_file(src, f);
                record_transfer(cluster_.worker_endpoint(src),
                                cluster_.manager_endpoint(), bytes);
                txn_xfer_done(cluster_.worker_endpoint(src),
                              cluster_.manager_endpoint(), f, bytes);
                replicas_->set_at_manager(f);
                sink_backoff_.reset(t);
                forget_flow(sink_flows_.at(t).first);
                sink_flows_.erase(t);
                on_sink_fetched(t);
              }),
          src};
      offer_sink(t);
    });
  }

  /// Killed sink gathers re-resolve a holder after backoff and retry
  /// without a cap; if every replica is gone by then, fetch_sink_result
  /// falls through to a lineage reset of the sink itself.
  void offer_sink(TaskId t) {
    if (!injector_) return;
    auto it = sink_flows_.find(t);
    if (it == sink_flows_.end()) return;
    const WorkerId src = it->second.second;
    const std::uint32_t src_inc = cluster_.worker(src).incarnation;
    const std::uint64_t bytes = file(graph_.task(t).output_file).size;
    injector_->offer_transfer(it->second.first, bytes,
                              [this, t, src, src_inc, bytes] {
      sink_flows_.erase(t);
      if (worker_current(src, src_inc)) {
        unpin_file(src, graph_.task(t).output_file);
      }
      txn_xfer_failed(cluster_.worker_endpoint(src),
                      cluster_.manager_endpoint(),
                      graph_.task(t).output_file, bytes);
      const Tick delay =
          injector_->backoff_delay(sink_backoff_.next_attempt(t));
      engine_.schedule_after(delay, [this, t] {
        if (!finished_ && sink_fetched_[static_cast<std::size_t>(t)] == 0) {
          fetch_sink_result(t);
        }
      });
    });
  }

  void on_sink_fetched(TaskId t) {
    if (sink_fetched_[static_cast<std::size_t>(t)] != 0) return;
    sink_fetched_[static_cast<std::size_t>(t)] = 1;
    assert(sinks_outstanding_ > 0);
    --sinks_outstanding_;
    check_completion();
  }

  void check_completion() {
    if (finished_) return;
    if (table_.all_done() && sinks_outstanding_ == 0) {
      finished_ = true;
      report_.success = true;
      report_.makespan = engine_.now();
      for (TaskId sink : graph_.sinks()) {
        report_.results[sink] = table_.at(sink).result;
      }
      cluster_.batch().drain();
    }
  }

  // ---------------------------------------------------------------------
  // Serverless library lifecycle.
  // ---------------------------------------------------------------------
  void install_library(WorkerId w) {
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    rt.lib = LibState::kInstalling;
    if (txn_on()) obs_->txn().library_sent(engine_.now(), w);
    const std::uint32_t incarnation = cluster_.worker(w).incarnation;
    auto continue_install = [this, w, incarnation](bool ok) {
      if (!worker_current(w, incarnation) || !ok) return;
      library_startup(w, incarnation);
    };
    if (env_file_ != data::kInvalidFile) {
      stage_file(env_file_, w, continue_install);
    } else {
      continue_install(true);
    }
  }

  void library_startup(WorkerId w, std::uint32_t incarnation) {
    const auto& py = options_.python;
    const Tick interpreter = py.interpreter_startup;
    if (options_.hoist_imports) {
      if (options_.env_from_shared_fs) {
        engine_.schedule_after(interpreter, [this, w, incarnation] {
          if (!worker_current(w, incarnation)) return;
          cluster_.fs().metadata_ops(
              options_.imports.total_metadata_ops(),
              [this, w, incarnation] {
                if (!worker_current(w, incarnation)) return;
                fs_gate_.submit([this, w,
                                 incarnation](net::FlowGate::SlotToken slot) {
                  if (!worker_current(w, incarnation)) return;
                  const std::uint64_t code =
                      options_.imports.total_code_bytes();
                  cluster_.read_fs_to_worker(
                      w, code,
                      [this, w, incarnation, code, slot = std::move(slot)] {
                        if (!worker_current(w, incarnation)) return;
                        record_transfer(cluster_.fs_endpoint(),
                                        cluster_.worker_endpoint(w), code);
                        engine_.schedule_after(
                            options_.imports.total_cpu_cost(),
                            [this, w, incarnation] {
                              library_ready(w, incarnation);
                            });
                      });
                });
              });
        });
      } else {
        const Tick imports = options_.imports.import_time_local(
            cluster_.worker(w).disk.spec());
        engine_.schedule_after(interpreter + imports, [this, w, incarnation] {
          library_ready(w, incarnation);
        });
      }
    } else {
      engine_.schedule_after(interpreter, [this, w, incarnation] {
        library_ready(w, incarnation);
      });
    }
  }

  void library_ready(WorkerId w, std::uint32_t incarnation) {
    if (!worker_current(w, incarnation)) return;
    if (txn_on()) obs_->txn().library_started(engine_.now(), w);
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    rt.lib = LibState::kReady;
    auto waiting = std::move(rt.waiting_for_lib);
    rt.waiting_for_lib.clear();
    for (const Token& token : waiting) {
      if (token_valid(token)) start_exec(token, w);
    }
    pump();
  }

  [[nodiscard]] bool worker_current(WorkerId w,
                                    std::uint32_t incarnation) const {
    const auto& node = cluster_.worker(w);
    return node.alive && node.incarnation == incarnation;
  }

  // ---------------------------------------------------------------------
  // Failure plumbing.
  // ---------------------------------------------------------------------
  void release_resources(TaskId t, WorkerId w) {
    Attempt* attempt = attempt_find(t);
    if (attempt == nullptr || attempt->resources_released) return;
    attempt->resources_released = true;
    auto& node = cluster_.worker(w);
    if (node.cores_in_use > 0) node.cores_in_use -= 1;
    auto& rt = workers_rt_[static_cast<std::size_t>(w)];
    const std::uint64_t mem = graph_.task(t).spec.memory_bytes;
    rt.mem_in_use = mem > rt.mem_in_use ? 0 : rt.mem_in_use - mem;
    const std::uint64_t committed = attempt->disk_committed;
    rt.disk_committed =
        committed > rt.disk_committed ? 0 : rt.disk_committed - committed;
    if (node.alive && node.cores_free() > 0) {
      eligible_insert(w);  // touches the index with the released state
    }
    index_touch(w);  // committed bytes changed even if already eligible
    pump();
  }

  void remove_from_here(WorkerId w, TaskId t) {
    auto& here = workers_rt_[static_cast<std::size_t>(w)].here;
    here.erase(std::remove(here.begin(), here.end(), t), here.end());
  }

  /// Fail the current attempt of a dispatched/running task. Records a
  /// failed trace entry, releases worker resources, cancels any output-
  /// return flow, and (optionally) requeues the task.
  void fail_attempt(TaskId t, bool requeue) {
    const auto& st = table_.at(t);
    if (st.state != TaskState::kDispatched &&
        st.state != TaskState::kRunning) {
      return;
    }
    const WorkerId w = st.worker;

    metrics::TaskRecord rec;
    rec.task_id = t;
    rec.worker = w;
    rec.ready_at = st.ready_at;
    rec.dispatched_at = st.dispatched_at;
    rec.started_at = st.state == TaskState::kRunning ? st.started_at
                                                     : st.dispatched_at;
    rec.finished_at = engine_.now();
    rec.failed = true;
    rec.category = graph_.task(t).spec.category;
    if (txn_on()) obs_->txn().task_retrieved(engine_.now(), t, "FAILURE");
    if (trace_on() && w != cluster::kNoWorker &&
        st.state == TaskState::kRunning) {
      obs_->trace().add_span(
          lane(cluster_.worker_endpoint(w)), rec.category + " (failed)",
          rec.category, rec.started_at, rec.finished_at - rec.started_at,
          "{\"task\":" + std::to_string(t) + ",\"failed\":true}");
    }
    report_.trace.add(std::move(rec));

    if (auto it = return_flows_.find(t); it != return_flows_.end()) {
      cluster_.network().cancel_flow(it->second);
      if (w != cluster::kNoWorker) {
        txn_xfer_failed(cluster_.worker_endpoint(w),
                        cluster_.manager_endpoint(),
                        graph_.task(t).output_file,
                        graph_.task(t).spec.output_bytes);
      }
      return_flows_.erase(it);
    }
    if (w != cluster::kNoWorker) {
      release_resources(t, w);
      remove_from_here(w, t);
    }
    if (Attempt* a = attempt_find(t)) {
      record_attempt_span(t, w, *a,
                          a->exec_finished_at > 0 ? a->exec_finished_at : -1,
                          /*failed=*/true);
      unpin_attempt(*a);
      attempt_erase(t);
    }

    if (table_.at(t).attempts >= options_.max_task_retries) {
      fail_run("task " + std::to_string(t) + " (" +
               graph_.task(t).spec.category + ") exceeded " +
               std::to_string(options_.max_task_retries) + " attempts");
      return;
    }
    if (requeue) {
      table_.requeue(t, engine_.now());
    }
  }

  void fail_run(std::string reason) {
    if (finished_) return;
    finished_ = true;
    report_.success = false;
    report_.failure_reason = std::move(reason);
    report_.makespan = engine_.now();
    cluster_.batch().drain();
  }

  // ---------------------------------------------------------------------
  // Instrumentation.
  // ---------------------------------------------------------------------
  void record_transfer(std::size_t src, std::size_t dst,
                       std::uint64_t bytes) {
    report_.transfers.record(src, dst, bytes);
    if (bytes_via_manager_ != nullptr) {
      if (src == cluster_.manager_endpoint() ||
          dst == cluster_.manager_endpoint()) {
        *bytes_via_manager_ += bytes;
      } else if (src == cluster_.fs_endpoint() ||
                 dst == cluster_.fs_endpoint()) {
        *bytes_via_fs_ += bytes;
      } else {
        *bytes_peer_ += bytes;
      }
    }
  }

  void txn_xfer_start(std::size_t src, std::size_t dst, FileId f,
                      std::uint64_t bytes) {
    if (txn_on()) obs_->txn().transfer_start(engine_.now(), src, dst, f, bytes);
  }
  void txn_xfer_done(std::size_t src, std::size_t dst, FileId f,
                     std::uint64_t bytes) {
    if (txn_on()) obs_->txn().transfer_done(engine_.now(), src, dst, f, bytes);
  }
  void txn_xfer_failed(std::size_t src, std::size_t dst, FileId f,
                       std::uint64_t bytes) {
    if (txn_on()) {
      obs_->txn().transfer_failed(engine_.now(), src, dst, f, bytes);
    }
  }

  [[nodiscard]] bool txn_on() const { return obs_->txn_enabled(); }
  [[nodiscard]] bool trace_on() const { return obs_->trace_enabled(); }
  [[nodiscard]] std::int32_t lane(std::size_t endpoint) const {
    return static_cast<std::int32_t>(endpoint);
  }

  /// Capture one finished attempt into the profiler span log (and the
  /// transaction log as a SPAN line). Called from finalize_task and
  /// fail_attempt, before the Attempt record is erased.
  void record_attempt_span(TaskId t, WorkerId w, const Attempt& a,
                           Tick exec_end, bool failed) {
    obs::AttemptSpan s;
    s.task = t;
    s.attempt = a.attempt;
    s.worker = w == cluster::kNoWorker ? -1 : static_cast<std::int32_t>(w);
    s.ready_at = a.span_ready;
    s.dispatched_at = a.span_dispatched;
    s.staged_at = a.span_staged;
    s.exec_at = a.span_exec;
    s.compute_at = a.span_compute;
    s.exec_end_at = exec_end;
    s.retrieved_at = engine_.now();
    s.failed = failed;
    s.category = graph_.task(t).spec.category;
    if (txn_on()) {
      obs_->txn().span_attempt(engine_.now(), t, s.attempt, s.worker,
                               s.ready_at, s.dispatched_at, s.staged_at,
                               s.exec_at, s.compute_at, s.exec_end_at,
                               !failed, s.category);
    }
    report_.profile.add_attempt(std::move(s));
  }

  /// Arm the profiler at the start of execute(): static cluster/DAG shape
  /// plus the network span listener (worker up/down and attempt spans are
  /// recorded at their natural call sites).
  void begin_profile() {
    std::vector<std::uint32_t> cores;
    cores.reserve(cluster_.worker_count());
    for (WorkerId w = 0; w < static_cast<WorkerId>(cluster_.worker_count());
         ++w) {
      cores.push_back(cluster_.worker(w).cores);
    }
    report_.profile.set_worker_cores(std::move(cores));
    for (const auto& task : graph_.tasks()) {
      report_.profile.set_deps(task.id, task.spec.deps);
    }
    cluster_.network().set_span_listener(
        [this](Tick started, Tick ended, net::FlowId id, std::uint64_t bytes,
               std::uint64_t carried, char outcome) {
          obs::FlowSpan fs;
          fs.flow = id;
          fs.bytes = bytes;
          fs.carried = carried;
          fs.started_at = started;
          fs.ended_at = ended;
          fs.outcome = outcome;
          report_.profile.add_flow(fs);
        });
  }

  /// Seal the span log once the makespan is known, derive the attribution
  /// ledger (which replaces the legacy busy-fraction scalar), and emit the
  /// lifecycle Chrome-trace events when opted in.
  void finish_profile() {
    report_.profile.set_manager(manager_.total_busy_time(),
                                manager_.operations());
    report_.profile.set_run(report_.makespan, name_, report_.success);
    const obs::AttributionLedger ledger = obs::attribute(report_.profile);
    report_.manager_busy_fraction = ledger.manager_busy_fraction;
    assert(ledger.identity_ok());
    if (trace_on() && obs_->config().trace_lifecycle_spans) {
      obs::emit_lifecycle_trace(report_.profile, obs_->trace());
    }
  }

  void begin_observation() {
    if (!obs_->enabled()) return;

    if (txn_on()) {
      obs_->txn().manager_start(engine_.now());
      // WAITING lines fire on every waiting->ready transition; replay the
      // tasks that were already ready when the table was built (the
      // listener cannot see those).
      table_.set_ready_listener([this](TaskId t, Tick now) {
        obs_->txn().task_waiting(now, t, graph_.task(t).spec.category,
                                 table_.at(t).attempts);
      });
      for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
        const auto& st = table_.at(t);
        if (st.state == TaskState::kReady) {
          obs_->txn().task_waiting(st.ready_at, t,
                                   graph_.task(t).spec.category, st.attempts);
        }
      }
    }

    if (trace_on()) {
      obs_->trace().set_lane_name(lane(cluster_.manager_endpoint()),
                                  "manager");
      for (WorkerId w = 0;
           w < static_cast<WorkerId>(cluster_.worker_count()); ++w) {
        obs_->trace().set_lane_name(
            lane(cluster_.worker_endpoint(w)),
            "worker " + std::to_string(w));
      }
      obs_->trace().set_lane_name(lane(cluster_.fs_endpoint()), "shared-fs");
    }

    if (obs_->perf_enabled()) {
      auto& stats = obs_->stats();
      stats.gauge("tasks.total",
                  [this] { return static_cast<double>(graph_.size()); });
      stats.gauge("tasks.done", [this] {
        return static_cast<double>(table_.done_count());
      });
      stats.gauge("tasks.ready", [this] {
        return static_cast<double>(table_.ready_count());
      });
      stats.gauge("tasks.inflight", [this] {
        return static_cast<double>(attempts_live_);
      });
      stats.gauge("tasks.waiting", [this] {
        const std::size_t accounted =
            table_.done_count() + table_.ready_count() + attempts_live_;
        return accounted >= graph_.size()
                   ? 0.0
                   : static_cast<double>(graph_.size() - accounted);
      });
      stats.gauge("workers.connected", [this] {
        std::size_t n = 0;
        for (WorkerId w = 0;
             w < static_cast<WorkerId>(cluster_.worker_count()); ++w) {
          if (cluster_.worker(w).alive) ++n;
        }
        return static_cast<double>(n);
      });
      stats.gauge("workers.busy", [this] {
        std::size_t n = 0;
        for (WorkerId w = 0;
             w < static_cast<WorkerId>(cluster_.worker_count()); ++w) {
          const auto& node = cluster_.worker(w);
          if (node.alive && node.cores_in_use > 0) ++n;
        }
        return static_cast<double>(n);
      });
      stats.gauge("manager.backlog", [this] {
        return static_cast<double>(manager_.backlog());
      });
      stats.gauge("manager.ops", [this] {
        return static_cast<double>(manager_.operations());
      });
      stats.gauge("manager.busy_fraction", [this] {
        const Tick now = engine_.now();
        if (now <= 0) return 0.0;
        return std::min(1.0, static_cast<double>(manager_.total_busy_time()) /
                                 static_cast<double>(now));
      });
      stats.gauge("engine.events_executed", [this] {
        return static_cast<double>(engine_.executed());
      });
      stats.gauge("engine.events_pending", [this] {
        return static_cast<double>(engine_.pending());
      });
      stats.gauge("store.objects", [this] {
        return static_cast<double>(store_.total_objects());
      });
      stats.gauge("store.puts", [this] {
        return static_cast<double>(store_.counters().puts);
      });
      stats.gauge("store.spills", [this] {
        return static_cast<double>(store_.counters().spills);
      });
      bytes_via_manager_ = stats.counter("xfer.bytes_via_manager");
      bytes_peer_ = stats.counter("xfer.bytes_peer");
      bytes_via_fs_ = stats.counter("xfer.bytes_via_fs");
      cluster_.batch().register_stats(stats);
      cluster_.network().register_stats(stats);
      cluster_.fs().register_stats(stats);
      obs_->perf().bind(stats);
      schedule_perf_sample();
    }
  }

  void schedule_perf_sample() {
    engine_.schedule_after(obs_->config().perf_sample_interval, [this] {
      if (finished_) return;
      const Tick now = engine_.now();
      obs_->perf().sample(now, obs_->stats());
      if (trace_on()) {
        obs_->trace().add_counter(
            lane(cluster_.manager_endpoint()), "tasks inflight", now,
            static_cast<double>(attempts_live_));
        obs_->trace().add_counter(
            lane(cluster_.manager_endpoint()), "tasks done", now,
            static_cast<double>(table_.done_count()));
      }
      schedule_perf_sample();
    });
  }

  void schedule_cache_sample() {
    engine_.schedule_after(options_.cache_sample_interval, [this] {
      if (finished_) return;
      const Tick now = engine_.now();
      if (cache_sample_last_.size() < cluster_.worker_count()) {
        cache_sample_last_.assign(cluster_.worker_count(), kNoCacheSample);
      }
      for (std::uint32_t w = 0; w < cluster_.worker_count(); ++w) {
        const auto& node = cluster_.worker(static_cast<WorkerId>(w));
        if (!node.alive) continue;
        // Record only changes: an idle fleet contributes nothing per tick
        // instead of workers x samples rows, and every consumer of the
        // trace (peaks, skew, heatmap buckets) is insensitive to repeats.
        const std::uint64_t used = node.disk.used();
        if (cache_sample_last_[w] == used) continue;
        cache_sample_last_[w] = used;
        report_.cache.sample(w, now, used);
      }
      schedule_cache_sample();
    });
  }

  // ---------------------------------------------------------------------
  // Manager HA: crash handling, checkpointing, elastic factory.
  // ---------------------------------------------------------------------

  /// An injected MANAGER_CRASH landed. The crash tick and the snapshot
  /// series already sit in report_.ha; ending the run here leaves the txn
  /// log with its tail intact, which is exactly what ha::recover() replays.
  void on_manager_crash() {
    report_.ha.manager_crashed = true;
    report_.ha.crash_tick = engine_.now();
    fail_run("manager crashed (injected manager_crash fault)");
  }

  void schedule_snapshot() {
    if (!options_.ha.snapshots_enabled()) return;
    engine_.schedule_after(options_.ha.snapshot_interval, [this] {
      if (finished_) return;
      take_snapshot();
      schedule_snapshot();
    });
  }

  /// Serialize the manager's logical state (ha/snapshot.h documents what is
  /// deliberately excluded). Field order is fixed by construction so two
  /// runs that agree on state produce byte-identical snapshots; the digest
  /// lands on a SNAPSHOT txn anchor line and the serialization cost is
  /// charged to the manager's serial control loop.
  void take_snapshot() {
    ha::SnapshotBuilder b;

    b.section("run");
    b.field("tasks_total", graph_.size());
    b.field("tasks_done", table_.done_count());
    b.field("task_attempts", total_attempts_);
    b.field("lineage_resets", lineage_resets_);
    b.field("sinks_outstanding", sinks_outstanding_);
    b.field("worker_crashes", report_.worker_crashes);
    b.field("cache_evictions", report_.cache_evictions);
    b.field("cache_evicted_bytes", report_.cache_evicted_bytes);
    b.field("cache_gc_drops", report_.cache_gc_drops);
    // The dispatch round-robin cursor is real scheduler state: two
    // managers that agree on everything else but disagree on the cursor
    // dispatch the next task to different workers.
    b.field_i("rr_cursor", rr_cursor_);

    b.section("tasks");
    for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
      const auto& st = table_.at(t);
      // One compact line per task: state/attempts/worker.
      b.field_s("t" + std::to_string(t),
                std::to_string(static_cast<int>(st.state)) + "/" +
                    std::to_string(st.attempts) + "/" +
                    std::to_string(st.worker));
    }
    // Sparse task-keyed state: per-producer lineage-reset counts (the
    // poisoned-task detector's memory) and sink-gather completion bits.
    for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
      const std::uint32_t n = reset_counts_[static_cast<std::size_t>(t)];
      if (n != 0) b.field("r" + std::to_string(t), n);
    }
    for (TaskId t = 0; t < static_cast<TaskId>(graph_.size()); ++t) {
      if (is_sink_[static_cast<std::size_t>(t)] &&
          sink_fetched_[static_cast<std::size_t>(t)] != 0) {
        b.field("s" + std::to_string(t), 1);
      }
    }

    b.section("replicas");
    for (FileId f = 0; f < static_cast<FileId>(files_.size()); ++f) {
      const bool at_mgr = replicas_->at_manager(f);
      const auto holders = replicas_->holders_sorted(f);
      const std::uint32_t left =
          consumers_left_[static_cast<std::size_t>(f)];
      if (!at_mgr && holders.empty() && left == 0) continue;
      std::string v = at_mgr ? "m" : "-";
      v += "/";
      for (std::size_t i = 0; i < holders.size(); ++i) {
        if (i) v += ",";
        v += std::to_string(holders[i]);
      }
      v += "/" + std::to_string(left);
      b.field_s("f" + std::to_string(f), v);
    }

    // Peer-slot ledger + pin sets, guarded by incarnation so a recovered
    // manager never resurrects a pin against a re-matched slot.
    b.section("workers");
    for (WorkerId w = 0; w < static_cast<WorkerId>(cluster_.worker_count());
         ++w) {
      const auto& node = cluster_.worker(w);
      if (!node.alive) continue;
      const auto& rt = workers_rt_[static_cast<std::size_t>(w)];
      std::string v = "inc=" + std::to_string(node.incarnation) +
                      " out=" + std::to_string(rt.active_out) +
                      " cores=" + std::to_string(node.cores_in_use) +
                      " ser=" + std::to_string(rt.ser.bytes) + ":" +
                      std::to_string(rt.ser.charged) + " pins=";
      bool first = true;
      for (const auto& [f, n] : rt.pins) {
        if (!first) v += ",";
        first = false;
        v += std::to_string(f) + ":" + std::to_string(n);
      }
      b.field_s("w" + std::to_string(w), v);
    }

    // Node-local object store: every in-memory object (holder, bytes,
    // live refs, publication tick, holder's resident total) plus the
    // budget and lifetime counters. Files have a single holder, so file
    // id alone orders the section deterministically.
    b.section("store");
    b.field("capacity", store_.capacity());
    b.field("objects", store_.total_objects());
    b.field("puts", store_.counters().puts);
    b.field("put_bytes", store_.counters().put_bytes);
    b.field("ref_hits", store_.counters().ref_hits);
    b.field("spills", store_.counters().spills);
    b.field("spill_bytes", store_.counters().spill_bytes);
    b.field("drops", store_.counters().drops);
    for (const objstore::StoreItem& item : store_.objects()) {
      const objstore::StoreEntry& entry = item.entry;
      b.field_s("o" + std::to_string(item.file),
                "w=" + std::to_string(item.holder) +
                    " b=" + std::to_string(entry.bytes) +
                    " r=" + std::to_string(entry.refs) +
                    " t=" + std::to_string(entry.put_at) +
                    " u=" + std::to_string(store_.used(item.holder)));
    }

    b.section("flows");
    {
      // (file, worker) order, matching the historical global-map layout.
      std::vector<std::pair<FetchKey, std::uint32_t>> live_fetches;
      for (std::size_t dst = 0; dst < worker_fetches_.size(); ++dst) {
        for (const auto& [f, fetch] : worker_fetches_[dst]) {
          live_fetches.push_back({FetchKey{f, static_cast<WorkerId>(dst)},
                                  fetch.kill_retries});
        }
      }
      std::sort(live_fetches.begin(), live_fetches.end());
      for (const auto& [key, kills] : live_fetches) {
        b.field_s("fetch." + std::to_string(key.first) + "." +
                      std::to_string(key.second),
                  "kills=" + std::to_string(kills));
      }
    }
    for (const auto& [f, fw] : relay_flows_) {
      b.field_s("relay." + std::to_string(f), std::to_string(fw.second));
    }
    for (const auto& [t, flow] : return_flows_) {
      b.field_s("return." + std::to_string(t), std::to_string(flow));
    }
    for (const auto& [t, fw] : sink_flows_) {
      b.field_s("sink." + std::to_string(t), std::to_string(fw.second));
    }
    for (const auto& [f, waiters] : manager_inflight_) {
      b.field_s("mgr." + std::to_string(f),
                std::to_string(waiters.size()));
    }
    for (const auto& [f, flow] : manager_fs_flows_) {
      b.field_s("mgrfs." + std::to_string(f), std::to_string(flow));
    }
    // The throttle queue is ordered state: admission order decides which
    // fetch starts first when a gate slot frees up.
    if (!throttle_queue_.empty()) {
      std::string q;
      for (const auto& [f, w] : throttle_queue_) {
        if (!q.empty()) q += ",";
        q += std::to_string(f) + ":" + std::to_string(w);
      }
      b.field_s("throttle", q);
    }

    b.section("backoff");
    manager_fs_backoff_.for_each([&b](FileId f, std::uint32_t n) {
      b.field("fs." + std::to_string(f), n);
    });
    relay_backoff_.for_each([&b](FileId f, std::uint32_t n) {
      b.field("relay." + std::to_string(f), n);
    });
    sink_backoff_.for_each([&b](TaskId t, std::uint32_t n) {
      b.field("sink." + std::to_string(t), n);
    });

    // Unconditional (zeros without an injector): a run whose only fault
    // was the manager crash itself must snapshot byte-identically to its
    // crash-stripped recovery rerun, which has no injector at all.
    {
      const fault::InjectionStats zero;
      const fault::InjectionStats& fs =
          injector_ ? injector_->stats() : zero;
      b.section("injector");
      b.field("faults_injected", fs.faults_injected);
      b.field("worker_crashes", fs.worker_crashes);
      b.field("cache_losses", fs.cache_losses);
      b.field("cache_loss_noops", fs.cache_loss_noops);
      b.field("transfers_killed", fs.transfers_killed);
      b.field("fs_degradations", fs.fs_degradations);
      b.field("stragglers", fs.stragglers);
      b.field("manager_crashes", fs.manager_crashes);
      b.field("transfer_retries", fs.transfer_retries);
      b.field("transfer_giveups", fs.transfer_giveups);
      b.field("backoff_wait", static_cast<std::uint64_t>(fs.backoff_wait));
      b.field("fs_degraded_time",
              static_cast<std::uint64_t>(fs.fs_degraded_time));
    }

    b.section("rng");
    b.field_rng("vine_run", rng_.state());

    ha::SnapshotRecord rec = b.finish(engine_.now(), snapshot_seq_++);
    manager_.acquire(options_.ha.snapshot_cost(rec.bytes));
    if (txn_on()) {
      obs_->txn().snapshot_write(engine_.now(), rec.seq, rec.bytes,
                                 rec.digest);
    }
    report_.ha.snapshots.push_back(std::move(rec));
  }

  void begin_factory() {
    if (!options_.ha.factory.enabled()) return;
    ha::Factory::Hooks hooks;
    hooks.queue_depth = [this]() -> std::size_t {
      return table_.ready_count() + attempts_live_;
    };
    hooks.connected_workers = [this] { return cluster_.alive_workers(); };
    hooks.grow = [this](std::uint32_t n) {
      return cluster_.batch().start_slots(n);
    };
    hooks.shrink = [this](std::uint32_t n) {
      return release_idle_workers(n);
    };
    factory_ = std::make_unique<ha::Factory>(engine_, options_.ha.factory,
                                             std::move(hooks));
    factory_->start();
  }

  /// Factory shrink: voluntarily release up to `n` idle workers — alive,
  /// running nothing, sourcing no peer transfer. Highest ids go first so
  /// the stable low-id core of the pool keeps its warm caches.
  std::uint32_t release_idle_workers(std::uint32_t n) {
    std::uint32_t released = 0;
    for (WorkerId w = static_cast<WorkerId>(cluster_.worker_count()) - 1;
         w >= 0 && released < n; --w) {
      const auto& node = cluster_.worker(w);
      if (!node.alive || node.cores_in_use > 0) continue;
      const auto& rt = workers_rt_[static_cast<std::size_t>(w)];
      if (rt.active_out > 0 || !rt.here.empty()) continue;
      pending_release_[static_cast<std::size_t>(w)] = true;
      if (cluster_.batch().release_slot(static_cast<std::uint32_t>(w))) {
        ++released;
      } else {
        pending_release_[static_cast<std::size_t>(w)] = false;
      }
    }
    return released;
  }

  // ---------------------------------------------------------------------
  const dag::TaskGraph& graph_;
  cluster::Cluster& cluster_;
  sim::Engine& engine_;
  const exec::RunOptions options_;
  const DataPolicy policy_;
  const VineTunables tun_;
  const std::string name_;

  exec::TaskStateTable table_;
  sim::Rng rng_;
  exec::SerialResource manager_;
  // Transfer-admission gates: the manager serves data over a bounded
  // socket set; the shared filesystem serves a bounded number of streams.
  // Their occupancy is implied by the in-flight flow sections of the
  // snapshot; the waiter queues hold closures and replay rebuilds them.
  // vine-snapshot: derived(occupancy implied by the snapshot flow sections)
  net::FlowGate mgr_gate_{64};
  // vine-snapshot: derived(occupancy implied by the snapshot flow sections)
  net::FlowGate fs_gate_{256};
  std::vector<WorkerRt> workers_rt_;
  std::vector<FileInfo> files_;
  std::unique_ptr<ReplicaTable> replicas_;
  /// Node-local object store: in-memory FunctionCall outputs exchanged by
  /// reference between colocated consumers (VineTunables::object_store).
  objstore::ObjectStore store_;
  // vine-snapshot: derived(built once from the graph before any event runs)
  std::map<std::string, FileId> function_bodies_;
  // vine-snapshot: derived(fixed at startup from RunOptions)
  FileId env_file_ = data::kInvalidFile;

  /// In-flight attempts, indexed by TaskId (null = no live attempt). Dense
  /// so the hot dispatch/completion paths are O(1) with no tree walks; the
  /// slot is freed at teardown so steady-state memory tracks concurrency,
  /// not total task count.
  std::vector<std::unique_ptr<Attempt>> attempts_;
  // vine-snapshot: derived(count of non-null attempts_ slots)
  std::size_t attempts_live_ = 0;
  /// Pending consumers per file (graph-derived; see build_file_table).
  std::vector<std::uint32_t> consumers_left_;
  std::map<FileId, std::vector<std::function<void(bool)>>> manager_inflight_;
  std::map<FileId, std::pair<net::FlowId, WorkerId>> relay_flows_;
  std::map<TaskId, net::FlowId> return_flows_;
  std::map<TaskId, std::pair<net::FlowId, WorkerId>> sink_flows_;
  std::vector<char> sink_fetched_;  // indexed by TaskId
  // vine-snapshot: derived(graph property, rebuilt at startup)
  std::vector<bool> is_sink_;

  // Fault-injection state. injector_ stays null (and every hook a no-op)
  // when RunOptions::faults is empty. The backoff ledgers feed the capped
  // exponential backoff for paths that retry without a cap; each resets on
  // success so escalation counts consecutive failures, not lifetime kills.
  std::unique_ptr<fault::FaultInjector> injector_;
  std::vector<std::uint32_t> reset_counts_;  // lineage resets per producer
  std::map<FileId, net::FlowId> manager_fs_flows_;
  fault::BackoffLedger<FileId> manager_fs_backoff_;
  fault::BackoffLedger<FileId> relay_backoff_;
  fault::BackoffLedger<TaskId> sink_backoff_;

  // Manager-HA state: the elastic factory (null unless enabled) and the
  // checkpoint sequence counter feeding SNAPSHOT txn anchors.
  // vine-snapshot: derived(sizing re-derived from queue depth each poll)
  std::unique_ptr<ha::Factory> factory_;
  std::uint64_t snapshot_seq_ = 0;

  std::shared_ptr<obs::RunObservation> obs_;
  // Workers destroyed by the run itself (disk overflow) rather than batch
  // preemption; consulted when the disconnect lands to attribute a reason.
  // vine-snapshot: derived(intent flag; the disconnect it labels is an event replay reproduces)
  std::vector<bool> pending_crash_;
  // Workers the factory is releasing voluntarily (shrink, not a fault).
  // vine-snapshot: derived(intent flag; the disconnect it labels is an event replay reproduces)
  std::vector<bool> pending_release_;
  // Perf counters (owned by the stats registry; null when perf is off).
  // vine-snapshot: derived(pointer into the stats registry, observability only)
  std::uint64_t* bytes_via_manager_ = nullptr;
  // vine-snapshot: derived(pointer into the stats registry, observability only)
  std::uint64_t* bytes_peer_ = nullptr;
  // vine-snapshot: derived(pointer into the stats registry, observability only)
  std::uint64_t* bytes_via_fs_ = nullptr;

  exec::RunReport report_;
  /// Last disk usage recorded per worker by the cache sampler (sentinel =
  /// never sampled); the sampler skips workers whose usage is unchanged.
  static constexpr std::uint64_t kNoCacheSample = ~0ull;
  // vine-snapshot: derived(trace-sampler dedup memo, observability only)
  std::vector<std::uint64_t> cache_sample_last_;
  std::size_t sinks_outstanding_ = 0;
  std::size_t total_attempts_ = 0;
  std::size_t lineage_resets_ = 0;
  WorkerId rr_cursor_ = 0;
  // Workers that are alive with at least one free core, as a bitmap over
  // worker ids (see eligible_insert/walk_eligible); the dispatch
  // round-robin scans set bits instead of every configured worker. The
  // whole dispatch index is a pure function of worker state the snapshot
  // already carries, rebuilt leaf by leaf as events touch workers.
  // vine-snapshot: derived(index over snapshotted worker state)
  std::vector<std::uint64_t> eligible_bits_;
  // vine-snapshot: derived(index over snapshotted worker state)
  std::size_t eligible_count_ = 0;
  // vine-snapshot: derived(index over snapshotted worker state)
  DispatchIndex dispatch_index_;
  // vine-snapshot: derived(index over snapshotted worker state)
  std::vector<WorkerId> index_dirty_;
  // vine-snapshot: derived(index over snapshotted worker state)
  std::vector<std::uint8_t> index_dirty_flag_;
  // vine-snapshot: derived(re-entrancy latch, always false between events)
  bool pumping_ = false;
  // vine-snapshot: derived(teardown latch; no snapshots are taken after finish)
  bool finished_ = false;

  // Scratch buffers reused across dispatches to avoid per-task allocation.
  // Locality scoring stamps loc_epoch_ per candidate instead of clearing a
  // map: a worker's score is valid only when its stamp equals the current
  // epoch, so reset between dispatches is one counter increment.
  // vine-snapshot: derived(scratch, dead between dispatches)
  std::vector<FileId> scratch_files_;
  // vine-snapshot: derived(scratch, dead between dispatches)
  std::vector<WorkerId> scratch_holders_;
  // vine-snapshot: derived(scratch, dead between dispatches)
  std::vector<std::uint64_t> loc_score_;
  // vine-snapshot: derived(scratch, dead between dispatches)
  std::vector<std::uint32_t> loc_epoch_;
  // vine-snapshot: derived(scratch, dead between dispatches)
  std::uint32_t loc_epoch_cur_ = 0;
};

}  // namespace

exec::RunReport VineScheduler::run(const dag::TaskGraph& graph,
                                   cluster::Cluster& cluster,
                                   const exec::RunOptions& options) {
  VineRun run(graph, cluster, options, policy_, tunables_, name_);
  return run.execute();
}

}  // namespace hepvine::vine
