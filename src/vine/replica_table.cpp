#include "vine/replica_table.h"

#include <algorithm>

namespace hepvine::vine {

void ReplicaTable::add(data::FileId file, cluster::WorkerId worker) {
  auto& hs = holders_[static_cast<std::size_t>(file)];
  if (std::find(hs.begin(), hs.end(), worker) == hs.end()) {
    hs.push_back(worker);
    worker_files_[static_cast<std::size_t>(worker)].push_back(file);
  }
}

void ReplicaTable::remove(data::FileId file, cluster::WorkerId worker) {
  auto& hs = holders_[static_cast<std::size_t>(file)];
  hs.erase(std::remove(hs.begin(), hs.end(), worker), hs.end());
  auto& fs = worker_files_[static_cast<std::size_t>(worker)];
  fs.erase(std::remove(fs.begin(), fs.end(), file), fs.end());
}

bool ReplicaTable::on_worker(data::FileId file,
                             cluster::WorkerId worker) const {
  const auto& hs = holders_[static_cast<std::size_t>(file)];
  return std::find(hs.begin(), hs.end(), worker) != hs.end();
}

std::vector<cluster::WorkerId> ReplicaTable::holders_sorted(
    data::FileId file) const {
  std::vector<cluster::WorkerId> hs = holders_[static_cast<std::size_t>(file)];
  std::sort(hs.begin(), hs.end());
  return hs;
}

std::vector<data::FileId> ReplicaTable::drop_worker(
    cluster::WorkerId worker) {
  std::vector<data::FileId> lost;
  auto& files = worker_files_[static_cast<std::size_t>(worker)];
  for (data::FileId file : files) {
    auto& hs = holders_[static_cast<std::size_t>(file)];
    hs.erase(std::remove(hs.begin(), hs.end(), worker), hs.end());
    if (hs.empty() && !at_manager_[static_cast<std::size_t>(file)]) {
      lost.push_back(file);
    }
  }
  files.clear();
  return lost;
}

}  // namespace hepvine::vine
