file(REMOVE_RECURSE
  "CMakeFiles/hepvine_vine.dir/replica_table.cpp.o"
  "CMakeFiles/hepvine_vine.dir/replica_table.cpp.o.d"
  "CMakeFiles/hepvine_vine.dir/vine_run.cpp.o"
  "CMakeFiles/hepvine_vine.dir/vine_run.cpp.o.d"
  "libhepvine_vine.a"
  "libhepvine_vine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_vine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
