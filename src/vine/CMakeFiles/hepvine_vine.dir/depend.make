# Empty dependencies file for hepvine_vine.
# This may be replaced when dependencies are built.
