file(REMOVE_RECURSE
  "libhepvine_vine.a"
)
