// TaskVine: the task *and data* scheduler that is the paper's core system.
//
// A central manager coordinates workers granted by the batch system. The
// manager tracks every file's replicas cluster-wide (by cachename), places
// tasks where their inputs already live, instructs throttled worker-to-
// worker peer transfers for what's missing, retains task outputs on worker
// local disks, and supports two execution paradigms: standard serialized
// tasks and serverless FunctionCalls against a persistent LibraryTask
// (with optional import hoisting).
//
// The same execution engine, configured through DataPolicy, also serves as
// the Work Queue baseline (all data staged through the manager, no
// retention, no peer transfers) and as ablations (e.g. peer transfers off,
// locality off). Work Queue and TaskVine genuinely share this lineage in
// CCTools, so a shared engine with policy knobs mirrors reality.
#pragma once

#include <string>

#include "exec/scheduler.h"
#include "util/units.h"

namespace hepvine::vine {

using util::Tick;

/// Data-movement policy: what distinguishes TaskVine from Work Queue.
struct DataPolicy {
  /// Dataset inputs are staged shared-fs -> manager -> worker (Work Queue)
  /// instead of read by workers directly from the shared filesystem.
  bool inputs_via_manager = false;
  /// Task outputs stay cached on the producing worker (TaskVine). If
  /// false, outputs are shipped back to the manager and the worker's copy
  /// is deleted (Work Queue sandbox semantics).
  bool retain_outputs_on_worker = true;
  /// Direct worker->worker transfers. If false, worker-resident files are
  /// relayed through the manager.
  bool peer_transfers = true;
  /// Serialized function bodies are content-addressed cacheable files
  /// (TaskVine); if false each task re-ships its function body.
  bool cache_function_bodies = true;
  /// Locality-aware placement (prefer workers already holding inputs); if
  /// false, placement is round-robin only (ablation).
  bool locality_placement = true;
  /// Dispatch ready tasks deepest-first (DaskVine forwards Dask's
  /// depth-first priorities). The legacy Work Queue executor runs FIFO,
  /// which lets intermediates pile up during wide map phases.
  bool depth_priority = true;
  /// When a cache reservation would overflow a worker's scratch partition,
  /// evict unpinned cached files (deterministic LRU: last-use tick, file-id
  /// tiebreak) instead of letting the worker die. `crash_worker` remains
  /// for the nothing-evictable case, so disabling this knob reproduces the
  /// paper's Fig 11 overflow pathology exactly (the ablation axis).
  bool evict_on_pressure = true;
};

[[nodiscard]] inline DataPolicy taskvine_policy() { return DataPolicy{}; }

[[nodiscard]] inline DataPolicy work_queue_policy() {
  DataPolicy policy;
  policy.inputs_via_manager = true;
  policy.retain_outputs_on_worker = false;
  policy.peer_transfers = false;
  policy.cache_function_bodies = false;
  policy.locality_placement = false;
  policy.depth_priority = false;
  // Legacy Work Queue has no manager-driven cache lifecycle: a full
  // sandbox partition kills the worker, which is the baseline the Fig 11
  // comparison needs.
  policy.evict_on_pressure = false;
  return policy;
}

/// Manager-loop and protocol costs. Standard tasks carry heavyweight
/// serialized closures and per-task bookkeeping; FunctionCalls are small
/// invocation records — this asymmetry is what lets Stack 4 keep 200
/// workers busy where Stack 3 starves (paper Fig 13).
struct VineTunables {
  Tick dispatch_cost_standard = 25 * util::kMsec;
  Tick dispatch_cost_function_call = 400 * util::kUsec;
  Tick result_cost_standard = 8 * util::kMsec;
  Tick result_cost_function_call = 200 * util::kUsec;
  Tick peer_instruction_cost = 300 * util::kUsec;
  /// Use the indexed dispatch hot path: epoch-stamped dense locality
  /// scoring and the incrementally maintained disk-headroom argmax tree
  /// for the disk-tight fallback. When false, choose_worker uses the
  /// reference O(workers) scans with identical semantics — the
  /// differential suite diffs txn logs between the two byte-for-byte.
  // vine-fastpath: opt-in
  bool indexed_dispatch = true;
  /// Node-local zero-copy object store for serverless outputs (vineyard
  /// style): colocated FunctionCalls exchange outputs by reference — no
  /// serialization, no scratch-disk write — and objects spill to disk
  /// through the pin/GC/evict ladder when the per-node budget is tight or
  /// a remote consumer needs the bytes. The reference arm (store off) is
  /// the disk-backed output path the paper measures; the differential
  /// suite runs both arms and checks each replays bit-identically.
  // vine-fastpath: opt-in
  bool object_store = false;
  /// Per-node byte budget for in-memory store objects; pressure past it
  /// spills the LRU unreferenced object to the holder's scratch disk.
  std::uint64_t object_store_bytes = 4 * util::kGiB;
};

class VineScheduler final : public exec::SchedulerBackend {
 public:
  VineScheduler() = default;
  VineScheduler(DataPolicy policy, VineTunables tunables,
                std::string name = "taskvine")
      : policy_(policy), tunables_(tunables), name_(std::move(name)) {}

  [[nodiscard]] std::string name() const override { return name_; }
  [[nodiscard]] const DataPolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] const VineTunables& tunables() const noexcept {
    return tunables_;
  }

  exec::RunReport run(const dag::TaskGraph& graph, cluster::Cluster& cluster,
                      const exec::RunOptions& options) override;

 private:
  DataPolicy policy_ = taskvine_policy();
  VineTunables tunables_;
  std::string name_ = "taskvine";
};

}  // namespace hepvine::vine
