// Replica tracking: the manager's cluster-wide map of which workers hold
// which files (by cachename). This is the data structure that enables
// locality-aware placement and peer transfers (paper Section IV-B,
// "Retaining Data").
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "data/file_catalog.h"

namespace hepvine::vine {

// vine-snapshot: state
class ReplicaTable {
 public:
  ReplicaTable(std::size_t files, std::size_t workers)
      : holders_(files), at_manager_(files, false), worker_files_(workers) {}

  void add(data::FileId file, cluster::WorkerId worker);
  void remove(data::FileId file, cluster::WorkerId worker);
  void set_at_manager(data::FileId file, bool present = true) {
    at_manager_[static_cast<std::size_t>(file)] = present;
  }

  [[nodiscard]] bool at_manager(data::FileId file) const {
    return at_manager_[static_cast<std::size_t>(file)];
  }
  [[nodiscard]] bool on_worker(data::FileId file,
                               cluster::WorkerId worker) const;
  [[nodiscard]] const std::vector<cluster::WorkerId>& holders(
      data::FileId file) const {
    return holders_[static_cast<std::size_t>(file)];
  }
  /// Anywhere at all (worker or manager)?
  [[nodiscard]] bool available(data::FileId file) const {
    return at_manager(file) || !holders(file).empty();
  }
  [[nodiscard]] std::size_t replica_count(data::FileId file) const {
    return holders(file).size() +
           (at_manager(file) ? 1u : 0u);
  }

  /// `holders(file)` sorted ascending by worker id, as a copy. Lifecycle
  /// sweeps (ref-count GC, pressure eviction) iterate this instead of the
  /// insertion-ordered list so every drop order is id-deterministic — the
  /// differential suites diff transaction logs byte-for-byte.
  [[nodiscard]] std::vector<cluster::WorkerId> holders_sorted(
      data::FileId file) const;

  /// Drop every replica held by `worker` (preemption). Returns the files
  /// that lost their last replica (manager copies don't count as lost).
  std::vector<data::FileId> drop_worker(cluster::WorkerId worker);

  /// Files currently on a worker (for diagnostics/GC).
  [[nodiscard]] const std::vector<data::FileId>& files_on(
      cluster::WorkerId worker) const {
    return worker_files_[static_cast<std::size_t>(worker)];
  }

 private:
  // Small vectors: replica counts are 1-3 in practice, so linear scans win.
  std::vector<std::vector<cluster::WorkerId>> holders_;
  std::vector<bool> at_manager_;
  // vine-snapshot: derived(inverse index of holders_, maintained by the same add/remove stream)
  std::vector<std::vector<data::FileId>> worker_files_;
};

}  // namespace hepvine::vine
