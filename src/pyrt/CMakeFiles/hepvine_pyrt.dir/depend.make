# Empty dependencies file for hepvine_pyrt.
# This may be replaced when dependencies are built.
