file(REMOVE_RECURSE
  "CMakeFiles/hepvine_pyrt.dir/python_runtime.cpp.o"
  "CMakeFiles/hepvine_pyrt.dir/python_runtime.cpp.o.d"
  "libhepvine_pyrt.a"
  "libhepvine_pyrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_pyrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
