file(REMOVE_RECURSE
  "libhepvine_pyrt.a"
)
