
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pyrt/python_runtime.cpp" "src/pyrt/CMakeFiles/hepvine_pyrt.dir/python_runtime.cpp.o" "gcc" "src/pyrt/CMakeFiles/hepvine_pyrt.dir/python_runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/src/storage/CMakeFiles/hepvine_storage.dir/DependInfo.cmake"
  "/root/repo/src/util/CMakeFiles/hepvine_util.dir/DependInfo.cmake"
  "/root/repo/src/net/CMakeFiles/hepvine_net.dir/DependInfo.cmake"
  "/root/repo/src/obs/CMakeFiles/hepvine_obs.dir/DependInfo.cmake"
  "/root/repo/src/sim/CMakeFiles/hepvine_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
