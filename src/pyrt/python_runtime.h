// Cost model for the Python runtime that HEP analysis tasks run inside.
//
// The paper's Stack-4 result (tasks → serverless functions, 13x total) and
// the import-hoisting experiment (Fig 10) are entirely about per-invocation
// runtime overheads:
//   * starting a CPython interpreter for every standard task,
//   * deserializing the function body and its arguments,
//   * importing libraries — dominated by filesystem *metadata* traffic
//     (CPython stats hundreds of candidate paths per import), which is
//     cheap on a node-local disk and expensive on a shared filesystem,
//   * forking a child per serverless FunctionCall (cheap; imports are
//     inherited when hoisted into the LibraryTask preamble).
//
// This module holds the library catalog and the pure cost formulas; actual
// asynchronous interaction with the shared filesystem's metadata server is
// driven by the worker runtime in src/cluster.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/disk.h"
#include "util/units.h"

namespace hepvine::pyrt {

using util::Tick;

/// One importable Python library (or bundle of libraries).
struct LibrarySpec {
  std::string name;
  std::uint64_t code_bytes = 0;     // bytes read from disk on first import
  std::uint64_t metadata_ops = 0;   // stat/open calls issued by the import
  Tick cpu_cost = 0;                // module-level init (pure CPU)

  /// Time to import from a node-local disk, uncontended.
  [[nodiscard]] Tick import_time_local(
      const storage::DiskSpec& disk) const noexcept {
    return static_cast<Tick>(metadata_ops) * disk.op_latency +
           util::transfer_time(code_bytes, disk.read_bw) + cpu_cost;
  }
};

/// numpy: ~30 MB of shared objects, several hundred stats.
[[nodiscard]] LibrarySpec numpy_lib();
/// scipy: pulls numpy's tree plus its own.
[[nodiscard]] LibrarySpec scipy_lib();
/// The HEP stack Coffea applications import: awkward + uproot + coffea +
/// hist + friends. Large: thousands of metadata ops, ~200 MB of code.
[[nodiscard]] LibrarySpec coffea_stack();

struct PythonRuntimeSpec {
  /// Cold CPython start incl. stdlib, from a warm local disk.
  Tick interpreter_startup = 350 * util::kMsec;
  /// fork(2) + child bookkeeping for a serverless FunctionCall.
  Tick fork_cost = 3 * util::kMsec;
  /// Fixed cost of (de)serializing a function or argument object.
  Tick serialize_fixed = 2 * util::kMsec;
  /// Throughput of cloudpickle-style (de)serialization.
  double serialize_bytes_per_sec = 200e6;
  /// Size of a typical serialized processor function closure.
  std::uint64_t function_body_bytes = 256 * util::kKiB;
  /// Size of a serialized argument tuple for one task.
  std::uint64_t argument_bytes = 16 * util::kKiB;
  /// Size of the packaged software environment (conda-pack style) shipped
  /// once per worker in serverless mode.
  std::uint64_t environment_bytes = 600 * util::kMB;

  /// Zero bytes means nothing crosses the pickle boundary at all — a
  /// by-reference handoff — so no fixed cost either. cloudpickle's 2 ms
  /// floor buys nothing when there is no object to walk.
  [[nodiscard]] Tick serialize_time(std::uint64_t bytes) const noexcept {
    if (bytes == 0) return 0;
    return serialize_fixed +
           util::transfer_time(bytes, serialize_bytes_per_sec);
  }

  /// Like `serialize_time` but charges the throughput term through a
  /// per-process residue clock, so repeated sub-tick payloads (16 KiB
  /// argument tuples) sum exactly instead of losing fractional ticks to
  /// per-call round-up.
  [[nodiscard]] Tick serialize_time_acc(
      std::uint64_t bytes, util::TickAccumulator& acc) const noexcept {
    if (bytes == 0) return 0;
    return serialize_fixed + acc.charge(bytes, serialize_bytes_per_sec);
  }

  /// Cost of handing an argument tuple to a colocated FunctionCall by
  /// reference through the node-local object store: the payload never
  /// leaves process memory, so the exchange is free.
  [[nodiscard]] Tick byref_handoff_time() const noexcept {
    return serialize_time(0);
  }
};

/// Defaults tuned to the paper's cluster (2.5 GHz Xeon workers).
[[nodiscard]] PythonRuntimeSpec default_python_runtime();

/// The import list of a task/function, with total helpers.
struct ImportSet {
  std::vector<LibrarySpec> libraries;

  [[nodiscard]] std::uint64_t total_code_bytes() const noexcept;
  [[nodiscard]] std::uint64_t total_metadata_ops() const noexcept;
  [[nodiscard]] Tick total_cpu_cost() const noexcept;
  [[nodiscard]] Tick import_time_local(
      const storage::DiskSpec& disk) const noexcept;
};

/// The standard import set of the paper's Coffea applications.
[[nodiscard]] ImportSet hep_import_set();

}  // namespace hepvine::pyrt
