#include "pyrt/python_runtime.h"

namespace hepvine::pyrt {

LibrarySpec numpy_lib() {
  return LibrarySpec{"numpy", 30 * util::kMB, 600, 60 * util::kMsec};
}

LibrarySpec scipy_lib() {
  return LibrarySpec{"scipy", 80 * util::kMB, 1'400, 120 * util::kMsec};
}

LibrarySpec coffea_stack() {
  return LibrarySpec{"coffea-stack", 210 * util::kMB, 5'200,
                     900 * util::kMsec};
}

PythonRuntimeSpec default_python_runtime() { return PythonRuntimeSpec{}; }

std::uint64_t ImportSet::total_code_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lib : libraries) total += lib.code_bytes;
  return total;
}

std::uint64_t ImportSet::total_metadata_ops() const noexcept {
  std::uint64_t total = 0;
  for (const auto& lib : libraries) total += lib.metadata_ops;
  return total;
}

Tick ImportSet::total_cpu_cost() const noexcept {
  Tick total = 0;
  for (const auto& lib : libraries) total += lib.cpu_cost;
  return total;
}

Tick ImportSet::import_time_local(
    const storage::DiskSpec& disk) const noexcept {
  Tick total = 0;
  for (const auto& lib : libraries) total += lib.import_time_local(disk);
  return total;
}

ImportSet hep_import_set() {
  return ImportSet{{numpy_lib(), coffea_stack()}};
}

}  // namespace hepvine::pyrt
