// Work Queue: the baseline scheduler the paper starts from (Stack 1/2).
//
// Work Queue shares its manager/worker architecture with TaskVine (both
// come from CCTools), but moves *all* data through the manager: dataset
// inputs are staged shared-fs -> manager -> worker, task outputs are
// shipped back to the manager's disk, there are no peer transfers, and
// serialized function bodies are re-sent with every task. That
// concentration of data movement on the manager's NIC is exactly what the
// paper's Fig 7 heatmap shows (~40 GB to each worker, all via node 0) and
// what caps Stacks 1-2 at 3545s/3378s.
#pragma once

#include "vine/vine_scheduler.h"

namespace hepvine::wq {

class WorkQueueScheduler final : public exec::SchedulerBackend {
 public:
  WorkQueueScheduler()
      : engine_(vine::work_queue_policy(), vine::VineTunables{},
                "work-queue") {}

  [[nodiscard]] std::string name() const override { return "work-queue"; }

  exec::RunReport run(const dag::TaskGraph& graph, cluster::Cluster& cluster,
                      const exec::RunOptions& options) override {
    // Work Queue predates serverless execution: always standard tasks.
    exec::RunOptions opts = options;
    opts.mode = exec::ExecMode::kStandardTasks;
    opts.peer_transfer_limit = 0;
    return engine_.run(graph, cluster, opts);
  }

 private:
  vine::VineScheduler engine_;
};

}  // namespace hepvine::wq
