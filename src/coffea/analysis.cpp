#include "coffea/analysis.h"

#include <stdexcept>
#include <utility>

#include "dag/builders.h"
#include "data/dataset.h"
#include "hep/processors.h"
#include "vine/vine_scheduler.h"

namespace hepvine::coffea {

Analysis::Analysis(std::string dataset_name)
    : name_(std::move(dataset_name)) {}

Analysis& Analysis::files(std::uint32_t count, std::uint64_t bytes) {
  files_ = count;
  file_bytes_ = bytes;
  return *this;
}

Analysis& Analysis::chunks_per_file(std::uint32_t chunks) {
  chunks_per_file_ = chunks;
  return *this;
}

Analysis& Analysis::events_per_chunk(std::uint64_t events) {
  events_per_chunk_ = events;
  return *this;
}

Analysis& Analysis::processor(Processor which) {
  if (which == Processor::kDv3) {
    processor_name_ = "dv3_processor";
    processor_fn_ = [](const hep::EventChunk& chunk) {
      return hep::dv3_process(chunk);
    };
  } else {
    processor_name_ = "triphoton_processor";
    processor_fn_ = [](const hep::EventChunk& chunk) {
      return hep::triphoton_process(chunk);
    };
  }
  return *this;
}

Analysis& Analysis::processor(std::string name, ProcessorFn fn) {
  processor_name_ = std::move(name);
  processor_fn_ = std::move(fn);
  return *this;
}

Analysis& Analysis::processor_costs(double cpu_seconds,
                                    std::uint64_t output_bytes,
                                    std::uint64_t memory_bytes) {
  cpu_seconds_ = cpu_seconds;
  output_bytes_ = output_bytes;
  memory_bytes_ = memory_bytes;
  return *this;
}

Analysis& Analysis::tree_accumulate(std::size_t arity) {
  if (arity < 2) throw std::invalid_argument("accumulation arity must be >= 2");
  arity_ = arity;
  return *this;
}

Analysis& Analysis::single_accumulate() {
  arity_ = 0;
  return *this;
}

Analysis& Analysis::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

dag::TaskGraph Analysis::build() const {
  if (!processor_fn_) {
    throw std::logic_error("Analysis::processor() must be set before build()");
  }
  dag::TaskGraph graph;
  const data::DatasetSpec dataset = data::make_uniform_dataset(
      name_, files_, file_bytes_, chunks_per_file_, events_per_chunk_);
  const auto chunks = data::register_dataset(dataset, graph.catalog(), seed_);

  std::vector<dag::TaskId> partials;
  partials.reserve(chunks.size());
  for (const data::ChunkRef& chunk : chunks) {
    dag::TaskSpec task;
    task.category = "process";
    task.function = processor_name_;
    task.input_files = {chunk.file_id};
    task.cpu_seconds = cpu_seconds_;
    task.output_bytes = output_bytes_;
    task.memory_bytes = memory_bytes_;
    task.fn = [fn = processor_fn_, seed = chunk.seed,
               events = chunk.events](const std::vector<dag::ValuePtr>&) {
      auto out = std::make_shared<hep::HistogramSet>();
      *out = fn(hep::generate_chunk(seed, events));
      return out;
    };
    partials.push_back(graph.add_task(std::move(task)));
  }

  if (partials.size() > 1) {
    dag::ReduceSpec reduce;
    reduce.merge = hep::HistogramSet::merge_values;
    reduce.output_bytes_min = output_bytes_;
    reduce.output_scale = 0.0;
    if (arity_ == 0) {
      dag::add_single_reduction(graph, partials, reduce);
    } else {
      dag::add_tree_reduction(graph, partials, arity_, reduce);
    }
  }
  return graph;
}

ComputeResult Analysis::compute(const cluster::ClusterSpec& cluster_spec,
                                const exec::RunOptions& options) const {
  vine::VineScheduler scheduler;
  return compute(scheduler, cluster_spec, options);
}

ComputeResult Analysis::compute(exec::SchedulerBackend& scheduler,
                                const cluster::ClusterSpec& cluster_spec,
                                const exec::RunOptions& options) const {
  const dag::TaskGraph graph = build();
  cluster::Cluster cluster(cluster_spec);
  ComputeResult result;
  result.report = scheduler.run(graph, cluster, options);
  if (!result.report.success) {
    throw std::runtime_error("analysis '" + name_ +
                             "' failed: " + result.report.failure_reason);
  }
  result.histograms = std::dynamic_pointer_cast<const hep::HistogramSet>(
      result.report.results.begin()->second);
  if (!result.histograms) {
    throw std::runtime_error("analysis result is not a HistogramSet");
  }
  return result;
}

}  // namespace hepvine::coffea
