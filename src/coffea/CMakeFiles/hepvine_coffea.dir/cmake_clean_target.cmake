file(REMOVE_RECURSE
  "libhepvine_coffea.a"
)
