file(REMOVE_RECURSE
  "CMakeFiles/hepvine_coffea.dir/analysis.cpp.o"
  "CMakeFiles/hepvine_coffea.dir/analysis.cpp.o.d"
  "libhepvine_coffea.a"
  "libhepvine_coffea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_coffea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
