# Empty compiler generated dependencies file for hepvine_coffea.
# This may be replaced when dependencies are built.
