// Coffea/DaskVine-style front end: the C++ analogue of the paper's Fig 4
// sample application and of the DaskVine connector module (Section IV-C).
//
//   auto result = coffea::Analysis("SingleMu")
//                     .files(40, 500 * util::kMB)
//                     .chunks_per_file(5)          // Fig 4's uproot option
//                     .events_per_chunk(2000)
//                     .processor(coffea::Processor::kDv3)
//                     .tree_accumulate(8)
//                     .compute(manager_options);   // runs on TaskVine
//
// `Analysis` builds the Dask-like task graph (map processors over chunks,
// hierarchical accumulation); `compute()` hands it to a scheduler backend
// the way `manager.compute(...)` does in the paper's listing, and returns
// the fully merged HistogramSet together with the run report.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/cluster.h"
#include "dag/task_graph.h"
#include "exec/scheduler.h"
#include "hep/events.h"
#include "hep/histogram.h"

namespace hepvine::coffea {

/// Built-in processors (user-defined functions also accepted).
enum class Processor : std::uint8_t { kDv3, kTriPhoton };

/// A user-defined physics processor: chunk of events in, histograms out.
using ProcessorFn = std::function<hep::HistogramSet(const hep::EventChunk&)>;

struct ComputeResult {
  std::shared_ptr<const hep::HistogramSet> histograms;
  exec::RunReport report;
};

class Analysis {
 public:
  explicit Analysis(std::string dataset_name);

  /// Dataset shape: `count` ROOT-like files of `bytes` each.
  Analysis& files(std::uint32_t count, std::uint64_t bytes);
  /// Chunks (= tasks) per file; Fig 4's `uproot_options`.
  Analysis& chunks_per_file(std::uint32_t chunks);
  /// Real synthetic events generated and processed per chunk.
  Analysis& events_per_chunk(std::uint64_t events);
  /// Select a built-in processor...
  Analysis& processor(Processor which);
  /// ...or provide a custom one (must be pure/deterministic).
  Analysis& processor(std::string name, ProcessorFn fn);
  /// Modeled cost of one processor call (scheduling-relevant).
  Analysis& processor_costs(double cpu_seconds, std::uint64_t output_bytes,
                            std::uint64_t memory_bytes);
  /// Hierarchical accumulation with the given fan-in (default), or...
  Analysis& tree_accumulate(std::size_t arity);
  /// ...the original single-task reduction (Fig 11 left).
  Analysis& single_accumulate();
  /// Seed for dataset content and modeled costs.
  Analysis& seed(std::uint64_t seed);

  /// Build the task graph without executing (inspection/testing).
  [[nodiscard]] dag::TaskGraph build() const;

  /// Execute on a fresh simulated cluster with the TaskVine scheduler
  /// (Fig 4's `manager.compute(...)`). Throws std::runtime_error if the
  /// run fails.
  [[nodiscard]] ComputeResult compute(const cluster::ClusterSpec& cluster,
                                      const exec::RunOptions& options) const;

  /// Execute with an explicit scheduler backend (baselines, ablations).
  [[nodiscard]] ComputeResult compute(exec::SchedulerBackend& scheduler,
                                      const cluster::ClusterSpec& cluster,
                                      const exec::RunOptions& options) const;

 private:
  std::string name_;
  std::uint32_t files_ = 10;
  std::uint64_t file_bytes_ = 400 * util::kMB;
  std::uint32_t chunks_per_file_ = 5;
  std::uint64_t events_per_chunk_ = 1000;
  std::string processor_name_ = "dv3_processor";
  ProcessorFn processor_fn_;
  double cpu_seconds_ = 3.5;
  std::uint64_t output_bytes_ = 50 * util::kMB;
  std::uint64_t memory_bytes_ = 2 * util::kGB;
  std::size_t arity_ = 8;  // 0 = single-node reduction
  std::uint64_t seed_ = 42;
};

}  // namespace hepvine::coffea
