#include "sim/engine.h"

#include <utility>

namespace hepvine::sim {

Engine::EventHandle Engine::schedule_at(Tick at, Callback fn) {
  if (at < now_) at = now_;
  maybe_purge_cancelled();
  auto rec = std::make_shared<EventHandle::Record>();
  rec->fn = std::move(fn);
  rec->cancel_counter = &cancelled_pending_;
  queue_.push(QueueEntry{at, next_seq_++, rec});
  return EventHandle(std::move(rec));
}

void Engine::maybe_purge_cancelled() {
  if (cancelled_pending_ < 4096 || cancelled_pending_ * 2 < queue_.size()) {
    return;
  }
  std::vector<QueueEntry> live;
  live.reserve(queue_.size() - cancelled_pending_);
  while (!queue_.empty()) {
    if (!queue_.top().rec->cancelled) live.push_back(queue_.top());
    queue_.pop();
  }
  for (auto& entry : live) queue_.push(std::move(entry));
  cancelled_pending_ = 0;
}

bool Engine::step() {
  while (!queue_.empty()) {
    QueueEntry entry = queue_.top();
    queue_.pop();
    if (entry.rec->cancelled) {
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;
    }
    now_ = entry.at;
    entry.rec->fired = true;
    ++executed_;
    // Move the callback out so captured state is released promptly even if
    // the handle outlives the event.
    Callback fn = std::move(entry.rec->fn);
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

std::size_t Engine::run_until(Tick deadline) {
  std::size_t fired = 0;
  while (!queue_.empty()) {
    // Skip cancelled entries without advancing time.
    if (queue_.top().rec->cancelled) {
      queue_.pop();
      if (cancelled_pending_ > 0) --cancelled_pending_;
      continue;
    }
    if (queue_.top().at > deadline) break;
    if (step()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace hepvine::sim
