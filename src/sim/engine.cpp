#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace hepvine::sim {

void Engine::enqueue(Tick at, std::uint64_t seq, std::uint32_t slot) {
  arena_->slot(slot).live_seq = seq;
  if (at == now_) {
    bucket_.push_back(QueueEntry{at, seq, slot});
    return;
  }
  heap_.push_back(QueueEntry{at, seq, slot});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Engine::EventHandle Engine::schedule_at(Tick at, Callback fn) {
  if (at < now_) at = now_;
  maybe_purge_cancelled();
  const std::uint32_t slot = arena_->allocate(std::move(fn));
  const std::uint32_t gen = arena_->slot(slot).gen;
  enqueue(at, next_seq_++, slot);
  return EventHandle(arena_, slot, gen);
}

std::vector<Engine::EventHandle> Engine::schedule_many(
    Tick at, std::vector<Callback> fns) {
  if (at < now_) at = now_;
  maybe_purge_cancelled();
  std::vector<EventHandle> handles;
  handles.reserve(fns.size());
  // Large future-tick batches: append then one O(n) re-heapify instead of
  // per-event sifts. Heap layout never affects pop order — every entry has
  // a distinct (at, seq), so the pop sequence is the unique sorted order.
  const bool bulk_heap = at != now_ && fns.size() >= 64;
  for (auto& fn : fns) {
    const std::uint32_t slot = arena_->allocate(std::move(fn));
    const std::uint32_t gen = arena_->slot(slot).gen;
    const std::uint64_t seq = next_seq_++;
    if (bulk_heap) {
      arena_->slot(slot).live_seq = seq;
      heap_.push_back(QueueEntry{at, seq, slot});
    } else {
      enqueue(at, seq, slot);
    }
    handles.emplace_back(EventHandle(arena_, slot, gen));
  }
  if (bulk_heap) std::make_heap(heap_.begin(), heap_.end(), Later{});
  return handles;
}

void Engine::purge_cancelled_now() {
  auto dead = [this](const QueueEntry& entry) {
    const auto& s = arena_->slot(entry.slot);
    if (entry.seq != s.live_seq) return true;  // superseded; slot lives on
    if (!s.cancelled) return false;
    arena_->release(entry.slot);
    return true;
  };
  heap_.erase(std::remove_if(heap_.begin(), heap_.end(), dead), heap_.end());
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  bucket_.erase(bucket_.begin(),
                bucket_.begin() + static_cast<std::ptrdiff_t>(bucket_head_));
  bucket_head_ = 0;
  // remove_if is stable, so surviving bucket entries keep FIFO order.
  bucket_.erase(std::remove_if(bucket_.begin(), bucket_.end(), dead),
                bucket_.end());
  arena_->cancelled_pending = 0;
}

Engine::QueueEntry Engine::pop_next() {
  // Heap entries at the current tick always precede bucket entries (their
  // seqs are smaller; see enqueue()), so the bucket drains only when the
  // heap has nothing due at now().
  const bool bucket_live = bucket_head_ < bucket_.size();
  if (bucket_live && (heap_.empty() || heap_.front().at > now_)) {
    QueueEntry entry = bucket_[bucket_head_++];
    if (bucket_head_ == bucket_.size()) {
      bucket_.clear();
      bucket_head_ = 0;
    }
    return entry;
  }
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  QueueEntry entry = heap_.back();
  heap_.pop_back();
  return entry;
}

bool Engine::step() {
  while (pending() > 0) {
    const QueueEntry entry = pop_next();
    auto& slot = arena_->slot(entry.slot);
    // Superseded by a reschedule: a newer entry owns this slot. Discard
    // without firing and without releasing.
    if (entry.seq != slot.live_seq) {
      if (arena_->cancelled_pending > 0) --arena_->cancelled_pending;
      continue;
    }
    if (slot.cancelled) {
      if (arena_->cancelled_pending > 0) --arena_->cancelled_pending;
      arena_->release(entry.slot);
      continue;
    }
    now_ = entry.at;
    ++executed_;
    // Move the callback out and recycle the slot before running, so
    // captured state is released promptly even if the handle outlives the
    // event and the slot is immediately reusable by callbacks it runs.
    Callback fn = std::move(slot.fn);
    arena_->release(entry.slot);
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

std::size_t Engine::run_until(Tick deadline) {
  std::size_t fired = 0;
  while (pending() > 0) {
    const bool bucket_live = bucket_head_ < bucket_.size();
    if (bucket_live && (heap_.empty() || heap_.front().at > now_)) {
      // Bucket entries are due at now(); fire them only inside the window.
      if (now_ > deadline) break;
      if (step()) ++fired;
      continue;
    }
    // Skip cancelled and superseded heap entries without advancing time.
    {
      const QueueEntry& front = heap_.front();
      const auto& s = arena_->slot(front.slot);
      if (front.seq != s.live_seq) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        heap_.pop_back();  // stale reschedule leftover; slot lives on
        if (arena_->cancelled_pending > 0) --arena_->cancelled_pending;
        continue;
      }
      if (s.cancelled) {
        std::pop_heap(heap_.begin(), heap_.end(), Later{});
        arena_->release(heap_.back().slot);
        heap_.pop_back();
        if (arena_->cancelled_pending > 0) --arena_->cancelled_pending;
        continue;
      }
    }
    if (heap_.front().at > deadline) break;
    if (step()) ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

}  // namespace hepvine::sim
