// Deterministic discrete-event simulation engine.
//
// Single-threaded. Events are ordered by (time, sequence number) so runs
// with identical inputs replay identically. Events are cancellable, which
// the flow-level network model relies on: a transfer's completion event is
// rescheduled whenever bandwidth shares change.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/units.h"

namespace hepvine::sim {

using util::Tick;

class Engine {
 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Handle to a scheduled event; allows cancellation. Copyable; all copies
  /// refer to the same underlying event.
  class EventHandle {
   public:
    EventHandle() = default;

    /// Cancel the event if it has not yet fired. Safe to call repeatedly.
    void cancel() const {
      if (auto rec = rec_.lock()) {
        if (!rec->cancelled && !rec->fired) {
          rec->cancelled = true;
          if (rec->cancel_counter != nullptr) ++*rec->cancel_counter;
        }
      }
    }

    /// True if the event is still pending (not fired, not cancelled).
    [[nodiscard]] bool pending() const {
      auto rec = rec_.lock();
      return rec && !rec->cancelled && !rec->fired;
    }

   private:
    friend class Engine;
    struct Record {
      Callback fn;
      bool cancelled = false;
      bool fired = false;
      std::size_t* cancel_counter = nullptr;  // owned by the Engine
    };
    explicit EventHandle(std::shared_ptr<Record> rec) : rec_(std::move(rec)) {}
    std::weak_ptr<Record> rec_;
  };

  /// Current simulated time.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now()).
  EventHandle schedule_at(Tick at, Callback fn);

  /// Schedule `fn` to run `delay` ticks from now (delay < 0 clamps to 0).
  EventHandle schedule_after(Tick delay, Callback fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until no events remain.
  void run();

  /// Run events with time <= `deadline`; advances now() to the later of the
  /// last fired event and `deadline`. Returns the number of events fired.
  std::size_t run_until(Tick deadline);

  /// Total events executed so far (diagnostics).
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

  /// Events currently pending (including cancelled-but-not-popped ones).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct QueueEntry {
    Tick at = 0;
    std::uint64_t seq = 0;
    std::shared_ptr<EventHandle::Record> rec;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled-but-unpopped entries when they dominate the queue.
  /// Heavy users (the flow network) cancel and reschedule completion
  /// events constantly; without compaction those tombstones accumulate.
  void maybe_purge_cancelled();

  Tick now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
  std::size_t cancelled_pending_ = 0;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, Later> queue_;
};

}  // namespace hepvine::sim
