// Deterministic discrete-event simulation engine.
//
// Single-threaded. Events are ordered by (time, sequence number) so runs
// with identical inputs replay identically. Events are cancellable, which
// the flow-level network model relies on: a transfer's completion event is
// rescheduled whenever bandwidth shares change.
//
// Hot-path layout: event records live in a slab/free-list arena instead of
// one heap allocation per event. Handles address events by (slot index,
// generation); the generation is bumped every time a slot is recycled, so
// a stale handle to a fired or purged event can never touch its slot's new
// occupant. Pending events sit either in a hand-rolled binary heap (future
// ticks) or in a FIFO "now bucket" (events scheduled for the current tick)
// that is drained before time advances — same-tick completion bursts cost
// O(1) per event instead of a heap round-trip. Both containers pop in
// strict (at, seq) order, so the firing sequence is bit-identical to the
// single priority-queue implementation this replaces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/units.h"

namespace hepvine::sim {

using util::Tick;

// vine-snapshot: state
class Engine {
 private:
  /// Slab-allocated event records. Slots are recycled through a free list;
  /// each recycle bumps the slot's generation so outstanding handles go
  /// inert instead of aliasing the new occupant. A 32-bit generation would
  /// need four billion reuses of one slot while a stale handle to it
  /// survives before a false match — not a realistic hazard here.
  struct EventArena {
    using Callback = std::function<void()>;
    static constexpr std::uint32_t kChunkShift = 12;  // 4096 slots per slab
    static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

    struct Slot {
      Callback fn;
      /// Seq of the queue entry that currently owns this slot. A
      /// reschedule enqueues a fresh entry for the same slot; older
      /// entries see a seq mismatch at pop time and are discarded without
      /// firing or releasing (the slot still belongs to the new entry).
      std::uint64_t live_seq = 0;
      std::uint32_t gen = 0;
      bool cancelled = false;
    };

    std::vector<std::unique_ptr<Slot[]>> chunks;
    std::vector<std::uint32_t> free_slots;
    /// Cancelled events still sitting in a queue (tombstones).
    std::size_t cancelled_pending = 0;

    [[nodiscard]] Slot& slot(std::uint32_t idx) noexcept {
      return chunks[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }
    [[nodiscard]] const Slot& slot(std::uint32_t idx) const noexcept {
      return chunks[idx >> kChunkShift][idx & (kChunkSize - 1)];
    }

    [[nodiscard]] std::uint32_t allocate(Callback fn) {
      if (free_slots.empty()) grow();
      const std::uint32_t idx = free_slots.back();
      free_slots.pop_back();
      slot(idx).fn = std::move(fn);
      return idx;
    }

    /// Return a slot to the free list (after firing or tombstone pop).
    /// Bumping the generation here is what invalidates stale handles.
    void release(std::uint32_t idx) {
      Slot& s = slot(idx);
      s.fn = nullptr;
      s.cancelled = false;
      ++s.gen;
      free_slots.push_back(idx);
    }

    void grow() {
      const auto base =
          static_cast<std::uint32_t>(chunks.size()) << kChunkShift;
      chunks.push_back(std::make_unique<Slot[]>(kChunkSize));
      free_slots.reserve(free_slots.size() + kChunkSize);
      // Reverse order so the lowest index pops first (cosmetic only:
      // allocation order never affects event firing order).
      for (std::uint32_t i = kChunkSize; i-- > 0;) {
        free_slots.push_back(base + i);
      }
    }
  };

 public:
  using Callback = std::function<void()>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Handle to a scheduled event; allows cancellation. Copyable; all copies
  /// refer to the same underlying event. Safe to hold across engine
  /// destruction (goes inert) and across slot reuse (generation mismatch).
  class EventHandle {
   public:
    EventHandle() = default;

    /// Cancel the event if it has not yet fired. Safe to call repeatedly.
    void cancel() const {
      auto arena = arena_.lock();
      if (!arena) return;
      auto& s = arena->slot(slot_);
      if (s.gen != gen_ || s.cancelled) return;
      s.cancelled = true;
      ++arena->cancelled_pending;
    }

    /// True if the event is still pending (not fired, not cancelled).
    [[nodiscard]] bool pending() const {
      auto arena = arena_.lock();
      if (!arena) return false;
      const auto& s = arena->slot(slot_);
      return s.gen == gen_ && !s.cancelled;
    }

   private:
    friend class Engine;
    EventHandle(std::weak_ptr<EventArena> arena, std::uint32_t slot,
                std::uint32_t gen)
        : arena_(std::move(arena)), slot_(slot), gen_(gen) {}
    std::weak_ptr<EventArena> arena_;
    std::uint32_t slot_ = 0;
    std::uint32_t gen_ = 0;
  };

  /// Current simulated time.
  [[nodiscard]] Tick now() const noexcept { return now_; }

  /// Schedule `fn` to run at absolute time `at` (clamped to now()).
  EventHandle schedule_at(Tick at, Callback fn);

  /// Schedule `fn` to run `delay` ticks from now (delay < 0 clamps to 0).
  EventHandle schedule_after(Tick delay, Callback fn) {
    return schedule_at(now_ + (delay > 0 ? delay : 0), std::move(fn));
  }

  /// Batched schedule: every callback fires at `at` (clamped to now()), in
  /// argument order. Same-tick batches land in the FIFO now-bucket with no
  /// heap traffic; future-tick batches of any size pay one heap rebuild
  /// instead of per-event sifts once the batch is large enough.
  std::vector<EventHandle> schedule_many(Tick at, std::vector<Callback> fns);

  /// Move a still-pending event to a new time, reusing its slot and its
  /// stored callback — `fn` is only consumed when the handle is no longer
  /// live (fired, cancelled, or from another engine), so callers must pass
  /// a callback behaviorally identical to the original. Consumes exactly
  /// one seq like cancel()+schedule_at, so the fired-event order is
  /// bit-identical to that pattern; what it saves is the per-reschedule
  /// std::function construction, move, and destruction — the dominant cost
  /// when the flow network re-rates hundreds of transfers per recompute.
  /// Templated on the callable for exactly that reason: the lambda is only
  /// wrapped into a std::function on the cold not-live path, so the hot
  /// path passes two words in registers. All copies of the handle refer to
  /// the moved event afterwards.
  template <typename F>
  EventHandle reschedule_at(const EventHandle& handle, Tick at, F&& fn) {
    if (at < now_) at = now_;
    maybe_purge_cancelled();
    // Arena identity via control-block comparison: no refcount traffic,
    // unlike weak_ptr::lock(). A handle from a destroyed engine keeps its
    // (expired) control block, so it can never alias a live arena's.
    if (!handle.arena_.owner_before(arena_) &&
        !arena_.owner_before(handle.arena_)) {
      const auto& s = arena_->slot(handle.slot_);
      if (s.gen == handle.gen_ && !s.cancelled) {
        // Live: hand the slot to a fresh queue entry. The superseded entry
        // goes stale (seq mismatch) and is discarded at pop or purge time —
        // it is a tombstone exactly like a cancelled entry, and must count
        // toward the purge trigger or the heap bloats with dead entries.
        ++arena_->cancelled_pending;
        enqueue(at, next_seq_++, handle.slot_);
        return handle;
      }
    }
    const std::uint32_t slot = arena_->allocate(Callback(std::forward<F>(fn)));
    const std::uint32_t gen = arena_->slot(slot).gen;
    enqueue(at, next_seq_++, slot);
    return EventHandle(arena_, slot, gen);
  }
  template <typename F>
  EventHandle reschedule_after(const EventHandle& handle, Tick delay,
                               F&& fn) {
    return reschedule_at(handle, now_ + (delay > 0 ? delay : 0),
                         std::forward<F>(fn));
  }

  /// Execute the next pending event. Returns false if the queue is empty.
  bool step();

  /// Run until no events remain.
  void run();

  /// Run events with time <= `deadline`; advances now() to the later of the
  /// last fired event and `deadline`. Returns the number of events fired.
  std::size_t run_until(Tick deadline);

  /// Total events executed so far (diagnostics).
  [[nodiscard]] std::size_t executed() const noexcept { return executed_; }

  /// Events currently pending (including cancelled-but-not-popped ones).
  [[nodiscard]] std::size_t pending() const noexcept {
    return heap_.size() + (bucket_.size() - bucket_head_);
  }

  /// Free-list depth + live slots currently allocated (test introspection).
  [[nodiscard]] std::size_t arena_capacity() const noexcept {
    return arena_->chunks.size() * EventArena::kChunkSize;
  }

 private:
  struct QueueEntry {
    Tick at = 0;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  struct Later {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drop cancelled-but-unpopped entries when they dominate the queue.
  /// Heavy users (the flow network) cancel and reschedule completion
  /// events constantly; without compaction those tombstones accumulate.
  /// The guard is inline — it runs on every schedule — while the purge
  /// itself (in-place remove + re-heapify, O(n) against the old pop/push
  /// rebuild's O(n log n)) stays out of line.
  void maybe_purge_cancelled() {
    const std::size_t cp = arena_->cancelled_pending;
    if (cp < 4096 || cp * 2 < pending()) return;
    purge_cancelled_now();
  }
  void purge_cancelled_now();

  /// Insert one allocated slot into the right container. Same-tick events
  /// are FIFO in the bucket; their seqs are necessarily larger than any
  /// heap entry at the same tick (heap entries at tick T were scheduled
  /// while now() < T), so "bucket only when the heap has nothing at now()"
  /// preserves the global (at, seq) pop order.
  void enqueue(Tick at, std::uint64_t seq, std::uint32_t slot);

  /// Pop the next entry in (at, seq) order. Pre: pending() > 0.
  QueueEntry pop_next();

  // The event queue is deliberately NOT snapshot-bearing state: its
  // entries hold closures (they capture `this` and cannot move between
  // processes, in the simulation exactly as in the real manager), so HA
  // recovery re-executes deterministically from run start instead of
  // restoring the queue (see ha/snapshot.h). now_ rides along in every
  // snapshot via the tick stamp.
  Tick now_ = 0;
  // vine-snapshot: derived(seq order is reproduced by deterministic replay)
  std::uint64_t next_seq_ = 0;
  // vine-snapshot: derived(counter of executed events; replay recounts it)
  std::size_t executed_ = 0;
  // vine-snapshot: derived(slab of closures; unserializable by design)
  std::shared_ptr<EventArena> arena_ = std::make_shared<EventArena>();
  // vine-snapshot: derived(pending closures; replay rebuilds the queue)
  std::vector<QueueEntry> heap_;    // binary min-heap on (at, seq)
  // vine-snapshot: derived(pending closures; replay rebuilds the queue)
  std::vector<QueueEntry> bucket_;  // FIFO of events with at == now()
  // vine-snapshot: derived(cursor into bucket_, which is itself derived)
  std::size_t bucket_head_ = 0;
};

}  // namespace hepvine::sim
