# Empty dependencies file for hepvine_sim.
# This may be replaced when dependencies are built.
