file(REMOVE_RECURSE
  "libhepvine_sim.a"
)
