file(REMOVE_RECURSE
  "CMakeFiles/hepvine_sim.dir/engine.cpp.o"
  "CMakeFiles/hepvine_sim.dir/engine.cpp.o.d"
  "libhepvine_sim.a"
  "libhepvine_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
