// Deterministic pseudo-random numbers (xoshiro256**).
//
// Every stochastic component (preemption, task-time jitter, synthetic event
// generation) owns its own Rng seeded from a run seed plus a component tag,
// so adding randomness to one component never perturbs another.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string_view>

#include "util/hash.h"

namespace hepvine::sim {

// vine-snapshot: state
class Rng {
 public:
  Rng() : Rng(0xdeadbeefcafef00dULL) {}

  explicit Rng(std::uint64_t seed) { reseed(seed); }

  /// Derive a seed from a run seed and a component tag.
  Rng(std::uint64_t run_seed, std::string_view tag)
      : Rng(util::hash_combine(run_seed, util::hash_bytes(tag))) {}

  void reseed(std::uint64_t seed) {
    // Expand the seed through splitmix64 per the xoshiro authors' advice.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = util::mix64(x);
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t uniform_below(std::uint64_t n) noexcept {
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next_u64()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    uniform_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Exponential with the given mean.
  double exponential(double mean) noexcept {
    double u = uniform();
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Normal via Box-Muller (one value per call; simple and deterministic).
  double normal(double mean, double stddev) noexcept {
    double u1 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * r * std::cos(6.283185307179586 * u2);
  }

  /// Log-normal parameterized by the mean/stddev of the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Raw generator state, in xoshiro word order. A manager snapshot
  /// (ha/snapshot.h) captures this so the stream position is part of the
  /// checkpointed logical state; set_state restores it exactly.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return {s_[0], s_[1], s_[2], s_[3]};
  }

  void set_state(const std::array<std::uint64_t, 4>& words) noexcept {
    for (int i = 0; i < 4; ++i) s_[i] = words[static_cast<std::size_t>(i)];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  // vine-snapshot: serialized(state() is exported via field_rng by every writer)
  std::uint64_t s_[4] = {};
};

}  // namespace hepvine::sim
