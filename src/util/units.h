// Units and conversions shared across the simulator.
//
// Time is kept as integer microseconds (`Tick`) for exact, platform-
// independent event ordering. Data sizes are bytes in unsigned 64-bit.
// Bandwidth is bytes-per-second as double (rates are the one quantity we
// allow to be fractional; durations derived from them are rounded up so a
// transfer never finishes early).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>

namespace hepvine::util {

/// Simulated time in integer microseconds.
using Tick = std::int64_t;

inline constexpr Tick kUsec = 1;
inline constexpr Tick kMsec = 1000 * kUsec;
inline constexpr Tick kSec = 1000 * kMsec;
inline constexpr Tick kMinute = 60 * kSec;
inline constexpr Tick kHour = 60 * kMinute;

/// Convert seconds (double) to ticks, rounding to nearest microsecond.
[[nodiscard]] constexpr Tick seconds(double s) noexcept {
  return static_cast<Tick>(s * static_cast<double>(kSec) + 0.5);
}

/// Convert ticks to floating-point seconds (for reporting only).
[[nodiscard]] constexpr double to_seconds(Tick t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSec);
}

inline constexpr std::uint64_t kKB = 1000ULL;
inline constexpr std::uint64_t kMB = 1000ULL * kKB;
inline constexpr std::uint64_t kGB = 1000ULL * kMB;
inline constexpr std::uint64_t kTB = 1000ULL * kGB;

inline constexpr std::uint64_t kKiB = 1024ULL;
inline constexpr std::uint64_t kMiB = 1024ULL * kKiB;
inline constexpr std::uint64_t kGiB = 1024ULL * kMiB;

/// Bandwidth in bytes per second.
using Bandwidth = double;

/// Gigabits/second to bytes/second.
[[nodiscard]] constexpr Bandwidth gbps(double g) noexcept {
  return g * 1e9 / 8.0;
}

/// Megabytes/second to bytes/second.
[[nodiscard]] constexpr Bandwidth mbs(double m) noexcept { return m * 1e6; }

/// Time to move `bytes` at `rate`, rounded up to a whole tick (min 1 tick
/// for any nonzero payload so causality is preserved).
[[nodiscard]] inline Tick transfer_time(std::uint64_t bytes,
                                        Bandwidth rate) noexcept {
  if (bytes == 0) return 0;
  const double secs = static_cast<double>(bytes) / rate;
  const auto ticks = static_cast<Tick>(
      std::ceil(secs * static_cast<double>(kSec)));
  return ticks > 0 ? ticks : 1;
}

/// Cumulative-exact charging for repeated small transfers. Each
/// `transfer_time` call rounds up to a whole tick, so N back-to-back
/// sub-tick payloads (16 KiB argument tuples at 200 MB/s) overcharge by
/// up to N-1 ticks versus one N-times-larger transfer. The accumulator
/// applies the settle_flow residue pattern to cost charging: it tracks
/// lifetime bytes and lifetime ticks charged, and each call returns the
/// difference between the exact cumulative cost and what was already
/// charged — so any split of a byte stream sums to the same total.
// vine-snapshot: state
struct TickAccumulator {
  std::uint64_t bytes = 0;  // lifetime bytes charged through this clock
  Tick charged = 0;         // lifetime ticks returned so far

  /// Charge `b` more bytes at `rate`; returns the incremental ticks.
  [[nodiscard]] Tick charge(std::uint64_t b, Bandwidth rate) noexcept {
    if (b == 0) return 0;
    bytes += b;
    const Tick total = transfer_time(bytes, rate);
    const Tick delta = total > charged ? total - charged : 0;
    charged += delta;
    return delta;
  }
};

/// Human-readable byte count, e.g. "1.2 GB".
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Human-readable duration, e.g. "12m34.5s".
[[nodiscard]] std::string format_duration(Tick t);

}  // namespace hepvine::util
