#include "util/units.h"

#include <array>
#include <cstdio>

namespace hepvine::util {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KB", "MB",
                                                         "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1000.0 && idx + 1 < kSuffix.size()) {
    value /= 1000.0;
    ++idx;
  }
  char buf[32];
  if (idx == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kSuffix[idx]);
  }
  return buf;
}

std::string format_duration(Tick t) {
  const double total = to_seconds(t);
  char buf[48];
  if (total < 60.0) {
    std::snprintf(buf, sizeof(buf), "%.1fs", total);
  } else if (total < 3600.0) {
    const int mins = static_cast<int>(total) / 60;
    std::snprintf(buf, sizeof(buf), "%dm%04.1fs", mins,
                  total - 60.0 * mins);
  } else {
    const int hours = static_cast<int>(total) / 3600;
    const int mins = (static_cast<int>(total) % 3600) / 60;
    std::snprintf(buf, sizeof(buf), "%dh%02dm%02.0fs", hours, mins,
                  total - 3600.0 * hours - 60.0 * mins);
  }
  return buf;
}

}  // namespace hepvine::util
