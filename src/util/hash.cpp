#include "util/hash.h"

#include <array>
#include <bit>
#include <cstring>

namespace hepvine::util {

std::string Digest128::hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(32);
  for (std::uint64_t word : {hi, lo}) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(word >> shift) & 0xF]);
    }
  }
  return out;
}

std::uint64_t hash_bytes(std::string_view bytes, std::uint64_t seed) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL ^ mix64(seed);
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return mix64(h);
}

Digest128 digest128(std::string_view bytes) noexcept {
  return {hash_bytes(bytes, 0x243f6a8885a308d3ULL),
          hash_bytes(bytes, 0x13198a2e03707344ULL)};
}

Hasher& Hasher::update(std::string_view bytes) noexcept {
  a_ = hash_combine(a_, hash_bytes(bytes, 1));
  b_ = hash_combine(b_, hash_bytes(bytes, 2));
  return *this;
}

Hasher& Hasher::update_u64(std::uint64_t v) noexcept {
  a_ = hash_combine(a_, mix64(v));
  b_ = hash_combine(b_, mix64(v ^ 0xa5a5a5a5a5a5a5a5ULL));
  return *this;
}

Hasher& Hasher::update_i64(std::int64_t v) noexcept {
  return update_u64(static_cast<std::uint64_t>(v));
}

Hasher& Hasher::update_double(double v) noexcept {
  return update_u64(std::bit_cast<std::uint64_t>(v));
}

}  // namespace hepvine::util
