// Deterministic floating-point accumulation (Neumaier compensated sum).
//
// vine_lint rule VL006 (float-accum) requires that floating-point
// reductions feeding result verification go through this helper instead
// of a bare `x += y` loop. The compensation term keeps the result
// faithful to the mathematically exact sum well past the point where a
// naive accumulator has drifted, so two code paths that visit the same
// values in the same order — the contract the differential suites check —
// produce the same bits even after refactors that re-associate the loop.
//
// vine-lint: allow(float-accum) — this file is the sanctioned helper.
#pragma once

#include <cmath>
#include <initializer_list>

namespace hepvine::util {

class DetSum {
 public:
  constexpr DetSum() = default;

  /// Start from a known value (no compensation accrued yet).
  constexpr explicit DetSum(double initial) : sum_(initial) {}

  void add(double x) noexcept {
    const double t = sum_ + x;
    if (std::abs(sum_) >= std::abs(x)) {
      comp_ += (sum_ - t) + x;
    } else {
      comp_ += (x - t) + sum_;
    }
    sum_ = t;
  }

  DetSum& operator+=(double x) noexcept {
    add(x);
    return *this;
  }

  /// The compensated total.
  [[nodiscard]] double value() const noexcept { return sum_ + comp_; }

  void reset(double initial = 0.0) noexcept {
    sum_ = initial;
    comp_ = 0.0;
  }

 private:
  double sum_ = 0.0;
  double comp_ = 0.0;
};

/// One-shot compensated sum over any range of values convertible to double.
template <typename Range>
[[nodiscard]] double det_sum(const Range& values) {
  DetSum acc;
  for (const auto& v : values) acc.add(static_cast<double>(v));
  return acc.value();
}

[[nodiscard]] inline double det_sum(std::initializer_list<double> values) {
  DetSum acc;
  for (double v : values) acc.add(v);
  return acc.value();
}

}  // namespace hepvine::util
