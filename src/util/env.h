// Centralized environment access.
//
// Reading ambient process state is a determinism hazard: a run whose
// behaviour depends on an unlogged environment variable cannot be
// replayed from its transaction log alone. vine_lint rule VL002
// (ambient-entropy) therefore bans `getenv` outside util/; harness code
// that genuinely needs an env knob (bench fast-mode, txn-log capture
// paths) reads it through these helpers so every such knob is greppable
// from one choke point.
#pragma once

#include <cstdlib>
#include <string>

namespace hepvine::util {

/// Raw lookup; nullptr when unset.
[[nodiscard]] inline const char* env_cstr(const char* name) {
  return std::getenv(name);
}

/// True when the variable is set to anything but "" or "0".
[[nodiscard]] inline bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

/// The variable's value, or `fallback` when unset.
[[nodiscard]] inline std::string env_or(const char* name,
                                        const std::string& fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::string(v) : fallback;
}

}  // namespace hepvine::util
