file(REMOVE_RECURSE
  "CMakeFiles/hepvine_util.dir/hash.cpp.o"
  "CMakeFiles/hepvine_util.dir/hash.cpp.o.d"
  "CMakeFiles/hepvine_util.dir/thread_pool.cpp.o"
  "CMakeFiles/hepvine_util.dir/thread_pool.cpp.o.d"
  "CMakeFiles/hepvine_util.dir/units.cpp.o"
  "CMakeFiles/hepvine_util.dir/units.cpp.o.d"
  "libhepvine_util.a"
  "libhepvine_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepvine_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
