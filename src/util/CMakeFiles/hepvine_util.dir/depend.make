# Empty dependencies file for hepvine_util.
# This may be replaced when dependencies are built.
