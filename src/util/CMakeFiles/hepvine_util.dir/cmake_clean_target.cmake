file(REMOVE_RECURSE
  "libhepvine_util.a"
)
