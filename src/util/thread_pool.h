// Fixed-size thread pool used by benches and tests to run independent
// simulations in parallel (the simulator itself is single-threaded and
// deterministic; parallelism lives at the sweep level).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace hepvine::util {

class ThreadPool {
 public:
  /// Spawn `n` worker threads (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t n = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t size() const { return threads_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

/// Run `fn(i)` for i in [0, n) across a temporary pool and wait for all.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads = 0);

}  // namespace hepvine::util
