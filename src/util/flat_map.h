// Sorted-vector associative containers for manager hot paths.
//
// The determinism contract (DESIGN.md §5) requires every container the
// schedulers iterate to have a deterministic, platform-independent order.
// std::map satisfies that but pays a node allocation plus pointer-chasing
// per operation, which dominates the dispatch hot path at 10k workers.
// FlatMap keeps entries in one contiguous vector sorted by key: lookups
// are branch-predictable binary searches, iteration is a linear scan in
// ascending key order (vine_lint VL001-clean by construction), and the
// common hot-path mix here — lookup-heavy with clustered inserts/erases —
// never touches the allocator once capacity is warm.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

namespace hepvine::util {

/// Map from Key to Value backed by a key-sorted vector of pairs.
/// Iteration order is ascending by key — stable across runs, so txn lines
/// emitted while walking a FlatMap replay bit-identically.
///
/// Complexity: find O(log n); insert/erase O(n) worst case but O(1)
/// amortized when keys arrive clustered near the tail (task/file ids are
/// assigned monotonically, so in practice they do). References and
/// iterators invalidate on insert/erase, like vector.
template <typename Key, typename Value>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  [[nodiscard]] iterator begin() noexcept { return entries_.begin(); }
  [[nodiscard]] iterator end() noexcept { return entries_.end(); }
  [[nodiscard]] const_iterator begin() const noexcept {
    return entries_.begin();
  }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

  [[nodiscard]] iterator find(const Key& key) {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] const_iterator find(const Key& key) const {
    auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  [[nodiscard]] bool contains(const Key& key) const {
    return find(key) != entries_.end();
  }
  [[nodiscard]] std::size_t count(const Key& key) const {
    return contains(key) ? 1 : 0;
  }

  /// operator[]: insert a default Value if absent (std::map semantics).
  Value& operator[](const Key& key) {
    auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) {
      it = entries_.insert(it, value_type(key, Value{}));
    }
    return it->second;
  }

  template <typename V>
  std::pair<iterator, bool> emplace(const Key& key, V&& value) {
    auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return {it, false};
    it = entries_.insert(it, value_type(key, std::forward<V>(value)));
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    auto it = find(key);
    if (it == entries_.end()) return 0;
    entries_.erase(it);
    return 1;
  }
  iterator erase(iterator pos) { return entries_.erase(pos); }

 private:
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, const Key& k) { return e.first < k; });
  }

  std::vector<value_type> entries_;
};

/// Set of keys backed by a sorted vector; same contract as FlatMap.
template <typename Key>
class FlatSet {
 public:
  using const_iterator = typename std::vector<Key>::const_iterator;

  [[nodiscard]] bool empty() const noexcept { return keys_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return keys_.size(); }
  void clear() noexcept { keys_.clear(); }
  void reserve(std::size_t n) { keys_.reserve(n); }

  [[nodiscard]] const_iterator begin() const noexcept { return keys_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return keys_.end(); }

  [[nodiscard]] bool contains(const Key& key) const {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && *it == key;
  }

  /// Returns true if the key was inserted (absent before).
  bool insert(const Key& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return false;
    keys_.insert(it, key);
    return true;
  }

  std::size_t erase(const Key& key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return 0;
    keys_.erase(it);
    return 1;
  }

 private:
  std::vector<Key> keys_;
};

}  // namespace hepvine::util
