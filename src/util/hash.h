// Content hashing used to derive TaskVine "cachenames".
//
// TaskVine names every file in the cluster by a digest of its metadata and
// content so that replicas on different workers are interchangeable. We use
// a 128-bit mix built from two independent 64-bit lanes; it is not
// cryptographic, but collisions are vanishingly unlikely at workflow scale
// and the digest is deterministic across platforms.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace hepvine::util {

/// 128-bit digest value.
struct Digest128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Digest128&, const Digest128&) = default;
  friend auto operator<=>(const Digest128&, const Digest128&) = default;

  /// Render as 32 lowercase hex characters.
  [[nodiscard]] std::string hex() const;
};

/// splitmix64 finalizer: the standard 64-bit avalanche mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over bytes with a seed, avalanched at the end.
[[nodiscard]] std::uint64_t hash_bytes(std::string_view bytes,
                                       std::uint64_t seed = 0) noexcept;

/// Combine two 64-bit hashes order-sensitively.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// 128-bit digest of a byte string (two independent seeds).
[[nodiscard]] Digest128 digest128(std::string_view bytes) noexcept;

/// Incremental hasher for building digests out of heterogeneous fields.
class Hasher {
 public:
  Hasher() = default;
  explicit Hasher(std::uint64_t seed) : a_(mix64(seed)), b_(mix64(~seed)) {}

  Hasher& update(std::string_view bytes) noexcept;
  Hasher& update_u64(std::uint64_t v) noexcept;
  Hasher& update_i64(std::int64_t v) noexcept;
  Hasher& update_double(double v) noexcept;

  [[nodiscard]] Digest128 digest() const noexcept { return {a_, b_}; }
  [[nodiscard]] std::uint64_t digest64() const noexcept {
    return hash_combine(a_, b_);
  }

 private:
  std::uint64_t a_ = 0x6a09e667f3bcc908ULL;
  std::uint64_t b_ = 0xbb67ae8584caa73bULL;
};

}  // namespace hepvine::util
