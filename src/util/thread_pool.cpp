#include "util/thread_pool.h"

#include <algorithm>

namespace hepvine::util {

ThreadPool::ThreadPool(std::size_t n) {
  if (n == 0) {
    n = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  std::size_t threads) {
  if (n == 0) return;
  ThreadPool pool(threads == 0 ? std::min<std::size_t>(
                                     n, std::max<std::size_t>(
                                            1, std::thread::hardware_concurrency()))
                               : threads);
  std::vector<std::future<void>> futs;
  futs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futs.push_back(pool.submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futs) {
    f.get();
  }
}

}  // namespace hepvine::util
