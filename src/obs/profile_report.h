// The "where did the time go" report: ledger + critical path rendered as
// text and JSON with byte-stable formatting, shared by the vine_profile
// CLI, the bench harness and the tests so every consumer prints the same
// numbers the same way (and CI can diff the output across replays).
#pragma once

#include <string>

#include "obs/attribution.h"
#include "obs/critical_path.h"
#include "obs/span.h"

namespace hepvine::obs {

struct ProfileReport {
  AttributionLedger ledger;
  CriticalPath path;
};

/// Run both analyses over a recorded log.
[[nodiscard]] ProfileReport build_profile(const SpanLog& log);

/// Human-readable report. `top_k` limits the per-link critical-path
/// listing (head-first); 0 hides it.
[[nodiscard]] std::string profile_text(const SpanLog& log,
                                       const ProfileReport& profile,
                                       std::size_t top_k = 5);

/// Machine-readable report with stable key order and fixed float
/// formatting; bit-identical across replays of the same run.
[[nodiscard]] std::string profile_json(const SpanLog& log,
                                       const ProfileReport& profile);

}  // namespace hepvine::obs
