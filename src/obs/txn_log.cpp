#include "obs/txn_log.h"

#include <cinttypes>
#include <utility>

namespace hepvine::obs {

TxnLog::TxnLog(std::size_t ring_capacity, const std::string& path)
    : enabled_(true), capacity_(ring_capacity > 0 ? ring_capacity : 1) {
  if (!path.empty()) {
    file_ = std::fopen(path.c_str(), "w");
    if (file_ != nullptr) {
      std::fputs("# time_us SUBJECT id EVENT ...\n", file_);
      std::fputs("# time_us MANAGER 0 START|END\n", file_);
      std::fputs("# time_us TASK id WAITING category attempt\n", file_);
      std::fputs("# time_us TASK id RUNNING worker_id\n", file_);
      std::fputs("# time_us TASK id RETRIEVED|DONE reason\n", file_);
      std::fputs("# time_us WORKER id CONNECTION|DISCONNECTION reason\n",
                 file_);
      std::fputs(
          "# time_us CACHE file_id INSERT|EVICT|GC|LOST size_bytes worker\n",
          file_);
      std::fputs(
          "# time_us TRANSFER src dst file_id size_bytes START|DONE|FAILED\n",
          file_);
      std::fputs("# time_us LIBRARY worker_id SENT|STARTED\n", file_);
      std::fputs("# time_us FAULT seq KIND detail\n", file_);
      std::fputs("# time_us NET flow_id WARN detail\n", file_);
      std::fputs(
          "# time_us SPAN task ATTEMPT attempt worker ready dispatched "
          "staged exec compute exec_end SUCCESS|FAILURE category\n",
          file_);
      std::fputs("# time_us SNAPSHOT seq WRITE size_bytes digest\n", file_);
      std::fputs("# time_us RECOVER seq RESTORE|REPLAY|DONE detail\n", file_);
    }
  }
}

TxnLog::~TxnLog() {
  if (file_ != nullptr) std::fclose(file_);
}

void TxnLog::push(std::string l) {
  ++events_;
  if (file_ != nullptr) {
    std::fputs(l.c_str(), file_);
    std::fputc('\n', file_);
  }
  ring_.push_back(std::move(l));
  if (ring_.size() > capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
}

void TxnLog::line(Tick t, const char* body) {
  if (!enabled_) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " %s", t, body);
  push(buf);
}

void TxnLog::task_waiting(Tick t, std::int64_t task,
                          const std::string& category,
                          std::uint32_t attempt) {
  if (!enabled_) return;
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " TASK %" PRId64 " WAITING %s %u",
                t, task, category.empty() ? "default" : category.c_str(),
                attempt);
  push(buf);
}

void TxnLog::task_running(Tick t, std::int64_t task, std::int32_t worker) {
  if (!enabled_) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " TASK %" PRId64 " RUNNING %d", t,
                task, worker);
  push(buf);
}

void TxnLog::task_retrieved(Tick t, std::int64_t task, const char* reason) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " TASK %" PRId64 " RETRIEVED %s",
                t, task, reason);
  push(buf);
}

void TxnLog::task_done(Tick t, std::int64_t task, const char* reason) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " TASK %" PRId64 " DONE %s", t,
                task, reason);
  push(buf);
}

void TxnLog::worker_connection(Tick t, std::int32_t worker) {
  if (!enabled_) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " WORKER %d CONNECTION", t,
                worker);
  push(buf);
}

void TxnLog::worker_disconnection(Tick t, std::int32_t worker,
                                  const char* reason) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " WORKER %d DISCONNECTION %s", t,
                worker, reason);
  push(buf);
}

void TxnLog::cache_insert(Tick t, std::int32_t worker, std::int64_t file,
                          std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " CACHE %" PRId64 " INSERT %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::cache_evict(Tick t, std::int32_t worker, std::int64_t file,
                         std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " CACHE %" PRId64 " EVICT %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::cache_gc(Tick t, std::int32_t worker, std::int64_t file,
                      std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " CACHE %" PRId64 " GC %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::cache_lost(Tick t, std::int32_t worker, std::int64_t file,
                        std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " CACHE %" PRId64 " LOST %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::store_put(Tick t, std::int32_t worker, std::int64_t file,
                       std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " STORE %" PRId64 " PUT %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::store_ref(Tick t, std::int32_t worker, std::int64_t file,
                       std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " STORE %" PRId64 " REF %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::store_spill(Tick t, std::int32_t worker, std::int64_t file,
                         std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " STORE %" PRId64 " SPILL %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::store_drop(Tick t, std::int32_t worker, std::int64_t file,
                        std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " STORE %" PRId64 " DROP %" PRIu64 " %d", t, file,
                bytes, worker);
  push(buf);
}

void TxnLog::transfer_start(Tick t, std::size_t src, std::size_t dst,
                            std::int64_t file, std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " TRANSFER %zu %zu %" PRId64 " %" PRIu64 " START",
                t, src, dst, file, bytes);
  push(buf);
}

void TxnLog::transfer_done(Tick t, std::size_t src, std::size_t dst,
                           std::int64_t file, std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " TRANSFER %zu %zu %" PRId64 " %" PRIu64 " DONE", t,
                src, dst, file, bytes);
  push(buf);
}

void TxnLog::transfer_failed(Tick t, std::size_t src, std::size_t dst,
                             std::int64_t file, std::uint64_t bytes) {
  if (!enabled_) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " TRANSFER %zu %zu %" PRId64 " %" PRIu64 " FAILED",
                t, src, dst, file, bytes);
  push(buf);
}

void TxnLog::library_sent(Tick t, std::int32_t worker) {
  if (!enabled_) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " LIBRARY %d SENT", t, worker);
  push(buf);
}

void TxnLog::library_started(Tick t, std::int32_t worker) {
  if (!enabled_) return;
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " LIBRARY %d STARTED", t, worker);
  push(buf);
}

void TxnLog::fault_injected(Tick t, std::uint64_t seq, const char* kind,
                            const std::string& detail) {
  if (!enabled_) return;
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " FAULT %" PRIu64 " %s %s", t,
                seq, kind, detail.c_str());
  push(buf);
}

void TxnLog::net_warn(Tick t, std::int64_t flow, const char* detail) {
  if (!enabled_) return;
  char buf[224];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " NET %" PRId64 " WARN %s", t,
                flow, detail);
  push(buf);
}

void TxnLog::span_attempt(Tick t, std::int64_t task, std::uint32_t attempt,
                          std::int32_t worker, Tick ready, Tick dispatched,
                          Tick staged, Tick exec, Tick compute,
                          Tick exec_end, bool success,
                          const std::string& category) {
  if (!enabled_) return;
  char buf[288];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " SPAN %" PRId64 " ATTEMPT %u %d %" PRId64
                " %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64
                " %s %s",
                t, task, attempt, worker, ready, dispatched, staged, exec,
                compute, exec_end, success ? "SUCCESS" : "FAILURE",
                category.empty() ? "default" : category.c_str());
  push(buf);
}

void TxnLog::snapshot_write(Tick t, std::uint64_t seq, std::uint64_t bytes,
                            const std::string& digest) {
  if (!enabled_) return;
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "%" PRId64 " SNAPSHOT %" PRIu64 " WRITE %" PRIu64 " %s", t,
                seq, bytes, digest.c_str());
  push(buf);
}

void TxnLog::recover_phase(Tick t, std::uint64_t seq, const char* phase,
                           const std::string& detail) {
  if (!enabled_) return;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%" PRId64 " RECOVER %" PRIu64 " %s %s", t,
                seq, phase, detail.c_str());
  push(buf);
}

std::vector<std::string> TxnLog::tail() const {
  return {ring_.begin(), ring_.end()};
}

std::string TxnLog::text() const {
  std::string out;
  for (const auto& l : ring_) {
    out += l;
    out += '\n';
  }
  return out;
}

void TxnLog::flush() {
  if (file_ != nullptr) std::fflush(file_);
}

}  // namespace hepvine::obs
