// Chrome trace-event JSON exporter (chrome://tracing / Perfetto format).
//
// Renders a run as one process per endpoint — pid 0 is the manager, each
// worker gets its own pid — with task executions as complete ("X") events
// on the worker's lane and peer/manager transfers as flow arrows
// ("s"/"f" pairs) connecting source and destination lanes. Counter ("C")
// events chart time series (e.g. tasks running) in the same view.
//
// Times are simulated microseconds, which is exactly the trace format's
// native unit, so no scaling is needed and a simulated second reads as a
// second in the viewer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.h"

namespace hepvine::obs {

using util::Tick;

class ChromeTraceBuilder {
 public:
  ChromeTraceBuilder() = default;

  /// Name a lane (trace "process"): pid 0 = manager, 1..N = workers.
  void set_lane_name(std::int32_t pid, const std::string& name);

  /// Complete event: `name` ran on lane `pid` over [start, start+dur].
  void add_span(std::int32_t pid, const std::string& name,
                const std::string& category, Tick start, Tick duration,
                const std::string& args_json = {});

  /// Duration-begin ("B") event on thread `tid` of lane `pid`. Pair with
  /// add_end on the same (pid, tid); properly nested pairs render as
  /// nested spans in Perfetto. Lifecycle spans use the task id as the tid
  /// so concurrent attempts on one worker nest independently.
  void add_begin(std::int32_t pid, std::int64_t tid, const std::string& name,
                 const std::string& category, Tick start,
                 const std::string& args_json = {});

  /// Duration-end ("E") event closing the innermost open add_begin on
  /// (pid, tid).
  void add_end(std::int32_t pid, std::int64_t tid, Tick end);

  /// Flow arrow from lane `src` at `start` to lane `dst` at `end` (e.g. a
  /// peer transfer). Rendered as an arrow connecting the two lanes.
  void add_flow(std::int32_t src, std::int32_t dst, const std::string& name,
                Tick start, Tick end);

  /// Counter sample: `name` had integer `value` at time `t` on lane `pid`.
  void add_counter(std::int32_t pid, const std::string& name, Tick t,
                   double value);

  [[nodiscard]] std::size_t events() const noexcept { return events_.size(); }

  /// The complete trace as a JSON object `{"traceEvents":[...]}`.
  [[nodiscard]] std::string to_json() const;

  /// Write to_json() to `path`; returns false on I/O failure.
  bool write_file(const std::string& path) const;

  /// Escape a string for embedding in a JSON literal (no quotes added).
  [[nodiscard]] static std::string escape(const std::string& s);

 private:
  std::vector<std::string> events_;  // each a complete JSON object
  std::uint64_t next_flow_id_ = 1;
};

}  // namespace hepvine::obs
