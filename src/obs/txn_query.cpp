#include "obs/txn_query.h"

#include <cinttypes>

#include "obs/txn_log.h"
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hepvine::obs::txnq {

namespace {

// Subjects whose first operand is a numeric id, per the kTxnSubjects
// registry in obs/txn_log.h. TRANSFER lines put src/dst endpoints first,
// so their id stays 0 and fields land in `rest`.
bool subject_has_id(const std::string& s) {
  return txn_subject_registered(s) && txn_subject_id_first(s);
}

}  // namespace

std::optional<Event> parse_line(const std::string& line) {
  if (line.empty() || line[0] == '#') return std::nullopt;
  std::istringstream in(line);
  Event ev;
  std::string time_field;
  if (!(in >> time_field >> ev.subject)) return std::nullopt;
  char* end = nullptr;
  ev.t = std::strtoll(time_field.c_str(), &end, 10);
  if (end == time_field.c_str() || *end != '\0') return std::nullopt;

  if (subject_has_id(ev.subject)) {
    std::string id_field;
    if (!(in >> id_field >> ev.verb)) return std::nullopt;
    ev.id = std::strtoll(id_field.c_str(), &end, 10);
    if (end == id_field.c_str()) return std::nullopt;
  } else {
    if (!(in >> ev.verb)) return std::nullopt;
  }
  std::string field;
  while (in >> field) ev.rest.push_back(std::move(field));
  return ev;
}

std::vector<Event> parse_log(const std::string& text) {
  std::vector<Event> out;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) nl = text.size();
    if (auto ev = parse_line(text.substr(begin, nl - begin))) {
      out.push_back(std::move(*ev));
    }
    begin = nl + 1;
  }
  return out;
}

bool looks_like_txn_log(const std::string& text) {
  // Bounded scan: the header comments sit at the top and a real log has a
  // parsable event within its first lines.
  std::size_t begin = 0;
  for (int scanned = 0; scanned < 200 && begin < text.size(); ++scanned) {
    std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(begin, nl - begin);
    if (line.rfind("# time_us", 0) == 0) return true;
    if (auto ev = parse_line(line);
        ev && txn_subject_registered(ev->subject)) {
      return true;
    }
    begin = nl + 1;
  }
  return false;
}

namespace {

void apply_task_event(TaskLifetime& lt, const Event& ev) {
  lt.task = ev.id;
  if (ev.verb == "WAITING") {
    if (lt.waiting_at < 0) lt.waiting_at = ev.t;
    ++lt.attempts;
    if (!ev.rest.empty()) lt.category = ev.rest[0];
  } else if (ev.verb == "RUNNING") {
    lt.running_at = ev.t;
    if (!ev.rest.empty()) {
      lt.worker = static_cast<std::int32_t>(std::atoi(ev.rest[0].c_str()));
    }
  } else if (ev.verb == "RETRIEVED") {
    lt.retrieved_at = ev.t;
  } else if (ev.verb == "DONE") {
    lt.done_at = ev.t;
    lt.done = true;
  }
}

}  // namespace

std::optional<TaskLifetime> task_lifetime(const std::vector<Event>& events,
                                          std::int64_t id) {
  TaskLifetime lt;
  bool seen = false;
  for (const auto& ev : events) {
    if (ev.subject != "TASK" || ev.id != id) continue;
    seen = true;
    apply_task_event(lt, ev);
  }
  if (!seen) return std::nullopt;
  return lt;
}

std::map<std::int64_t, TaskLifetime> all_task_lifetimes(
    const std::vector<Event>& events) {
  std::map<std::int64_t, TaskLifetime> out;
  for (const auto& ev : events) {
    if (ev.subject != "TASK") continue;
    apply_task_event(out[ev.id], ev);
  }
  return out;
}

std::map<std::string, CategoryBreakdown> category_breakdown(
    const std::vector<Event>& events) {
  std::map<std::string, CategoryBreakdown> out;
  for (const auto& [id, lt] : all_task_lifetimes(events)) {
    if (!lt.complete()) continue;
    auto& agg = out[lt.category.empty() ? "default" : lt.category];
    agg.tasks += 1;
    agg.attempts += lt.attempts;
    agg.total_wait += lt.wait_time();
    agg.total_run += lt.run_time();
  }
  return out;
}

std::string format_lifetime(const TaskLifetime& lt) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "task %" PRId64 " (%s), %u attempt(s)\n",
                lt.task, lt.category.empty() ? "default" : lt.category.c_str(),
                lt.attempts);
  out += buf;
  auto stamp = [&](const char* label, Tick t) {
    if (t < 0) return;
    std::snprintf(buf, sizeof(buf), "  %-10s t=%.6fs\n", label,
                  util::to_seconds(t));
    out += buf;
  };
  stamp("WAITING", lt.waiting_at);
  stamp("RUNNING", lt.running_at);
  stamp("RETRIEVED", lt.retrieved_at);
  stamp("DONE", lt.done_at);
  if (lt.worker >= 0) {
    std::snprintf(buf, sizeof(buf), "  worker     %d\n", lt.worker);
    out += buf;
  }
  if (lt.complete()) {
    std::snprintf(buf, sizeof(buf),
                  "  waited %.3fs, ran %.3fs, total %.3fs\n",
                  util::to_seconds(lt.wait_time()),
                  util::to_seconds(lt.run_time()),
                  util::to_seconds(lt.done_at - lt.waiting_at));
    out += buf;
  } else {
    out += "  lifecycle incomplete (task did not reach DONE in this log)\n";
  }
  return out;
}

std::string format_breakdown(
    const std::map<std::string, CategoryBreakdown>& breakdown) {
  std::string out =
      "category        tasks attempts   mean_wait_s    mean_run_s\n";
  char buf[160];
  for (const auto& [cat, agg] : breakdown) {
    const double n = agg.tasks > 0 ? static_cast<double>(agg.tasks) : 1.0;
    std::snprintf(buf, sizeof(buf), "%-15s %5zu %8zu %13.3f %13.3f\n",
                  cat.c_str(), agg.tasks, agg.attempts,
                  util::to_seconds(agg.total_wait) / n,
                  util::to_seconds(agg.total_run) / n);
    out += buf;
  }
  return out;
}

CacheSummary cache_summary(const std::vector<Event>& events) {
  CacheSummary out;
  for (const auto& ev : events) {
    if (ev.subject != "CACHE" || ev.rest.empty()) continue;
    const auto bytes =
        static_cast<std::uint64_t>(std::strtoull(ev.rest[0].c_str(),
                                                 nullptr, 10));
    if (ev.verb == "INSERT") {
      ++out.inserts;
      out.inserted_bytes += bytes;
    } else if (ev.verb == "EVICT") {
      ++out.evictions;
      out.evicted_bytes += bytes;
    } else if (ev.verb == "GC") {
      ++out.gc_drops;
      out.gc_bytes += bytes;
    } else if (ev.verb == "LOST") {
      ++out.losses;
      out.lost_bytes += bytes;
    }
  }
  return out;
}

std::string format_cache_summary(const CacheSummary& cs) {
  std::string out = "verb     count         bytes\n";
  char buf[96];
  const auto row = [&](const char* verb, std::size_t n, std::uint64_t b) {
    std::snprintf(buf, sizeof(buf), "%-8s %5zu %13" PRIu64 "\n", verb, n, b);
    out += buf;
  };
  row("INSERT", cs.inserts, cs.inserted_bytes);
  row("EVICT", cs.evictions, cs.evicted_bytes);
  row("GC", cs.gc_drops, cs.gc_bytes);
  row("LOST", cs.losses, cs.lost_bytes);
  return out;
}

StoreSummary store_summary(const std::vector<Event>& events) {
  StoreSummary out;
  for (const auto& ev : events) {
    if (ev.subject != "STORE" || ev.rest.empty()) continue;
    const auto bytes =
        static_cast<std::uint64_t>(std::strtoull(ev.rest[0].c_str(),
                                                 nullptr, 10));
    if (ev.verb == "PUT") {
      ++out.puts;
      out.put_bytes += bytes;
    } else if (ev.verb == "REF") {
      ++out.refs;
      out.ref_bytes += bytes;
    } else if (ev.verb == "SPILL") {
      ++out.spills;
      out.spilled_bytes += bytes;
    } else if (ev.verb == "DROP") {
      ++out.drops;
      out.dropped_bytes += bytes;
    }
  }
  return out;
}

std::string format_store_summary(const StoreSummary& ss) {
  std::string out = "verb     count         bytes\n";
  char buf[96];
  const auto row = [&](const char* verb, std::size_t n, std::uint64_t b) {
    std::snprintf(buf, sizeof(buf), "%-8s %5zu %13" PRIu64 "\n", verb, n, b);
    out += buf;
  };
  row("PUT", ss.puts, ss.put_bytes);
  row("REF", ss.refs, ss.ref_bytes);
  row("SPILL", ss.spills, ss.spilled_bytes);
  row("DROP", ss.drops, ss.dropped_bytes);
  return out;
}

std::vector<SpanRecord> span_records(const std::vector<Event>& events) {
  std::vector<SpanRecord> out;
  for (const auto& ev : events) {
    if (ev.subject != "SPAN" || ev.verb != "ATTEMPT") continue;
    if (ev.rest.size() < 10) continue;
    SpanRecord sr;
    sr.task = ev.id;
    sr.retrieved = ev.t;
    sr.attempt = static_cast<std::uint32_t>(
        std::strtoul(ev.rest[0].c_str(), nullptr, 10));
    sr.worker = static_cast<std::int32_t>(std::atoi(ev.rest[1].c_str()));
    sr.ready = std::strtoll(ev.rest[2].c_str(), nullptr, 10);
    sr.dispatched = std::strtoll(ev.rest[3].c_str(), nullptr, 10);
    sr.staged = std::strtoll(ev.rest[4].c_str(), nullptr, 10);
    sr.exec = std::strtoll(ev.rest[5].c_str(), nullptr, 10);
    sr.compute = std::strtoll(ev.rest[6].c_str(), nullptr, 10);
    sr.exec_end = std::strtoll(ev.rest[7].c_str(), nullptr, 10);
    sr.success = ev.rest[8] == "SUCCESS";
    sr.category = ev.rest[9];
    out.push_back(std::move(sr));
  }
  return out;
}

ProfileRollup profile_rollup(const std::vector<SpanRecord>& spans) {
  ProfileRollup out;
  for (const auto& sr : spans) {
    ++out.attempts;
    if (!sr.success) {
      ++out.failures;
      if (sr.retrieved >= 0 && sr.dispatched >= 0) {
        out.recovery += sr.retrieved - sr.dispatched;
      }
      continue;
    }
    // Monotone clamp so a missing boundary collapses its segment to zero
    // instead of skewing a neighbour (mirrors obs::attribute).
    const Tick begin = sr.dispatched >= 0 ? sr.dispatched : 0;
    const Tick end = sr.exec_end >= begin ? sr.exec_end : begin;
    const auto clamp = [end](Tick t, Tick floor) {
      if (t < floor) return floor;
      return t < end ? t : end;
    };
    const Tick staged = clamp(sr.staged, begin);
    const Tick exec = clamp(sr.exec, staged);
    const Tick compute = clamp(sr.compute, exec);
    out.dispatch_wait += staged - begin;
    out.transfer_wait += exec - staged;
    out.import_cost += compute - exec;
    out.compute += end - compute;
  }
  return out;
}

std::vector<ChainLink> critical_chain(const std::vector<Event>& events) {
  // Final successful span per task (last record with the largest exec_end
  // wins) and each task's DONE time.
  std::map<std::int64_t, SpanRecord> finals;
  for (auto& sr : span_records(events)) {
    if (!sr.success) continue;
    auto it = finals.find(sr.task);
    if (it == finals.end() || sr.exec_end >= it->second.exec_end) {
      finals[sr.task] = std::move(sr);
    }
  }
  std::map<std::int64_t, Tick> done_at;
  // Smallest task id per DONE tick, for deterministic predecessor ties.
  std::map<Tick, std::int64_t> first_done_at_tick;
  for (const auto& ev : events) {
    if (ev.subject != "TASK" || ev.verb != "DONE") continue;
    done_at[ev.id] = ev.t;
  }
  for (const auto& [task, t] : done_at) {
    if (first_done_at_tick.find(t) == first_done_at_tick.end()) {
      first_done_at_tick[t] = task;
    }
  }

  std::vector<ChainLink> chain;
  std::int64_t head = -1;
  Tick head_finish = -1;
  for (const auto& [task, sr] : finals) {
    if (sr.exec_end > head_finish) {
      head = task;
      head_finish = sr.exec_end;
    }
  }
  if (head < 0) return chain;

  std::int64_t current = head;
  while (chain.size() <= finals.size()) {
    const SpanRecord& sr = finals.at(current);
    ChainLink link;
    link.task = current;
    link.finish = sr.exec_end;
    link.span = sr;

    // Predecessor: the task whose DONE coincides with this task's ready
    // time (the manager marks dependents ready in the same event that
    // retires the last dependency). No match means a root — or a link
    // whose readiness was gated by a retry, where the chain ends.
    std::int64_t pred = -1;
    const auto pit = first_done_at_tick.find(sr.ready);
    if (pit != first_done_at_tick.end() && pit->second != current &&
        finals.find(pit->second) != finals.end()) {
      pred = pit->second;
    }
    link.gate = sr.ready;
    chain.push_back(std::move(link));
    if (pred < 0) break;
    current = pred;
  }
  return chain;
}

std::string format_profile(const std::vector<Event>& events,
                           std::size_t top_k) {
  const auto spans = span_records(events);
  std::string out;
  char buf[256];
  if (spans.empty()) {
    return "no SPAN records in this log (produced by a pre-profiler run?)\n";
  }
  const ProfileRollup r = profile_rollup(spans);
  std::snprintf(buf, sizeof(buf),
                "attempts: %zu (%zu failed)\noccupied core time: %.3fs\n",
                r.attempts, r.failures, util::to_seconds(r.occupied()));
  out += buf;
  const double total =
      r.occupied() > 0 ? static_cast<double>(r.occupied()) : 1.0;
  const auto row = [&](const char* label, Tick t) {
    std::snprintf(buf, sizeof(buf), "  %-14s %13.3fs  %6.2f%%\n", label,
                  util::to_seconds(t),
                  100.0 * static_cast<double>(t) / total);
    out += buf;
  };
  row("compute", r.compute);
  row("import", r.import_cost);
  row("transfer-wait", r.transfer_wait);
  row("dispatch-wait", r.dispatch_wait);
  row("recovery", r.recovery);

  const auto chain = critical_chain(events);
  if (!chain.empty()) {
    const Tick length = chain.front().finish - chain.back().span.ready;
    std::snprintf(buf, sizeof(buf),
                  "critical chain: %zu links, %.3fs realized\n",
                  chain.size(), util::to_seconds(length));
    out += buf;
    const std::size_t n = top_k < chain.size() ? top_k : chain.size();
    for (std::size_t i = 0; i < n; ++i) {
      const ChainLink& link = chain[i];
      std::snprintf(buf, sizeof(buf),
                    "  task %" PRId64
                    " attempt %u worker %d ready=%.3fs exec_end=%.3fs "
                    "(fetch %.3fs, import %.3fs, compute %.3fs)\n",
                    link.task, link.span.attempt, link.span.worker,
                    util::to_seconds(link.span.ready),
                    util::to_seconds(link.span.exec_end),
                    util::to_seconds(link.span.exec >= link.span.staged
                                         ? link.span.exec - link.span.staged
                                         : 0),
                    util::to_seconds(link.span.compute >= link.span.exec
                                         ? link.span.compute - link.span.exec
                                         : 0),
                    util::to_seconds(
                        link.span.exec_end >= link.span.compute
                            ? link.span.exec_end - link.span.compute
                            : 0));
      out += buf;
    }
  }
  return out;
}

WorkerSummary worker_summary(const std::vector<Event>& events) {
  WorkerSummary out;
  for (const auto& ev : events) {
    if (ev.subject != "WORKER") continue;
    if (ev.verb == "CONNECTION") {
      ++out.connections;
    } else if (ev.verb == "DISCONNECTION") {
      const std::string reason = ev.rest.empty() ? "UNKNOWN" : ev.rest[0];
      ++out.disconnections_by_reason[reason];
    }
  }
  return out;
}

}  // namespace hepvine::obs::txnq
