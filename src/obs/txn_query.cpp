#include "obs/txn_query.h"

#include <cinttypes>

#include "obs/txn_log.h"
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hepvine::obs::txnq {

namespace {

// Subjects whose first operand is a numeric id, per the kTxnSubjects
// registry in obs/txn_log.h. TRANSFER lines put src/dst endpoints first,
// so their id stays 0 and fields land in `rest`.
bool subject_has_id(const std::string& s) {
  return txn_subject_registered(s) && txn_subject_id_first(s);
}

}  // namespace

std::optional<Event> parse_line(const std::string& line) {
  if (line.empty() || line[0] == '#') return std::nullopt;
  std::istringstream in(line);
  Event ev;
  std::string time_field;
  if (!(in >> time_field >> ev.subject)) return std::nullopt;
  char* end = nullptr;
  ev.t = std::strtoll(time_field.c_str(), &end, 10);
  if (end == time_field.c_str() || *end != '\0') return std::nullopt;

  if (subject_has_id(ev.subject)) {
    std::string id_field;
    if (!(in >> id_field >> ev.verb)) return std::nullopt;
    ev.id = std::strtoll(id_field.c_str(), &end, 10);
    if (end == id_field.c_str()) return std::nullopt;
  } else {
    if (!(in >> ev.verb)) return std::nullopt;
  }
  std::string field;
  while (in >> field) ev.rest.push_back(std::move(field));
  return ev;
}

std::vector<Event> parse_log(const std::string& text) {
  std::vector<Event> out;
  std::size_t begin = 0;
  while (begin < text.size()) {
    std::size_t nl = text.find('\n', begin);
    if (nl == std::string::npos) nl = text.size();
    if (auto ev = parse_line(text.substr(begin, nl - begin))) {
      out.push_back(std::move(*ev));
    }
    begin = nl + 1;
  }
  return out;
}

namespace {

void apply_task_event(TaskLifetime& lt, const Event& ev) {
  lt.task = ev.id;
  if (ev.verb == "WAITING") {
    if (lt.waiting_at < 0) lt.waiting_at = ev.t;
    ++lt.attempts;
    if (!ev.rest.empty()) lt.category = ev.rest[0];
  } else if (ev.verb == "RUNNING") {
    lt.running_at = ev.t;
    if (!ev.rest.empty()) {
      lt.worker = static_cast<std::int32_t>(std::atoi(ev.rest[0].c_str()));
    }
  } else if (ev.verb == "RETRIEVED") {
    lt.retrieved_at = ev.t;
  } else if (ev.verb == "DONE") {
    lt.done_at = ev.t;
    lt.done = true;
  }
}

}  // namespace

std::optional<TaskLifetime> task_lifetime(const std::vector<Event>& events,
                                          std::int64_t id) {
  TaskLifetime lt;
  bool seen = false;
  for (const auto& ev : events) {
    if (ev.subject != "TASK" || ev.id != id) continue;
    seen = true;
    apply_task_event(lt, ev);
  }
  if (!seen) return std::nullopt;
  return lt;
}

std::map<std::int64_t, TaskLifetime> all_task_lifetimes(
    const std::vector<Event>& events) {
  std::map<std::int64_t, TaskLifetime> out;
  for (const auto& ev : events) {
    if (ev.subject != "TASK") continue;
    apply_task_event(out[ev.id], ev);
  }
  return out;
}

std::map<std::string, CategoryBreakdown> category_breakdown(
    const std::vector<Event>& events) {
  std::map<std::string, CategoryBreakdown> out;
  for (const auto& [id, lt] : all_task_lifetimes(events)) {
    if (!lt.complete()) continue;
    auto& agg = out[lt.category.empty() ? "default" : lt.category];
    agg.tasks += 1;
    agg.attempts += lt.attempts;
    agg.total_wait += lt.wait_time();
    agg.total_run += lt.run_time();
  }
  return out;
}

std::string format_lifetime(const TaskLifetime& lt) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "task %" PRId64 " (%s), %u attempt(s)\n",
                lt.task, lt.category.empty() ? "default" : lt.category.c_str(),
                lt.attempts);
  out += buf;
  auto stamp = [&](const char* label, Tick t) {
    if (t < 0) return;
    std::snprintf(buf, sizeof(buf), "  %-10s t=%.6fs\n", label,
                  util::to_seconds(t));
    out += buf;
  };
  stamp("WAITING", lt.waiting_at);
  stamp("RUNNING", lt.running_at);
  stamp("RETRIEVED", lt.retrieved_at);
  stamp("DONE", lt.done_at);
  if (lt.worker >= 0) {
    std::snprintf(buf, sizeof(buf), "  worker     %d\n", lt.worker);
    out += buf;
  }
  if (lt.complete()) {
    std::snprintf(buf, sizeof(buf),
                  "  waited %.3fs, ran %.3fs, total %.3fs\n",
                  util::to_seconds(lt.wait_time()),
                  util::to_seconds(lt.run_time()),
                  util::to_seconds(lt.done_at - lt.waiting_at));
    out += buf;
  } else {
    out += "  lifecycle incomplete (task did not reach DONE in this log)\n";
  }
  return out;
}

std::string format_breakdown(
    const std::map<std::string, CategoryBreakdown>& breakdown) {
  std::string out =
      "category        tasks attempts   mean_wait_s    mean_run_s\n";
  char buf[160];
  for (const auto& [cat, agg] : breakdown) {
    const double n = agg.tasks > 0 ? static_cast<double>(agg.tasks) : 1.0;
    std::snprintf(buf, sizeof(buf), "%-15s %5zu %8zu %13.3f %13.3f\n",
                  cat.c_str(), agg.tasks, agg.attempts,
                  util::to_seconds(agg.total_wait) / n,
                  util::to_seconds(agg.total_run) / n);
    out += buf;
  }
  return out;
}

CacheSummary cache_summary(const std::vector<Event>& events) {
  CacheSummary out;
  for (const auto& ev : events) {
    if (ev.subject != "CACHE" || ev.rest.empty()) continue;
    const auto bytes =
        static_cast<std::uint64_t>(std::strtoull(ev.rest[0].c_str(),
                                                 nullptr, 10));
    if (ev.verb == "INSERT") {
      ++out.inserts;
      out.inserted_bytes += bytes;
    } else if (ev.verb == "EVICT") {
      ++out.evictions;
      out.evicted_bytes += bytes;
    } else if (ev.verb == "GC") {
      ++out.gc_drops;
      out.gc_bytes += bytes;
    } else if (ev.verb == "LOST") {
      ++out.losses;
      out.lost_bytes += bytes;
    }
  }
  return out;
}

std::string format_cache_summary(const CacheSummary& cs) {
  std::string out = "verb     count         bytes\n";
  char buf[96];
  const auto row = [&](const char* verb, std::size_t n, std::uint64_t b) {
    std::snprintf(buf, sizeof(buf), "%-8s %5zu %13" PRIu64 "\n", verb, n, b);
    out += buf;
  };
  row("INSERT", cs.inserts, cs.inserted_bytes);
  row("EVICT", cs.evictions, cs.evicted_bytes);
  row("GC", cs.gc_drops, cs.gc_bytes);
  row("LOST", cs.losses, cs.lost_bytes);
  return out;
}

WorkerSummary worker_summary(const std::vector<Event>& events) {
  WorkerSummary out;
  for (const auto& ev : events) {
    if (ev.subject != "WORKER") continue;
    if (ev.verb == "CONNECTION") {
      ++out.connections;
    } else if (ev.verb == "DISCONNECTION") {
      const std::string reason = ev.rest.empty() ? "UNKNOWN" : ev.rest[0];
      ++out.disconnections_by_reason[reason];
    }
  }
  return out;
}

}  // namespace hepvine::obs::txnq
