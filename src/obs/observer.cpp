#include "obs/observer.h"

namespace hepvine::obs {

RunObservation::RunObservation(const ObsConfig& config) : config_(config) {
  if (config_.enabled && config_.txn_log) {
    txn_ = std::make_unique<TxnLog>(config_.txn_ring_capacity,
                                    config_.txn_path);
  } else {
    txn_ = std::make_unique<TxnLog>();  // disabled no-op
  }
}

void RunObservation::finalize(Tick now) {
  if (finalized_) return;
  finalized_ = true;
  if (perf_enabled()) {
    perf_.sample(now, stats_);
    if (!config_.perf_path.empty()) perf_.write_file(config_.perf_path);
  }
  stats_.detach_gauges();
  txn_->flush();
  if (trace_enabled() && !config_.trace_path.empty()) {
    trace_.write_file(config_.trace_path);
  }
}

std::shared_ptr<RunObservation> make_observation(const ObsConfig& config) {
  return std::make_shared<RunObservation>(config);
}

}  // namespace hepvine::obs
