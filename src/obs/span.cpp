#include "obs/span.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "obs/chrome_trace.h"

namespace hepvine::obs {

namespace {

// Categories are single tokens in the .spans format; empty maps to "-" and
// embedded whitespace is folded to '_' so the line stays field-splittable.
std::string sanitize_category(const std::string& category) {
  if (category.empty()) return "-";
  std::string out = category;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

std::string restore_category(const std::string& token) {
  if (token == "-") return {};
  return token;
}

}  // namespace

std::string SpanLog::serialize() const {
  std::string out;
  out.reserve(256 + attempts_.size() * 96 + flows_.size() * 48);
  char buf[320];

  out += "# hepvine spans v1\n";
  out +=
      "# RUN makespan_us success scheduler | MANAGER busy_us ops | "
      "CORES per-worker\n";
  out +=
      "# UP/DOWN t worker | ATTEMPT task attempt worker ready dispatched "
      "staged exec compute exec_end retrieved failed category\n";
  out +=
      "# DEP task producers... | FLOW id bytes carried t0 t1 outcome | "
      "CACHE t worker file bytes verb\n";

  std::snprintf(buf, sizeof(buf), "RUN %" PRId64 " %d %s\n", makespan_,
                success_ ? 1 : 0,
                scheduler_.empty() ? "-" : scheduler_.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf), "MANAGER %" PRId64 " %" PRIu64 "\n",
                manager_busy_ticks_, manager_ops_);
  out += buf;

  if (!worker_cores_.empty()) {
    out += "CORES";
    for (const std::uint32_t c : worker_cores_) {
      std::snprintf(buf, sizeof(buf), " %u", c);
      out += buf;
    }
    out += '\n';
  }

  for (const WorkerEvent& e : worker_events_) {
    std::snprintf(buf, sizeof(buf), "%s %" PRId64 " %d\n",
                  e.up ? "UP" : "DOWN", e.t, e.worker);
    out += buf;
  }

  for (const AttemptSpan& a : attempts_) {
    std::snprintf(buf, sizeof(buf),
                  "ATTEMPT %" PRId64 " %u %d %" PRId64 " %" PRId64
                  " %" PRId64 " %" PRId64 " %" PRId64 " %" PRId64
                  " %" PRId64 " %d %s\n",
                  a.task, a.attempt, a.worker, a.ready_at, a.dispatched_at,
                  a.staged_at, a.exec_at, a.compute_at, a.exec_end_at,
                  a.retrieved_at, a.failed ? 1 : 0,
                  sanitize_category(a.category).c_str());
    out += buf;
  }

  for (const auto& [task, producers] : deps_) {
    std::snprintf(buf, sizeof(buf), "DEP %" PRId64, task);
    out += buf;
    for (const std::int64_t d : producers) {
      std::snprintf(buf, sizeof(buf), " %" PRId64, d);
      out += buf;
    }
    out += '\n';
  }

  for (const FlowSpan& f : flows_) {
    std::snprintf(buf, sizeof(buf),
                  "FLOW %" PRId64 " %" PRIu64 " %" PRIu64 " %" PRId64
                  " %" PRId64 " %c\n",
                  f.flow, f.bytes, f.carried, f.started_at, f.ended_at,
                  f.outcome);
    out += buf;
  }

  for (const CacheSpan& c : cache_) {
    std::snprintf(buf, sizeof(buf),
                  "CACHE %" PRId64 " %d %" PRId64 " %" PRIu64 " %c\n", c.t,
                  c.worker, c.file, c.bytes, c.verb);
    out += buf;
  }

  return out;
}

bool SpanLog::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = serialize();
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

std::optional<SpanLog> SpanLog::parse(const std::string& text) {
  if (text.rfind("# hepvine spans v1", 0) != 0) return std::nullopt;
  SpanLog log;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "RUN") {
      int success = 0;
      std::string scheduler;
      ls >> log.makespan_ >> success >> scheduler;
      log.success_ = success != 0;
      log.scheduler_ = restore_category(scheduler);
    } else if (kind == "MANAGER") {
      ls >> log.manager_busy_ticks_ >> log.manager_ops_;
    } else if (kind == "CORES") {
      std::uint32_t c = 0;
      while (ls >> c) log.worker_cores_.push_back(c);
    } else if (kind == "UP" || kind == "DOWN") {
      WorkerEvent e;
      e.up = kind == "UP";
      ls >> e.t >> e.worker;
      if (ls.fail()) return std::nullopt;
      log.worker_events_.push_back(e);
    } else if (kind == "ATTEMPT") {
      AttemptSpan a;
      int failed = 0;
      std::string category;
      ls >> a.task >> a.attempt >> a.worker >> a.ready_at >>
          a.dispatched_at >> a.staged_at >> a.exec_at >> a.compute_at >>
          a.exec_end_at >> a.retrieved_at >> failed >> category;
      if (ls.fail()) return std::nullopt;
      a.failed = failed != 0;
      a.category = restore_category(category);
      log.attempts_.push_back(std::move(a));
    } else if (kind == "DEP") {
      std::int64_t task = -1;
      ls >> task;
      if (ls.fail()) return std::nullopt;
      std::vector<std::int64_t> producers;
      std::int64_t d = -1;
      while (ls >> d) producers.push_back(d);
      log.deps_[task] = std::move(producers);
    } else if (kind == "FLOW") {
      FlowSpan f;
      ls >> f.flow >> f.bytes >> f.carried >> f.started_at >> f.ended_at >>
          f.outcome;
      if (ls.fail()) return std::nullopt;
      log.flows_.push_back(f);
    } else if (kind == "CACHE") {
      CacheSpan c;
      ls >> c.t >> c.worker >> c.file >> c.bytes >> c.verb;
      if (ls.fail()) return std::nullopt;
      log.cache_.push_back(c);
    } else {
      return std::nullopt;
    }
  }
  return log;
}

void emit_lifecycle_trace(const SpanLog& log, ChromeTraceBuilder& trace) {
  char name[96];
  char args[128];
  for (const AttemptSpan& a : log.attempts()) {
    if (a.dispatched_at < 0 || a.retrieved_at < 0) continue;
    // Lane convention matches the rest of the trace: pid 0 = manager,
    // pid w+1 = worker w. tid = task id keeps concurrent attempts on the
    // same worker on separate nesting stacks.
    const std::int32_t pid = a.worker >= 0 ? a.worker + 1 : 0;
    const std::int64_t tid = a.task;
    std::snprintf(name, sizeof(name), "task %" PRId64 " attempt %u", a.task,
                  a.attempt);
    std::snprintf(args, sizeof(args),
                  "{\"category\":\"%s\",\"failed\":%s}",
                  ChromeTraceBuilder::escape(a.category).c_str(),
                  a.failed ? "true" : "false");
    trace.add_begin(pid, tid, name, a.failed ? "attempt-failed" : "attempt",
                    a.dispatched_at, args);
    const struct {
      const char* label;
      Tick start;
      Tick end;
    } phases[] = {
        {"dispatch", a.dispatched_at, a.staged_at},
        {"fetch-inputs", a.staged_at, a.exec_at},
        {"startup-import", a.exec_at, a.compute_at},
        {"execute", a.compute_at, a.exec_end_at},
        {"retrieve-output", a.exec_end_at, a.retrieved_at},
    };
    for (const auto& p : phases) {
      if (p.start < 0 || p.end < 0 || p.end < p.start) continue;
      trace.add_begin(pid, tid, p.label, "phase", p.start);
      trace.add_end(pid, tid, p.end);
    }
    trace.add_end(pid, tid, a.retrieved_at);
  }
}

}  // namespace hepvine::obs
