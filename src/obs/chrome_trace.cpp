#include "obs/chrome_trace.h"

#include <cinttypes>
#include <cstdio>

namespace hepvine::obs {

std::string ChromeTraceBuilder::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceBuilder::set_lane_name(std::int32_t pid,
                                       const std::string& name) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                pid, escape(name).c_str());
  events_.emplace_back(buf);
}

void ChromeTraceBuilder::add_span(std::int32_t pid, const std::string& name,
                                  const std::string& category, Tick start,
                                  Tick duration,
                                  const std::string& args_json) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,"
                "\"tid\":0,\"ts\":%" PRId64 ",\"dur\":%" PRId64 "%s%s%s}",
                escape(name).c_str(),
                escape(category.empty() ? "task" : category).c_str(), pid,
                start, duration > 0 ? duration : 1,
                args_json.empty() ? "" : ",\"args\":", args_json.c_str(),
                "");
  events_.emplace_back(buf);
}

void ChromeTraceBuilder::add_begin(std::int32_t pid, std::int64_t tid,
                                   const std::string& name,
                                   const std::string& category, Tick start,
                                   const std::string& args_json) {
  char buf[384];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"B\",\"pid\":%d,"
                "\"tid\":%" PRId64 ",\"ts\":%" PRId64 "%s%s}",
                escape(name).c_str(),
                escape(category.empty() ? "task" : category).c_str(), pid,
                tid, start, args_json.empty() ? "" : ",\"args\":",
                args_json.c_str());
  events_.emplace_back(buf);
}

void ChromeTraceBuilder::add_end(std::int32_t pid, std::int64_t tid,
                                 Tick end) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"E\",\"pid\":%d,\"tid\":%" PRId64
                ",\"ts\":%" PRId64 "}",
                pid, tid, end);
  events_.emplace_back(buf);
}

void ChromeTraceBuilder::add_flow(std::int32_t src, std::int32_t dst,
                                  const std::string& name, Tick start,
                                  Tick end) {
  const std::uint64_t id = next_flow_id_++;
  if (end <= start) end = start + 1;
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"transfer\",\"ph\":\"s\","
                "\"id\":%" PRIu64 ",\"pid\":%d,\"tid\":0,\"ts\":%" PRId64 "}",
                escape(name).c_str(), id, src, start);
  events_.emplace_back(buf);
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"cat\":\"transfer\",\"ph\":\"f\","
                "\"bp\":\"e\",\"id\":%" PRIu64 ",\"pid\":%d,\"tid\":0,"
                "\"ts\":%" PRId64 "}",
                escape(name).c_str(), id, dst, end);
  events_.emplace_back(buf);
}

void ChromeTraceBuilder::add_counter(std::int32_t pid, const std::string& name,
                                     Tick t, double value) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"C\",\"pid\":%d,\"tid\":0,"
                "\"ts\":%" PRId64 ",\"args\":{\"value\":%.6g}}",
                escape(name).c_str(), pid, t, value);
  events_.emplace_back(buf);
}

std::string ChromeTraceBuilder::to_json() const {
  std::string out = "{\"traceEvents\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (i > 0) out += ",\n";
    out += events_[i];
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool ChromeTraceBuilder::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string text = to_json();
  const bool ok =
      std::fwrite(text.data(), 1, text.size(), f) == text.size();
  std::fclose(f);
  return ok;
}

}  // namespace hepvine::obs
